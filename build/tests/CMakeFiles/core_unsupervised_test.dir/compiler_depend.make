# Empty compiler generated dependencies file for core_unsupervised_test.
# This may be replaced when dependencies are built.
