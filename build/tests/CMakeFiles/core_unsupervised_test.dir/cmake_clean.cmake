file(REMOVE_RECURSE
  "CMakeFiles/core_unsupervised_test.dir/core_unsupervised_test.cc.o"
  "CMakeFiles/core_unsupervised_test.dir/core_unsupervised_test.cc.o.d"
  "core_unsupervised_test"
  "core_unsupervised_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_unsupervised_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
