file(REMOVE_RECURSE
  "CMakeFiles/core_stable_matching_test.dir/core_stable_matching_test.cc.o"
  "CMakeFiles/core_stable_matching_test.dir/core_stable_matching_test.cc.o.d"
  "core_stable_matching_test"
  "core_stable_matching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_stable_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
