# Empty dependencies file for kg_knowledge_graph_test.
# This may be replaced when dependencies are built.
