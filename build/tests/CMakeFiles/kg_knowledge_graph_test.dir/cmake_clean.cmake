file(REMOVE_RECURSE
  "CMakeFiles/kg_knowledge_graph_test.dir/kg_knowledge_graph_test.cc.o"
  "CMakeFiles/kg_knowledge_graph_test.dir/kg_knowledge_graph_test.cc.o.d"
  "kg_knowledge_graph_test"
  "kg_knowledge_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_knowledge_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
