file(REMOVE_RECURSE
  "CMakeFiles/datagen_generator_test.dir/datagen_generator_test.cc.o"
  "CMakeFiles/datagen_generator_test.dir/datagen_generator_test.cc.o.d"
  "datagen_generator_test"
  "datagen_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
