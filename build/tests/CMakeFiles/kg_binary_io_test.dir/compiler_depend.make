# Empty compiler generated dependencies file for kg_binary_io_test.
# This may be replaced when dependencies are built.
