file(REMOVE_RECURSE
  "CMakeFiles/kg_binary_io_test.dir/kg_binary_io_test.cc.o"
  "CMakeFiles/kg_binary_io_test.dir/kg_binary_io_test.cc.o.d"
  "kg_binary_io_test"
  "kg_binary_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_binary_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
