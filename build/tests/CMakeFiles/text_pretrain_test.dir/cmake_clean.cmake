file(REMOVE_RECURSE
  "CMakeFiles/text_pretrain_test.dir/text_pretrain_test.cc.o"
  "CMakeFiles/text_pretrain_test.dir/text_pretrain_test.cc.o.d"
  "text_pretrain_test"
  "text_pretrain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_pretrain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
