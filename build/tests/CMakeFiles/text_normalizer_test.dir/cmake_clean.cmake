file(REMOVE_RECURSE
  "CMakeFiles/text_normalizer_test.dir/text_normalizer_test.cc.o"
  "CMakeFiles/text_normalizer_test.dir/text_normalizer_test.cc.o.d"
  "text_normalizer_test"
  "text_normalizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_normalizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
