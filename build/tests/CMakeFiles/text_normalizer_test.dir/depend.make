# Empty dependencies file for text_normalizer_test.
# This may be replaced when dependencies are built.
