# Empty compiler generated dependencies file for kg_merge_test.
# This may be replaced when dependencies are built.
