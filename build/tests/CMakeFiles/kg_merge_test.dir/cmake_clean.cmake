file(REMOVE_RECURSE
  "CMakeFiles/kg_merge_test.dir/kg_merge_test.cc.o"
  "CMakeFiles/kg_merge_test.dir/kg_merge_test.cc.o.d"
  "kg_merge_test"
  "kg_merge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
