file(REMOVE_RECURSE
  "CMakeFiles/base_rng_test.dir/base_rng_test.cc.o"
  "CMakeFiles/base_rng_test.dir/base_rng_test.cc.o.d"
  "base_rng_test"
  "base_rng_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
