# Empty dependencies file for tensor_sparse_test.
# This may be replaced when dependencies are built.
