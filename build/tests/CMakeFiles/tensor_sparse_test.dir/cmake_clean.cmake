file(REMOVE_RECURSE
  "CMakeFiles/tensor_sparse_test.dir/tensor_sparse_test.cc.o"
  "CMakeFiles/tensor_sparse_test.dir/tensor_sparse_test.cc.o.d"
  "tensor_sparse_test"
  "tensor_sparse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_sparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
