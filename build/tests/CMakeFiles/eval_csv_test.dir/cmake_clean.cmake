file(REMOVE_RECURSE
  "CMakeFiles/eval_csv_test.dir/eval_csv_test.cc.o"
  "CMakeFiles/eval_csv_test.dir/eval_csv_test.cc.o.d"
  "eval_csv_test"
  "eval_csv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
