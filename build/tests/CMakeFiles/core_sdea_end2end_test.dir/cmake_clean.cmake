file(REMOVE_RECURSE
  "CMakeFiles/core_sdea_end2end_test.dir/core_sdea_end2end_test.cc.o"
  "CMakeFiles/core_sdea_end2end_test.dir/core_sdea_end2end_test.cc.o.d"
  "core_sdea_end2end_test"
  "core_sdea_end2end_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sdea_end2end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
