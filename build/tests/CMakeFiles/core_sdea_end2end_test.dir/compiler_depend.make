# Empty compiler generated dependencies file for core_sdea_end2end_test.
# This may be replaced when dependencies are built.
