file(REMOVE_RECURSE
  "CMakeFiles/kg_validation_test.dir/kg_validation_test.cc.o"
  "CMakeFiles/kg_validation_test.dir/kg_validation_test.cc.o.d"
  "kg_validation_test"
  "kg_validation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
