# Empty dependencies file for kg_validation_test.
# This may be replaced when dependencies are built.
