file(REMOVE_RECURSE
  "CMakeFiles/base_fileio_test.dir/base_fileio_test.cc.o"
  "CMakeFiles/base_fileio_test.dir/base_fileio_test.cc.o.d"
  "base_fileio_test"
  "base_fileio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_fileio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
