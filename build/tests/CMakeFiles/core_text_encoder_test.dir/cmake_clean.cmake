file(REMOVE_RECURSE
  "CMakeFiles/core_text_encoder_test.dir/core_text_encoder_test.cc.o"
  "CMakeFiles/core_text_encoder_test.dir/core_text_encoder_test.cc.o.d"
  "core_text_encoder_test"
  "core_text_encoder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_text_encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
