# Empty dependencies file for core_relation_module_test.
# This may be replaced when dependencies are built.
