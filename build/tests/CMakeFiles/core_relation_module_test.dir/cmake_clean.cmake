file(REMOVE_RECURSE
  "CMakeFiles/core_relation_module_test.dir/core_relation_module_test.cc.o"
  "CMakeFiles/core_relation_module_test.dir/core_relation_module_test.cc.o.d"
  "core_relation_module_test"
  "core_relation_module_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_relation_module_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
