file(REMOVE_RECURSE
  "CMakeFiles/baselines_hman_test.dir/baselines_hman_test.cc.o"
  "CMakeFiles/baselines_hman_test.dir/baselines_hman_test.cc.o.d"
  "baselines_hman_test"
  "baselines_hman_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_hman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
