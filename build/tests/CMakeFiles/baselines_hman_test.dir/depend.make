# Empty dependencies file for baselines_hman_test.
# This may be replaced when dependencies are built.
