# Empty compiler generated dependencies file for core_numeric_channel_test.
# This may be replaced when dependencies are built.
