file(REMOVE_RECURSE
  "CMakeFiles/core_numeric_channel_test.dir/core_numeric_channel_test.cc.o"
  "CMakeFiles/core_numeric_channel_test.dir/core_numeric_channel_test.cc.o.d"
  "core_numeric_channel_test"
  "core_numeric_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_numeric_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
