file(REMOVE_RECURSE
  "CMakeFiles/core_ann_index_test.dir/core_ann_index_test.cc.o"
  "CMakeFiles/core_ann_index_test.dir/core_ann_index_test.cc.o.d"
  "core_ann_index_test"
  "core_ann_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ann_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
