# Empty compiler generated dependencies file for core_ann_index_test.
# This may be replaced when dependencies are built.
