file(REMOVE_RECURSE
  "CMakeFiles/datagen_lexicon_test.dir/datagen_lexicon_test.cc.o"
  "CMakeFiles/datagen_lexicon_test.dir/datagen_lexicon_test.cc.o.d"
  "datagen_lexicon_test"
  "datagen_lexicon_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_lexicon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
