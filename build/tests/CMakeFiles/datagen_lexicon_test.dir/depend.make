# Empty dependencies file for datagen_lexicon_test.
# This may be replaced when dependencies are built.
