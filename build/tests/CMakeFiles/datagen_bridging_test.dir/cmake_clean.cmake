file(REMOVE_RECURSE
  "CMakeFiles/datagen_bridging_test.dir/datagen_bridging_test.cc.o"
  "CMakeFiles/datagen_bridging_test.dir/datagen_bridging_test.cc.o.d"
  "datagen_bridging_test"
  "datagen_bridging_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_bridging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
