# Empty compiler generated dependencies file for datagen_bridging_test.
# This may be replaced when dependencies are built.
