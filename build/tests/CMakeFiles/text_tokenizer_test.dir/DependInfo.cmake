
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/text_tokenizer_test.cc" "tests/CMakeFiles/text_tokenizer_test.dir/text_tokenizer_test.cc.o" "gcc" "tests/CMakeFiles/text_tokenizer_test.dir/text_tokenizer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sdea_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sdea_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/sdea_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sdea_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sdea_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sdea_text.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sdea_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/sdea_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sdea_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
