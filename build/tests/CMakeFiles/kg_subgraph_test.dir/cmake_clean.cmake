file(REMOVE_RECURSE
  "CMakeFiles/kg_subgraph_test.dir/kg_subgraph_test.cc.o"
  "CMakeFiles/kg_subgraph_test.dir/kg_subgraph_test.cc.o.d"
  "kg_subgraph_test"
  "kg_subgraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_subgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
