# Empty compiler generated dependencies file for kg_subgraph_test.
# This may be replaced when dependencies are built.
