# Empty dependencies file for tensor_graph_test.
# This may be replaced when dependencies are built.
