file(REMOVE_RECURSE
  "CMakeFiles/tensor_graph_test.dir/tensor_graph_test.cc.o"
  "CMakeFiles/tensor_graph_test.dir/tensor_graph_test.cc.o.d"
  "tensor_graph_test"
  "tensor_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
