# Empty dependencies file for core_sequencer_test.
# This may be replaced when dependencies are built.
