file(REMOVE_RECURSE
  "CMakeFiles/baselines_path_test.dir/baselines_path_test.cc.o"
  "CMakeFiles/baselines_path_test.dir/baselines_path_test.cc.o.d"
  "baselines_path_test"
  "baselines_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
