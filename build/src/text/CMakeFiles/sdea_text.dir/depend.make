# Empty dependencies file for sdea_text.
# This may be replaced when dependencies are built.
