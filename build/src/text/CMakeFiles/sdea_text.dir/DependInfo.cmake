
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/normalizer.cc" "src/text/CMakeFiles/sdea_text.dir/normalizer.cc.o" "gcc" "src/text/CMakeFiles/sdea_text.dir/normalizer.cc.o.d"
  "/root/repo/src/text/pretrain.cc" "src/text/CMakeFiles/sdea_text.dir/pretrain.cc.o" "gcc" "src/text/CMakeFiles/sdea_text.dir/pretrain.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/sdea_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/sdea_text.dir/tokenizer.cc.o.d"
  "/root/repo/src/text/vocab.cc" "src/text/CMakeFiles/sdea_text.dir/vocab.cc.o" "gcc" "src/text/CMakeFiles/sdea_text.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/sdea_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sdea_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
