file(REMOVE_RECURSE
  "libsdea_text.a"
)
