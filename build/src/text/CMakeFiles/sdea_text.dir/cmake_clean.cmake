file(REMOVE_RECURSE
  "CMakeFiles/sdea_text.dir/normalizer.cc.o"
  "CMakeFiles/sdea_text.dir/normalizer.cc.o.d"
  "CMakeFiles/sdea_text.dir/pretrain.cc.o"
  "CMakeFiles/sdea_text.dir/pretrain.cc.o.d"
  "CMakeFiles/sdea_text.dir/tokenizer.cc.o"
  "CMakeFiles/sdea_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/sdea_text.dir/vocab.cc.o"
  "CMakeFiles/sdea_text.dir/vocab.cc.o.d"
  "libsdea_text.a"
  "libsdea_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdea_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
