file(REMOVE_RECURSE
  "CMakeFiles/sdea_nn.dir/attention.cc.o"
  "CMakeFiles/sdea_nn.dir/attention.cc.o.d"
  "CMakeFiles/sdea_nn.dir/gru.cc.o"
  "CMakeFiles/sdea_nn.dir/gru.cc.o.d"
  "CMakeFiles/sdea_nn.dir/layers.cc.o"
  "CMakeFiles/sdea_nn.dir/layers.cc.o.d"
  "CMakeFiles/sdea_nn.dir/loss.cc.o"
  "CMakeFiles/sdea_nn.dir/loss.cc.o.d"
  "CMakeFiles/sdea_nn.dir/module.cc.o"
  "CMakeFiles/sdea_nn.dir/module.cc.o.d"
  "CMakeFiles/sdea_nn.dir/optimizer.cc.o"
  "CMakeFiles/sdea_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/sdea_nn.dir/serialization.cc.o"
  "CMakeFiles/sdea_nn.dir/serialization.cc.o.d"
  "CMakeFiles/sdea_nn.dir/transformer.cc.o"
  "CMakeFiles/sdea_nn.dir/transformer.cc.o.d"
  "libsdea_nn.a"
  "libsdea_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdea_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
