file(REMOVE_RECURSE
  "libsdea_nn.a"
)
