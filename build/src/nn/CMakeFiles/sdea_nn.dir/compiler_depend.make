# Empty compiler generated dependencies file for sdea_nn.
# This may be replaced when dependencies are built.
