file(REMOVE_RECURSE
  "CMakeFiles/sdea_kg.dir/binary_io.cc.o"
  "CMakeFiles/sdea_kg.dir/binary_io.cc.o.d"
  "CMakeFiles/sdea_kg.dir/knowledge_graph.cc.o"
  "CMakeFiles/sdea_kg.dir/knowledge_graph.cc.o.d"
  "CMakeFiles/sdea_kg.dir/merge.cc.o"
  "CMakeFiles/sdea_kg.dir/merge.cc.o.d"
  "CMakeFiles/sdea_kg.dir/subgraph.cc.o"
  "CMakeFiles/sdea_kg.dir/subgraph.cc.o.d"
  "CMakeFiles/sdea_kg.dir/validation.cc.o"
  "CMakeFiles/sdea_kg.dir/validation.cc.o.d"
  "libsdea_kg.a"
  "libsdea_kg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdea_kg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
