
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kg/binary_io.cc" "src/kg/CMakeFiles/sdea_kg.dir/binary_io.cc.o" "gcc" "src/kg/CMakeFiles/sdea_kg.dir/binary_io.cc.o.d"
  "/root/repo/src/kg/knowledge_graph.cc" "src/kg/CMakeFiles/sdea_kg.dir/knowledge_graph.cc.o" "gcc" "src/kg/CMakeFiles/sdea_kg.dir/knowledge_graph.cc.o.d"
  "/root/repo/src/kg/merge.cc" "src/kg/CMakeFiles/sdea_kg.dir/merge.cc.o" "gcc" "src/kg/CMakeFiles/sdea_kg.dir/merge.cc.o.d"
  "/root/repo/src/kg/subgraph.cc" "src/kg/CMakeFiles/sdea_kg.dir/subgraph.cc.o" "gcc" "src/kg/CMakeFiles/sdea_kg.dir/subgraph.cc.o.d"
  "/root/repo/src/kg/validation.cc" "src/kg/CMakeFiles/sdea_kg.dir/validation.cc.o" "gcc" "src/kg/CMakeFiles/sdea_kg.dir/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/sdea_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
