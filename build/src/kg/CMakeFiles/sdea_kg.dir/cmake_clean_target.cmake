file(REMOVE_RECURSE
  "libsdea_kg.a"
)
