# Empty dependencies file for sdea_kg.
# This may be replaced when dependencies are built.
