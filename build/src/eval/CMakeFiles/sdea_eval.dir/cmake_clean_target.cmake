file(REMOVE_RECURSE
  "libsdea_eval.a"
)
