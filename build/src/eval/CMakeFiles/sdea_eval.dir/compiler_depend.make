# Empty compiler generated dependencies file for sdea_eval.
# This may be replaced when dependencies are built.
