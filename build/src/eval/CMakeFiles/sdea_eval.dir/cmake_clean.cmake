file(REMOVE_RECURSE
  "CMakeFiles/sdea_eval.dir/csv.cc.o"
  "CMakeFiles/sdea_eval.dir/csv.cc.o.d"
  "CMakeFiles/sdea_eval.dir/metrics.cc.o"
  "CMakeFiles/sdea_eval.dir/metrics.cc.o.d"
  "CMakeFiles/sdea_eval.dir/table_printer.cc.o"
  "CMakeFiles/sdea_eval.dir/table_printer.cc.o.d"
  "libsdea_eval.a"
  "libsdea_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdea_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
