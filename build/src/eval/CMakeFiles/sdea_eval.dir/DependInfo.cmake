
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/csv.cc" "src/eval/CMakeFiles/sdea_eval.dir/csv.cc.o" "gcc" "src/eval/CMakeFiles/sdea_eval.dir/csv.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/sdea_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/sdea_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/table_printer.cc" "src/eval/CMakeFiles/sdea_eval.dir/table_printer.cc.o" "gcc" "src/eval/CMakeFiles/sdea_eval.dir/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/sdea_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sdea_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
