file(REMOVE_RECURSE
  "CMakeFiles/sdea_core.dir/alignment_pipeline.cc.o"
  "CMakeFiles/sdea_core.dir/alignment_pipeline.cc.o.d"
  "CMakeFiles/sdea_core.dir/ann_index.cc.o"
  "CMakeFiles/sdea_core.dir/ann_index.cc.o.d"
  "CMakeFiles/sdea_core.dir/attribute_embedding.cc.o"
  "CMakeFiles/sdea_core.dir/attribute_embedding.cc.o.d"
  "CMakeFiles/sdea_core.dir/attribute_sequencer.cc.o"
  "CMakeFiles/sdea_core.dir/attribute_sequencer.cc.o.d"
  "CMakeFiles/sdea_core.dir/candidate_generator.cc.o"
  "CMakeFiles/sdea_core.dir/candidate_generator.cc.o.d"
  "CMakeFiles/sdea_core.dir/embedding_store.cc.o"
  "CMakeFiles/sdea_core.dir/embedding_store.cc.o.d"
  "CMakeFiles/sdea_core.dir/numeric_channel.cc.o"
  "CMakeFiles/sdea_core.dir/numeric_channel.cc.o.d"
  "CMakeFiles/sdea_core.dir/relation_embedding.cc.o"
  "CMakeFiles/sdea_core.dir/relation_embedding.cc.o.d"
  "CMakeFiles/sdea_core.dir/sdea.cc.o"
  "CMakeFiles/sdea_core.dir/sdea.cc.o.d"
  "CMakeFiles/sdea_core.dir/stable_matching.cc.o"
  "CMakeFiles/sdea_core.dir/stable_matching.cc.o.d"
  "CMakeFiles/sdea_core.dir/text_alignment_encoder.cc.o"
  "CMakeFiles/sdea_core.dir/text_alignment_encoder.cc.o.d"
  "CMakeFiles/sdea_core.dir/unsupervised.cc.o"
  "CMakeFiles/sdea_core.dir/unsupervised.cc.o.d"
  "libsdea_core.a"
  "libsdea_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdea_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
