
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alignment_pipeline.cc" "src/core/CMakeFiles/sdea_core.dir/alignment_pipeline.cc.o" "gcc" "src/core/CMakeFiles/sdea_core.dir/alignment_pipeline.cc.o.d"
  "/root/repo/src/core/ann_index.cc" "src/core/CMakeFiles/sdea_core.dir/ann_index.cc.o" "gcc" "src/core/CMakeFiles/sdea_core.dir/ann_index.cc.o.d"
  "/root/repo/src/core/attribute_embedding.cc" "src/core/CMakeFiles/sdea_core.dir/attribute_embedding.cc.o" "gcc" "src/core/CMakeFiles/sdea_core.dir/attribute_embedding.cc.o.d"
  "/root/repo/src/core/attribute_sequencer.cc" "src/core/CMakeFiles/sdea_core.dir/attribute_sequencer.cc.o" "gcc" "src/core/CMakeFiles/sdea_core.dir/attribute_sequencer.cc.o.d"
  "/root/repo/src/core/candidate_generator.cc" "src/core/CMakeFiles/sdea_core.dir/candidate_generator.cc.o" "gcc" "src/core/CMakeFiles/sdea_core.dir/candidate_generator.cc.o.d"
  "/root/repo/src/core/embedding_store.cc" "src/core/CMakeFiles/sdea_core.dir/embedding_store.cc.o" "gcc" "src/core/CMakeFiles/sdea_core.dir/embedding_store.cc.o.d"
  "/root/repo/src/core/numeric_channel.cc" "src/core/CMakeFiles/sdea_core.dir/numeric_channel.cc.o" "gcc" "src/core/CMakeFiles/sdea_core.dir/numeric_channel.cc.o.d"
  "/root/repo/src/core/relation_embedding.cc" "src/core/CMakeFiles/sdea_core.dir/relation_embedding.cc.o" "gcc" "src/core/CMakeFiles/sdea_core.dir/relation_embedding.cc.o.d"
  "/root/repo/src/core/sdea.cc" "src/core/CMakeFiles/sdea_core.dir/sdea.cc.o" "gcc" "src/core/CMakeFiles/sdea_core.dir/sdea.cc.o.d"
  "/root/repo/src/core/stable_matching.cc" "src/core/CMakeFiles/sdea_core.dir/stable_matching.cc.o" "gcc" "src/core/CMakeFiles/sdea_core.dir/stable_matching.cc.o.d"
  "/root/repo/src/core/text_alignment_encoder.cc" "src/core/CMakeFiles/sdea_core.dir/text_alignment_encoder.cc.o" "gcc" "src/core/CMakeFiles/sdea_core.dir/text_alignment_encoder.cc.o.d"
  "/root/repo/src/core/unsupervised.cc" "src/core/CMakeFiles/sdea_core.dir/unsupervised.cc.o" "gcc" "src/core/CMakeFiles/sdea_core.dir/unsupervised.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/sdea_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sdea_text.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/sdea_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sdea_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sdea_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sdea_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
