file(REMOVE_RECURSE
  "libsdea_core.a"
)
