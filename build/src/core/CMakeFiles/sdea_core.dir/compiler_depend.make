# Empty compiler generated dependencies file for sdea_core.
# This may be replaced when dependencies are built.
