file(REMOVE_RECURSE
  "libsdea_tensor.a"
)
