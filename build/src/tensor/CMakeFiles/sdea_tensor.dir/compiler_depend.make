# Empty compiler generated dependencies file for sdea_tensor.
# This may be replaced when dependencies are built.
