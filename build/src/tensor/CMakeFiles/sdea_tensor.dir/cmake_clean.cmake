file(REMOVE_RECURSE
  "CMakeFiles/sdea_tensor.dir/gradcheck.cc.o"
  "CMakeFiles/sdea_tensor.dir/gradcheck.cc.o.d"
  "CMakeFiles/sdea_tensor.dir/graph.cc.o"
  "CMakeFiles/sdea_tensor.dir/graph.cc.o.d"
  "CMakeFiles/sdea_tensor.dir/sparse.cc.o"
  "CMakeFiles/sdea_tensor.dir/sparse.cc.o.d"
  "CMakeFiles/sdea_tensor.dir/tensor.cc.o"
  "CMakeFiles/sdea_tensor.dir/tensor.cc.o.d"
  "libsdea_tensor.a"
  "libsdea_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdea_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
