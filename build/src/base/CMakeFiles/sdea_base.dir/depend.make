# Empty dependencies file for sdea_base.
# This may be replaced when dependencies are built.
