file(REMOVE_RECURSE
  "CMakeFiles/sdea_base.dir/fileio.cc.o"
  "CMakeFiles/sdea_base.dir/fileio.cc.o.d"
  "CMakeFiles/sdea_base.dir/logging.cc.o"
  "CMakeFiles/sdea_base.dir/logging.cc.o.d"
  "CMakeFiles/sdea_base.dir/rng.cc.o"
  "CMakeFiles/sdea_base.dir/rng.cc.o.d"
  "CMakeFiles/sdea_base.dir/status.cc.o"
  "CMakeFiles/sdea_base.dir/status.cc.o.d"
  "CMakeFiles/sdea_base.dir/strings.cc.o"
  "CMakeFiles/sdea_base.dir/strings.cc.o.d"
  "libsdea_base.a"
  "libsdea_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdea_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
