file(REMOVE_RECURSE
  "libsdea_base.a"
)
