
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/aligner_interface.cc" "src/baselines/CMakeFiles/sdea_baselines.dir/aligner_interface.cc.o" "gcc" "src/baselines/CMakeFiles/sdea_baselines.dir/aligner_interface.cc.o.d"
  "/root/repo/src/baselines/bert_int_lite.cc" "src/baselines/CMakeFiles/sdea_baselines.dir/bert_int_lite.cc.o" "gcc" "src/baselines/CMakeFiles/sdea_baselines.dir/bert_int_lite.cc.o.d"
  "/root/repo/src/baselines/cea.cc" "src/baselines/CMakeFiles/sdea_baselines.dir/cea.cc.o" "gcc" "src/baselines/CMakeFiles/sdea_baselines.dir/cea.cc.o.d"
  "/root/repo/src/baselines/gcn_align.cc" "src/baselines/CMakeFiles/sdea_baselines.dir/gcn_align.cc.o" "gcc" "src/baselines/CMakeFiles/sdea_baselines.dir/gcn_align.cc.o.d"
  "/root/repo/src/baselines/hman.cc" "src/baselines/CMakeFiles/sdea_baselines.dir/hman.cc.o" "gcc" "src/baselines/CMakeFiles/sdea_baselines.dir/hman.cc.o.d"
  "/root/repo/src/baselines/iptranse.cc" "src/baselines/CMakeFiles/sdea_baselines.dir/iptranse.cc.o" "gcc" "src/baselines/CMakeFiles/sdea_baselines.dir/iptranse.cc.o.d"
  "/root/repo/src/baselines/jape.cc" "src/baselines/CMakeFiles/sdea_baselines.dir/jape.cc.o" "gcc" "src/baselines/CMakeFiles/sdea_baselines.dir/jape.cc.o.d"
  "/root/repo/src/baselines/kecg.cc" "src/baselines/CMakeFiles/sdea_baselines.dir/kecg.cc.o" "gcc" "src/baselines/CMakeFiles/sdea_baselines.dir/kecg.cc.o.d"
  "/root/repo/src/baselines/mtranse.cc" "src/baselines/CMakeFiles/sdea_baselines.dir/mtranse.cc.o" "gcc" "src/baselines/CMakeFiles/sdea_baselines.dir/mtranse.cc.o.d"
  "/root/repo/src/baselines/rsn4ea.cc" "src/baselines/CMakeFiles/sdea_baselines.dir/rsn4ea.cc.o" "gcc" "src/baselines/CMakeFiles/sdea_baselines.dir/rsn4ea.cc.o.d"
  "/root/repo/src/baselines/transe.cc" "src/baselines/CMakeFiles/sdea_baselines.dir/transe.cc.o" "gcc" "src/baselines/CMakeFiles/sdea_baselines.dir/transe.cc.o.d"
  "/root/repo/src/baselines/transe_align.cc" "src/baselines/CMakeFiles/sdea_baselines.dir/transe_align.cc.o" "gcc" "src/baselines/CMakeFiles/sdea_baselines.dir/transe_align.cc.o.d"
  "/root/repo/src/baselines/transedge.cc" "src/baselines/CMakeFiles/sdea_baselines.dir/transedge.cc.o" "gcc" "src/baselines/CMakeFiles/sdea_baselines.dir/transedge.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sdea_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sdea_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sdea_text.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/sdea_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/sdea_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sdea_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sdea_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
