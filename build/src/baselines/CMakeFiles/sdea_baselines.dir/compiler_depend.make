# Empty compiler generated dependencies file for sdea_baselines.
# This may be replaced when dependencies are built.
