file(REMOVE_RECURSE
  "libsdea_baselines.a"
)
