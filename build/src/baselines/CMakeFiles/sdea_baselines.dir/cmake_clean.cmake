file(REMOVE_RECURSE
  "CMakeFiles/sdea_baselines.dir/aligner_interface.cc.o"
  "CMakeFiles/sdea_baselines.dir/aligner_interface.cc.o.d"
  "CMakeFiles/sdea_baselines.dir/bert_int_lite.cc.o"
  "CMakeFiles/sdea_baselines.dir/bert_int_lite.cc.o.d"
  "CMakeFiles/sdea_baselines.dir/cea.cc.o"
  "CMakeFiles/sdea_baselines.dir/cea.cc.o.d"
  "CMakeFiles/sdea_baselines.dir/gcn_align.cc.o"
  "CMakeFiles/sdea_baselines.dir/gcn_align.cc.o.d"
  "CMakeFiles/sdea_baselines.dir/hman.cc.o"
  "CMakeFiles/sdea_baselines.dir/hman.cc.o.d"
  "CMakeFiles/sdea_baselines.dir/iptranse.cc.o"
  "CMakeFiles/sdea_baselines.dir/iptranse.cc.o.d"
  "CMakeFiles/sdea_baselines.dir/jape.cc.o"
  "CMakeFiles/sdea_baselines.dir/jape.cc.o.d"
  "CMakeFiles/sdea_baselines.dir/kecg.cc.o"
  "CMakeFiles/sdea_baselines.dir/kecg.cc.o.d"
  "CMakeFiles/sdea_baselines.dir/mtranse.cc.o"
  "CMakeFiles/sdea_baselines.dir/mtranse.cc.o.d"
  "CMakeFiles/sdea_baselines.dir/rsn4ea.cc.o"
  "CMakeFiles/sdea_baselines.dir/rsn4ea.cc.o.d"
  "CMakeFiles/sdea_baselines.dir/transe.cc.o"
  "CMakeFiles/sdea_baselines.dir/transe.cc.o.d"
  "CMakeFiles/sdea_baselines.dir/transe_align.cc.o"
  "CMakeFiles/sdea_baselines.dir/transe_align.cc.o.d"
  "CMakeFiles/sdea_baselines.dir/transedge.cc.o"
  "CMakeFiles/sdea_baselines.dir/transedge.cc.o.d"
  "libsdea_baselines.a"
  "libsdea_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdea_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
