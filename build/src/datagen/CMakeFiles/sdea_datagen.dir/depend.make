# Empty dependencies file for sdea_datagen.
# This may be replaced when dependencies are built.
