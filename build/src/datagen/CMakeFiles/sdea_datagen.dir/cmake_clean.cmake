file(REMOVE_RECURSE
  "CMakeFiles/sdea_datagen.dir/generator.cc.o"
  "CMakeFiles/sdea_datagen.dir/generator.cc.o.d"
  "CMakeFiles/sdea_datagen.dir/lexicon.cc.o"
  "CMakeFiles/sdea_datagen.dir/lexicon.cc.o.d"
  "CMakeFiles/sdea_datagen.dir/presets.cc.o"
  "CMakeFiles/sdea_datagen.dir/presets.cc.o.d"
  "libsdea_datagen.a"
  "libsdea_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdea_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
