
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/generator.cc" "src/datagen/CMakeFiles/sdea_datagen.dir/generator.cc.o" "gcc" "src/datagen/CMakeFiles/sdea_datagen.dir/generator.cc.o.d"
  "/root/repo/src/datagen/lexicon.cc" "src/datagen/CMakeFiles/sdea_datagen.dir/lexicon.cc.o" "gcc" "src/datagen/CMakeFiles/sdea_datagen.dir/lexicon.cc.o.d"
  "/root/repo/src/datagen/presets.cc" "src/datagen/CMakeFiles/sdea_datagen.dir/presets.cc.o" "gcc" "src/datagen/CMakeFiles/sdea_datagen.dir/presets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kg/CMakeFiles/sdea_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sdea_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
