file(REMOVE_RECURSE
  "libsdea_datagen.a"
)
