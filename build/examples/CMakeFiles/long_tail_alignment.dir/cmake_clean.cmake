file(REMOVE_RECURSE
  "CMakeFiles/long_tail_alignment.dir/long_tail_alignment.cpp.o"
  "CMakeFiles/long_tail_alignment.dir/long_tail_alignment.cpp.o.d"
  "long_tail_alignment"
  "long_tail_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_tail_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
