# Empty compiler generated dependencies file for long_tail_alignment.
# This may be replaced when dependencies are built.
