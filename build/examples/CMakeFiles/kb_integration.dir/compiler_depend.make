# Empty compiler generated dependencies file for kb_integration.
# This may be replaced when dependencies are built.
