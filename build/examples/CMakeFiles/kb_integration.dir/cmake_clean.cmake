file(REMOVE_RECURSE
  "CMakeFiles/kb_integration.dir/kb_integration.cpp.o"
  "CMakeFiles/kb_integration.dir/kb_integration.cpp.o.d"
  "kb_integration"
  "kb_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
