file(REMOVE_RECURSE
  "CMakeFiles/embedding_serving.dir/embedding_serving.cpp.o"
  "CMakeFiles/embedding_serving.dir/embedding_serving.cpp.o.d"
  "embedding_serving"
  "embedding_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
