# Empty compiler generated dependencies file for embedding_serving.
# This may be replaced when dependencies are built.
