# Empty dependencies file for bench_table6_degrees.
# This may be replaced when dependencies are built.
