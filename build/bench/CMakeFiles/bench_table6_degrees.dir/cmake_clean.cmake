file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_degrees.dir/bench_table6_degrees.cc.o"
  "CMakeFiles/bench_table6_degrees.dir/bench_table6_degrees.cc.o.d"
  "bench_table6_degrees"
  "bench_table6_degrees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_degrees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
