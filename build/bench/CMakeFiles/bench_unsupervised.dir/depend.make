# Empty dependencies file for bench_unsupervised.
# This may be replaced when dependencies are built.
