file(REMOVE_RECURSE
  "CMakeFiles/bench_unsupervised.dir/bench_unsupervised.cc.o"
  "CMakeFiles/bench_unsupervised.dir/bench_unsupervised.cc.o.d"
  "bench_unsupervised"
  "bench_unsupervised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unsupervised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
