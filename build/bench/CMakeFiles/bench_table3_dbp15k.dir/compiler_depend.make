# Empty compiler generated dependencies file for bench_table3_dbp15k.
# This may be replaced when dependencies are built.
