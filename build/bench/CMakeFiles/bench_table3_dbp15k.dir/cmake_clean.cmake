file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_dbp15k.dir/bench_table3_dbp15k.cc.o"
  "CMakeFiles/bench_table3_dbp15k.dir/bench_table3_dbp15k.cc.o.d"
  "bench_table3_dbp15k"
  "bench_table3_dbp15k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_dbp15k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
