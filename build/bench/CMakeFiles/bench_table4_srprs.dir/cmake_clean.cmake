file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_srprs.dir/bench_table4_srprs.cc.o"
  "CMakeFiles/bench_table4_srprs.dir/bench_table4_srprs.cc.o.d"
  "bench_table4_srprs"
  "bench_table4_srprs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_srprs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
