# Empty compiler generated dependencies file for bench_table4_srprs.
# This may be replaced when dependencies are built.
