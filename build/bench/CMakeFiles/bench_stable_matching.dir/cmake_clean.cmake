file(REMOVE_RECURSE
  "CMakeFiles/bench_stable_matching.dir/bench_stable_matching.cc.o"
  "CMakeFiles/bench_stable_matching.dir/bench_stable_matching.cc.o.d"
  "bench_stable_matching"
  "bench_stable_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stable_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
