file(REMOVE_RECURSE
  "CMakeFiles/bench_extended_roster.dir/bench_extended_roster.cc.o"
  "CMakeFiles/bench_extended_roster.dir/bench_extended_roster.cc.o.d"
  "bench_extended_roster"
  "bench_extended_roster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extended_roster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
