# Empty compiler generated dependencies file for bench_extended_roster.
# This may be replaced when dependencies are built.
