file(REMOVE_RECURSE
  "CMakeFiles/bench_numeric_sensitivity.dir/bench_numeric_sensitivity.cc.o"
  "CMakeFiles/bench_numeric_sensitivity.dir/bench_numeric_sensitivity.cc.o.d"
  "bench_numeric_sensitivity"
  "bench_numeric_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_numeric_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
