# Empty compiler generated dependencies file for bench_numeric_sensitivity.
# This may be replaced when dependencies are built.
