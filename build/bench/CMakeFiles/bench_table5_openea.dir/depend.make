# Empty dependencies file for bench_table5_openea.
# This may be replaced when dependencies are built.
