file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_openea.dir/bench_table5_openea.cc.o"
  "CMakeFiles/bench_table5_openea.dir/bench_table5_openea.cc.o.d"
  "bench_table5_openea"
  "bench_table5_openea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_openea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
