# Empty dependencies file for sdea_bench_util.
# This may be replaced when dependencies are built.
