file(REMOVE_RECURSE
  "libsdea_bench_util.a"
)
