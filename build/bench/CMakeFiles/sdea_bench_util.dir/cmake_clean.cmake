file(REMOVE_RECURSE
  "CMakeFiles/sdea_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/sdea_bench_util.dir/bench_util.cc.o.d"
  "libsdea_bench_util.a"
  "libsdea_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdea_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
