// Regenerates Table IV: the four SRPRS datasets (EN-FR, EN-DE, DBP-WD,
// DBP-YG) — sparse, long-tail-heavy pairs with well-aligned names.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace sdea;
  const bench::BenchOptions options = bench::ParseOptions(argc, argv);
  bench::ResultTable table("Table IV: SRPRS benchmark");

  for (const datagen::DatasetSpec& spec : datagen::SrprsPresets()) {
    std::printf("[table4] dataset %s (%lld matched entities)\n",
                spec.config.name.c_str(),
                static_cast<long long>(
                    bench::DefaultMatchedEntities(spec, options)));
    const bench::DatasetRun run = bench::PrepareDataset(spec, options);
    for (const bench::MethodResult& r :
         bench::RunBaselines(run, bench::BaselineRoster{}, options)) {
      table.Add(spec.id, r);
      std::printf("[table4]   %-14s H@1=%5.1f  (%.1fs)\n", r.method.c_str(),
                  r.metrics.hits_at_1, r.seconds);
    }
    const bench::SdeaRun sdea =
        bench::RunSdea(run, bench::DefaultSdeaConfig(options));
    table.Add(spec.id, sdea.full);
    table.Add(spec.id, sdea.without_rel);
    std::printf("[table4]   %-14s H@1=%5.1f  (%.1fs)\n", "SDEA",
                sdea.full.metrics.hits_at_1, sdea.full.seconds);
  }
  table.Print();
  return 0;
}
