// Microbenchmarks for the observability layer itself: what one counter
// increment, histogram record, span enter/exit, and Enabled() check cost,
// plus the disabled fast path that every instrumentation site pays when
// tracing is off. These are the numbers behind the <=2% overhead claim in
// EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/obs.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace {

using namespace sdea;

void BM_ObsEnabledCheck(benchmark::State& state) {
  for (auto _ : state) {
    bool on = obs::Enabled();
    benchmark::DoNotOptimize(on);
  }
}
BENCHMARK(BM_ObsEnabledCheck);

void BM_ObsCounterIncrement(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench.counter");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_ObsCounterIncrement);

// Contended variant: all threads hammer one cache line, the worst case
// for the relaxed fetch_add discipline.
void BM_ObsCounterIncrementContended(benchmark::State& state) {
  static obs::Counter counter;
  for (auto _ : state) {
    counter.Increment();
  }
}
BENCHMARK(BM_ObsCounterIncrementContended)->Threads(4);

void BM_ObsGaugeAdd(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Gauge* gauge = registry.GetGauge("bench.gauge");
  for (auto _ : state) {
    gauge->Add(1.0);
  }
  benchmark::DoNotOptimize(gauge->Value());
}
BENCHMARK(BM_ObsGaugeAdd);

// Plain single-writer histogram (the train::Histogram replacement).
void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Histogram hist = obs::Histogram::Exponential(0.01, 4.0, 13);
  double v = 0.0;
  for (auto _ : state) {
    hist.Record(v);
    v = v < 100.0 ? v + 0.37 : 0.0;
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_ObsHistogramRecord);

// Concurrent registry cell (the ServeStats path).
void BM_ObsHistogramCellRecord(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::HistogramCell* cell = registry.GetHistogram(
      "bench.hist", obs::Histogram::Exponential(0.01, 4.0, 13).upper_bounds());
  double v = 0.0;
  for (auto _ : state) {
    cell->Record(v);
    v = v < 100.0 ? v + 0.37 : 0.0;
  }
}
BENCHMARK(BM_ObsHistogramCellRecord);

// Registry lookup by name: the cold path instrumentation sites pay once
// at handle resolution, never per record.
void BM_ObsRegistryLookup(benchmark::State& state) {
  obs::MetricsRegistry registry;
  registry.GetCounter("bench.lookup");
  for (auto _ : state) {
    obs::Counter* c = registry.GetCounter("bench.lookup");
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ObsRegistryLookup);

// Span enter/exit with tracing enabled, recording into a private buffer
// that is cleared as it fills (so the mutex append path stays exercised).
void BM_ObsSpanEnabled(benchmark::State& state) {
  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(true);
  obs::TraceBuffer buffer(1 << 12);
  for (auto _ : state) {
    obs::TraceSpan span("bench/span", &buffer);
    if (buffer.size() >= buffer.capacity()) buffer.Clear();
  }
  obs::SetEnabled(was_enabled);
}
BENCHMARK(BM_ObsSpanEnabled);

// The disabled fast path: one relaxed load, no recording. This is what
// every span-instrumented call site costs with SDEA_OBS_ENABLED=0.
void BM_ObsSpanDisabled(benchmark::State& state) {
  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(false);
  for (auto _ : state) {
    obs::TraceSpan span("bench/span");
    benchmark::DoNotOptimize(&span);
  }
  obs::SetEnabled(was_enabled);
}
BENCHMARK(BM_ObsSpanDisabled);

// Snapshot + text export at a realistic registry size.
void BM_ObsSnapshotAndExport(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (int i = 0; i < 16; ++i) {
    registry.GetCounter("bench.counter." + std::to_string(i))->Increment(i);
  }
  for (int i = 0; i < 4; ++i) {
    obs::HistogramCell* cell = registry.GetHistogram(
        "bench.hist." + std::to_string(i),
        obs::Histogram::Exponential(1.0, 2.0, 10).upper_bounds());
    for (int j = 0; j < 100; ++j) cell->Record(j * 3.7);
  }
  for (auto _ : state) {
    std::string text = obs::PrometheusText(registry.Snapshot());
    benchmark::DoNotOptimize(text.data());
  }
}
BENCHMARK(BM_ObsSnapshotAndExport);

}  // namespace

BENCHMARK_MAIN();
