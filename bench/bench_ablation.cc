// Design-choice ablations called out in DESIGN.md §3, run on one
// DBP15K-style dataset:
//   1. neighbor aggregation: BiGRU+attention (paper) vs mean pooling vs
//      attention-only (Section III-B discusses these alternatives);
//   2. attribute ordering: fixed random global order (Algorithm 1) vs
//      insertion order — the paper claims order-robustness;
//   3. sequence pooling: mean (our pre-trained-LM substitute default) vs
//      the paper's [CLS];
//   4. self-supervised encoder pre-training on vs off.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/attribute_sequencer.h"

namespace {

using sdea::bench::BenchOptions;
using sdea::bench::DatasetRun;
using sdea::bench::ResultTable;

void RunVariant(const DatasetRun& run, const std::string& name,
                const sdea::core::SdeaConfig& config, ResultTable* table) {
  const sdea::bench::SdeaRun r = sdea::bench::RunSdea(run, config);
  sdea::bench::MethodResult named = r.full;
  named.method = name;
  table->Add("ablation", named);
  std::printf("[ablation] %-28s H@1=%5.1f H@10=%5.1f (%.1fs)\n",
              name.c_str(), named.metrics.hits_at_1,
              named.metrics.hits_at_10, named.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdea;
  const BenchOptions options = bench::ParseOptions(argc, argv);
  const datagen::DatasetSpec spec = datagen::Dbp15kPresets()[0];  // ZH-EN.
  const DatasetRun run = bench::PrepareDataset(spec, options);
  std::printf("[ablation] dataset %s (%lld matched entities)\n",
              spec.config.name.c_str(),
              static_cast<long long>(
                  bench::DefaultMatchedEntities(spec, options)));

  ResultTable table("Ablation: SDEA design choices (DBP15K ZH-EN)");
  const core::SdeaConfig base = bench::DefaultSdeaConfig(options);

  RunVariant(run, "SDEA (BiGRU+attention)", base, &table);
  {
    core::SdeaConfig c = base;
    c.relation.aggregation = core::NeighborAggregation::kMeanPooling;
    RunVariant(run, "aggregation: mean pooling", c, &table);
  }
  {
    core::SdeaConfig c = base;
    c.relation.aggregation = core::NeighborAggregation::kAttentionOnly;
    RunVariant(run, "aggregation: attention only", c, &table);
  }
  {
    core::SdeaConfig c = base;
    c.attribute.order_seed_kg1 = core::AttributeSequencer::kIdentityOrder;
    c.attribute.order_seed_kg2 = core::AttributeSequencer::kIdentityOrder;
    RunVariant(run, "attr order: insertion", c, &table);
  }
  {
    core::SdeaConfig c = base;
    c.attribute.text.pooling = core::SequencePooling::kCls;
    RunVariant(run, "pooling: [CLS]", c, &table);
  }
  {
    core::SdeaConfig c = base;
    c.attribute.text.ssl_epochs = 0;
    RunVariant(run, "no self-supervised pretrain", c, &table);
  }
  table.Print();
  return 0;
}
