#ifndef SDEA_BENCH_BENCH_META_H_
#define SDEA_BENCH_BENCH_META_H_

#include <benchmark/benchmark.h>

#include <string>

#include "base/threadpool.h"
#include "tensor/kernels.h"

namespace sdea::bench {

/// Stamps the kernel configuration the numbers were taken under into the
/// google-benchmark JSON "context" block, so an archived BENCH_*.json is
/// self-describing: two files are only comparable when these keys agree.
inline void AddKernelContext() {
  benchmark::AddCustomContext(
      "sdea_kernel_mode",
      tmath::KernelModeName(tmath::ActiveKernelMode()));
  benchmark::AddCustomContext(
      "sdea_simd_level", tmath::SimdLevelName(tmath::ActiveSimdLevel()));
  benchmark::AddCustomContext("sdea_avx2_supported",
                              tmath::Avx2Supported() ? "true" : "false");
  benchmark::AddCustomContext(
      "sdea_threads",
      std::to_string(base::ThreadPool::DefaultNumThreads()));
}

}  // namespace sdea::bench

#endif  // SDEA_BENCH_BENCH_META_H_
