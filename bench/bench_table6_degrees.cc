// Regenerates Table VI: the proportion of entities whose relational degree
// falls in [1,3], [1,5], [1,10] for every dataset — the long-tail
// structure that motivates SDEA's design. Pure data generation; fast.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace sdea;
  const bench::BenchOptions options = bench::ParseOptions(argc, argv);

  eval::TablePrinter table(
      {"Dataset", "1~3", "1~5", "1~10", "entities", "rel triples"});
  for (const datagen::DatasetSpec& spec : datagen::AllPresets()) {
    datagen::GeneratorConfig cfg = spec.config;
    cfg.num_matched = bench::DefaultMatchedEntities(spec, options);
    const datagen::GeneratedBenchmark b =
        datagen::BenchmarkGenerator().Generate(cfg);
    const kg::KgStatistics s = b.kg1.ComputeStatistics();
    table.AddRow({spec.config.name,
                  eval::FormatPercent(100.0 * s.degree_le3) + "%",
                  eval::FormatPercent(100.0 * s.degree_le5) + "%",
                  eval::FormatPercent(100.0 * s.degree_le10) + "%",
                  std::to_string(s.num_entities),
                  std::to_string(s.num_relational_triples)});
  }
  std::printf("\n=== Table VI: proportion of entity degrees ===\n");
  table.Print();
  return 0;
}
