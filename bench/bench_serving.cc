// Online-serving throughput bench: sdea::serve::AlignmentServer (request
// batching + text-embedding cache + snapshot pinning) against a naive
// baseline where every client thread encodes and searches per query with
// no serving layer in between.
//
// Two sweeps, both on a deterministic synthetic store:
//   1. Client-thread sweep at a fixed 25%-distinct text workload: naive
//      vs. served(max_batch=1, cache on) vs. served(batched, cache on).
//   2. Cache-hit sweep at 4 client threads: distinct-text fraction
//      {100%, 50%, 25%, 10%}, naive vs. served batched.
//
// On a single-core box the served wins come from *less total work* —
// cache hits skip the encoder entirely and in-batch dedup encodes each
// unique text once — not from parallel search, so the numbers are a lower
// bound for multi-core hosts. Run with --fast for a smoke-sized config.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/embedding_store.h"
#include "obs/obs.h"
#include "serve/server.h"
#include "tensor/tensor.h"
#include "text/normalizer.h"

namespace {

using namespace sdea;
using serve::AlignmentServer;

constexpr int64_t kTopK = 10;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Deterministic store; two calls with the same arguments answer queries
// identically, so the naive baseline and the server can each own a copy.
core::EmbeddingStore MakeStore(int64_t n, int64_t d) {
  Rng rng(17);
  Tensor embeddings = Tensor::RandomNormal({n, d}, 1.0f, &rng);
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) names.push_back("e" + std::to_string(i));
  auto store =
      core::EmbeddingStore::Create(std::move(names), std::move(embeddings));
  SDEA_CHECK(store.ok());
  return std::move(store).value();
}

// Deterministic two-layer text encoder: hashed character trigrams ->
// hidden layer -> d-dim embedding. Stands in for the trained attribute
// encoder with a comparable per-text FLOP budget (the point of the bench
// is the serving layer, not the encoder quality). Row i depends only on
// texts[i], satisfying the BatchEncoderFn contract.
class HashTrigramEncoder {
 public:
  static constexpr int64_t kFeatures = 512;
  static constexpr int64_t kHidden = 256;

  explicit HashTrigramEncoder(int64_t dim) {
    Rng rng(23);
    w1_ = Tensor::RandomNormal({kFeatures, kHidden}, 0.1f, &rng);
    w2_ = Tensor::RandomNormal({kHidden, dim}, 0.1f, &rng);
  }

  Tensor operator()(const std::vector<std::string>& texts) const {
    const int64_t n = static_cast<int64_t>(texts.size());
    Tensor features({n, kFeatures}, 0.0f);
    for (int64_t i = 0; i < n; ++i) {
      const std::string& t = texts[static_cast<size_t>(i)];
      float* row = features.data() + i * kFeatures;
      for (size_t j = 0; j + 2 < t.size(); ++j) {
        uint64_t h = 1469598103934665603ull;
        for (size_t b = 0; b < 3; ++b) {
          h ^= static_cast<unsigned char>(t[j + b]);
          h *= 1099511628211ull;
        }
        row[h % kFeatures] += 1.0f;
      }
    }
    Tensor hidden = tmath::Matmul(features, w1_);
    for (int64_t i = 0; i < hidden.size(); ++i) {
      if (hidden[i] < 0.0f) hidden[i] = 0.0f;
    }
    return tmath::Matmul(hidden, w2_);
  }

 private:
  Tensor w1_, w2_;
};

// The query workload: every client draws from one shared pool of distinct
// texts, so the pool size controls the best achievable cache-hit rate.
std::vector<std::string> MakeTextPool(size_t distinct) {
  std::vector<std::string> pool;
  pool.reserve(distinct);
  for (size_t i = 0; i < distinct; ++i) {
    pool.push_back("Entity " + std::to_string(i) + " of realm " +
                   std::to_string(i % 13) + ", kingdom " +
                   std::to_string((i * 7) % 29));
  }
  return pool;
}

// Deterministic per-(client, query) pool pick. Clients walk disjoint
// sequential slices, so with pool size == total queries every text is
// asked exactly once (a true 0%-reuse workload) and with a smaller pool
// the reuse fraction is exactly 1 - pool/total.
const std::string& PickText(const std::vector<std::string>& pool, int client,
                            int query, int queries_per_thread) {
  const size_t idx = (static_cast<size_t>(client) *
                          static_cast<size_t>(queries_per_thread) +
                      static_cast<size_t>(query)) %
                     pool.size();
  return pool[idx];
}

struct RunResult {
  double qps = 0.0;
  // Fraction of text queries that skipped the encoder (served runs only):
  // LRU-cache hits plus in-batch duplicates folded into one encoder row.
  double encoder_skip = 0.0;
  double mean_batch = 0.0;  // Served runs only.
};

// Baseline: no serving layer. Each client thread normalizes, encodes, and
// searches its own queries; repeated texts pay the encoder every time.
RunResult RunNaive(const core::EmbeddingStore& store,
                   const HashTrigramEncoder& encode,
                   const std::vector<std::string>& pool, int threads,
                   int queries_per_thread) {
  const double start = NowSeconds();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(threads));
  for (int c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < queries_per_thread; ++q) {
        const std::string text = text::NormalizeText(
            PickText(pool, c, q, queries_per_thread));
        const Tensor embedding = encode({text});
        const auto answer =
            store.NearestNeighbors(embedding.Row(0), kTopK);
        SDEA_CHECK_EQ(answer.size(), static_cast<size_t>(kTopK));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  RunResult result;
  result.qps = threads * queries_per_thread / (NowSeconds() - start);
  return result;
}

RunResult RunServed(AlignmentServer* server,
                    const std::vector<std::string>& pool, int threads,
                    int queries_per_thread) {
  server->ClearCache();
  server->ResetStats();
  const double start = NowSeconds();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(threads));
  for (int c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < queries_per_thread; ++q) {
        auto answer = server->AlignText(
            PickText(pool, c, q, queries_per_thread), kTopK);
        SDEA_CHECK(answer.ok());
        SDEA_CHECK_EQ(answer->size(), static_cast<size_t>(kTopK));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds = NowSeconds() - start;
  const serve::StatsSnapshot stats = server->stats();
  RunResult result;
  result.qps = threads * queries_per_thread / seconds;
  if (stats.text_queries > 0) {
    result.encoder_skip =
        1.0 - static_cast<double>(stats.encoded_texts) /
                  static_cast<double>(stats.text_queries);
  }
  result.mean_batch = stats.mean_batch_size();
  return result;
}

void PrintRow(const char* mode, int threads, double distinct_frac,
              const RunResult& r, double naive_qps) {
  std::printf("  %-16s %7d %9.0f%% %10.0f %8.2fx %7.0f%% %10.2f\n", mode,
              threads, distinct_frac * 100.0, r.qps,
              naive_qps > 0.0 ? r.qps / naive_qps : 0.0,
              r.encoder_skip * 100.0, r.mean_batch);
}

void PrintHeader(const char* title) {
  std::printf("\n%s\n", title);
  std::printf("  %-16s %7s %10s %10s %9s %8s %10s\n", "mode", "threads",
              "distinct", "qps", "vs naive", "enc skip", "mean batch");
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }
  const int64_t n = fast ? 2000 : 20000;
  const int64_t d = 64;
  const int queries_per_thread = fast ? 100 : 400;

  std::printf("bench_serving: store n=%lld d=%lld, k=%lld, %d queries per "
              "client thread\n",
              static_cast<long long>(n), static_cast<long long>(d),
              static_cast<long long>(kTopK), queries_per_thread);

  const HashTrigramEncoder encode(d);

  // The naive baseline and the server each get an identical indexed store,
  // so both sides search the exact same structure.
  core::EmbeddingStore naive_store = MakeStore(n, d);
  naive_store.BuildIndex();

  // A short max_wait: with blocking single-in-flight clients, once every
  // client's request is queued no further request can arrive, so holding
  // the batch open past that point is pure stall. 20us is enough for the
  // just-unblocked clients to re-enqueue on a single core.
  serve::ServerOptions options;
  options.batcher.max_batch_size = 32;
  options.batcher.max_wait = std::chrono::microseconds(20);
  AlignmentServer server(options, [&encode](const auto& texts) {
    return encode(texts);
  });
  server.SwapSnapshot(MakeStore(n, d));

  // Sanity: the served answer is bitwise-identical to the naive one.
  {
    const std::vector<std::string> pool = MakeTextPool(8);
    const std::string text = text::NormalizeText(pool[3]);
    const auto direct =
        naive_store.NearestNeighbors(encode({text}).Row(0), kTopK);
    const auto served = server.AlignText(pool[3], kTopK);
    SDEA_CHECK(served.ok());
    SDEA_CHECK_EQ(direct.size(), served->size());
    for (size_t i = 0; i < direct.size(); ++i) {
      SDEA_CHECK_EQ(direct[i].id, (*served)[i].id);
      SDEA_CHECK(direct[i].similarity == (*served)[i].similarity);
    }
  }

  const serve::BatcherOptions unbatched{/*max_batch_size=*/1,
                                        std::chrono::microseconds(0)};
  const serve::BatcherOptions batched = options.batcher;

  // --- Sweep 1: client threads, 25% distinct texts. -----------------------
  PrintHeader("[thread sweep, 25% distinct texts]");
  double speedup_at_4 = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    const size_t total =
        static_cast<size_t>(threads) * static_cast<size_t>(queries_per_thread);
    const std::vector<std::string> pool =
        MakeTextPool(std::max<size_t>(1, total / 4));
    const RunResult naive =
        RunNaive(naive_store, encode, pool, threads, queries_per_thread);
    PrintRow("naive", threads, 0.25, naive, naive.qps);
    server.ReconfigureBatcher(unbatched);
    const RunResult served_1 =
        RunServed(&server, pool, threads, queries_per_thread);
    PrintRow("served batch=1", threads, 0.25, served_1, naive.qps);
    server.ReconfigureBatcher(batched);
    const RunResult served_b =
        RunServed(&server, pool, threads, queries_per_thread);
    PrintRow("served batched", threads, 0.25, served_b, naive.qps);
    if (threads == 4) speedup_at_4 = served_b.qps / naive.qps;
  }

  // --- Sweep 2: cache-hit rate at 4 client threads. -----------------------
  PrintHeader("[cache sweep, 4 client threads, served batched]");
  const int threads = 4;
  const size_t total =
      static_cast<size_t>(threads) * static_cast<size_t>(queries_per_thread);
  for (const double frac : {1.0, 0.5, 0.25, 0.1}) {
    const std::vector<std::string> pool = MakeTextPool(
        std::max<size_t>(1, static_cast<size_t>(total * frac)));
    const RunResult naive =
        RunNaive(naive_store, encode, pool, threads, queries_per_thread);
    PrintRow("naive", threads, frac, naive, naive.qps);
    const RunResult served =
        RunServed(&server, pool, threads, queries_per_thread);
    PrintRow("served batched", threads, frac, served, naive.qps);
  }

  // --- Sweep 3: obs instrumentation overhead on the served hot path. ------
  // Same workload with trace spans force-enabled vs force-disabled; the
  // delta bounds what the batcher/encode/search spans cost per query.
  PrintHeader("[obs overhead, 4 client threads, 25% distinct]");
  {
    const std::vector<std::string> pool =
        MakeTextPool(std::max<size_t>(1, total / 4));
    const bool was_enabled = obs::Enabled();
    obs::SetEnabled(false);
    const RunResult obs_off =
        RunServed(&server, pool, threads, queries_per_thread);
    PrintRow("served obs off", threads, 0.25, obs_off, obs_off.qps);
    obs::SetEnabled(true);
    const RunResult obs_on =
        RunServed(&server, pool, threads, queries_per_thread);
    PrintRow("served obs on", threads, 0.25, obs_on, obs_off.qps);
    obs::SetEnabled(was_enabled);
    std::printf("  obs-enabled overhead: %+.1f%% qps\n",
                100.0 * (obs_off.qps - obs_on.qps) / obs_off.qps);
  }

  std::printf("\nbatched+cached vs naive at 4 client threads (25%% "
              "distinct): %.2fx %s\n",
              speedup_at_4, speedup_at_4 > 1.0 ? "(PASS)" : "(FAIL)");
  return speedup_at_4 > 1.0 ? 0 : 1;
}
