// Regenerates Table V: the challenging OpenEA D-W datasets where KG2
// entity names are opaque Wikidata Q-ids. Rows match the paper: CEA (Emb),
// CEA, BERT-INT, SDEA, SDEA w/o rel. (name-dependent methods collapse;
// SDEA holds up through attribute semantics).
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace sdea;
  const bench::BenchOptions options = bench::ParseOptions(argc, argv);
  bench::ResultTable table("Table V: OpenEA D-W benchmark");

  for (const datagen::DatasetSpec& spec : datagen::OpenEaPresets()) {
    std::printf("[table5] dataset %s (%lld matched entities)\n",
                spec.config.name.c_str(),
                static_cast<long long>(
                    bench::DefaultMatchedEntities(spec, options)));
    const bench::DatasetRun run = bench::PrepareDataset(spec, options);
    bench::BaselineRoster roster;
    roster.mtranse = false;
    roster.transe_align = false;
    roster.bootea = false;
    roster.iptranse = false;
    roster.rsn4ea = false;
    roster.gcn = false;
    roster.gcn_align = false;
    roster.gat = false;
    // RDGCN stays on: the paper's Table V shows the name-initialized GCN
    // collapsing to 0.6 H@1 when names are Q-ids.
    for (const bench::MethodResult& r :
         bench::RunBaselines(run, roster, options)) {
      table.Add(spec.id, r);
      std::printf("[table5]   %-14s H@1=%5.1f  (%.1fs)\n", r.method.c_str(),
                  r.metrics.hits_at_1, r.seconds);
    }
    const bench::SdeaRun sdea =
        bench::RunSdea(run, bench::DefaultSdeaConfig(options));
    table.Add(spec.id, sdea.full);
    table.Add(spec.id, sdea.without_rel);
    std::printf("[table5]   %-14s H@1=%5.1f  (%.1fs)\n", "SDEA",
                sdea.full.metrics.hits_at_1, sdea.full.seconds);
  }
  table.Print();
  return 0;
}
