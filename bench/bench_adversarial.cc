// The accuracy cliff under dangling entities, and how much of it the
// calibrated abstain threshold recovers. For each dangling rate the
// AdversarialPreset pair is generated, one SDEA pipeline is trained, and
// the SAME model's decisions are scored twice on a dangling-aware gold:
// forced (every source matched, the pre-abstention behavior) vs abstain
// (threshold calibrated on dev = valid seeds + half the dangling sources,
// the other half held out for scoring). Emits BENCH_adversarial.json; the
// EXPERIMENTS.md robustness table is read off the counters.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_meta.h"
#include "core/alignment_pipeline.h"
#include "datagen/generator.h"
#include "datagen/presets.h"
#include "eval/abstention.h"
#include "eval/metrics.h"

namespace {

using namespace sdea;

// The reduced-scale SDEA hyper-parameters the paper-table benches use
// (bench_util.cc DefaultSdeaConfig), wrapped in a pipeline config.
core::PipelineConfig LightConfig() {
  core::PipelineConfig c;
  c.model.attribute.text.encoder.dim = 32;
  c.model.attribute.text.encoder.num_heads = 4;
  c.model.attribute.text.encoder.num_layers = 2;
  c.model.attribute.text.encoder.ff_dim = 64;
  c.model.attribute.text.encoder.max_len = 64;
  c.model.attribute.text.out_dim = 32;
  c.model.attribute.text.max_epochs = 25;
  c.model.attribute.text.patience = 5;
  c.model.attribute.text.negatives_per_pair = 3;
  c.model.attribute.text.ssl_epochs = 2;
  c.model.attribute.text.pretrain.epochs = 16;
  c.model.relation.hidden_dim = 32;
  c.model.relation.joint_dim = 32;
  c.model.relation.max_epochs = 20;
  c.model.relation.patience = 4;
  c.model.relation.batch_size = 32;
  // Greedy per-source argmax: the threshold question is well-posed when a
  // decision's score is its row top-1 (Gale–Shapley already abstains
  // structurally under N > M, which would conflate two effects here).
  c.use_stable_matching = false;
  // Forced matching: the decision layer accepts everything finite.
  c.min_similarity = -std::numeric_limits<float>::infinity();
  return c;
}

// One point of the cliff: state.range(0) is the dangling rate in percent.
void BM_DanglingCliff(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    const datagen::DatasetSpec spec = datagen::AdversarialPreset(rate);
    // Hold the surviving (matchable) pair count at ~300 across rates by
    // growing the world as dangling withholding eats it: the cliff should
    // measure decision quality under dangling traffic, not training
    // starvation from a shrinking seed set.
    const double keep = 1.0 - spec.config.dangling_frac_kg1 -
                        spec.config.dangling_frac_kg2;
    const datagen::GeneratedBenchmark bench = datagen::BenchmarkGenerator()
        .Generate(datagen::ScaledConfig(spec.config, 0.02 / keep));
    const kg::AlignmentSeeds seeds =
        kg::AlignmentSeeds::Split(bench.ground_truth, 3);

    core::AlignmentPipeline pipeline;
    auto result = pipeline.Run(bench.kg1, bench.kg2, seeds, LightConfig(),
                               bench.pretrain_corpus);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }

    // Dangling sources: even ones calibrate, odd ones evaluate.
    std::vector<kg::EntityId> dev_dangling, eval_dangling;
    for (size_t i = 0; i < bench.dangling_kg1.size(); ++i) {
      (i % 2 == 0 ? dev_dangling : eval_dangling)
          .push_back(bench.dangling_kg1[i]);
    }

    // Dangling-aware gold over every KG1 source: test pairs + held-out
    // dangling sources are queries, everything else is skipped.
    std::vector<int64_t> gold(
        static_cast<size_t>(bench.kg1.num_entities()), eval::kGoldSkip);
    for (const auto& [a, b] : seeds.test) gold[static_cast<size_t>(a)] = b;
    for (kg::EntityId e : eval_dangling) {
      gold[static_cast<size_t>(e)] = eval::kGoldDangling;
    }

    const eval::DecisionMetrics forced =
        eval::EvaluateDecisions(result->decisions, gold);

    // Calibrate on dev similarity rows and re-threshold the same model.
    Tensor e1 = pipeline.model().embeddings1();
    Tensor e2 = pipeline.model().embeddings2();
    tmath::L2NormalizeRowsInPlace(&e1);
    tmath::L2NormalizeRowsInPlace(&e2);
    const Tensor scores = tmath::MatmulTransposeB(e1, e2);

    std::vector<int64_t> dev_sources, dev_gold;
    for (const auto& [a, b] : seeds.valid) {
      dev_sources.push_back(a);
      dev_gold.push_back(b);
    }
    for (kg::EntityId e : dev_dangling) {
      dev_sources.push_back(e);
      dev_gold.push_back(eval::kGoldDangling);
    }
    Tensor dev({static_cast<int64_t>(dev_sources.size()), scores.dim(1)});
    for (size_t i = 0; i < dev_sources.size(); ++i) {
      dev.SetRow(static_cast<int64_t>(i), scores.Row(dev_sources[i]));
    }
    // Dev is dangling-heavy relative to the scored traffic (few held-out
    // seeds, many labeled danglings): declare the deployment prior so the
    // sweep optimizes for the right class balance.
    eval::CalibrationOptions copts;
    if (!eval_dangling.empty()) {
      copts.dangling_prior =
          static_cast<double>(eval_dangling.size()) /
          static_cast<double>(seeds.test.size() + eval_dangling.size());
    }
    const eval::AbstainThreshold rule =
        eval::CalibrateAbstainThreshold(dev, dev_gold, copts);

    std::vector<int64_t> decisions = result->decisions;
    eval::ApplyAbstainThreshold(scores, rule, &decisions);
    const eval::DecisionMetrics abstain =
        eval::EvaluateDecisions(decisions, gold);

    state.counters["hits1"] = result->test_metrics.hits_at_1;
    state.counters["f1_forced"] = forced.f1;
    state.counters["f1_abstain"] = abstain.f1;
    state.counters["precision_forced"] = forced.precision;
    state.counters["precision_abstain"] = abstain.precision;
    state.counters["recall_forced"] = forced.recall;
    state.counters["recall_abstain"] = abstain.recall;
    state.counters["abstain_rate"] = abstain.abstain_rate;
    state.counters["forced_on_dangling"] =
        static_cast<double>(forced.forced_on_dangling);
    state.counters["forced_on_dangling_abstain"] =
        static_cast<double>(abstain.forced_on_dangling);
    state.counters["threshold_min_similarity"] =
        rule.enabled ? rule.min_similarity : 0.0;
    state.counters["threshold_min_margin"] =
        rule.enabled ? rule.min_margin : 0.0;
    state.counters["dev_f1"] = rule.dev_f1;
  }
}
BENCHMARK(BM_DanglingCliff)
    ->Arg(0)
    ->Arg(10)
    ->Arg(30)
    ->Arg(50)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults to machine-readable JSON output
// (BENCH_adversarial.json) with the kernel configuration stamped into the
// context block, matching the other BENCH_*.json artifacts CI archives.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_adversarial.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  sdea::bench::AddKernelContext();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
