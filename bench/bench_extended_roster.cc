// Extended roster: every implemented baseline (all fourteen methods,
// covering essentially every row of the paper's Table II) on one
// cross-lingual and one sparse shared-name dataset. The main table benches
// keep the original roster for comparability; this binary records the
// late-added methods (JAPE, HMAN, TransEdge, KECG).
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace sdea;
  const bench::BenchOptions options = bench::ParseOptions(argc, argv);
  bench::ResultTable table("Extended roster (all implemented baselines)");

  bench::BaselineRoster roster;
  roster.jape = true;
  roster.hman = true;
  roster.transedge = true;
  roster.kecg = true;

  std::vector<datagen::DatasetSpec> specs = {
      datagen::Dbp15kPresets()[0],  // ZH-EN: cross-lingual, dense.
      datagen::SrprsPresets()[0],   // EN-FR: shared names, sparse.
  };
  for (const datagen::DatasetSpec& spec : specs) {
    std::printf("[roster] dataset %s (%lld matched entities)\n",
                spec.config.name.c_str(),
                static_cast<long long>(
                    bench::DefaultMatchedEntities(spec, options)));
    const bench::DatasetRun run = bench::PrepareDataset(spec, options);
    for (const bench::MethodResult& r :
         bench::RunBaselines(run, roster, options)) {
      table.Add(spec.id, r);
      std::printf("[roster]   %-15s H@1=%5.1f  (%.1fs)\n",
                  r.method.c_str(), r.metrics.hits_at_1, r.seconds);
    }
    const bench::SdeaRun sdea =
        bench::RunSdea(run, bench::DefaultSdeaConfig(options));
    table.Add(spec.id, sdea.full);
    table.Add(spec.id, sdea.without_rel);
    std::printf("[roster]   %-15s H@1=%5.1f  (%.1fs)\n", "SDEA",
                sdea.full.metrics.hits_at_1, sdea.full.seconds);
  }
  table.Print();
  return 0;
}
