// Decoder-validation throughput: what a full robustness pass over each
// binary decoder costs, and the per-decode cost of rejecting mutated
// blobs. These bound how long the `fuzz`-labeled ctest suites take and
// show that the bounds checks added for robustness are not a tax on the
// happy path (valid-blob decode is dominated by allocation/copy, not by
// the checks).
#include <benchmark/benchmark.h>

#include "base/rng.h"
#include "core/embedding_store.h"
#include "datagen/generator.h"
#include "kg/binary_io.h"
#include "nn/layers.h"
#include "nn/serialization.h"
#include "testing/fuzz.h"
#include "train/checkpoint.h"

namespace sdea {
namespace {

std::string KgBlob() {
  datagen::GeneratorConfig cfg;
  cfg.num_matched = 200;
  auto bench = datagen::BenchmarkGenerator().Generate(cfg);
  return kg::EncodeBinary(bench.kg1);
}

std::string CheckpointBlob() {
  train::TrainerCheckpoint ckpt;
  ckpt.metric_history.assign(64, 0.5);
  ckpt.order.resize(4096);
  ckpt.params = std::string(1 << 16, 'p');
  ckpt.best_params = std::string(1 << 16, 'b');
  ckpt.optimizer = std::string(1 << 17, 'o');
  return train::CheckpointManager::Encode(ckpt);
}

std::string EmbeddingBlob() {
  std::vector<std::string> names;
  for (int i = 0; i < 1024; ++i) names.push_back("entity_" + std::to_string(i));
  Tensor emb({1024, 64}, 0.5f);
  auto store = core::EmbeddingStore::Create(std::move(names), std::move(emb));
  SDEA_CHECK(store.ok());
  return store->Encode();
}

void BM_DecodeKg(benchmark::State& state) {
  const std::string blob = KgBlob();
  for (auto _ : state) {
    auto decoded = kg::DecodeBinary(blob);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(blob.size()) *
                          state.iterations());
}
BENCHMARK(BM_DecodeKg);

void BM_DecodeCheckpoint(benchmark::State& state) {
  const std::string blob = CheckpointBlob();
  for (auto _ : state) {
    auto decoded = train::CheckpointManager::Decode(blob);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(blob.size()) *
                          state.iterations());
}
BENCHMARK(BM_DecodeCheckpoint);

void BM_DecodeEmbeddingStore(benchmark::State& state) {
  const std::string blob = EmbeddingBlob();
  for (auto _ : state) {
    auto decoded = core::EmbeddingStore::Decode(blob);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(blob.size()) *
                          state.iterations());
}
BENCHMARK(BM_DecodeEmbeddingStore);

void BM_DecodeParams(benchmark::State& state) {
  Rng rng(1);
  nn::Mlp module("m", {64, 128, 64}, nn::Activation::kRelu, &rng);
  const std::string blob = nn::SerializeParameters(&module);
  for (auto _ : state) {
    const Status s = nn::DeserializeParameters(&module, blob);
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(blob.size()) *
                          state.iterations());
}
BENCHMARK(BM_DecodeParams);

// One mutate+decode fuzz case, the unit the 5000-iteration suites repeat:
// mostly rejects, occasionally a still-valid blob.
void BM_MutateAndDecodeKg(benchmark::State& state) {
  const std::string blob = KgBlob();
  Rng rng(0x5dea);
  for (auto _ : state) {
    const std::string mutated = sdea::testing::MutateBlob(blob, &rng, 8);
    auto decoded = kg::DecodeBinary(mutated);
    benchmark::DoNotOptimize(decoded.ok());
  }
}
BENCHMARK(BM_MutateAndDecodeKg);

void BM_MutateAndDecodeEmbeddingStore(benchmark::State& state) {
  const std::string blob = EmbeddingBlob();
  Rng rng(0x5dea);
  for (auto _ : state) {
    const std::string mutated = sdea::testing::MutateBlob(blob, &rng, 8);
    auto decoded = core::EmbeddingStore::Decode(mutated);
    benchmark::DoNotOptimize(decoded.ok());
  }
}
BENCHMARK(BM_MutateAndDecodeEmbeddingStore);

}  // namespace
}  // namespace sdea

BENCHMARK_MAIN();
