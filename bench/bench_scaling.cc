// Scaling behaviour: SDEA fit wall-time and accuracy as the dataset grows
// (attribute module only, fixed epochs, so the comparison isolates
// per-entity cost). Complements the kernel microbenchmarks with an
// end-to-end scaling picture.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace sdea;
  const bench::BenchOptions options = bench::ParseOptions(argc, argv);
  const datagen::DatasetSpec base = datagen::SrprsPresets()[0];

  eval::TablePrinter table(
      {"matched entities", "fit seconds", "H@1", "H@10"});
  for (const int64_t n : {200, 400, 800}) {
    datagen::DatasetSpec spec = base;
    spec.config.num_matched = n;
    bench::BenchOptions local = options;
    local.full = true;  // Use spec.config.num_matched verbatim.
    const bench::DatasetRun run = bench::PrepareDataset(spec, local);
    core::SdeaConfig config = bench::DefaultSdeaConfig(options);
    config.use_relation_module = false;
    config.attribute.text.max_epochs = 10;  // Fixed epochs for comparability.
    config.attribute.text.patience = 10;
    const bench::SdeaRun r = bench::RunSdea(run, config);
    table.AddRow({std::to_string(n),
                  eval::FormatPercent(r.full.seconds),
                  eval::FormatPercent(r.full.metrics.hits_at_1),
                  eval::FormatPercent(r.full.metrics.hits_at_10)});
    std::printf("[scaling] n=%lld fit=%.1fs H@1=%.1f\n",
                static_cast<long long>(n), r.full.seconds,
                r.full.metrics.hits_at_1);
  }
  std::printf("\n=== Scaling sweep (SRPRS EN-FR preset, attr-only) ===\n");
  table.Print();
  return 0;
}
