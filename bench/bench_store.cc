// google-benchmark microbenchmarks for the sdea::store quantized snapshot
// layer: codebook encoding, the ADC scan kernels in every (mode, simd)
// variant, snapshot open latency (the O(ms) mmap claim), and the end-to-end
// compressed-candidates query against the full-precision baseline. Memory
// footprints are emitted as counters so the JSON records the compression
// ratios next to the latencies.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/rng.h"
#include "bench/bench_meta.h"
#include "core/embedding_store.h"
#include "store/adc.h"
#include "store/candidates.h"
#include "store/quantized_store.h"
#include "store/quantizer.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace {

using namespace sdea;
using tmath::KernelMode;
using tmath::SimdLevel;

// Pins (mode, level) for one benchmark run; same idiom as bench_kernels.
class ScopedVariant {
 public:
  ScopedVariant(KernelMode mode, SimdLevel level)
      : saved_mode_(tmath::ActiveKernelMode()),
        saved_level_(tmath::ActiveSimdLevel()) {
    tmath::SetKernelMode(mode);
    tmath::SetSimdLevel(level);
  }
  ~ScopedVariant() {
    tmath::SetKernelMode(saved_mode_);
    tmath::SetSimdLevel(saved_level_);
  }

 private:
  KernelMode saved_mode_;
  SimdLevel saved_level_;
};

bool SkipUnsupported(benchmark::State& state, SimdLevel level) {
  if (level == SimdLevel::kAvx2 && !tmath::Avx2Supported()) {
    state.SkipWithError("AVX2+FMA not supported on this host");
    return true;
  }
  return false;
}

Tensor RandomRows(int64_t n, int64_t d, uint64_t seed) {
  Rng rng(seed);
  Tensor t({n, d});
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng.UniformFloat(-1.0f, 1.0f);
  }
  tmath::L2NormalizeRowsInPlace(&t);
  return t;
}

std::vector<std::string> Names(int64_t n) {
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) names.push_back("e" + std::to_string(i));
  return names;
}

std::string TempStoreDir(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

void BM_Int8Encode(benchmark::State& state) {
  const int64_t n = state.range(0), d = 128;
  const Tensor rows = RandomRows(n, d, 1);
  const store::Codebook cb = store::Codebook::TrainInt8(rows);
  for (auto _ : state) {
    auto codes = cb.EncodeRows(rows.data(), n);
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Int8Encode)->Arg(4096)->Arg(32768);

void BM_PqEncode(benchmark::State& state) {
  const int64_t n = state.range(0), d = 128;
  const Tensor rows = RandomRows(n, d, 2);
  store::PqOptions options;
  options.num_subspaces = 16;
  auto cb = store::Codebook::TrainPq(rows, options);
  SDEA_CHECK(cb.ok());
  for (auto _ : state) {
    auto codes = cb->EncodeRows(rows.data(), n);
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PqEncode)->Arg(4096);

void BM_AdcScanInt8(benchmark::State& state, KernelMode mode,
                    SimdLevel level) {
  if (SkipUnsupported(state, level)) return;
  ScopedVariant variant(mode, level);
  const int64_t n = state.range(0), d = 128;
  const Tensor rows = RandomRows(n, d, 3);
  const store::Codebook cb = store::Codebook::TrainInt8(rows);
  const std::vector<uint8_t> codes = cb.EncodeRows(rows.data(), n);
  const Tensor q = RandomRows(1, d, 4);
  std::vector<float> q_scaled(static_cast<size_t>(d));
  store::Int8PrepareQuery(q.data(), cb.scales().data(), d, q_scaled.data());
  std::vector<float> scores(static_cast<size_t>(n));
  for (auto _ : state) {
    store::AdcScanInt8(codes.data(), n, d, q_scaled.data(), scores.data());
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * n * d);
}
BENCHMARK_CAPTURE(BM_AdcScanInt8, exact, KernelMode::kExact,
                  SimdLevel::kScalar)
    ->Arg(65536);
BENCHMARK_CAPTURE(BM_AdcScanInt8, fast_scalar, KernelMode::kFast,
                  SimdLevel::kScalar)
    ->Arg(65536);
BENCHMARK_CAPTURE(BM_AdcScanInt8, fast_avx2, KernelMode::kFast,
                  SimdLevel::kAvx2)
    ->Arg(65536);

void BM_AdcScanPq(benchmark::State& state, KernelMode mode,
                  SimdLevel level) {
  if (SkipUnsupported(state, level)) return;
  ScopedVariant variant(mode, level);
  const int64_t n = state.range(0), d = 128;
  const Tensor rows = RandomRows(n, d, 5);
  store::PqOptions options;
  options.num_subspaces = 16;
  auto cb = store::Codebook::TrainPq(rows, options);
  SDEA_CHECK(cb.ok());
  const std::vector<uint8_t> codes = cb->EncodeRows(rows.data(), n);
  const Tensor q = RandomRows(1, d, 6);
  std::vector<float> lut(
      static_cast<size_t>(cb->pq_subspaces() * cb->pq_centroids()));
  store::PqBuildLut(q.data(), *cb, lut.data());
  std::vector<float> scores(static_cast<size_t>(n));
  for (auto _ : state) {
    store::AdcScanPq(codes.data(), n, cb->pq_subspaces(),
                     cb->pq_centroids(), lut.data(), scores.data());
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * n * cb->pq_subspaces());
}
BENCHMARK_CAPTURE(BM_AdcScanPq, exact, KernelMode::kExact,
                  SimdLevel::kScalar)
    ->Arg(65536);
BENCHMARK_CAPTURE(BM_AdcScanPq, fast_scalar, KernelMode::kFast,
                  SimdLevel::kScalar)
    ->Arg(65536);
BENCHMARK_CAPTURE(BM_AdcScanPq, fast_avx2, KernelMode::kFast,
                  SimdLevel::kAvx2)
    ->Arg(65536);

void BM_StoreOpen(benchmark::State& state) {
  // The open-latency claim: only the manifest and the shard header pages
  // are touched, so opening is O(shards), not O(rows). The counters record
  // the on-disk compression the opened store reports.
  const int64_t n = state.range(0), d = 64;
  const std::string dir =
      TempStoreDir("sdea_bench_open_" + std::to_string(n));
  store::StoreWriteOptions options;
  options.rows_per_shard = 65536;
  SDEA_CHECK_OK(
      store::QuantizedStore::Write(dir, Names(n), RandomRows(n, d, 7),
                                   options));
  int64_t compressed = 0, full = 0;
  for (auto _ : state) {
    auto opened = store::QuantizedStore::Open(dir);
    SDEA_CHECK(opened.ok());
    compressed = opened->compressed_bytes();
    full = opened->full_precision_bytes();
    benchmark::DoNotOptimize(opened->size());
  }
  state.counters["compressed_bytes"] =
      benchmark::Counter(static_cast<double>(compressed));
  state.counters["full_precision_bytes"] =
      benchmark::Counter(static_cast<double>(full));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StoreOpen)->Arg(100000)->Unit(benchmark::kMillisecond);

// Current resident set in MiB, from /proc/self/status. Good enough to show
// a query sweep pages in the compressed region, not the full-precision one.
double VmRssMb() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double mb = 0.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long kb = 0;
    if (std::sscanf(line, "VmRSS: %ld kB", &kb) == 1) {
      mb = static_cast<double>(kb) / 1024.0;
      break;
    }
  }
  std::fclose(f);
  return mb;
}

void BM_StoreOpen1M(benchmark::State& state) {
  // The headline acceptance number: a 1,000,000-entity sharded snapshot
  // opens in O(ms) — only the manifest and four shard header pages are
  // read — and a query sweep grows RSS by roughly the compressed size
  // (64 MB of int8 codes here), not the 256 MB the full-precision rows
  // would cost resident. Written once per bench process, ADC-only.
  const int64_t n = 1'000'000, d = 64;
  static const std::string* dir = [] {
    auto* path = new std::string(TempStoreDir("sdea_bench_open_1m"));
    store::StoreWriteOptions options;
    options.rows_per_shard = 262'144;
    options.store_full_precision = false;
    SDEA_CHECK_OK(store::QuantizedStore::Write(
        *path, Names(1'000'000), RandomRows(1'000'000, 64, 12), options));
    return path;
  }();
  for (auto _ : state) {
    auto opened = store::QuantizedStore::Open(*dir);
    SDEA_CHECK(opened.ok());
    benchmark::DoNotOptimize(opened->size());
  }
  auto opened = store::QuantizedStore::Open(*dir);
  SDEA_CHECK(opened.ok());
  const double rss_before = VmRssMb();
  const Tensor queries = RandomRows(16, d, 13);
  for (int64_t i = 0; i < queries.dim(0); ++i) {
    auto c = opened->Candidates(queries.Row(i), 10);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["sweep_rss_delta_mb"] =
      benchmark::Counter(VmRssMb() - rss_before);
  state.counters["compressed_bytes"] =
      benchmark::Counter(static_cast<double>(opened->compressed_bytes()));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StoreOpen1M)->Unit(benchmark::kMillisecond);

void BM_QuantizedSearch(benchmark::State& state, store::Quantization kind) {
  const int64_t n = state.range(0), d = 64;
  const std::string dir = TempStoreDir(
      "sdea_bench_search_" + std::string(store::QuantizationName(kind)));
  store::StoreWriteOptions options;
  options.quantization = kind;
  SDEA_CHECK_OK(store::QuantizedStore::Write(dir, Names(n),
                                             RandomRows(n, d, 8), options));
  auto opened = store::QuantizedStore::Open(dir);
  SDEA_CHECK(opened.ok());
  const Tensor q = RandomRows(1, d, 9);
  for (auto _ : state) {
    auto neighbors = opened->NearestNeighbors(q.Row(0), 10);
    benchmark::DoNotOptimize(neighbors.data());
  }
  state.counters["compressed_bytes"] =
      benchmark::Counter(static_cast<double>(opened->compressed_bytes()));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_CAPTURE(BM_QuantizedSearch, int8, store::Quantization::kInt8)
    ->Arg(100000);
BENCHMARK_CAPTURE(BM_QuantizedSearch, pq, store::Quantization::kPq)
    ->Arg(100000);

void BM_FullPrecisionSearch(benchmark::State& state) {
  // The baseline the quantized rows compare against: the in-RAM
  // EmbeddingStore exact scan over the same data.
  const int64_t n = state.range(0), d = 64;
  auto ref = core::EmbeddingStore::Create(Names(n), RandomRows(n, d, 8));
  SDEA_CHECK(ref.ok());
  const Tensor q = RandomRows(1, d, 9);
  for (auto _ : state) {
    auto neighbors = ref->NearestNeighbors(q.Row(0), 10);
    benchmark::DoNotOptimize(neighbors.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FullPrecisionSearch)->Arg(100000);

void BM_CompressedCandidates(benchmark::State& state,
                             store::Quantization kind) {
  const int64_t n = state.range(0), d = 64;
  const Tensor src = RandomRows(n, d, 10);
  const Tensor tgt = RandomRows(n, d, 11);
  store::CompressedCandidateOptions options;
  options.quantization = kind;
  for (auto _ : state) {
    auto c = store::GenerateCandidatesCompressed(src, tgt, 10, options);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_CAPTURE(BM_CompressedCandidates, int8, store::Quantization::kInt8)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CompressedCandidates, pq, store::Quantization::kPq)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults to machine-readable JSON output
// (BENCH_store.json) with the kernel configuration stamped into the
// context block. CI archives that file next to BENCH_kernels.json.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_store.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  sdea::bench::AddKernelContext();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
