#ifndef SDEA_BENCH_BENCH_UTIL_H_
#define SDEA_BENCH_BENCH_UTIL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sdea.h"
#include "datagen/presets.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"

namespace sdea::bench {

/// Command-line options shared by the table benches.
///
///   --scale=<f>   multiply each preset's entity count by f
///   --full        paper-scale datasets (hours of CPU; default is reduced)
///   --fast        extra-small smoke configuration
struct BenchOptions {
  double scale = 1.0;
  bool full = false;
  bool fast = false;
};

BenchOptions ParseOptions(int argc, char** argv);

/// The per-dataset default entity budget at bench scale (DESIGN.md §4
/// "Scale knobs"): reduced so the whole suite fits a single-core run;
/// EXPERIMENTS.md records the effective scale.
int64_t DefaultMatchedEntities(const datagen::DatasetSpec& spec,
                               const BenchOptions& options);

/// A generated dataset plus its 2:1:7 split, ready to train on.
struct DatasetRun {
  datagen::DatasetSpec spec;
  datagen::GeneratedBenchmark bench;
  kg::AlignmentSeeds seeds;
};

DatasetRun PrepareDataset(const datagen::DatasetSpec& spec,
                          const BenchOptions& options);

/// SDEA hyper-parameters tuned for the reduced bench scale.
core::SdeaConfig DefaultSdeaConfig(const BenchOptions& options);

/// One method's metrics on one dataset.
struct MethodResult {
  std::string method;
  eval::RankingMetrics metrics;
  double seconds = 0.0;
  /// True for post-pass rows (CEA's stable matching) where only Hits@1 is
  /// defined; the table renders the other cells as "-".
  bool hits1_only = false;
};

/// Trains SDEA once and reports both the full model and the w/o-rel
/// ablation (from the same fit). The fitted model is returned for optional
/// post-passes (stable matching).
struct SdeaRun {
  MethodResult full;
  MethodResult without_rel;
  std::unique_ptr<core::SdeaModel> model;
};

SdeaRun RunSdea(const DatasetRun& run, const core::SdeaConfig& config);

/// Which baselines to run.
struct BaselineRoster {
  bool mtranse = true;
  bool transe_align = true;  // JAPE-Stru flavour.
  bool bootea = true;
  bool iptranse = true;
  bool rsn4ea = true;
  bool rdgcn = true;
  bool gcn = true;
  bool gcn_align = true;
  bool gat = true;
  bool bert_int = true;
  bool cea = true;  // Emits both CEA (Emb) and CEA rows.
  // Added after the recorded bench run; off by default so the recorded
  // tables stay reproducible. Flip on to include them.
  bool jape = false;
  bool hman = false;
  bool transedge = false;
  bool kecg = false;
};

std::vector<MethodResult> RunBaselines(const DatasetRun& run,
                                       const BaselineRoster& roster,
                                       const BenchOptions& options);

/// Accumulates method x dataset metrics and prints a paper-style table:
/// one row per method, three columns (H@1, H@10, MRR) per dataset.
class ResultTable {
 public:
  explicit ResultTable(std::string title) : title_(std::move(title)) {}

  void Add(const std::string& dataset, const MethodResult& result);

  /// Hits@1-only entry (the paper reports CEA's stable matching this way).
  void AddHits1Only(const std::string& dataset, const std::string& method,
                    double hits1);

  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> datasets_;   // Column order of first appearance.
  std::vector<std::string> methods_;    // Row order of first appearance.
  std::map<std::pair<std::string, std::string>, MethodResult> cells_;
  std::map<std::pair<std::string, std::string>, double> hits1_only_;
};

/// Wall-clock helper.
double NowSeconds();

}  // namespace sdea::bench

#endif  // SDEA_BENCH_BENCH_UTIL_H_
