// google-benchmark microbenchmarks for the hot kernels underneath SDEA:
// dense/sparse matmul, tokenizer encode, transformer & BiGRU forward,
// candidate generation, stable matching, and benchmark generation.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "base/threadpool.h"
#include "bench/bench_meta.h"
#include "core/ann_index.h"
#include "core/candidate_generator.h"
#include "core/stable_matching.h"
#include "datagen/generator.h"
#include "eval/metrics.h"
#include "nn/gru.h"
#include "nn/transformer.h"
#include "tensor/kernels.h"
#include "tensor/topk.h"
#include "text/tokenizer.h"

namespace {

using namespace sdea;

// Rebuilds the global pool at the requested size for the *Threaded benches
// and restores the ambient default on destruction.
class ScopedThreads {
 public:
  explicit ScopedThreads(int num_threads) {
    base::ThreadPool::SetGlobalNumThreads(num_threads);
  }
  ~ScopedThreads() {
    base::ThreadPool::SetGlobalNumThreads(
        base::ThreadPool::DefaultNumThreads());
  }
};

// --- Kernel-variant matrix: (exact | fast) x (scalar | avx2). ------------
// Registered via BENCHMARK_CAPTURE so rows read e.g.
// BM_Matmul512/fast_avx2; compare rows of the same shape to read off the
// exact-mode cost and the AVX2-vs-scalar speedup. AVX2 rows skip with an
// error on hosts without AVX2+FMA instead of silently running scalar.

using tmath::KernelMode;
using tmath::SimdLevel;

// Pins (mode, level) for the duration of one benchmark run and restores
// the ambient configuration afterwards.
class ScopedVariant {
 public:
  ScopedVariant(KernelMode mode, SimdLevel level)
      : saved_mode_(tmath::ActiveKernelMode()),
        saved_level_(tmath::ActiveSimdLevel()) {
    tmath::SetKernelMode(mode);
    tmath::SetSimdLevel(level);
  }
  ~ScopedVariant() {
    tmath::SetKernelMode(saved_mode_);
    tmath::SetSimdLevel(saved_level_);
  }

 private:
  KernelMode saved_mode_;
  SimdLevel saved_level_;
};

bool SkipUnsupported(benchmark::State& state, SimdLevel level) {
  if (level == SimdLevel::kAvx2 && !tmath::Avx2Supported()) {
    state.SkipWithError("AVX2+FMA not supported on this host");
    return true;
  }
  return false;
}

void BM_Matmul512(benchmark::State& state, KernelMode mode,
                  SimdLevel level) {
  if (SkipUnsupported(state, level)) return;
  ScopedVariant variant(mode, level);
  Rng rng(21);
  Tensor a = Tensor::RandomNormal({256, 512}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal({512, 256}, 1.0f, &rng);
  for (auto _ : state) {
    Tensor c = tmath::Matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 256 * 512 * 256);
}
BENCHMARK_CAPTURE(BM_Matmul512, exact, KernelMode::kExact,
                  SimdLevel::kScalar);
BENCHMARK_CAPTURE(BM_Matmul512, fast_scalar, KernelMode::kFast,
                  SimdLevel::kScalar);
BENCHMARK_CAPTURE(BM_Matmul512, fast_avx2, KernelMode::kFast,
                  SimdLevel::kAvx2);

void BM_ScoreMatrix512(benchmark::State& state, KernelMode mode,
                       SimdLevel level) {
  // MatmulTransposeB over 512-dim rows: the alignment score matrix.
  if (SkipUnsupported(state, level)) return;
  ScopedVariant variant(mode, level);
  Rng rng(22);
  Tensor a = Tensor::RandomNormal({256, 512}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal({256, 512}, 1.0f, &rng);
  for (auto _ : state) {
    Tensor c = tmath::MatmulTransposeB(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 256 * 512 * 256);
}
BENCHMARK_CAPTURE(BM_ScoreMatrix512, exact, KernelMode::kExact,
                  SimdLevel::kScalar);
BENCHMARK_CAPTURE(BM_ScoreMatrix512, fast_scalar, KernelMode::kFast,
                  SimdLevel::kScalar);
BENCHMARK_CAPTURE(BM_ScoreMatrix512, fast_avx2, KernelMode::kFast,
                  SimdLevel::kAvx2);

void BM_Gemv512(benchmark::State& state, KernelMode mode, SimdLevel level) {
  // One query against `rows` stored 512-dim rows — the per-request shape
  // of candidate generation and EmbeddingStore::NearestNeighbors. Each
  // row is streamed exactly once, so the store size picks the regime:
  // 512 rows (1 MB) stay L2-resident and compare kernel throughput,
  // 8192 rows (16 MB) spill to L3/DRAM where every variant converges on
  // memory bandwidth and the SIMD gap narrows.
  if (SkipUnsupported(state, level)) return;
  ScopedVariant variant(mode, level);
  const int64_t rows_n = state.range(0);
  Rng rng(23);
  Tensor rows = Tensor::RandomNormal({rows_n, 512}, 1.0f, &rng);
  Tensor x = Tensor::RandomNormal({512}, 1.0f, &rng);
  std::vector<float> y(static_cast<size_t>(rows_n));
  for (auto _ : state) {
    tmath::kernels::Gemv(rows.data(), rows_n, 512, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * rows_n * 512);
}
BENCHMARK_CAPTURE(BM_Gemv512, exact, KernelMode::kExact, SimdLevel::kScalar)
    ->Arg(512)
    ->Arg(8192);
BENCHMARK_CAPTURE(BM_Gemv512, fast_scalar, KernelMode::kFast,
                  SimdLevel::kScalar)
    ->Arg(512)
    ->Arg(8192);
BENCHMARK_CAPTURE(BM_Gemv512, fast_avx2, KernelMode::kFast, SimdLevel::kAvx2)
    ->Arg(512)
    ->Arg(8192);

// --- Top-k selection: radix select vs the old partial_sort. --------------
// Same (score desc, index asc) answer; compare BM_TopKRadix/m to
// BM_TopKPartialSort/m. k = 10, the candidate-generation default.

std::vector<float> TopKScores(int64_t m) {
  Rng rng(24);
  std::vector<float> scores(static_cast<size_t>(m));
  for (float& s : scores) s = rng.UniformFloat(-1.0f, 1.0f);
  return scores;
}

void BM_TopKRadix(benchmark::State& state) {
  const int64_t m = state.range(0);
  const std::vector<float> scores = TopKScores(m);
  for (auto _ : state) {
    auto top = tmath::TopK(scores.data(), m, 10);
    benchmark::DoNotOptimize(top.data());
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_TopKRadix)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_TopKPartialSort(benchmark::State& state) {
  const int64_t m = state.range(0);
  const std::vector<float> scores = TopKScores(m);
  for (auto _ : state) {
    // The pre-radix implementation all four call sites hand-rolled.
    std::vector<int64_t> order(static_cast<size_t>(m));
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                      [&](int64_t a, int64_t b) {
                        const float sa = scores[static_cast<size_t>(a)];
                        const float sb = scores[static_cast<size_t>(b)];
                        if (sa != sb) return sa > sb;
                        return a < b;
                      });
    order.resize(10);
    benchmark::DoNotOptimize(order.data());
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_TopKPartialSort)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandomNormal({n, n}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal({n, n}, 1.0f, &rng);
  for (auto _ : state) {
    Tensor c = tmath::Matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatmulTransposeB(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  Tensor a = Tensor::RandomNormal({n, 32}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal({n, 32}, 1.0f, &rng);
  for (auto _ : state) {
    Tensor c = tmath::MatmulTransposeB(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatmulTransposeB)->Arg(256)->Arg(1024);

// --- Serial-vs-N-thread comparisons for the sharded kernels. -------------
// Arg 0 is the problem size, arg 1 the thread count; compare rows with the
// same size to read off the scaling (e.g. {512, 1} vs {512, 8} Matmul).

void BM_MatmulThreaded(benchmark::State& state) {
  const int64_t n = state.range(0);
  ScopedThreads threads(static_cast<int>(state.range(1)));
  Rng rng(1);
  Tensor a = Tensor::RandomNormal({n, n}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal({n, n}, 1.0f, &rng);
  for (auto _ : state) {
    Tensor c = tmath::Matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulThreaded)
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->Args({512, 8})
    ->Unit(benchmark::kMillisecond);

void BM_ScoreMatrixThreaded(benchmark::State& state) {
  // The n x m cosine score matrix behind the paper's tables:
  // MatmulTransposeB over row-normalized embeddings.
  const int64_t n = state.range(0);
  ScopedThreads threads(static_cast<int>(state.range(1)));
  Rng rng(2);
  Tensor a = Tensor::RandomNormal({n, 64}, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal({n, 64}, 1.0f, &rng);
  for (auto _ : state) {
    Tensor c = tmath::MatmulTransposeB(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * 64);
}
BENCHMARK(BM_ScoreMatrixThreaded)
    ->Args({2048, 1})
    ->Args({2048, 8})
    ->Unit(benchmark::kMillisecond);

void BM_EvaluateAlignmentThreaded(benchmark::State& state) {
  const int64_t n = state.range(0);
  ScopedThreads threads(static_cast<int>(state.range(1)));
  Rng rng(3);
  Tensor src = Tensor::RandomNormal({n, 64}, 1.0f, &rng);
  Tensor tgt = Tensor::RandomNormal({n, 64}, 1.0f, &rng);
  std::vector<int64_t> gold(static_cast<size_t>(n));
  for (size_t i = 0; i < gold.size(); ++i) {
    gold[i] = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n)));
  }
  for (auto _ : state) {
    auto m = eval::EvaluateAlignment(src, tgt, gold);
    benchmark::DoNotOptimize(&m);
  }
}
BENCHMARK(BM_EvaluateAlignmentThreaded)
    ->Args({2048, 1})
    ->Args({2048, 8})
    ->Unit(benchmark::kMillisecond);

void BM_IvfQueryBatchThreaded(benchmark::State& state) {
  const int64_t n = state.range(0);
  ScopedThreads threads(static_cast<int>(state.range(1)));
  Rng rng(4);
  Tensor tgt = Tensor::RandomNormal({n, 64}, 1.0f, &rng);
  Tensor src = Tensor::RandomNormal({n, 64}, 1.0f, &rng);
  const core::IvfIndex index(tgt, core::IvfOptions{});
  for (auto _ : state) {
    auto c = index.QueryBatch(src, 10);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_IvfQueryBatchThreaded)
    ->Args({4000, 1})
    ->Args({4000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_StableMatchingThreaded(benchmark::State& state) {
  const int64_t n = state.range(0);
  ScopedThreads threads(static_cast<int>(state.range(1)));
  Rng rng(5);
  Tensor scores = Tensor::RandomNormal({n, n}, 1.0f, &rng);
  for (auto _ : state) {
    auto m = core::StableMatch(scores);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_StableMatchingThreaded)
    ->Args({800, 1})
    ->Args({800, 8})
    ->Unit(benchmark::kMillisecond);

void BM_SparseMatmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  std::vector<std::tuple<int64_t, int64_t, float>> coo;
  for (int64_t i = 0; i < n * 8; ++i) {
    coo.emplace_back(static_cast<int64_t>(rng.UniformInt(n)),
                     static_cast<int64_t>(rng.UniformInt(n)), 1.0f);
  }
  CsrMatrix m = CsrMatrix::FromTriplets(n, n, coo);
  Tensor x = Tensor::RandomNormal({n, 64}, 1.0f, &rng);
  for (auto _ : state) {
    Tensor y = m.Apply(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SparseMatmul)->Arg(1000)->Arg(4000);

text::SubwordTokenizer* SharedTokenizer() {
  static text::SubwordTokenizer* tok = [] {
    auto* t = new text::SubwordTokenizer();
    datagen::GeneratorConfig cfg;
    cfg.num_matched = 300;
    const auto bench = datagen::BenchmarkGenerator().Generate(cfg);
    std::vector<std::string> corpus;
    for (const auto& tr : bench.kg1.attribute_triples()) {
      corpus.push_back(tr.value);
    }
    SDEA_CHECK_OK(t->Train(corpus, text::TokenizerConfig{}));
    return t;
  }();
  return tok;
}

void BM_TokenizerEncode(benchmark::State& state) {
  text::SubwordTokenizer* tok = SharedTokenizer();
  const std::string text =
      "kola ruma bani 1987 gendo mari tesa roma lipu kada nore sapa";
  for (auto _ : state) {
    auto ids = tok->Encode(text);
    benchmark::DoNotOptimize(ids.data());
  }
}
BENCHMARK(BM_TokenizerEncode);

void BM_TransformerEncode(benchmark::State& state) {
  const int64_t t_len = state.range(0);
  Rng rng(5);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 1000;
  cfg.max_len = 128;
  cfg.dim = 32;
  cfg.num_heads = 4;
  cfg.num_layers = 2;
  cfg.ff_dim = 64;
  nn::TransformerEncoder enc("t", cfg, &rng);
  std::vector<int64_t> ids;
  for (int64_t i = 0; i < t_len; ++i) {
    ids.push_back(static_cast<int64_t>(rng.UniformInt(1000)));
  }
  for (auto _ : state) {
    Graph g;
    NodeId out = enc.EncodeMean(&g, ids, false, nullptr);
    benchmark::DoNotOptimize(&g.Value(out));
  }
}
BENCHMARK(BM_TransformerEncode)->Arg(16)->Arg(64);

void BM_BiGruForward(benchmark::State& state) {
  const int64_t t_len = state.range(0);
  Rng rng(6);
  nn::BiGru gru("g", 32, 32, &rng);
  Tensor x = Tensor::RandomNormal({t_len, 32}, 1.0f, &rng);
  for (auto _ : state) {
    Graph g;
    NodeId out = gru.Forward(&g, g.Input(x));
    benchmark::DoNotOptimize(&g.Value(out));
  }
}
BENCHMARK(BM_BiGruForward)->Arg(8)->Arg(24);

void BM_CandidateGeneration(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(7);
  Tensor src = Tensor::RandomNormal({n, 32}, 1.0f, &rng);
  Tensor tgt = Tensor::RandomNormal({n, 32}, 1.0f, &rng);
  for (auto _ : state) {
    auto c = core::GenerateCandidates(src, tgt, 10);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_CandidateGeneration)->Arg(500)->Arg(2000);

void BM_CandidateGenerationIvf(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(7);
  Tensor src = Tensor::RandomNormal({n, 32}, 1.0f, &rng);
  Tensor tgt = Tensor::RandomNormal({n, 32}, 1.0f, &rng);
  for (auto _ : state) {
    auto c = core::GenerateCandidatesApprox(src, tgt, 10);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_CandidateGenerationIvf)->Arg(500)->Arg(2000);

void BM_StableMatching(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(8);
  Tensor scores = Tensor::RandomNormal({n, n}, 1.0f, &rng);
  for (auto _ : state) {
    auto m = core::StableMatch(scores);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_StableMatching)->Arg(200)->Arg(800);

void BM_BenchmarkGeneration(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    datagen::GeneratorConfig cfg;
    cfg.num_matched = n;
    auto b = datagen::BenchmarkGenerator().Generate(cfg);
    benchmark::DoNotOptimize(b.ground_truth.data());
  }
}
BENCHMARK(BM_BenchmarkGeneration)->Arg(500)->Arg(2000);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults to machine-readable JSON output in
// the working directory (BENCH_kernels.json) when the caller didn't pass
// --benchmark_out themselves. CI archives that file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_kernels.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  sdea::bench::AddKernelContext();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
