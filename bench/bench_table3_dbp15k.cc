// Regenerates Table III: Hits@1 / Hits@10 / MRR of SDEA, the SDEA w/o rel.
// ablation, and the baseline roster on the three DBP15K cross-lingual
// pairs (ZH-EN, JA-EN, FR-EN). Runs at reduced scale by default
// (see bench_util.h flags and EXPERIMENTS.md).
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace sdea;
  const bench::BenchOptions options = bench::ParseOptions(argc, argv);
  bench::ResultTable table("Table III: DBP15K benchmark");

  for (const datagen::DatasetSpec& spec : datagen::Dbp15kPresets()) {
    std::printf("[table3] dataset %s (%lld matched entities)\n",
                spec.config.name.c_str(),
                static_cast<long long>(
                    bench::DefaultMatchedEntities(spec, options)));
    const bench::DatasetRun run = bench::PrepareDataset(spec, options);
    for (const bench::MethodResult& r :
         bench::RunBaselines(run, bench::BaselineRoster{}, options)) {
      table.Add(spec.id, r);
      std::printf("[table3]   %-14s H@1=%5.1f  (%.1fs)\n", r.method.c_str(),
                  r.metrics.hits_at_1, r.seconds);
    }
    const bench::SdeaRun sdea =
        bench::RunSdea(run, bench::DefaultSdeaConfig(options));
    table.Add(spec.id, sdea.full);
    table.Add(spec.id, sdea.without_rel);
    std::printf("[table3]   %-14s H@1=%5.1f  (%.1fs)\n", "SDEA",
                sdea.full.metrics.hits_at_1, sdea.full.seconds);
  }
  table.Print();
  return 0;
}
