// Microbenchmarks for the training runtime: Trainer driver overhead per
// batch (no-op task, so only the loop machinery is measured), checkpoint
// encode/decode at realistic parameter sizes, and the atomic save path.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "base/rng.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/serialization.h"
#include "obs/obs.h"
#include "train/checkpoint.h"
#include "train/trainer.h"

namespace {

using namespace sdea;

class BenchNet : public nn::Module {
 public:
  explicit BenchNet(int64_t rows) {
    Rng rng(1);
    w = AddParameter("bench.w", Tensor::RandomNormal({rows, 64}, 0.1f, &rng));
  }
  Parameter* w;
};

class NoopTask : public train::TrainTask {
 public:
  explicit NoopTask(size_t n) : n_(n), rng_(7), net_(8) {
    optimizer_ = std::make_unique<nn::Sgd>(net_.Parameters(), 0.01f);
  }
  size_t num_examples() const override { return n_; }
  Rng* rng() override { return &rng_; }
  float TrainBatch(const uint64_t* ids, size_t n) override {
    benchmark::DoNotOptimize(ids);
    benchmark::DoNotOptimize(n);
    return 0.0f;
  }
  nn::Module* module() override { return &net_; }
  nn::Optimizer* optimizer() override { return optimizer_.get(); }

 private:
  size_t n_;
  Rng rng_;
  BenchNet net_;
  std::unique_ptr<nn::Optimizer> optimizer_;
};

// Driver overhead: shuffle + batching + stats, with TrainBatch a no-op.
// The second argument toggles obs instrumentation (spans + registry
// recording), so comparing obs:0 vs obs:1 rows measures its cost and the
// obs:0 row against historical numbers bounds the disabled-path overhead.
void BM_TrainerEpochOverhead(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(state.range(1) != 0);
  NoopTask task(n);
  train::TrainerOptions opts;
  opts.max_epochs = 1;
  opts.batch_size = 64;
  for (auto _ : state) {
    train::Trainer trainer(&task, opts);
    auto stats = trainer.Run();
    benchmark::DoNotOptimize(stats);
  }
  obs::SetEnabled(was_enabled);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_TrainerEpochOverhead)
    ->ArgNames({"n", "obs"})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1});

train::TrainerCheckpoint MakeCheckpoint(int64_t rows) {
  BenchNet net(rows);
  nn::Adam adam(net.Parameters(), 1e-3f);
  Rng rng(3);
  train::TrainerCheckpoint ckpt;
  ckpt.next_epoch = 10;
  ckpt.epochs_run = 10;
  ckpt.order.resize(4096);
  ckpt.rng = rng.SaveState();
  ckpt.params = nn::SerializeParameters(&net);
  ckpt.best_params = ckpt.params;
  adam.SerializeState(&ckpt.optimizer);
  return ckpt;
}

void BM_CheckpointEncode(benchmark::State& state) {
  const auto ckpt = MakeCheckpoint(state.range(0));
  for (auto _ : state) {
    std::string blob = train::CheckpointManager::Encode(ckpt);
    benchmark::DoNotOptimize(blob.data());
    state.SetBytesProcessed(state.bytes_processed() +
                            static_cast<int64_t>(blob.size()));
  }
}
BENCHMARK(BM_CheckpointEncode)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CheckpointDecode(benchmark::State& state) {
  const std::string blob =
      train::CheckpointManager::Encode(MakeCheckpoint(state.range(0)));
  for (auto _ : state) {
    auto ckpt = train::CheckpointManager::Decode(blob);
    benchmark::DoNotOptimize(ckpt);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_CheckpointDecode)->Arg(1000)->Arg(10000)->Arg(100000);

// The full atomic save (encode + temp file + rename): what one epoch of
// periodic checkpointing costs on the training path.
void BM_CheckpointAtomicSave(benchmark::State& state) {
  const auto ckpt = MakeCheckpoint(state.range(0));
  const char* dir = std::getenv("TMPDIR");
  const std::string path =
      std::string(dir != nullptr ? dir : "/tmp") + "/sdea_bench_ckpt.bin";
  train::CheckpointManager mgr(path);
  for (auto _ : state) {
    auto status = mgr.Save(ckpt);
    benchmark::DoNotOptimize(status);
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_CheckpointAtomicSave)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
