// Section V-B1's stable-matching observation: applying Gale–Shapley over
// SDEA's embeddings lifts 1-1 Hits@1 (the paper reports JA-EN 84.8 -> 89.8,
// beating CEA's 86.3). This bench reproduces the raw-vs-stable contrast.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/stable_matching.h"

int main(int argc, char** argv) {
  using namespace sdea;
  const bench::BenchOptions options = bench::ParseOptions(argc, argv);
  const datagen::DatasetSpec spec = datagen::Dbp15kPresets()[1];  // JA-EN.
  const bench::DatasetRun run = bench::PrepareDataset(spec, options);
  std::printf("[stable] dataset %s (%lld matched entities)\n",
              spec.config.name.c_str(),
              static_cast<long long>(
                  bench::DefaultMatchedEntities(spec, options)));

  const bench::SdeaRun sdea =
      bench::RunSdea(run, bench::DefaultSdeaConfig(options));

  // Raw greedy ranking Hits@1 vs Gale–Shapley over the same embeddings.
  const std::vector<int64_t> match = core::StableMatchEmbeddings(
      sdea.model->embeddings1(), sdea.model->embeddings2());
  std::vector<int64_t> sub_match, gold;
  for (const auto& [a, b] : run.seeds.test) {
    sub_match.push_back(match[static_cast<size_t>(a)]);
    gold.push_back(b);
  }
  const double stable_h1 = core::MatchingAccuracy(sub_match, gold);

  eval::TablePrinter table({"Variant", "H@1"});
  table.AddRow({"SDEA (greedy ranking)",
                eval::FormatPercent(sdea.full.metrics.hits_at_1)});
  table.AddRow({"SDEA + stable matching", eval::FormatPercent(stable_h1)});
  std::printf("\n=== Stable matching post-pass (DBP15K JA-EN) ===\n");
  table.Print();
  return 0;
}
