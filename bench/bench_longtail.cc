// Section V-B2: long-tail analysis. Evaluates SDEA per degree bucket
// (1-3 / 4-5 / 6-10 / >10) on an SRPRS-style dataset, against a
// structure-only baseline — SDEA's margin must be widest on the low-degree
// buckets, where graph methods starve.
#include <cstdio>

#include "bench/bench_util.h"
#include "baselines/gcn_align.h"

int main(int argc, char** argv) {
  using namespace sdea;
  const bench::BenchOptions options = bench::ParseOptions(argc, argv);
  const datagen::DatasetSpec spec = datagen::SrprsPresets()[0];  // EN-FR.
  const bench::DatasetRun run = bench::PrepareDataset(spec, options);
  std::printf("[longtail] dataset %s (%lld matched entities)\n",
              spec.config.name.c_str(),
              static_cast<long long>(
                  bench::DefaultMatchedEntities(spec, options)));

  const std::vector<int64_t> buckets{3, 5, 10};
  const char* bucket_names[] = {"deg 1-3", "deg 4-5", "deg 6-10",
                                "deg >10"};

  // SDEA per-bucket.
  const bench::SdeaRun sdea =
      bench::RunSdea(run, bench::DefaultSdeaConfig(options));
  const auto sdea_buckets =
      sdea.model->EvaluateByDegree(run.bench.kg1, run.seeds.test, buckets);

  // Structure-only baseline per-bucket.
  auto gcn_config = baselines::GcnConfig();
  gcn_config.epochs = options.fast ? 40 : 120;
  baselines::GcnAlign gcn(gcn_config);
  const baselines::AlignInput input{&run.bench.kg1, &run.bench.kg2,
                                    &run.seeds};
  SDEA_CHECK_OK(gcn.Fit(input));
  // Bucket the GCN results with the same machinery.
  Tensor src({static_cast<int64_t>(run.seeds.test.size()),
              gcn.embeddings1().dim(1)});
  std::vector<int64_t> gold, degrees;
  for (size_t i = 0; i < run.seeds.test.size(); ++i) {
    src.SetRow(static_cast<int64_t>(i),
               gcn.embeddings1().Row(run.seeds.test[i].first));
    gold.push_back(run.seeds.test[i].second);
    degrees.push_back(run.bench.kg1.degree(run.seeds.test[i].first));
  }
  const auto gcn_buckets = eval::EvaluateByDegree(
      src, gcn.embeddings2(), gold, degrees, buckets);

  eval::TablePrinter table(
      {"Bucket", "queries", "GCN H@1", "SDEA H@1", "SDEA H@10"});
  for (size_t b = 0; b < sdea_buckets.size(); ++b) {
    table.AddRow({bucket_names[b],
                  std::to_string(sdea_buckets[b].num_queries),
                  eval::FormatPercent(gcn_buckets[b].hits_at_1),
                  eval::FormatPercent(sdea_buckets[b].hits_at_1),
                  eval::FormatPercent(sdea_buckets[b].hits_at_10)});
  }
  std::printf("\n=== Long-tail degree buckets (SRPRS EN-FR) ===\n");
  table.Print();
  return 0;
}
