// Columnar KG store microbenchmarks: full-scan and neighbors-scan against
// the seed row-store views (the facade's legacy mirror vectors), snapshot
// pin cost, reader tail latency while a writer commits concurrently, and
// memory per triple for both representations. Emits BENCH_kg.json; CI
// archives it next to the other BENCH_*.json artifacts.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_meta.h"
#include "kg/columnar.h"
#include "kg/knowledge_graph.h"
#include "obs/histogram.h"

namespace {

using namespace sdea;

constexpr int64_t kEntities = 20000;
constexpr int64_t kRelationCount = 32;
constexpr int64_t kAttributeCount = 8;

// Formula-generated triples (same idiom as the MVCC torture test): every
// row is a pure function of its index, so graphs of any size are cheap to
// build and identical across runs.
kg::EntityId HeadAt(int64_t row) {
  return static_cast<kg::EntityId>((row * 7 + 3) % kEntities);
}
kg::RelationId RelAt(int64_t row) {
  return static_cast<kg::RelationId>((row * 5 + 1) % kRelationCount);
}
kg::EntityId TailAt(int64_t row) {
  return static_cast<kg::EntityId>((row * 11 + 5) % kEntities);
}
kg::AttributeId AttrAt(int64_t row) {
  return static_cast<kg::AttributeId>(row % kAttributeCount);
}
std::string ValueAt(int64_t row) {
  // 23 distinct values: sealed attribute chunks dictionary-encode, which
  // is the representative shape for real attribute columns.
  return "value_" + std::to_string(row % 23);
}

kg::KnowledgeGraph BuildGraph(int64_t rel_rows, int64_t attr_rows) {
  kg::KnowledgeGraph g;
  g.BeginBulkLoad();
  for (int64_t i = 0; i < kEntities; ++i) {
    g.AddEntity("entity_" + std::to_string(i));
  }
  for (int64_t i = 0; i < kRelationCount; ++i) {
    g.AddRelation("rel_" + std::to_string(i));
  }
  for (int64_t i = 0; i < kAttributeCount; ++i) {
    g.AddAttribute("attr_" + std::to_string(i));
  }
  for (int64_t row = 0; row < rel_rows; ++row) {
    g.AddRelationalTriple(HeadAt(row), RelAt(row), TailAt(row));
  }
  for (int64_t row = 0; row < attr_rows; ++row) {
    g.AddAttributeTriple(HeadAt(row), AttrAt(row), ValueAt(row));
  }
  g.EndBulkLoad();
  return g;
}

// Heap footprint of the seed representation: contiguous row vectors plus
// the per-value string heap (what the pre-columnar KnowledgeGraph held).
int64_t RowStoreHeapBytes(const kg::KnowledgeGraph& g) {
  int64_t bytes = static_cast<int64_t>(g.relational_triples().capacity() *
                                       sizeof(kg::RelationalTriple));
  bytes += static_cast<int64_t>(g.attribute_triples().capacity() *
                                sizeof(kg::AttributeTriple));
  for (const kg::AttributeTriple& t : g.attribute_triples()) {
    if (t.value.size() > sizeof(std::string)) {
      bytes += static_cast<int64_t>(t.value.capacity());
    }
  }
  return bytes;
}

void BM_FullScanRows(benchmark::State& state) {
  const int64_t n = state.range(0);
  const kg::KnowledgeGraph g = BuildGraph(n, n);
  // Touch both views once so the lazy mirrors are materialized in setup,
  // not inside the timed loop.
  benchmark::DoNotOptimize(g.relational_triples().size());
  benchmark::DoNotOptimize(g.attribute_triples().size());
  for (auto _ : state) {
    int64_t acc = 0;
    for (const kg::RelationalTriple& t : g.relational_triples()) {
      acc += t.head + t.relation + t.tail;
    }
    for (const kg::AttributeTriple& t : g.attribute_triples()) {
      acc += t.entity + static_cast<int64_t>(t.value.size());
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
  state.counters["rows_bytes_per_triple"] = benchmark::Counter(
      static_cast<double>(RowStoreHeapBytes(g)) / static_cast<double>(2 * n));
}
BENCHMARK(BM_FullScanRows)->Arg(100000)->Arg(500000);

void BM_FullScanColumnar(benchmark::State& state) {
  const int64_t n = state.range(0);
  const kg::KnowledgeGraph g = BuildGraph(n, n);
  const kg::KgSnapshot snap = g.Snapshot();
  for (auto _ : state) {
    int64_t acc = 0;
    snap.ForEachRelational(
        [&](int64_t, kg::EntityId h, kg::RelationId r, kg::EntityId t) {
          acc += h + r + t;
        });
    snap.ForEachAttribute([&](int64_t, kg::EntityId e, kg::AttributeId,
                              const std::string& value) {
      acc += e + static_cast<int64_t>(value.size());
    });
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
  state.counters["columnar_bytes_per_triple"] = benchmark::Counter(
      static_cast<double>(g.columnar().ApproxHeapBytes()) /
      static_cast<double>(2 * n));
}
BENCHMARK(BM_FullScanColumnar)->Arg(100000)->Arg(500000);

void BM_NeighborsRows(benchmark::State& state) {
  const int64_t n = state.range(0);
  const kg::KnowledgeGraph g = BuildGraph(n, 0);
  benchmark::DoNotOptimize(g.neighbors(0).size());  // Materialize mirrors.
  for (auto _ : state) {
    int64_t acc = 0;
    for (kg::EntityId e = 0; e < kEntities; ++e) {
      for (const kg::NeighborEdge& edge : g.neighbors(e)) {
        acc += edge.neighbor;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kEntities);
}
BENCHMARK(BM_NeighborsRows)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_NeighborsColumnar(benchmark::State& state) {
  const int64_t n = state.range(0);
  const kg::KnowledgeGraph g = BuildGraph(n, 0);
  const kg::KgSnapshot snap = g.Snapshot();
  for (auto _ : state) {
    int64_t acc = 0;
    for (kg::EntityId e = 0; e < kEntities; ++e) {
      for (const kg::NeighborEdge& edge : snap.NeighborsOf(e)) {
        acc += edge.neighbor;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kEntities);
}
BENCHMARK(BM_NeighborsColumnar)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_SnapshotPin(benchmark::State& state) {
  const kg::KnowledgeGraph g = BuildGraph(100000, 100000);
  for (auto _ : state) {
    const kg::KgSnapshot snap = g.Snapshot();
    benchmark::DoNotOptimize(snap.epoch());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotPin);

void BM_ReaderUnderWriter(benchmark::State& state) {
  // Tail latency of pin + neighbors lookup while a single writer keeps
  // appending and committing. p50/p99 land in the JSON as counters.
  const int64_t n = state.range(0);
  kg::KnowledgeGraph g = BuildGraph(n, 0);
  std::atomic<bool> stop{false};
  std::thread writer([&g, &stop, n] {
    // Batched ingest cadence: 64 rows per published commit, like a loader
    // streaming triples in. A zero-think-time commit-per-Add loop would
    // measure mutex starvation of this synthetic writer, not reader cost.
    int64_t row = n;
    while (!stop.load(std::memory_order_acquire)) {
      g.BeginBulkLoad();
      for (int i = 0; i < 64; ++i, ++row) {
        g.AddRelationalTriple(HeadAt(row), RelAt(row), TailAt(row));
      }
      g.EndBulkLoad();
      std::this_thread::yield();
    }
  });

  obs::Histogram latency_ns = obs::Histogram::Exponential(64.0, 2.0, 24);
  kg::EntityId e = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const kg::KgSnapshot snap = g.Snapshot();
    const auto edges = snap.NeighborsOf(e);
    const auto end = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(edges.size());
    latency_ns.Record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count()));
    e = (e + 1) % kEntities;
  }
  stop.store(true, std::memory_order_release);
  writer.join();

  state.SetItemsProcessed(state.iterations());
  state.counters["reader_p50_ns"] =
      benchmark::Counter(latency_ns.Quantile(0.5));
  state.counters["reader_p99_ns"] =
      benchmark::Counter(latency_ns.Quantile(0.99));
  state.counters["reader_max_ns"] = benchmark::Counter(latency_ns.max());
}
BENCHMARK(BM_ReaderUnderWriter)->Arg(100000)->Unit(benchmark::kMicrosecond);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults to machine-readable JSON output
// (BENCH_kg.json) with the kernel configuration stamped into the context
// block, matching the other BENCH_*.json artifacts CI archives.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_kg.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  sdea::bench::AddKernelContext();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
