// Incremental-alignment benchmarks on the d_stream preset: the headline
// staleness-vs-cost comparison (incremental ProcessIncrement per batch vs
// one full retrain on the final graphs, same seeds, same eval pairs), the
// DiffSince/TouchedEntities micros, the ApplyUpdate ingest rate, and the
// obs on/off overhead of an increment. Emits BENCH_incr.json; the
// EXPERIMENTS.md staleness-vs-cost table is read off the counters.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_meta.h"
#include "datagen/streaming.h"
#include "incr/aligner.h"
#include "incr/update_log.h"
#include "kg/knowledge_graph.h"
#include "obs/obs.h"

namespace {

using namespace sdea;

incr::IncrementalAlignerOptions StreamOptions() {
  incr::IncrementalAlignerOptions opts;
  opts.dim = 48;
  opts.base_epochs = 150;
  opts.incr_epochs = 15;
  opts.affected_frac_cap = 0.10;
  opts.pull_lr = 0.01f;
  opts.k_hops = 2;
  return opts;
}

// The staleness-vs-cost run: fit the base state, stream every d_stream
// increment through ProcessIncrement, then retrain from scratch on the
// *same* final graphs and score both models on the same eval pairs. The
// counters are the acceptance numbers: hits1 gap (points), max per-
// increment affected fraction, and wall-clock for each path.
void BM_StalenessVsCost(benchmark::State& state) {
  for (auto _ : state) {
    datagen::StreamingBenchmark stream =
        datagen::GenerateStreaming(datagen::StreamingPreset().config);

    // Seeds: a base-resolvable training split; everything else (plus every
    // streamed pair) is evaluation-only.
    std::vector<std::pair<kg::EntityId, kg::EntityId>> seeds;
    std::vector<std::pair<kg::EntityId, kg::EntityId>> eval_pairs;
    const size_t train = stream.base_truth.size() * 3 / 10;
    for (size_t i = 0; i < stream.base_truth.size(); ++i) {
      (i < train ? seeds : eval_pairs).push_back(stream.base_truth[i]);
    }

    incr::IncrementalAligner aligner(&stream.kg1, &stream.kg2,
                                     StreamOptions());
    const auto base_t0 = std::chrono::steady_clock::now();
    Status fit = aligner.FitBase(seeds);
    if (!fit.ok()) {
      state.SkipWithError(fit.ToString().c_str());
      return;
    }
    const double base_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - base_t0)
            .count();

    double incr_ms = 0.0;
    double max_affected_frac = 0.0;
    int64_t promoted = 0;
    for (size_t i = 0; i < stream.increments.size(); ++i) {
      incr::ApplyUpdate(stream.increments[i].kg1, &stream.kg1);
      incr::ApplyUpdate(stream.increments[i].kg2, &stream.kg2);
      auto rep = aligner.ProcessIncrement();
      if (!rep.ok()) {
        state.SkipWithError(rep.status().ToString().c_str());
        return;
      }
      incr_ms += rep->total_ms;
      max_affected_frac = std::max(max_affected_frac, rep->affected_frac());
      promoted += rep->promoted;
      for (const auto& pair : datagen::ResolveNamePairs(
               stream.kg1, stream.kg2, stream.truth_names[i])) {
        eval_pairs.push_back(pair);
      }
    }
    const double incr_hits1 = aligner.Evaluate(eval_pairs).hits_at_1;

    // Full retrain on the identical final graphs, same seeds.
    incr::IncrementalAligner full(&stream.kg1, &stream.kg2, StreamOptions());
    const auto full_t0 = std::chrono::steady_clock::now();
    fit = full.FitBase(seeds);
    if (!fit.ok()) {
      state.SkipWithError(fit.ToString().c_str());
      return;
    }
    const double full_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - full_t0)
            .count();
    const double full_hits1 = full.Evaluate(eval_pairs).hits_at_1;

    state.counters["incr_hits1"] = incr_hits1;
    state.counters["full_hits1"] = full_hits1;
    state.counters["hits1_gap_pts"] = full_hits1 - incr_hits1;
    state.counters["max_affected_frac"] = max_affected_frac;
    state.counters["bootstrap_promoted"] = static_cast<double>(promoted);
    state.counters["base_fit_ms"] = base_ms;
    state.counters["incr_total_ms"] = incr_ms;
    state.counters["full_retrain_ms"] = full_ms;
    state.counters["incr_vs_full_speedup"] =
        incr_ms > 0.0 ? full_ms / incr_ms : 0.0;
  }
}
BENCHMARK(BM_StalenessVsCost)->Iterations(1)->Unit(benchmark::kSecond);

void BM_DiffSince(benchmark::State& state) {
  kg::KnowledgeGraph g;
  for (int i = 0; i < 2000; ++i) g.AddEntity("e" + std::to_string(i));
  const kg::KgSnapshot head = g.Snapshot();
  uint64_t epoch = 1;
  for (auto _ : state) {
    auto diff = head.DiffSince(epoch);
    benchmark::DoNotOptimize(diff);
    epoch = epoch % head.epoch() + 1;
  }
}
BENCHMARK(BM_DiffSince)->Unit(benchmark::kNanosecond);

void BM_TouchedEntities(benchmark::State& state) {
  const int64_t rows = state.range(0);
  kg::KnowledgeGraph g;
  g.BeginBulkLoad();
  for (int i = 0; i < 2000; ++i) g.AddEntity("e" + std::to_string(i));
  const kg::RelationId r = g.AddRelation("r");
  g.EndBulkLoad();
  const kg::KgSnapshot base = g.Snapshot();
  g.BeginBulkLoad();
  for (int64_t i = 0; i < rows; ++i) {
    g.AddRelationalTriple(static_cast<kg::EntityId>((i * 7) % 2000), r,
                          static_cast<kg::EntityId>((i * 13 + 1) % 2000));
  }
  g.EndBulkLoad();
  const kg::KgSnapshot head = g.Snapshot();
  const kg::KgDiff diff = *head.DiffSince(base.epoch());
  for (auto _ : state) {
    auto touched = head.TouchedEntities(diff);
    benchmark::DoNotOptimize(touched);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_TouchedEntities)->Arg(100)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_ApplyBatch(benchmark::State& state) {
  // One streamed arrival batch (64 entities, 128 triples) applied through
  // the name-interning replay path into a 2000-entity graph.
  incr::KgUpdate up;
  for (int i = 0; i < 64; ++i) up.new_entities.push_back("n" + std::to_string(i));
  for (int i = 0; i < 128; ++i) {
    up.relational.push_back({"n" + std::to_string(i % 64), "r",
                             "e" + std::to_string((i * 31) % 2000)});
  }
  for (auto _ : state) {
    state.PauseTiming();
    kg::KnowledgeGraph g;
    g.BeginBulkLoad();
    for (int i = 0; i < 2000; ++i) g.AddEntity("e" + std::to_string(i));
    g.AddRelation("r");
    g.EndBulkLoad();
    state.ResumeTiming();
    incr::ApplyUpdate(up, &g);
    benchmark::DoNotOptimize(g.num_entities());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(up.relational.size()));
}
BENCHMARK(BM_ApplyBatch)->Unit(benchmark::kMicrosecond);

// The obs on/off overhead row: a full ProcessIncrement (small graph, one
// arrival per iteration) with instrumentation enabled vs disabled.
void BM_IncrementObsOverhead(benchmark::State& state) {
  const bool obs_on = state.range(0) == 1;
  kg::KnowledgeGraph kg1, kg2;
  kg1.BeginBulkLoad();
  kg2.BeginBulkLoad();
  const kg::RelationId r1 = kg1.AddRelation("r");
  const kg::RelationId r2 = kg2.AddRelation("r");
  for (int i = 0; i < 200; ++i) {
    kg1.AddEntity("e" + std::to_string(i));
    kg2.AddEntity("f" + std::to_string(i));
  }
  for (int i = 0; i < 200; ++i) {
    kg1.AddRelationalTriple(i, r1, (i + 1) % 200);
    kg2.AddRelationalTriple(i, r2, (i + 1) % 200);
  }
  kg1.EndBulkLoad();
  kg2.EndBulkLoad();

  incr::IncrementalAlignerOptions opts;
  opts.dim = 16;
  opts.base_epochs = 10;
  opts.incr_epochs = 5;
  incr::IncrementalAligner aligner(&kg1, &kg2, opts);
  std::vector<std::pair<kg::EntityId, kg::EntityId>> seeds;
  for (int i = 0; i < 50; ++i) seeds.emplace_back(i, i);
  if (!aligner.FitBase(seeds).ok()) {
    state.SkipWithError("FitBase failed");
    return;
  }

  obs::SetEnabled(obs_on);
  int64_t inc = 0;
  for (auto _ : state) {
    incr::KgUpdate up;
    up.relational = {{"x" + std::to_string(inc), "r",
                      "e" + std::to_string(inc % 200)}};
    incr::ApplyUpdate(up, &kg1);
    auto rep = aligner.ProcessIncrement();
    if (!rep.ok()) {
      state.SkipWithError(rep.status().ToString().c_str());
      break;
    }
    ++inc;
  }
  obs::SetEnabled(true);
}
BENCHMARK(BM_IncrementObsOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults to machine-readable JSON output
// (BENCH_incr.json) with the kernel configuration stamped into the context
// block, matching the other BENCH_*.json artifacts CI archives.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_incr.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  sdea::bench::AddKernelContext();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
