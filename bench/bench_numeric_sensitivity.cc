// Section V-B1 error analysis: the transformer handles numeric attribute
// values poorly (~40% of D-W values are numeric). This bench sweeps the
// numeric share on the OpenEA-style preset and reports attribute-only SDEA
// accuracy — the shape should be monotonically decreasing.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/numeric_channel.h"

int main(int argc, char** argv) {
  using namespace sdea;
  const bench::BenchOptions options = bench::ParseOptions(argc, argv);
  const datagen::DatasetSpec base = datagen::OpenEaPresets()[0];

  eval::TablePrinter table({"numeric share", "H@1", "H@10", "MRR",
                            "H@1 +numeric channel"});
  for (const double share : {0.1, 0.4, 0.7}) {
    datagen::DatasetSpec spec = base;
    spec.config.numeric_share = share;
    const bench::DatasetRun run = bench::PrepareDataset(spec, options);
    core::SdeaConfig config = bench::DefaultSdeaConfig(options);
    config.use_relation_module = false;  // Isolate the text encoder.
    const bench::SdeaRun r = bench::RunSdea(run, config);
    // The paper's proposed fix: dedicated numeric-value handling
    // (SdeaConfig::use_numeric_channel) evaluated on the same run.
    const Tensor num1 = core::ComputeNumericFeatures(run.bench.kg1);
    const Tensor num2 = core::ComputeNumericFeatures(run.bench.kg2);
    const Tensor e1 = core::ConcatNumericChannel(
        r.model->embeddings1(), num1, config.numeric_channel_weight);
    const Tensor e2 = core::ConcatNumericChannel(
        r.model->embeddings2(), num2, config.numeric_channel_weight);
    Tensor src({static_cast<int64_t>(run.seeds.test.size()), e1.dim(1)});
    std::vector<int64_t> gold;
    for (size_t i = 0; i < run.seeds.test.size(); ++i) {
      src.SetRow(static_cast<int64_t>(i), e1.Row(run.seeds.test[i].first));
      gold.push_back(run.seeds.test[i].second);
    }
    const double with_numeric =
        eval::EvaluateAlignment(src, e2, gold).hits_at_1;
    table.AddRow({eval::FormatPercent(100.0 * share) + "%",
                  eval::FormatPercent(r.full.metrics.hits_at_1),
                  eval::FormatPercent(r.full.metrics.hits_at_10),
                  eval::FormatMrr(r.full.metrics.mrr),
                  eval::FormatPercent(with_numeric)});
    std::printf("[numeric] share=%.0f%% H@1=%.1f (+channel %.1f) (%.1fs)\n",
                100.0 * share, r.full.metrics.hits_at_1, with_numeric,
                r.full.seconds);
  }
  std::printf(
      "\n=== Numeric-value sensitivity (OpenEA D-W preset, attr-only) "
      "===\n");
  table.Print();
  return 0;
}
