#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "base/check.h"
#include "base/strings.h"
#include "obs/export.h"
#include "baselines/bert_int_lite.h"
#include "baselines/cea.h"
#include "baselines/hman.h"
#include "baselines/jape.h"
#include "baselines/kecg.h"
#include "baselines/transedge.h"
#include "baselines/gcn_align.h"
#include "baselines/iptranse.h"
#include "baselines/mtranse.h"
#include "baselines/rsn4ea.h"
#include "baselines/transe_align.h"

namespace sdea::bench {

double NowSeconds() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
}

BenchOptions ParseOptions(int argc, char** argv) {
  // Flush the trace buffer on exit when SDEA_OBS_TRACE=<path> is set, so
  // any table bench can emit a chrome://tracing timeline without per-bench
  // wiring.
  std::atexit(+[] { (void)obs::MaybeWriteTraceFromEnv(); });
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      o.full = true;
    } else if (arg == "--fast") {
      o.fast = true;
    } else if (StartsWith(arg, "--scale=")) {
      o.scale = std::atof(arg.c_str() + std::strlen("--scale="));
      SDEA_CHECK_GT(o.scale, 0.0);
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (supported: --scale=F --full --fast)\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return o;
}

int64_t DefaultMatchedEntities(const datagen::DatasetSpec& spec,
                               const BenchOptions& options) {
  if (options.full) return spec.config.num_matched;
  // Reduced defaults: every 15K dataset runs at 400 matched entities, the
  // 100K dataset at 800 so the small-vs-large contrast of Table V remains.
  int64_t base = spec.config.num_matched >= 100'000 ? 800 : 400;
  if (options.fast) base /= 2;
  return std::max<int64_t>(
      100, static_cast<int64_t>(static_cast<double>(base) * options.scale));
}

DatasetRun PrepareDataset(const datagen::DatasetSpec& spec,
                          const BenchOptions& options) {
  DatasetRun run;
  run.spec = spec;
  datagen::GeneratorConfig cfg = spec.config;
  cfg.num_matched = DefaultMatchedEntities(spec, options);
  run.bench = datagen::BenchmarkGenerator().Generate(cfg);
  run.seeds = kg::AlignmentSeeds::Split(run.bench.ground_truth,
                                        /*seed=*/cfg.seed ^ 0x5eedULL);
  return run;
}

core::SdeaConfig DefaultSdeaConfig(const BenchOptions& options) {
  core::SdeaConfig c;
  c.attribute.text.encoder.dim = 32;
  c.attribute.text.encoder.num_heads = 4;
  c.attribute.text.encoder.num_layers = 2;
  c.attribute.text.encoder.ff_dim = 64;
  c.attribute.text.encoder.max_len = 64;
  c.attribute.text.out_dim = 32;
  c.attribute.text.max_epochs = options.fast ? 8 : 25;
  c.attribute.text.patience = 5;
  c.attribute.text.negatives_per_pair = 3;
  c.attribute.text.ssl_epochs = 2;
  c.attribute.text.pretrain.epochs = options.fast ? 8 : 16;
  c.relation.hidden_dim = 32;
  c.relation.joint_dim = 32;
  c.relation.max_epochs = options.fast ? 8 : 20;
  c.relation.patience = 4;
  c.relation.batch_size = 32;
  return c;
}

SdeaRun RunSdea(const DatasetRun& run, const core::SdeaConfig& config) {
  SdeaRun out;
  out.model = std::make_unique<core::SdeaModel>();
  const double t0 = NowSeconds();
  auto report = out.model->Fit(run.bench.kg1, run.bench.kg2, run.seeds,
                               config, run.bench.pretrain_corpus);
  SDEA_CHECK_MSG(report.ok(), "SDEA fit failed: %s",
                 report.status().ToString().c_str());
  const double elapsed = NowSeconds() - t0;
  out.full = MethodResult{"SDEA", out.model->Evaluate(run.seeds.test),
                          elapsed};
  out.without_rel =
      MethodResult{"SDEA w/o rel.",
                   out.model->EvaluateWithoutRelation(run.seeds.test), 0.0};
  return out;
}

namespace {

MethodResult TimeFit(baselines::EntityAligner* aligner,
                     const baselines::AlignInput& input,
                     const std::vector<std::pair<kg::EntityId, kg::EntityId>>&
                         test) {
  const double t0 = NowSeconds();
  Status s = aligner->Fit(input);
  SDEA_CHECK_MSG(s.ok(), "%s fit failed: %s", aligner->name().c_str(),
                 s.ToString().c_str());
  return MethodResult{aligner->name(), aligner->Evaluate(test),
                      NowSeconds() - t0};
}

}  // namespace

std::vector<MethodResult> RunBaselines(const DatasetRun& run,
                                       const BaselineRoster& roster,
                                       const BenchOptions& options) {
  const baselines::AlignInput input{&run.bench.kg1, &run.bench.kg2,
                                    &run.seeds};
  std::vector<MethodResult> results;
  const int64_t transe_epochs = options.fast ? 40 : 100;
  const int64_t gcn_epochs = options.fast ? 40 : 120;

  if (roster.mtranse) {
    baselines::MTransE::Config c;
    c.transe.epochs = transe_epochs;
    baselines::MTransE m(c);
    results.push_back(TimeFit(&m, input, run.seeds.test));
  }
  if (roster.transe_align) {
    baselines::TransEAlign::Config c;
    c.transe.epochs = transe_epochs;
    baselines::TransEAlign m(c);
    results.push_back(TimeFit(&m, input, run.seeds.test));
  }
  if (roster.bootea) {
    baselines::TransEConfig tc;
    tc.epochs = transe_epochs;
    baselines::TransEAlign m(baselines::BootEaConfig(tc));
    results.push_back(TimeFit(&m, input, run.seeds.test));
  }
  if (roster.iptranse) {
    baselines::IpTransE::Config c;
    c.transe.epochs = transe_epochs / 4;
    c.epochs_per_iteration = transe_epochs / 4;
    baselines::IpTransE m(c);
    results.push_back(TimeFit(&m, input, run.seeds.test));
  }
  if (roster.rsn4ea) {
    baselines::Rsn4Ea::Config c;
    c.epochs = options.fast ? 4 : 10;
    baselines::Rsn4Ea m(c);
    results.push_back(TimeFit(&m, input, run.seeds.test));
  }
  if (roster.gcn) {
    auto c = baselines::GcnConfig();
    c.epochs = gcn_epochs;
    baselines::GcnAlign m(c);
    results.push_back(TimeFit(&m, input, run.seeds.test));
  }
  if (roster.gcn_align) {
    auto c = baselines::GcnAlignConfig();
    c.epochs = gcn_epochs;
    baselines::GcnAlign m(c);
    results.push_back(TimeFit(&m, input, run.seeds.test));
  }
  if (roster.gat) {
    auto c = baselines::GatAlignConfig();
    c.epochs = gcn_epochs;
    baselines::GcnAlign m(c);
    results.push_back(TimeFit(&m, input, run.seeds.test));
  }
  if (roster.rdgcn) {
    auto c = baselines::RdgcnLiteConfig();
    c.epochs = gcn_epochs;
    baselines::GcnAlign m(c);
    results.push_back(TimeFit(&m, input, run.seeds.test));
  }
  if (roster.bert_int) {
    baselines::BertIntLite::Config c;
    c.text.encoder.dim = 32;
    c.text.encoder.max_len = 16;
    c.text.out_dim = 32;
    c.text.max_epochs = options.fast ? 8 : 20;
    c.text.patience = 4;
    c.text.negatives_per_pair = 3;
    c.text.ssl_epochs = 1;
    c.text.pretrain.epochs = options.fast ? 8 : 16;
    baselines::BertIntLite m(c);
    results.push_back(TimeFit(&m, input, run.seeds.test));
  }
  if (roster.jape) {
    baselines::Jape::Config c;
    c.transe.epochs = transe_epochs;
    baselines::Jape m(c);
    results.push_back(TimeFit(&m, input, run.seeds.test));
  }
  if (roster.hman) {
    baselines::Hman::Config c;
    c.gcn.epochs = gcn_epochs;
    c.epochs = gcn_epochs / 2;
    baselines::Hman m(c);
    results.push_back(TimeFit(&m, input, run.seeds.test));
  }
  if (roster.transedge) {
    baselines::TransEdge::Config c;
    c.epochs = options.fast ? 10 : 25;
    baselines::TransEdge m(c);
    results.push_back(TimeFit(&m, input, run.seeds.test));
  }
  if (roster.kecg) {
    baselines::Kecg::Config c;
    baselines::Kecg m(c);
    results.push_back(TimeFit(&m, input, run.seeds.test));
  }
  if (roster.cea) {
    baselines::Cea::Config c;
    c.gcn.epochs = gcn_epochs;
    baselines::Cea m(c);
    results.push_back(TimeFit(&m, input, run.seeds.test));
    // The full CEA row (stable matching) is Hits@1-only in the paper.
    MethodResult full;
    full.method = "CEA";
    full.metrics.hits_at_1 = m.StableHits1(run.seeds.test);
    full.metrics.num_queries =
        static_cast<int64_t>(run.seeds.test.size());
    full.hits1_only = true;
    results.push_back(full);
  }
  return results;
}

void ResultTable::Add(const std::string& dataset,
                      const MethodResult& result) {
  if (result.hits1_only) {
    AddHits1Only(dataset, result.method, result.metrics.hits_at_1);
    return;
  }
  if (std::find(datasets_.begin(), datasets_.end(), dataset) ==
      datasets_.end()) {
    datasets_.push_back(dataset);
  }
  if (std::find(methods_.begin(), methods_.end(), result.method) ==
      methods_.end()) {
    methods_.push_back(result.method);
  }
  cells_[{result.method, dataset}] = result;
}

void ResultTable::AddHits1Only(const std::string& dataset,
                               const std::string& method, double hits1) {
  if (std::find(datasets_.begin(), datasets_.end(), dataset) ==
      datasets_.end()) {
    datasets_.push_back(dataset);
  }
  if (std::find(methods_.begin(), methods_.end(), method) ==
      methods_.end()) {
    methods_.push_back(method);
  }
  hits1_only_[{method, dataset}] = hits1;
}

void ResultTable::Print() const {
  std::printf("\n=== %s ===\n", title_.c_str());
  std::vector<std::string> header{"Method"};
  for (const std::string& d : datasets_) {
    header.push_back(d + " H@1");
    header.push_back(d + " H@10");
    header.push_back(d + " MRR");
  }
  eval::TablePrinter table(header);
  for (const std::string& m : methods_) {
    std::vector<std::string> row{m};
    for (const std::string& d : datasets_) {
      auto it = cells_.find({m, d});
      if (it != cells_.end()) {
        row.push_back(eval::FormatPercent(it->second.metrics.hits_at_1));
        row.push_back(eval::FormatPercent(it->second.metrics.hits_at_10));
        row.push_back(eval::FormatMrr(it->second.metrics.mrr));
      } else {
        auto h1 = hits1_only_.find({m, d});
        if (h1 != hits1_only_.end()) {
          row.push_back(eval::FormatPercent(h1->second));
          row.push_back("-");
          row.push_back("-");
        } else {
          row.push_back("-");
          row.push_back("-");
          row.push_back("-");
        }
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::fflush(stdout);
}

}  // namespace sdea::bench
