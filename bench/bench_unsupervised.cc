// Unsupervised alignment extension (the related-work direction the paper
// points to): mine pseudo seeds from un-fine-tuned attribute embeddings
// (mutual nearest neighbors above a similarity floor), then run the
// ordinary SDEA pipeline on them — no gold labels used for training.
// Compared against the supervised run and against a no-training baseline.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/unsupervised.h"

int main(int argc, char** argv) {
  using namespace sdea;
  const bench::BenchOptions options = bench::ParseOptions(argc, argv);
  const datagen::DatasetSpec spec = datagen::SrprsPresets()[0];  // EN-FR.
  const bench::DatasetRun run = bench::PrepareDataset(spec, options);
  std::printf("[unsup] dataset %s (%lld matched entities)\n",
              spec.config.name.c_str(),
              static_cast<long long>(
                  bench::DefaultMatchedEntities(spec, options)));

  const core::SdeaConfig config = bench::DefaultSdeaConfig(options);

  // 1) Supervised reference (gold seeds).
  const bench::SdeaRun supervised = bench::RunSdea(run, config);

  // 2) Pseudo-seed mining — gold labels untouched.
  core::UnsupervisedOptions unsup;
  unsup.min_similarity = 0.6f;
  auto pseudo = core::MinePseudoSeeds(run.bench.kg1, run.bench.kg2,
                                      config.attribute, unsup,
                                      run.bench.pretrain_corpus);
  SDEA_CHECK(pseudo.ok());
  const double precision =
      core::PseudoSeedPrecision(*pseudo, run.bench.ground_truth);
  std::printf("[unsup] %lld pseudo seeds, precision %.1f%%\n",
              static_cast<long long>(pseudo->accepted), precision);

  // 3) SDEA trained on pseudo seeds, evaluated on the gold test split.
  core::SdeaModel unsup_model;
  auto report = unsup_model.Fit(run.bench.kg1, run.bench.kg2, pseudo->seeds,
                                config, run.bench.pretrain_corpus);
  SDEA_CHECK(report.ok());
  const eval::RankingMetrics unsup_metrics =
      unsup_model.Evaluate(run.seeds.test);

  eval::TablePrinter table({"Variant", "H@1", "H@10", "MRR"});
  table.AddRow({"SDEA (supervised, 20% seeds)",
                eval::FormatPercent(supervised.full.metrics.hits_at_1),
                eval::FormatPercent(supervised.full.metrics.hits_at_10),
                eval::FormatMrr(supervised.full.metrics.mrr)});
  table.AddRow({"SDEA (unsupervised pseudo-seeds)",
                eval::FormatPercent(unsup_metrics.hits_at_1),
                eval::FormatPercent(unsup_metrics.hits_at_10),
                eval::FormatMrr(unsup_metrics.mrr)});
  std::printf("\n=== Unsupervised extension (SRPRS EN-FR) ===\n");
  table.Print();
  return 0;
}
