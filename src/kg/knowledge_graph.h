#ifndef SDEA_KG_KNOWLEDGE_GRAPH_H_
#define SDEA_KG_KNOWLEDGE_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"

namespace sdea::kg {

using EntityId = int32_t;
using RelationId = int32_t;
using AttributeId = int32_t;

inline constexpr EntityId kInvalidEntity = -1;

/// (head, relation, tail) — Definition 1's relational triple.
struct RelationalTriple {
  EntityId head;
  RelationId relation;
  EntityId tail;

  bool operator==(const RelationalTriple&) const = default;
};

/// (entity, attribute, value) — Definition 1's attributed triple. Values are
/// free text (short fields, numbers, or long sentences).
struct AttributeTriple {
  EntityId entity;
  AttributeId attribute;
  std::string value;

  bool operator==(const AttributeTriple&) const = default;
};

/// One edge as seen from an entity: the relation and the other endpoint.
/// `outgoing` is true when the entity is the head of the underlying triple.
struct NeighborEdge {
  RelationId relation;
  EntityId neighbor;
  bool outgoing;
};

/// Summary statistics used by Table I / Table VI style reporting.
struct KgStatistics {
  int64_t num_entities = 0;
  int64_t num_relations = 0;
  int64_t num_attributes = 0;
  int64_t num_relational_triples = 0;
  int64_t num_attribute_triples = 0;
  /// Proportion of entities with relational degree in [1, k] for k=3,5,10
  /// (entities with degree 0 excluded from the denominator, matching the
  /// paper's Table VI which ranges start at 1).
  double degree_le3 = 0.0;
  double degree_le5 = 0.0;
  double degree_le10 = 0.0;
};

/// In-memory store for one knowledge graph KG = {E, R, A, V, Tr, Ta}
/// (Definition 1). Entities/relations/attributes are interned to dense ids;
/// adjacency and per-entity attribute lists are maintained incrementally.
class KnowledgeGraph {
 public:
  KnowledgeGraph() = default;

  // Movable (large), not copyable by accident.
  KnowledgeGraph(KnowledgeGraph&&) = default;
  KnowledgeGraph& operator=(KnowledgeGraph&&) = default;
  KnowledgeGraph(const KnowledgeGraph&) = delete;
  KnowledgeGraph& operator=(const KnowledgeGraph&) = delete;

  /// Explicit deep copy.
  KnowledgeGraph Clone() const;

  // ---- Construction --------------------------------------------------------

  /// Interns an entity by name; returns the existing id if already present.
  EntityId AddEntity(const std::string& name);
  RelationId AddRelation(const std::string& name);
  AttributeId AddAttribute(const std::string& name);

  /// Adds (head, relation, tail). Ids must be valid.
  void AddRelationalTriple(EntityId head, RelationId relation, EntityId tail);

  /// Adds (entity, attribute, value).
  void AddAttributeTriple(EntityId entity, AttributeId attribute,
                          std::string value);

  // ---- Lookup --------------------------------------------------------------

  int64_t num_entities() const {
    return static_cast<int64_t>(entity_names_.size());
  }
  int64_t num_relations() const {
    return static_cast<int64_t>(relation_names_.size());
  }
  int64_t num_attributes() const {
    return static_cast<int64_t>(attribute_names_.size());
  }

  const std::string& entity_name(EntityId id) const;
  const std::string& relation_name(RelationId id) const;
  const std::string& attribute_name(AttributeId id) const;

  /// Id of the entity with `name`, or NotFound.
  Result<EntityId> FindEntity(const std::string& name) const;
  Result<RelationId> FindRelation(const std::string& name) const;
  Result<AttributeId> FindAttribute(const std::string& name) const;

  const std::vector<RelationalTriple>& relational_triples() const {
    return relational_triples_;
  }
  const std::vector<AttributeTriple>& attribute_triples() const {
    return attribute_triples_;
  }

  /// Edges incident to `e` (both directions), in insertion order.
  const std::vector<NeighborEdge>& neighbors(EntityId e) const;

  /// Indices into attribute_triples() for entity `e`, in insertion order.
  const std::vector<int64_t>& attribute_triples_of(EntityId e) const;

  /// Relational degree of `e` (count of incident relational triples).
  int64_t degree(EntityId e) const;

  /// Computes Table I / Table VI style statistics.
  KgStatistics ComputeStatistics() const;

  // ---- Serialization (DBP15K-style TSV layout) ------------------------------

  /// Writes `<prefix>_rel_triples` (head \t relation \t tail, by name) and
  /// `<prefix>_attr_triples` (entity \t attribute \t value).
  Status SaveTsv(const std::string& prefix) const;

  /// Loads a graph written by SaveTsv. Missing attribute file is an error;
  /// pass `require_attributes=false` for relation-only graphs.
  static Result<KnowledgeGraph> LoadTsv(const std::string& prefix,
                                        bool require_attributes = true);

 private:
  std::vector<std::string> entity_names_;
  std::vector<std::string> relation_names_;
  std::vector<std::string> attribute_names_;
  std::unordered_map<std::string, EntityId> entity_ids_;
  std::unordered_map<std::string, RelationId> relation_ids_;
  std::unordered_map<std::string, AttributeId> attribute_ids_;

  std::vector<RelationalTriple> relational_triples_;
  std::vector<AttributeTriple> attribute_triples_;

  std::vector<std::vector<NeighborEdge>> adjacency_;
  std::vector<std::vector<int64_t>> entity_attributes_;
};

/// A ground-truth alignment between two KGs plus its 2:1:7 split
/// (train : validation : test), as used throughout the paper's experiments.
struct AlignmentSeeds {
  std::vector<std::pair<EntityId, EntityId>> train;
  std::vector<std::pair<EntityId, EntityId>> valid;
  std::vector<std::pair<EntityId, EntityId>> test;

  int64_t total() const {
    return static_cast<int64_t>(train.size() + valid.size() + test.size());
  }

  /// Shuffles `pairs` with `seed` and splits by the given ratios
  /// (normalized; defaults to the paper's 2:1:7).
  static AlignmentSeeds Split(
      std::vector<std::pair<EntityId, EntityId>> pairs, uint64_t seed,
      double train_ratio = 2.0, double valid_ratio = 1.0,
      double test_ratio = 7.0);
};

}  // namespace sdea::kg

#endif  // SDEA_KG_KNOWLEDGE_GRAPH_H_
