#ifndef SDEA_KG_KNOWLEDGE_GRAPH_H_
#define SDEA_KG_KNOWLEDGE_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/status.h"
#include "kg/columnar.h"
#include "kg/types.h"

namespace sdea::kg {

/// Summary statistics used by Table I / Table VI style reporting.
struct KgStatistics {
  int64_t num_entities = 0;
  int64_t num_relations = 0;
  int64_t num_attributes = 0;
  int64_t num_relational_triples = 0;
  int64_t num_attribute_triples = 0;
  /// Proportion of entities with relational degree in [1, k] for k=3,5,10
  /// (entities with degree 0 excluded from the denominator, matching the
  /// paper's Table VI which ranges start at 1).
  double degree_le3 = 0.0;
  double degree_le5 = 0.0;
  double degree_le10 = 0.0;
};

/// One knowledge graph KG = {E, R, A, V, Tr, Ta} (Definition 1), stored as
/// a columnar MVCC store (ColumnarKgStore): entities/relations/attributes
/// are interned to dense ids, and triples live in chunked dense-id columns
/// with epoch-versioned snapshot visibility.
///
/// This class is the single-writer facade. Its mutation API and its legacy
/// accessors (the `const std::vector<...>&` views below) are writer-thread
/// only. Concurrent readers pin a KgSnapshot via Snapshot() and scan that:
/// snapshots are immutable watermark-prefixes of the committed graph and
/// stay consistent while the writer keeps adding.
///
/// Each Add* publishes a commit, so Snapshot() always reflects every prior
/// Add. Bulk construction (loaders, the generator) brackets its adds with
/// BeginBulkLoad()/EndBulkLoad() to defer commits to one publish at the
/// end.
///
/// The legacy row/adjacency views are materialized lazily the first time
/// they are used (and topped up incrementally afterwards), so code that
/// sticks to snapshots and visitors never pays for the row-store mirror.
class KnowledgeGraph {
 public:
  KnowledgeGraph();
  explicit KnowledgeGraph(const ColumnarOptions& options);

  // Movable (large), not copyable by accident.
  KnowledgeGraph(KnowledgeGraph&&) = default;
  KnowledgeGraph& operator=(KnowledgeGraph&&) = default;
  KnowledgeGraph(const KnowledgeGraph&) = delete;
  KnowledgeGraph& operator=(const KnowledgeGraph&) = delete;

  /// Explicit deep copy (replays this graph into a fresh store).
  KnowledgeGraph Clone() const;

  // ---- Construction --------------------------------------------------------

  /// Interns an entity by name; returns the existing id if already present.
  EntityId AddEntity(const std::string& name);
  RelationId AddRelation(const std::string& name);
  AttributeId AddAttribute(const std::string& name);

  /// Adds (head, relation, tail). Ids must be valid.
  void AddRelationalTriple(EntityId head, RelationId relation, EntityId tail);

  /// Adds (entity, attribute, value).
  void AddAttributeTriple(EntityId entity, AttributeId attribute,
                          std::string value);

  /// Defers commit publication until EndBulkLoad(): bulk builders avoid a
  /// commit per row. Snapshot() taken mid-bulk pins the last publish.
  void BeginBulkLoad();
  void EndBulkLoad();

  // ---- MVCC ----------------------------------------------------------------

  /// Pins the latest committed state. Safe to call from any thread
  /// concurrently with the writer; scanning the snapshot is lock-free.
  KgSnapshot Snapshot() const { return store_->Snapshot(); }

  /// The underlying columnar store (memory accounting, direct writer use).
  const ColumnarKgStore& columnar() const { return *store_; }

  // ---- Lookup --------------------------------------------------------------

  int64_t num_entities() const { return store_->latest_num_entities(); }
  int64_t num_relations() const { return store_->latest_num_relations(); }
  int64_t num_attributes() const { return store_->latest_num_attributes(); }

  const std::string& entity_name(EntityId id) const {
    return store_->LatestEntityName(id);
  }
  const std::string& relation_name(RelationId id) const {
    return store_->LatestRelationName(id);
  }
  const std::string& attribute_name(AttributeId id) const {
    return store_->LatestAttributeName(id);
  }

  /// Id of the entity with `name`, or NotFound.
  Result<EntityId> FindEntity(const std::string& name) const;
  Result<RelationId> FindRelation(const std::string& name) const;
  Result<AttributeId> FindAttribute(const std::string& name) const;

  /// Legacy row view of the relational triples, materialized from the
  /// columns on first use. Prefer Snapshot().ForEachRelational on scans.
  const std::vector<RelationalTriple>& relational_triples() const;

  /// Legacy row view of the attribute triples (value strings are copied
  /// out of the columns). Prefer Snapshot().ForEachAttribute on scans.
  const std::vector<AttributeTriple>& attribute_triples() const;

  /// Edges incident to `e` (both directions), in insertion order. Returns
  /// an empty list for out-of-range ids (never undefined behaviour).
  const std::vector<NeighborEdge>& neighbors(EntityId e) const;

  /// Indices into attribute_triples() for entity `e`, in insertion order.
  /// Empty for out-of-range ids.
  const std::vector<int64_t>& attribute_triples_of(EntityId e) const;

  /// Relational degree of `e` (count of incident relational triples).
  /// 0 for out-of-range ids.
  int64_t degree(EntityId e) const;

  /// Computes Table I / Table VI style statistics (one columnar pass).
  KgStatistics ComputeStatistics() const;

  // ---- Serialization (DBP15K-style TSV layout) ------------------------------

  /// Writes `<prefix>_rel_triples` (head \t relation \t tail, by name) and
  /// `<prefix>_attr_triples` (entity \t attribute \t value). Attribute
  /// values are TSV-escaped (\t, \n, \r, \\), so free-text values with
  /// embedded tabs/newlines round-trip; names containing those characters
  /// cannot be escaped compatibly and are rejected with InvalidArgument.
  Status SaveTsv(const std::string& prefix) const;

  /// Loads a graph written by SaveTsv (unescaping attribute values).
  /// Missing attribute file is an error; pass `require_attributes=false`
  /// for relation-only graphs.
  static Result<KnowledgeGraph> LoadTsv(const std::string& prefix,
                                        bool require_attributes = true);

 private:
  void MaybeCommit();
  void TopUpRowMirrors() const;
  void TopUpEntityMirrors() const;

  std::unique_ptr<ColumnarKgStore> store_;
  bool bulk_load_ = false;

  std::unordered_map<std::string, EntityId> entity_ids_;
  std::unordered_map<std::string, RelationId> relation_ids_;
  std::unordered_map<std::string, AttributeId> attribute_ids_;

  // Lazily materialized legacy views (writer-thread only; see class docs).
  mutable std::vector<RelationalTriple> rel_mirror_;
  mutable std::vector<AttributeTriple> attr_mirror_;
  mutable int64_t row_mirror_rel_rows_ = 0;
  mutable int64_t row_mirror_attr_rows_ = 0;
  mutable std::vector<std::vector<NeighborEdge>> adjacency_mirror_;
  mutable std::vector<std::vector<int64_t>> entity_attr_mirror_;
  mutable int64_t entity_mirror_rel_rows_ = 0;
  mutable int64_t entity_mirror_attr_rows_ = 0;
};

/// A ground-truth alignment between two KGs plus its 2:1:7 split
/// (train : validation : test), as used throughout the paper's experiments.
struct AlignmentSeeds {
  std::vector<std::pair<EntityId, EntityId>> train;
  std::vector<std::pair<EntityId, EntityId>> valid;
  std::vector<std::pair<EntityId, EntityId>> test;

  int64_t total() const {
    return static_cast<int64_t>(train.size() + valid.size() + test.size());
  }

  /// Shuffles `pairs` with `seed` and splits by the given ratios
  /// (normalized; defaults to the paper's 2:1:7).
  static AlignmentSeeds Split(
      std::vector<std::pair<EntityId, EntityId>> pairs, uint64_t seed,
      double train_ratio = 2.0, double valid_ratio = 1.0,
      double test_ratio = 7.0);
};

}  // namespace sdea::kg

#endif  // SDEA_KG_KNOWLEDGE_GRAPH_H_
