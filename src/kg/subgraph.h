#ifndef SDEA_KG_SUBGRAPH_H_
#define SDEA_KG_SUBGRAPH_H_

#include <cstdint>
#include <vector>

#include "kg/knowledge_graph.h"

namespace sdea::kg {

/// Options for popularity-biased condensation (the construction of
/// DBP15K's "condensed version", which samples relational triples with
/// popular head and tail entities — Section V-A1 of the paper).
struct CondenseOptions {
  /// Keep triples whose endpoints both rank within this fraction of
  /// entities by degree.
  double popularity_fraction = 0.5;
  /// Always keep at least this many triples (guards tiny graphs).
  int64_t min_triples = 1;
  /// Drop entities left without any triple (attributes of dropped
  /// entities are dropped too).
  bool drop_isolated = true;
};

/// Returns the condensed subgraph: triples between popular entities, plus
/// the attribute triples of the surviving entities. `old_to_new`
/// (optional) receives the entity id remapping (kInvalidEntity for
/// dropped entities).
KnowledgeGraph CondenseByPopularity(const KnowledgeGraph& graph,
                                    const CondenseOptions& options,
                                    std::vector<EntityId>* old_to_new =
                                        nullptr);

/// Degree histogram: count of entities per exact relational degree,
/// indices 0..max_degree (clamped at `max_degree`, last bucket holds the
/// tail).
std::vector<int64_t> DegreeHistogram(const KnowledgeGraph& graph,
                                     int64_t max_degree = 50);

}  // namespace sdea::kg

#endif  // SDEA_KG_SUBGRAPH_H_
