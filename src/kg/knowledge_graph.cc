#include "kg/knowledge_graph.h"

#include "base/check.h"
#include "base/fileio.h"
#include "base/rng.h"
#include "base/strings.h"

namespace sdea::kg {
namespace {

const std::vector<NeighborEdge>& EmptyNeighbors() {
  static const std::vector<NeighborEdge> empty;
  return empty;
}

const std::vector<int64_t>& EmptyIndices() {
  static const std::vector<int64_t> empty;
  return empty;
}

bool HasTsvBreakingChars(const std::string& s) {
  return s.find_first_of("\t\n\r") != std::string::npos;
}

}  // namespace

KnowledgeGraph::KnowledgeGraph()
    : store_(std::make_unique<ColumnarKgStore>()) {}

KnowledgeGraph::KnowledgeGraph(const ColumnarOptions& options)
    : store_(std::make_unique<ColumnarKgStore>(options)) {}

KnowledgeGraph KnowledgeGraph::Clone() const {
  KnowledgeGraph out(store_->options());
  out.BeginBulkLoad();
  for (EntityId e = 0; e < num_entities(); ++e) {
    out.AddEntity(entity_name(e));
  }
  for (RelationId r = 0; r < num_relations(); ++r) {
    out.AddRelation(relation_name(r));
  }
  for (AttributeId a = 0; a < num_attributes(); ++a) {
    out.AddAttribute(attribute_name(a));
  }
  store_->LatestForEachRelational(
      0, [&](int64_t /*row*/, EntityId h, RelationId r, EntityId t) {
        out.AddRelationalTriple(h, r, t);
      });
  store_->LatestForEachAttribute(
      0, [&](int64_t /*row*/, EntityId e, AttributeId a,
             const std::string& value) { out.AddAttributeTriple(e, a, value); });
  out.EndBulkLoad();
  return out;
}

void KnowledgeGraph::MaybeCommit() {
  if (!bulk_load_) store_->Commit();
}

void KnowledgeGraph::BeginBulkLoad() { bulk_load_ = true; }

void KnowledgeGraph::EndBulkLoad() {
  bulk_load_ = false;
  store_->Commit();
}

EntityId KnowledgeGraph::AddEntity(const std::string& name) {
  auto it = entity_ids_.find(name);
  if (it != entity_ids_.end()) return it->second;
  const EntityId id = store_->AppendEntityName(name);
  entity_ids_.emplace(name, id);
  MaybeCommit();
  return id;
}

RelationId KnowledgeGraph::AddRelation(const std::string& name) {
  auto it = relation_ids_.find(name);
  if (it != relation_ids_.end()) return it->second;
  const RelationId id = store_->AppendRelationName(name);
  relation_ids_.emplace(name, id);
  MaybeCommit();
  return id;
}

AttributeId KnowledgeGraph::AddAttribute(const std::string& name) {
  auto it = attribute_ids_.find(name);
  if (it != attribute_ids_.end()) return it->second;
  const AttributeId id = store_->AppendAttributeName(name);
  attribute_ids_.emplace(name, id);
  MaybeCommit();
  return id;
}

void KnowledgeGraph::AddRelationalTriple(EntityId head, RelationId relation,
                                         EntityId tail) {
  SDEA_CHECK(head >= 0 && head < num_entities());
  SDEA_CHECK(tail >= 0 && tail < num_entities());
  SDEA_CHECK(relation >= 0 && relation < num_relations());
  store_->AppendRelational(head, relation, tail);
  MaybeCommit();
}

void KnowledgeGraph::AddAttributeTriple(EntityId entity,
                                        AttributeId attribute,
                                        std::string value) {
  SDEA_CHECK(entity >= 0 && entity < num_entities());
  SDEA_CHECK(attribute >= 0 && attribute < num_attributes());
  store_->AppendAttribute(entity, attribute, std::move(value));
  MaybeCommit();
}

Result<EntityId> KnowledgeGraph::FindEntity(const std::string& name) const {
  auto it = entity_ids_.find(name);
  if (it == entity_ids_.end()) {
    return Status::NotFound("entity not found: " + name);
  }
  return it->second;
}

Result<RelationId> KnowledgeGraph::FindRelation(
    const std::string& name) const {
  auto it = relation_ids_.find(name);
  if (it == relation_ids_.end()) {
    return Status::NotFound("relation not found: " + name);
  }
  return it->second;
}

Result<AttributeId> KnowledgeGraph::FindAttribute(
    const std::string& name) const {
  auto it = attribute_ids_.find(name);
  if (it == attribute_ids_.end()) {
    return Status::NotFound("attribute not found: " + name);
  }
  return it->second;
}

void KnowledgeGraph::TopUpRowMirrors() const {
  const int64_t rel_rows = store_->latest_rel_rows();
  if (row_mirror_rel_rows_ < rel_rows) {
    rel_mirror_.reserve(static_cast<size_t>(rel_rows));
    store_->LatestForEachRelational(
        row_mirror_rel_rows_,
        [&](int64_t /*row*/, EntityId h, RelationId r, EntityId t) {
          rel_mirror_.push_back(RelationalTriple{h, r, t});
        });
    row_mirror_rel_rows_ = rel_rows;
  }
  const int64_t attr_rows = store_->latest_attr_rows();
  if (row_mirror_attr_rows_ < attr_rows) {
    attr_mirror_.reserve(static_cast<size_t>(attr_rows));
    store_->LatestForEachAttribute(
        row_mirror_attr_rows_,
        [&](int64_t /*row*/, EntityId e, AttributeId a,
            const std::string& value) {
          attr_mirror_.push_back(AttributeTriple{e, a, value});
        });
    row_mirror_attr_rows_ = attr_rows;
  }
}

void KnowledgeGraph::TopUpEntityMirrors() const {
  adjacency_mirror_.resize(static_cast<size_t>(num_entities()));
  entity_attr_mirror_.resize(static_cast<size_t>(num_entities()));
  const int64_t rel_rows = store_->latest_rel_rows();
  if (entity_mirror_rel_rows_ < rel_rows) {
    store_->LatestForEachRelational(
        entity_mirror_rel_rows_,
        [&](int64_t /*row*/, EntityId h, RelationId r, EntityId t) {
          adjacency_mirror_[static_cast<size_t>(h)].push_back(
              NeighborEdge{r, t, /*outgoing=*/true});
          adjacency_mirror_[static_cast<size_t>(t)].push_back(
              NeighborEdge{r, h, /*outgoing=*/false});
        });
    entity_mirror_rel_rows_ = rel_rows;
  }
  const int64_t attr_rows = store_->latest_attr_rows();
  if (entity_mirror_attr_rows_ < attr_rows) {
    store_->LatestForEachAttribute(
        entity_mirror_attr_rows_,
        [&](int64_t row, EntityId e, AttributeId /*a*/,
            const std::string& /*value*/) {
          entity_attr_mirror_[static_cast<size_t>(e)].push_back(row);
        });
    entity_mirror_attr_rows_ = attr_rows;
  }
}

const std::vector<RelationalTriple>& KnowledgeGraph::relational_triples()
    const {
  TopUpRowMirrors();
  return rel_mirror_;
}

const std::vector<AttributeTriple>& KnowledgeGraph::attribute_triples()
    const {
  TopUpRowMirrors();
  return attr_mirror_;
}

const std::vector<NeighborEdge>& KnowledgeGraph::neighbors(EntityId e) const {
  if (e < 0 || e >= num_entities()) return EmptyNeighbors();
  TopUpEntityMirrors();
  return adjacency_mirror_[static_cast<size_t>(e)];
}

const std::vector<int64_t>& KnowledgeGraph::attribute_triples_of(
    EntityId e) const {
  if (e < 0 || e >= num_entities()) return EmptyIndices();
  TopUpEntityMirrors();
  return entity_attr_mirror_[static_cast<size_t>(e)];
}

int64_t KnowledgeGraph::degree(EntityId e) const {
  if (e < 0 || e >= num_entities()) return 0;
  return static_cast<int64_t>(neighbors(e).size());
}

KgStatistics KnowledgeGraph::ComputeStatistics() const {
  KgStatistics s;
  s.num_entities = num_entities();
  s.num_relations = num_relations();
  s.num_attributes = num_attributes();
  s.num_relational_triples = store_->latest_rel_rows();
  s.num_attribute_triples = store_->latest_attr_rows();
  // One columnar pass accumulates every entity's degree; no adjacency
  // mirror is materialized.
  std::vector<int64_t> degrees(static_cast<size_t>(num_entities()), 0);
  store_->LatestForEachRelational(
      0, [&](int64_t /*row*/, EntityId h, RelationId /*r*/, EntityId t) {
        ++degrees[static_cast<size_t>(h)];
        ++degrees[static_cast<size_t>(t)];
      });
  int64_t with_edges = 0, le3 = 0, le5 = 0, le10 = 0;
  for (const int64_t d : degrees) {
    if (d == 0) continue;
    ++with_edges;
    if (d <= 3) ++le3;
    if (d <= 5) ++le5;
    if (d <= 10) ++le10;
  }
  if (with_edges > 0) {
    s.degree_le3 = static_cast<double>(le3) / with_edges;
    s.degree_le5 = static_cast<double>(le5) / with_edges;
    s.degree_le10 = static_cast<double>(le10) / with_edges;
  }
  return s;
}

Status KnowledgeGraph::SaveTsv(const std::string& prefix) const {
  // Names become unescaped key fields in both files; a tab or newline in a
  // name cannot be written compatibly, so reject it up front rather than
  // corrupt the row structure.
  for (EntityId e = 0; e < num_entities(); ++e) {
    if (HasTsvBreakingChars(entity_name(e))) {
      return Status::InvalidArgument(
          "entity name contains tab/newline, not representable in TSV: " +
          entity_name(e));
    }
  }
  for (RelationId r = 0; r < num_relations(); ++r) {
    if (HasTsvBreakingChars(relation_name(r))) {
      return Status::InvalidArgument(
          "relation name contains tab/newline, not representable in TSV: " +
          relation_name(r));
    }
  }
  for (AttributeId a = 0; a < num_attributes(); ++a) {
    if (HasTsvBreakingChars(attribute_name(a))) {
      return Status::InvalidArgument(
          "attribute name contains tab/newline, not representable in TSV: " +
          attribute_name(a));
    }
  }
  std::vector<std::vector<std::string>> rel_rows;
  rel_rows.reserve(static_cast<size_t>(store_->latest_rel_rows()));
  store_->LatestForEachRelational(
      0, [&](int64_t /*row*/, EntityId h, RelationId r, EntityId t) {
        rel_rows.push_back(
            {entity_name(h), relation_name(r), entity_name(t)});
      });
  SDEA_RETURN_IF_ERROR(WriteTsv(prefix + "_rel_triples", rel_rows));
  std::vector<std::vector<std::string>> attr_rows;
  attr_rows.reserve(static_cast<size_t>(store_->latest_attr_rows()));
  store_->LatestForEachAttribute(
      0, [&](int64_t /*row*/, EntityId e, AttributeId a,
             const std::string& value) {
        attr_rows.push_back(
            {entity_name(e), attribute_name(a), EscapeTsvField(value)});
      });
  return WriteTsv(prefix + "_attr_triples", attr_rows);
}

Result<KnowledgeGraph> KnowledgeGraph::LoadTsv(const std::string& prefix,
                                               bool require_attributes) {
  KnowledgeGraph g;
  g.BeginBulkLoad();
  SDEA_ASSIGN_OR_RETURN(auto rel_rows, ReadTsv(prefix + "_rel_triples"));
  for (const auto& row : rel_rows) {
    if (row.size() != 3) {
      return Status::InvalidArgument(
          StrFormat("bad relational triple row with %zu fields", row.size()));
    }
    const EntityId h = g.AddEntity(row[0]);
    const RelationId r = g.AddRelation(row[1]);
    const EntityId t = g.AddEntity(row[2]);
    g.AddRelationalTriple(h, r, t);
  }
  const std::string attr_path = prefix + "_attr_triples";
  if (!FileExists(attr_path)) {
    if (require_attributes) {
      return Status::NotFound("missing attribute triples: " + attr_path);
    }
    g.EndBulkLoad();
    return g;
  }
  SDEA_ASSIGN_OR_RETURN(auto attr_rows, ReadTsv(attr_path));
  for (const auto& row : attr_rows) {
    if (row.size() < 3) {
      return Status::InvalidArgument(
          StrFormat("bad attribute triple row with %zu fields", row.size()));
    }
    const EntityId e = g.AddEntity(row[0]);
    const AttributeId a = g.AddAttribute(row[1]);
    // Files written by the escaping SaveTsv always have exactly 3 fields.
    // Pre-escaping files could carry raw tabs in free-text values that
    // Split broke apart; keep the legacy re-join (with spaces) for those.
    std::string value = row[2];
    for (size_t i = 3; i < row.size(); ++i) {
      value += ' ';
      value += row[i];
    }
    g.AddAttributeTriple(e, a, UnescapeTsvField(value));
  }
  g.EndBulkLoad();
  return g;
}

AlignmentSeeds AlignmentSeeds::Split(
    std::vector<std::pair<EntityId, EntityId>> pairs, uint64_t seed,
    double train_ratio, double valid_ratio, double test_ratio) {
  Rng rng(seed);
  rng.Shuffle(&pairs);
  const double total = train_ratio + valid_ratio + test_ratio;
  SDEA_CHECK_GT(total, 0.0);
  const size_t n = pairs.size();
  const size_t n_train =
      static_cast<size_t>(static_cast<double>(n) * train_ratio / total);
  const size_t n_valid =
      static_cast<size_t>(static_cast<double>(n) * valid_ratio / total);
  AlignmentSeeds out;
  out.train.assign(pairs.begin(), pairs.begin() + n_train);
  out.valid.assign(pairs.begin() + n_train,
                   pairs.begin() + n_train + n_valid);
  out.test.assign(pairs.begin() + n_train + n_valid, pairs.end());
  return out;
}

}  // namespace sdea::kg
