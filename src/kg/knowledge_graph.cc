#include "kg/knowledge_graph.h"

#include "base/check.h"
#include "base/fileio.h"
#include "base/rng.h"
#include "base/strings.h"

namespace sdea::kg {

KnowledgeGraph KnowledgeGraph::Clone() const {
  KnowledgeGraph out;
  out.entity_names_ = entity_names_;
  out.relation_names_ = relation_names_;
  out.attribute_names_ = attribute_names_;
  out.entity_ids_ = entity_ids_;
  out.relation_ids_ = relation_ids_;
  out.attribute_ids_ = attribute_ids_;
  out.relational_triples_ = relational_triples_;
  out.attribute_triples_ = attribute_triples_;
  out.adjacency_ = adjacency_;
  out.entity_attributes_ = entity_attributes_;
  return out;
}

EntityId KnowledgeGraph::AddEntity(const std::string& name) {
  auto it = entity_ids_.find(name);
  if (it != entity_ids_.end()) return it->second;
  const EntityId id = static_cast<EntityId>(entity_names_.size());
  entity_names_.push_back(name);
  entity_ids_.emplace(name, id);
  adjacency_.emplace_back();
  entity_attributes_.emplace_back();
  return id;
}

RelationId KnowledgeGraph::AddRelation(const std::string& name) {
  auto it = relation_ids_.find(name);
  if (it != relation_ids_.end()) return it->second;
  const RelationId id = static_cast<RelationId>(relation_names_.size());
  relation_names_.push_back(name);
  relation_ids_.emplace(name, id);
  return id;
}

AttributeId KnowledgeGraph::AddAttribute(const std::string& name) {
  auto it = attribute_ids_.find(name);
  if (it != attribute_ids_.end()) return it->second;
  const AttributeId id = static_cast<AttributeId>(attribute_names_.size());
  attribute_names_.push_back(name);
  attribute_ids_.emplace(name, id);
  return id;
}

void KnowledgeGraph::AddRelationalTriple(EntityId head, RelationId relation,
                                         EntityId tail) {
  SDEA_CHECK(head >= 0 && head < num_entities());
  SDEA_CHECK(tail >= 0 && tail < num_entities());
  SDEA_CHECK(relation >= 0 && relation < num_relations());
  relational_triples_.push_back(RelationalTriple{head, relation, tail});
  adjacency_[static_cast<size_t>(head)].push_back(
      NeighborEdge{relation, tail, /*outgoing=*/true});
  adjacency_[static_cast<size_t>(tail)].push_back(
      NeighborEdge{relation, head, /*outgoing=*/false});
}

void KnowledgeGraph::AddAttributeTriple(EntityId entity,
                                        AttributeId attribute,
                                        std::string value) {
  SDEA_CHECK(entity >= 0 && entity < num_entities());
  SDEA_CHECK(attribute >= 0 && attribute < num_attributes());
  const int64_t index = static_cast<int64_t>(attribute_triples_.size());
  attribute_triples_.push_back(
      AttributeTriple{entity, attribute, std::move(value)});
  entity_attributes_[static_cast<size_t>(entity)].push_back(index);
}

const std::string& KnowledgeGraph::entity_name(EntityId id) const {
  SDEA_CHECK(id >= 0 && id < num_entities());
  return entity_names_[static_cast<size_t>(id)];
}

const std::string& KnowledgeGraph::relation_name(RelationId id) const {
  SDEA_CHECK(id >= 0 && id < num_relations());
  return relation_names_[static_cast<size_t>(id)];
}

const std::string& KnowledgeGraph::attribute_name(AttributeId id) const {
  SDEA_CHECK(id >= 0 && id < num_attributes());
  return attribute_names_[static_cast<size_t>(id)];
}

Result<EntityId> KnowledgeGraph::FindEntity(const std::string& name) const {
  auto it = entity_ids_.find(name);
  if (it == entity_ids_.end()) {
    return Status::NotFound("entity not found: " + name);
  }
  return it->second;
}

Result<RelationId> KnowledgeGraph::FindRelation(
    const std::string& name) const {
  auto it = relation_ids_.find(name);
  if (it == relation_ids_.end()) {
    return Status::NotFound("relation not found: " + name);
  }
  return it->second;
}

Result<AttributeId> KnowledgeGraph::FindAttribute(
    const std::string& name) const {
  auto it = attribute_ids_.find(name);
  if (it == attribute_ids_.end()) {
    return Status::NotFound("attribute not found: " + name);
  }
  return it->second;
}

const std::vector<NeighborEdge>& KnowledgeGraph::neighbors(EntityId e) const {
  SDEA_CHECK(e >= 0 && e < num_entities());
  return adjacency_[static_cast<size_t>(e)];
}

const std::vector<int64_t>& KnowledgeGraph::attribute_triples_of(
    EntityId e) const {
  SDEA_CHECK(e >= 0 && e < num_entities());
  return entity_attributes_[static_cast<size_t>(e)];
}

int64_t KnowledgeGraph::degree(EntityId e) const {
  return static_cast<int64_t>(neighbors(e).size());
}

KgStatistics KnowledgeGraph::ComputeStatistics() const {
  KgStatistics s;
  s.num_entities = num_entities();
  s.num_relations = num_relations();
  s.num_attributes = num_attributes();
  s.num_relational_triples =
      static_cast<int64_t>(relational_triples_.size());
  s.num_attribute_triples = static_cast<int64_t>(attribute_triples_.size());
  int64_t with_edges = 0, le3 = 0, le5 = 0, le10 = 0;
  for (EntityId e = 0; e < num_entities(); ++e) {
    const int64_t d = degree(e);
    if (d == 0) continue;
    ++with_edges;
    if (d <= 3) ++le3;
    if (d <= 5) ++le5;
    if (d <= 10) ++le10;
  }
  if (with_edges > 0) {
    s.degree_le3 = static_cast<double>(le3) / with_edges;
    s.degree_le5 = static_cast<double>(le5) / with_edges;
    s.degree_le10 = static_cast<double>(le10) / with_edges;
  }
  return s;
}

Status KnowledgeGraph::SaveTsv(const std::string& prefix) const {
  std::vector<std::vector<std::string>> rel_rows;
  rel_rows.reserve(relational_triples_.size());
  for (const RelationalTriple& t : relational_triples_) {
    rel_rows.push_back({entity_name(t.head), relation_name(t.relation),
                        entity_name(t.tail)});
  }
  SDEA_RETURN_IF_ERROR(WriteTsv(prefix + "_rel_triples", rel_rows));
  std::vector<std::vector<std::string>> attr_rows;
  attr_rows.reserve(attribute_triples_.size());
  for (const AttributeTriple& t : attribute_triples_) {
    attr_rows.push_back(
        {entity_name(t.entity), attribute_name(t.attribute), t.value});
  }
  return WriteTsv(prefix + "_attr_triples", attr_rows);
}

Result<KnowledgeGraph> KnowledgeGraph::LoadTsv(const std::string& prefix,
                                               bool require_attributes) {
  KnowledgeGraph g;
  SDEA_ASSIGN_OR_RETURN(auto rel_rows, ReadTsv(prefix + "_rel_triples"));
  for (const auto& row : rel_rows) {
    if (row.size() != 3) {
      return Status::InvalidArgument(
          StrFormat("bad relational triple row with %zu fields", row.size()));
    }
    const EntityId h = g.AddEntity(row[0]);
    const RelationId r = g.AddRelation(row[1]);
    const EntityId t = g.AddEntity(row[2]);
    g.AddRelationalTriple(h, r, t);
  }
  const std::string attr_path = prefix + "_attr_triples";
  if (!FileExists(attr_path)) {
    if (require_attributes) {
      return Status::NotFound("missing attribute triples: " + attr_path);
    }
    return g;
  }
  SDEA_ASSIGN_OR_RETURN(auto attr_rows, ReadTsv(attr_path));
  for (const auto& row : attr_rows) {
    if (row.size() < 3) {
      return Status::InvalidArgument(
          StrFormat("bad attribute triple row with %zu fields", row.size()));
    }
    const EntityId e = g.AddEntity(row[0]);
    const AttributeId a = g.AddAttribute(row[1]);
    // Values may legitimately contain tabs that Split broke apart; re-join.
    std::string value = row[2];
    for (size_t i = 3; i < row.size(); ++i) {
      value += ' ';
      value += row[i];
    }
    g.AddAttributeTriple(e, a, std::move(value));
  }
  return g;
}

AlignmentSeeds AlignmentSeeds::Split(
    std::vector<std::pair<EntityId, EntityId>> pairs, uint64_t seed,
    double train_ratio, double valid_ratio, double test_ratio) {
  Rng rng(seed);
  rng.Shuffle(&pairs);
  const double total = train_ratio + valid_ratio + test_ratio;
  SDEA_CHECK_GT(total, 0.0);
  const size_t n = pairs.size();
  const size_t n_train =
      static_cast<size_t>(static_cast<double>(n) * train_ratio / total);
  const size_t n_valid =
      static_cast<size_t>(static_cast<double>(n) * valid_ratio / total);
  AlignmentSeeds out;
  out.train.assign(pairs.begin(), pairs.begin() + n_train);
  out.valid.assign(pairs.begin() + n_train,
                   pairs.begin() + n_train + n_valid);
  out.test.assign(pairs.begin() + n_train + n_valid, pairs.end());
  return out;
}

}  // namespace sdea::kg
