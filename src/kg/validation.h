#ifndef SDEA_KG_VALIDATION_H_
#define SDEA_KG_VALIDATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kg/knowledge_graph.h"

namespace sdea::kg {

/// One detected data-quality problem.
struct ValidationIssue {
  enum class Kind {
    kSelfLoop,           ///< head == tail relational triple.
    kDuplicateTriple,    ///< Repeated relational triple.
    kDuplicateAttribute, ///< Repeated (entity, attribute, value).
    kEmptyValue,         ///< Attribute triple with empty/whitespace value.
    kIsolatedEntity,     ///< Entity with no relational edges AND no
                         ///< attributes — unalignable by any method.
    kOversizeValue,      ///< Attribute value beyond `max_value_bytes`.
  };
  Kind kind;
  EntityId entity = kInvalidEntity;
  int64_t triple_index = -1;
  std::string detail;
};

/// Validation thresholds.
struct ValidationOptions {
  int64_t max_value_bytes = 4096;
  /// Stop after this many issues (guards pathological inputs); 0 =
  /// unlimited.
  int64_t max_issues = 10'000;
};

/// Summary counters plus the individual issues.
struct ValidationReport {
  std::vector<ValidationIssue> issues;
  int64_t self_loops = 0;
  int64_t duplicate_triples = 0;
  int64_t duplicate_attributes = 0;
  int64_t empty_values = 0;
  int64_t isolated_entities = 0;
  int64_t oversize_values = 0;

  bool clean() const { return issues.empty(); }
};

/// Scans a KG for structural and data-quality problems that would degrade
/// alignment (the checks a loader should run on third-party TSV dumps
/// before training on them).
ValidationReport ValidateKnowledgeGraph(const KnowledgeGraph& graph,
                                        const ValidationOptions& options = {});

/// Human-readable one-line-per-issue rendering (capped at `max_lines`).
std::string FormatValidationReport(const ValidationReport& report,
                                   int64_t max_lines = 20);

}  // namespace sdea::kg

#endif  // SDEA_KG_VALIDATION_H_
