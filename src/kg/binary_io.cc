#include "kg/binary_io.h"

#include <cstring>
#include <unordered_map>

#include "base/fileio.h"

namespace sdea::kg {
namespace {

constexpr char kMagicV1[8] = {'S', 'D', 'E', 'A', 'K', 'G', 'B', '1'};
constexpr char kMagicV2[8] = {'S', 'D', 'E', 'A', 'K', 'G', 'B', '2'};

// On-disk chunk sizes of the v2 format. Fixed (not taken from the graph's
// in-memory options) so the same logical graph always encodes to the same
// bytes regardless of how it was built.
constexpr uint32_t kRelChunkRows = 4096;
constexpr uint32_t kAttrChunkRows = 2048;
// A v2 attribute chunk dictionary-encodes when distinct*100 <= rows*this.
constexpr uint32_t kDictMaxDistinctPct = 75;

constexpr uint8_t kEncodingPlain = 0;
constexpr uint8_t kEncodingDict = 1;

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendString(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  /// Bytes not yet consumed — the budget every on-disk count is bounded
  /// against before its loop runs.
  size_t remaining() const { return data_.size() - pos_; }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_]);
    pos_ += 1;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    std::memcpy(v, data_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }

  bool ReadString(std::string* s) {
    uint32_t len = 0;
    // Compare against the remaining budget rather than `pos_ + len` so a
    // huge len cannot wrap a 32-bit size_t and sneak past the check.
    if (!ReadU32(&len) || len > remaining()) return false;
    s->assign(data_, pos_, len);
    pos_ += len;
    return true;
  }

 private:
  const std::string& data_;
  size_t pos_ = sizeof(kMagicV1);
};

Status Truncated() { return Status::InvalidArgument("truncated binary KG"); }
Status Oversized() {
  return Status::InvalidArgument("binary KG count exceeds file size");
}

void EncodeNameTables(const KnowledgeGraph& graph, std::string* out) {
  AppendU32(out, static_cast<uint32_t>(graph.num_entities()));
  for (EntityId e = 0; e < graph.num_entities(); ++e) {
    AppendString(out, graph.entity_name(e));
  }
  AppendU32(out, static_cast<uint32_t>(graph.num_relations()));
  for (RelationId r = 0; r < graph.num_relations(); ++r) {
    AppendString(out, graph.relation_name(r));
  }
  AppendU32(out, static_cast<uint32_t>(graph.num_attributes()));
  for (AttributeId a = 0; a < graph.num_attributes(); ++a) {
    AppendString(out, graph.attribute_name(a));
  }
}

/// Decodes the three name tables shared by both format versions into `g`.
/// `counts` receives {entities, relations, attributes} for later id range
/// checks.
Status DecodeNameTables(Reader* reader, KnowledgeGraph* g,
                        uint32_t counts[3]) {
  uint32_t entities = 0;
  if (!reader->ReadU32(&entities)) return Truncated();
  // Every on-disk count is bounded against the bytes its section could
  // possibly occupy before the loop runs, so a corrupt 0xFFFFFFFF count
  // fails in O(1) instead of spinning billions of failed reads.
  if (entities > reader->remaining() / 4) return Oversized();
  for (uint32_t i = 0; i < entities; ++i) {
    std::string name;
    if (!reader->ReadString(&name)) return Truncated();
    if (g->AddEntity(name) != static_cast<EntityId>(i)) {
      return Status::InvalidArgument("duplicate entity name in binary KG");
    }
  }
  uint32_t relations = 0;
  if (!reader->ReadU32(&relations)) return Truncated();
  if (relations > reader->remaining() / 4) return Oversized();
  for (uint32_t i = 0; i < relations; ++i) {
    std::string name;
    if (!reader->ReadString(&name)) return Truncated();
    if (g->AddRelation(name) != static_cast<RelationId>(i)) {
      return Status::InvalidArgument("duplicate relation name in binary KG");
    }
  }
  uint32_t attributes = 0;
  if (!reader->ReadU32(&attributes)) return Truncated();
  if (attributes > reader->remaining() / 4) return Oversized();
  for (uint32_t i = 0; i < attributes; ++i) {
    std::string name;
    if (!reader->ReadString(&name)) return Truncated();
    if (g->AddAttribute(name) != static_cast<AttributeId>(i)) {
      return Status::InvalidArgument("duplicate attribute name in binary KG");
    }
  }
  counts[0] = entities;
  counts[1] = relations;
  counts[2] = attributes;
  return Status::Ok();
}

Result<KnowledgeGraph> DecodeBinaryV1(Reader reader) {
  KnowledgeGraph g;
  g.BeginBulkLoad();
  uint32_t counts[3] = {0, 0, 0};
  SDEA_RETURN_IF_ERROR(DecodeNameTables(&reader, &g, counts));
  const uint32_t entities = counts[0];
  const uint32_t relations = counts[1];
  const uint32_t attributes = counts[2];

  uint32_t rel_triples = 0;
  if (!reader.ReadU32(&rel_triples)) return Truncated();
  if (rel_triples > reader.remaining() / 12) return Oversized();
  for (uint32_t i = 0; i < rel_triples; ++i) {
    uint32_t h = 0, r = 0, t = 0;
    if (!reader.ReadU32(&h) || !reader.ReadU32(&r) || !reader.ReadU32(&t)) {
      return Truncated();
    }
    if (h >= entities || t >= entities || r >= relations) {
      return Status::InvalidArgument("binary KG triple out of range");
    }
    g.AddRelationalTriple(static_cast<EntityId>(h),
                          static_cast<RelationId>(r),
                          static_cast<EntityId>(t));
  }
  uint32_t attr_triples = 0;
  if (!reader.ReadU32(&attr_triples)) return Truncated();
  if (attr_triples > reader.remaining() / 12) return Oversized();
  for (uint32_t i = 0; i < attr_triples; ++i) {
    uint32_t e = 0, a = 0;
    std::string value;
    if (!reader.ReadU32(&e) || !reader.ReadU32(&a) ||
        !reader.ReadString(&value)) {
      return Truncated();
    }
    if (e >= entities || a >= attributes) {
      return Status::InvalidArgument(
          "binary KG attribute triple out of range");
    }
    g.AddAttributeTriple(static_cast<EntityId>(e),
                         static_cast<AttributeId>(a), std::move(value));
  }
  g.EndBulkLoad();
  return g;
}

Result<KnowledgeGraph> DecodeBinaryV2(Reader reader) {
  KnowledgeGraph g;
  g.BeginBulkLoad();
  uint32_t counts[3] = {0, 0, 0};
  SDEA_RETURN_IF_ERROR(DecodeNameTables(&reader, &g, counts));
  const uint32_t entities = counts[0];
  const uint32_t relations = counts[1];
  const uint32_t attributes = counts[2];

  // ---- Relational chunks: three u32 columns per chunk. -------------------
  uint32_t rel_rows = 0, rel_chunk = 0;
  if (!reader.ReadU32(&rel_rows) || !reader.ReadU32(&rel_chunk)) {
    return Truncated();
  }
  if (rel_rows > 0 && rel_chunk == 0) {
    return Status::InvalidArgument("binary KG chunk size is zero");
  }
  // 12 bytes per row minimum; a lying total fails before any loop.
  if (rel_rows > reader.remaining() / 12) return Oversized();
  std::vector<uint32_t> col;
  for (uint32_t base = 0; base < rel_rows; base += rel_chunk) {
    const uint32_t rows = std::min(rel_chunk, rel_rows - base);
    std::vector<uint32_t> heads(rows), rels(rows), tails(rows);
    for (uint32_t i = 0; i < rows; ++i) {
      if (!reader.ReadU32(&heads[i])) return Truncated();
    }
    for (uint32_t i = 0; i < rows; ++i) {
      if (!reader.ReadU32(&rels[i])) return Truncated();
    }
    for (uint32_t i = 0; i < rows; ++i) {
      if (!reader.ReadU32(&tails[i])) return Truncated();
    }
    for (uint32_t i = 0; i < rows; ++i) {
      if (heads[i] >= entities || tails[i] >= entities ||
          rels[i] >= relations) {
        return Status::InvalidArgument("binary KG triple out of range");
      }
      g.AddRelationalTriple(static_cast<EntityId>(heads[i]),
                            static_cast<RelationId>(rels[i]),
                            static_cast<EntityId>(tails[i]));
    }
  }

  // ---- Attribute chunks: two u32 id columns + per-chunk value encoding. --
  uint32_t attr_rows = 0, attr_chunk = 0;
  if (!reader.ReadU32(&attr_rows) || !reader.ReadU32(&attr_chunk)) {
    return Truncated();
  }
  if (attr_rows > 0 && attr_chunk == 0) {
    return Status::InvalidArgument("binary KG chunk size is zero");
  }
  // Minimum bytes per row: entity + attribute + (code | empty string) = 12.
  if (attr_rows > reader.remaining() / 12) return Oversized();
  for (uint32_t base = 0; base < attr_rows; base += attr_chunk) {
    const uint32_t rows = std::min(attr_chunk, attr_rows - base);
    std::vector<uint32_t> ents(rows), attrs(rows);
    for (uint32_t i = 0; i < rows; ++i) {
      if (!reader.ReadU32(&ents[i])) return Truncated();
    }
    for (uint32_t i = 0; i < rows; ++i) {
      if (!reader.ReadU32(&attrs[i])) return Truncated();
    }
    for (uint32_t i = 0; i < rows; ++i) {
      if (ents[i] >= entities || attrs[i] >= attributes) {
        return Status::InvalidArgument(
            "binary KG attribute triple out of range");
      }
    }
    uint8_t encoding = 0;
    if (!reader.ReadU8(&encoding)) return Truncated();
    if (encoding == kEncodingDict) {
      uint32_t dict_n = 0;
      if (!reader.ReadU32(&dict_n)) return Truncated();
      // A first-occurrence dictionary never has more entries than rows.
      if (dict_n > rows) {
        return Status::InvalidArgument(
            "binary KG chunk dictionary larger than chunk");
      }
      std::vector<std::string> dict(dict_n);
      for (uint32_t i = 0; i < dict_n; ++i) {
        if (!reader.ReadString(&dict[i])) return Truncated();
      }
      for (uint32_t i = 0; i < rows; ++i) {
        uint32_t code = 0;
        if (!reader.ReadU32(&code)) return Truncated();
        if (code >= dict_n) {
          return Status::InvalidArgument(
              "binary KG dictionary code out of range");
        }
        g.AddAttributeTriple(static_cast<EntityId>(ents[i]),
                             static_cast<AttributeId>(attrs[i]), dict[code]);
      }
    } else if (encoding == kEncodingPlain) {
      for (uint32_t i = 0; i < rows; ++i) {
        std::string value;
        if (!reader.ReadString(&value)) return Truncated();
        g.AddAttributeTriple(static_cast<EntityId>(ents[i]),
                             static_cast<AttributeId>(attrs[i]),
                             std::move(value));
      }
    } else {
      return Status::InvalidArgument("binary KG chunk encoding unknown");
    }
  }
  g.EndBulkLoad();
  return g;
}

}  // namespace

std::string EncodeBinary(const KnowledgeGraph& graph) {
  std::string out;
  out.append(kMagicV2, sizeof(kMagicV2));
  EncodeNameTables(graph, &out);

  const ColumnarKgStore& store = graph.columnar();

  // Relational section: rows re-chunked at the fixed on-disk size, each
  // chunk written as three contiguous u32 columns.
  const int64_t rel_rows = store.latest_rel_rows();
  AppendU32(&out, static_cast<uint32_t>(rel_rows));
  AppendU32(&out, kRelChunkRows);
  std::vector<uint32_t> heads, rels, tails;
  auto flush_rel = [&] {
    for (uint32_t h : heads) AppendU32(&out, h);
    for (uint32_t r : rels) AppendU32(&out, r);
    for (uint32_t t : tails) AppendU32(&out, t);
    heads.clear();
    rels.clear();
    tails.clear();
  };
  store.LatestForEachRelational(
      0, [&](int64_t /*row*/, EntityId h, RelationId r, EntityId t) {
        heads.push_back(static_cast<uint32_t>(h));
        rels.push_back(static_cast<uint32_t>(r));
        tails.push_back(static_cast<uint32_t>(t));
        if (heads.size() == kRelChunkRows) flush_rel();
      });
  if (!heads.empty()) flush_rel();

  // Attribute section: id columns plus a per-chunk value encoding decided
  // by the chunk's own duplication (dictionary when it pays for itself).
  const int64_t attr_rows = store.latest_attr_rows();
  AppendU32(&out, static_cast<uint32_t>(attr_rows));
  AppendU32(&out, kAttrChunkRows);
  std::vector<uint32_t> ents, attrs;
  std::vector<const std::string*> values;
  auto flush_attr = [&] {
    for (uint32_t e : ents) AppendU32(&out, e);
    for (uint32_t a : attrs) AppendU32(&out, a);
    std::unordered_map<std::string_view, uint32_t> index;
    std::vector<uint32_t> codes;
    codes.reserve(values.size());
    std::vector<const std::string*> dict;
    for (const std::string* v : values) {
      auto [it, inserted] =
          index.try_emplace(*v, static_cast<uint32_t>(dict.size()));
      if (inserted) dict.push_back(v);
      codes.push_back(it->second);
    }
    if (dict.size() * 100 <= values.size() * kDictMaxDistinctPct) {
      out.push_back(static_cast<char>(kEncodingDict));
      AppendU32(&out, static_cast<uint32_t>(dict.size()));
      for (const std::string* v : dict) AppendString(&out, *v);
      for (uint32_t c : codes) AppendU32(&out, c);
    } else {
      out.push_back(static_cast<char>(kEncodingPlain));
      for (const std::string* v : values) AppendString(&out, *v);
    }
    ents.clear();
    attrs.clear();
    values.clear();
  };
  store.LatestForEachAttribute(
      0, [&](int64_t /*row*/, EntityId e, AttributeId a,
             const std::string& value) {
        ents.push_back(static_cast<uint32_t>(e));
        attrs.push_back(static_cast<uint32_t>(a));
        values.push_back(&value);
        if (values.size() == kAttrChunkRows) flush_attr();
      });
  if (!values.empty()) flush_attr();
  return out;
}

std::string EncodeBinaryV1(const KnowledgeGraph& graph) {
  std::string out;
  out.append(kMagicV1, sizeof(kMagicV1));
  EncodeNameTables(graph, &out);
  const ColumnarKgStore& store = graph.columnar();
  AppendU32(&out, static_cast<uint32_t>(store.latest_rel_rows()));
  store.LatestForEachRelational(
      0, [&](int64_t /*row*/, EntityId h, RelationId r, EntityId t) {
        AppendU32(&out, static_cast<uint32_t>(h));
        AppendU32(&out, static_cast<uint32_t>(r));
        AppendU32(&out, static_cast<uint32_t>(t));
      });
  AppendU32(&out, static_cast<uint32_t>(store.latest_attr_rows()));
  store.LatestForEachAttribute(
      0, [&](int64_t /*row*/, EntityId e, AttributeId a,
             const std::string& value) {
        AppendU32(&out, static_cast<uint32_t>(e));
        AppendU32(&out, static_cast<uint32_t>(a));
        AppendString(&out, value);
      });
  return out;
}

Status SaveBinary(const KnowledgeGraph& graph, const std::string& path) {
  // Atomic (temp + rename): a crash mid-save must never leave a truncated
  // file that a later LoadBinary rejects — or worse, half-parses.
  return WriteStringToFileAtomic(path, EncodeBinary(graph));
}

Result<KnowledgeGraph> DecodeBinary(const std::string& data) {
  if (data.size() < sizeof(kMagicV1)) {
    return Status::InvalidArgument("not an SDEA binary KG");
  }
  if (std::memcmp(data.data(), kMagicV2, sizeof(kMagicV2)) == 0) {
    return DecodeBinaryV2(Reader(data));
  }
  if (std::memcmp(data.data(), kMagicV1, sizeof(kMagicV1)) == 0) {
    return DecodeBinaryV1(Reader(data));
  }
  return Status::InvalidArgument("not an SDEA binary KG");
}

Result<KnowledgeGraph> LoadBinary(const std::string& path) {
  SDEA_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  auto decoded = DecodeBinary(data);
  if (!decoded.ok()) {
    return Status(decoded.status().code(),
                  decoded.status().message() + ": " + path);
  }
  return decoded;
}

}  // namespace sdea::kg
