#include "kg/binary_io.h"

#include <cstring>

#include "base/fileio.h"

namespace sdea::kg {
namespace {

constexpr char kMagic[8] = {'S', 'D', 'E', 'A', 'K', 'G', 'B', '1'};

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendString(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  /// Bytes not yet consumed — the budget every on-disk count is bounded
  /// against before its loop runs.
  size_t remaining() const { return data_.size() - pos_; }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    std::memcpy(v, data_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }

  bool ReadString(std::string* s) {
    uint32_t len = 0;
    // Compare against the remaining budget rather than `pos_ + len` so a
    // huge len cannot wrap a 32-bit size_t and sneak past the check.
    if (!ReadU32(&len) || len > remaining()) return false;
    s->assign(data_, pos_, len);
    pos_ += len;
    return true;
  }

 private:
  const std::string& data_;
  size_t pos_ = sizeof(kMagic);
};

}  // namespace

std::string EncodeBinary(const KnowledgeGraph& graph) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendU32(&out, static_cast<uint32_t>(graph.num_entities()));
  for (EntityId e = 0; e < graph.num_entities(); ++e) {
    AppendString(&out, graph.entity_name(e));
  }
  AppendU32(&out, static_cast<uint32_t>(graph.num_relations()));
  for (RelationId r = 0; r < graph.num_relations(); ++r) {
    AppendString(&out, graph.relation_name(r));
  }
  AppendU32(&out, static_cast<uint32_t>(graph.num_attributes()));
  for (AttributeId a = 0; a < graph.num_attributes(); ++a) {
    AppendString(&out, graph.attribute_name(a));
  }
  AppendU32(&out,
            static_cast<uint32_t>(graph.relational_triples().size()));
  for (const RelationalTriple& t : graph.relational_triples()) {
    AppendU32(&out, static_cast<uint32_t>(t.head));
    AppendU32(&out, static_cast<uint32_t>(t.relation));
    AppendU32(&out, static_cast<uint32_t>(t.tail));
  }
  AppendU32(&out, static_cast<uint32_t>(graph.attribute_triples().size()));
  for (const AttributeTriple& t : graph.attribute_triples()) {
    AppendU32(&out, static_cast<uint32_t>(t.entity));
    AppendU32(&out, static_cast<uint32_t>(t.attribute));
    AppendString(&out, t.value);
  }
  return out;
}

Status SaveBinary(const KnowledgeGraph& graph, const std::string& path) {
  // Atomic (temp + rename): a crash mid-save must never leave a truncated
  // file that a later LoadBinary rejects — or worse, half-parses.
  return WriteStringToFileAtomic(path, EncodeBinary(graph));
}

Result<KnowledgeGraph> DecodeBinary(const std::string& data) {
  if (data.size() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an SDEA binary KG");
  }
  Reader reader(data);
  KnowledgeGraph g;
  auto truncated = [] {
    return Status::InvalidArgument("truncated binary KG");
  };
  // Every on-disk count is bounded against the bytes its section could
  // possibly occupy before the loop runs, so a corrupt 0xFFFFFFFF count
  // fails in O(1) instead of spinning billions of failed reads.
  auto oversized = [] {
    return Status::InvalidArgument("binary KG count exceeds file size");
  };

  uint32_t entities = 0;
  if (!reader.ReadU32(&entities)) return truncated();
  if (entities > reader.remaining() / 4) return oversized();
  for (uint32_t i = 0; i < entities; ++i) {
    std::string name;
    if (!reader.ReadString(&name)) return truncated();
    if (g.AddEntity(name) != static_cast<EntityId>(i)) {
      return Status::InvalidArgument("duplicate entity name in binary KG");
    }
  }
  uint32_t relations = 0;
  if (!reader.ReadU32(&relations)) return truncated();
  if (relations > reader.remaining() / 4) return oversized();
  for (uint32_t i = 0; i < relations; ++i) {
    std::string name;
    if (!reader.ReadString(&name)) return truncated();
    if (g.AddRelation(name) != static_cast<RelationId>(i)) {
      return Status::InvalidArgument("duplicate relation name in binary KG");
    }
  }
  uint32_t attributes = 0;
  if (!reader.ReadU32(&attributes)) return truncated();
  if (attributes > reader.remaining() / 4) return oversized();
  for (uint32_t i = 0; i < attributes; ++i) {
    std::string name;
    if (!reader.ReadString(&name)) return truncated();
    if (g.AddAttribute(name) != static_cast<AttributeId>(i)) {
      return Status::InvalidArgument("duplicate attribute name in binary KG");
    }
  }
  uint32_t rel_triples = 0;
  if (!reader.ReadU32(&rel_triples)) return truncated();
  if (rel_triples > reader.remaining() / 12) return oversized();
  for (uint32_t i = 0; i < rel_triples; ++i) {
    uint32_t h = 0, r = 0, t = 0;
    if (!reader.ReadU32(&h) || !reader.ReadU32(&r) || !reader.ReadU32(&t)) {
      return truncated();
    }
    if (h >= entities || t >= entities || r >= relations) {
      return Status::InvalidArgument("binary KG triple out of range");
    }
    g.AddRelationalTriple(static_cast<EntityId>(h),
                          static_cast<RelationId>(r),
                          static_cast<EntityId>(t));
  }
  uint32_t attr_triples = 0;
  if (!reader.ReadU32(&attr_triples)) return truncated();
  if (attr_triples > reader.remaining() / 12) return oversized();
  for (uint32_t i = 0; i < attr_triples; ++i) {
    uint32_t e = 0, a = 0;
    std::string value;
    if (!reader.ReadU32(&e) || !reader.ReadU32(&a) ||
        !reader.ReadString(&value)) {
      return truncated();
    }
    if (e >= entities || a >= attributes) {
      return Status::InvalidArgument(
          "binary KG attribute triple out of range");
    }
    g.AddAttributeTriple(static_cast<EntityId>(e),
                         static_cast<AttributeId>(a), std::move(value));
  }
  return g;
}

Result<KnowledgeGraph> LoadBinary(const std::string& path) {
  SDEA_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  auto decoded = DecodeBinary(data);
  if (!decoded.ok()) {
    return Status(decoded.status().code(),
                  decoded.status().message() + ": " + path);
  }
  return decoded;
}

}  // namespace sdea::kg
