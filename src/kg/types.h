#ifndef SDEA_KG_TYPES_H_
#define SDEA_KG_TYPES_H_

#include <cstdint>
#include <string>

namespace sdea::kg {

using EntityId = int32_t;
using RelationId = int32_t;
using AttributeId = int32_t;

inline constexpr EntityId kInvalidEntity = -1;

/// (head, relation, tail) — Definition 1's relational triple.
struct RelationalTriple {
  EntityId head;
  RelationId relation;
  EntityId tail;

  bool operator==(const RelationalTriple&) const = default;
};

/// (entity, attribute, value) — Definition 1's attributed triple. Values are
/// free text (short fields, numbers, or long sentences).
struct AttributeTriple {
  EntityId entity;
  AttributeId attribute;
  std::string value;

  bool operator==(const AttributeTriple&) const = default;
};

/// One edge as seen from an entity: the relation and the other endpoint.
/// `outgoing` is true when the entity is the head of the underlying triple.
struct NeighborEdge {
  RelationId relation;
  EntityId neighbor;
  bool outgoing;

  bool operator==(const NeighborEdge&) const = default;
};

}  // namespace sdea::kg

#endif  // SDEA_KG_TYPES_H_
