#include "kg/merge.h"

#include <set>
#include <tuple>

#include "base/check.h"

namespace sdea::kg {

Result<KnowledgeGraph> MergeKnowledgeBases(const KnowledgeGraph& kg1,
                                           const KnowledgeGraph& kg2,
                                           const std::vector<int64_t>& match,
                                           const MergeOptions& options,
                                           MergeReport* report) {
  if (static_cast<int64_t>(match.size()) != kg1.num_entities()) {
    return Status::InvalidArgument(
        "match vector size must equal kg1.num_entities()");
  }
  MergeReport local;
  MergeReport* rep = (report != nullptr) ? report : &local;
  *rep = MergeReport{};

  KnowledgeGraph merged = kg1.Clone();
  // The clone is fully committed, so this snapshot is exactly KG1's triples
  // — the dedup baseline below scans it columnar-style. All further merged
  // mutation happens under one bulk load (a single commit at the end).
  const KgSnapshot merged_snap = merged.Snapshot();
  const KgSnapshot snap2 = kg2.Snapshot();
  merged.BeginBulkLoad();

  // Invert the match: kg2 entity -> merged (kg1) entity.
  rep->kg2_to_merged.assign(static_cast<size_t>(kg2.num_entities()),
                            kInvalidEntity);
  std::set<int64_t> used_targets;
  for (EntityId e1 = 0; e1 < kg1.num_entities(); ++e1) {
    const int64_t e2 = match[static_cast<size_t>(e1)];
    if (e2 < 0) continue;
    if (e2 >= kg2.num_entities()) {
      return Status::OutOfRange("match target out of range");
    }
    if (!used_targets.insert(e2).second) {
      return Status::InvalidArgument(
          "match maps two KG1 entities to the same KG2 entity");
    }
    rep->kg2_to_merged[static_cast<size_t>(e2)] = e1;
    ++rep->fused_entities;
  }

  // Carry over unmatched KG2 entities under collision-safe names.
  for (EntityId e2 = 0; e2 < kg2.num_entities(); ++e2) {
    if (rep->kg2_to_merged[static_cast<size_t>(e2)] != kInvalidEntity) {
      continue;
    }
    std::string name = kg2.entity_name(e2);
    if (merged.FindEntity(name).ok()) {
      name = options.kg2_entity_prefix + name;
      // Extremely unlikely second collision: keep prefixing.
      while (merged.FindEntity(name).ok()) {
        name = options.kg2_entity_prefix + name;
      }
    }
    rep->kg2_to_merged[static_cast<size_t>(e2)] = merged.AddEntity(name);
    ++rep->carried_entities;
  }

  // Existing KG1 triples, for deduplication.
  std::set<std::tuple<EntityId, RelationId, EntityId>> rel_seen;
  std::set<std::tuple<EntityId, AttributeId, std::string>> attr_seen;
  if (options.deduplicate_relational) {
    merged_snap.ForEachRelational(
        [&](int64_t /*row*/, EntityId h, RelationId r, EntityId t) {
          rel_seen.emplace(h, r, t);
        });
  }
  if (options.deduplicate_attributes) {
    merged_snap.ForEachAttribute(
        [&](int64_t /*row*/, EntityId e, AttributeId a,
            const std::string& value) { attr_seen.emplace(e, a, value); });
  }

  // KG2 schema: reuse a KG1 relation/attribute when the NAME matches (a
  // shared schema vocabulary merges naturally); prefix otherwise.
  auto map_relation = [&](RelationId r2) {
    const std::string& name = kg2.relation_name(r2);
    auto existing = merged.FindRelation(name);
    if (existing.ok()) return *existing;
    return merged.AddRelation(options.kg2_schema_prefix + name);
  };
  auto map_attribute = [&](AttributeId a2) {
    const std::string& name = kg2.attribute_name(a2);
    auto existing = merged.FindAttribute(name);
    if (existing.ok()) return *existing;
    return merged.AddAttribute(options.kg2_schema_prefix + name);
  };

  snap2.ForEachRelational(
      [&](int64_t /*row*/, EntityId head, RelationId relation, EntityId tl) {
        const EntityId h = rep->kg2_to_merged[static_cast<size_t>(head)];
        const EntityId tail = rep->kg2_to_merged[static_cast<size_t>(tl)];
        const RelationId r = map_relation(relation);
        if (options.deduplicate_relational &&
            !rel_seen.emplace(h, r, tail).second) {
          ++rep->duplicate_relational;
          return;
        }
        merged.AddRelationalTriple(h, r, tail);
      });
  snap2.ForEachAttribute(
      [&](int64_t /*row*/, EntityId entity, AttributeId attribute,
          const std::string& value) {
        const EntityId e = rep->kg2_to_merged[static_cast<size_t>(entity)];
        const AttributeId a = map_attribute(attribute);
        if (options.deduplicate_attributes &&
            !attr_seen.emplace(e, a, value).second) {
          ++rep->duplicate_attributes;
          return;
        }
        merged.AddAttributeTriple(e, a, value);
      });
  merged.EndBulkLoad();
  return merged;
}

}  // namespace sdea::kg
