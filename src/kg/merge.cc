#include "kg/merge.h"

#include <set>
#include <tuple>

#include "base/check.h"

namespace sdea::kg {

Result<KnowledgeGraph> MergeKnowledgeBases(const KnowledgeGraph& kg1,
                                           const KnowledgeGraph& kg2,
                                           const std::vector<int64_t>& match,
                                           const MergeOptions& options,
                                           MergeReport* report) {
  if (static_cast<int64_t>(match.size()) != kg1.num_entities()) {
    return Status::InvalidArgument(
        "match vector size must equal kg1.num_entities()");
  }
  MergeReport local;
  MergeReport* rep = (report != nullptr) ? report : &local;
  *rep = MergeReport{};

  KnowledgeGraph merged = kg1.Clone();

  // Invert the match: kg2 entity -> merged (kg1) entity.
  rep->kg2_to_merged.assign(static_cast<size_t>(kg2.num_entities()),
                            kInvalidEntity);
  std::set<int64_t> used_targets;
  for (EntityId e1 = 0; e1 < kg1.num_entities(); ++e1) {
    const int64_t e2 = match[static_cast<size_t>(e1)];
    if (e2 < 0) continue;
    if (e2 >= kg2.num_entities()) {
      return Status::OutOfRange("match target out of range");
    }
    if (!used_targets.insert(e2).second) {
      return Status::InvalidArgument(
          "match maps two KG1 entities to the same KG2 entity");
    }
    rep->kg2_to_merged[static_cast<size_t>(e2)] = e1;
    ++rep->fused_entities;
  }

  // Carry over unmatched KG2 entities under collision-safe names.
  for (EntityId e2 = 0; e2 < kg2.num_entities(); ++e2) {
    if (rep->kg2_to_merged[static_cast<size_t>(e2)] != kInvalidEntity) {
      continue;
    }
    std::string name = kg2.entity_name(e2);
    if (merged.FindEntity(name).ok()) {
      name = options.kg2_entity_prefix + name;
      // Extremely unlikely second collision: keep prefixing.
      while (merged.FindEntity(name).ok()) {
        name = options.kg2_entity_prefix + name;
      }
    }
    rep->kg2_to_merged[static_cast<size_t>(e2)] = merged.AddEntity(name);
    ++rep->carried_entities;
  }

  // Existing KG1 triples, for deduplication.
  std::set<std::tuple<EntityId, RelationId, EntityId>> rel_seen;
  std::set<std::tuple<EntityId, AttributeId, std::string>> attr_seen;
  if (options.deduplicate_relational) {
    for (const RelationalTriple& t : merged.relational_triples()) {
      rel_seen.emplace(t.head, t.relation, t.tail);
    }
  }
  if (options.deduplicate_attributes) {
    for (const AttributeTriple& t : merged.attribute_triples()) {
      attr_seen.emplace(t.entity, t.attribute, t.value);
    }
  }

  // KG2 schema: reuse a KG1 relation/attribute when the NAME matches (a
  // shared schema vocabulary merges naturally); prefix otherwise.
  auto map_relation = [&](RelationId r2) {
    const std::string& name = kg2.relation_name(r2);
    auto existing = merged.FindRelation(name);
    if (existing.ok()) return *existing;
    return merged.AddRelation(options.kg2_schema_prefix + name);
  };
  auto map_attribute = [&](AttributeId a2) {
    const std::string& name = kg2.attribute_name(a2);
    auto existing = merged.FindAttribute(name);
    if (existing.ok()) return *existing;
    return merged.AddAttribute(options.kg2_schema_prefix + name);
  };

  for (const RelationalTriple& t : kg2.relational_triples()) {
    const EntityId h = rep->kg2_to_merged[static_cast<size_t>(t.head)];
    const EntityId tail = rep->kg2_to_merged[static_cast<size_t>(t.tail)];
    const RelationId r = map_relation(t.relation);
    if (options.deduplicate_relational &&
        !rel_seen.emplace(h, r, tail).second) {
      ++rep->duplicate_relational;
      continue;
    }
    merged.AddRelationalTriple(h, r, tail);
  }
  for (const AttributeTriple& t : kg2.attribute_triples()) {
    const EntityId e = rep->kg2_to_merged[static_cast<size_t>(t.entity)];
    const AttributeId a = map_attribute(t.attribute);
    if (options.deduplicate_attributes &&
        !attr_seen.emplace(e, a, t.value).second) {
      ++rep->duplicate_attributes;
      continue;
    }
    merged.AddAttributeTriple(e, a, t.value);
  }
  return merged;
}

}  // namespace sdea::kg
