#include "kg/columnar.h"

#include <numeric>
#include <string_view>
#include <unordered_map>
#include <utility>

namespace sdea::kg {
namespace {

/// [lo, hi) over a permutation index `perm` (local rows sorted by
/// (column[row], row)) such that column[perm[k]] == value.
template <typename Col, typename Val>
std::pair<const int32_t*, const int32_t*> EqualRange(
    const std::vector<int32_t>& perm, const Col& column, Val value) {
  const int32_t* lo = std::lower_bound(
      perm.data(), perm.data() + perm.size(), value,
      [&](int32_t idx, Val v) { return column[static_cast<size_t>(idx)] < v; });
  const int32_t* hi = std::upper_bound(
      lo, perm.data() + perm.size(), value,
      [&](Val v, int32_t idx) { return v < column[static_cast<size_t>(idx)]; });
  return {lo, hi};
}

int64_t StringHeapBytes(const std::string& s) {
  // Rough model: object header plus heap allocation past the SSO buffer.
  return static_cast<int64_t>(sizeof(std::string)) +
         (s.size() > sizeof(std::string)
              ? static_cast<int64_t>(s.capacity())
              : 0);
}

}  // namespace

// ---- KgSnapshot -------------------------------------------------------------

std::vector<NeighborEdge> KgSnapshot::NeighborsOf(EntityId e) const {
  std::vector<NeighborEdge> out;
  if (e < 0 || e >= n_entities_ || rel_chunks_ == nullptr) return out;
  for (const auto& chunk : *rel_chunks_) {
    const int64_t visible = VisibleRows(*chunk, rel_rows_);
    if (visible <= 0) break;
    if (visible == chunk->capacity) {
      // Sealed: merge the by_head and by_tail ranges by local row so edges
      // come out in insertion order, the head's outgoing edge first when a
      // self-loop puts both on the same row (matching the legacy adjacency
      // push order in AddRelationalTriple).
      auto [hl, hh] = EqualRange(chunk->by_head, chunk->head, e);
      auto [tl, th] = EqualRange(chunk->by_tail, chunk->tail, e);
      while (hl != hh || tl != th) {
        const int32_t hr = hl != hh ? *hl : INT32_MAX;
        const int32_t tr = tl != th ? *tl : INT32_MAX;
        if (hr <= tr) {
          out.push_back(NeighborEdge{
              chunk->relation[static_cast<size_t>(hr)],
              chunk->tail[static_cast<size_t>(hr)], /*outgoing=*/true});
          ++hl;
        } else {
          out.push_back(NeighborEdge{
              chunk->relation[static_cast<size_t>(tr)],
              chunk->head[static_cast<size_t>(tr)], /*outgoing=*/false});
          ++tl;
        }
      }
    } else {
      for (int64_t i = 0; i < visible; ++i) {
        const auto idx = static_cast<size_t>(i);
        if (chunk->head[idx] == e) {
          out.push_back(NeighborEdge{chunk->relation[idx], chunk->tail[idx],
                                     /*outgoing=*/true});
        }
        if (chunk->tail[idx] == e) {
          out.push_back(NeighborEdge{chunk->relation[idx], chunk->head[idx],
                                     /*outgoing=*/false});
        }
      }
    }
  }
  return out;
}

int64_t KgSnapshot::DegreeOf(EntityId e) const {
  if (e < 0 || e >= n_entities_ || rel_chunks_ == nullptr) return 0;
  int64_t degree = 0;
  for (const auto& chunk : *rel_chunks_) {
    const int64_t visible = VisibleRows(*chunk, rel_rows_);
    if (visible <= 0) break;
    if (visible == chunk->capacity) {
      auto [hl, hh] = EqualRange(chunk->by_head, chunk->head, e);
      auto [tl, th] = EqualRange(chunk->by_tail, chunk->tail, e);
      degree += (hh - hl) + (th - tl);
    } else {
      for (int64_t i = 0; i < visible; ++i) {
        const auto idx = static_cast<size_t>(i);
        if (chunk->head[idx] == e) ++degree;
        if (chunk->tail[idx] == e) ++degree;
      }
    }
  }
  return degree;
}

std::vector<int64_t> KgSnapshot::AttributeRowsOf(EntityId e) const {
  std::vector<int64_t> out;
  if (e < 0 || e >= n_entities_ || attr_chunks_ == nullptr) return out;
  for (const auto& chunk : *attr_chunks_) {
    const int64_t visible = VisibleRows(*chunk, attr_rows_);
    if (visible <= 0) break;
    if (visible == chunk->capacity) {
      auto [lo, hi] = EqualRange(chunk->by_entity, chunk->entity, e);
      for (const int32_t* p = lo; p != hi; ++p) {
        out.push_back(chunk->base_row + *p);
      }
    } else {
      for (int64_t i = 0; i < visible; ++i) {
        if (chunk->entity[static_cast<size_t>(i)] == e) {
          out.push_back(chunk->base_row + i);
        }
      }
    }
  }
  return out;
}

Result<KgDiff> KgSnapshot::DiffSince(uint64_t base_epoch) const {
  if (base_epoch > epoch_) {
    return Status::InvalidArgument(
        "DiffSince: base epoch " + std::to_string(base_epoch) +
        " is newer than snapshot epoch " + std::to_string(epoch_));
  }
  KgDiff d;
  d.base_epoch = base_epoch;
  d.epoch = epoch_;
  // The baseline watermarks: epoch 0 is the empty store; otherwise read the
  // journal. The snapshot's own watermarks are the mark of `epoch_`, so the
  // newer side needs no lookup.
  CommitMark base;
  if (base_epoch > 0) base = MarkAt(base_epoch);
  d.entity_begin = base.entities;
  d.entity_end = n_entities_;
  d.relation_begin = base.relations;
  d.relation_end = n_relations_;
  d.attribute_begin = base.attributes;
  d.attribute_end = n_attributes_;
  d.rel_row_begin = base.rel_rows;
  d.rel_row_end = rel_rows_;
  d.attr_row_begin = base.attr_rows;
  d.attr_row_end = attr_rows_;
  return d;
}

std::vector<EntityId> KgSnapshot::TouchedEntities(const KgDiff& diff) const {
  std::vector<EntityId> out;
  out.reserve(static_cast<size_t>(diff.num_new_entities() +
                                  2 * diff.num_new_rel_rows() +
                                  diff.num_new_attr_rows()));
  ForEachRelationalRange(diff.rel_row_begin, diff.rel_row_end,
                         [&](int64_t, EntityId h, RelationId, EntityId t) {
                           out.push_back(h);
                           out.push_back(t);
                         });
  ForEachAttributeRange(
      diff.attr_row_begin, diff.attr_row_end,
      [&](int64_t, EntityId e, AttributeId, const std::string&) {
        out.push_back(e);
      });
  for (int64_t e = diff.entity_begin; e < diff.entity_end; ++e) {
    out.push_back(static_cast<EntityId>(e));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---- ColumnarKgStore --------------------------------------------------------

ColumnarKgStore::ColumnarKgStore(const ColumnarOptions& options)
    : opts_(options) {
  SDEA_CHECK(opts_.rel_chunk_rows > 0);
  SDEA_CHECK(opts_.attr_chunk_rows > 0);
  SDEA_CHECK(opts_.name_chunk_rows > 0);
  rel_chunks_ = std::make_shared<const RelChunkList>();
  attr_chunks_ = std::make_shared<const AttrChunkList>();
  entity_names_ = std::make_shared<const NameChunkList>();
  relation_names_ = std::make_shared<const NameChunkList>();
  attribute_names_ = std::make_shared<const NameChunkList>();
  marks_ = std::make_shared<const MarkChunkList>();
  head_.marks_ = marks_;
  head_.rel_cap_ = opts_.rel_chunk_rows;
  head_.attr_cap_ = opts_.attr_chunk_rows;
  head_.name_cap_ = opts_.name_chunk_rows;
}

EntityId ColumnarKgStore::AppendName(
    std::shared_ptr<const NameChunkList>* list, int64_t* count,
    std::string name) {
  const int64_t id = *count;
  const int64_t cap = opts_.name_chunk_rows;
  if (id % cap == 0) {
    auto chunk = std::make_shared<NameChunk>();
    chunk->base = id;
    chunk->slots.resize(static_cast<size_t>(cap));
    auto grown = std::make_shared<NameChunkList>(**list);
    grown->push_back(std::move(chunk));
    *list = std::move(grown);
  }
  (*list)->back()->slots[static_cast<size_t>(id % cap)] = std::move(name);
  ++*count;
  return static_cast<EntityId>(id);
}

EntityId ColumnarKgStore::AppendEntityName(std::string name) {
  return AppendName(&entity_names_, &appended_entities_, std::move(name));
}

RelationId ColumnarKgStore::AppendRelationName(std::string name) {
  return AppendName(&relation_names_, &appended_relations_, std::move(name));
}

AttributeId ColumnarKgStore::AppendAttributeName(std::string name) {
  return AppendName(&attribute_names_, &appended_attributes_,
                    std::move(name));
}

void ColumnarKgStore::AppendRelational(EntityId head, RelationId relation,
                                       EntityId tail) {
  SDEA_CHECK(head >= 0 && head < appended_entities_);
  SDEA_CHECK(tail >= 0 && tail < appended_entities_);
  SDEA_CHECK(relation >= 0 && relation < appended_relations_);
  const int64_t cap = opts_.rel_chunk_rows;
  const int64_t row = appended_rel_rows_;
  if (row % cap == 0) {
    auto chunk = std::make_shared<RelationalChunk>();
    chunk->base_row = row;
    chunk->capacity = cap;
    chunk->head.resize(static_cast<size_t>(cap));
    chunk->relation.resize(static_cast<size_t>(cap));
    chunk->tail.resize(static_cast<size_t>(cap));
    auto grown = std::make_shared<RelChunkList>(*rel_chunks_);
    grown->push_back(std::move(chunk));
    rel_chunks_ = std::move(grown);
  }
  RelationalChunk* chunk = rel_chunks_->back().get();
  const auto i = static_cast<size_t>(row - chunk->base_row);
  chunk->head[i] = head;
  chunk->relation[i] = relation;
  chunk->tail[i] = tail;
  ++appended_rel_rows_;
  // Seal on fill, before any commit can make the last row visible: readers
  // that observe a fully covered chunk may then use its indexes lock-free.
  if (static_cast<int64_t>(i) + 1 == cap) SealRelChunk(chunk);
}

void ColumnarKgStore::AppendAttribute(EntityId entity, AttributeId attribute,
                                      std::string value) {
  SDEA_CHECK(entity >= 0 && entity < appended_entities_);
  SDEA_CHECK(attribute >= 0 && attribute < appended_attributes_);
  const int64_t cap = opts_.attr_chunk_rows;
  const int64_t row = appended_attr_rows_;
  if (row % cap == 0) {
    auto chunk = std::make_shared<AttributeChunk>();
    chunk->base_row = row;
    chunk->capacity = cap;
    chunk->entity.resize(static_cast<size_t>(cap));
    chunk->attribute.resize(static_cast<size_t>(cap));
    chunk->values.resize(static_cast<size_t>(cap));
    auto grown = std::make_shared<AttrChunkList>(*attr_chunks_);
    grown->push_back(std::move(chunk));
    attr_chunks_ = std::move(grown);
  }
  AttributeChunk* chunk = attr_chunks_->back().get();
  const auto i = static_cast<size_t>(row - chunk->base_row);
  chunk->entity[i] = entity;
  chunk->attribute[i] = attribute;
  chunk->values[i] = std::move(value);
  ++appended_attr_rows_;
  if (static_cast<int64_t>(i) + 1 == cap) {
    // Attribute sealing re-encodes values, so it builds a fresh immutable
    // chunk and swaps it into a new list; the plain open object stays
    // alive for commits that pinned it partially filled.
    auto sealed = SealAttrChunk(*chunk);
    auto swapped = std::make_shared<AttrChunkList>(*attr_chunks_);
    swapped->back() = std::move(sealed);
    attr_chunks_ = std::move(swapped);
  }
}

void ColumnarKgStore::SealRelChunk(RelationalChunk* chunk) {
  const auto n = static_cast<size_t>(chunk->capacity);
  chunk->by_head.resize(n);
  std::iota(chunk->by_head.begin(), chunk->by_head.end(), 0);
  std::sort(chunk->by_head.begin(), chunk->by_head.end(),
            [&](int32_t a, int32_t b) {
              const EntityId ha = chunk->head[static_cast<size_t>(a)];
              const EntityId hb = chunk->head[static_cast<size_t>(b)];
              if (ha != hb) return ha < hb;
              return a < b;
            });
  chunk->by_tail.resize(n);
  std::iota(chunk->by_tail.begin(), chunk->by_tail.end(), 0);
  std::sort(chunk->by_tail.begin(), chunk->by_tail.end(),
            [&](int32_t a, int32_t b) {
              const EntityId ta = chunk->tail[static_cast<size_t>(a)];
              const EntityId tb = chunk->tail[static_cast<size_t>(b)];
              if (ta != tb) return ta < tb;
              return a < b;
            });
}

std::shared_ptr<AttributeChunk> ColumnarKgStore::SealAttrChunk(
    const AttributeChunk& open) {
  auto sealed = std::make_shared<AttributeChunk>();
  sealed->base_row = open.base_row;
  sealed->capacity = open.capacity;
  sealed->entity = open.entity;
  sealed->attribute = open.attribute;

  const auto n = static_cast<size_t>(open.capacity);
  std::vector<uint32_t> codes(n);
  std::vector<const std::string*> distinct;
  std::unordered_map<std::string_view, uint32_t> first_code;
  first_code.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto [it, inserted] = first_code.try_emplace(
        std::string_view(open.values[i]),
        static_cast<uint32_t>(distinct.size()));
    if (inserted) distinct.push_back(&open.values[i]);
    codes[i] = it->second;
  }
  if (static_cast<int64_t>(distinct.size()) * 100 <=
      open.capacity * opts_.dict_max_distinct_pct) {
    sealed->dict.reserve(distinct.size());
    for (const std::string* v : distinct) sealed->dict.push_back(*v);
    sealed->codes = std::move(codes);
  } else {
    sealed->values = open.values;
  }

  sealed->by_entity.resize(n);
  std::iota(sealed->by_entity.begin(), sealed->by_entity.end(), 0);
  std::sort(sealed->by_entity.begin(), sealed->by_entity.end(),
            [&](int32_t a, int32_t b) {
              const EntityId ea = sealed->entity[static_cast<size_t>(a)];
              const EntityId eb = sealed->entity[static_cast<size_t>(b)];
              if (ea != eb) return ea < eb;
              return a < b;
            });
  return sealed;
}

void ColumnarKgStore::AppendMarkLocked(uint64_t epoch) {
  // Journal slot for `epoch` (index epoch-1). Growth is copy-on-write so
  // pinned snapshots keep their exact chunk set; filling a preallocated
  // slot below the about-to-publish epoch is the NameChunk protocol.
  const auto idx = static_cast<int64_t>(epoch - 1);
  if (idx % kMarkChunkRows == 0) {
    auto chunk = std::make_shared<MarkChunk>();
    chunk->slots.resize(static_cast<size_t>(kMarkChunkRows));
    auto grown = std::make_shared<MarkChunkList>(*marks_);
    grown->push_back(std::move(chunk));
    marks_ = std::move(grown);
  }
  CommitMark& mark =
      marks_->back()->slots[static_cast<size_t>(idx % kMarkChunkRows)];
  mark.entities = appended_entities_;
  mark.relations = appended_relations_;
  mark.attributes = appended_attributes_;
  mark.rel_rows = appended_rel_rows_;
  mark.attr_rows = appended_attr_rows_;
}

uint64_t ColumnarKgStore::Commit() {
  std::lock_guard<std::mutex> lock(commit_mu_);
  head_.epoch_ = next_epoch_++;
  AppendMarkLocked(head_.epoch_);
  head_.marks_ = marks_;
  head_.n_entities_ = appended_entities_;
  head_.n_relations_ = appended_relations_;
  head_.n_attributes_ = appended_attributes_;
  head_.rel_rows_ = appended_rel_rows_;
  head_.attr_rows_ = appended_attr_rows_;
  head_.rel_chunks_ = rel_chunks_;
  head_.attr_chunks_ = attr_chunks_;
  head_.entity_names_ = entity_names_;
  head_.relation_names_ = relation_names_;
  head_.attribute_names_ = attribute_names_;
  return head_.epoch_;
}

bool ColumnarKgStore::HasUncommitted() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return head_.rel_rows_ != appended_rel_rows_ ||
         head_.attr_rows_ != appended_attr_rows_ ||
         head_.n_entities_ != appended_entities_ ||
         head_.n_relations_ != appended_relations_ ||
         head_.n_attributes_ != appended_attributes_;
}

KgSnapshot ColumnarKgStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return head_;
}

const std::string& ColumnarKgStore::LatestEntityName(EntityId id) const {
  SDEA_CHECK(id >= 0 && id < appended_entities_);
  return KgSnapshot::NameAt(*entity_names_, opts_.name_chunk_rows, id);
}

const std::string& ColumnarKgStore::LatestRelationName(RelationId id) const {
  SDEA_CHECK(id >= 0 && id < appended_relations_);
  return KgSnapshot::NameAt(*relation_names_, opts_.name_chunk_rows, id);
}

const std::string& ColumnarKgStore::LatestAttributeName(
    AttributeId id) const {
  SDEA_CHECK(id >= 0 && id < appended_attributes_);
  return KgSnapshot::NameAt(*attribute_names_, opts_.name_chunk_rows, id);
}

int64_t ColumnarKgStore::ApproxHeapBytes() const {
  int64_t bytes = 0;
  for (const auto& chunk : *rel_chunks_) {
    bytes += chunk->capacity * 12;
    bytes += static_cast<int64_t>(chunk->by_head.size() +
                                  chunk->by_tail.size()) *
             4;
  }
  for (const auto& chunk : *attr_chunks_) {
    bytes += chunk->capacity * 8;
    bytes += static_cast<int64_t>(chunk->by_entity.size() +
                                  chunk->codes.size()) *
             4;
    for (const std::string& v : chunk->values) bytes += StringHeapBytes(v);
    for (const std::string& v : chunk->dict) bytes += StringHeapBytes(v);
  }
  for (const auto* list :
       {&entity_names_, &relation_names_, &attribute_names_}) {
    for (const auto& chunk : **list) {
      for (const std::string& s : chunk->slots) bytes += StringHeapBytes(s);
    }
  }
  bytes += static_cast<int64_t>(marks_->size()) * kMarkChunkRows *
           static_cast<int64_t>(sizeof(CommitMark));
  return bytes;
}

}  // namespace sdea::kg
