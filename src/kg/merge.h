#ifndef SDEA_KG_MERGE_H_
#define SDEA_KG_MERGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "kg/knowledge_graph.h"

namespace sdea::kg {

/// Options controlling knowledge-base fusion.
struct MergeOptions {
  /// Prefix applied to KG2-only relation/attribute names so provenance
  /// stays visible in the merged schema ("" disables).
  std::string kg2_schema_prefix = "kg2:";
  /// Prefix applied to unmatched KG2 entity names on collision with a KG1
  /// name (unmatched entities that share a name with a KG1 entity are NOT
  /// silently fused — names are identifiers, matching is the aligner's
  /// job).
  std::string kg2_entity_prefix = "kg2:";
  /// Drop duplicated relational triples (same head/relation/tail after
  /// remapping).
  bool deduplicate_relational = true;
  /// Drop duplicated attribute triples (same entity/attribute/value).
  bool deduplicate_attributes = true;
};

/// Per-merge bookkeeping returned to the caller.
struct MergeReport {
  int64_t fused_entities = 0;       ///< KG2 entities collapsed onto KG1.
  int64_t carried_entities = 0;     ///< KG2-only entities added.
  int64_t duplicate_relational = 0; ///< Relational triples dropped as dups.
  int64_t duplicate_attributes = 0; ///< Attribute triples dropped as dups.
  /// merged-entity id for each KG2 entity (parallel to KG2 ids).
  std::vector<EntityId> kg2_to_merged;
};

/// Fuses `kg2` into a copy of `kg1` under `match`: match[e1] = the KG2
/// entity equivalent to KG1 entity e1, or -1. This is the knowledge-base
/// integration step the paper's introduction motivates — entity alignment
/// exists so that this merge does not create duplicates.
///
/// Matched entity pairs become one node carrying the union of both KGs'
/// triples; unmatched entities are carried over. Returns the merged KB;
/// `report` (optional) receives the bookkeeping.
Result<KnowledgeGraph> MergeKnowledgeBases(const KnowledgeGraph& kg1,
                                           const KnowledgeGraph& kg2,
                                           const std::vector<int64_t>& match,
                                           const MergeOptions& options = {},
                                           MergeReport* report = nullptr);

}  // namespace sdea::kg

#endif  // SDEA_KG_MERGE_H_
