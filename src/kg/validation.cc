#include "kg/validation.h"

#include <set>
#include <tuple>

#include "base/strings.h"

namespace sdea::kg {
namespace {

const char* KindName(ValidationIssue::Kind kind) {
  switch (kind) {
    case ValidationIssue::Kind::kSelfLoop:
      return "self-loop";
    case ValidationIssue::Kind::kDuplicateTriple:
      return "duplicate-triple";
    case ValidationIssue::Kind::kDuplicateAttribute:
      return "duplicate-attribute";
    case ValidationIssue::Kind::kEmptyValue:
      return "empty-value";
    case ValidationIssue::Kind::kIsolatedEntity:
      return "isolated-entity";
    case ValidationIssue::Kind::kOversizeValue:
      return "oversize-value";
  }
  return "?";
}

}  // namespace

ValidationReport ValidateKnowledgeGraph(const KnowledgeGraph& graph,
                                        const ValidationOptions& options) {
  const KgSnapshot snap = graph.Snapshot();
  ValidationReport report;
  auto full = [&]() {
    return options.max_issues > 0 &&
           static_cast<int64_t>(report.issues.size()) >= options.max_issues;
  };
  auto add = [&](ValidationIssue issue) {
    if (!full()) report.issues.push_back(std::move(issue));
  };

  // One columnar pass per triple section; the isolation check afterwards
  // reuses the degree/attribute marks instead of per-entity adjacency walks.
  std::vector<bool> has_edge(static_cast<size_t>(snap.num_entities()), false);
  std::vector<bool> has_attr(static_cast<size_t>(snap.num_entities()), false);

  std::set<std::tuple<EntityId, RelationId, EntityId>> rel_seen;
  snap.ForEachRelational(
      [&](int64_t row, EntityId h, RelationId r, EntityId t) {
        has_edge[static_cast<size_t>(h)] = true;
        has_edge[static_cast<size_t>(t)] = true;
        if (h == t) {
          ++report.self_loops;
          add({ValidationIssue::Kind::kSelfLoop, h, row,
               "relational triple with head == tail"});
        }
        if (!rel_seen.emplace(h, r, t).second) {
          ++report.duplicate_triples;
          add({ValidationIssue::Kind::kDuplicateTriple, h, row,
               "repeated relational triple"});
        }
      });

  std::set<std::tuple<EntityId, AttributeId, std::string>> attr_seen;
  snap.ForEachAttribute(
      [&](int64_t row, EntityId e, AttributeId a, const std::string& value) {
        has_attr[static_cast<size_t>(e)] = true;
        if (Trim(value).empty()) {
          ++report.empty_values;
          add({ValidationIssue::Kind::kEmptyValue, e, row,
               "attribute value is empty"});
        }
        if (static_cast<int64_t>(value.size()) > options.max_value_bytes) {
          ++report.oversize_values;
          add({ValidationIssue::Kind::kOversizeValue, e, row,
               StrFormat("value is %zu bytes", value.size())});
        }
        if (!attr_seen.emplace(e, a, value).second) {
          ++report.duplicate_attributes;
          add({ValidationIssue::Kind::kDuplicateAttribute, e, row,
               "repeated attribute triple"});
        }
      });

  for (EntityId e = 0; e < snap.num_entities(); ++e) {
    if (!has_edge[static_cast<size_t>(e)] &&
        !has_attr[static_cast<size_t>(e)]) {
      ++report.isolated_entities;
      add({ValidationIssue::Kind::kIsolatedEntity, e, -1,
           "entity has no edges and no attributes: " + snap.entity_name(e)});
    }
  }
  return report;
}

std::string FormatValidationReport(const ValidationReport& report,
                                   int64_t max_lines) {
  if (report.clean()) return "OK: no issues found\n";
  std::string out = StrFormat(
      "%zu issues: %lld self-loops, %lld dup triples, %lld dup attrs, "
      "%lld empty values, %lld isolated entities, %lld oversize values\n",
      report.issues.size(), static_cast<long long>(report.self_loops),
      static_cast<long long>(report.duplicate_triples),
      static_cast<long long>(report.duplicate_attributes),
      static_cast<long long>(report.empty_values),
      static_cast<long long>(report.isolated_entities),
      static_cast<long long>(report.oversize_values));
  int64_t shown = 0;
  for (const ValidationIssue& issue : report.issues) {
    if (shown++ >= max_lines) {
      out += "  ...\n";
      break;
    }
    out += StrFormat("  [%s] entity=%d triple=%lld %s\n",
                     KindName(issue.kind), issue.entity,
                     static_cast<long long>(issue.triple_index),
                     issue.detail.c_str());
  }
  return out;
}

}  // namespace sdea::kg
