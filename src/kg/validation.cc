#include "kg/validation.h"

#include <set>
#include <tuple>

#include "base/strings.h"

namespace sdea::kg {
namespace {

const char* KindName(ValidationIssue::Kind kind) {
  switch (kind) {
    case ValidationIssue::Kind::kSelfLoop:
      return "self-loop";
    case ValidationIssue::Kind::kDuplicateTriple:
      return "duplicate-triple";
    case ValidationIssue::Kind::kDuplicateAttribute:
      return "duplicate-attribute";
    case ValidationIssue::Kind::kEmptyValue:
      return "empty-value";
    case ValidationIssue::Kind::kIsolatedEntity:
      return "isolated-entity";
    case ValidationIssue::Kind::kOversizeValue:
      return "oversize-value";
  }
  return "?";
}

}  // namespace

ValidationReport ValidateKnowledgeGraph(const KnowledgeGraph& graph,
                                        const ValidationOptions& options) {
  ValidationReport report;
  auto full = [&]() {
    return options.max_issues > 0 &&
           static_cast<int64_t>(report.issues.size()) >= options.max_issues;
  };
  auto add = [&](ValidationIssue issue) {
    if (!full()) report.issues.push_back(std::move(issue));
  };

  std::set<std::tuple<EntityId, RelationId, EntityId>> rel_seen;
  const auto& rels = graph.relational_triples();
  for (size_t i = 0; i < rels.size(); ++i) {
    const RelationalTriple& t = rels[i];
    if (t.head == t.tail) {
      ++report.self_loops;
      add({ValidationIssue::Kind::kSelfLoop, t.head,
           static_cast<int64_t>(i),
           "relational triple with head == tail"});
    }
    if (!rel_seen.emplace(t.head, t.relation, t.tail).second) {
      ++report.duplicate_triples;
      add({ValidationIssue::Kind::kDuplicateTriple, t.head,
           static_cast<int64_t>(i), "repeated relational triple"});
    }
  }

  std::set<std::tuple<EntityId, AttributeId, std::string>> attr_seen;
  const auto& attrs = graph.attribute_triples();
  for (size_t i = 0; i < attrs.size(); ++i) {
    const AttributeTriple& t = attrs[i];
    if (Trim(t.value).empty()) {
      ++report.empty_values;
      add({ValidationIssue::Kind::kEmptyValue, t.entity,
           static_cast<int64_t>(i), "attribute value is empty"});
    }
    if (static_cast<int64_t>(t.value.size()) > options.max_value_bytes) {
      ++report.oversize_values;
      add({ValidationIssue::Kind::kOversizeValue, t.entity,
           static_cast<int64_t>(i),
           StrFormat("value is %zu bytes", t.value.size())});
    }
    if (!attr_seen.emplace(t.entity, t.attribute, t.value).second) {
      ++report.duplicate_attributes;
      add({ValidationIssue::Kind::kDuplicateAttribute, t.entity,
           static_cast<int64_t>(i), "repeated attribute triple"});
    }
  }

  for (EntityId e = 0; e < graph.num_entities(); ++e) {
    if (graph.degree(e) == 0 && graph.attribute_triples_of(e).empty()) {
      ++report.isolated_entities;
      add({ValidationIssue::Kind::kIsolatedEntity, e, -1,
           "entity has no edges and no attributes: " +
               graph.entity_name(e)});
    }
  }
  return report;
}

std::string FormatValidationReport(const ValidationReport& report,
                                   int64_t max_lines) {
  if (report.clean()) return "OK: no issues found\n";
  std::string out = StrFormat(
      "%zu issues: %lld self-loops, %lld dup triples, %lld dup attrs, "
      "%lld empty values, %lld isolated entities, %lld oversize values\n",
      report.issues.size(), static_cast<long long>(report.self_loops),
      static_cast<long long>(report.duplicate_triples),
      static_cast<long long>(report.duplicate_attributes),
      static_cast<long long>(report.empty_values),
      static_cast<long long>(report.isolated_entities),
      static_cast<long long>(report.oversize_values));
  int64_t shown = 0;
  for (const ValidationIssue& issue : report.issues) {
    if (shown++ >= max_lines) {
      out += "  ...\n";
      break;
    }
    out += StrFormat("  [%s] entity=%d triple=%lld %s\n",
                     KindName(issue.kind), issue.entity,
                     static_cast<long long>(issue.triple_index),
                     issue.detail.c_str());
  }
  return out;
}

}  // namespace sdea::kg
