#include "kg/subgraph.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace sdea::kg {

KnowledgeGraph CondenseByPopularity(const KnowledgeGraph& graph,
                                    const CondenseOptions& options,
                                    std::vector<EntityId>* old_to_new) {
  const int64_t n = graph.num_entities();
  // Rank entities by degree (desc); entities in the top
  // popularity_fraction are "popular".
  std::vector<EntityId> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](EntityId a, EntityId b) {
    const int64_t da = graph.degree(a), db = graph.degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  const int64_t popular_count = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(n) *
                              options.popularity_fraction));
  std::vector<bool> popular(static_cast<size_t>(n), false);
  for (int64_t i = 0; i < popular_count; ++i) {
    popular[static_cast<size_t>(order[static_cast<size_t>(i)])] = true;
  }

  // Select triples between popular endpoints; backfill by global degree
  // order if below min_triples.
  std::vector<bool> keep_triple(graph.relational_triples().size(), false);
  int64_t kept = 0;
  for (size_t i = 0; i < graph.relational_triples().size(); ++i) {
    const RelationalTriple& t = graph.relational_triples()[i];
    if (popular[static_cast<size_t>(t.head)] &&
        popular[static_cast<size_t>(t.tail)]) {
      keep_triple[i] = true;
      ++kept;
    }
  }
  for (size_t i = 0;
       kept < options.min_triples && i < keep_triple.size(); ++i) {
    if (!keep_triple[i]) {
      keep_triple[i] = true;
      ++kept;
    }
  }

  // Surviving entities.
  std::vector<bool> survives(static_cast<size_t>(n),
                             !options.drop_isolated);
  for (size_t i = 0; i < keep_triple.size(); ++i) {
    if (!keep_triple[i]) continue;
    const RelationalTriple& t = graph.relational_triples()[i];
    survives[static_cast<size_t>(t.head)] = true;
    survives[static_cast<size_t>(t.tail)] = true;
  }

  KnowledgeGraph out;
  std::vector<EntityId> remap(static_cast<size_t>(n), kInvalidEntity);
  for (EntityId e = 0; e < n; ++e) {
    if (survives[static_cast<size_t>(e)]) {
      remap[static_cast<size_t>(e)] = out.AddEntity(graph.entity_name(e));
    }
  }
  for (size_t i = 0; i < keep_triple.size(); ++i) {
    if (!keep_triple[i]) continue;
    const RelationalTriple& t = graph.relational_triples()[i];
    const RelationId r = out.AddRelation(graph.relation_name(t.relation));
    out.AddRelationalTriple(remap[static_cast<size_t>(t.head)], r,
                            remap[static_cast<size_t>(t.tail)]);
  }
  for (const AttributeTriple& t : graph.attribute_triples()) {
    const EntityId e = remap[static_cast<size_t>(t.entity)];
    if (e == kInvalidEntity) continue;
    const AttributeId a = out.AddAttribute(graph.attribute_name(t.attribute));
    out.AddAttributeTriple(e, a, t.value);
  }
  if (old_to_new != nullptr) *old_to_new = std::move(remap);
  return out;
}

std::vector<int64_t> DegreeHistogram(const KnowledgeGraph& graph,
                                     int64_t max_degree) {
  SDEA_CHECK_GE(max_degree, 1);
  std::vector<int64_t> hist(static_cast<size_t>(max_degree) + 1, 0);
  for (EntityId e = 0; e < graph.num_entities(); ++e) {
    const int64_t d = std::min(graph.degree(e), max_degree);
    ++hist[static_cast<size_t>(d)];
  }
  return hist;
}

}  // namespace sdea::kg
