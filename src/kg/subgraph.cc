#include "kg/subgraph.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace sdea::kg {
namespace {

/// One columnar pass over the snapshot's relational rows accumulating every
/// entity's degree — replaces a per-entity adjacency walk.
std::vector<int64_t> ComputeDegrees(const KgSnapshot& snap) {
  std::vector<int64_t> degrees(static_cast<size_t>(snap.num_entities()), 0);
  snap.ForEachRelational(
      [&](int64_t /*row*/, EntityId h, RelationId /*r*/, EntityId t) {
        ++degrees[static_cast<size_t>(h)];
        ++degrees[static_cast<size_t>(t)];
      });
  return degrees;
}

}  // namespace

KnowledgeGraph CondenseByPopularity(const KnowledgeGraph& graph,
                                    const CondenseOptions& options,
                                    std::vector<EntityId>* old_to_new) {
  const KgSnapshot snap = graph.Snapshot();
  const int64_t n = snap.num_entities();
  // Rank entities by degree (desc); entities in the top
  // popularity_fraction are "popular".
  const std::vector<int64_t> degrees = ComputeDegrees(snap);
  std::vector<EntityId> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](EntityId a, EntityId b) {
    const int64_t da = degrees[static_cast<size_t>(a)];
    const int64_t db = degrees[static_cast<size_t>(b)];
    if (da != db) return da > db;
    return a < b;
  });
  const int64_t popular_count = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(n) *
                              options.popularity_fraction));
  std::vector<bool> popular(static_cast<size_t>(n), false);
  for (int64_t i = 0; i < popular_count; ++i) {
    popular[static_cast<size_t>(order[static_cast<size_t>(i)])] = true;
  }

  // Select triples between popular endpoints; backfill by global degree
  // order if below min_triples.
  std::vector<bool> keep_triple(
      static_cast<size_t>(snap.num_relational_triples()), false);
  int64_t kept = 0;
  snap.ForEachRelational(
      [&](int64_t row, EntityId h, RelationId /*r*/, EntityId t) {
        if (popular[static_cast<size_t>(h)] &&
            popular[static_cast<size_t>(t)]) {
          keep_triple[static_cast<size_t>(row)] = true;
          ++kept;
        }
      });
  for (size_t i = 0;
       kept < options.min_triples && i < keep_triple.size(); ++i) {
    if (!keep_triple[i]) {
      keep_triple[i] = true;
      ++kept;
    }
  }

  // Surviving entities.
  std::vector<bool> survives(static_cast<size_t>(n),
                             !options.drop_isolated);
  snap.ForEachRelational(
      [&](int64_t row, EntityId h, RelationId /*r*/, EntityId t) {
        if (!keep_triple[static_cast<size_t>(row)]) return;
        survives[static_cast<size_t>(h)] = true;
        survives[static_cast<size_t>(t)] = true;
      });

  KnowledgeGraph out;
  out.BeginBulkLoad();
  std::vector<EntityId> remap(static_cast<size_t>(n), kInvalidEntity);
  for (EntityId e = 0; e < n; ++e) {
    if (survives[static_cast<size_t>(e)]) {
      remap[static_cast<size_t>(e)] = out.AddEntity(snap.entity_name(e));
    }
  }
  snap.ForEachRelational(
      [&](int64_t row, EntityId h, RelationId rel, EntityId t) {
        if (!keep_triple[static_cast<size_t>(row)]) return;
        const RelationId r = out.AddRelation(snap.relation_name(rel));
        out.AddRelationalTriple(remap[static_cast<size_t>(h)], r,
                                remap[static_cast<size_t>(t)]);
      });
  snap.ForEachAttribute(
      [&](int64_t /*row*/, EntityId entity, AttributeId attribute,
          const std::string& value) {
        const EntityId e = remap[static_cast<size_t>(entity)];
        if (e == kInvalidEntity) return;
        const AttributeId a = out.AddAttribute(snap.attribute_name(attribute));
        out.AddAttributeTriple(e, a, value);
      });
  out.EndBulkLoad();
  if (old_to_new != nullptr) *old_to_new = std::move(remap);
  return out;
}

std::vector<int64_t> DegreeHistogram(const KnowledgeGraph& graph,
                                     int64_t max_degree) {
  SDEA_CHECK_GE(max_degree, 1);
  const KgSnapshot snap = graph.Snapshot();
  const std::vector<int64_t> degrees = ComputeDegrees(snap);
  std::vector<int64_t> hist(static_cast<size_t>(max_degree) + 1, 0);
  for (const int64_t degree : degrees) {
    const int64_t d = std::min(degree, max_degree);
    ++hist[static_cast<size_t>(d)];
  }
  return hist;
}

}  // namespace sdea::kg
