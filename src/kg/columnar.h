#ifndef SDEA_KG_COLUMNAR_H_
#define SDEA_KG_COLUMNAR_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/check.h"
#include "kg/types.h"

namespace sdea::kg {

/// Chunk capacities of the columnar store. The defaults suit real graphs;
/// tests shrink them to force many seal boundaries with tiny inputs.
struct ColumnarOptions {
  int64_t rel_chunk_rows = 4096;   ///< Relational triples per chunk.
  int64_t attr_chunk_rows = 2048;  ///< Attribute triples per chunk.
  int64_t name_chunk_rows = 4096;  ///< Interned names per chunk.
  /// A sealed attribute chunk dictionary-encodes its values when the
  /// distinct count is at most this fraction (in percent) of the row
  /// count; otherwise the chunk stays plain-encoded.
  int64_t dict_max_distinct_pct = 75;
};

// ---- Chunks -----------------------------------------------------------------
//
// MVCC visibility protocol (hyrise-style, single writer, many readers):
//
//  * Every chunk's column arrays are allocated at full capacity up front and
//    never reallocate. The writer fills slots in row order; a slot, once
//    covered by a published commit, is never written again.
//  * Readers never read a chunk's mutable bookkeeping. All visibility comes
//    from the pinned commit's watermarks: a chunk exposes
//    min(capacity, watermark - base_row) rows to a given snapshot.
//  * Seal-time fields (the permutation indexes, and a sealed attribute
//    chunk's dictionary) are only consulted when the pinned watermark covers
//    the whole chunk. The writer builds them *before* publishing the commit
//    that makes the chunk's last row visible, so the commit mutex carries
//    the happens-before edge and the scan itself takes no locks.

/// A fixed-capacity chunk of dense-id relational columns. head/relation/tail
/// are dictionary-encoded globally: the ids index the interned name columns.
struct RelationalChunk {
  int64_t base_row = 0;   ///< Global row id of slot 0. Immutable.
  int64_t capacity = 0;   ///< Slot count. Immutable.
  std::vector<EntityId> head;
  std::vector<RelationId> relation;
  std::vector<EntityId> tail;
  /// Seal-time permutation indexes: local rows sorted by (head[i], i) and
  /// (tail[i], i). Empty while the chunk is open; valid for readers whose
  /// watermark covers the full chunk.
  std::vector<int32_t> by_head;
  std::vector<int32_t> by_tail;
};

/// A fixed-capacity chunk of attribute-triple columns. An *open* chunk
/// stores values plainly in `values`; sealing builds a fresh immutable
/// chunk object whose values are dictionary-encoded when the chunk has
/// enough duplication to pay for it (codes into `dict`), or plain-copied
/// otherwise. The open object stays alive for older pins.
struct AttributeChunk {
  int64_t base_row = 0;
  int64_t capacity = 0;
  std::vector<EntityId> entity;
  std::vector<AttributeId> attribute;
  std::vector<std::string> values;  ///< Plain values (open or sealed-plain).
  std::vector<std::string> dict;    ///< Distinct values, first-occurrence order.
  std::vector<uint32_t> codes;      ///< Per-row dict codes; empty when plain.
  /// Seal-time permutation index: local rows sorted by (entity[i], i).
  std::vector<int32_t> by_entity;

  bool dict_encoded() const { return !codes.empty(); }
  const std::string& value_at(int64_t local) const {
    return codes.empty() ? values[static_cast<size_t>(local)]
                         : dict[codes[static_cast<size_t>(local)]];
  }
};

/// A fixed-capacity chunk of an interned-name column. Name slots below the
/// pinned name watermark are immutable, so `const std::string&` returns
/// stay valid for the life of the store.
struct NameChunk {
  int64_t base = 0;
  std::vector<std::string> slots;
};

using RelChunkList = std::vector<std::shared_ptr<RelationalChunk>>;
using AttrChunkList = std::vector<std::shared_ptr<AttributeChunk>>;
using NameChunkList = std::vector<std::shared_ptr<NameChunk>>;

// ---- Snapshot ---------------------------------------------------------------

/// A pinned, immutable view of the store at one commit: the epoch, the
/// watermarks (entity/relation/attribute counts and triple row counts), and
/// shared_ptr'd chunk lists. Pinning is a mutex-guarded copy of ~six
/// shared_ptrs (no allocation); scanning afterwards is lock-free. A
/// snapshot stays valid for as long as the handle lives, even while the
/// writer keeps appending, sealing, and committing — and even after the
/// store itself is destroyed.
///
/// Default-constructed snapshots are empty (zero counts).
class KgSnapshot {
 public:
  KgSnapshot() = default;

  /// Monotonic commit number; 0 for the empty snapshot.
  uint64_t epoch() const { return epoch_; }

  int64_t num_entities() const { return n_entities_; }
  int64_t num_relations() const { return n_relations_; }
  int64_t num_attributes() const { return n_attributes_; }
  int64_t num_relational_triples() const { return rel_rows_; }
  int64_t num_attribute_triples() const { return attr_rows_; }

  const std::string& entity_name(EntityId id) const {
    SDEA_CHECK(id >= 0 && id < n_entities_);
    return NameAt(*entity_names_, name_cap_, id);
  }
  const std::string& relation_name(RelationId id) const {
    SDEA_CHECK(id >= 0 && id < n_relations_);
    return NameAt(*relation_names_, name_cap_, id);
  }
  const std::string& attribute_name(AttributeId id) const {
    SDEA_CHECK(id >= 0 && id < n_attributes_);
    return NameAt(*attribute_names_, name_cap_, id);
  }

  /// Visits every visible relational triple in row order:
  /// fn(row, head, relation, tail). The loop reads raw column pointers —
  /// this is the chunk-iterating scan every migrated hot path runs on.
  template <typename Fn>
  void ForEachRelational(Fn&& fn) const {
    if (rel_chunks_ == nullptr) return;
    for (const auto& chunk : *rel_chunks_) {
      const int64_t visible = VisibleRows(*chunk, rel_rows_);
      if (visible <= 0) break;
      const EntityId* h = chunk->head.data();
      const RelationId* r = chunk->relation.data();
      const EntityId* t = chunk->tail.data();
      const int64_t base = chunk->base_row;
      for (int64_t i = 0; i < visible; ++i) {
        fn(base + i, h[i], r[i], t[i]);
      }
    }
  }

  /// Visits every visible attribute triple in row order:
  /// fn(row, entity, attribute, const std::string& value).
  template <typename Fn>
  void ForEachAttribute(Fn&& fn) const {
    if (attr_chunks_ == nullptr) return;
    for (const auto& chunk : *attr_chunks_) {
      const int64_t visible = VisibleRows(*chunk, attr_rows_);
      if (visible <= 0) break;
      const EntityId* e = chunk->entity.data();
      const AttributeId* a = chunk->attribute.data();
      const int64_t base = chunk->base_row;
      for (int64_t i = 0; i < visible; ++i) {
        fn(base + i, e[i], a[i], chunk->value_at(i));
      }
    }
  }

  RelationalTriple RelationalAt(int64_t row) const {
    SDEA_CHECK(row >= 0 && row < rel_rows_);
    const RelationalChunk& c = *(*rel_chunks_)[ChunkIndex(row, rel_cap_)];
    const auto i = static_cast<size_t>(row - c.base_row);
    return RelationalTriple{c.head[i], c.relation[i], c.tail[i]};
  }

  /// The id columns of attribute row `row` (use ValueAt for the value).
  std::pair<EntityId, AttributeId> AttributeIdsAt(int64_t row) const {
    SDEA_CHECK(row >= 0 && row < attr_rows_);
    const AttributeChunk& c = *(*attr_chunks_)[ChunkIndex(row, attr_cap_)];
    const auto i = static_cast<size_t>(row - c.base_row);
    return {c.entity[i], c.attribute[i]};
  }

  /// Value of attribute row `row`; the reference stays valid while any
  /// handle to this snapshot lives.
  const std::string& ValueAt(int64_t row) const {
    SDEA_CHECK(row >= 0 && row < attr_rows_);
    const AttributeChunk& c = *(*attr_chunks_)[ChunkIndex(row, attr_cap_)];
    return c.value_at(row - c.base_row);
  }

  /// Edges incident to `e` (both directions) in insertion order — the exact
  /// order the legacy adjacency lists used: per triple, the head's outgoing
  /// edge precedes the tail's incoming edge. Sealed chunks answer via their
  /// by_head/by_tail indexes; the tail open chunk is scanned linearly.
  /// Out-of-range ids yield an empty vector.
  std::vector<NeighborEdge> NeighborsOf(EntityId e) const;

  /// Relational degree of `e` (incident triple count, both directions,
  /// self-loops counted twice). 0 for out-of-range ids.
  int64_t DegreeOf(EntityId e) const;

  /// Global attribute rows of entity `e`, ascending (== insertion order).
  /// Empty for out-of-range ids.
  std::vector<int64_t> AttributeRowsOf(EntityId e) const;

 private:
  friend class ColumnarKgStore;

  template <typename Chunk>
  int64_t VisibleRows(const Chunk& chunk, int64_t watermark) const {
    return std::min<int64_t>(chunk.capacity, watermark - chunk.base_row);
  }
  static int64_t ChunkIndex(int64_t row, int64_t cap) { return row / cap; }
  static const std::string& NameAt(const NameChunkList& chunks, int64_t cap,
                                   int64_t id) {
    return chunks[static_cast<size_t>(id / cap)]
        ->slots[static_cast<size_t>(id % cap)];
  }

  uint64_t epoch_ = 0;
  int64_t n_entities_ = 0;
  int64_t n_relations_ = 0;
  int64_t n_attributes_ = 0;
  int64_t rel_rows_ = 0;
  int64_t attr_rows_ = 0;
  int64_t rel_cap_ = 1;
  int64_t attr_cap_ = 1;
  int64_t name_cap_ = 1;
  std::shared_ptr<const RelChunkList> rel_chunks_;
  std::shared_ptr<const AttrChunkList> attr_chunks_;
  std::shared_ptr<const NameChunkList> entity_names_;
  std::shared_ptr<const NameChunkList> relation_names_;
  std::shared_ptr<const NameChunkList> attribute_names_;
};

// ---- Store ------------------------------------------------------------------

/// The columnar KG store: dictionary-encoded chunked columns with
/// epoch-versioned snapshot visibility.
///
/// Concurrency contract:
///  * Exactly one thread may call the Append*/Commit writer API.
///  * Any number of threads may call Snapshot() concurrently with the
///    writer; each snapshot is a consistent watermark-prefix of everything
///    committed, and scanning it is lock-free.
///  * The Latest* views read uncommitted writer state and are writer-thread
///    only (the KnowledgeGraph facade uses them for its legacy accessors).
///
/// Appends become visible to *new* snapshots only at the next Commit();
/// pinned snapshots never change. Chunk columns are preallocated, so an
/// append never moves committed data; when a chunk fills, the writer seals
/// it (building its scan indexes, and for attribute chunks a
/// dictionary-encoded immutable replacement) before the covering commit is
/// published.
class ColumnarKgStore {
 public:
  explicit ColumnarKgStore(const ColumnarOptions& options = {});
  ColumnarKgStore(const ColumnarKgStore&) = delete;
  ColumnarKgStore& operator=(const ColumnarKgStore&) = delete;

  const ColumnarOptions& options() const { return opts_; }

  // ---- Writer API (single thread) -----------------------------------------

  /// Appends a name; no interning — the caller (facade) deduplicates.
  EntityId AppendEntityName(std::string name);
  RelationId AppendRelationName(std::string name);
  AttributeId AppendAttributeName(std::string name);

  /// Appends (head, relation, tail). Ids must already be appended.
  void AppendRelational(EntityId head, RelationId relation, EntityId tail);

  /// Appends (entity, attribute, value). Ids must already be appended.
  void AppendAttribute(EntityId entity, AttributeId attribute,
                       std::string value);

  /// Publishes everything appended so far as the new head commit and
  /// returns its epoch. O(1): a mutex-guarded copy of the watermarks and
  /// chunk-list pointers — no allocation, sub-microsecond.
  uint64_t Commit();

  /// True when appends exist that no commit covers yet.
  bool HasUncommitted() const;

  // ---- Reader API (any thread) --------------------------------------------

  /// Pins the head commit. Safe concurrently with the writer.
  KgSnapshot Snapshot() const;

  // ---- Writer-latest views (writer thread only) ----------------------------

  int64_t latest_num_entities() const { return appended_entities_; }
  int64_t latest_num_relations() const { return appended_relations_; }
  int64_t latest_num_attributes() const { return appended_attributes_; }
  int64_t latest_rel_rows() const { return appended_rel_rows_; }
  int64_t latest_attr_rows() const { return appended_attr_rows_; }

  const std::string& LatestEntityName(EntityId id) const;
  const std::string& LatestRelationName(RelationId id) const;
  const std::string& LatestAttributeName(AttributeId id) const;

  /// Visits appended relational rows [from_row, latest_rel_rows()) in row
  /// order: fn(row, head, relation, tail). Includes uncommitted rows.
  template <typename Fn>
  void LatestForEachRelational(int64_t from_row, Fn&& fn) const {
    ScanChunks(*rel_chunks_, appended_rel_rows_, from_row,
               [&](const RelationalChunk& c, int64_t i) {
                 fn(c.base_row + i, c.head[static_cast<size_t>(i)],
                    c.relation[static_cast<size_t>(i)],
                    c.tail[static_cast<size_t>(i)]);
               });
  }

  /// Visits appended attribute rows [from_row, latest_attr_rows()):
  /// fn(row, entity, attribute, const std::string& value).
  template <typename Fn>
  void LatestForEachAttribute(int64_t from_row, Fn&& fn) const {
    ScanChunks(*attr_chunks_, appended_attr_rows_, from_row,
               [&](const AttributeChunk& c, int64_t i) {
                 fn(c.base_row + i, c.entity[static_cast<size_t>(i)],
                    c.attribute[static_cast<size_t>(i)], c.value_at(i));
               });
  }

  /// Approximate heap footprint of the columnar data (columns, dictionaries,
  /// seal indexes, name chunks) — the numerator of bench_kg's
  /// bytes-per-triple counter.
  int64_t ApproxHeapBytes() const;

 private:
  template <typename List, typename Fn>
  void ScanChunks(const List& chunks, int64_t end_row, int64_t from_row,
                  Fn&& fn) const {
    for (const auto& chunk : chunks) {
      const int64_t visible =
          std::min<int64_t>(chunk->capacity, end_row - chunk->base_row);
      if (visible <= 0) break;
      const int64_t first =
          std::max<int64_t>(0, from_row - chunk->base_row);
      for (int64_t i = first; i < visible; ++i) fn(*chunk, i);
    }
  }

  EntityId AppendName(std::shared_ptr<const NameChunkList>* list,
                      int64_t* count, std::string name);
  void SealRelChunk(RelationalChunk* chunk);
  std::shared_ptr<AttributeChunk> SealAttrChunk(const AttributeChunk& open);

  const ColumnarOptions opts_;

  // Writer-side working state. The chunk lists are published as
  // shared_ptr<const List>; growing or swapping a chunk makes a fresh list
  // (copy-on-write) so pinned commits keep their exact chunk set.
  std::shared_ptr<const RelChunkList> rel_chunks_;
  std::shared_ptr<const AttrChunkList> attr_chunks_;
  std::shared_ptr<const NameChunkList> entity_names_;
  std::shared_ptr<const NameChunkList> relation_names_;
  std::shared_ptr<const NameChunkList> attribute_names_;

  int64_t appended_entities_ = 0;
  int64_t appended_relations_ = 0;
  int64_t appended_attributes_ = 0;
  int64_t appended_rel_rows_ = 0;
  int64_t appended_attr_rows_ = 0;

  /// Head commit, pinned by Snapshot(). Guarded by commit_mu_; Commit()
  /// assigns it in place (no allocation), Snapshot() copies it out.
  mutable std::mutex commit_mu_;
  KgSnapshot head_;
  uint64_t next_epoch_ = 1;
};

}  // namespace sdea::kg

#endif  // SDEA_KG_COLUMNAR_H_
