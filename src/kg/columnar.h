#ifndef SDEA_KG_COLUMNAR_H_
#define SDEA_KG_COLUMNAR_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/check.h"
#include "base/status.h"
#include "kg/types.h"

namespace sdea::kg {

/// Chunk capacities of the columnar store. The defaults suit real graphs;
/// tests shrink them to force many seal boundaries with tiny inputs.
struct ColumnarOptions {
  int64_t rel_chunk_rows = 4096;   ///< Relational triples per chunk.
  int64_t attr_chunk_rows = 2048;  ///< Attribute triples per chunk.
  int64_t name_chunk_rows = 4096;  ///< Interned names per chunk.
  /// A sealed attribute chunk dictionary-encodes its values when the
  /// distinct count is at most this fraction (in percent) of the row
  /// count; otherwise the chunk stays plain-encoded.
  int64_t dict_max_distinct_pct = 75;
};

// ---- Chunks -----------------------------------------------------------------
//
// MVCC visibility protocol (hyrise-style, single writer, many readers):
//
//  * Every chunk's column arrays are allocated at full capacity up front and
//    never reallocate. The writer fills slots in row order; a slot, once
//    covered by a published commit, is never written again.
//  * Readers never read a chunk's mutable bookkeeping. All visibility comes
//    from the pinned commit's watermarks: a chunk exposes
//    min(capacity, watermark - base_row) rows to a given snapshot.
//  * Seal-time fields (the permutation indexes, and a sealed attribute
//    chunk's dictionary) are only consulted when the pinned watermark covers
//    the whole chunk. The writer builds them *before* publishing the commit
//    that makes the chunk's last row visible, so the commit mutex carries
//    the happens-before edge and the scan itself takes no locks.

/// A fixed-capacity chunk of dense-id relational columns. head/relation/tail
/// are dictionary-encoded globally: the ids index the interned name columns.
struct RelationalChunk {
  int64_t base_row = 0;   ///< Global row id of slot 0. Immutable.
  int64_t capacity = 0;   ///< Slot count. Immutable.
  std::vector<EntityId> head;
  std::vector<RelationId> relation;
  std::vector<EntityId> tail;
  /// Seal-time permutation indexes: local rows sorted by (head[i], i) and
  /// (tail[i], i). Empty while the chunk is open; valid for readers whose
  /// watermark covers the full chunk.
  std::vector<int32_t> by_head;
  std::vector<int32_t> by_tail;
};

/// A fixed-capacity chunk of attribute-triple columns. An *open* chunk
/// stores values plainly in `values`; sealing builds a fresh immutable
/// chunk object whose values are dictionary-encoded when the chunk has
/// enough duplication to pay for it (codes into `dict`), or plain-copied
/// otherwise. The open object stays alive for older pins.
struct AttributeChunk {
  int64_t base_row = 0;
  int64_t capacity = 0;
  std::vector<EntityId> entity;
  std::vector<AttributeId> attribute;
  std::vector<std::string> values;  ///< Plain values (open or sealed-plain).
  std::vector<std::string> dict;    ///< Distinct values, first-occurrence order.
  std::vector<uint32_t> codes;      ///< Per-row dict codes; empty when plain.
  /// Seal-time permutation index: local rows sorted by (entity[i], i).
  std::vector<int32_t> by_entity;

  bool dict_encoded() const { return !codes.empty(); }
  const std::string& value_at(int64_t local) const {
    return codes.empty() ? values[static_cast<size_t>(local)]
                         : dict[codes[static_cast<size_t>(local)]];
  }
};

/// A fixed-capacity chunk of an interned-name column. Name slots below the
/// pinned name watermark are immutable, so `const std::string&` returns
/// stay valid for the life of the store.
struct NameChunk {
  int64_t base = 0;
  std::vector<std::string> slots;
};

using RelChunkList = std::vector<std::shared_ptr<RelationalChunk>>;
using AttrChunkList = std::vector<std::shared_ptr<AttributeChunk>>;
using NameChunkList = std::vector<std::shared_ptr<NameChunk>>;

// ---- Epoch journal ----------------------------------------------------------

/// The watermarks one Commit() published. The store appends one of these to
/// a chunked journal per commit; epoch `e` lives at journal index `e - 1`,
/// so an epoch lookup is direct indexing, never a search.
struct CommitMark {
  int64_t entities = 0;
  int64_t relations = 0;
  int64_t attributes = 0;
  int64_t rel_rows = 0;
  int64_t attr_rows = 0;
};

/// A fixed-capacity chunk of the epoch journal. Slots at indexes below any
/// published epoch are immutable, the same visibility protocol as NameChunk.
struct MarkChunk {
  std::vector<CommitMark> slots;
};

using MarkChunkList = std::vector<std::shared_ptr<MarkChunk>>;

/// Journal chunk capacity. Growth is copy-on-write like the data chunk
/// lists, so a commit is O(1) amortized even for commit-per-triple loads.
/// Slots are preallocated per chunk (stable addresses for lock-free
/// readers), so the capacity is also the journal's idle footprint on a
/// bulk-loaded graph — kept small relative to the data chunks.
inline constexpr int64_t kMarkChunkRows = 256;

/// Everything added between two commits, as five half-open ranges. The
/// store is append-only, so a diff is exactly the id/row suffix the newer
/// epoch added: name rows [.._begin, .._end) for each of the three interned
/// columns, plus the relational and attribute triple row ranges.
struct KgDiff {
  uint64_t base_epoch = 0;  ///< Older epoch (0 = empty-store baseline).
  uint64_t epoch = 0;       ///< Newer epoch (the snapshot the diff is from).
  int64_t entity_begin = 0;
  int64_t entity_end = 0;
  int64_t relation_begin = 0;
  int64_t relation_end = 0;
  int64_t attribute_begin = 0;
  int64_t attribute_end = 0;
  int64_t rel_row_begin = 0;
  int64_t rel_row_end = 0;
  int64_t attr_row_begin = 0;
  int64_t attr_row_end = 0;

  int64_t num_new_entities() const { return entity_end - entity_begin; }
  int64_t num_new_relations() const { return relation_end - relation_begin; }
  int64_t num_new_attributes() const {
    return attribute_end - attribute_begin;
  }
  int64_t num_new_rel_rows() const { return rel_row_end - rel_row_begin; }
  int64_t num_new_attr_rows() const { return attr_row_end - attr_row_begin; }

  bool empty() const {
    return num_new_entities() == 0 && num_new_relations() == 0 &&
           num_new_attributes() == 0 && num_new_rel_rows() == 0 &&
           num_new_attr_rows() == 0;
  }
};

// ---- Snapshot ---------------------------------------------------------------

/// A pinned, immutable view of the store at one commit: the epoch, the
/// watermarks (entity/relation/attribute counts and triple row counts), and
/// shared_ptr'd chunk lists. Pinning is a mutex-guarded copy of ~six
/// shared_ptrs (no allocation); scanning afterwards is lock-free. A
/// snapshot stays valid for as long as the handle lives, even while the
/// writer keeps appending, sealing, and committing — and even after the
/// store itself is destroyed.
///
/// Default-constructed snapshots are empty (zero counts).
class KgSnapshot {
 public:
  KgSnapshot() = default;

  /// Monotonic commit number; 0 for the empty snapshot.
  uint64_t epoch() const { return epoch_; }

  int64_t num_entities() const { return n_entities_; }
  int64_t num_relations() const { return n_relations_; }
  int64_t num_attributes() const { return n_attributes_; }
  int64_t num_relational_triples() const { return rel_rows_; }
  int64_t num_attribute_triples() const { return attr_rows_; }

  const std::string& entity_name(EntityId id) const {
    SDEA_CHECK(id >= 0 && id < n_entities_);
    return NameAt(*entity_names_, name_cap_, id);
  }
  const std::string& relation_name(RelationId id) const {
    SDEA_CHECK(id >= 0 && id < n_relations_);
    return NameAt(*relation_names_, name_cap_, id);
  }
  const std::string& attribute_name(AttributeId id) const {
    SDEA_CHECK(id >= 0 && id < n_attributes_);
    return NameAt(*attribute_names_, name_cap_, id);
  }

  /// Visits every visible relational triple in row order:
  /// fn(row, head, relation, tail). The loop reads raw column pointers —
  /// this is the chunk-iterating scan every migrated hot path runs on.
  template <typename Fn>
  void ForEachRelational(Fn&& fn) const {
    if (rel_chunks_ == nullptr) return;
    for (const auto& chunk : *rel_chunks_) {
      const int64_t visible = VisibleRows(*chunk, rel_rows_);
      if (visible <= 0) break;
      const EntityId* h = chunk->head.data();
      const RelationId* r = chunk->relation.data();
      const EntityId* t = chunk->tail.data();
      const int64_t base = chunk->base_row;
      for (int64_t i = 0; i < visible; ++i) {
        fn(base + i, h[i], r[i], t[i]);
      }
    }
  }

  /// Visits visible relational triples with row in [begin, end), in row
  /// order: fn(row, head, relation, tail). `end` is clamped to the
  /// snapshot's watermark. Chunks before `begin` are skipped by index, so
  /// visiting a diff suffix costs O(rows visited), not O(total rows).
  template <typename Fn>
  void ForEachRelationalRange(int64_t begin, int64_t end, Fn&& fn) const {
    if (rel_chunks_ == nullptr) return;
    end = std::min(end, rel_rows_);
    begin = std::max<int64_t>(begin, 0);
    if (begin >= end) return;
    for (auto ci = static_cast<size_t>(ChunkIndex(begin, rel_cap_));
         ci < rel_chunks_->size(); ++ci) {
      const RelationalChunk& chunk = *(*rel_chunks_)[ci];
      if (chunk.base_row >= end) break;
      const int64_t first = std::max<int64_t>(0, begin - chunk.base_row);
      const int64_t last = std::min(chunk.capacity, end - chunk.base_row);
      const EntityId* h = chunk.head.data();
      const RelationId* r = chunk.relation.data();
      const EntityId* t = chunk.tail.data();
      for (int64_t i = first; i < last; ++i) {
        fn(chunk.base_row + i, h[i], r[i], t[i]);
      }
    }
  }

  /// Visits every visible attribute triple in row order:
  /// fn(row, entity, attribute, const std::string& value).
  template <typename Fn>
  void ForEachAttribute(Fn&& fn) const {
    if (attr_chunks_ == nullptr) return;
    for (const auto& chunk : *attr_chunks_) {
      const int64_t visible = VisibleRows(*chunk, attr_rows_);
      if (visible <= 0) break;
      const EntityId* e = chunk->entity.data();
      const AttributeId* a = chunk->attribute.data();
      const int64_t base = chunk->base_row;
      for (int64_t i = 0; i < visible; ++i) {
        fn(base + i, e[i], a[i], chunk->value_at(i));
      }
    }
  }

  /// Visits visible attribute triples with row in [begin, end):
  /// fn(row, entity, attribute, const std::string& value).
  template <typename Fn>
  void ForEachAttributeRange(int64_t begin, int64_t end, Fn&& fn) const {
    if (attr_chunks_ == nullptr) return;
    end = std::min(end, attr_rows_);
    begin = std::max<int64_t>(begin, 0);
    if (begin >= end) return;
    for (auto ci = static_cast<size_t>(ChunkIndex(begin, attr_cap_));
         ci < attr_chunks_->size(); ++ci) {
      const AttributeChunk& chunk = *(*attr_chunks_)[ci];
      if (chunk.base_row >= end) break;
      const int64_t first = std::max<int64_t>(0, begin - chunk.base_row);
      const int64_t last = std::min(chunk.capacity, end - chunk.base_row);
      const EntityId* e = chunk.entity.data();
      const AttributeId* a = chunk.attribute.data();
      for (int64_t i = first; i < last; ++i) {
        fn(chunk.base_row + i, e[i], a[i], chunk.value_at(i));
      }
    }
  }

  /// Everything committed after `base_epoch` and visible here, as half-open
  /// id/row ranges. `base_epoch == 0` diffs against the empty store;
  /// `base_epoch == epoch()` yields an empty diff. Errors with
  /// InvalidArgument when `base_epoch > epoch()` (the baseline must be an
  /// ancestor of this snapshot). Lock-free: the snapshot carries the epoch
  /// journal, so this works even after the store is destroyed.
  Result<KgDiff> DiffSince(uint64_t base_epoch) const;

  /// The distinct entity ids a diff touches: heads and tails of its new
  /// relational rows, entities of its new attribute rows, and the newly
  /// interned entity ids themselves. Sorted ascending, deduplicated. This
  /// is the seed set the incremental aligner expands by k hops.
  std::vector<EntityId> TouchedEntities(const KgDiff& diff) const;

  RelationalTriple RelationalAt(int64_t row) const {
    SDEA_CHECK(row >= 0 && row < rel_rows_);
    const RelationalChunk& c = *(*rel_chunks_)[ChunkIndex(row, rel_cap_)];
    const auto i = static_cast<size_t>(row - c.base_row);
    return RelationalTriple{c.head[i], c.relation[i], c.tail[i]};
  }

  /// The id columns of attribute row `row` (use ValueAt for the value).
  std::pair<EntityId, AttributeId> AttributeIdsAt(int64_t row) const {
    SDEA_CHECK(row >= 0 && row < attr_rows_);
    const AttributeChunk& c = *(*attr_chunks_)[ChunkIndex(row, attr_cap_)];
    const auto i = static_cast<size_t>(row - c.base_row);
    return {c.entity[i], c.attribute[i]};
  }

  /// Value of attribute row `row`; the reference stays valid while any
  /// handle to this snapshot lives.
  const std::string& ValueAt(int64_t row) const {
    SDEA_CHECK(row >= 0 && row < attr_rows_);
    const AttributeChunk& c = *(*attr_chunks_)[ChunkIndex(row, attr_cap_)];
    return c.value_at(row - c.base_row);
  }

  /// Edges incident to `e` (both directions) in insertion order — the exact
  /// order the legacy adjacency lists used: per triple, the head's outgoing
  /// edge precedes the tail's incoming edge. Sealed chunks answer via their
  /// by_head/by_tail indexes; the tail open chunk is scanned linearly.
  /// Out-of-range ids yield an empty vector.
  std::vector<NeighborEdge> NeighborsOf(EntityId e) const;

  /// Relational degree of `e` (incident triple count, both directions,
  /// self-loops counted twice). 0 for out-of-range ids.
  int64_t DegreeOf(EntityId e) const;

  /// Global attribute rows of entity `e`, ascending (== insertion order).
  /// Empty for out-of-range ids.
  std::vector<int64_t> AttributeRowsOf(EntityId e) const;

 private:
  friend class ColumnarKgStore;

  template <typename Chunk>
  int64_t VisibleRows(const Chunk& chunk, int64_t watermark) const {
    return std::min<int64_t>(chunk.capacity, watermark - chunk.base_row);
  }
  static int64_t ChunkIndex(int64_t row, int64_t cap) { return row / cap; }
  static const std::string& NameAt(const NameChunkList& chunks, int64_t cap,
                                   int64_t id) {
    return chunks[static_cast<size_t>(id / cap)]
        ->slots[static_cast<size_t>(id % cap)];
  }

  /// The published watermarks of epoch `e` (1 <= e <= epoch_).
  const CommitMark& MarkAt(uint64_t e) const {
    const auto idx = static_cast<int64_t>(e - 1);
    return (*marks_)[static_cast<size_t>(idx / kMarkChunkRows)]
        ->slots[static_cast<size_t>(idx % kMarkChunkRows)];
  }

  uint64_t epoch_ = 0;
  int64_t n_entities_ = 0;
  int64_t n_relations_ = 0;
  int64_t n_attributes_ = 0;
  int64_t rel_rows_ = 0;
  int64_t attr_rows_ = 0;
  int64_t rel_cap_ = 1;
  int64_t attr_cap_ = 1;
  int64_t name_cap_ = 1;
  std::shared_ptr<const RelChunkList> rel_chunks_;
  std::shared_ptr<const AttrChunkList> attr_chunks_;
  std::shared_ptr<const NameChunkList> entity_names_;
  std::shared_ptr<const NameChunkList> relation_names_;
  std::shared_ptr<const NameChunkList> attribute_names_;
  /// Epoch journal (one CommitMark per published epoch). Slots below
  /// epoch_ are immutable; the snapshot only indexes those.
  std::shared_ptr<const MarkChunkList> marks_;
};

// ---- Store ------------------------------------------------------------------

/// The columnar KG store: dictionary-encoded chunked columns with
/// epoch-versioned snapshot visibility.
///
/// Concurrency contract:
///  * Exactly one thread may call the Append*/Commit writer API.
///  * Any number of threads may call Snapshot() concurrently with the
///    writer; each snapshot is a consistent watermark-prefix of everything
///    committed, and scanning it is lock-free.
///  * The Latest* views read uncommitted writer state and are writer-thread
///    only (the KnowledgeGraph facade uses them for its legacy accessors).
///
/// Appends become visible to *new* snapshots only at the next Commit();
/// pinned snapshots never change. Chunk columns are preallocated, so an
/// append never moves committed data; when a chunk fills, the writer seals
/// it (building its scan indexes, and for attribute chunks a
/// dictionary-encoded immutable replacement) before the covering commit is
/// published.
class ColumnarKgStore {
 public:
  explicit ColumnarKgStore(const ColumnarOptions& options = {});
  ColumnarKgStore(const ColumnarKgStore&) = delete;
  ColumnarKgStore& operator=(const ColumnarKgStore&) = delete;

  const ColumnarOptions& options() const { return opts_; }

  // ---- Writer API (single thread) -----------------------------------------

  /// Appends a name; no interning — the caller (facade) deduplicates.
  EntityId AppendEntityName(std::string name);
  RelationId AppendRelationName(std::string name);
  AttributeId AppendAttributeName(std::string name);

  /// Appends (head, relation, tail). Ids must already be appended.
  void AppendRelational(EntityId head, RelationId relation, EntityId tail);

  /// Appends (entity, attribute, value). Ids must already be appended.
  void AppendAttribute(EntityId entity, AttributeId attribute,
                       std::string value);

  /// Publishes everything appended so far as the new head commit and
  /// returns its epoch. O(1): a mutex-guarded copy of the watermarks and
  /// chunk-list pointers — no allocation, sub-microsecond.
  uint64_t Commit();

  /// True when appends exist that no commit covers yet.
  bool HasUncommitted() const;

  // ---- Reader API (any thread) --------------------------------------------

  /// Pins the head commit. Safe concurrently with the writer.
  KgSnapshot Snapshot() const;

  // ---- Writer-latest views (writer thread only) ----------------------------

  int64_t latest_num_entities() const { return appended_entities_; }
  int64_t latest_num_relations() const { return appended_relations_; }
  int64_t latest_num_attributes() const { return appended_attributes_; }
  int64_t latest_rel_rows() const { return appended_rel_rows_; }
  int64_t latest_attr_rows() const { return appended_attr_rows_; }

  const std::string& LatestEntityName(EntityId id) const;
  const std::string& LatestRelationName(RelationId id) const;
  const std::string& LatestAttributeName(AttributeId id) const;

  /// Visits appended relational rows [from_row, latest_rel_rows()) in row
  /// order: fn(row, head, relation, tail). Includes uncommitted rows.
  template <typename Fn>
  void LatestForEachRelational(int64_t from_row, Fn&& fn) const {
    ScanChunks(*rel_chunks_, appended_rel_rows_, from_row,
               [&](const RelationalChunk& c, int64_t i) {
                 fn(c.base_row + i, c.head[static_cast<size_t>(i)],
                    c.relation[static_cast<size_t>(i)],
                    c.tail[static_cast<size_t>(i)]);
               });
  }

  /// Visits appended attribute rows [from_row, latest_attr_rows()):
  /// fn(row, entity, attribute, const std::string& value).
  template <typename Fn>
  void LatestForEachAttribute(int64_t from_row, Fn&& fn) const {
    ScanChunks(*attr_chunks_, appended_attr_rows_, from_row,
               [&](const AttributeChunk& c, int64_t i) {
                 fn(c.base_row + i, c.entity[static_cast<size_t>(i)],
                    c.attribute[static_cast<size_t>(i)], c.value_at(i));
               });
  }

  /// Approximate heap footprint of the columnar data (columns, dictionaries,
  /// seal indexes, name chunks) — the numerator of bench_kg's
  /// bytes-per-triple counter.
  int64_t ApproxHeapBytes() const;

 private:
  template <typename List, typename Fn>
  void ScanChunks(const List& chunks, int64_t end_row, int64_t from_row,
                  Fn&& fn) const {
    for (const auto& chunk : chunks) {
      const int64_t visible =
          std::min<int64_t>(chunk->capacity, end_row - chunk->base_row);
      if (visible <= 0) break;
      const int64_t first =
          std::max<int64_t>(0, from_row - chunk->base_row);
      for (int64_t i = first; i < visible; ++i) fn(*chunk, i);
    }
  }

  EntityId AppendName(std::shared_ptr<const NameChunkList>* list,
                      int64_t* count, std::string name);
  void SealRelChunk(RelationalChunk* chunk);
  std::shared_ptr<AttributeChunk> SealAttrChunk(const AttributeChunk& open);
  void AppendMarkLocked(uint64_t epoch);

  const ColumnarOptions opts_;

  // Writer-side working state. The chunk lists are published as
  // shared_ptr<const List>; growing or swapping a chunk makes a fresh list
  // (copy-on-write) so pinned commits keep their exact chunk set.
  std::shared_ptr<const RelChunkList> rel_chunks_;
  std::shared_ptr<const AttrChunkList> attr_chunks_;
  std::shared_ptr<const NameChunkList> entity_names_;
  std::shared_ptr<const NameChunkList> relation_names_;
  std::shared_ptr<const NameChunkList> attribute_names_;
  std::shared_ptr<const MarkChunkList> marks_;

  int64_t appended_entities_ = 0;
  int64_t appended_relations_ = 0;
  int64_t appended_attributes_ = 0;
  int64_t appended_rel_rows_ = 0;
  int64_t appended_attr_rows_ = 0;

  /// Head commit, pinned by Snapshot(). Guarded by commit_mu_; Commit()
  /// assigns it in place (no allocation), Snapshot() copies it out.
  mutable std::mutex commit_mu_;
  KgSnapshot head_;
  uint64_t next_epoch_ = 1;
};

}  // namespace sdea::kg

#endif  // SDEA_KG_COLUMNAR_H_
