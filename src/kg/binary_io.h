#ifndef SDEA_KG_BINARY_IO_H_
#define SDEA_KG_BINARY_IO_H_

#include <string>

#include "base/status.h"
#include "kg/knowledge_graph.h"

namespace sdea::kg {

/// Compact binary serialization of a KnowledgeGraph — the fast-load path
/// for large datasets (the 100K-entity OpenEA graphs parse an order of
/// magnitude faster than from TSV). Format: magic + string tables
/// (entities, relations, attributes) + fixed-width relational triples +
/// length-prefixed attribute triples. Round-trips exactly.

/// Serializes `graph` into the SDEAKGB1 wire format.
std::string EncodeBinary(const KnowledgeGraph& graph);

/// Parses a blob written by EncodeBinary. Robust against arbitrary bytes:
/// returns InvalidArgument (never crashes, hangs, or over-allocates) on a
/// wrong magic, truncated sections, counts that exceed what the blob could
/// possibly hold, out-of-range triple ids, or duplicate names.
Result<KnowledgeGraph> DecodeBinary(const std::string& data);

/// Writes EncodeBinary(graph) to `path` atomically (temp file + rename), so
/// a crash mid-save leaves the previous file intact — never a torn one.
Status SaveBinary(const KnowledgeGraph& graph, const std::string& path);

/// Loads a graph written by SaveBinary (ReadFileToString + DecodeBinary,
/// with the path added to any error message).
Result<KnowledgeGraph> LoadBinary(const std::string& path);

}  // namespace sdea::kg

#endif  // SDEA_KG_BINARY_IO_H_
