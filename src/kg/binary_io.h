#ifndef SDEA_KG_BINARY_IO_H_
#define SDEA_KG_BINARY_IO_H_

#include <string>

#include "base/status.h"
#include "kg/knowledge_graph.h"

namespace sdea::kg {

/// Compact binary serialization of a KnowledgeGraph — the fast-load path
/// for large datasets (the 100K-entity OpenEA graphs parse an order of
/// magnitude faster than from TSV). Format: magic + string tables
/// (entities, relations, attributes) + fixed-width relational triples +
/// length-prefixed attribute triples. Round-trips exactly.
Status SaveBinary(const KnowledgeGraph& graph, const std::string& path);

/// Loads a graph written by SaveBinary. Rejects files with a wrong magic
/// or truncated sections.
Result<KnowledgeGraph> LoadBinary(const std::string& path);

}  // namespace sdea::kg

#endif  // SDEA_KG_BINARY_IO_H_
