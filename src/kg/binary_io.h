#ifndef SDEA_KG_BINARY_IO_H_
#define SDEA_KG_BINARY_IO_H_

#include <string>

#include "base/status.h"
#include "kg/knowledge_graph.h"

namespace sdea::kg {

/// Compact binary serialization of a KnowledgeGraph — the fast-load path
/// for large datasets (the 100K-entity OpenEA graphs parse an order of
/// magnitude faster than from TSV).
///
/// The format is versioned by its 8-byte magic:
///
///  * SDEAKGB2 (current, written by EncodeBinary): magic + string tables
///    (entities, relations, attributes) + chunked columnar triple sections
///    mirroring the in-memory store. Relational rows are split into
///    fixed-size chunks of three u32 columns (head, relation, tail);
///    attribute rows into chunks of two u32 id columns plus a per-chunk
///    value encoding — dictionary (distinct strings + u32 codes) when the
///    chunk repeats values enough to pay for it, plain strings otherwise.
///  * SDEAKGB1 (legacy, written by EncodeBinaryV1): row-interleaved
///    triples. DecodeBinary still loads it, so files saved before the
///    columnar store keep working.

/// Serializes `graph` into the SDEAKGB2 chunked columnar wire format.
std::string EncodeBinary(const KnowledgeGraph& graph);

/// Serializes `graph` into the legacy SDEAKGB1 row format (kept so tests
/// can prove the v1 load path still works; new files should use
/// EncodeBinary).
std::string EncodeBinaryV1(const KnowledgeGraph& graph);

/// Parses a blob written by EncodeBinary or EncodeBinaryV1, dispatching on
/// the magic. Robust against arbitrary bytes: returns InvalidArgument
/// (never crashes, hangs, or over-allocates) on a wrong magic, truncated
/// sections, counts that exceed what the blob could possibly hold,
/// out-of-range triple ids, malformed chunk headers, dictionary codes past
/// the dictionary, or duplicate names.
Result<KnowledgeGraph> DecodeBinary(const std::string& data);

/// Writes EncodeBinary(graph) to `path` atomically (temp file + rename), so
/// a crash mid-save leaves the previous file intact — never a torn one.
Status SaveBinary(const KnowledgeGraph& graph, const std::string& path);

/// Loads a graph written by SaveBinary (ReadFileToString + DecodeBinary,
/// with the path added to any error message). Accepts both format
/// versions.
Result<KnowledgeGraph> LoadBinary(const std::string& path);

}  // namespace sdea::kg

#endif  // SDEA_KG_BINARY_IO_H_
