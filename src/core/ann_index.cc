#include "core/ann_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "base/check.h"
#include "base/threadpool.h"
#include "tensor/kernels.h"
#include "tensor/topk.h"

namespace sdea::core {
namespace {

// assignment[i] = the centroid nearest data[i], ties to the lowest j.
// Spherical mode ranks by dot product (rows and centroids unit-length, so
// dot == cosine); Euclidean mode ranks by squared L2 distance via the
// equivalent argmax of (x . c - 0.5*||c||^2), which shares the ScoreDot
// inner loop. Rows are sharded across threads; each row writes only its
// own slot, so the assignment is identical for every thread count.
void AssignToNearestCentroid(const Tensor& data, const Tensor& centroids,
                             bool spherical,
                             std::vector<int64_t>* assignment) {
  const int64_t m = data.dim(0), d = data.dim(1);
  const int64_t c = centroids.dim(0);
  std::vector<float> half_norms;
  if (!spherical) {
    half_norms.resize(static_cast<size_t>(c));
    for (int64_t j = 0; j < c; ++j) {
      const float* crow = centroids.data() + j * d;
      half_norms[static_cast<size_t>(j)] =
          0.5f * tmath::kernels::ScoreDot(crow, crow, d);
    }
  }
  base::ParallelFor(
      m, base::GrainForWork(m, c * d), [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const float* row = data.data() + i * d;
          int64_t best = 0;
          float best_score = spherical
                                 ? -2.0f
                                 : -std::numeric_limits<float>::infinity();
          for (int64_t j = 0; j < c; ++j) {
            float s = tmath::kernels::ScoreDot(row, centroids.data() + j * d,
                                               d);
            if (!spherical) s -= half_norms[static_cast<size_t>(j)];
            if (s > best_score) {
              best_score = s;
              best = j;
            }
          }
          (*assignment)[static_cast<size_t>(i)] = best;
        }
      });
}

}  // namespace

KMeansResult KMeansRows(const Tensor& rows, int64_t k,
                        const KMeansOptions& options) {
  SDEA_CHECK_EQ(rows.rank(), 2);
  const int64_t m = rows.dim(0);
  const int64_t d = rows.dim(1);
  KMeansResult result;
  if (m == 0) {
    result.centroids = Tensor({0, d});
    return result;
  }
  k = std::min(std::max<int64_t>(k, 1), m);

  // k-means++ style init: random distinct rows as seeds.
  Rng rng(options.seed);
  const std::vector<size_t> seeds = rng.SampleWithoutReplacement(
      static_cast<size_t>(m), static_cast<size_t>(k));
  result.centroids = Tensor({k, d});
  for (int64_t i = 0; i < k; ++i) {
    result.centroids.SetRow(
        i, rows.Row(static_cast<int64_t>(seeds[static_cast<size_t>(i)])));
  }

  result.assignment.assign(static_cast<size_t>(m), 0);
  for (int64_t iter = 0; iter < options.iters; ++iter) {
    AssignToNearestCentroid(rows, result.centroids, options.spherical,
                            &result.assignment);
    // Recompute centroids as means (normalized means in spherical mode).
    result.centroids.Zero();
    std::vector<int64_t> counts(static_cast<size_t>(k), 0);
    for (int64_t i = 0; i < m; ++i) {
      const int64_t a = result.assignment[static_cast<size_t>(i)];
      ++counts[static_cast<size_t>(a)];
      float* crow = result.centroids.data() + a * d;
      const float* row = rows.data() + i * d;
      for (int64_t j = 0; j < d; ++j) crow[j] += row[j];
    }
    for (int64_t j = 0; j < k; ++j) {
      const int64_t n_j = counts[static_cast<size_t>(j)];
      if (n_j == 0) {
        // Re-seed an empty cell with a random row.
        result.centroids.SetRow(
            j, rows.Row(static_cast<int64_t>(
                   rng.UniformInt(static_cast<uint64_t>(m)))));
      } else if (!options.spherical) {
        float* crow = result.centroids.data() + j * d;
        const float inv = 1.0f / static_cast<float>(n_j);
        for (int64_t jj = 0; jj < d; ++jj) crow[jj] *= inv;
      }
    }
    if (options.spherical) {
      tmath::L2NormalizeRowsInPlace(&result.centroids);
    }
  }

  // The loop above ends with a centroid update (possibly reseeding empty
  // clusters), so `assignment` describes the *previous* centroids.
  // Re-assign against the final centroids; otherwise callers bucketing by
  // assignment disagree with the returned centroids, and a cluster
  // reseeded on the last iteration would always own an empty bucket.
  AssignToNearestCentroid(rows, result.centroids, options.spherical,
                          &result.assignment);
  return result;
}

IvfIndex::IvfIndex(const Tensor& rows, const IvfOptions& options)
    : options_(options), data_(rows) {
  SDEA_CHECK_EQ(data_.rank(), 2);
  tmath::L2NormalizeRowsInPlace(&data_);
  const int64_t m = data_.dim(0);
  int64_t c = options.num_clusters;
  if (c <= 0) {
    c = std::max<int64_t>(
        1, static_cast<int64_t>(std::sqrt(static_cast<double>(m))));
  }
  c = std::min(c, m);
  if (m == 0) {
    centroids_ = Tensor({0, data_.dim(1)});
    return;
  }

  // Spherical k-means over the normalized rows (cosine == dot). The same
  // machinery trains PQ codebooks in Euclidean mode (store/quantizer.cc).
  KMeansOptions kmeans;
  kmeans.iters = options.kmeans_iters;
  kmeans.seed = options.seed;
  kmeans.spherical = true;
  KMeansResult km = KMeansRows(data_, c, kmeans);
  centroids_ = std::move(km.centroids);
  cells_.assign(static_cast<size_t>(c), {});
  for (int64_t i = 0; i < m; ++i) {
    cells_[static_cast<size_t>(km.assignment[static_cast<size_t>(i)])]
        .push_back(i);
  }
}

std::vector<int64_t> IvfIndex::Query(const float* query, int64_t dim,
                                     int64_t k) const {
  // k <= 0 has nothing to rank; an empty index has nothing to return.
  // Both degrade to "no candidates".
  if (k <= 0 || data_.dim(0) == 0 || centroids_.dim(0) == 0) return {};
  const int64_t d = data_.dim(1);
  SDEA_CHECK_EQ(dim, d);
  const int64_t c = centroids_.dim(0);
  const int64_t probes = std::min<int64_t>(options_.num_probes, c);

  // Rank cells by centroid similarity. TopK's total order breaks score
  // ties by ascending cell index; the old hand-rolled comparator broke
  // ties by score only, so duplicate centroids produced an
  // implementation-defined probe set that differed across platforms/STLs.
  std::vector<float> cell_score(static_cast<size_t>(c));
  tmath::kernels::Gemv(centroids_.data(), c, d, query, cell_score.data());
  const std::vector<int64_t> cell_order =
      tmath::TopK(cell_score.data(), c, probes);

  // Scan the probed cells. Scores are gathered per visited row; ties must
  // still resolve by ascending ROW id (the contract every other top-k site
  // uses), not visit order, hence the tie-id overload.
  std::vector<float> scores;
  std::vector<int64_t> rows;
  for (int64_t cell : cell_order) {
    for (int64_t row : cells_[static_cast<size_t>(cell)]) {
      scores.push_back(
          tmath::kernels::ScoreDot(query, data_.data() + row * d, d));
      rows.push_back(row);
    }
  }
  const std::vector<int64_t> top = tmath::TopKWithTieIds(
      scores.data(), static_cast<int64_t>(scores.size()), k, rows.data());
  std::vector<int64_t> out;
  out.reserve(top.size());
  for (int64_t pos : top) out.push_back(rows[static_cast<size_t>(pos)]);
  return out;
}

std::vector<std::vector<int64_t>> IvfIndex::QueryBatch(const Tensor& queries,
                                                       int64_t k) const {
  if (queries.size() == 0 || k <= 0 || data_.dim(0) == 0) {
    // One empty answer per query row (0 rows for an empty/rank-0 tensor).
    return std::vector<std::vector<int64_t>>(static_cast<size_t>(
        queries.rank() == 2 ? queries.dim(0) : 0));
  }
  Tensor q = queries;
  tmath::L2NormalizeRowsInPlace(&q);
  const int64_t nq = q.dim(0), d = q.dim(1);
  const int64_t c = centroids_.dim(0);
  std::vector<std::vector<int64_t>> out(static_cast<size_t>(nq));
  // Queries are independent (Query is const) and each writes only its own
  // output slot. Estimated per-query work: centroid scan + probed cells.
  const int64_t per_query =
      (c + options_.num_probes * std::max<int64_t>(1, data_.dim(0) / c)) * d;
  base::ParallelFor(nq, base::GrainForWork(nq, per_query),
                    [&](int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        out[static_cast<size_t>(i)] =
                            Query(q.data() + i * d, d, k);
                      }
                    });
  return out;
}

std::vector<std::vector<int64_t>> GenerateCandidatesApprox(
    const Tensor& src, const Tensor& tgt, int64_t k,
    const IvfOptions& options) {
  const IvfIndex index(tgt, options);
  return index.QueryBatch(src, k);
}

}  // namespace sdea::core
