#ifndef SDEA_CORE_ANN_INDEX_H_
#define SDEA_CORE_ANN_INDEX_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "tensor/tensor.h"

namespace sdea::core {

/// Options for the shared k-means machinery underneath IvfIndex cell
/// assignment and store::PqQuantizer codebook training.
struct KMeansOptions {
  int64_t iters = 6;
  uint64_t seed = 47;
  /// Spherical (cosine) k-means: assignment by max dot product, centroids
  /// re-normalized to unit length each round — the IVF configuration,
  /// where rows are L2-normalized and similarity is cosine. When false,
  /// plain Euclidean k-means: assignment by min squared L2 distance,
  /// centroids are un-normalized means — the PQ configuration, where
  /// subvectors carry magnitude that quantization must preserve.
  bool spherical = true;
};

struct KMeansResult {
  Tensor centroids;                 ///< [k, d].
  std::vector<int64_t> assignment;  ///< rows.dim(0) entries in [0, k).
};

/// Lloyd's k-means over the rows of `rows` ([m, d]), deterministic for a
/// fixed seed AND thread count-independent: the assignment pass shards
/// rows across base::ThreadPool with each row writing only its own slot,
/// and every tie (equidistant centroids) breaks toward the lowest centroid
/// index. Seeds are k distinct random rows; a cluster left empty after an
/// update round is re-seeded with a random row. The returned assignment is
/// computed against the FINAL centroids (one extra assignment pass after
/// the last update), so callers can bucket rows without a stale-centroid
/// mismatch. k is clamped to m; m == 0 returns empty.
KMeansResult KMeansRows(const Tensor& rows, int64_t k,
                        const KMeansOptions& options);

/// Options for the inverted-file approximate top-k index.
struct IvfOptions {
  int64_t num_clusters = 0;   ///< 0 = sqrt(N) heuristic.
  int64_t num_probes = 4;     ///< Clusters scanned per query.
  int64_t kmeans_iters = 6;
  uint64_t seed = 47;
};

/// An IVF (inverted file) index over L2-normalized rows for approximate
/// cosine top-k. The exact brute-force GenerateCandidates is O(N*M) per
/// epoch, which dominates at the 100K scale of OpenEA D_W_100K; this index
/// trades a little recall for a num_probes/num_clusters scan fraction.
/// Rows are assigned to k-means cells; queries scan only the closest
/// `num_probes` cells.
class IvfIndex {
 public:
  /// Builds the index over `rows` ([M, d]); rows are L2-normalized
  /// internally.
  IvfIndex(const Tensor& rows, const IvfOptions& options);

  /// Indices of the approximate top-k most cosine-similar rows. Defensive
  /// edges: k <= 0 or an empty index returns an empty vector; k larger
  /// than the number of candidates scanned is clamped. Thread-safe for
  /// concurrent calls (read-only).
  std::vector<int64_t> Query(const float* query, int64_t dim,
                             int64_t k) const;

  /// Convenience over many queries ([N, d]); rows normalized internally.
  /// Same edge handling as Query, applied per row (k <= 0 or an empty
  /// index yields N empty answers).
  std::vector<std::vector<int64_t>> QueryBatch(const Tensor& queries,
                                               int64_t k) const;

  int64_t num_clusters() const { return centroids_.dim(0); }

 private:
  IvfOptions options_;
  Tensor data_;       // Normalized copies of the indexed rows.
  Tensor centroids_;  // [C, d].
  std::vector<std::vector<int64_t>> cells_;
};

/// Drop-in approximate variant of GenerateCandidates (same contract).
std::vector<std::vector<int64_t>> GenerateCandidatesApprox(
    const Tensor& src, const Tensor& tgt, int64_t k,
    const IvfOptions& options = {});

}  // namespace sdea::core

#endif  // SDEA_CORE_ANN_INDEX_H_
