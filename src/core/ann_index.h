#ifndef SDEA_CORE_ANN_INDEX_H_
#define SDEA_CORE_ANN_INDEX_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "tensor/tensor.h"

namespace sdea::core {

/// Options for the inverted-file approximate top-k index.
struct IvfOptions {
  int64_t num_clusters = 0;   ///< 0 = sqrt(N) heuristic.
  int64_t num_probes = 4;     ///< Clusters scanned per query.
  int64_t kmeans_iters = 6;
  uint64_t seed = 47;
};

/// An IVF (inverted file) index over L2-normalized rows for approximate
/// cosine top-k. The exact brute-force GenerateCandidates is O(N*M) per
/// epoch, which dominates at the 100K scale of OpenEA D_W_100K; this index
/// trades a little recall for a num_probes/num_clusters scan fraction.
/// Rows are assigned to k-means cells; queries scan only the closest
/// `num_probes` cells.
class IvfIndex {
 public:
  /// Builds the index over `rows` ([M, d]); rows are L2-normalized
  /// internally.
  IvfIndex(const Tensor& rows, const IvfOptions& options);

  /// Indices of the approximate top-k most cosine-similar rows. Defensive
  /// edges: k <= 0 or an empty index returns an empty vector; k larger
  /// than the number of candidates scanned is clamped. Thread-safe for
  /// concurrent calls (read-only).
  std::vector<int64_t> Query(const float* query, int64_t dim,
                             int64_t k) const;

  /// Convenience over many queries ([N, d]); rows normalized internally.
  /// Same edge handling as Query, applied per row (k <= 0 or an empty
  /// index yields N empty answers).
  std::vector<std::vector<int64_t>> QueryBatch(const Tensor& queries,
                                               int64_t k) const;

  int64_t num_clusters() const { return centroids_.dim(0); }

 private:
  IvfOptions options_;
  Tensor data_;       // Normalized copies of the indexed rows.
  Tensor centroids_;  // [C, d].
  std::vector<std::vector<int64_t>> cells_;
};

/// Drop-in approximate variant of GenerateCandidates (same contract).
std::vector<std::vector<int64_t>> GenerateCandidatesApprox(
    const Tensor& src, const Tensor& tgt, int64_t k,
    const IvfOptions& options = {});

}  // namespace sdea::core

#endif  // SDEA_CORE_ANN_INDEX_H_
