#include "core/stable_matching.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"
#include "base/threadpool.h"
#include "eval/metrics.h"

namespace sdea::core {

std::vector<int64_t> StableMatch(const Tensor& scores) {
  SDEA_CHECK_EQ(scores.rank(), 2);
  const int64_t n = scores.dim(0), m = scores.dim(1);
  // Preference lists for each source (targets by decreasing score). Rows
  // sort independently with a total order (score, then index), so building
  // them in parallel is deterministic; the proposal loop below stays serial.
  std::vector<std::vector<int32_t>> prefs(static_cast<size_t>(n));
  base::ParallelFor(
      n, base::GrainForWork(n, 16 * m), [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          auto& p = prefs[static_cast<size_t>(i)];
          p.resize(static_cast<size_t>(m));
          std::iota(p.begin(), p.end(), 0);
          const float* row = scores.data() + i * m;
          std::sort(p.begin(), p.end(), [row](int32_t a, int32_t b) {
            if (row[a] != row[b]) return row[a] > row[b];
            return a < b;
          });
        }
      });
  std::vector<int64_t> match(static_cast<size_t>(n), -1);
  std::vector<int64_t> target_holder(static_cast<size_t>(m), -1);
  std::vector<size_t> next_proposal(static_cast<size_t>(n), 0);
  std::vector<int64_t> free_sources(static_cast<size_t>(n));
  std::iota(free_sources.begin(), free_sources.end(), 0);
  while (!free_sources.empty()) {
    const int64_t s = free_sources.back();
    auto& cursor = next_proposal[static_cast<size_t>(s)];
    if (cursor >= static_cast<size_t>(m)) {
      free_sources.pop_back();  // Exhausted all targets; stays unmatched.
      continue;
    }
    const int32_t t = prefs[static_cast<size_t>(s)][cursor++];
    const int64_t holder = target_holder[static_cast<size_t>(t)];
    if (holder < 0) {
      target_holder[static_cast<size_t>(t)] = s;
      match[static_cast<size_t>(s)] = t;
      free_sources.pop_back();
    } else {
      // Target keeps the higher-scoring proposer.
      const float cur = scores[holder * m + t];
      const float neu = scores[s * m + t];
      if (neu > cur) {
        target_holder[static_cast<size_t>(t)] = s;
        match[static_cast<size_t>(s)] = t;
        match[static_cast<size_t>(holder)] = -1;
        free_sources.pop_back();
        free_sources.push_back(holder);
      }
    }
  }
  return match;
}

std::vector<int64_t> StableMatchEmbeddings(const Tensor& src,
                                           const Tensor& tgt) {
  Tensor s = src;
  Tensor t = tgt;
  tmath::L2NormalizeRowsInPlace(&s);
  tmath::L2NormalizeRowsInPlace(&t);
  return StableMatch(tmath::MatmulTransposeB(s, t));
}

double MatchingAccuracy(const std::vector<int64_t>& match,
                        const std::vector<int64_t>& gold) {
  SDEA_CHECK_EQ(match.size(), gold.size());
  int64_t total = 0, correct = 0;
  for (size_t i = 0; i < match.size(); ++i) {
    if (gold[i] == eval::kGoldDangling) {
      // A dangling source is a real query: the decision is right exactly
      // when the matcher abstained.
      ++total;
      if (match[i] < 0) ++correct;
      continue;
    }
    if (gold[i] < 0) continue;  // kGoldSkip.
    ++total;
    if (match[i] == gold[i]) ++correct;
  }
  return total == 0 ? 0.0 : 100.0 * correct / total;
}

}  // namespace sdea::core
