#include "core/attribute_embedding.h"

#include "core/attribute_sequencer.h"

namespace sdea::core {

Status AttributeEmbeddingModule::Init(
    const kg::KnowledgeGraph& kg1, const kg::KnowledgeGraph& kg2,
    const AttributeModuleConfig& config,
    const std::vector<std::string>& pretrain_corpus) {
  config_ = config;
  // Algorithm 1: one attribute order per KG, sequences for every entity.
  const AttributeSequencer seq1(&kg1, config.order_seed_kg1);
  const AttributeSequencer seq2(&kg2, config.order_seed_kg2);
  SDEA_RETURN_IF_ERROR(encoder_.Init(seq1.AllSequences(), seq2.AllSequences(),
                                     config.text, pretrain_corpus));
  AddSubmodule(&encoder_);
  return Status::Ok();
}

}  // namespace sdea::core
