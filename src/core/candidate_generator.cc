#include "core/candidate_generator.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace sdea::core {

std::vector<std::vector<int64_t>> GenerateCandidates(const Tensor& src,
                                                     const Tensor& tgt,
                                                     int64_t k) {
  SDEA_CHECK_EQ(src.rank(), 2);
  SDEA_CHECK_EQ(tgt.rank(), 2);
  SDEA_CHECK_EQ(src.dim(1), tgt.dim(1));
  SDEA_CHECK_GT(k, 0);
  Tensor s = src;
  Tensor t = tgt;
  tmath::L2NormalizeRowsInPlace(&s);
  tmath::L2NormalizeRowsInPlace(&t);
  const int64_t n = s.dim(0), m = t.dim(0);
  const int64_t kk = std::min(k, m);
  std::vector<std::vector<int64_t>> out(static_cast<size_t>(n));
  // Row-at-a-time scoring keeps the working set at O(m).
  std::vector<float> scores(static_cast<size_t>(m));
  std::vector<int64_t> idx(static_cast<size_t>(m));
  for (int64_t i = 0; i < n; ++i) {
    const float* srow = s.data() + i * s.dim(1);
    for (int64_t j = 0; j < m; ++j) {
      const float* trow = t.data() + j * t.dim(1);
      double dot = 0.0;
      for (int64_t d = 0; d < s.dim(1); ++d) dot += srow[d] * trow[d];
      scores[static_cast<size_t>(j)] = static_cast<float>(dot);
    }
    std::iota(idx.begin(), idx.end(), 0);
    std::partial_sort(idx.begin(), idx.begin() + kk, idx.end(),
                      [&](int64_t a, int64_t b) {
                        const float sa = scores[static_cast<size_t>(a)];
                        const float sb = scores[static_cast<size_t>(b)];
                        if (sa != sb) return sa > sb;
                        return a < b;
                      });
    out[static_cast<size_t>(i)].assign(idx.begin(), idx.begin() + kk);
  }
  return out;
}

}  // namespace sdea::core
