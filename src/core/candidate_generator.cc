#include "core/candidate_generator.h"

#include <algorithm>

#include "base/check.h"
#include "tensor/kernels.h"
#include "tensor/topk.h"

namespace sdea::core {

std::vector<std::vector<int64_t>> GenerateCandidates(const Tensor& src,
                                                     const Tensor& tgt,
                                                     int64_t k) {
  SDEA_CHECK_EQ(src.rank(), 2);
  SDEA_CHECK_EQ(tgt.rank(), 2);
  SDEA_CHECK_EQ(src.dim(1), tgt.dim(1));
  SDEA_CHECK_GT(k, 0);
  Tensor s = src;
  Tensor t = tgt;
  tmath::L2NormalizeRowsInPlace(&s);
  tmath::L2NormalizeRowsInPlace(&t);
  const int64_t n = s.dim(0), m = t.dim(0);
  std::vector<std::vector<int64_t>> out(static_cast<size_t>(n));
  // Row-at-a-time scoring keeps the working set at O(m). Scoring goes
  // through kernels::Gemv so the accumulation contract matches
  // MatmulTransposeB exactly in either kernel mode; the old hand-rolled
  // loop multiplied float*float before widening to double, which could
  // rank near-tie candidates differently here than in the pipeline's
  // score-matrix path.
  std::vector<float> scores(static_cast<size_t>(m));
  for (int64_t i = 0; i < n; ++i) {
    const float* srow = s.data() + i * s.dim(1);
    tmath::kernels::Gemv(t.data(), m, t.dim(1), srow, scores.data());
    out[static_cast<size_t>(i)] = tmath::TopK(scores.data(), m, k);
  }
  return out;
}

}  // namespace sdea::core
