#ifndef SDEA_CORE_STABLE_MATCHING_H_
#define SDEA_CORE_STABLE_MATCHING_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sdea::core {

/// Gale–Shapley stable matching over a similarity matrix [N, M] (higher is
/// better). Sources propose in decreasing preference; targets hold their
/// best proposal. Returns match[i] = matched target for source i, or -1 if
/// unmatched (when N > M). This is the post-processing step the paper
/// borrows from CEA to boost 1-1 Hits@1 (Section V-B1).
std::vector<int64_t> StableMatch(const Tensor& scores);

/// Convenience: stable matching over cosine similarities of two embedding
/// matrices.
std::vector<int64_t> StableMatchEmbeddings(const Tensor& src,
                                           const Tensor& tgt);

/// Hits@1 (%) of a matching against gold (gold[i] = true target of source
/// i, or -1 to skip).
double MatchingAccuracy(const std::vector<int64_t>& match,
                        const std::vector<int64_t>& gold);

}  // namespace sdea::core

#endif  // SDEA_CORE_STABLE_MATCHING_H_
