#ifndef SDEA_CORE_STABLE_MATCHING_H_
#define SDEA_CORE_STABLE_MATCHING_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sdea::core {

/// The unmatched sentinel StableMatch (and every decision layer above it)
/// emits: match[i] = kUnmatched means source i ends the run without a
/// target — either N > M exhausted the targets, or a no-match threshold
/// rejected its best candidate. Consumers must never index a target-side
/// array with a match entry before checking it against this.
inline constexpr int64_t kUnmatched = -1;

/// Gale–Shapley stable matching over a similarity matrix [N, M] (higher is
/// better). Sources propose in decreasing preference; targets hold their
/// best proposal. Returns match[i] = matched target for source i, or
/// kUnmatched (when N > M). This is the post-processing step the paper
/// borrows from CEA to boost 1-1 Hits@1 (Section V-B1).
std::vector<int64_t> StableMatch(const Tensor& scores);

/// Convenience: stable matching over cosine similarities of two embedding
/// matrices.
std::vector<int64_t> StableMatchEmbeddings(const Tensor& src,
                                           const Tensor& tgt);

/// Hits@1 (%) of a matching against gold. gold[i] follows the eval
/// sentinel semantics: a target index (correct iff match[i] equals it),
/// eval::kGoldSkip (-1, excluded from the denominator), or
/// eval::kGoldDangling (-2, a counted query whose correct answer is any
/// unmatched/abstain entry). Dangling gold is NOT conflated with skip: a
/// forced match on a dangling source scores as wrong.
double MatchingAccuracy(const std::vector<int64_t>& match,
                        const std::vector<int64_t>& gold);

}  // namespace sdea::core

#endif  // SDEA_CORE_STABLE_MATCHING_H_
