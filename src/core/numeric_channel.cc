#include "core/numeric_channel.h"

#include <cmath>
#include <cstdlib>

#include "base/check.h"
#include "base/strings.h"

namespace sdea::core {

bool ParseNumeric(std::string_view text, double* value) {
  const std::string_view trimmed = Trim(text);
  if (!LooksNumeric(trimmed)) return false;
  *value = std::strtod(std::string(trimmed).c_str(), nullptr);
  return true;
}

void EmbedNumber(double value, float* out) {
  // Layout (16 dims):
  //   [0]      sign
  //   [1]      squashed log-magnitude
  //   [2..11]  soft one-hot over integer log10 magnitude bins 0..9
  //   [12..14] leading digits (first three, /9)
  //   [15]     has-fraction flag
  const double magnitude = std::fabs(value);
  out[0] = value < 0 ? -1.0f : 1.0f;
  const double log_mag = std::log10(magnitude + 1.0);
  out[1] = static_cast<float>(std::tanh(log_mag / 5.0));
  for (int i = 0; i < 10; ++i) {
    // Triangular kernel around the magnitude bin: numbers one order of
    // magnitude apart overlap, two apart do not.
    const double dist = std::fabs(log_mag - i);
    out[2 + i] = static_cast<float>(std::max(0.0, 1.0 - dist));
  }
  // Leading digits of the integer part.
  int64_t integral = static_cast<int64_t>(magnitude);
  std::string digits = std::to_string(integral);
  for (int i = 0; i < 3; ++i) {
    out[12 + i] =
        (i < static_cast<int>(digits.size()))
            ? static_cast<float>(digits[static_cast<size_t>(i)] - '0') / 9.0f
            : 0.0f;
  }
  out[15] = (magnitude != std::floor(magnitude)) ? 1.0f : 0.0f;
}

Tensor ComputeNumericFeatures(const kg::KnowledgeGraph& graph) {
  const kg::KgSnapshot snap = graph.Snapshot();
  const int64_t n = snap.num_entities();
  Tensor out({n, kNumericFeatureDim});
  std::vector<int64_t> counts(static_cast<size_t>(n), 0);
  float buf[kNumericFeatureDim];
  snap.ForEachAttribute([&](int64_t /*row*/, kg::EntityId entity,
                            kg::AttributeId /*a*/, const std::string& text) {
    double value = 0.0;
    if (!ParseNumeric(text, &value)) return;
    EmbedNumber(value, buf);
    float* row = out.data() + entity * kNumericFeatureDim;
    for (int64_t j = 0; j < kNumericFeatureDim; ++j) row[j] += buf[j];
    ++counts[static_cast<size_t>(entity)];
  });
  for (int64_t e = 0; e < n; ++e) {
    if (counts[static_cast<size_t>(e)] == 0) continue;
    const float inv = 1.0f / static_cast<float>(counts[static_cast<size_t>(e)]);
    float* row = out.data() + e * kNumericFeatureDim;
    for (int64_t j = 0; j < kNumericFeatureDim; ++j) row[j] *= inv;
  }
  tmath::L2NormalizeRowsInPlace(&out);
  return out;
}

Tensor ConcatNumericChannel(const Tensor& base, const Tensor& numeric,
                            float weight) {
  SDEA_CHECK_EQ(base.dim(0), numeric.dim(0));
  const int64_t n = base.dim(0);
  const int64_t d = base.dim(1);
  const int64_t f = numeric.dim(1);
  Tensor out({n, d + f});
  for (int64_t i = 0; i < n; ++i) {
    float* row = out.data() + i * (d + f);
    std::copy(base.data() + i * d, base.data() + (i + 1) * d, row);
    const float* nrow = numeric.data() + i * f;
    for (int64_t j = 0; j < f; ++j) row[d + j] = weight * nrow[j];
  }
  return out;
}

}  // namespace sdea::core
