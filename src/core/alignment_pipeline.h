#ifndef SDEA_CORE_ALIGNMENT_PIPELINE_H_
#define SDEA_CORE_ALIGNMENT_PIPELINE_H_

#include <vector>

#include "core/sdea.h"
#include "eval/abstention.h"

namespace sdea::core {

/// End-to-end pipeline options: the model plus the decision layer that
/// turns embeddings into an accepted alignment.
struct PipelineConfig {
  SdeaConfig model;
  /// Resolve contention with Gale–Shapley (1-1 alignment); false keeps
  /// greedy per-source argmax (allows N-1 matches, per Definition 2 the
  /// paper does not assume 1-1).
  bool use_stable_matching = true;
  /// Matches below this cosine similarity are rejected (keeps
  /// KB-exclusive entities unmatched). Ignored when a calibrated
  /// threshold is active (see below).
  float min_similarity = 0.5f;
  /// Fit an abstain threshold on the dev (seeds.valid) similarity rows
  /// instead of using the fixed min_similarity. The dev split carries no
  /// dangling labels, so calibration uses the keep-fraction fallback rule
  /// (see eval::CalibrationOptions); callers with labeled dangling dev
  /// sources should calibrate themselves and set `threshold` directly.
  bool calibrate_threshold = false;
  /// An externally calibrated no-match rule. When enabled it takes
  /// precedence over both min_similarity and calibrate_threshold — this is
  /// how a threshold fit on dangling-labeled dev data (e.g. from
  /// datagen's adversarial scenarios) is injected.
  eval::AbstainThreshold threshold;
};

/// One accepted alignment decision.
struct AlignedPair {
  kg::EntityId source;
  kg::EntityId target;
  float similarity;
};

/// Everything a caller needs from a pipeline run.
struct AlignmentResult {
  std::vector<AlignedPair> pairs;     ///< Accepted matches, by source id.
  /// The full decision vector: decisions[i] = accepted target of KG1
  /// entity i, or kUnmatched. Safe to feed to kg::MergeKnowledgeBases and
  /// eval::EvaluateDecisions as-is.
  std::vector<int64_t> decisions;
  eval::RankingMetrics test_metrics;  ///< Ranking quality on seeds.test.
  double matching_accuracy = 0.0;     ///< Hits@1 of the decisions on test.
  /// Decision-level precision/recall/F1 of `decisions` on seeds.test
  /// (matchable queries only here; dangling-aware evaluation needs the
  /// caller's dangling labels — see eval::EvaluateDecisions).
  eval::DecisionMetrics decision_metrics;
  /// The no-match rule the decision layer actually applied: the injected
  /// config.threshold, the dev-calibrated one, or the fixed
  /// min_similarity floor represented as an absolute-only threshold.
  eval::AbstainThreshold threshold;
  SdeaFitReport fit_report;
};

/// The "use SDEA as a product" facade: fit, decide, and score in one call.
/// Wraps SdeaModel + StableMatch + thresholding; the fitted model remains
/// accessible for custom queries.
class AlignmentPipeline {
 public:
  AlignmentPipeline() = default;

  /// Trains on the KG pair and produces the accepted alignment.
  Result<AlignmentResult> Run(const kg::KnowledgeGraph& kg1,
                              const kg::KnowledgeGraph& kg2,
                              const kg::AlignmentSeeds& seeds,
                              const PipelineConfig& config,
                              const std::vector<std::string>&
                                  pretrain_corpus = {});

  /// The underlying model (valid after a successful Run).
  const SdeaModel& model() const { return model_; }

  /// Top-k candidate targets with cosine scores for one source entity
  /// (valid after Run).
  std::vector<AlignedPair> TopTargets(kg::EntityId source, int64_t k) const;

 private:
  SdeaModel model_;
  bool ran_ = false;
};

}  // namespace sdea::core

#endif  // SDEA_CORE_ALIGNMENT_PIPELINE_H_
