#ifndef SDEA_CORE_TEXT_ALIGNMENT_ENCODER_H_
#define SDEA_CORE_TEXT_ALIGNMENT_ENCODER_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/train_report.h"
#include "kg/knowledge_graph.h"
#include "nn/layers.h"
#include "nn/transformer.h"
#include "text/pretrain.h"
#include "text/tokenizer.h"
#include "train/checkpoint.h"

namespace sdea::core {

/// How the encoded sequence is pooled into one vector. The paper takes the
/// [CLS] state of BERT (Eq. 6); with a from-scratch encoder, mean pooling
/// is the faithful functional substitute (a pre-trained BERT's [CLS] is
/// meaningful, a randomly-initialized one is not) and is the default.
enum class SequencePooling { kCls, kMean };

/// Hyper-parameters for fine-tuning a transformer text encoder with the
/// margin ranking loss of Eq. (18) and candidate-based negative sampling
/// (the inner loop of Algorithm 2).
struct TextEncoderConfig {
  /// Encoder architecture (vocab_size is filled in by Init).
  nn::TransformerConfig encoder = {.vocab_size = 0,
                                   .max_len = 48,
                                   .dim = 32,
                                   .num_heads = 4,
                                   .num_layers = 2,
                                   .ff_dim = 64,
                                   .dropout = 0.1f};
  int64_t out_dim = 32;  ///< Output embedding width after the MLP.
  SequencePooling pooling = SequencePooling::kMean;

  text::TokenizerConfig tokenizer;
  text::PretrainConfig pretrain;
  bool use_pretrained_embeddings = true;

  float margin = 1.0f;
  float lr = 1e-3f;
  float grad_clip = 5.0f;
  /// Input-token dropout during fine-tuning. Prevents the encoder from
  /// satisfying the margin by memorizing entity-unique tokens of the seed
  /// pairs, which would generalize nothing to test entities.
  float train_token_dropout = 0.2f;
  int64_t batch_size = 8;
  int64_t max_epochs = 30;
  int64_t patience = 5;
  int64_t num_candidates = 10;
  /// Training triplets generated per seed pair per epoch (the paper samples
  /// one; more increases steps/epoch, which matters at reduced data scale).
  int64_t negatives_per_pair = 1;

  /// Self-supervised encoder pre-training (the second half of the
  /// pre-trained-LM substitution, see DESIGN.md §1): before fine-tuning,
  /// the transformer is trained contrastively so that two token-dropout
  /// views of the same entity text embed close and different entities far.
  /// No alignment labels are used.
  int64_t ssl_epochs = 3;
  int64_t ssl_batch = 16;
  float ssl_token_dropout = 0.2f;
  int64_t ssl_max_texts = 2000;  ///< Sampled texts per side per epoch cap.

  uint64_t seed = 5;
};

/// A generic "encode one text per entity, fine-tune for alignment" model:
/// the shared engine behind SDEA's attribute embedding module (texts =
/// Algorithm 1 attribute sequences) and the BERT-INT-lite baseline (texts =
/// entity names). Trains a subword tokenizer on the union corpus,
/// pre-trains token embeddings (the pre-trained-LM substitute, DESIGN.md
/// §1), then fine-tunes per Algorithm 2.
class TextAlignmentEncoder : public nn::Module {
 public:
  TextAlignmentEncoder() = default;

  /// `texts1[i]` / `texts2[j]` are the input texts of entity i / j of each
  /// side; `extra_corpus` is additional text (e.g. the generator's
  /// comparable corpus) used for tokenizer training and token-embedding
  /// pre-training only. Must be called once before any other method.
  Status Init(const std::vector<std::string>& texts1,
              const std::vector<std::string>& texts2,
              const TextEncoderConfig& config,
              const std::vector<std::string>& extra_corpus = {});

  /// Encodes entity `e` of `side` (1 or 2) into a [1, out_dim]
  /// L2-normalized node.
  NodeId EncodeEntity(Graph* g, int side, kg::EntityId e, bool training,
                      Rng* rng) const;

  /// Embeddings of every entity of `side` as [N, out_dim] (inference mode).
  Tensor ComputeAllEmbeddings(int side) const;

  /// Algorithm 2 fine-tuning with early stopping on validation Hits@1;
  /// restores the best checkpoint before returning. Runs the
  /// self-supervised stage first (if ssl_epochs > 0). The fine-tuning loop
  /// runs on train::Trainer; pass a CheckpointManager to save the run
  /// periodically and resume it (bitwise-identically) after a kill. Note
  /// the SSL stage runs before the Trainer and is repeated on resume, which
  /// is harmless: its RNG is independent and the resumed Trainer overwrites
  /// all parameters from the checkpoint.
  Result<TrainReport> Pretrain(const kg::AlignmentSeeds& seeds,
                               train::CheckpointManager* checkpoint = nullptr);

  /// The label-free contrastive encoder pre-training stage; public so the
  /// ablation bench can invoke/skip it independently.
  void SelfSupervisedPretrain();

  const TextEncoderConfig& config() const { return config_; }
  const text::SubwordTokenizer& tokenizer() const { return tokenizer_; }
  int64_t num_entities(int side) const;
  const std::vector<int64_t>& token_ids(int side, kg::EntityId e) const;

 private:
  TextEncoderConfig config_;
  text::SubwordTokenizer tokenizer_;
  std::unique_ptr<nn::TransformerEncoder> encoder_;
  std::unique_ptr<nn::Mlp> output_mlp_;
  std::vector<std::vector<std::vector<int64_t>>> token_ids_;
  bool initialized_ = false;
};

}  // namespace sdea::core

#endif  // SDEA_CORE_TEXT_ALIGNMENT_ENCODER_H_
