#ifndef SDEA_CORE_CANDIDATE_GENERATOR_H_
#define SDEA_CORE_CANDIDATE_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sdea::core {

/// GenCandidates (Algorithms 2 & 3): for each source embedding row, the
/// indices of the top-k most cosine-similar target rows. Used both for
/// negative sampling during training and as a retrieval blocking step.
/// Exact brute-force search; the interface admits an ANN drop-in.
std::vector<std::vector<int64_t>> GenerateCandidates(const Tensor& src,
                                                     const Tensor& tgt,
                                                     int64_t k);

}  // namespace sdea::core

#endif  // SDEA_CORE_CANDIDATE_GENERATOR_H_
