#include "core/relation_embedding.h"

#include <algorithm>

#include "base/logging.h"
#include "base/strings.h"
#include "core/candidate_generator.h"
#include "eval/metrics.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "train/trainer.h"

namespace sdea::core {
namespace {

// Caps an entity's neighbor list deterministically: the first
// `max_neighbors` edges in insertion order (the generator and real TSV
// loads both preserve source order). Reads the pinned snapshot's sealed
// chunk indexes instead of a materialized adjacency list.
std::vector<kg::EntityId> CapNeighbors(const kg::KgSnapshot& snap,
                                       kg::EntityId e, int64_t cap) {
  std::vector<kg::EntityId> out;
  for (const kg::NeighborEdge& edge : snap.NeighborsOf(e)) {
    out.push_back(edge.neighbor);
    if (static_cast<int64_t>(out.size()) >= cap) break;
  }
  if (out.empty()) out.push_back(e);  // Zero-neighbor fallback: self.
  return out;
}

}  // namespace

Status RelationEmbeddingModule::Init(const kg::KnowledgeGraph& kg1,
                                     const kg::KnowledgeGraph& kg2,
                                     int64_t attr_dim,
                                     const RelationModuleConfig& config) {
  if (initialized_) {
    return Status::FailedPrecondition("module already initialized");
  }
  if (attr_dim <= 0) return Status::InvalidArgument("attr_dim must be > 0");
  config_ = config;
  attr_dim_ = attr_dim;

  Rng rng(config.seed);
  bigru_ = std::make_unique<nn::BiGru>("rel.bigru", attr_dim,
                                       config.hidden_dim, &rng);
  projection_ = std::make_unique<nn::Linear>("rel.proj", attr_dim,
                                             config.hidden_dim, &rng);
  attention_mlp_ = std::make_unique<nn::Mlp>(
      "rel.attn",
      std::vector<int64_t>{config.hidden_dim, config.hidden_dim},
      nn::Activation::kRelu, &rng);
  joint_mlp_ = std::make_unique<nn::Mlp>(
      "rel.joint",
      std::vector<int64_t>{attr_dim + config.hidden_dim, config.joint_dim},
      nn::Activation::kRelu, &rng);
  AddSubmodule(bigru_.get());
  AddSubmodule(projection_.get());
  AddSubmodule(attention_mlp_.get());
  AddSubmodule(joint_mlp_.get());

  const kg::KgSnapshot snap1 = kg1.Snapshot();
  const kg::KgSnapshot snap2 = kg2.Snapshot();
  neighbors_.resize(2);
  neighbors_[0].reserve(static_cast<size_t>(snap1.num_entities()));
  for (kg::EntityId e = 0; e < snap1.num_entities(); ++e) {
    neighbors_[0].push_back(CapNeighbors(snap1, e, config.max_neighbors));
  }
  neighbors_[1].reserve(static_cast<size_t>(snap2.num_entities()));
  for (kg::EntityId e = 0; e < snap2.num_entities(); ++e) {
    neighbors_[1].push_back(CapNeighbors(snap2, e, config.max_neighbors));
  }
  initialized_ = true;
  return Status::Ok();
}

const std::vector<kg::EntityId>& RelationEmbeddingModule::neighbor_list(
    int side, kg::EntityId e) const {
  SDEA_CHECK(side == 1 || side == 2);
  const auto& per_side = neighbors_[static_cast<size_t>(side - 1)];
  SDEA_CHECK(e >= 0 && static_cast<size_t>(e) < per_side.size());
  return per_side[static_cast<size_t>(e)];
}

void RelationEmbeddingModule::ForwardEntity(Graph* g, int side,
                                            kg::EntityId e,
                                            const Tensor& ha_side,
                                            NodeId* hr_out,
                                            NodeId* hm_out) const {
  SDEA_CHECK(initialized_);
  SDEA_CHECK_EQ(ha_side.dim(1), attr_dim_);
  const std::vector<kg::EntityId>& nbrs = neighbor_list(side, e);
  const int64_t t_len = static_cast<int64_t>(nbrs.size());

  // x_t: the attribute embeddings of the neighbors, as frozen constants —
  // Algorithm 3 updates RelModule and the MLPs only.
  Tensor x({t_len, attr_dim_});
  for (int64_t t = 0; t < t_len; ++t) {
    x.SetRow(t, ha_side.Row(nbrs[static_cast<size_t>(t)]));
  }
  NodeId inputs = g->Input(std::move(x));

  NodeId hidden = -1;  // [T, hidden_dim]
  switch (config_.aggregation) {
    case NeighborAggregation::kBiGruAttention:
      hidden = bigru_->Forward(g, inputs);
      break;
    case NeighborAggregation::kMeanPooling:
    case NeighborAggregation::kAttentionOnly:
      hidden = g->Tanh(projection_->Forward(g, inputs));
      break;
  }

  NodeId hr;
  if (config_.aggregation == NeighborAggregation::kMeanPooling) {
    hr = g->MeanRows(hidden);
  } else {
    // Eq. 12: global attention representation from the last hidden state.
    NodeId h_n = g->SliceRows(hidden, t_len - 1, t_len);
    NodeId h_hat = attention_mlp_->Forward(g, h_n);  // [1, hid]
    // Eqs. 13-14: inner-product scores, softmax over neighbors.
    NodeId scores = g->Matmul(h_hat, g->Transpose(hidden));  // [1, T]
    NodeId alpha = g->SoftmaxRows(scores);
    // Eq. 15: weighted sum of the neighbor states.
    hr = g->Matmul(alpha, hidden);  // [1, hid]
  }
  hr = g->L2NormalizeRows(hr);

  // Eq. 16: joint representation from the entity's own Ha and Hr.
  Tensor ha_row({1, attr_dim_});
  ha_row.SetRow(0, ha_side.Row(e));
  NodeId ha_node = g->Input(std::move(ha_row));
  NodeId hm = joint_mlp_->Forward(g, g->ConcatCols(ha_node, hr));
  hm = g->L2NormalizeRows(hm);

  *hr_out = hr;
  *hm_out = hm;
}

int64_t RelationEmbeddingModule::entity_embedding_dim() const {
  return config_.hidden_dim + attr_dim_ + config_.joint_dim;
}

Tensor RelationEmbeddingModule::ComputeEntityEmbeddings(
    int side, const Tensor& ha_side) const {
  SDEA_CHECK(initialized_);
  const int64_t n = static_cast<int64_t>(
      neighbors_[static_cast<size_t>(side - 1)].size());
  SDEA_CHECK_EQ(ha_side.dim(0), n);
  Tensor out({n, entity_embedding_dim()});
  for (kg::EntityId e = 0; e < n; ++e) {
    Graph g;
    NodeId hr, hm;
    ForwardEntity(&g, side, e, ha_side, &hr, &hm);
    const Tensor& hr_v = g.Value(hr);
    const Tensor& hm_v = g.Value(hm);
    // Ha block L2-normalized like the others (Eq. 17 concatenation).
    Tensor ha_row({1, attr_dim_});
    ha_row.SetRow(0, ha_side.Row(e));
    tmath::L2NormalizeRowsInPlace(&ha_row);
    float* row = out.data() + e * entity_embedding_dim();
    std::copy(hr_v.data(), hr_v.data() + config_.hidden_dim, row);
    std::copy(ha_row.data(), ha_row.data() + attr_dim_,
              row + config_.hidden_dim);
    std::copy(hm_v.data(), hm_v.data() + config_.joint_dim,
              row + config_.hidden_dim + attr_dim_);
  }
  return out;
}

namespace {

/// Algorithm 3 as a train::TrainTask: each batch builds one autograd graph
/// of [Hr; Hm] triplets with candidate-based negatives; each epoch
/// validates Hits@1 on the full Eq. 17 embeddings (line 12).
class RelationTrainTask : public train::TrainTask {
 public:
  RelationTrainTask(RelationEmbeddingModule* module, nn::Adam* optimizer,
                    const Tensor* ha1, const Tensor* ha2,
                    const kg::AlignmentSeeds* seeds,
                    const std::vector<std::vector<int64_t>>* candidates,
                    Rng* rng)
      : module_(module),
        optimizer_(optimizer),
        ha1_(ha1),
        ha2_(ha2),
        seeds_(seeds),
        candidates_(candidates),
        rng_(rng) {}

  size_t num_examples() const override { return seeds_->train.size(); }
  Rng* rng() override { return rng_; }
  nn::Module* module() override { return module_; }
  nn::Optimizer* optimizer() override { return optimizer_; }

  float TrainBatch(const uint64_t* ids, size_t n) override {
    const RelationModuleConfig& config = module_->config();
    Graph g;
    NodeId anchors = -1, positives = -1, negatives = -1;
    for (size_t i = 0; i < n; ++i) {
      const auto& [e1, e2] = seeds_->train[ids[i]];
      const auto& cand = (*candidates_)[static_cast<size_t>(e1)];
      kg::EntityId neg = kg::kInvalidEntity;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const kg::EntityId c = static_cast<kg::EntityId>(
            cand[rng_->UniformInt(cand.size())]);
        if (c != e2) {
          neg = c;
          break;
        }
      }
      if (neg == kg::kInvalidEntity) {
        neg = static_cast<kg::EntityId>(
            rng_->UniformInt(static_cast<uint64_t>(ha2_->dim(0))));
        if (neg == e2) neg = (neg + 1) % static_cast<kg::EntityId>(
                                 ha2_->dim(0));
      }
      // Lines 5-8: relation and joint embeddings for anchor/pos/neg.
      NodeId hr_a, hm_a, hr_p, hm_p, hr_n, hm_n;
      module_->ForwardEntity(&g, 1, e1, *ha1_, &hr_a, &hm_a);
      module_->ForwardEntity(&g, 2, e2, *ha2_, &hr_p, &hm_p);
      module_->ForwardEntity(&g, 2, neg, *ha2_, &hr_n, &hm_n);
      // Line 9: the loss embedding is the concatenation [Hr; Hm].
      NodeId a = g.ConcatCols(hr_a, hm_a);
      NodeId p = g.ConcatCols(hr_p, hm_p);
      NodeId q = g.ConcatCols(hr_n, hm_n);
      anchors = (anchors < 0) ? a : g.ConcatRows(anchors, a);
      positives = (positives < 0) ? p : g.ConcatRows(positives, p);
      negatives = (negatives < 0) ? q : g.ConcatRows(negatives, q);
    }
    NodeId loss = nn::MarginRankingLoss(&g, anchors, positives, negatives,
                                        config.margin);
    optimizer_->ZeroGrad();
    g.Backward(loss);
    optimizer_->ClipGradNorm(config.grad_clip);
    optimizer_->Step();
    return g.Value(loss).data()[0];
  }

  // Line 12: validate on the final entity embedding (Eq. 17).
  double EvalMetric() override {
    const Tensor ent1 = module_->ComputeEntityEmbeddings(1, *ha1_);
    const Tensor ent2 = module_->ComputeEntityEmbeddings(2, *ha2_);
    Tensor valid_src({static_cast<int64_t>(seeds_->valid.size()),
                      module_->entity_embedding_dim()});
    std::vector<int64_t> gold;
    gold.reserve(seeds_->valid.size());
    for (size_t i = 0; i < seeds_->valid.size(); ++i) {
      valid_src.SetRow(static_cast<int64_t>(i),
                       ent1.Row(seeds_->valid[i].first));
      gold.push_back(seeds_->valid[i].second);
    }
    const eval::RankingMetrics metrics =
        seeds_->valid.empty()
            ? eval::RankingMetrics{}
            : eval::EvaluateAlignment(valid_src, ent2, gold);
    return metrics.hits_at_1;
  }

 private:
  RelationEmbeddingModule* module_;
  nn::Adam* optimizer_;
  const Tensor* ha1_;
  const Tensor* ha2_;
  const kg::AlignmentSeeds* seeds_;
  const std::vector<std::vector<int64_t>>* candidates_;
  Rng* rng_;
};

}  // namespace

Result<TrainReport> RelationEmbeddingModule::Train(
    const Tensor& ha1, const Tensor& ha2, const kg::AlignmentSeeds& seeds,
    train::CheckpointManager* checkpoint) {
  if (!initialized_) {
    return Status::FailedPrecondition("call Init() before Train()");
  }
  if (seeds.train.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  Rng rng(config_.seed ^ 0x5ca1ab1eULL);
  nn::Adam optimizer(Parameters(), config_.lr);

  // Line 1: candidates from the pre-trained attribute embeddings, fixed for
  // the whole run.
  const auto candidates =
      GenerateCandidates(ha1, ha2, config_.num_candidates);

  RelationTrainTask task(this, &optimizer, &ha1, &ha2, &seeds, &candidates,
                         &rng);
  train::TrainerOptions options;
  options.max_epochs = config_.max_epochs;
  options.batch_size = config_.batch_size;
  options.shuffle = train::TrainerOptions::Shuffle::kCumulative;
  options.evaluate = true;
  options.patience = config_.patience;
  options.restore_best = true;
  options.checkpoint = checkpoint;
  options.on_epoch = [](const train::EpochStats& es) {
    SDEA_LOG_DEBUG(StrFormat("rel epoch %lld valid H@1=%.2f",
                             static_cast<long long>(es.epoch),
                             es.eval_metric));
    return true;
  };
  train::Trainer trainer(&task, options);
  auto stats = trainer.Run();
  if (!stats.ok()) return stats.status();

  TrainReport report;
  report.epochs_run = trainer.epochs_run();
  report.best_valid_hits1 = trainer.best_metric();
  report.valid_hits1_history = trainer.metric_history();
  return report;
}

}  // namespace sdea::core
