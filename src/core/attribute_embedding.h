#ifndef SDEA_CORE_ATTRIBUTE_EMBEDDING_H_
#define SDEA_CORE_ATTRIBUTE_EMBEDDING_H_

#include <vector>

#include "base/status.h"
#include "core/text_alignment_encoder.h"
#include "core/train_report.h"
#include "kg/knowledge_graph.h"

namespace sdea::core {

/// Hyper-parameters of the attribute embedding module (Section III-A and
/// Algorithm 2): the shared text-encoder settings plus the per-KG attribute
/// order seeds of Algorithm 1.
struct AttributeModuleConfig {
  TextEncoderConfig text;
  uint64_t order_seed_kg1 = 91;
  uint64_t order_seed_kg2 = 92;
};

/// The attribute embedding module: transforms each entity's attribute
/// values into a sequence with a fixed random attribute order (Algorithm
/// 1), then encodes and fine-tunes it with the shared transformer engine
/// (Eqs. 5-7, Algorithm 2). Pre-trained separately from the relation module
/// exactly as the paper prescribes (Section IV-A).
class AttributeEmbeddingModule : public nn::Module {
 public:
  AttributeEmbeddingModule() = default;

  /// Builds Algorithm-1 sequences for both KGs and initializes the encoder
  /// (tokenizer training + token-embedding pre-training included).
  /// `pretrain_corpus` is extra LM-pre-training text (see
  /// GeneratedBenchmark::pretrain_corpus).
  Status Init(const kg::KnowledgeGraph& kg1, const kg::KnowledgeGraph& kg2,
              const AttributeModuleConfig& config,
              const std::vector<std::string>& pretrain_corpus = {});

  /// Ha(e) as a [1, out_dim] L2-normalized node.
  NodeId EncodeEntity(Graph* g, int side, kg::EntityId e, bool training,
                      Rng* rng) const {
    return encoder_.EncodeEntity(g, side, e, training, rng);
  }

  /// Ha for every entity of `side` as [N, out_dim].
  Tensor ComputeAllEmbeddings(int side) const {
    return encoder_.ComputeAllEmbeddings(side);
  }

  /// Algorithm 2 pre-training. An optional CheckpointManager enables
  /// periodic save + bitwise-identical resume (see TextAlignmentEncoder).
  Result<TrainReport> Pretrain(const kg::AlignmentSeeds& seeds,
                               train::CheckpointManager* checkpoint = nullptr) {
    return encoder_.Pretrain(seeds, checkpoint);
  }

  const AttributeModuleConfig& config() const { return config_; }
  const text::SubwordTokenizer& tokenizer() const {
    return encoder_.tokenizer();
  }
  int64_t num_entities(int side) const { return encoder_.num_entities(side); }
  const std::vector<int64_t>& token_ids(int side, kg::EntityId e) const {
    return encoder_.token_ids(side, e);
  }
  const TextAlignmentEncoder& encoder() const { return encoder_; }

 private:
  AttributeModuleConfig config_;
  TextAlignmentEncoder encoder_;
};

}  // namespace sdea::core

#endif  // SDEA_CORE_ATTRIBUTE_EMBEDDING_H_
