#include "core/sdea.h"

#include "base/logging.h"
#include "base/strings.h"
#include "core/numeric_channel.h"
#include "obs/trace.h"
#include "train/checkpoint.h"

namespace sdea::core {

Result<SdeaFitReport> SdeaModel::Fit(
    const kg::KnowledgeGraph& kg1, const kg::KnowledgeGraph& kg2,
    const kg::AlignmentSeeds& seeds, const SdeaConfig& config,
    const std::vector<std::string>& pretrain_corpus,
    const SdeaFitOptions& options) {
  SdeaFitReport report;
  std::unique_ptr<train::CheckpointManager> attr_ckpt;
  std::unique_ptr<train::CheckpointManager> rel_ckpt;
  if (!options.checkpoint_dir.empty()) {
    attr_ckpt = std::make_unique<train::CheckpointManager>(
        options.checkpoint_dir + "/attribute.ckpt");
    rel_ckpt = std::make_unique<train::CheckpointManager>(
        options.checkpoint_dir + "/relation.ckpt");
  }

  obs::TraceSpan fit_span("sdea/fit");

  // Phase 1: attribute embedding pre-training (Algorithm 2).
  {
    obs::TraceSpan span("sdea/attribute_pretrain");
    SDEA_RETURN_IF_ERROR(
        attribute_module_.Init(kg1, kg2, config.attribute, pretrain_corpus));
    SDEA_ASSIGN_OR_RETURN(report.attribute,
                          attribute_module_.Pretrain(seeds, attr_ckpt.get()));
  }
  {
    obs::TraceSpan span("sdea/attribute_embed");
    ha1_ = attribute_module_.ComputeAllEmbeddings(1);
    ha2_ = attribute_module_.ComputeAllEmbeddings(2);
  }
  SDEA_LOG_INFO(StrFormat("attribute module: %lld epochs, valid H@1=%.2f",
                          static_cast<long long>(report.attribute.epochs_run),
                          report.attribute.best_valid_hits1));

  if (!config.use_relation_module) {
    // "SDEA w/o rel.": the attribute embedding is the entity embedding.
    ent1_ = ha1_;
    ent2_ = ha2_;
    if (config.use_numeric_channel) {
      ent1_ = ConcatNumericChannel(ent1_, ComputeNumericFeatures(kg1),
                                   config.numeric_channel_weight);
      ent2_ = ConcatNumericChannel(ent2_, ComputeNumericFeatures(kg2),
                                   config.numeric_channel_weight);
    }
    fitted_ = true;
    return report;
  }

  // Phase 2: relation + joint training (Algorithm 3), transformer frozen.
  {
    obs::TraceSpan span("sdea/relation_train");
    SDEA_RETURN_IF_ERROR(relation_module_.Init(
        kg1, kg2, config.attribute.text.out_dim, config.relation));
    SDEA_ASSIGN_OR_RETURN(
        report.relation,
        relation_module_.Train(ha1_, ha2_, seeds, rel_ckpt.get()));
  }
  SDEA_LOG_INFO(StrFormat("relation module: %lld epochs, valid H@1=%.2f",
                          static_cast<long long>(report.relation.epochs_run),
                          report.relation.best_valid_hits1));

  obs::TraceSpan embed_span("sdea/entity_embed");
  ent1_ = relation_module_.ComputeEntityEmbeddings(1, ha1_);
  ent2_ = relation_module_.ComputeEntityEmbeddings(2, ha2_);
  if (config.use_numeric_channel) {
    ent1_ = ConcatNumericChannel(ent1_, ComputeNumericFeatures(kg1),
                                 config.numeric_channel_weight);
    ent2_ = ConcatNumericChannel(ent2_, ComputeNumericFeatures(kg2),
                                 config.numeric_channel_weight);
  }
  fitted_ = true;
  return report;
}

eval::RankingMetrics SdeaModel::EvaluateWithoutRelation(
    const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs) const {
  SDEA_CHECK(fitted_);
  Tensor src({static_cast<int64_t>(pairs.size()), ha1_.dim(1)});
  std::vector<int64_t> gold;
  gold.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    src.SetRow(static_cast<int64_t>(i), ha1_.Row(pairs[i].first));
    gold.push_back(pairs[i].second);
  }
  return eval::EvaluateAlignment(src, ha2_, gold);
}

eval::RankingMetrics SdeaModel::Evaluate(
    const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs) const {
  SDEA_CHECK(fitted_);
  Tensor src({static_cast<int64_t>(pairs.size()), ent1_.dim(1)});
  std::vector<int64_t> gold;
  gold.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    src.SetRow(static_cast<int64_t>(i), ent1_.Row(pairs[i].first));
    gold.push_back(pairs[i].second);
  }
  return eval::EvaluateAlignment(src, ent2_, gold);
}

std::vector<eval::RankingMetrics> SdeaModel::EvaluateByDegree(
    const kg::KnowledgeGraph& kg1,
    const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs,
    const std::vector<int64_t>& bucket_upper) const {
  SDEA_CHECK(fitted_);
  const kg::KgSnapshot snap1 = kg1.Snapshot();
  Tensor src({static_cast<int64_t>(pairs.size()), ent1_.dim(1)});
  std::vector<int64_t> gold;
  std::vector<int64_t> degrees;
  for (size_t i = 0; i < pairs.size(); ++i) {
    src.SetRow(static_cast<int64_t>(i), ent1_.Row(pairs[i].first));
    gold.push_back(pairs[i].second);
    degrees.push_back(snap1.DegreeOf(pairs[i].first));
  }
  return eval::EvaluateByDegree(src, ent2_, gold, degrees, bucket_upper);
}

}  // namespace sdea::core
