#include "core/embedding_store.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <unordered_set>

#include "base/fileio.h"
#include "tensor/kernels.h"
#include "tensor/topk.h"

namespace sdea::core {
namespace {

constexpr char kMagic[8] = {'S', 'D', 'E', 'A', 'E', 'M', 'B', '1'};

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool ReadU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

}  // namespace

Result<EmbeddingStore> EmbeddingStore::Create(std::vector<std::string> names,
                                              Tensor embeddings) {
  if (embeddings.rank() != 2 ||
      embeddings.dim(0) != static_cast<int64_t>(names.size())) {
    return Status::InvalidArgument(
        "embeddings must be [names.size(), d]");
  }
  std::unordered_set<std::string> unique(names.begin(), names.end());
  if (unique.size() != names.size()) {
    return Status::InvalidArgument("entity names must be unique");
  }
  EmbeddingStore store;
  store.names_ = std::move(names);
  store.embeddings_ = std::move(embeddings);
  tmath::L2NormalizeRowsInPlace(&store.embeddings_);
  return store;
}

std::string EmbeddingStore::Encode() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendU64(&out, names_.size());
  AppendU64(&out, static_cast<uint64_t>(dim()));
  for (const std::string& name : names_) {
    AppendU64(&out, name.size());
    out.append(name);
  }
  out.append(reinterpret_cast<const char*>(embeddings_.data()),
             static_cast<size_t>(embeddings_.size()) * sizeof(float));
  return out;
}

Status EmbeddingStore::Save(const std::string& path) const {
  // Atomic (temp + rename) so a crash mid-save can never leave a torn
  // artifact for a serving snapshot manager to pick up.
  return WriteStringToFileAtomic(path, Encode());
}

Result<EmbeddingStore> EmbeddingStore::Decode(const std::string& in) {
  if (in.size() < sizeof(kMagic) ||
      std::memcmp(in.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an SDEA embedding store");
  }
  size_t pos = sizeof(kMagic);
  uint64_t count = 0, dim = 0;
  if (!ReadU64(in, &pos, &count) || !ReadU64(in, &pos, &dim)) {
    return Status::InvalidArgument("truncated embedding store header");
  }
  // Bound both header fields against what the blob could possibly hold
  // before allocating anything: each name costs >= 8 bytes, each row
  // count*dim floats. Without these a corrupt all-ones count either spins
  // billions of failed reads or throws length_error out of reserve().
  const uint64_t budget = in.size() - pos;
  if (count > budget / 8) {
    return Status::InvalidArgument("embedding store count exceeds blob size");
  }
  const uint64_t max_floats = in.size() / sizeof(float);
  if (count == 0) {
    // An empty store encodes its real dim with no float payload, so the
    // payload bound doesn't apply — but the dim must still fit a tensor
    // shape (a corrupt all-ones dim would wrap negative and abort).
    if (dim > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
      return Status::InvalidArgument("embedding store dim overflows");
    }
  } else if (dim > max_floats || dim > max_floats / count) {
    return Status::InvalidArgument("embedding store dim exceeds blob size");
  }
  std::vector<std::string> names;
  names.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t len = 0;
    if (!ReadU64(in, &pos, &len) || len > in.size() - pos) {
      return Status::InvalidArgument("truncated embedding store names");
    }
    names.push_back(in.substr(pos, len));
    pos += len;
  }
  const size_t bytes = static_cast<size_t>(count * dim) * sizeof(float);
  if (bytes > in.size() - pos) {
    return Status::InvalidArgument("truncated embedding store data");
  }
  Tensor embeddings({static_cast<int64_t>(count), static_cast<int64_t>(dim)});
  // An empty store (count or dim 0) has a null data(); memcpy forbids
  // null arguments even for 0 bytes.
  if (bytes > 0) std::memcpy(embeddings.data(), in.data() + pos, bytes);
  return Create(std::move(names), std::move(embeddings));
}

Result<EmbeddingStore> EmbeddingStore::Load(const std::string& path) {
  SDEA_ASSIGN_OR_RETURN(std::string in, ReadFileToString(path));
  auto decoded = Decode(in);
  if (!decoded.ok()) {
    return Status(decoded.status().code(),
                  decoded.status().message() + ": " + path);
  }
  return decoded;
}

Result<int64_t> EmbeddingStore::Find(const std::string& name) const {
  // Linear scan is fine for the store sizes here; an id map would be easy
  // to add if Find became hot.
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int64_t>(i);
  }
  return Status::NotFound("entity not in store: " + name);
}

Result<Tensor> EmbeddingStore::Get(const std::string& name) const {
  SDEA_ASSIGN_OR_RETURN(int64_t id, Find(name));
  return embeddings_.Row(id);
}

std::vector<EmbeddingStore::Neighbor> EmbeddingStore::NearestNeighbors(
    const Tensor& query, int64_t k) const {
  // The dim contract comes before the trivial-answer returns: checking it
  // after them let a wrong-dim query against an empty store (or with
  // k <= 0) silently succeed with {}, hiding the caller bug — the same
  // guard serve/server.cc applies per request. A default-constructed store
  // (dim() == 0) has no contract to enforce.
  if (dim() > 0) SDEA_CHECK_EQ(query.size(), dim());
  if (size() == 0 || k <= 0) return {};
  Tensor q({1, dim()});
  q.SetRow(0, query);
  tmath::L2NormalizeRowsInPlace(&q);

  std::vector<int64_t> ids;
  std::vector<float> scores;
  if (index_ != nullptr) {
    ids = index_->Query(q.data(), dim(), k);
  } else {
    const int64_t n = size();
    scores.resize(static_cast<size_t>(n));
    tmath::kernels::Gemv(embeddings_.data(), n, dim(), q.data(),
                         scores.data());
    ids = tmath::TopK(scores.data(), n, k);
  }
  std::vector<Neighbor> out;
  out.reserve(ids.size());
  for (int64_t id : ids) {
    const float sim =
        scores.empty()
            ? tmath::kernels::ScoreDot(q.data(),
                                       embeddings_.data() + id * dim(), dim())
            : scores[static_cast<size_t>(id)];
    out.push_back(Neighbor{names_[static_cast<size_t>(id)], id, sim});
  }
  return out;
}

void EmbeddingStore::BuildIndex(const IvfOptions& options) {
  index_ = std::make_unique<IvfIndex>(embeddings_, options);
}

}  // namespace sdea::core
