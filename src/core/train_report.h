#ifndef SDEA_CORE_TRAIN_REPORT_H_
#define SDEA_CORE_TRAIN_REPORT_H_

#include <cstdint>
#include <vector>

namespace sdea::core {

/// Progress record of a training run (shared by both SDEA modules).
struct TrainReport {
  int64_t epochs_run = 0;
  double best_valid_hits1 = 0.0;
  std::vector<double> valid_hits1_history;
};

}  // namespace sdea::core

#endif  // SDEA_CORE_TRAIN_REPORT_H_
