#ifndef SDEA_CORE_ATTRIBUTE_SEQUENCER_H_
#define SDEA_CORE_ATTRIBUTE_SEQUENCER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kg/knowledge_graph.h"

namespace sdea::core {

/// Algorithm 1 (KG transformation): fixes one random global order O^(A) over
/// a KG's attributes, then renders each entity's attribute values as a
/// single text sequence S(e) by concatenating the values of its attributed
/// triples in that order. All entities of a KG share the same order, which
/// gives the transformer a consistent contextual layout without requiring
/// schema alignment across KGs.
class AttributeSequencer {
 public:
  /// `seed` drives the random attribute order; pass kIdentityOrder to keep
  /// insertion order (used by the ablation bench). Pins a snapshot of
  /// `graph` at construction: sequencing scans columnar chunks lock-free
  /// and is unaffected by later writes to the graph.
  AttributeSequencer(const kg::KnowledgeGraph* graph, uint64_t seed);

  /// Sentinel seed: keep the KG's attribute insertion order.
  static constexpr uint64_t kIdentityOrder = ~0ULL;

  /// S(e): values of e's attributed triples, ordered by O^(A), joined with
  /// spaces. Empty string for entities without attributes.
  std::string Sequence(kg::EntityId e) const;

  /// S(e) for every entity, indexed by EntityId.
  std::vector<std::string> AllSequences() const;

  /// Rank of each attribute in O^(A) (smaller sorts first).
  const std::vector<int64_t>& attribute_rank() const {
    return attribute_rank_;
  }

 private:
  kg::KgSnapshot snap_;  ///< Pinned at construction.
  std::vector<int64_t> attribute_rank_;
};

}  // namespace sdea::core

#endif  // SDEA_CORE_ATTRIBUTE_SEQUENCER_H_
