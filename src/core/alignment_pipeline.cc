#include "core/alignment_pipeline.h"

#include <algorithm>

#include "core/stable_matching.h"
#include "obs/trace.h"
#include "tensor/topk.h"

namespace sdea::core {

Result<AlignmentResult> AlignmentPipeline::Run(
    const kg::KnowledgeGraph& kg1, const kg::KnowledgeGraph& kg2,
    const kg::AlignmentSeeds& seeds, const PipelineConfig& config,
    const std::vector<std::string>& pretrain_corpus) {
  obs::TraceSpan run_span("pipeline/run");
  AlignmentResult result;
  {
    obs::TraceSpan fit_span("pipeline/fit");
    SDEA_ASSIGN_OR_RETURN(
        result.fit_report,
        model_.Fit(kg1, kg2, seeds, config.model, pretrain_corpus));
  }
  ran_ = true;

  {
    obs::TraceSpan eval_span("pipeline/evaluate");
    result.test_metrics = model_.Evaluate(seeds.test);
  }

  // Decision layer over cosine similarities.
  obs::TraceSpan decide_span("pipeline/decide");
  Tensor e1 = model_.embeddings1();
  Tensor e2 = model_.embeddings2();
  tmath::L2NormalizeRowsInPlace(&e1);
  tmath::L2NormalizeRowsInPlace(&e2);
  const Tensor scores = tmath::MatmulTransposeB(e1, e2);
  const int64_t n1 = scores.dim(0), n2 = scores.dim(1);

  std::vector<int64_t> match(static_cast<size_t>(n1), kUnmatched);
  if (n2 == 0) {
    // No candidate targets at all: every source abstains (the greedy loop
    // below would otherwise read an empty row and emit target 0).
  } else if (config.use_stable_matching) {
    match = StableMatch(scores);
  } else {
    for (int64_t i = 0; i < n1; ++i) {
      const float* row = scores.data() + i * n2;
      int64_t arg = 0;
      for (int64_t j = 1; j < n2; ++j) {
        if (row[j] > row[arg]) arg = j;
      }
      match[static_cast<size_t>(i)] = arg;
    }
  }

  // The no-match rule, by precedence: an injected calibrated threshold, a
  // dev-calibrated one, then the fixed min_similarity floor (represented
  // as an absolute-only threshold so one code path applies all three —
  // including the NaN-rejects-the-match guarantee).
  if (config.threshold.enabled) {
    result.threshold = config.threshold;
  } else if (config.calibrate_threshold && !seeds.valid.empty() && n2 > 0) {
    Tensor dev({static_cast<int64_t>(seeds.valid.size()), n2});
    std::vector<int64_t> dev_gold;
    dev_gold.reserve(seeds.valid.size());
    for (size_t i = 0; i < seeds.valid.size(); ++i) {
      dev.SetRow(static_cast<int64_t>(i),
                 scores.Row(seeds.valid[i].first));
      dev_gold.push_back(seeds.valid[i].second);
    }
    result.threshold = eval::CalibrateAbstainThreshold(dev, dev_gold);
  }
  if (!result.threshold.enabled) {
    result.threshold.min_similarity = config.min_similarity;
    result.threshold.enabled = true;
  }
  if (n2 > 0) {
    eval::ApplyAbstainThreshold(scores, result.threshold, &match);
  }

  for (int64_t i = 0; i < n1; ++i) {
    const int64_t j = match[static_cast<size_t>(i)];
    if (j < 0) continue;
    result.pairs.push_back(AlignedPair{static_cast<kg::EntityId>(i),
                                       static_cast<kg::EntityId>(j),
                                       scores[i * n2 + j]});
  }
  result.decisions = std::move(match);

  // Decision accuracy on the held-out test pairs.
  std::vector<int64_t> sub, gold;
  for (const auto& [a, b] : seeds.test) {
    sub.push_back(result.decisions[static_cast<size_t>(a)]);
    gold.push_back(b);
  }
  result.matching_accuracy = MatchingAccuracy(sub, gold);
  result.decision_metrics = eval::EvaluateDecisions(sub, gold);
  return result;
}

std::vector<AlignedPair> AlignmentPipeline::TopTargets(kg::EntityId source,
                                                       int64_t k) const {
  SDEA_CHECK(ran_);
  const Tensor& e1 = model_.embeddings1();
  const Tensor& e2 = model_.embeddings2();
  SDEA_CHECK(source >= 0 && source < e1.dim(0));
  Tensor q({1, e1.dim(1)});
  q.SetRow(0, e1.Row(source));
  Tensor t = e2;
  tmath::L2NormalizeRowsInPlace(&q);
  tmath::L2NormalizeRowsInPlace(&t);
  const Tensor scores = tmath::MatmulTransposeB(q, t);
  const int64_t m = scores.size();
  const std::vector<int64_t> order = tmath::TopK(scores.data(), m, k);
  std::vector<AlignedPair> out;
  out.reserve(order.size());
  for (int64_t target : order) {
    out.push_back(AlignedPair{source, static_cast<kg::EntityId>(target),
                              scores[target]});
  }
  return out;
}

}  // namespace sdea::core
