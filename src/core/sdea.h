#ifndef SDEA_CORE_SDEA_H_
#define SDEA_CORE_SDEA_H_

#include <memory>
#include <vector>

#include "core/attribute_embedding.h"
#include "core/relation_embedding.h"
#include "eval/metrics.h"

namespace sdea::core {

/// End-to-end configuration of SDEA.
struct SdeaConfig {
  AttributeModuleConfig attribute;
  RelationModuleConfig relation;
  /// When false, runs the paper's "SDEA w/o rel." ablation: the final
  /// entity embedding is the attribute embedding alone.
  bool use_relation_module = true;

  /// The paper's proposed future-work extension (Remarks III-A): numeric
  /// attribute values get a dedicated magnitude-aware channel appended to
  /// the entity embedding instead of relying on subword tokenization.
  bool use_numeric_channel = false;
  float numeric_channel_weight = 0.5f;
};

/// Combined training report.
struct SdeaFitReport {
  TrainReport attribute;
  TrainReport relation;
};

/// Runtime options of one Fit call (as opposed to model hyper-parameters,
/// which live in SdeaConfig).
struct SdeaFitOptions {
  /// When non-empty, both training phases checkpoint into this (existing)
  /// directory — <dir>/attribute.ckpt and <dir>/relation.ckpt — after
  /// every epoch, and a re-run Fit resumes from whatever phase/epoch was
  /// reached, continuing bitwise-identically with the uninterrupted run.
  std::string checkpoint_dir;
};

/// The full SDEA pipeline (Fig. 3): attribute embedding pre-training
/// (Algorithm 2), relation + joint training (Algorithm 3), and cosine
/// alignment over the final entity embeddings Hent = [Hr; Ha; Hm].
class SdeaModel {
 public:
  SdeaModel() = default;

  /// Runs the two-phase training on the KG pair with the given seed
  /// alignment. After a successful Fit the final embeddings are available.
  /// `pretrain_corpus` optionally supplies LM-pre-training text (see
  /// GeneratedBenchmark::pretrain_corpus).
  Result<SdeaFitReport> Fit(const kg::KnowledgeGraph& kg1,
                            const kg::KnowledgeGraph& kg2,
                            const kg::AlignmentSeeds& seeds,
                            const SdeaConfig& config,
                            const std::vector<std::string>& pretrain_corpus = {},
                            const SdeaFitOptions& options = {});

  /// Final entity embeddings of each side ([N, D]); valid after Fit.
  const Tensor& embeddings1() const { return ent1_; }
  const Tensor& embeddings2() const { return ent2_; }

  /// The pre-trained attribute embeddings Ha alone — the "SDEA w/o rel."
  /// ablation — available from the same Fit at no extra cost.
  const Tensor& attribute_embeddings1() const { return ha1_; }
  const Tensor& attribute_embeddings2() const { return ha2_; }

  /// Hits@K / MRR of `pairs` using the attribute embeddings only.
  eval::RankingMetrics EvaluateWithoutRelation(
      const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs) const;

  /// Hits@K / MRR of `pairs` (typically the test split), ranking every
  /// KG2 entity as a candidate target (the paper does not assume 1-1
  /// alignment, so the whole target space competes).
  eval::RankingMetrics Evaluate(
      const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs) const;

  /// Per-degree-bucket metrics for the long-tail analysis; `kg1` must be
  /// the graph passed to Fit.
  std::vector<eval::RankingMetrics> EvaluateByDegree(
      const kg::KnowledgeGraph& kg1,
      const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs,
      const std::vector<int64_t>& bucket_upper) const;

  const AttributeEmbeddingModule& attribute_module() const {
    return attribute_module_;
  }
  const RelationEmbeddingModule& relation_module() const {
    return relation_module_;
  }

 private:
  AttributeEmbeddingModule attribute_module_;
  RelationEmbeddingModule relation_module_;
  Tensor ha1_;
  Tensor ha2_;
  Tensor ent1_;
  Tensor ent2_;
  bool fitted_ = false;
};

}  // namespace sdea::core

#endif  // SDEA_CORE_SDEA_H_
