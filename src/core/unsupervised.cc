#include "core/unsupervised.h"

#include <algorithm>
#include <map>

#include "base/rng.h"

namespace sdea::core {

Result<PseudoSeeds> MinePseudoSeeds(
    const kg::KnowledgeGraph& kg1, const kg::KnowledgeGraph& kg2,
    const AttributeModuleConfig& attr_config,
    const UnsupervisedOptions& options,
    const std::vector<std::string>& pretrain_corpus) {
  // Un-fine-tuned attribute embeddings: tokenizer + co-occurrence
  // pre-training only — no labels touch this stage.
  AttributeEmbeddingModule module;
  SDEA_RETURN_IF_ERROR(module.Init(kg1, kg2, attr_config, pretrain_corpus));
  Tensor e1 = module.ComputeAllEmbeddings(1);
  Tensor e2 = module.ComputeAllEmbeddings(2);
  tmath::L2NormalizeRowsInPlace(&e1);
  tmath::L2NormalizeRowsInPlace(&e2);
  const Tensor scores = tmath::MatmulTransposeB(e1, e2);
  const int64_t n1 = scores.dim(0), n2 = scores.dim(1);

  // Mutual nearest neighbors above the similarity floor.
  std::vector<int64_t> best_for_src(static_cast<size_t>(n1));
  for (int64_t i = 0; i < n1; ++i) {
    const float* row = scores.data() + i * n2;
    int64_t arg = 0;
    for (int64_t j = 1; j < n2; ++j) {
      if (row[j] > row[arg]) arg = j;
    }
    best_for_src[static_cast<size_t>(i)] = arg;
  }
  std::vector<int64_t> best_for_tgt(static_cast<size_t>(n2));
  for (int64_t j = 0; j < n2; ++j) {
    int64_t arg = 0;
    for (int64_t i = 1; i < n1; ++i) {
      if (scores[i * n2 + j] > scores[arg * n2 + j]) arg = i;
    }
    best_for_tgt[static_cast<size_t>(j)] = arg;
  }

  PseudoSeeds out;
  out.candidates_considered = n1;
  // Collect (similarity, pair), most confident first.
  std::vector<std::pair<float, std::pair<kg::EntityId, kg::EntityId>>>
      accepted;
  for (int64_t i = 0; i < n1; ++i) {
    const int64_t j = best_for_src[static_cast<size_t>(i)];
    if (best_for_tgt[static_cast<size_t>(j)] != i) continue;
    const float sim = scores[i * n2 + j];
    if (sim < options.min_similarity) continue;
    accepted.emplace_back(sim,
                          std::make_pair(static_cast<kg::EntityId>(i),
                                         static_cast<kg::EntityId>(j)));
  }
  std::sort(accepted.begin(), accepted.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (options.max_pairs > 0 &&
      static_cast<int64_t>(accepted.size()) > options.max_pairs) {
    accepted.resize(static_cast<size_t>(options.max_pairs));
  }
  out.accepted = static_cast<int64_t>(accepted.size());

  std::vector<std::pair<kg::EntityId, kg::EntityId>> pairs;
  pairs.reserve(accepted.size());
  for (const auto& [sim, pair] : accepted) pairs.push_back(pair);
  Rng rng(options.seed);
  rng.Shuffle(&pairs);
  const size_t n_valid = static_cast<size_t>(
      static_cast<double>(pairs.size()) * options.valid_fraction);
  out.seeds.valid.assign(pairs.begin(),
                         pairs.begin() + static_cast<int64_t>(n_valid));
  out.seeds.train.assign(pairs.begin() + static_cast<int64_t>(n_valid),
                         pairs.end());
  return out;
}

double PseudoSeedPrecision(
    const PseudoSeeds& pseudo,
    const std::vector<std::pair<kg::EntityId, kg::EntityId>>&
        ground_truth) {
  std::map<kg::EntityId, kg::EntityId> gold(ground_truth.begin(),
                                            ground_truth.end());
  int64_t correct = 0, total = 0;
  for (const auto* split : {&pseudo.seeds.train, &pseudo.seeds.valid}) {
    for (const auto& [a, b] : *split) {
      ++total;
      auto it = gold.find(a);
      if (it != gold.end() && it->second == b) ++correct;
    }
  }
  return total == 0 ? 0.0
                    : 100.0 * static_cast<double>(correct) /
                          static_cast<double>(total);
}

}  // namespace sdea::core
