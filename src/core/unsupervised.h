#ifndef SDEA_CORE_UNSUPERVISED_H_
#define SDEA_CORE_UNSUPERVISED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/attribute_embedding.h"
#include "kg/knowledge_graph.h"

namespace sdea::core {

/// Options for unsupervised pseudo-seed generation.
struct UnsupervisedOptions {
  /// Minimum cosine similarity for a mutual-nearest-neighbor pair to be
  /// accepted as a pseudo seed.
  float min_similarity = 0.6f;
  /// Cap on accepted pseudo seeds (0 = unlimited).
  int64_t max_pairs = 0;
  /// Fraction of pseudo seeds held out as the validation split.
  double valid_fraction = 0.2;
  uint64_t seed = 53;
};

/// Result of pseudo-seed mining.
struct PseudoSeeds {
  kg::AlignmentSeeds seeds;  ///< train/valid filled; test left empty.
  int64_t candidates_considered = 0;
  int64_t accepted = 0;
};

/// Unsupervised entity alignment — the direction the paper's related-work
/// section points to ("completely unsupervised solutions"). No alignment
/// labels are used: the attribute module is initialized (tokenizer +
/// token-embedding pre-training, NO fine-tuning), entities are embedded,
/// and mutually-nearest pairs above `min_similarity` become pseudo seeds.
/// The caller then runs the ordinary supervised pipeline on these pseudo
/// seeds (self-training).
///
/// `attr_config` controls the un-fine-tuned encoder; `pretrain_corpus` is
/// the same comparable corpus the supervised path uses.
Result<PseudoSeeds> MinePseudoSeeds(
    const kg::KnowledgeGraph& kg1, const kg::KnowledgeGraph& kg2,
    const AttributeModuleConfig& attr_config,
    const UnsupervisedOptions& options,
    const std::vector<std::string>& pretrain_corpus = {});

/// Precision of pseudo seeds against a known ground truth (for
/// benchmarking the miner itself).
double PseudoSeedPrecision(
    const PseudoSeeds& pseudo,
    const std::vector<std::pair<kg::EntityId, kg::EntityId>>& ground_truth);

}  // namespace sdea::core

#endif  // SDEA_CORE_UNSUPERVISED_H_
