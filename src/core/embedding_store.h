#ifndef SDEA_CORE_EMBEDDING_STORE_H_
#define SDEA_CORE_EMBEDDING_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/ann_index.h"
#include "tensor/tensor.h"

namespace sdea::core {

/// A deployable artifact: entity embeddings keyed by entity name, with
/// disk persistence and (optionally approximate) nearest-neighbor queries.
/// This is the piece a downstream service loads after training — the
/// trained model itself is no longer needed to serve alignment queries.
class EmbeddingStore {
 public:
  EmbeddingStore() = default;

  /// Builds from parallel names/embeddings ([N, d], row i = names[i]).
  /// Names must be unique.
  static Result<EmbeddingStore> Create(std::vector<std::string> names,
                                       Tensor embeddings);

  /// Binary persistence (magic + names + float32 matrix). Round-trips
  /// exactly. Save is atomic (temp file + rename): a crash mid-save leaves
  /// the previous artifact intact, never a torn one, and Load rejects any
  /// truncated/partial file cleanly.
  Status Save(const std::string& path) const;
  static Result<EmbeddingStore> Load(const std::string& path);

  /// The wire format behind Save/Load, exposed blob-level so tests can
  /// corrupt bytes without touching the filesystem. Decode is robust
  /// against arbitrary bytes: any malformed input (bad magic, truncation,
  /// counts or dims that exceed what the blob could hold, duplicate names)
  /// returns InvalidArgument — never a crash or an unbounded allocation.
  std::string Encode() const;
  static Result<EmbeddingStore> Decode(const std::string& blob);

  int64_t size() const { return embeddings_.dim(0); }
  /// Embedding dimensionality. Known (and enforced on queries) as soon as
  /// the store was built from a rank-2 matrix — including an empty [0, d]
  /// one; 0 only for a default-constructed store.
  int64_t dim() const {
    return embeddings_.rank() == 2 ? embeddings_.dim(1) : 0;
  }
  const std::vector<std::string>& names() const { return names_; }
  const Tensor& embeddings() const { return embeddings_; }

  /// Row id for `name`, or NotFound.
  Result<int64_t> Find(const std::string& name) const;

  /// The embedding row of `name`.
  Result<Tensor> Get(const std::string& name) const;

  /// One scored query answer.
  struct Neighbor {
    std::string name;
    int64_t id;
    float similarity;
  };

  /// Top-k most cosine-similar entries to `query` (length dim()). Exact
  /// scan unless BuildIndex was called. The dim contract is checked before
  /// any early return: a wrong-dim query aborts (SDEA_CHECK) even when the
  /// store is empty or k <= 0, matching serve/server.cc's per-request dim
  /// guard. Defensive edges: k <= 0 or an empty store yields an empty
  /// vector; k > size() clamps. Thread-safe for concurrent calls
  /// (read-only).
  std::vector<Neighbor> NearestNeighbors(const Tensor& query,
                                         int64_t k) const;

  /// Builds the IVF index so NearestNeighbors runs approximately but
  /// sub-linearly.
  void BuildIndex(const IvfOptions& options = {});
  bool has_index() const { return index_ != nullptr; }

 private:
  std::vector<std::string> names_;
  Tensor embeddings_;  // L2-normalized rows.
  std::unique_ptr<IvfIndex> index_;
};

}  // namespace sdea::core

#endif  // SDEA_CORE_EMBEDDING_STORE_H_
