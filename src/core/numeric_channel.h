#ifndef SDEA_CORE_NUMERIC_CHANNEL_H_
#define SDEA_CORE_NUMERIC_CHANNEL_H_

#include <cstdint>
#include <string_view>

#include "kg/knowledge_graph.h"
#include "tensor/tensor.h"

namespace sdea::core {

/// The paper's Remarks (Section III-A) and error analysis (Section V-B1)
/// call out that subword language models handle numeric values poorly and
/// propose "handling the numeric values separately" as future work. This
/// channel implements that extension: numeric attribute values are parsed
/// and embedded with a magnitude-aware featurizer instead of being left to
/// the tokenizer, and aggregated into one vector per entity that can be
/// concatenated onto the entity embedding.
///
/// The featurizer is deterministic (no training): two numbers are close in
/// feature space iff they are close on a log-magnitude scale and share
/// leading digits — which is exactly the similarity notion that matters
/// for years, counts, and identifiers.
inline constexpr int64_t kNumericFeatureDim = 16;

/// Embeds one numeric value. `out` must have kNumericFeatureDim floats.
void EmbedNumber(double value, float* out);

/// Parses `text` as a number if it is numeric; returns true on success.
bool ParseNumeric(std::string_view text, double* value);

/// Per-entity numeric profile: the mean feature vector of all numeric
/// attribute values (zero rows for entities without numbers), L2-normalized.
/// Shape: [num_entities, kNumericFeatureDim].
Tensor ComputeNumericFeatures(const kg::KnowledgeGraph& graph);

/// Concatenates `base` ([N, D]) with `numeric` ([N, F]) scaled by `weight`
/// — the fusion used when SdeaConfig::use_numeric_channel is on.
Tensor ConcatNumericChannel(const Tensor& base, const Tensor& numeric,
                            float weight);

}  // namespace sdea::core

#endif  // SDEA_CORE_NUMERIC_CHANNEL_H_
