#include "core/attribute_sequencer.h"

#include <algorithm>

#include "base/check.h"
#include "base/rng.h"

namespace sdea::core {

AttributeSequencer::AttributeSequencer(const kg::KnowledgeGraph* graph,
                                       uint64_t seed)
    : graph_(graph) {
  SDEA_CHECK(graph != nullptr);
  const int64_t n = graph->num_attributes();
  attribute_rank_.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) attribute_rank_[static_cast<size_t>(i)] = i;
  if (seed != kIdentityOrder) {
    Rng rng(seed);
    rng.Shuffle(&attribute_rank_);
  }
}

std::string AttributeSequencer::Sequence(kg::EntityId e) const {
  // Collect (rank, triple index) and sort: stable within an attribute by
  // insertion order.
  std::vector<std::pair<int64_t, int64_t>> keyed;
  for (int64_t idx : graph_->attribute_triples_of(e)) {
    const kg::AttributeTriple& t =
        graph_->attribute_triples()[static_cast<size_t>(idx)];
    keyed.emplace_back(attribute_rank_[static_cast<size_t>(t.attribute)],
                       idx);
  }
  std::sort(keyed.begin(), keyed.end());
  std::string out;
  for (const auto& [rank, idx] : keyed) {
    const kg::AttributeTriple& t =
        graph_->attribute_triples()[static_cast<size_t>(idx)];
    if (!out.empty()) out += ' ';
    out += t.value;
  }
  return out;
}

std::vector<std::string> AttributeSequencer::AllSequences() const {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(graph_->num_entities()));
  for (kg::EntityId e = 0; e < graph_->num_entities(); ++e) {
    out.push_back(Sequence(e));
  }
  return out;
}

}  // namespace sdea::core
