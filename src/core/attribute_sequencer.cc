#include "core/attribute_sequencer.h"

#include <algorithm>

#include "base/check.h"
#include "base/rng.h"

namespace sdea::core {

AttributeSequencer::AttributeSequencer(const kg::KnowledgeGraph* graph,
                                       uint64_t seed) {
  SDEA_CHECK(graph != nullptr);
  snap_ = graph->Snapshot();
  const int64_t n = snap_.num_attributes();
  attribute_rank_.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) attribute_rank_[static_cast<size_t>(i)] = i;
  if (seed != kIdentityOrder) {
    Rng rng(seed);
    rng.Shuffle(&attribute_rank_);
  }
}

std::string AttributeSequencer::Sequence(kg::EntityId e) const {
  // Collect (rank, attribute row) and sort: stable within an attribute by
  // insertion order (== ascending row).
  std::vector<std::pair<int64_t, int64_t>> keyed;
  for (int64_t row : snap_.AttributeRowsOf(e)) {
    const auto [entity, attribute] = snap_.AttributeIdsAt(row);
    (void)entity;
    keyed.emplace_back(attribute_rank_[static_cast<size_t>(attribute)], row);
  }
  std::sort(keyed.begin(), keyed.end());
  std::string out;
  for (const auto& [rank, row] : keyed) {
    if (!out.empty()) out += ' ';
    out += snap_.ValueAt(row);
  }
  return out;
}

std::vector<std::string> AttributeSequencer::AllSequences() const {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(snap_.num_entities()));
  for (kg::EntityId e = 0; e < snap_.num_entities(); ++e) {
    out.push_back(Sequence(e));
  }
  return out;
}

}  // namespace sdea::core
