#include "core/text_alignment_encoder.h"

#include <algorithm>

#include "base/logging.h"
#include "base/strings.h"
#include "core/candidate_generator.h"
#include "eval/metrics.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "train/trainer.h"

namespace sdea::core {

Status TextAlignmentEncoder::Init(const std::vector<std::string>& texts1,
                                  const std::vector<std::string>& texts2,
                                  const TextEncoderConfig& config,
                                  const std::vector<std::string>& extra_corpus) {
  if (initialized_) {
    return Status::FailedPrecondition("encoder already initialized");
  }
  if (texts1.empty() || texts2.empty()) {
    return Status::InvalidArgument("empty entity text lists");
  }
  config_ = config;

  std::vector<std::string> corpus;
  corpus.reserve(texts1.size() + texts2.size() + extra_corpus.size());
  for (const auto& s : texts1) corpus.push_back(s);
  for (const auto& s : texts2) corpus.push_back(s);
  for (const auto& s : extra_corpus) corpus.push_back(s);
  SDEA_RETURN_IF_ERROR(tokenizer_.Train(corpus, config.tokenizer));

  config_.encoder.vocab_size = tokenizer_.vocab().size();
  Rng init_rng(config.seed);
  encoder_ = std::make_unique<nn::TransformerEncoder>("enc", config_.encoder,
                                                      &init_rng);
  output_mlp_ = std::make_unique<nn::Mlp>(
      "enc.mlp",
      std::vector<int64_t>{config_.encoder.dim, config_.out_dim},
      nn::Activation::kRelu, &init_rng);
  AddSubmodule(encoder_.get());
  AddSubmodule(output_mlp_.get());

  if (config.use_pretrained_embeddings) {
    text::PretrainConfig pt = config.pretrain;
    pt.dim = config_.encoder.dim;
    text::CooccurrencePretrainer pretrainer;
    auto table = pretrainer.Train(corpus, tokenizer_, pt);
    if (table.ok()) {
      encoder_->token_embedding()->table()->value = std::move(table).value();
    } else {
      SDEA_LOG_WARNING("token pre-training skipped: " +
                       table.status().ToString());
    }
  }

  token_ids_.resize(2);
  auto encode_all = [&](const std::vector<std::string>& texts,
                        std::vector<std::vector<int64_t>>* out) {
    out->reserve(texts.size());
    for (const std::string& s : texts) {
      out->push_back(tokenizer_.EncodeForModel(s, config_.encoder.max_len));
    }
  };
  encode_all(texts1, &token_ids_[0]);
  encode_all(texts2, &token_ids_[1]);

  initialized_ = true;
  return Status::Ok();
}

int64_t TextAlignmentEncoder::num_entities(int side) const {
  SDEA_CHECK(side == 1 || side == 2);
  return static_cast<int64_t>(
      token_ids_[static_cast<size_t>(side - 1)].size());
}

const std::vector<int64_t>& TextAlignmentEncoder::token_ids(
    int side, kg::EntityId e) const {
  SDEA_CHECK(side == 1 || side == 2);
  const auto& per_side = token_ids_[static_cast<size_t>(side - 1)];
  SDEA_CHECK(e >= 0 && static_cast<size_t>(e) < per_side.size());
  return per_side[static_cast<size_t>(e)];
}

NodeId TextAlignmentEncoder::EncodeEntity(Graph* g, int side, kg::EntityId e,
                                          bool training, Rng* rng) const {
  SDEA_CHECK(initialized_);
  const std::vector<int64_t>& ids = token_ids(side, e);
  if (training && config_.train_token_dropout > 0.0f && ids.size() >= 3) {
    SDEA_CHECK(rng != nullptr);
    // Drop non-[CLS] tokens so the margin cannot be satisfied by
    // memorizing entity-unique tokens of the seed pairs.
    std::vector<int64_t> kept;
    kept.push_back(ids[0]);
    for (size_t i = 1; i < ids.size(); ++i) {
      if (!rng->Bernoulli(config_.train_token_dropout)) kept.push_back(ids[i]);
    }
    if (kept.size() == 1) kept.push_back(ids[1]);
    NodeId pooled = (config_.pooling == SequencePooling::kCls)
                        ? encoder_->EncodeCls(g, kept, training, rng)
                        : encoder_->EncodeMean(g, kept, training, rng);
    return g->L2NormalizeRows(output_mlp_->Forward(g, pooled));
  }
  NodeId pooled = (config_.pooling == SequencePooling::kCls)
                      ? encoder_->EncodeCls(g, ids, training, rng)
                      : encoder_->EncodeMean(g, ids, training, rng);
  NodeId out = output_mlp_->Forward(g, pooled);
  return g->L2NormalizeRows(out);
}

Tensor TextAlignmentEncoder::ComputeAllEmbeddings(int side) const {
  SDEA_CHECK(initialized_);
  const int64_t n = num_entities(side);
  Tensor out({n, config_.out_dim});
  for (int64_t e = 0; e < n; ++e) {
    Graph g;
    NodeId node = EncodeEntity(&g, side, static_cast<kg::EntityId>(e),
                               /*training=*/false, /*rng=*/nullptr);
    out.SetRow(e, g.Value(node).Row(0));
  }
  return out;
}

void TextAlignmentEncoder::SelfSupervisedPretrain() {
  SDEA_CHECK(initialized_);
  if (config_.ssl_epochs <= 0) return;
  Rng rng(config_.seed ^ 0x55aa55aaULL);
  nn::Adam optimizer(Parameters(), config_.lr);

  // Pool of (side, entity) texts with at least two non-CLS tokens.
  std::vector<std::pair<int, kg::EntityId>> pool;
  for (int side = 1; side <= 2; ++side) {
    const int64_t n = num_entities(side);
    for (int64_t e = 0; e < n; ++e) {
      if (token_ids(side, static_cast<kg::EntityId>(e)).size() >= 3) {
        pool.emplace_back(side, static_cast<kg::EntityId>(e));
      }
    }
  }
  if (pool.size() < 4) return;

  // A "view" drops each non-CLS token with ssl_token_dropout (keeping at
  // least one token).
  auto make_view = [&](int side, kg::EntityId e) {
    const std::vector<int64_t>& ids = token_ids(side, e);
    std::vector<int64_t> view;
    view.push_back(ids[0]);  // [CLS]
    for (size_t i = 1; i < ids.size(); ++i) {
      if (!rng.Bernoulli(config_.ssl_token_dropout)) view.push_back(ids[i]);
    }
    if (view.size() == 1) view.push_back(ids[1]);
    return view;
  };
  auto encode_view = [&](Graph* g, const std::vector<int64_t>& ids) {
    NodeId pooled =
        (config_.pooling == SequencePooling::kCls)
            ? encoder_->EncodeCls(g, ids, /*training=*/true, &rng)
            : encoder_->EncodeMean(g, ids, /*training=*/true, &rng);
    return g->L2NormalizeRows(output_mlp_->Forward(g, pooled));
  };

  for (int64_t epoch = 0; epoch < config_.ssl_epochs; ++epoch) {
    rng.Shuffle(&pool);
    const size_t limit = std::min(
        pool.size(), static_cast<size_t>(config_.ssl_max_texts) * 2);
    for (size_t start = 0; start + 1 < limit;
         start += static_cast<size_t>(config_.ssl_batch)) {
      const size_t end =
          std::min(limit, start + static_cast<size_t>(config_.ssl_batch));
      if (end - start < 2) break;
      Graph g;
      NodeId anchors = -1, positives = -1, negatives = -1;
      for (size_t i = start; i < end; ++i) {
        const auto& [side, e] = pool[i];
        // Negative: the positive view of the batch neighbor (ring order).
        const size_t j = (i + 1 < end) ? i + 1 : start;
        const auto& [nside, ne] = pool[j];
        NodeId a = encode_view(&g, make_view(side, e));
        NodeId p = encode_view(&g, make_view(side, e));
        NodeId q = encode_view(&g, make_view(nside, ne));
        anchors = (anchors < 0) ? a : g.ConcatRows(anchors, a);
        positives = (positives < 0) ? p : g.ConcatRows(positives, p);
        negatives = (negatives < 0) ? q : g.ConcatRows(negatives, q);
      }
      NodeId loss = nn::MarginRankingLoss(&g, anchors, positives, negatives,
                                          config_.margin);
      optimizer.ZeroGrad();
      g.Backward(loss);
      optimizer.ClipGradNorm(config_.grad_clip);
      optimizer.Step();
    }
  }
}

namespace {

/// Algorithm 2 as a train::TrainTask. Example i of the Trainer's order maps
/// to seed pair i % |train| — the legacy loop replicated the pair list
/// rep-major (`negatives_per_pair` full copies back to back), so the
/// modulo reproduces the same example array. Candidates are refreshed from
/// scratch each epoch (lines 2-4) in OnEpochBegin, which draws no
/// randomness and therefore leaves the shared RNG stream identical to the
/// historical loop's.
class TextPretrainTask : public train::TrainTask {
 public:
  TextPretrainTask(TextAlignmentEncoder* encoder, nn::Adam* optimizer,
                   const kg::AlignmentSeeds* seeds, Rng* rng)
      : encoder_(encoder), optimizer_(optimizer), seeds_(seeds), rng_(rng) {}

  size_t num_examples() const override {
    return seeds_->train.size() *
           static_cast<size_t>(encoder_->config().negatives_per_pair);
  }
  Rng* rng() override { return rng_; }
  nn::Module* module() override { return encoder_; }
  nn::Optimizer* optimizer() override { return optimizer_; }

  // Algorithm 2 lines 2-4: fresh embeddings and candidates per epoch.
  void OnEpochBegin(int64_t /*epoch*/) override {
    const Tensor ha1 = encoder_->ComputeAllEmbeddings(1);
    const Tensor ha2 = encoder_->ComputeAllEmbeddings(2);
    candidates_ =
        GenerateCandidates(ha1, ha2, encoder_->config().num_candidates);
  }

  // Lines 5-10: margin-loss updates over the shuffled training pairs.
  float TrainBatch(const uint64_t* ids, size_t n) override {
    const TextEncoderConfig& config = encoder_->config();
    const size_t base_n = seeds_->train.size();
    Graph g;
    NodeId anchors = -1, positives = -1, negatives = -1;
    for (size_t i = 0; i < n; ++i) {
      const auto& [e1, e2] = seeds_->train[ids[i] % base_n];
      // Line 6: negative from the candidate set, != the positive.
      const auto& cand = candidates_[static_cast<size_t>(e1)];
      kg::EntityId neg = kg::kInvalidEntity;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const kg::EntityId c =
            static_cast<kg::EntityId>(cand[rng_->UniformInt(cand.size())]);
        if (c != e2) {
          neg = c;
          break;
        }
      }
      if (neg == kg::kInvalidEntity) {
        neg = static_cast<kg::EntityId>(rng_->UniformInt(
            static_cast<uint64_t>(encoder_->num_entities(2))));
        if (neg == e2) {
          neg = static_cast<kg::EntityId>((neg + 1) %
                                          encoder_->num_entities(2));
        }
      }
      NodeId a = encoder_->EncodeEntity(&g, 1, e1, /*training=*/true, rng_);
      NodeId p = encoder_->EncodeEntity(&g, 2, e2, /*training=*/true, rng_);
      NodeId q = encoder_->EncodeEntity(&g, 2, neg, /*training=*/true, rng_);
      anchors = (anchors < 0) ? a : g.ConcatRows(anchors, a);
      positives = (positives < 0) ? p : g.ConcatRows(positives, p);
      negatives = (negatives < 0) ? q : g.ConcatRows(negatives, q);
    }
    NodeId loss = nn::MarginRankingLoss(&g, anchors, positives, negatives,
                                        config.margin);
    optimizer_->ZeroGrad();
    g.Backward(loss);
    optimizer_->ClipGradNorm(config.grad_clip);
    optimizer_->Step();
    return g.Value(loss).data()[0];
  }

  // Line 11: validation Hits@1 (0 when there is no validation split, as in
  // the historical loop, which then effectively stops after `patience`).
  double EvalMetric() override {
    if (seeds_->valid.empty()) return 0.0;
    const Tensor va1 = encoder_->ComputeAllEmbeddings(1);
    const Tensor va2 = encoder_->ComputeAllEmbeddings(2);
    Tensor valid_src({static_cast<int64_t>(seeds_->valid.size()),
                      encoder_->config().out_dim});
    std::vector<int64_t> gold;
    gold.reserve(seeds_->valid.size());
    for (size_t i = 0; i < seeds_->valid.size(); ++i) {
      valid_src.SetRow(static_cast<int64_t>(i),
                       va1.Row(seeds_->valid[i].first));
      gold.push_back(seeds_->valid[i].second);
    }
    return eval::EvaluateAlignment(valid_src, va2, gold).hits_at_1;
  }

 private:
  TextAlignmentEncoder* encoder_;
  nn::Adam* optimizer_;
  const kg::AlignmentSeeds* seeds_;
  Rng* rng_;
  std::vector<std::vector<int64_t>> candidates_;
};

}  // namespace

Result<TrainReport> TextAlignmentEncoder::Pretrain(
    const kg::AlignmentSeeds& seeds, train::CheckpointManager* checkpoint) {
  if (!initialized_) {
    return Status::FailedPrecondition("call Init() before Pretrain()");
  }
  if (seeds.train.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  SelfSupervisedPretrain();
  Rng rng(config_.seed ^ 0xabcdef12345ULL);
  nn::Adam optimizer(Parameters(), config_.lr);

  TextPretrainTask task(this, &optimizer, &seeds, &rng);
  train::TrainerOptions options;
  options.max_epochs = config_.max_epochs;
  options.batch_size = config_.batch_size;
  options.shuffle = train::TrainerOptions::Shuffle::kFreshPerEpoch;
  options.evaluate = true;
  options.patience = config_.patience;
  options.restore_best = true;
  options.checkpoint = checkpoint;
  options.on_epoch = [](const train::EpochStats& es) {
    SDEA_LOG_DEBUG(StrFormat("text-encoder epoch %lld valid H@1=%.2f",
                             static_cast<long long>(es.epoch),
                             es.eval_metric));
    return true;
  };
  train::Trainer trainer(&task, options);
  auto stats = trainer.Run();
  if (!stats.ok()) return stats.status();

  TrainReport report;
  report.epochs_run = trainer.epochs_run();
  report.best_valid_hits1 = trainer.best_metric();
  report.valid_hits1_history = trainer.metric_history();
  return report;
}

}  // namespace sdea::core
