#include "core/text_alignment_encoder.h"

#include <algorithm>

#include "base/logging.h"
#include "base/strings.h"
#include "core/candidate_generator.h"
#include "eval/metrics.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace sdea::core {
namespace {

std::vector<Tensor> SnapshotParams(const std::vector<Parameter*>& params) {
  std::vector<Tensor> out;
  out.reserve(params.size());
  for (Parameter* p : params) out.push_back(p->value);
  return out;
}

void RestoreParams(const std::vector<Tensor>& snapshot,
                   const std::vector<Parameter*>& params) {
  SDEA_CHECK_EQ(snapshot.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) params[i]->value = snapshot[i];
}

}  // namespace

Status TextAlignmentEncoder::Init(const std::vector<std::string>& texts1,
                                  const std::vector<std::string>& texts2,
                                  const TextEncoderConfig& config,
                                  const std::vector<std::string>& extra_corpus) {
  if (initialized_) {
    return Status::FailedPrecondition("encoder already initialized");
  }
  if (texts1.empty() || texts2.empty()) {
    return Status::InvalidArgument("empty entity text lists");
  }
  config_ = config;

  std::vector<std::string> corpus;
  corpus.reserve(texts1.size() + texts2.size() + extra_corpus.size());
  for (const auto& s : texts1) corpus.push_back(s);
  for (const auto& s : texts2) corpus.push_back(s);
  for (const auto& s : extra_corpus) corpus.push_back(s);
  SDEA_RETURN_IF_ERROR(tokenizer_.Train(corpus, config.tokenizer));

  config_.encoder.vocab_size = tokenizer_.vocab().size();
  Rng init_rng(config.seed);
  encoder_ = std::make_unique<nn::TransformerEncoder>("enc", config_.encoder,
                                                      &init_rng);
  output_mlp_ = std::make_unique<nn::Mlp>(
      "enc.mlp",
      std::vector<int64_t>{config_.encoder.dim, config_.out_dim},
      nn::Activation::kRelu, &init_rng);
  AddSubmodule(encoder_.get());
  AddSubmodule(output_mlp_.get());

  if (config.use_pretrained_embeddings) {
    text::PretrainConfig pt = config.pretrain;
    pt.dim = config_.encoder.dim;
    text::CooccurrencePretrainer pretrainer;
    auto table = pretrainer.Train(corpus, tokenizer_, pt);
    if (table.ok()) {
      encoder_->token_embedding()->table()->value = std::move(table).value();
    } else {
      SDEA_LOG_WARNING("token pre-training skipped: " +
                       table.status().ToString());
    }
  }

  token_ids_.resize(2);
  auto encode_all = [&](const std::vector<std::string>& texts,
                        std::vector<std::vector<int64_t>>* out) {
    out->reserve(texts.size());
    for (const std::string& s : texts) {
      out->push_back(tokenizer_.EncodeForModel(s, config_.encoder.max_len));
    }
  };
  encode_all(texts1, &token_ids_[0]);
  encode_all(texts2, &token_ids_[1]);

  initialized_ = true;
  return Status::Ok();
}

int64_t TextAlignmentEncoder::num_entities(int side) const {
  SDEA_CHECK(side == 1 || side == 2);
  return static_cast<int64_t>(
      token_ids_[static_cast<size_t>(side - 1)].size());
}

const std::vector<int64_t>& TextAlignmentEncoder::token_ids(
    int side, kg::EntityId e) const {
  SDEA_CHECK(side == 1 || side == 2);
  const auto& per_side = token_ids_[static_cast<size_t>(side - 1)];
  SDEA_CHECK(e >= 0 && static_cast<size_t>(e) < per_side.size());
  return per_side[static_cast<size_t>(e)];
}

NodeId TextAlignmentEncoder::EncodeEntity(Graph* g, int side, kg::EntityId e,
                                          bool training, Rng* rng) const {
  SDEA_CHECK(initialized_);
  const std::vector<int64_t>& ids = token_ids(side, e);
  if (training && config_.train_token_dropout > 0.0f && ids.size() >= 3) {
    SDEA_CHECK(rng != nullptr);
    // Drop non-[CLS] tokens so the margin cannot be satisfied by
    // memorizing entity-unique tokens of the seed pairs.
    std::vector<int64_t> kept;
    kept.push_back(ids[0]);
    for (size_t i = 1; i < ids.size(); ++i) {
      if (!rng->Bernoulli(config_.train_token_dropout)) kept.push_back(ids[i]);
    }
    if (kept.size() == 1) kept.push_back(ids[1]);
    NodeId pooled = (config_.pooling == SequencePooling::kCls)
                        ? encoder_->EncodeCls(g, kept, training, rng)
                        : encoder_->EncodeMean(g, kept, training, rng);
    return g->L2NormalizeRows(output_mlp_->Forward(g, pooled));
  }
  NodeId pooled = (config_.pooling == SequencePooling::kCls)
                      ? encoder_->EncodeCls(g, ids, training, rng)
                      : encoder_->EncodeMean(g, ids, training, rng);
  NodeId out = output_mlp_->Forward(g, pooled);
  return g->L2NormalizeRows(out);
}

Tensor TextAlignmentEncoder::ComputeAllEmbeddings(int side) const {
  SDEA_CHECK(initialized_);
  const int64_t n = num_entities(side);
  Tensor out({n, config_.out_dim});
  for (int64_t e = 0; e < n; ++e) {
    Graph g;
    NodeId node = EncodeEntity(&g, side, static_cast<kg::EntityId>(e),
                               /*training=*/false, /*rng=*/nullptr);
    out.SetRow(e, g.Value(node).Row(0));
  }
  return out;
}

void TextAlignmentEncoder::SelfSupervisedPretrain() {
  SDEA_CHECK(initialized_);
  if (config_.ssl_epochs <= 0) return;
  Rng rng(config_.seed ^ 0x55aa55aaULL);
  nn::Adam optimizer(Parameters(), config_.lr);

  // Pool of (side, entity) texts with at least two non-CLS tokens.
  std::vector<std::pair<int, kg::EntityId>> pool;
  for (int side = 1; side <= 2; ++side) {
    const int64_t n = num_entities(side);
    for (int64_t e = 0; e < n; ++e) {
      if (token_ids(side, static_cast<kg::EntityId>(e)).size() >= 3) {
        pool.emplace_back(side, static_cast<kg::EntityId>(e));
      }
    }
  }
  if (pool.size() < 4) return;

  // A "view" drops each non-CLS token with ssl_token_dropout (keeping at
  // least one token).
  auto make_view = [&](int side, kg::EntityId e) {
    const std::vector<int64_t>& ids = token_ids(side, e);
    std::vector<int64_t> view;
    view.push_back(ids[0]);  // [CLS]
    for (size_t i = 1; i < ids.size(); ++i) {
      if (!rng.Bernoulli(config_.ssl_token_dropout)) view.push_back(ids[i]);
    }
    if (view.size() == 1) view.push_back(ids[1]);
    return view;
  };
  auto encode_view = [&](Graph* g, const std::vector<int64_t>& ids) {
    NodeId pooled =
        (config_.pooling == SequencePooling::kCls)
            ? encoder_->EncodeCls(g, ids, /*training=*/true, &rng)
            : encoder_->EncodeMean(g, ids, /*training=*/true, &rng);
    return g->L2NormalizeRows(output_mlp_->Forward(g, pooled));
  };

  for (int64_t epoch = 0; epoch < config_.ssl_epochs; ++epoch) {
    rng.Shuffle(&pool);
    const size_t limit = std::min(
        pool.size(), static_cast<size_t>(config_.ssl_max_texts) * 2);
    for (size_t start = 0; start + 1 < limit;
         start += static_cast<size_t>(config_.ssl_batch)) {
      const size_t end =
          std::min(limit, start + static_cast<size_t>(config_.ssl_batch));
      if (end - start < 2) break;
      Graph g;
      NodeId anchors = -1, positives = -1, negatives = -1;
      for (size_t i = start; i < end; ++i) {
        const auto& [side, e] = pool[i];
        // Negative: the positive view of the batch neighbor (ring order).
        const size_t j = (i + 1 < end) ? i + 1 : start;
        const auto& [nside, ne] = pool[j];
        NodeId a = encode_view(&g, make_view(side, e));
        NodeId p = encode_view(&g, make_view(side, e));
        NodeId q = encode_view(&g, make_view(nside, ne));
        anchors = (anchors < 0) ? a : g.ConcatRows(anchors, a);
        positives = (positives < 0) ? p : g.ConcatRows(positives, p);
        negatives = (negatives < 0) ? q : g.ConcatRows(negatives, q);
      }
      NodeId loss = nn::MarginRankingLoss(&g, anchors, positives, negatives,
                                          config_.margin);
      optimizer.ZeroGrad();
      g.Backward(loss);
      optimizer.ClipGradNorm(config_.grad_clip);
      optimizer.Step();
    }
  }
}

Result<TrainReport> TextAlignmentEncoder::Pretrain(
    const kg::AlignmentSeeds& seeds) {
  if (!initialized_) {
    return Status::FailedPrecondition("call Init() before Pretrain()");
  }
  if (seeds.train.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  SelfSupervisedPretrain();
  Rng rng(config_.seed ^ 0xabcdef12345ULL);
  nn::Adam optimizer(Parameters(), config_.lr);

  TrainReport report;
  std::vector<Tensor> best = SnapshotParams(Parameters());
  int64_t since_best = 0;
  const std::vector<std::pair<kg::EntityId, kg::EntityId>>& base_train =
      seeds.train;

  for (int64_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    // Algorithm 2 lines 2-4: fresh embeddings and candidates per epoch.
    const Tensor ha1 = ComputeAllEmbeddings(1);
    const Tensor ha2 = ComputeAllEmbeddings(2);
    const auto candidates =
        GenerateCandidates(ha1, ha2, config_.num_candidates);

    // Lines 5-10: margin-loss updates over shuffled training pairs
    // (replicated negatives_per_pair times per epoch).
    std::vector<std::pair<kg::EntityId, kg::EntityId>> train;
    train.reserve(base_train.size() *
                  static_cast<size_t>(config_.negatives_per_pair));
    for (int64_t rep = 0; rep < config_.negatives_per_pair; ++rep) {
      for (const auto& pair : base_train) train.push_back(pair);
    }
    rng.Shuffle(&train);
    for (size_t batch_start = 0; batch_start < train.size();
         batch_start += static_cast<size_t>(config_.batch_size)) {
      const size_t batch_end =
          std::min(train.size(),
                   batch_start + static_cast<size_t>(config_.batch_size));
      Graph g;
      NodeId anchors = -1, positives = -1, negatives = -1;
      for (size_t i = batch_start; i < batch_end; ++i) {
        const auto& [e1, e2] = train[i];
        // Line 6: negative from the candidate set, != the positive.
        const auto& cand = candidates[static_cast<size_t>(e1)];
        kg::EntityId neg = kg::kInvalidEntity;
        for (int attempt = 0; attempt < 8; ++attempt) {
          const kg::EntityId c =
              static_cast<kg::EntityId>(cand[rng.UniformInt(cand.size())]);
          if (c != e2) {
            neg = c;
            break;
          }
        }
        if (neg == kg::kInvalidEntity) {
          neg = static_cast<kg::EntityId>(
              rng.UniformInt(static_cast<uint64_t>(num_entities(2))));
          if (neg == e2) {
            neg = static_cast<kg::EntityId>((neg + 1) % num_entities(2));
          }
        }
        NodeId a = EncodeEntity(&g, 1, e1, /*training=*/true, &rng);
        NodeId p = EncodeEntity(&g, 2, e2, /*training=*/true, &rng);
        NodeId q = EncodeEntity(&g, 2, neg, /*training=*/true, &rng);
        anchors = (anchors < 0) ? a : g.ConcatRows(anchors, a);
        positives = (positives < 0) ? p : g.ConcatRows(positives, p);
        negatives = (negatives < 0) ? q : g.ConcatRows(negatives, q);
      }
      NodeId loss = nn::MarginRankingLoss(&g, anchors, positives, negatives,
                                          config_.margin);
      optimizer.ZeroGrad();
      g.Backward(loss);
      optimizer.ClipGradNorm(config_.grad_clip);
      optimizer.Step();
    }

    // Line 11: validation Hits@1 with early stopping.
    double h1 = 0.0;
    if (!seeds.valid.empty()) {
      const Tensor va1 = ComputeAllEmbeddings(1);
      const Tensor va2 = ComputeAllEmbeddings(2);
      Tensor valid_src(
          {static_cast<int64_t>(seeds.valid.size()), config_.out_dim});
      std::vector<int64_t> gold;
      gold.reserve(seeds.valid.size());
      for (size_t i = 0; i < seeds.valid.size(); ++i) {
        valid_src.SetRow(static_cast<int64_t>(i),
                         va1.Row(seeds.valid[i].first));
        gold.push_back(seeds.valid[i].second);
      }
      h1 = eval::EvaluateAlignment(valid_src, va2, gold).hits_at_1;
    }
    report.valid_hits1_history.push_back(h1);
    ++report.epochs_run;
    SDEA_LOG_DEBUG(StrFormat("text-encoder epoch %lld valid H@1=%.2f",
                             static_cast<long long>(epoch), h1));
    if (h1 > report.best_valid_hits1 || report.epochs_run == 1) {
      report.best_valid_hits1 = h1;
      best = SnapshotParams(Parameters());
      since_best = 0;
    } else if (++since_best >= config_.patience) {
      break;
    }
  }
  RestoreParams(best, Parameters());
  return report;
}

}  // namespace sdea::core
