#ifndef SDEA_CORE_RELATION_EMBEDDING_H_
#define SDEA_CORE_RELATION_EMBEDDING_H_

#include <memory>
#include <vector>

#include "base/status.h"
#include "core/train_report.h"
#include "kg/knowledge_graph.h"
#include "nn/gru.h"
#include "nn/layers.h"
#include "train/checkpoint.h"

namespace sdea::core {

/// Neighbor-aggregation strategies. The paper argues for BiGRU + attention
/// (Section III-B); the alternatives it mentions (mean pooling, direct
/// attention) are implemented for the design-choice ablation bench.
enum class NeighborAggregation {
  kBiGruAttention,  ///< Paper's design (Eqs. 8-15).
  kMeanPooling,     ///< Average the projected neighbor embeddings.
  kAttentionOnly,   ///< Attention over projected neighbors, no recurrence.
};

/// Hyper-parameters of the relation embedding module and the joint training
/// of Algorithm 3.
struct RelationModuleConfig {
  int64_t hidden_dim = 32;     ///< BiGRU hidden width (Hr dim).
  int64_t joint_dim = 32;      ///< Hm width (Eq. 16).
  int64_t max_neighbors = 16;  ///< Neighbor sequence cap (degree truncation).
  NeighborAggregation aggregation = NeighborAggregation::kBiGruAttention;

  float margin = 1.0f;
  float lr = 1e-3f;
  float grad_clip = 5.0f;
  int64_t batch_size = 32;  ///< Paper uses 256 at GPU scale.
  int64_t max_epochs = 40;
  int64_t patience = 5;
  int64_t num_candidates = 10;
  uint64_t seed = 6;
};

/// The relation embedding module plus joint representation learning: given
/// *frozen* pre-trained attribute embeddings Ha, it aggregates each
/// entity's neighbors with a BiGRU + attention (Eqs. 8-15) into Hr, forms
/// the joint embedding Hm = MLP([Ha; Hr]) (Eq. 16), and trains both with
/// the margin loss on [Hr; Hm] (Algorithm 3). The final entity embedding is
/// Hent = [Hr; Ha; Hm] (Eq. 17).
class RelationEmbeddingModule : public nn::Module {
 public:
  RelationEmbeddingModule() = default;

  /// Captures the (capped) neighbor lists of both KGs and builds the
  /// networks. `attr_dim` must match the attribute embeddings' width.
  Status Init(const kg::KnowledgeGraph& kg1, const kg::KnowledgeGraph& kg2,
              int64_t attr_dim, const RelationModuleConfig& config);

  /// Forward pass for one entity. `ha_side` holds the frozen attribute
  /// embeddings of the entity's own KG ([N, attr_dim]); `hr_out`/`hm_out`
  /// receive [1, hidden_dim] and [1, joint_dim] nodes (L2-normalized).
  void ForwardEntity(Graph* g, int side, kg::EntityId e,
                     const Tensor& ha_side, NodeId* hr_out,
                     NodeId* hm_out) const;

  /// Algorithm 3: trains this module (the transformer stays frozen;
  /// candidates come from the pre-trained attribute embeddings and are
  /// computed once). `ha1`/`ha2` are the frozen attribute embeddings.
  /// The loop runs on train::Trainer; pass a CheckpointManager to save the
  /// run periodically and resume it (bitwise-identically) after a kill.
  Result<TrainReport> Train(const Tensor& ha1, const Tensor& ha2,
                            const kg::AlignmentSeeds& seeds,
                            train::CheckpointManager* checkpoint = nullptr);

  /// Hent = [Hr; Ha; Hm] for every entity of `side` ([N, out width]),
  /// blocks individually L2-normalized so cosine weighs the three aspects
  /// equally.
  Tensor ComputeEntityEmbeddings(int side, const Tensor& ha_side) const;

  int64_t entity_embedding_dim() const;
  const RelationModuleConfig& config() const { return config_; }

  /// The neighbor list used for entity `e` (after capping); entities
  /// without neighbors fall back to themselves (documented deviation: the
  /// paper leaves the zero-neighbor case unspecified).
  const std::vector<kg::EntityId>& neighbor_list(int side,
                                                 kg::EntityId e) const;

 private:
  RelationModuleConfig config_;
  int64_t attr_dim_ = 0;
  std::unique_ptr<nn::BiGru> bigru_;
  std::unique_ptr<nn::Linear> projection_;  // For non-recurrent ablations.
  std::unique_ptr<nn::Mlp> attention_mlp_;  // Eq. 12.
  std::unique_ptr<nn::Mlp> joint_mlp_;      // Eq. 16.
  std::vector<std::vector<std::vector<kg::EntityId>>> neighbors_;
  bool initialized_ = false;
};

}  // namespace sdea::core

#endif  // SDEA_CORE_RELATION_EMBEDDING_H_
