#include "incr/update_log.h"

#include <utility>

#include "base/fileio.h"
#include "store/wire.h"

namespace sdea::incr {
namespace {

using store::wire::AppendU64;
using store::wire::ReadU64;

constexpr char kMagic[] = "SDEAINC1";
constexpr size_t kMagicLen = 8;

void AppendStr(std::string* out, const std::string& s) {
  AppendU64(out, s.size());
  out->append(s);
}

/// Reads a length-prefixed string, bounds-checking the length against the
/// remaining suffix before touching it.
Status ReadStr(const std::string& in, size_t* pos, std::string* out) {
  uint64_t len = 0;
  if (!ReadU64(in, pos, &len)) {
    return Status::InvalidArgument("update log truncated in string length");
  }
  if (len > in.size() - *pos) {
    return Status::InvalidArgument("update log string length exceeds data");
  }
  out->assign(in, *pos, static_cast<size_t>(len));
  *pos += static_cast<size_t>(len);
  return Status::Ok();
}

/// Reads a count whose entries each need at least `min_entry_bytes`, so a
/// hostile count cannot drive an allocation larger than the input itself.
Status ReadCount(const std::string& in, size_t* pos, size_t min_entry_bytes,
                 uint64_t* count) {
  if (!ReadU64(in, pos, count)) {
    return Status::InvalidArgument("update log truncated in count");
  }
  const uint64_t remaining = in.size() - *pos;
  if (*count > remaining / min_entry_bytes) {
    return Status::InvalidArgument("update log count exceeds byte budget");
  }
  return Status::Ok();
}

void EncodeUpdate(std::string* out, const KgUpdate& u) {
  AppendU64(out, u.new_entities.size());
  for (const std::string& e : u.new_entities) AppendStr(out, e);
  AppendU64(out, u.relational.size());
  for (const NamedRelationalTriple& t : u.relational) {
    AppendStr(out, t.head);
    AppendStr(out, t.relation);
    AppendStr(out, t.tail);
  }
  AppendU64(out, u.attributes.size());
  for (const NamedAttributeTriple& t : u.attributes) {
    AppendStr(out, t.entity);
    AppendStr(out, t.attribute);
    AppendStr(out, t.value);
  }
}

Status DecodeUpdate(const std::string& in, size_t* pos, KgUpdate* u) {
  uint64_t n = 0;
  // Every entry contains at least one length-prefixed string per field, so
  // the minimum entry size is 8 bytes (entities) or 24 bytes (triples).
  SDEA_RETURN_IF_ERROR(ReadCount(in, pos, 8, &n));
  u->new_entities.resize(static_cast<size_t>(n));
  for (std::string& e : u->new_entities) {
    SDEA_RETURN_IF_ERROR(ReadStr(in, pos, &e));
  }
  SDEA_RETURN_IF_ERROR(ReadCount(in, pos, 24, &n));
  u->relational.resize(static_cast<size_t>(n));
  for (NamedRelationalTriple& t : u->relational) {
    SDEA_RETURN_IF_ERROR(ReadStr(in, pos, &t.head));
    SDEA_RETURN_IF_ERROR(ReadStr(in, pos, &t.relation));
    SDEA_RETURN_IF_ERROR(ReadStr(in, pos, &t.tail));
  }
  SDEA_RETURN_IF_ERROR(ReadCount(in, pos, 24, &n));
  u->attributes.resize(static_cast<size_t>(n));
  for (NamedAttributeTriple& t : u->attributes) {
    SDEA_RETURN_IF_ERROR(ReadStr(in, pos, &t.entity));
    SDEA_RETURN_IF_ERROR(ReadStr(in, pos, &t.attribute));
    SDEA_RETURN_IF_ERROR(ReadStr(in, pos, &t.value));
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeUpdateLog(const std::vector<UpdateBatch>& batches) {
  std::string out(kMagic, kMagicLen);
  AppendU64(&out, batches.size());
  for (const UpdateBatch& b : batches) {
    EncodeUpdate(&out, b.kg1);
    EncodeUpdate(&out, b.kg2);
  }
  return out;
}

Result<std::vector<UpdateBatch>> DecodeUpdateLog(const std::string& data) {
  if (data.size() < kMagicLen ||
      data.compare(0, kMagicLen, kMagic, kMagicLen) != 0) {
    return Status::InvalidArgument("not an SDEAINC1 update log");
  }
  size_t pos = kMagicLen;
  uint64_t count = 0;
  // A batch is two updates; an empty update is three zero counts (24
  // bytes), so the smallest batch is 48 bytes.
  SDEA_RETURN_IF_ERROR(ReadCount(data, &pos, 48, &count));
  std::vector<UpdateBatch> batches(static_cast<size_t>(count));
  for (UpdateBatch& b : batches) {
    SDEA_RETURN_IF_ERROR(DecodeUpdate(data, &pos, &b.kg1));
    SDEA_RETURN_IF_ERROR(DecodeUpdate(data, &pos, &b.kg2));
  }
  if (pos != data.size()) {
    return Status::InvalidArgument("update log has trailing bytes");
  }
  return batches;
}

void ApplyUpdate(const KgUpdate& update, kg::KnowledgeGraph* graph) {
  graph->BeginBulkLoad();
  for (const std::string& e : update.new_entities) graph->AddEntity(e);
  for (const NamedRelationalTriple& t : update.relational) {
    const kg::EntityId h = graph->AddEntity(t.head);
    const kg::RelationId r = graph->AddRelation(t.relation);
    const kg::EntityId tl = graph->AddEntity(t.tail);
    graph->AddRelationalTriple(h, r, tl);
  }
  for (const NamedAttributeTriple& t : update.attributes) {
    const kg::EntityId e = graph->AddEntity(t.entity);
    const kg::AttributeId a = graph->AddAttribute(t.attribute);
    graph->AddAttributeTriple(e, a, t.value);
  }
  graph->EndBulkLoad();
}

Result<UpdateLog> UpdateLog::Open(std::string path) {
  if (!FileExists(path)) {
    return UpdateLog(std::move(path), {});
  }
  SDEA_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  SDEA_ASSIGN_OR_RETURN(std::vector<UpdateBatch> batches,
                        DecodeUpdateLog(data));
  return UpdateLog(std::move(path), std::move(batches));
}

Status UpdateLog::Append(UpdateBatch batch) {
  // Persist-then-accept: encode the prospective log and atomically replace
  // the file before the in-memory state changes. A failed write (disk
  // full, injected fault) leaves both views on the previous batch count.
  batches_.push_back(std::move(batch));
  const std::string encoded = EncodeUpdateLog(batches_);
  const Status written = WriteStringToFileAtomic(path_, encoded);
  if (!written.ok()) {
    batches_.pop_back();
    return written;
  }
  return Status::Ok();
}

Status UpdateLog::Replay(int64_t from_batch, kg::KnowledgeGraph* kg1,
                         kg::KnowledgeGraph* kg2) const {
  if (from_batch < 0 || from_batch > size()) {
    return Status::InvalidArgument("replay cursor out of range");
  }
  for (int64_t i = from_batch; i < size(); ++i) {
    ApplyUpdate(batches_[static_cast<size_t>(i)].kg1, kg1);
    ApplyUpdate(batches_[static_cast<size_t>(i)].kg2, kg2);
  }
  return Status::Ok();
}

}  // namespace sdea::incr
