#include "incr/aligner.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "base/check.h"
#include "nn/module.h"
#include "nn/serialization.h"
#include "obs/histogram.h"
#include "obs/obs.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "train/trainer.h"

namespace sdea::incr {
namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void NormalizeRow(float* p, int64_t d) {
  float norm = 0.0f;
  for (int64_t k = 0; k < d; ++k) norm += p[k] * p[k];
  norm = std::sqrt(norm);
  if (norm > 1e-12f) {
    for (int64_t k = 0; k < d; ++k) p[k] /= norm;
  }
}

/// Registry handles for the incr.* metrics. Same static-handle idiom as
/// the Trainer's: resolve once, record gated on obs::Enabled().
struct IncrMetrics {
  obs::Counter* increments;
  obs::Counter* noop_increments;
  obs::Counter* promotions;
  obs::Counter* demotions;
  obs::HistogramCell* diff_rows;
  obs::HistogramCell* touched;
  obs::HistogramCell* affected;
  obs::HistogramCell* reembed_ms;

  static const IncrMetrics& Get() {
    static const IncrMetrics m = [] {
      obs::MetricsRegistry* reg = obs::MetricsRegistry::Default();
      IncrMetrics out;
      out.increments = reg->GetCounter("incr.increments");
      out.noop_increments = reg->GetCounter("incr.noop_increments");
      out.promotions = reg->GetCounter("incr.promotions");
      out.demotions = reg->GetCounter("incr.demotions");
      const auto sizes =
          obs::Histogram::Exponential(1.0, 2.0, 24).upper_bounds();
      out.diff_rows = reg->GetHistogram("incr.diff_rows", sizes);
      out.touched = reg->GetHistogram("incr.touched_entities", sizes);
      out.affected = reg->GetHistogram("incr.affected_entities", sizes);
      out.reembed_ms = reg->GetHistogram(
          "incr.reembed_ms",
          obs::Histogram::Exponential(0.25, 2.0, 24).upper_bounds());
      return out;
    }();
    return m;
  }
};

}  // namespace

// ---- Model ------------------------------------------------------------------

/// Separate entity/relation tables per KG. Growing one side appends rows
/// to its own table only — the other side's row ids stay put, which is
/// what makes warm-started re-embedding across increments possible without
/// remapping.
struct IncrementalAligner::Net : nn::Module {
  Parameter* ent1;
  Parameter* ent2;
  Parameter* rel1;
  Parameter* rel2;

  Net(Tensor e1, Tensor e2, Tensor r1, Tensor r2) {
    ent1 = AddParameter("incr.ent1", std::move(e1));
    ent2 = AddParameter("incr.ent2", std::move(e2));
    rel1 = AddParameter("incr.rel1", std::move(r1));
    rel2 = AddParameter("incr.rel2", std::move(r2));
  }
};

/// Trainer adapter: full-batch SGD over the selected union triples, with
/// the pseudo-seed pull at epoch start and masked renormalization at epoch
/// end (the exact cadence TransE's legacy loop used for its renormalize).
class IncrementalAligner::Task : public train::TrainTask {
 public:
  Task(IncrementalAligner* a, const std::vector<UnionTriple>& triples)
      : a_(a), triples_(triples) {}

  size_t num_examples() const override { return triples_.size(); }
  Rng* rng() override { return &a_->rng_; }
  nn::Module* module() override { return a_->net_.get(); }

  float TrainBatch(const uint64_t* ids, size_t n) override {
    for (size_t i = 0; i < n; ++i) {
      a_->TrainTriple(triples_[ids[i]]);
    }
    return 0.0f;
  }

  void OnEpochBegin(int64_t /*epoch*/) override { a_->PullPromoted(); }
  void OnEpochEnd(int64_t /*epoch*/) override { a_->NormalizeTrainable(); }

 private:
  IncrementalAligner* a_;
  const std::vector<UnionTriple>& triples_;
};

// ---- Lifecycle --------------------------------------------------------------

IncrementalAligner::IncrementalAligner(kg::KnowledgeGraph* kg1,
                                       kg::KnowledgeGraph* kg2,
                                       IncrementalAlignerOptions options)
    : kg1_(kg1), kg2_(kg2), opts_(options), rng_(options.seed) {}

IncrementalAligner::~IncrementalAligner() = default;

Status IncrementalAligner::FitBase(
    const std::vector<std::pair<kg::EntityId, kg::EntityId>>& seeds) {
  if (kg1_ == nullptr || kg2_ == nullptr) {
    return Status::InvalidArgument("IncrementalAligner: null graphs");
  }
  if (opts_.dim <= 0) return Status::InvalidArgument("dim must be > 0");
  snap1_ = kg1_->Snapshot();
  snap2_ = kg2_->Snapshot();
  n1_ = snap1_.num_entities();
  n2_ = snap2_.num_entities();
  if (n1_ == 0 || n2_ == 0) {
    return Status::InvalidArgument("FitBase requires non-empty graphs");
  }
  nr1_ = std::max<int64_t>(1, snap1_.num_relations());
  nr2_ = std::max<int64_t>(1, snap2_.num_relations());

  resolve2_.assign(static_cast<size_t>(n2_), -1);
  seed_used1_.assign(static_cast<size_t>(n1_), 0);
  for (const auto& [a, b] : seeds) {
    if (a < 0 || a >= n1_ || b < 0 || b >= n2_) {
      return Status::InvalidArgument("seed pair out of range");
    }
    if (seed_used1_[static_cast<size_t>(a)] != 0 ||
        resolve2_[static_cast<size_t>(b)] >= 0) {
      return Status::InvalidArgument("duplicate entity in seed pairs");
    }
    resolve2_[static_cast<size_t>(b)] = a;
    seed_used1_[static_cast<size_t>(a)] = 1;
  }
  promoted_.clear();
  promoted1_used_.assign(static_cast<size_t>(n1_), 0);
  promoted2_used_.assign(static_cast<size_t>(n2_), 0);

  const float limit = 6.0f / std::sqrt(static_cast<float>(opts_.dim));
  Tensor e1 = Tensor::RandomUniform({n1_, opts_.dim}, limit, &rng_);
  Tensor e2 = Tensor::RandomUniform({n2_, opts_.dim}, limit, &rng_);
  Tensor r1 = Tensor::RandomUniform({nr1_, opts_.dim}, limit, &rng_);
  Tensor r2 = Tensor::RandomUniform({nr2_, opts_.dim}, limit, &rng_);
  tmath::L2NormalizeRowsInPlace(&e1);
  tmath::L2NormalizeRowsInPlace(&e2);
  tmath::L2NormalizeRowsInPlace(&r1);
  tmath::L2NormalizeRowsInPlace(&r2);
  net_ = std::make_unique<Net>(std::move(e1), std::move(e2), std::move(r1),
                               std::move(r2));

  ent1_train_.assign(static_cast<size_t>(n1_), 1);
  ent2_train_.assign(static_cast<size_t>(n2_), 1);
  rel1_train_.assign(static_cast<size_t>(nr1_), 1);
  rel2_train_.assign(static_cast<size_t>(nr2_), 1);

  obs::TraceSpan span("incr/fit_base");
  SDEA_RETURN_IF_ERROR(
      RunTraining(CollectAllTriples(), opts_.base_epochs, /*warm=*/""));
  MaterializeEmbeddings();
  last_epoch1_ = snap1_.epoch();
  last_epoch2_ = snap2_.epoch();
  fitted_ = true;
  return Status::Ok();
}

// ---- SGD core ---------------------------------------------------------------

IncrementalAligner::Slot IncrementalAligner::EntSlot(int8_t side,
                                                     int32_t id) {
  const int64_t d = opts_.dim;
  if (side == 2) {
    const int32_t merged = resolve2_[static_cast<size_t>(id)];
    if (merged < 0) {
      return Slot{net_->ent2->value.data() + static_cast<int64_t>(id) * d,
                  ent2_train_[static_cast<size_t>(id)] != 0};
    }
    id = merged;
  }
  return Slot{net_->ent1->value.data() + static_cast<int64_t>(id) * d,
              ent1_train_[static_cast<size_t>(id)] != 0};
}

bool IncrementalAligner::RowTrainable(int8_t side, int32_t id) const {
  if (side == 2) {
    const int32_t merged = resolve2_[static_cast<size_t>(id)];
    if (merged < 0) return ent2_train_[static_cast<size_t>(id)] != 0;
    id = merged;
  }
  return ent1_train_[static_cast<size_t>(id)] != 0;
}

void IncrementalAligner::TrainTriple(const UnionTriple& tr) {
  const int64_t d = opts_.dim;
  const Slot h = EntSlot(tr.side, tr.head);
  const Slot t = EntSlot(tr.side, tr.tail);
  float* rel;
  bool rel_train;
  if (tr.side == 1) {
    rel = net_->rel1->value.data() + static_cast<int64_t>(tr.relation) * d;
    rel_train = rel1_train_[static_cast<size_t>(tr.relation)] != 0;
  } else {
    rel = net_->rel2->value.data() + static_cast<int64_t>(tr.relation) * d;
    rel_train = rel2_train_[static_cast<size_t>(tr.relation)] != 0;
  }

  // Corrupt head or tail within the triple's own KG; the draw always
  // happens so the RNG stream is a pure function of the shuffled order.
  const bool corrupt_head = rng_.Bernoulli(0.5);
  const int64_t n_side = tr.side == 1 ? n1_ : n2_;
  const auto neg_id =
      static_cast<int32_t>(rng_.UniformInt(static_cast<uint64_t>(n_side)));
  Slot hn = h;
  Slot tn = t;
  if (corrupt_head) {
    hn = EntSlot(tr.side, neg_id);
  } else {
    tn = EntSlot(tr.side, neg_id);
  }
  if (hn.p == h.p && tn.p == t.p) return;  // Corruption resolved to itself.

  float d_pos = 0.0f;
  float d_neg = 0.0f;
  for (int64_t k = 0; k < d; ++k) {
    const float dp = h.p[k] + rel[k] - t.p[k];
    const float dn = hn.p[k] + rel[k] - tn.p[k];
    d_pos += dp * dp;
    d_neg += dn * dn;
  }
  if (opts_.margin + d_pos - d_neg <= 0.0f) return;  // Hinge inactive.

  const float lr = opts_.lr;
  for (int64_t k = 0; k < d; ++k) {
    const float gp = 2.0f * (h.p[k] + rel[k] - t.p[k]);
    const float gn = 2.0f * (hn.p[k] + rel[k] - tn.p[k]);
    // Every write is gated on the row's trainable mask — frozen rows
    // contribute to distances but come out of an increment bitwise-intact.
    if (h.trainable) h.p[k] -= lr * gp;
    if (t.trainable) t.p[k] += lr * gp;
    if (hn.trainable) hn.p[k] += lr * gn;
    if (tn.trainable) tn.p[k] -= lr * gn;
    if (rel_train) rel[k] -= lr * (gp - gn);
  }
}

void IncrementalAligner::PullPromoted() {
  const int64_t d = opts_.dim;
  const float lr = opts_.pull_lr;
  for (const auto& [a, b] : promoted_) {
    // Promoted entities are never hard-merged, so the rows are distinct.
    float* pa = net_->ent1->value.data() + static_cast<int64_t>(a) * d;
    float* pb = net_->ent2->value.data() + static_cast<int64_t>(b) * d;
    const bool ta = ent1_train_[static_cast<size_t>(a)] != 0;
    const bool tb = ent2_train_[static_cast<size_t>(b)] != 0;
    if (!ta && !tb) continue;
    for (int64_t k = 0; k < d; ++k) {
      const float g = 2.0f * (pa[k] - pb[k]);
      if (ta) pa[k] -= lr * g;
      if (tb) pb[k] += lr * g;
    }
  }
}

void IncrementalAligner::NormalizeTrainable() {
  const int64_t d = opts_.dim;
  float* e1 = net_->ent1->value.data();
  for (int64_t i = 0; i < n1_; ++i) {
    if (ent1_train_[static_cast<size_t>(i)] != 0) NormalizeRow(e1 + i * d, d);
  }
  float* e2 = net_->ent2->value.data();
  for (int64_t i = 0; i < n2_; ++i) {
    if (ent2_train_[static_cast<size_t>(i)] != 0) NormalizeRow(e2 + i * d, d);
  }
}

Status IncrementalAligner::RunTraining(
    const std::vector<UnionTriple>& triples, int64_t epochs,
    std::string warm_start) {
  if (triples.empty() || epochs <= 0) return Status::Ok();
  Task task(this, triples);
  train::TrainerOptions options;
  options.max_epochs = epochs;
  options.batch_size = static_cast<int64_t>(triples.size());
  options.shuffle = train::TrainerOptions::Shuffle::kFreshPerEpoch;
  options.warm_start_params = std::move(warm_start);
  train::Trainer trainer(&task, options);
  return trainer.Run().status();
}

// ---- Triple selection -------------------------------------------------------

std::vector<IncrementalAligner::UnionTriple>
IncrementalAligner::CollectAllTriples() const {
  std::vector<UnionTriple> out;
  out.reserve(static_cast<size_t>(snap1_.num_relational_triples() +
                                  snap2_.num_relational_triples()));
  snap1_.ForEachRelational(
      [&](int64_t, kg::EntityId h, kg::RelationId r, kg::EntityId t) {
        out.push_back(UnionTriple{h, r, t, 1});
      });
  snap2_.ForEachRelational(
      [&](int64_t, kg::EntityId h, kg::RelationId r, kg::EntityId t) {
        out.push_back(UnionTriple{h, r, t, 2});
      });
  return out;
}

std::vector<IncrementalAligner::UnionTriple>
IncrementalAligner::CollectAffectedTriples() const {
  // A triple trains when any of its (resolved) entity rows is trainable:
  // the frozen endpoints anchor the affected ones to the stable part of
  // the embedding space.
  std::vector<UnionTriple> out;
  snap1_.ForEachRelational(
      [&](int64_t, kg::EntityId h, kg::RelationId r, kg::EntityId t) {
        if (RowTrainable(1, h) || RowTrainable(1, t)) {
          out.push_back(UnionTriple{h, r, t, 1});
        }
      });
  snap2_.ForEachRelational(
      [&](int64_t, kg::EntityId h, kg::RelationId r, kg::EntityId t) {
        if (RowTrainable(2, h) || RowTrainable(2, t)) {
          out.push_back(UnionTriple{h, r, t, 2});
        }
      });
  return out;
}

// ---- Growth -----------------------------------------------------------------

Tensor IncrementalAligner::GrownTable(const Tensor& old, int64_t new_rows) {
  const int64_t d = opts_.dim;
  const int64_t old_rows = old.dim(0);
  if (new_rows == old_rows) return old;
  Tensor grown({new_rows, d});
  std::copy(old.data(), old.data() + old_rows * d, grown.data());
  const float limit = 6.0f / std::sqrt(static_cast<float>(d));
  Tensor fresh =
      Tensor::RandomUniform({new_rows - old_rows, d}, limit, &rng_);
  tmath::L2NormalizeRowsInPlace(&fresh);
  std::copy(fresh.data(), fresh.data() + (new_rows - old_rows) * d,
            grown.data() + old_rows * d);
  return grown;
}

void IncrementalAligner::GrowTables(const kg::KgSnapshot& snap1,
                                    const kg::KgSnapshot& snap2) {
  const int64_t n1 = snap1.num_entities();
  const int64_t n2 = snap2.num_entities();
  const int64_t nr1 = std::max<int64_t>(nr1_, snap1.num_relations());
  const int64_t nr2 = std::max<int64_t>(nr2_, snap2.num_relations());
  if (n1 != n1_ || n2 != n2_ || nr1 != nr1_ || nr2 != nr2_) {
    Tensor e1 = GrownTable(net_->ent1->value, n1);
    Tensor e2 = GrownTable(net_->ent2->value, n2);
    Tensor r1 = GrownTable(net_->rel1->value, nr1);
    Tensor r2 = GrownTable(net_->rel2->value, nr2);
    net_ = std::make_unique<Net>(std::move(e1), std::move(e2), std::move(r1),
                                 std::move(r2));
  }
  n1_ = n1;
  n2_ = n2;
  nr1_ = nr1;
  nr2_ = nr2;
  resolve2_.resize(static_cast<size_t>(n2_), -1);
  seed_used1_.resize(static_cast<size_t>(n1_), 0);
  promoted1_used_.resize(static_cast<size_t>(n1_), 0);
  promoted2_used_.resize(static_cast<size_t>(n2_), 0);
}

// ---- Neighborhood -----------------------------------------------------------

std::vector<kg::EntityId> IncrementalAligner::ExpandNeighborhood(
    const kg::KgSnapshot& snap, std::vector<kg::EntityId> touched) const {
  std::vector<uint8_t> visited(static_cast<size_t>(snap.num_entities()), 0);
  std::vector<kg::EntityId> frontier;
  int64_t admitted = 0;
  for (kg::EntityId e : touched) {
    if (e < 0 || e >= snap.num_entities()) continue;
    if (visited[static_cast<size_t>(e)] == 0) {
      visited[static_cast<size_t>(e)] = 1;
      frontier.push_back(e);
      ++admitted;
    }
  }
  // The expansion budget. Touched entities are exempt (admitted above
  // regardless), so the cap only throttles how far the ripple spreads.
  int64_t budget = snap.num_entities();
  if (opts_.affected_frac_cap > 0.0) {
    budget = std::max(
        admitted, static_cast<int64_t>(opts_.affected_frac_cap *
                                       static_cast<double>(budget)));
  }
  for (int64_t hop = 0;
       hop < opts_.k_hops && !frontier.empty() && admitted < budget; ++hop) {
    std::vector<kg::EntityId> next;
    for (kg::EntityId e : frontier) {
      // Hubs are re-embedded but not expanded through: one edge to a
      // type-concept entity must not drag in the whole graph.
      if (snap.DegreeOf(e) > opts_.hub_degree_cap) continue;
      for (const kg::NeighborEdge& edge : snap.NeighborsOf(e)) {
        if (admitted >= budget) break;
        if (visited[static_cast<size_t>(edge.neighbor)] == 0) {
          visited[static_cast<size_t>(edge.neighbor)] = 1;
          next.push_back(edge.neighbor);
          ++admitted;
        }
      }
      if (admitted >= budget) break;
    }
    frontier = std::move(next);
  }
  std::vector<kg::EntityId> out;
  for (int64_t e = 0; e < snap.num_entities(); ++e) {
    if (visited[static_cast<size_t>(e)] != 0) {
      out.push_back(static_cast<kg::EntityId>(e));
    }
  }
  return out;
}

// ---- Repair & bootstrap -----------------------------------------------------

namespace {

float Dot(const float* a, const float* b, int64_t d) {
  float s = 0.0f;
  for (int64_t k = 0; k < d; ++k) s += a[k] * b[k];
  return s;
}

}  // namespace

int64_t IncrementalAligner::RepairPromoted(
    std::vector<kg::EntityId>* demoted1, std::vector<kg::EntityId>* demoted2) {
  if (promoted_.empty()) return 0;
  obs::TraceSpan span("incr/repair");
  Tensor s1 = emb1_;
  Tensor s2 = emb2_;
  tmath::L2NormalizeRowsInPlace(&s1);
  tmath::L2NormalizeRowsInPlace(&s2);
  const float* p1 = s1.data();
  const float* p2 = s2.data();
  const int64_t n1 = s1.dim(0);
  const int64_t n2 = s2.dim(0);
  const int64_t d = opts_.dim;

  std::vector<std::pair<kg::EntityId, kg::EntityId>> kept;
  kept.reserve(promoted_.size());
  for (const auto& [a, b] : promoted_) {
    const float* va = p1 + static_cast<int64_t>(a) * d;
    const float* vb = p2 + static_cast<int64_t>(b) * d;
    const float score = Dot(va, vb, d);
    // Mutual-nearest check against *all* entities — a promoted pair whose
    // endpoints drifted toward someone else has lost its evidence. Scored
    // per pair (|promoted| row/column scans, early exit on the first
    // usurper) rather than via a full n1 x n2 similarity matrix.
    bool healthy = score >= opts_.repair_threshold;
    for (int64_t j = 0; healthy && j < n2; ++j) {
      if (j != b && Dot(va, p2 + j * d, d) > score) healthy = false;
    }
    for (int64_t i = 0; healthy && i < n1; ++i) {
      if (i != a && Dot(p1 + i * d, vb, d) > score) healthy = false;
    }
    if (healthy) {
      kept.push_back({a, b});
    } else {
      promoted1_used_[static_cast<size_t>(a)] = 0;
      promoted2_used_[static_cast<size_t>(b)] = 0;
      demoted1->push_back(a);
      demoted2->push_back(b);
    }
  }
  const auto demoted = static_cast<int64_t>(promoted_.size() - kept.size());
  promoted_ = std::move(kept);
  return demoted;
}

int64_t IncrementalAligner::BootstrapPromote(
    const std::vector<kg::EntityId>& candidates1) {
  obs::TraceSpan span("incr/bootstrap");
  Tensor s1 = emb1_;
  Tensor s2 = emb2_;
  tmath::L2NormalizeRowsInPlace(&s1);
  tmath::L2NormalizeRowsInPlace(&s2);
  const float* p1 = s1.data();
  const float* p2 = s2.data();
  const int64_t d = opts_.dim;

  // Eligibility excludes gold-merged and already-promoted entities; the
  // argmaxes are restricted to eligible rows/columns so a hard-merged
  // pair's trivially perfect score cannot shadow a genuine candidate.
  auto eligible1 = [&](int64_t a) {
    return seed_used1_[static_cast<size_t>(a)] == 0 &&
           promoted1_used_[static_cast<size_t>(a)] == 0;
  };
  auto eligible2 = [&](int64_t b) {
    return resolve2_[static_cast<size_t>(b)] < 0 &&
           promoted2_used_[static_cast<size_t>(b)] == 0;
  };

  // Only `candidates1` (the entities whose embeddings this fit actually
  // moved) can open new promotions — frozen rows scored the same last
  // increment, so re-scanning them cannot surface new evidence. This keeps
  // the pass O(|affected| * n) instead of O(n1 * n2). The mutual check
  // still runs against *all* of KG1: b must prefer a globally.
  struct Candidate {
    float score;
    kg::EntityId a;
    kg::EntityId b;
  };
  std::vector<Candidate> candidates;
  for (kg::EntityId a : candidates1) {
    if (!eligible1(a)) continue;
    const float* va = p1 + static_cast<int64_t>(a) * d;
    int64_t best = -1;
    float best_score = -2.0f;  // Below any cosine.
    float second = -2.0f;
    for (int64_t j = 0; j < n2_; ++j) {
      if (!eligible2(j)) continue;
      const float sj = Dot(va, p2 + j * d, d);
      if (best < 0 || sj > best_score) {
        second = std::max(second, best_score);
        best = j;
        best_score = sj;
      } else {
        second = std::max(second, sj);
      }
    }
    if (best < 0) continue;
    if (best_score < opts_.bootstrap_threshold) continue;
    if (best_score - second < opts_.bootstrap_margin) continue;
    const float* vb = p2 + best * d;
    bool mutual = true;
    for (int64_t i = 0; mutual && i < n1_; ++i) {
      if (i != a && eligible1(i) && Dot(p1 + i * d, vb, d) > best_score) {
        mutual = false;
      }
    }
    if (!mutual) continue;
    candidates.push_back(Candidate{best_score, a,
                                   static_cast<kg::EntityId>(best)});
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.score != y.score) return x.score > y.score;
              return x.a < y.a;
            });
  int64_t added = 0;
  for (const Candidate& c : candidates) {
    if (added >= opts_.bootstrap_cap) break;
    if (promoted1_used_[static_cast<size_t>(c.a)] != 0 ||
        promoted2_used_[static_cast<size_t>(c.b)] != 0) {
      continue;  // An exact score tie let two candidates claim one slot.
    }
    promoted_.push_back({c.a, c.b});
    promoted1_used_[static_cast<size_t>(c.a)] = 1;
    promoted2_used_[static_cast<size_t>(c.b)] = 1;
    ++added;
  }
  return added;
}

// ---- Increment driver -------------------------------------------------------

Result<IncrementReport> IncrementalAligner::ProcessIncrement() {
  if (!fitted_) {
    return Status::FailedPrecondition(
        "ProcessIncrement requires FitBase first");
  }
  obs::TraceSpan span("incr/increment");
  const auto t0 = std::chrono::steady_clock::now();

  const kg::KgSnapshot snap1 = kg1_->Snapshot();
  const kg::KgSnapshot snap2 = kg2_->Snapshot();
  SDEA_ASSIGN_OR_RETURN(kg::KgDiff diff1, snap1.DiffSince(last_epoch1_));
  SDEA_ASSIGN_OR_RETURN(kg::KgDiff diff2, snap2.DiffSince(last_epoch2_));

  IncrementReport rep;
  rep.epoch1 = snap1.epoch();
  rep.epoch2 = snap2.epoch();
  rep.diff_rows = diff1.num_new_rel_rows() + diff1.num_new_attr_rows() +
                  diff2.num_new_rel_rows() + diff2.num_new_attr_rows();
  rep.new_entities = diff1.num_new_entities() + diff2.num_new_entities();
  rep.total_entities = snap1.num_entities() + snap2.num_entities();

  // Repair first: demotions feed the re-embed set, so a collapsed pair's
  // entities get retrained in the same increment that demotes them.
  std::vector<kg::EntityId> demoted1;
  std::vector<kg::EntityId> demoted2;
  rep.demoted = RepairPromoted(&demoted1, &demoted2);

  if (diff1.empty() && diff2.empty() && rep.demoted == 0) {
    // Nothing changed anywhere: leave every parameter bitwise-untouched.
    rep.no_op = true;
    rep.total_ms = MsSince(t0);
    if (obs::Enabled()) IncrMetrics::Get().noop_increments->Increment();
    return rep;
  }

  GrowTables(snap1, snap2);

  std::vector<kg::EntityId> touched1 = snap1.TouchedEntities(diff1);
  touched1.insert(touched1.end(), demoted1.begin(), demoted1.end());
  std::vector<kg::EntityId> touched2 = snap2.TouchedEntities(diff2);
  touched2.insert(touched2.end(), demoted2.begin(), demoted2.end());
  rep.touched =
      static_cast<int64_t>(touched1.size() + touched2.size());

  const std::vector<kg::EntityId> affected1 =
      ExpandNeighborhood(snap1, std::move(touched1));
  const std::vector<kg::EntityId> affected2 =
      ExpandNeighborhood(snap2, std::move(touched2));
  rep.affected = static_cast<int64_t>(affected1.size() + affected2.size());

  // Trainable masks: only the affected neighborhood moves. A gold-merged
  // affected KG2 entity shares its KG1 partner's row, so that row unfreezes
  // too. Relations stay frozen except rows this increment introduced.
  ent1_train_.assign(static_cast<size_t>(n1_), 0);
  ent2_train_.assign(static_cast<size_t>(n2_), 0);
  for (kg::EntityId e : affected1) ent1_train_[static_cast<size_t>(e)] = 1;
  for (kg::EntityId e : affected2) {
    ent2_train_[static_cast<size_t>(e)] = 1;
    const int32_t merged = resolve2_[static_cast<size_t>(e)];
    if (merged >= 0) ent1_train_[static_cast<size_t>(merged)] = 1;
  }
  rel1_train_.assign(static_cast<size_t>(nr1_), 0);
  rel2_train_.assign(static_cast<size_t>(nr2_), 0);
  for (int64_t r = diff1.relation_begin; r < diff1.relation_end; ++r) {
    rel1_train_[static_cast<size_t>(r)] = 1;
  }
  for (int64_t r = diff2.relation_begin; r < diff2.relation_end; ++r) {
    rel2_train_[static_cast<size_t>(r)] = 1;
  }

  snap1_ = snap1;
  snap2_ = snap2;
  const std::vector<UnionTriple> triples = CollectAffectedTriples();
  rep.trained_triples = static_cast<int64_t>(triples.size());

  {
    obs::TraceSpan reembed_span("incr/reembed");
    const auto re_t0 = std::chrono::steady_clock::now();
    // Warm start: the Trainer loads the post-growth parameters (old rows
    // carried over, new rows seeded-init) through the same entry point a
    // from-checkpoint re-embed job would use.
    SDEA_RETURN_IF_ERROR(RunTraining(triples, opts_.incr_epochs,
                                     nn::SerializeParameters(net_.get())));
    rep.reembed_ms = MsSince(re_t0);
  }
  MaterializeEmbeddings();

  rep.promoted = BootstrapPromote(affected1);

  last_epoch1_ = snap1.epoch();
  last_epoch2_ = snap2.epoch();
  rep.total_ms = MsSince(t0);

  if (obs::Enabled()) {
    const IncrMetrics& m = IncrMetrics::Get();
    m.increments->Increment();
    m.promotions->Increment(static_cast<uint64_t>(rep.promoted));
    m.demotions->Increment(static_cast<uint64_t>(rep.demoted));
    m.diff_rows->Record(static_cast<double>(rep.diff_rows));
    m.touched->Record(static_cast<double>(rep.touched));
    m.affected->Record(static_cast<double>(rep.affected));
    m.reembed_ms->Record(rep.reembed_ms);
  }
  return rep;
}

// ---- Outputs ----------------------------------------------------------------

void IncrementalAligner::MaterializeEmbeddings() {
  const int64_t d = opts_.dim;
  emb1_ = net_->ent1->value;
  emb2_ = Tensor({n2_, d});
  const float* e1 = net_->ent1->value.data();
  const float* e2 = net_->ent2->value.data();
  for (int64_t b = 0; b < n2_; ++b) {
    const int32_t merged = resolve2_[static_cast<size_t>(b)];
    const float* src =
        merged >= 0 ? e1 + static_cast<int64_t>(merged) * d : e2 + b * d;
    std::copy(src, src + d, emb2_.data() + b * d);
  }
}

eval::RankingMetrics IncrementalAligner::Evaluate(
    const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs) const {
  std::vector<int64_t> gold(static_cast<size_t>(n1_), -1);
  for (const auto& [a, b] : pairs) {
    if (a >= 0 && a < n1_ && b >= 0 && b < n2_) {
      gold[static_cast<size_t>(a)] = b;
    }
  }
  return eval::EvaluateAlignment(emb1_, emb2_, gold);
}

Result<uint64_t> IncrementalAligner::Publish(
    serve::SnapshotManager* manager) const {
  if (!fitted_) {
    return Status::FailedPrecondition("Publish requires FitBase first");
  }
  if (manager == nullptr) {
    return Status::InvalidArgument("Publish: null manager");
  }
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(n2_));
  for (int64_t i = 0; i < n2_; ++i) {
    names.push_back(snap2_.entity_name(static_cast<kg::EntityId>(i)));
  }
  SDEA_ASSIGN_OR_RETURN(
      core::EmbeddingStore store,
      core::EmbeddingStore::Create(std::move(names), emb2_));
  // SwapWithKg pairs the embeddings with the pinned snapshot they were
  // computed from — a reader never sees new names against old vectors.
  return manager->SwapWithKg(std::move(store), snap2_);
}

}  // namespace sdea::incr
