#ifndef SDEA_INCR_UPDATE_LOG_H_
#define SDEA_INCR_UPDATE_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "kg/knowledge_graph.h"

namespace sdea::incr {

// Streamed KG updates are *name-based*: a batch carries entity / relation /
// attribute names, not dense ids, so the same batch replays identically
// into a freshly loaded graph whose id assignment may differ (ids are an
// artifact of insertion order; names are the stable identity). Application
// interns names through the KnowledgeGraph facade, so referencing an entity
// that does not exist yet creates it — the intended streaming semantics
// (adds may arrive before the entity's own introduction record).

/// A streamed relational triple, by name.
struct NamedRelationalTriple {
  std::string head;
  std::string relation;
  std::string tail;
};

/// A streamed attribute triple, by name (value is free text).
struct NamedAttributeTriple {
  std::string entity;
  std::string attribute;
  std::string value;
};

/// Everything one increment adds to a single KG.
struct KgUpdate {
  std::vector<std::string> new_entities;  ///< Explicit introductions.
  std::vector<NamedRelationalTriple> relational;
  std::vector<NamedAttributeTriple> attributes;

  bool empty() const {
    return new_entities.empty() && relational.empty() && attributes.empty();
  }
  int64_t size() const {
    return static_cast<int64_t>(new_entities.size() + relational.size() +
                                attributes.size());
  }
};

/// One increment across the aligned pair of KGs.
struct UpdateBatch {
  KgUpdate kg1;
  KgUpdate kg2;

  bool empty() const { return kg1.empty() && kg2.empty(); }
};

// ---- SDEAINC1 wire format ---------------------------------------------------
//
//   "SDEAINC1"                                  8-byte magic
//   u64 batch_count
//   per batch, for kg1 then kg2:
//     u64 entity_count,   entity_count   x str
//     u64 rel_count,      rel_count      x (str head, str relation, str tail)
//     u64 attr_count,     attr_count     x (str entity, str attribute, str value)
//   str = u64 byte_length + raw bytes
//
// All integers little-endian. The decoder is budget-form: every count is
// checked against the bytes actually remaining (count * min_entry_bytes <=
// remaining) before any allocation, and every string length against the
// remaining suffix, so truncated or hostile inputs fail with
// InvalidArgument instead of over-allocating or reading past the end.

/// Serializes `batches` in SDEAINC1 format.
std::string EncodeUpdateLog(const std::vector<UpdateBatch>& batches);

/// Parses an SDEAINC1 blob. Errors with InvalidArgument on bad magic,
/// truncation, oversized counts/lengths, or trailing bytes.
Result<std::vector<UpdateBatch>> DecodeUpdateLog(const std::string& data);

/// Applies one update to a graph through the facade's interning API, inside
/// a BeginBulkLoad/EndBulkLoad bracket so the whole update publishes as one
/// commit (one epoch). Unknown relation/attribute/entity names are interned
/// on first use.
void ApplyUpdate(const KgUpdate& update, kg::KnowledgeGraph* graph);

/// A durable, replayable stream of update batches. Append() persists the
/// full log atomically *before* accepting the batch into memory, so a crash
/// at any point leaves a decodable log whose batch count equals what every
/// successful Append observed — recovery is "replay everything after the
/// last applied batch" (see Replay).
///
/// Single-writer, like the store it feeds.
class UpdateLog {
 public:
  /// Opens the log at `path`. A missing file is an empty log (first run);
  /// a present-but-corrupt file is an error, never silently truncated.
  static Result<UpdateLog> Open(std::string path);

  /// Appends a batch: rewrites the log file atomically, then records the
  /// batch in memory. On write failure the log (memory and disk) is
  /// unchanged and the error is returned.
  Status Append(UpdateBatch batch);

  /// Applies batches [from_batch, size()) to the graph pair, one
  /// BeginBulkLoad/EndBulkLoad commit per batch per graph. `from_batch` is
  /// the number of batches the caller already applied (its epoch cursor).
  Status Replay(int64_t from_batch, kg::KnowledgeGraph* kg1,
                kg::KnowledgeGraph* kg2) const;

  int64_t size() const { return static_cast<int64_t>(batches_.size()); }
  const std::vector<UpdateBatch>& batches() const { return batches_; }
  const std::string& path() const { return path_; }

 private:
  UpdateLog(std::string path, std::vector<UpdateBatch> batches)
      : path_(std::move(path)), batches_(std::move(batches)) {}

  std::string path_;
  std::vector<UpdateBatch> batches_;
};

}  // namespace sdea::incr

#endif  // SDEA_INCR_UPDATE_LOG_H_
