#ifndef SDEA_INCR_ALIGNER_H_
#define SDEA_INCR_ALIGNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "eval/metrics.h"
#include "kg/knowledge_graph.h"
#include "serve/snapshot.h"
#include "tensor/tensor.h"

namespace sdea::incr {

struct IncrementalAlignerOptions {
  int64_t dim = 64;
  float lr = 0.01f;
  float margin = 1.5f;      ///< TransE hinge margin.
  int64_t base_epochs = 60; ///< FitBase epochs over all triples.
  int64_t incr_epochs = 20; ///< Re-embed epochs over the affected triples.

  /// Affected-neighborhood expansion: entities within `k_hops` of a touched
  /// entity are re-embedded. Entities with relational degree above
  /// `hub_degree_cap` are re-embedded when reached but not expanded
  /// through — without the cap, one edge to a type-concept hub would pull
  /// in nearly the whole graph and defeat incrementality.
  int64_t k_hops = 2;
  int64_t hub_degree_cap = 64;

  /// Hard budget on the re-embed set: the BFS stops admitting entities
  /// once a side's affected set reaches this fraction of that side's
  /// entities. Admission is closest-first (all touched entities, then hop
  /// 1, then hop 2, ...), and diff-touched entities are always admitted —
  /// a stale embedding for a changed entity is never acceptable. <= 0
  /// disables the budget.
  double affected_frac_cap = 0.15;

  /// Bootstrapping (BootEA-lite): mutually-nearest pairs scoring at least
  /// `bootstrap_threshold` cosine with a top-2 margin of at least
  /// `bootstrap_margin` are promoted to pseudo-seeds, at most
  /// `bootstrap_cap` per increment. Pseudo-seeds are pulled together with
  /// `pull_lr` each epoch — *soft* alignment, unlike gold seeds which share
  /// an embedding slot. Soft matters: the repair pass can still measure a
  /// promoted pair's margin (a hard-merged pair always scores 1.0).
  float pull_lr = 0.005f;
  float bootstrap_threshold = 0.7f;
  float bootstrap_margin = 0.02f;
  int64_t bootstrap_cap = 500;

  /// Repair: before each re-embed, promoted pairs that lost mutual
  /// nearest-neighborhood or fell under `repair_threshold` cosine are
  /// demoted and their entities joined to the re-embed set.
  float repair_threshold = 0.5f;

  uint64_t seed = 17;
};

/// What one ProcessIncrement() did, for reporting and the staleness-vs-cost
/// benchmark.
struct IncrementReport {
  uint64_t epoch1 = 0;  ///< KG1 epoch this increment advanced to.
  uint64_t epoch2 = 0;
  int64_t diff_rows = 0;      ///< New triple rows across both diffs.
  int64_t new_entities = 0;   ///< Newly interned entities across both KGs.
  int64_t touched = 0;        ///< Diff-touched + repair-demoted entities.
  int64_t affected = 0;       ///< After k-hop expansion (the re-embed set).
  int64_t total_entities = 0; ///< n1 + n2 after the increment.
  int64_t trained_triples = 0;
  int64_t promoted = 0;  ///< Bootstrap promotions this increment.
  int64_t demoted = 0;   ///< Repair demotions this increment.
  double reembed_ms = 0.0;
  double total_ms = 0.0;
  bool no_op = false;  ///< Both diffs empty and nothing to repair.

  double affected_frac() const {
    return total_entities > 0
               ? static_cast<double>(affected) /
                     static_cast<double>(total_entities)
               : 0.0;
  }
};

/// Incremental entity alignment over a streaming KG pair.
///
/// FitBase() trains a TransE-style structural model over the union of both
/// graphs (gold seed pairs share one embedding slot). After each streamed
/// increment is applied to the graphs, ProcessIncrement():
///
///   1. diffs both KGs against the epochs of the previous fit
///      (KgSnapshot::DiffSince — the MVCC epoch journal),
///   2. repairs: re-scores promoted pseudo-seed pairs and demotes the ones
///      whose margin collapsed, queueing their entities for re-embedding,
///   3. expands the diff-touched entities k hops to the affected
///      neighborhood (hub-capped),
///   4. re-embeds *only* the affected rows: the Trainer is warm-started
///      from the current parameters (TrainerOptions::warm_start_params) and
///      every SGD write is gated by a per-row trainable mask, so frozen
///      embeddings come out bitwise-unchanged,
///   5. bootstraps: promotes mutually-nearest high-margin pairs into the
///      pseudo-seed set for subsequent increments.
///
/// An increment with empty diffs and nothing to repair is a complete no-op
/// — embeddings are left bitwise-identical (the zero-diff golden test).
///
/// The model keeps *separate* entity tables per KG (not one offset union
/// table) so each side can grow independently without renumbering the
/// other side's rows across increments.
///
/// Single-threaded driver, like the store's writer API. Publish() hands
/// the result to the concurrent serving stack.
class IncrementalAligner {
 public:
  IncrementalAligner(kg::KnowledgeGraph* kg1, kg::KnowledgeGraph* kg2,
                     IncrementalAlignerOptions options = {});
  ~IncrementalAligner();

  IncrementalAligner(const IncrementalAligner&) = delete;
  IncrementalAligner& operator=(const IncrementalAligner&) = delete;

  /// Trains the base model on the current state of both graphs. `seeds`
  /// are gold training pairs (kg1 id, kg2 id); each pair shares one
  /// embedding slot.
  Status FitBase(
      const std::vector<std::pair<kg::EntityId, kg::EntityId>>& seeds);

  /// Processes everything committed to either graph since the last
  /// FitBase/ProcessIncrement. Requires FitBase first.
  Result<IncrementReport> ProcessIncrement();

  /// Resolved embeddings ([n, dim], row = entity id) as of the last fit.
  /// embeddings2 rows of seed-merged entities are their KG1 partner's row.
  const Tensor& embeddings1() const { return emb1_; }
  const Tensor& embeddings2() const { return emb2_; }

  /// Ranks each kg1 entity in `pairs` against all kg2 entities by cosine.
  eval::RankingMetrics Evaluate(
      const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs) const;

  /// Publishes the KG2 embeddings keyed by entity name, paired with the
  /// exact KG snapshot they were computed from (SwapWithKg) — serving
  /// never observes a torn KG/embedding combination. Returns the published
  /// version.
  Result<uint64_t> Publish(serve::SnapshotManager* manager) const;

  /// Current pseudo-seed pairs (bootstrap promotions that survived repair).
  const std::vector<std::pair<kg::EntityId, kg::EntityId>>& promoted_pairs()
      const {
    return promoted_;
  }

  uint64_t last_epoch1() const { return last_epoch1_; }
  uint64_t last_epoch2() const { return last_epoch2_; }

 private:
  struct Net;
  struct UnionTriple {
    int32_t head;
    int32_t relation;
    int32_t tail;
    int8_t side;  ///< 1 or 2; ids are side-local.
  };
  class Task;
  friend class Task;

  /// The embedding row backing (side, id) after seed-merge resolution.
  struct Slot {
    float* p;
    bool trainable;
  };
  Slot EntSlot(int8_t side, int32_t id);
  bool RowTrainable(int8_t side, int32_t id) const;

  void TrainTriple(const UnionTriple& t);
  void PullPromoted();
  void NormalizeTrainable();
  Status RunTraining(const std::vector<UnionTriple>& triples, int64_t epochs,
                     std::string warm_start);
  std::vector<UnionTriple> CollectAllTriples() const;
  std::vector<UnionTriple> CollectAffectedTriples() const;
  void GrowTables(const kg::KgSnapshot& snap1, const kg::KgSnapshot& snap2);
  Tensor GrownTable(const Tensor& old, int64_t new_rows);
  std::vector<kg::EntityId> ExpandNeighborhood(
      const kg::KgSnapshot& snap, std::vector<kg::EntityId> touched) const;
  void MaterializeEmbeddings();
  int64_t RepairPromoted(std::vector<kg::EntityId>* demoted1,
                         std::vector<kg::EntityId>* demoted2);
  int64_t BootstrapPromote(const std::vector<kg::EntityId>& candidates1);

  kg::KnowledgeGraph* kg1_;
  kg::KnowledgeGraph* kg2_;
  IncrementalAlignerOptions opts_;
  Rng rng_;

  bool fitted_ = false;
  kg::KgSnapshot snap1_;  ///< Pinned state of the last fit.
  kg::KgSnapshot snap2_;
  uint64_t last_epoch1_ = 0;
  uint64_t last_epoch2_ = 0;

  int64_t n1_ = 0;  ///< Entity/relation table sizes (match the snapshots).
  int64_t n2_ = 0;
  int64_t nr1_ = 0;
  int64_t nr2_ = 0;

  std::unique_ptr<Net> net_;

  /// resolve2_[b] = kg1 partner id for gold-seeded b, else -1.
  std::vector<int32_t> resolve2_;
  std::vector<uint8_t> seed_used1_;  ///< kg1 ids taken by a gold seed.

  std::vector<std::pair<kg::EntityId, kg::EntityId>> promoted_;
  std::vector<uint8_t> promoted1_used_;
  std::vector<uint8_t> promoted2_used_;

  /// Per-row trainable masks (all 1 during FitBase; affected-only during
  /// increments).
  std::vector<uint8_t> ent1_train_;
  std::vector<uint8_t> ent2_train_;
  std::vector<uint8_t> rel1_train_;
  std::vector<uint8_t> rel2_train_;

  Tensor emb1_;  ///< Materialized resolved embeddings of the last fit.
  Tensor emb2_;
};

}  // namespace sdea::incr

#endif  // SDEA_INCR_ALIGNER_H_
