#ifndef SDEA_BASELINES_ALIGNER_INTERFACE_H_
#define SDEA_BASELINES_ALIGNER_INTERFACE_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "eval/metrics.h"
#include "kg/knowledge_graph.h"

namespace sdea::baselines {

/// Inputs shared by every alignment method: the KG pair and the seed split.
struct AlignInput {
  const kg::KnowledgeGraph* kg1 = nullptr;
  const kg::KnowledgeGraph* kg2 = nullptr;
  const kg::AlignmentSeeds* seeds = nullptr;
};

/// Common interface of the baseline re-implementations (one representative
/// per technique group of the paper's Table II). After Fit, each method
/// exposes per-entity embeddings in a shared space; evaluation ranks all
/// KG2 entities per source by cosine similarity, exactly like SDEA.
class EntityAligner {
 public:
  virtual ~EntityAligner() = default;

  /// Display name used in the result tables.
  virtual std::string name() const = 0;

  /// Trains on the input's train/valid splits.
  virtual Status Fit(const AlignInput& input) = 0;

  virtual const Tensor& embeddings1() const = 0;
  virtual const Tensor& embeddings2() const = 0;

  /// Hits@K / MRR over `pairs` against the full KG2 entity space. The
  /// default ranks by cosine over the exposed embeddings; methods that fuse
  /// non-embedding evidence (CEA) override it.
  virtual eval::RankingMetrics Evaluate(
      const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs) const;
};

}  // namespace sdea::baselines

#endif  // SDEA_BASELINES_ALIGNER_INTERFACE_H_
