#include "baselines/transedge.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "base/rng.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "train/loss.h"
#include "train/sampler.h"
#include "train/trainer.h"

namespace sdea::baselines {
namespace {

// Trainable state: joint entity/relation tables + the context projection.
class TransEdgeNet : public sdea::nn::Module {
 public:
  TransEdgeNet(int64_t entities, int64_t relations, int64_t d, Rng* rng) {
    const float s = 1.0f / std::sqrt(static_cast<float>(d));
    entity_ = AddParameter("te.entity",
                           Tensor::RandomNormal({entities, d}, s, rng));
    relation_ = AddParameter("te.relation",
                             Tensor::RandomNormal({relations, d}, s, rng));
    const float lim = std::sqrt(6.0f / static_cast<float>(3 * d));
    w_ = AddParameter("te.w", Tensor::RandomUniform({2 * d, d}, lim, rng));
    b_ = AddParameter("te.b", Tensor({d}));
  }

  Parameter* entity_;
  Parameter* relation_;
  Parameter* w_;
  Parameter* b_;
};

struct Triple {
  int64_t h, r, t;
};

// One minibatch of TransEdge: gather ids (drawing tail corruptions from the
// shared Rng while the id lists are built, as the original loop did),
// score both contexts, and take an Adam step on the margin loss.
class TransEdgeTask : public sdea::train::TrainTask {
 public:
  TransEdgeTask(TransEdgeNet* net, sdea::nn::Adam* optimizer,
                const std::vector<Triple>* triples,
                sdea::train::NegativeSampler sampler, Rng* rng, float margin)
      : net_(net),
        optimizer_(optimizer),
        triples_(triples),
        sampler_(std::move(sampler)),
        rng_(rng),
        loss_fn_(sdea::train::MarginHingeLoss(margin)) {}

  size_t num_examples() const override { return triples_->size(); }
  Rng* rng() override { return rng_; }
  sdea::nn::Module* module() override { return net_; }
  sdea::nn::Optimizer* optimizer() override { return optimizer_; }

  float TrainBatch(const uint64_t* ids, size_t n) override {
    std::vector<int64_t> h_ids, r_ids, t_ids, tneg_ids;
    for (size_t i = 0; i < n; ++i) {
      const Triple& tr = (*triples_)[ids[i]];
      h_ids.push_back(tr.h);
      r_ids.push_back(tr.r);
      t_ids.push_back(tr.t);
      tneg_ids.push_back(sampler_.SampleEntity(rng_));
    }
    Graph g;
    NodeId ent = g.Param(net_->entity_);
    NodeId rel = g.Param(net_->relation_);
    NodeId h = g.Gather(ent, h_ids);
    NodeId r = g.Gather(rel, r_ids);
    NodeId t = g.Gather(ent, t_ids);
    NodeId tn = g.Gather(ent, tneg_ids);
    // anchor = h + psi(h, t); positive = t; negative = corrupted tail
    // with its own context.
    NodeId pos_pred = g.Add(h, Psi(&g, h, t, r));
    NodeId neg_pred = g.Add(h, Psi(&g, h, tn, r));
    NodeId d_pos = sdea::nn::RowSquaredL2Distance(&g, pos_pred, t);
    NodeId d_neg = sdea::nn::RowSquaredL2Distance(&g, neg_pred, tn);
    NodeId loss = loss_fn_(&g, d_pos, d_neg);
    optimizer_->ZeroGrad();
    g.Backward(loss);
    optimizer_->ClipGradNorm(5.0f);
    optimizer_->Step();
    return g.Value(loss).data()[0];
  }

  void OnEpochEnd(int64_t /*epoch*/) override {
    tmath::L2NormalizeRowsInPlace(&net_->entity_->value);
  }

 private:
  // psi(H, T, R) = tanh([H;T] W + b) + R, rows batched.
  NodeId Psi(Graph* g, NodeId h, NodeId t, NodeId r) const {
    NodeId ctx = g->Tanh(g->AddRowBroadcast(
        g->Matmul(g->ConcatCols(h, t), g->Param(net_->w_)),
        g->Param(net_->b_)));
    return g->Add(ctx, r);
  }

  TransEdgeNet* net_;
  sdea::nn::Adam* optimizer_;
  const std::vector<Triple>* triples_;
  sdea::train::NegativeSampler sampler_;
  Rng* rng_;
  sdea::train::PairwiseLossFn loss_fn_;
};

}  // namespace

Status TransEdge::Fit(const AlignInput& input) {
  if (input.kg1 == nullptr || input.kg2 == nullptr ||
      input.seeds == nullptr) {
    return Status::InvalidArgument("TransEdge: null input");
  }
  const int64_t n1 = input.kg1->num_entities();
  const int64_t n2 = input.kg2->num_entities();
  const int64_t total = n1 + n2;
  const int64_t relations = std::max<int64_t>(
      1, input.kg1->num_relations() + input.kg2->num_relations());
  const int64_t d = config_.dim;

  // Seed-sharing merge (as in the other joint-space baselines).
  std::vector<int64_t> merge(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) merge[static_cast<size_t>(i)] = i;
  for (const auto& [a, b] : input.seeds->train) {
    merge[static_cast<size_t>(n1 + b)] = a;
  }
  std::vector<Triple> triples;
  auto resolve = [&](int64_t raw) {
    return merge[static_cast<size_t>(raw)];
  };
  for (const kg::RelationalTriple& t : input.kg1->relational_triples()) {
    triples.push_back({resolve(t.head), t.relation, resolve(t.tail)});
  }
  const int64_t r1 = input.kg1->num_relations();
  for (const kg::RelationalTriple& t : input.kg2->relational_triples()) {
    triples.push_back(
        {resolve(n1 + t.head), r1 + t.relation, resolve(n1 + t.tail)});
  }
  if (triples.empty()) {
    return Status::InvalidArgument("TransEdge: no relational triples");
  }

  Rng rng(config_.seed);
  TransEdgeNet net(total, relations, d, &rng);
  sdea::nn::Adam optimizer(net.Parameters(), config_.lr);

  TransEdgeTask task(&net, &optimizer, &triples,
                     train::NegativeSampler(total, merge), &rng,
                     config_.margin);
  train::TrainerOptions options;
  options.max_epochs = config_.epochs;
  options.batch_size = config_.batch_size;
  options.shuffle = train::TrainerOptions::Shuffle::kCumulative;
  train::Trainer trainer(&task, options);
  auto stats = trainer.Run();
  if (!stats.ok()) return stats.status();

  emb1_ = Tensor({n1, d});
  emb2_ = Tensor({n2, d});
  const Tensor& table = net.entity_->value;
  for (int64_t e = 0; e < n1; ++e) {
    const int64_t slot = merge[static_cast<size_t>(e)];
    std::copy(table.data() + slot * d, table.data() + (slot + 1) * d,
              emb1_.data() + e * d);
  }
  for (int64_t e = 0; e < n2; ++e) {
    const int64_t slot = merge[static_cast<size_t>(n1 + e)];
    std::copy(table.data() + slot * d, table.data() + (slot + 1) * d,
              emb2_.data() + e * d);
  }
  return Status::Ok();
}

}  // namespace sdea::baselines
