#include "baselines/transedge.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "base/rng.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"

namespace sdea::baselines {
namespace {

// Trainable state: joint entity/relation tables + the context projection.
class TransEdgeNet : public sdea::nn::Module {
 public:
  TransEdgeNet(int64_t entities, int64_t relations, int64_t d, Rng* rng) {
    const float s = 1.0f / std::sqrt(static_cast<float>(d));
    entity_ = AddParameter("te.entity",
                           Tensor::RandomNormal({entities, d}, s, rng));
    relation_ = AddParameter("te.relation",
                             Tensor::RandomNormal({relations, d}, s, rng));
    const float lim = std::sqrt(6.0f / static_cast<float>(3 * d));
    w_ = AddParameter("te.w", Tensor::RandomUniform({2 * d, d}, lim, rng));
    b_ = AddParameter("te.b", Tensor({d}));
  }

  Parameter* entity_;
  Parameter* relation_;
  Parameter* w_;
  Parameter* b_;
};

}  // namespace

Status TransEdge::Fit(const AlignInput& input) {
  if (input.kg1 == nullptr || input.kg2 == nullptr ||
      input.seeds == nullptr) {
    return Status::InvalidArgument("TransEdge: null input");
  }
  const int64_t n1 = input.kg1->num_entities();
  const int64_t n2 = input.kg2->num_entities();
  const int64_t total = n1 + n2;
  const int64_t relations = std::max<int64_t>(
      1, input.kg1->num_relations() + input.kg2->num_relations());
  const int64_t d = config_.dim;

  // Seed-sharing merge (as in the other joint-space baselines).
  std::vector<int64_t> merge(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) merge[static_cast<size_t>(i)] = i;
  for (const auto& [a, b] : input.seeds->train) {
    merge[static_cast<size_t>(n1 + b)] = a;
  }
  struct Triple {
    int64_t h, r, t;
  };
  std::vector<Triple> triples;
  auto resolve = [&](int64_t raw) {
    return merge[static_cast<size_t>(raw)];
  };
  for (const kg::RelationalTriple& t : input.kg1->relational_triples()) {
    triples.push_back({resolve(t.head), t.relation, resolve(t.tail)});
  }
  const int64_t r1 = input.kg1->num_relations();
  for (const kg::RelationalTriple& t : input.kg2->relational_triples()) {
    triples.push_back(
        {resolve(n1 + t.head), r1 + t.relation, resolve(n1 + t.tail)});
  }
  if (triples.empty()) {
    return Status::InvalidArgument("TransEdge: no relational triples");
  }

  Rng rng(config_.seed);
  TransEdgeNet net(total, relations, d, &rng);
  sdea::nn::Adam optimizer(net.Parameters(), config_.lr);

  // psi(H, T, R) = tanh([H;T] W + b) + R, rows batched.
  auto psi = [&](Graph* g, NodeId h, NodeId t, NodeId r) {
    NodeId ctx = g->Tanh(g->AddRowBroadcast(
        g->Matmul(g->ConcatCols(h, t), g->Param(net.w_)),
        g->Param(net.b_)));
    return g->Add(ctx, r);
  };

  std::vector<size_t> order(triples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(config_.batch_size)) {
      const size_t end = std::min(
          order.size(), start + static_cast<size_t>(config_.batch_size));
      std::vector<int64_t> h_ids, r_ids, t_ids, tneg_ids;
      for (size_t i = start; i < end; ++i) {
        const Triple& tr = triples[order[i]];
        h_ids.push_back(tr.h);
        r_ids.push_back(tr.r);
        t_ids.push_back(tr.t);
        tneg_ids.push_back(resolve(static_cast<int64_t>(
            rng.UniformInt(static_cast<uint64_t>(total)))));
      }
      Graph g;
      NodeId ent = g.Param(net.entity_);
      NodeId rel = g.Param(net.relation_);
      NodeId h = g.Gather(ent, h_ids);
      NodeId r = g.Gather(rel, r_ids);
      NodeId t = g.Gather(ent, t_ids);
      NodeId tn = g.Gather(ent, tneg_ids);
      // anchor = h + psi(h, t); positive = t; negative = corrupted tail
      // with its own context.
      NodeId pos_pred = g.Add(h, psi(&g, h, t, r));
      NodeId neg_pred = g.Add(h, psi(&g, h, tn, r));
      // Margin loss over ||pred - target||^2 pairs.
      NodeId d_pos = sdea::nn::RowSquaredL2Distance(&g, pos_pred, t);
      NodeId d_neg = sdea::nn::RowSquaredL2Distance(&g, neg_pred, tn);
      NodeId hinge =
          g.Relu(g.AddConst(g.Sub(d_pos, d_neg), config_.margin));
      NodeId loss = g.MeanAll(hinge);
      optimizer.ZeroGrad();
      g.Backward(loss);
      optimizer.ClipGradNorm(5.0f);
      optimizer.Step();
    }
    tmath::L2NormalizeRowsInPlace(&net.entity_->value);
  }

  emb1_ = Tensor({n1, d});
  emb2_ = Tensor({n2, d});
  const Tensor& table = net.entity_->value;
  for (int64_t e = 0; e < n1; ++e) {
    const int64_t slot = merge[static_cast<size_t>(e)];
    std::copy(table.data() + slot * d, table.data() + (slot + 1) * d,
              emb1_.data() + e * d);
  }
  for (int64_t e = 0; e < n2; ++e) {
    const int64_t slot = merge[static_cast<size_t>(n1 + e)];
    std::copy(table.data() + slot * d, table.data() + (slot + 1) * d,
              emb2_.data() + e * d);
  }
  return Status::Ok();
}

}  // namespace sdea::baselines
