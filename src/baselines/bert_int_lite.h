#ifndef SDEA_BASELINES_BERT_INT_LITE_H_
#define SDEA_BASELINES_BERT_INT_LITE_H_

#include <string>

#include "baselines/aligner_interface.h"
#include "core/text_alignment_encoder.h"

namespace sdea::baselines {

/// BERT-INT-lite (Tang et al., IJCAI'20, name channel): fine-tunes the
/// transformer text encoder on *entity names only*. This captures the
/// baseline's strong dependency on literal names that the paper highlights:
/// near-perfect on shared-name benchmarks, collapsing on OpenEA D-W where
/// KG2 names are Wikidata Q-ids (Table V).
class BertIntLite : public EntityAligner {
 public:
  struct Config {
    core::TextEncoderConfig text;
  };

  explicit BertIntLite(Config config) : config_(std::move(config)) {}

  std::string name() const override { return "BERT-INT (lite)"; }
  Status Fit(const AlignInput& input) override;
  const Tensor& embeddings1() const override { return emb1_; }
  const Tensor& embeddings2() const override { return emb2_; }

 private:
  Config config_;
  core::TextAlignmentEncoder encoder_;
  Tensor emb1_;
  Tensor emb2_;
};

}  // namespace sdea::baselines

#endif  // SDEA_BASELINES_BERT_INT_LITE_H_
