#include "baselines/jape.h"

#include <algorithm>

#include "base/check.h"
#include "text/pretrain.h"
#include "text/tokenizer.h"

namespace sdea::baselines {
namespace {

// One "sentence" per entity: its attribute names, space-joined. Attribute
// correlation (names co-occurring on the same entities) becomes word
// co-occurrence for the pre-trainer — the Skip-gram recipe of JAPE.
std::vector<std::string> AttributeNameSentences(const kg::KnowledgeGraph& g) {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(g.num_entities()));
  for (kg::EntityId e = 0; e < g.num_entities(); ++e) {
    std::string sentence;
    for (int64_t idx : g.attribute_triples_of(e)) {
      const kg::AttributeTriple& t =
          g.attribute_triples()[static_cast<size_t>(idx)];
      if (!sentence.empty()) sentence += ' ';
      sentence += g.attribute_name(t.attribute);
    }
    out.push_back(std::move(sentence));
  }
  return out;
}

// Mean attribute-name embedding per entity, L2-normalized.
Tensor EntityAttributeVectors(const std::vector<std::string>& sentences,
                              const text::SubwordTokenizer& tokenizer,
                              const Tensor& table) {
  const int64_t d = table.dim(1);
  Tensor out({static_cast<int64_t>(sentences.size()), d});
  for (size_t i = 0; i < sentences.size(); ++i) {
    const auto ids = tokenizer.Encode(sentences[i]);
    if (ids.empty()) continue;
    float* row = out.data() + static_cast<int64_t>(i) * d;
    for (int64_t id : ids) {
      const float* trow = table.data() + id * d;
      for (int64_t j = 0; j < d; ++j) row[j] += trow[j];
    }
    const float inv = 1.0f / static_cast<float>(ids.size());
    for (int64_t j = 0; j < d; ++j) row[j] *= inv;
  }
  tmath::L2NormalizeRowsInPlace(&out);
  return out;
}

// Concatenates weighted, L2-normalized structure and attribute blocks.
Tensor FuseChannels(const Tensor& structure, const Tensor& attributes,
                    float w_struct, float w_attr) {
  Tensor s = structure;
  tmath::L2NormalizeRowsInPlace(&s);
  const int64_t n = s.dim(0), ds = s.dim(1), da = attributes.dim(1);
  Tensor out({n, ds + da});
  for (int64_t i = 0; i < n; ++i) {
    float* row = out.data() + i * (ds + da);
    const float* srow = s.data() + i * ds;
    for (int64_t j = 0; j < ds; ++j) row[j] = w_struct * srow[j];
    const float* arow = attributes.data() + i * da;
    for (int64_t j = 0; j < da; ++j) row[ds + j] = w_attr * arow[j];
  }
  return out;
}

}  // namespace

Status Jape::Fit(const AlignInput& input) {
  if (input.kg1 == nullptr || input.kg2 == nullptr ||
      input.seeds == nullptr) {
    return Status::InvalidArgument("Jape: null input");
  }
  const int64_t n1 = input.kg1->num_entities();
  const int64_t n2 = input.kg2->num_entities();
  const int64_t total = n1 + n2;
  const int64_t relations = std::max<int64_t>(
      1, input.kg1->num_relations() + input.kg2->num_relations());

  // Structure channel: seed-sharing TransE (JAPE-Stru).
  std::vector<int32_t> merge(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) {
    merge[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  }
  for (const auto& [a, b] : input.seeds->train) {
    merge[static_cast<size_t>(n1 + b)] = a;
  }
  std::vector<kg::RelationalTriple> triples =
      input.kg1->relational_triples();
  const int32_t r1 = static_cast<int32_t>(input.kg1->num_relations());
  for (const kg::RelationalTriple& t : input.kg2->relational_triples()) {
    triples.push_back(kg::RelationalTriple{
        static_cast<kg::EntityId>(t.head + n1),
        static_cast<kg::RelationId>(t.relation + r1),
        static_cast<kg::EntityId>(t.tail + n1)});
  }
  TransE model(total, relations, config_.transe);
  model.Train(triples, merge);
  const Tensor all = model.EntityEmbeddings(merge);
  Tensor struct1({n1, model.dim()});
  Tensor struct2({n2, model.dim()});
  std::copy(all.data(), all.data() + n1 * model.dim(), struct1.data());
  std::copy(all.data() + n1 * model.dim(), all.data() + total * model.dim(),
            struct2.data());

  // Attribute channel: attribute-name correlation embeddings.
  const std::vector<std::string> sentences1 =
      AttributeNameSentences(*input.kg1);
  const std::vector<std::string> sentences2 =
      AttributeNameSentences(*input.kg2);
  std::vector<std::string> corpus = sentences1;
  for (const auto& s : sentences2) corpus.push_back(s);
  text::SubwordTokenizer tokenizer;
  text::TokenizerConfig tok_cfg;
  tok_cfg.num_merges = 256;
  Tensor attr1({n1, config_.attr_dim});
  Tensor attr2({n2, config_.attr_dim});
  if (tokenizer.Train(corpus, tok_cfg).ok()) {
    text::PretrainConfig pre_cfg;
    pre_cfg.dim = config_.attr_dim;
    pre_cfg.epochs = config_.attr_pretrain_epochs;
    pre_cfg.seed = config_.seed;
    text::CooccurrencePretrainer pretrainer;
    auto table = pretrainer.Train(corpus, tokenizer, pre_cfg);
    if (table.ok()) {
      attr1 = EntityAttributeVectors(sentences1, tokenizer, *table);
      attr2 = EntityAttributeVectors(sentences2, tokenizer, *table);
    }
  }

  emb1_ = FuseChannels(struct1, attr1, config_.weight_structure,
                       config_.weight_attributes);
  emb2_ = FuseChannels(struct2, attr2, config_.weight_structure,
                       config_.weight_attributes);
  return Status::Ok();
}

}  // namespace sdea::baselines
