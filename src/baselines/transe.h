#ifndef SDEA_BASELINES_TRANSE_H_
#define SDEA_BASELINES_TRANSE_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "kg/knowledge_graph.h"
#include "tensor/tensor.h"

namespace sdea::baselines {

/// TransE training options.
struct TransEConfig {
  int64_t dim = 64;
  float lr = 0.01f;
  float margin = 1.0f;
  int64_t epochs = 100;
  bool negative_sampling = true;  ///< MTransE trains without negatives.
  bool normalize_entities = true;
  uint64_t seed = 9;
};

/// A hand-rolled TransE embedding table (Bordes et al. 2013) trained with
/// SGD on margin ranking over corrupted triples: score(h,r,t) = ||h+r-t||^2.
/// Used as the relational-association engine of the TransE-family baselines
/// in Table II (MTransE / JAPE-Stru / BootEA).
class TransE {
 public:
  TransE(int64_t num_entities, int64_t num_relations,
         const TransEConfig& config);

  /// Trains on the triples; `merge` optionally maps entity ids to shared
  /// slots (parameter sharing of seed-aligned entities across KGs). Pass an
  /// empty vector for the identity mapping.
  void Train(const std::vector<kg::RelationalTriple>& triples,
             const std::vector<int32_t>& merge);

  /// One extra epoch of training (used by BootEA's bootstrap rounds).
  void TrainEpoch(const std::vector<kg::RelationalTriple>& triples,
                  const std::vector<int32_t>& merge);

  /// Entity embeddings [num_entities, dim], resolving merged slots.
  Tensor EntityEmbeddings(const std::vector<int32_t>& merge) const;

  /// One SGD step pulling h + r1 + r2 toward t — the PTransE path
  /// composition used by IPTransE.
  void PathStep(int64_t h, int64_t r1, int64_t r2, int64_t t, float lr);

  /// One SGD step pulling entity a toward entity b (soft alignment).
  void PullEntities(int64_t a, int64_t b, float lr);

  const Tensor& raw_entities() const { return entities_; }
  int64_t dim() const { return config_.dim; }

 private:
  void Step(int64_t h, int64_t r, int64_t t, int64_t h_neg, int64_t t_neg);

  TransEConfig config_;
  int64_t num_entities_;
  Tensor entities_;   // [E, dim]
  Tensor relations_;  // [R, dim]
  Rng rng_;
};

}  // namespace sdea::baselines

#endif  // SDEA_BASELINES_TRANSE_H_
