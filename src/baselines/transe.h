#ifndef SDEA_BASELINES_TRANSE_H_
#define SDEA_BASELINES_TRANSE_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "kg/knowledge_graph.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace sdea::baselines {

/// TransE training options.
struct TransEConfig {
  int64_t dim = 64;
  float lr = 0.01f;
  float margin = 1.0f;
  int64_t epochs = 100;
  bool negative_sampling = true;  ///< MTransE trains without negatives.
  bool normalize_entities = true;
  uint64_t seed = 9;
};

/// A hand-rolled TransE embedding table (Bordes et al. 2013) trained with
/// SGD on margin ranking over corrupted triples: score(h,r,t) = ||h+r-t||^2.
/// Used as the relational-association engine of the TransE-family baselines
/// in Table II (MTransE / JAPE-Stru / BootEA). The epoch loop is driven by
/// train::Trainer; the per-triple SGD update stays hand-rolled.
class TransE {
 public:
  TransE(int64_t num_entities, int64_t num_relations,
         const TransEConfig& config);

  /// Trains on the triples; `merge` optionally maps entity ids to shared
  /// slots (parameter sharing of seed-aligned entities across KGs). Pass an
  /// empty vector for the identity mapping.
  void Train(const std::vector<kg::RelationalTriple>& triples,
             const std::vector<int32_t>& merge);

  /// One extra epoch of training (used by BootEA's bootstrap rounds).
  void TrainEpoch(const std::vector<kg::RelationalTriple>& triples,
                  const std::vector<int32_t>& merge);

  /// Entity embeddings [num_entities, dim], resolving merged slots.
  Tensor EntityEmbeddings(const std::vector<int32_t>& merge) const;

  /// One SGD step pulling h + r1 + r2 toward t — the PTransE path
  /// composition used by IPTransE.
  void PathStep(int64_t h, int64_t r1, int64_t r2, int64_t t, float lr);

  /// One SGD step pulling entity a toward entity b (soft alignment).
  void PullEntities(int64_t a, int64_t b, float lr);

  const Tensor& raw_entities() const { return net_.entities->value; }
  int64_t dim() const { return config_.dim; }

  /// The embedding tables as a checkpointable module ("transe.entity" /
  /// "transe.relation").
  nn::Module* module() { return &net_; }

 private:
  /// The embedding tables, registered as named parameters so nn
  /// serialization and the Trainer's checkpointing see them.
  class Net : public nn::Module {
   public:
    Net(int64_t num_entities, int64_t num_relations, int64_t dim, Rng* rng);
    Parameter* entities = nullptr;   // [E, dim]
    Parameter* relations = nullptr;  // [R, dim]
  };
  class Task;  // train::TrainTask adapter, defined in transe.cc.

  void Step(int64_t h, int64_t r, int64_t t, int64_t h_neg, int64_t t_neg);
  void RunTrainer(const std::vector<kg::RelationalTriple>& triples,
                  const std::vector<int32_t>& merge, int64_t epochs);

  TransEConfig config_;
  int64_t num_entities_;
  Rng rng_;   // Declared before net_: initialization draws from it.
  Net net_;
};

}  // namespace sdea::baselines

#endif  // SDEA_BASELINES_TRANSE_H_
