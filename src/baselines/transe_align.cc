#include "baselines/transe_align.h"

#include <algorithm>

#include "base/check.h"

namespace sdea::baselines {
namespace {

// Builds the union triple list with KG2 ids offset by n1 (entities) and r1
// (relations).
std::vector<kg::RelationalTriple> UnionTriples(const kg::KnowledgeGraph& kg1,
                                               const kg::KnowledgeGraph& kg2) {
  std::vector<kg::RelationalTriple> out = kg1.relational_triples();
  const int32_t n1 = static_cast<int32_t>(kg1.num_entities());
  const int32_t r1 = static_cast<int32_t>(kg1.num_relations());
  for (const kg::RelationalTriple& t : kg2.relational_triples()) {
    out.push_back(kg::RelationalTriple{t.head + n1, t.relation + r1,
                                       t.tail + n1});
  }
  return out;
}

}  // namespace

TransEAlign::Config BootEaConfig(TransEConfig transe) {
  TransEAlign::Config c;
  c.transe = std::move(transe);
  c.bootstrap_rounds = 4;
  c.display_name = "BootEA";
  return c;
}

Status TransEAlign::Fit(const AlignInput& input) {
  if (input.kg1 == nullptr || input.kg2 == nullptr ||
      input.seeds == nullptr) {
    return Status::InvalidArgument("TransEAlign: null input");
  }
  const int64_t n1 = input.kg1->num_entities();
  const int64_t n2 = input.kg2->num_entities();
  const int64_t total = n1 + n2;
  const int64_t relations = std::max<int64_t>(
      1, input.kg1->num_relations() + input.kg2->num_relations());

  // Parameter-sharing merge: seed-aligned KG2 entities reuse their KG1
  // partner's embedding slot.
  std::vector<int32_t> merge(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) {
    merge[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  }
  for (const auto& [a, b] : input.seeds->train) {
    merge[static_cast<size_t>(n1 + b)] = a;
  }

  const std::vector<kg::RelationalTriple> triples =
      UnionTriples(*input.kg1, *input.kg2);
  TransE model(total, relations, config_.transe);
  model.Train(triples, merge);

  auto extract = [&](Tensor* e1, Tensor* e2) {
    const Tensor all = model.EntityEmbeddings(merge);
    *e1 = Tensor({n1, model.dim()});
    *e2 = Tensor({n2, model.dim()});
    std::copy(all.data(), all.data() + n1 * model.dim(), e1->data());
    std::copy(all.data() + n1 * model.dim(),
              all.data() + total * model.dim(), e2->data());
  };
  extract(&emb1_, &emb2_);

  // BootEA-lite rounds: add mutually-nearest, above-threshold pairs as
  // pseudo-seeds, then continue training.
  bootstrapped_pairs_ = 0;
  for (int64_t round = 0; round < config_.bootstrap_rounds; ++round) {
    Tensor s1 = emb1_;
    Tensor s2 = emb2_;
    tmath::L2NormalizeRowsInPlace(&s1);
    tmath::L2NormalizeRowsInPlace(&s2);
    const Tensor scores = tmath::MatmulTransposeB(s1, s2);
    // argmax per row and per column.
    std::vector<int64_t> best_for_src(static_cast<size_t>(n1), -1);
    std::vector<int64_t> best_for_tgt(static_cast<size_t>(n2), -1);
    for (int64_t i = 0; i < n1; ++i) {
      const float* row = scores.data() + i * n2;
      int64_t arg = 0;
      for (int64_t j = 1; j < n2; ++j) {
        if (row[j] > row[arg]) arg = j;
      }
      best_for_src[static_cast<size_t>(i)] = arg;
    }
    for (int64_t j = 0; j < n2; ++j) {
      int64_t arg = 0;
      for (int64_t i = 1; i < n1; ++i) {
        if (scores[i * n2 + j] > scores[arg * n2 + j]) arg = i;
      }
      best_for_tgt[static_cast<size_t>(j)] = arg;
    }
    int64_t added = 0;
    for (int64_t i = 0; i < n1; ++i) {
      const int64_t j = best_for_src[static_cast<size_t>(i)];
      if (j < 0 || best_for_tgt[static_cast<size_t>(j)] != i) continue;
      if (scores[i * n2 + j] < config_.bootstrap_threshold) continue;
      if (merge[static_cast<size_t>(n1 + j)] != n1 + j) continue;  // Taken.
      if (merge[static_cast<size_t>(i)] != i) continue;
      merge[static_cast<size_t>(n1 + j)] = static_cast<int32_t>(i);
      ++added;
    }
    bootstrapped_pairs_ += added;
    if (added == 0) break;
    for (int64_t e = 0; e < config_.epochs_per_round; ++e) {
      model.TrainEpoch(triples, merge);
    }
    extract(&emb1_, &emb2_);
  }
  return Status::Ok();
}

}  // namespace sdea::baselines
