#ifndef SDEA_BASELINES_JAPE_H_
#define SDEA_BASELINES_JAPE_H_

#include <string>

#include "baselines/aligner_interface.h"
#include "baselines/transe.h"

namespace sdea::baselines {

/// JAPE (Sun, Hu, Li — ISWC'17): joint attribute-preserving embedding.
/// Structure channel: seed-sharing TransE over the union graph (the
/// JAPE-Stru part). Attribute channel: attribute *names* co-occurring on
/// the same entity are embedded Skip-gram-style (our co-occurrence
/// pre-trainer over per-entity attribute-name sentences); an entity's
/// attribute vector is the mean of its attribute-name embeddings. The
/// final embedding concatenates both channels (each L2-normalized and
/// weighted), so cosine ranking blends structural and attribute
/// correlation evidence.
class Jape : public EntityAligner {
 public:
  struct Config {
    TransEConfig transe;
    int64_t attr_dim = 32;
    float weight_structure = 0.7f;
    float weight_attributes = 0.3f;
    int64_t attr_pretrain_epochs = 8;
    uint64_t seed = 37;
  };

  explicit Jape(Config config) : config_(std::move(config)) {}

  std::string name() const override { return "JAPE"; }
  Status Fit(const AlignInput& input) override;
  const Tensor& embeddings1() const override { return emb1_; }
  const Tensor& embeddings2() const override { return emb2_; }

 private:
  Config config_;
  Tensor emb1_;
  Tensor emb2_;
};

}  // namespace sdea::baselines

#endif  // SDEA_BASELINES_JAPE_H_
