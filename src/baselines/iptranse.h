#ifndef SDEA_BASELINES_IPTRANSE_H_
#define SDEA_BASELINES_IPTRANSE_H_

#include <string>

#include "baselines/aligner_interface.h"
#include "baselines/transe.h"

namespace sdea::baselines {

/// IPTransE-lite (Zhu et al., IJCAI'17): path-enhanced joint TransE.
/// On top of the seed-sharing TransE space, 2-hop relational paths
/// (h -r1-> m -r2-> t) are trained as composite translations
/// ||h + r1 + r2 - t||, transmitting alignment information along short
/// paths (the PTransE component); iterative soft alignment adds
/// high-confidence predicted pairs as extra translation constraints.
class IpTransE : public EntityAligner {
 public:
  struct Config {
    TransEConfig transe;
    int64_t path_samples_per_epoch = 2000;  ///< 2-hop path updates/epoch.
    float path_lr = 0.005f;
    int64_t iterations = 2;     ///< Soft-alignment refresh rounds.
    int64_t epochs_per_iteration = 25;
    float align_threshold = 0.75f;  ///< Cosine floor for soft pairs.
  };

  explicit IpTransE(Config config) : config_(std::move(config)) {}

  std::string name() const override { return "IPTransE"; }
  Status Fit(const AlignInput& input) override;
  const Tensor& embeddings1() const override { return emb1_; }
  const Tensor& embeddings2() const override { return emb2_; }

 private:
  Config config_;
  Tensor emb1_;
  Tensor emb2_;
};

}  // namespace sdea::baselines

#endif  // SDEA_BASELINES_IPTRANSE_H_
