#ifndef SDEA_BASELINES_HMAN_H_
#define SDEA_BASELINES_HMAN_H_

#include <string>

#include "baselines/aligner_interface.h"
#include "baselines/gcn_align.h"

namespace sdea::baselines {

/// HMAN-lite (Yang et al., EMNLP'19): multi-aspect alignment. Three
/// channels, matching the configuration the paper's comparison uses when
/// entity descriptions are unavailable (Section V-A4):
///   1. topology  — a structure-only GCN over the union graph;
///   2. relations — an FNN over hashed relation-name count features;
///   3. attributes — an FNN over hashed attribute-name count features.
/// Channel outputs are concatenated; the FNN channels are trained
/// full-batch with the margin ranking loss on the seed pairs.
class Hman : public EntityAligner {
 public:
  struct Config {
    GcnAlign::Config gcn = GcnConfig();
    int64_t feature_dim = 64;   ///< Hashed count-feature width per channel.
    int64_t channel_dim = 32;   ///< FNN output width per channel.
    float lr = 0.01f;
    float margin = 1.0f;
    int64_t epochs = 60;
    int64_t negatives = 5;
    uint64_t seed = 41;
  };

  explicit Hman(Config config) : config_(std::move(config)) {}

  std::string name() const override { return "HMAN"; }
  Status Fit(const AlignInput& input) override;
  const Tensor& embeddings1() const override { return emb1_; }
  const Tensor& embeddings2() const override { return emb2_; }

 private:
  Config config_;
  Tensor emb1_;
  Tensor emb2_;
};

}  // namespace sdea::baselines

#endif  // SDEA_BASELINES_HMAN_H_
