#include "baselines/iptranse.h"

#include <algorithm>

#include "base/check.h"
#include "base/rng.h"
#include "train/trainer.h"

namespace sdea::baselines {
namespace {

// Outgoing adjacency over the merged union graph for path sampling.
struct OutEdges {
  std::vector<std::vector<std::pair<int32_t, int32_t>>> edges;  // (rel, tail)
};

// One IPTransE training iteration: each Trainer epoch is a TransE epoch
// over the union triples (OnEpochBegin, drawing from the model's own Rng)
// followed by `path_samples_per_epoch` PTransE 2-hop path steps (the
// "examples" of this task, drawing from the separate path Rng).
class PathTask : public train::TrainTask {
 public:
  PathTask(TransE* model, const std::vector<kg::RelationalTriple>* triples,
           const std::vector<int32_t>* merge, const OutEdges* out,
           Rng* path_rng, int64_t path_samples, float path_lr)
      : model_(model),
        triples_(triples),
        merge_(merge),
        out_(out),
        path_rng_(path_rng),
        path_samples_(path_samples),
        path_lr_(path_lr) {}

  size_t num_examples() const override {
    return static_cast<size_t>(path_samples_);
  }
  Rng* rng() override { return path_rng_; }
  nn::Module* module() override { return model_->module(); }

  void OnEpochBegin(int64_t /*epoch*/) override {
    model_->TrainEpoch(*triples_, *merge_);
  }

  float TrainBatch(const uint64_t* /*ids*/, size_t n) override {
    const uint64_t total = static_cast<uint64_t>(out_->edges.size());
    for (size_t s = 0; s < n; ++s) {
      const int64_t h = Resolve(static_cast<int64_t>(
          path_rng_->UniformInt(total)));
      const auto& e1edges = out_->edges[static_cast<size_t>(h)];
      if (e1edges.empty()) continue;
      const auto& [r1, m] = e1edges[path_rng_->UniformInt(e1edges.size())];
      const auto& e2edges = out_->edges[static_cast<size_t>(m)];
      if (e2edges.empty()) continue;
      const auto& [r2, t] = e2edges[path_rng_->UniformInt(e2edges.size())];
      model_->PathStep(h, r1, r2, t, path_lr_);
    }
    return 0.0f;
  }

 private:
  int64_t Resolve(int64_t raw) const {
    return static_cast<int64_t>((*merge_)[static_cast<size_t>(raw)]);
  }

  TransE* model_;
  const std::vector<kg::RelationalTriple>* triples_;
  const std::vector<int32_t>* merge_;
  const OutEdges* out_;
  Rng* path_rng_;
  int64_t path_samples_;
  float path_lr_;
};

}  // namespace

Status IpTransE::Fit(const AlignInput& input) {
  if (input.kg1 == nullptr || input.kg2 == nullptr ||
      input.seeds == nullptr) {
    return Status::InvalidArgument("IpTransE: null input");
  }
  const int64_t n1 = input.kg1->num_entities();
  const int64_t n2 = input.kg2->num_entities();
  const int64_t total = n1 + n2;
  const int64_t relations = std::max<int64_t>(
      1, input.kg1->num_relations() + input.kg2->num_relations());

  std::vector<int32_t> merge(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) {
    merge[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  }
  for (const auto& [a, b] : input.seeds->train) {
    merge[static_cast<size_t>(n1 + b)] = a;
  }

  // Union triples (KG2 ids offset) and outgoing adjacency on merged ids.
  std::vector<kg::RelationalTriple> triples = input.kg1->relational_triples();
  const int32_t r1_count = static_cast<int32_t>(input.kg1->num_relations());
  for (const kg::RelationalTriple& t : input.kg2->relational_triples()) {
    triples.push_back(kg::RelationalTriple{
        static_cast<kg::EntityId>(t.head + n1),
        static_cast<kg::RelationId>(t.relation + r1_count),
        static_cast<kg::EntityId>(t.tail + n1)});
  }
  OutEdges out;
  out.edges.resize(static_cast<size_t>(total));
  auto resolve = [&](int64_t raw) {
    return static_cast<int64_t>(merge[static_cast<size_t>(raw)]);
  };
  for (const kg::RelationalTriple& t : triples) {
    out.edges[static_cast<size_t>(resolve(t.head))].emplace_back(
        t.relation, static_cast<int32_t>(resolve(t.tail)));
  }

  TransE model(total, relations, config_.transe);
  Rng rng(config_.transe.seed ^ 0x17abcdULL);

  auto extract = [&](Tensor* e1, Tensor* e2) {
    const Tensor all = model.EntityEmbeddings(merge);
    *e1 = Tensor({n1, model.dim()});
    *e2 = Tensor({n2, model.dim()});
    std::copy(all.data(), all.data() + n1 * model.dim(), e1->data());
    std::copy(all.data() + n1 * model.dim(),
              all.data() + total * model.dim(), e2->data());
  };

  for (int64_t iter = 0; iter < config_.iterations; ++iter) {
    if (config_.path_samples_per_epoch > 0) {
      PathTask task(&model, &triples, &merge, &out, &rng,
                    config_.path_samples_per_epoch, config_.path_lr);
      train::TrainerOptions options;
      options.max_epochs = config_.epochs_per_iteration;
      options.batch_size = config_.path_samples_per_epoch;
      options.shuffle = train::TrainerOptions::Shuffle::kNone;
      train::Trainer trainer(&task, options);
      auto stats = trainer.Run();
      if (!stats.ok()) return stats.status();
    } else {
      for (int64_t e = 0; e < config_.epochs_per_iteration; ++e) {
        model.TrainEpoch(triples, merge);
      }
    }
    if (iter + 1 == config_.iterations) break;
    // Iterative soft alignment: pull mutually-nearest confident pairs.
    extract(&emb1_, &emb2_);
    Tensor s1 = emb1_, s2 = emb2_;
    tmath::L2NormalizeRowsInPlace(&s1);
    tmath::L2NormalizeRowsInPlace(&s2);
    const Tensor scores = tmath::MatmulTransposeB(s1, s2);
    for (int64_t i = 0; i < n1; ++i) {
      const float* row = scores.data() + i * n2;
      int64_t arg = 0;
      for (int64_t j = 1; j < n2; ++j) {
        if (row[j] > row[arg]) arg = j;
      }
      if (row[arg] < config_.align_threshold) continue;
      model.PullEntities(resolve(i), resolve(n1 + arg),
                         config_.path_lr);
    }
  }
  extract(&emb1_, &emb2_);
  return Status::Ok();
}

}  // namespace sdea::baselines
