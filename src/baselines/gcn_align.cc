#include "baselines/gcn_align.h"

#include <cmath>
#include <tuple>

#include "base/check.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "text/pretrain.h"
#include "text/tokenizer.h"

namespace sdea::baselines {
namespace {

// Raw (unnormalized) union-graph edges with self-loops, as COO triplets.
std::vector<std::tuple<int64_t, int64_t, float>> UnionEdges(
    const kg::KnowledgeGraph& kg1, const kg::KnowledgeGraph& kg2) {
  std::vector<std::tuple<int64_t, int64_t, float>> coo;
  const int64_t n1 = kg1.num_entities();
  const int64_t total = n1 + kg2.num_entities();
  for (const kg::RelationalTriple& t : kg1.relational_triples()) {
    coo.emplace_back(t.head, t.tail, 1.0f);
    coo.emplace_back(t.tail, t.head, 1.0f);
  }
  for (const kg::RelationalTriple& t : kg2.relational_triples()) {
    coo.emplace_back(n1 + t.head, n1 + t.tail, 1.0f);
    coo.emplace_back(n1 + t.tail, n1 + t.head, 1.0f);
  }
  for (int64_t i = 0; i < total; ++i) coo.emplace_back(i, i, 1.0f);
  return coo;
}

// Symmetric normalization D^-1/2 (A+I) D^-1/2 of COO edges.
CsrMatrix NormalizedAdjacency(
    int64_t n, std::vector<std::tuple<int64_t, int64_t, float>> coo) {
  std::vector<double> degree(static_cast<size_t>(n), 0.0);
  for (const auto& [r, c, v] : coo) degree[static_cast<size_t>(r)] += v;
  for (auto& [r, c, v] : coo) {
    const double dr = std::max(degree[static_cast<size_t>(r)], 1e-9);
    const double dc = std::max(degree[static_cast<size_t>(c)], 1e-9);
    v = static_cast<float>(v / std::sqrt(dr * dc));
  }
  return CsrMatrix::FromTriplets(n, n, coo);
}

// Feature-dependent attention weights over the raw edges (stop-gradient:
// weights are recomputed from the current features each refresh but treated
// as constants by autograd), followed by row-softmax.
CsrMatrix AttentionAdjacency(
    int64_t n, const std::vector<std::tuple<int64_t, int64_t, float>>& coo,
    const Tensor& features, const Tensor& attn_vec) {
  const int64_t d = features.dim(1);
  SDEA_CHECK_EQ(attn_vec.size(), 2 * d);
  std::vector<std::tuple<int64_t, int64_t, float>> weighted;
  weighted.reserve(coo.size());
  std::vector<double> row_max(static_cast<size_t>(n), -1e30);
  std::vector<float> raw(coo.size());
  for (size_t k = 0; k < coo.size(); ++k) {
    const auto& [r, c, v] = coo[k];
    const float* fi = features.data() + r * d;
    const float* fj = features.data() + c * d;
    double score = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      score += attn_vec[j] * fi[j] + attn_vec[d + j] * fj[j];
    }
    // LeakyReLU(0.2).
    if (score < 0.0) score *= 0.2;
    raw[k] = static_cast<float>(score);
    row_max[static_cast<size_t>(r)] =
        std::max(row_max[static_cast<size_t>(r)], score);
  }
  std::vector<double> row_sum(static_cast<size_t>(n), 0.0);
  for (size_t k = 0; k < coo.size(); ++k) {
    const auto& [r, c, v] = coo[k];
    raw[k] = std::exp(raw[k] - static_cast<float>(
                                   row_max[static_cast<size_t>(r)]));
    row_sum[static_cast<size_t>(r)] += raw[k];
  }
  for (size_t k = 0; k < coo.size(); ++k) {
    const auto& [r, c, v] = coo[k];
    weighted.emplace_back(
        r, c,
        static_cast<float>(raw[k] /
                           std::max(row_sum[static_cast<size_t>(r)], 1e-12)));
  }
  return CsrMatrix::FromTriplets(n, n, weighted);
}

// Hashed attribute-name count features, L2-normalized per row. Attribute
// names are hashed so identical names across KGs share dimensions.
Tensor AttributeFeatures(const kg::KnowledgeGraph& kg1,
                         const kg::KnowledgeGraph& kg2, int64_t dim) {
  const int64_t n1 = kg1.num_entities();
  const int64_t total = n1 + kg2.num_entities();
  Tensor out({total, dim});
  auto fill = [&](const kg::KnowledgeGraph& g, int64_t offset) {
    for (const kg::AttributeTriple& t : g.attribute_triples()) {
      const std::string& name = g.attribute_name(t.attribute);
      const size_t h = std::hash<std::string>{}(name) %
                       static_cast<size_t>(dim);
      out[(offset + t.entity) * dim + static_cast<int64_t>(h)] += 1.0f;
    }
  };
  fill(kg1, 0);
  fill(kg2, n1);
  tmath::L2NormalizeRowsInPlace(&out);
  return out;
}

// The trainable parameters live in a small module for uniform handling.
class GcnNet : public sdea::nn::Module {
 public:
  GcnNet(int64_t n, const GcnAlign::Config& cfg, Rng* rng) {
    features_ = AddParameter(
        "gcn.features",
        Tensor::RandomNormal({n, cfg.feature_dim},
                             1.0f / std::sqrt(static_cast<float>(
                                        cfg.feature_dim)),
                             rng));
    const float l0 = std::sqrt(
        6.0f / static_cast<float>(cfg.feature_dim + cfg.hidden_dim));
    w0_ = AddParameter("gcn.w0",
                       Tensor::RandomUniform(
                           {cfg.feature_dim, cfg.hidden_dim}, l0, rng));
    const float l1 = std::sqrt(
        6.0f / static_cast<float>(cfg.hidden_dim + cfg.out_dim));
    w1_ = AddParameter(
        "gcn.w1",
        Tensor::RandomUniform({cfg.hidden_dim, cfg.out_dim}, l1, rng));
    attn_ = AddParameter(
        "gcn.attn",
        Tensor::RandomUniform({2 * cfg.feature_dim}, 0.1f, rng));
    if (cfg.use_attributes) {
      const float la = std::sqrt(
          6.0f / static_cast<float>(cfg.attr_feature_dim + cfg.out_dim));
      wa_ = AddParameter("gcn.wa",
                         Tensor::RandomUniform(
                             {cfg.attr_feature_dim, cfg.out_dim}, la, rng));
    }
  }

  Parameter* features_;
  Parameter* w0_;
  Parameter* w1_;
  Parameter* attn_;
  Parameter* wa_ = nullptr;
};

}  // namespace

GcnAlign::Config GcnConfig() {
  GcnAlign::Config c;
  c.display_name = "GCN";
  return c;
}

GcnAlign::Config GcnAlignConfig() {
  GcnAlign::Config c;
  c.use_attributes = true;
  c.display_name = "GCN-Align";
  return c;
}

GcnAlign::Config GatAlignConfig() {
  GcnAlign::Config c;
  c.use_attention = true;
  c.display_name = "MuGNN (GAT)";
  return c;
}

GcnAlign::Config RdgcnLiteConfig() {
  GcnAlign::Config c;
  c.init_features_from_names = true;
  c.display_name = "RDGCN (lite)";
  return c;
}

Status GcnAlign::Fit(const AlignInput& input) {
  if (input.kg1 == nullptr || input.kg2 == nullptr ||
      input.seeds == nullptr) {
    return Status::InvalidArgument("GcnAlign: null input");
  }
  const int64_t n1 = input.kg1->num_entities();
  const int64_t n2 = input.kg2->num_entities();
  const int64_t total = n1 + n2;

  const auto raw_edges = UnionEdges(*input.kg1, *input.kg2);
  CsrMatrix adjacency = NormalizedAdjacency(total, raw_edges);
  Tensor attr_features;
  if (config_.use_attributes) {
    attr_features =
        AttributeFeatures(*input.kg1, *input.kg2, config_.attr_feature_dim);
  }

  Rng rng(config_.seed);
  GcnNet net(total, config_, &rng);
  if (config_.init_features_from_names) {
    // RDGCN/HGCN recipe: seed features with pre-trained name embeddings
    // (mean of co-occurrence word vectors over both KGs' entity names).
    std::vector<std::string> names;
    names.reserve(static_cast<size_t>(total));
    for (kg::EntityId e = 0; e < n1; ++e) {
      names.push_back(input.kg1->entity_name(e));
    }
    for (kg::EntityId e = 0; e < n2; ++e) {
      names.push_back(input.kg2->entity_name(e));
    }
    text::SubwordTokenizer tokenizer;
    text::TokenizerConfig tok_cfg;
    tok_cfg.num_merges = 512;
    text::PretrainConfig pre_cfg;
    pre_cfg.dim = config_.feature_dim;
    pre_cfg.epochs = 8;
    if (tokenizer.Train(names, tok_cfg).ok()) {
      text::CooccurrencePretrainer pretrainer;
      auto table = pretrainer.Train(names, tokenizer, pre_cfg);
      if (table.ok()) {
        Tensor& features = net.features_->value;
        for (int64_t e = 0; e < total; ++e) {
          const auto ids = tokenizer.Encode(names[static_cast<size_t>(e)]);
          if (ids.empty()) continue;
          float* row = features.data() + e * config_.feature_dim;
          std::fill(row, row + config_.feature_dim, 0.0f);
          for (int64_t id : ids) {
            const float* trow = table->data() + id * config_.feature_dim;
            for (int64_t j = 0; j < config_.feature_dim; ++j) {
              row[j] += trow[j];
            }
          }
          const float inv = 1.0f / static_cast<float>(ids.size());
          for (int64_t j = 0; j < config_.feature_dim; ++j) row[j] *= inv;
        }
        tmath::L2NormalizeRowsInPlace(&features);
      }
    }
  }
  sdea::nn::Adam optimizer(net.Parameters(), config_.lr);

  // Full forward pass producing the union embedding matrix [total, D].
  auto forward = [&](Graph* g) -> NodeId {
    NodeId x = g->Param(net.features_);
    NodeId h = g->Relu(
        g->Matmul(g->SparseMatmul(&adjacency, x), g->Param(net.w0_)));
    NodeId out =
        g->Matmul(g->SparseMatmul(&adjacency, h), g->Param(net.w1_));
    if (config_.use_attributes) {
      NodeId ax = g->Input(attr_features);
      NodeId ah = g->Matmul(g->SparseMatmul(&adjacency, ax),
                            g->Param(net.wa_));
      out = g->ConcatCols(out, ah);
    }
    return g->L2NormalizeRows(out);
  };

  auto extract = [&](const Tensor& all, Tensor* e1, Tensor* e2) {
    const int64_t d = all.dim(1);
    *e1 = Tensor({n1, d});
    *e2 = Tensor({n2, d});
    std::copy(all.data(), all.data() + n1 * d, e1->data());
    std::copy(all.data() + n1 * d, all.data() + total * d, e2->data());
  };

  double best_valid = -1.0;
  Tensor best_e1, best_e2;
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    if (config_.use_attention) {
      adjacency = AttentionAdjacency(total, raw_edges, net.features_->value,
                                     net.attn_->value);
    }
    Graph g;
    NodeId all = forward(&g);
    // Margin loss over train pairs, `negatives` corrupted targets each, in
    // both alignment directions.
    std::vector<int64_t> anchor_ids, pos_ids, neg_ids;
    for (const auto& [a, b] : input.seeds->train) {
      for (int64_t k = 0; k < config_.negatives; ++k) {
        anchor_ids.push_back(a);
        pos_ids.push_back(n1 + b);
        neg_ids.push_back(
            n1 + static_cast<int64_t>(rng.UniformInt(
                     static_cast<uint64_t>(n2))));
        anchor_ids.push_back(n1 + b);
        pos_ids.push_back(a);
        neg_ids.push_back(static_cast<int64_t>(
            rng.UniformInt(static_cast<uint64_t>(n1))));
      }
    }
    NodeId anchors = g.Gather(all, anchor_ids);
    NodeId positives = g.Gather(all, pos_ids);
    NodeId negatives = g.Gather(all, neg_ids);
    NodeId loss = sdea::nn::MarginRankingLoss(&g, anchors, positives,
                                              negatives, config_.margin);
    optimizer.ZeroGrad();
    g.Backward(loss);
    optimizer.Step();

    if ((epoch + 1) % config_.eval_every == 0 ||
        epoch + 1 == config_.epochs) {
      Graph eg;
      const Tensor all_v = eg.Value(forward(&eg));
      Tensor e1, e2;
      extract(all_v, &e1, &e2);
      // Validation Hits@1 for best-checkpoint selection.
      double h1 = 0.0;
      if (!input.seeds->valid.empty()) {
        Tensor src({static_cast<int64_t>(input.seeds->valid.size()),
                    e1.dim(1)});
        std::vector<int64_t> gold;
        for (size_t i = 0; i < input.seeds->valid.size(); ++i) {
          src.SetRow(static_cast<int64_t>(i),
                     e1.Row(input.seeds->valid[i].first));
          gold.push_back(input.seeds->valid[i].second);
        }
        h1 = eval::EvaluateAlignment(src, e2, gold).hits_at_1;
      }
      if (h1 >= best_valid) {
        best_valid = h1;
        best_e1 = e1;
        best_e2 = e2;
      }
    }
  }
  emb1_ = std::move(best_e1);
  emb2_ = std::move(best_e2);
  return Status::Ok();
}

}  // namespace sdea::baselines
