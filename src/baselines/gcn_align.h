#ifndef SDEA_BASELINES_GCN_ALIGN_H_
#define SDEA_BASELINES_GCN_ALIGN_H_

#include <memory>
#include <string>

#include "baselines/aligner_interface.h"
#include "nn/layers.h"
#include "tensor/sparse.h"

namespace sdea::baselines {

/// GCN-Align (Wang et al., EMNLP'18) and its variants: a two-layer graph
/// convolutional network over the union graph of both KGs (block-diagonal
/// normalized adjacency), trained full-batch with a margin ranking loss on
/// the seed pairs. Options select the paper's three flavours:
///  - use_attributes=false, use_attention=false : "GCN" (structure only);
///  - use_attributes=true                       : "GCN-Align" (adds an
///    attribute-count feature channel);
///  - use_attention=true                        : "MuGNN (GAT)" — edge
///    weights computed from current features with a stop-gradient
///    attention (documented approximation of GAT training).
class GcnAlign : public EntityAligner {
 public:
  struct Config {
    int64_t feature_dim = 64;
    int64_t hidden_dim = 64;
    int64_t out_dim = 64;
    int64_t attr_feature_dim = 32;  ///< Hashed attribute-name counts.
    bool use_attributes = false;
    bool use_attention = false;
    /// Initialize the trainable feature matrix from pre-trained entity-name
    /// embeddings (mean of co-occurrence-trained name-token vectors) — the
    /// RDGCN/HGCN recipe of seeding GCNs with GloVe name vectors.
    bool init_features_from_names = false;
    float lr = 0.005f;
    float margin = 1.0f;
    int64_t epochs = 120;
    int64_t eval_every = 10;   ///< Validation cadence for best-checkpoint.
    int64_t negatives = 5;     ///< Negatives per positive per epoch.
    uint64_t seed = 23;
    std::string display_name = "GCN";
  };

  explicit GcnAlign(Config config) : config_(std::move(config)) {}

  std::string name() const override { return config_.display_name; }
  Status Fit(const AlignInput& input) override;
  const Tensor& embeddings1() const override { return emb1_; }
  const Tensor& embeddings2() const override { return emb2_; }

 private:
  Config config_;
  Tensor emb1_;
  Tensor emb2_;
};

/// Factory configs for the published flavours.
GcnAlign::Config GcnConfig();
GcnAlign::Config GcnAlignConfig();
GcnAlign::Config GatAlignConfig();
GcnAlign::Config RdgcnLiteConfig();

}  // namespace sdea::baselines

#endif  // SDEA_BASELINES_GCN_ALIGN_H_
