#include "baselines/aligner_interface.h"

#include "base/check.h"

namespace sdea::baselines {

eval::RankingMetrics EntityAligner::Evaluate(
    const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs) const {
  const Tensor& e1 = embeddings1();
  const Tensor& e2 = embeddings2();
  SDEA_CHECK_GT(e1.size(), 0);
  Tensor src({static_cast<int64_t>(pairs.size()), e1.dim(1)});
  std::vector<int64_t> gold;
  gold.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    src.SetRow(static_cast<int64_t>(i), e1.Row(pairs[i].first));
    gold.push_back(pairs[i].second);
  }
  return eval::EvaluateAlignment(src, e2, gold);
}

}  // namespace sdea::baselines
