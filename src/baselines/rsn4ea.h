#ifndef SDEA_BASELINES_RSN4EA_H_
#define SDEA_BASELINES_RSN4EA_H_

#include <string>
#include <vector>

#include "baselines/aligner_interface.h"
#include "nn/gru.h"
#include "nn/layers.h"

namespace sdea::baselines {

/// RSN4EA-lite (Guo, Sun, Hu — ICML'19): the long-term-relational-
/// dependency group of Table II. Samples biased random walks
/// (entity-relation-entity-... paths) over the union graph with
/// seed-aligned entities identified, then trains a recurrent skip network:
/// a GRU predicts each next element of the path, with skip connections
/// letting an entity step condition directly on the entity two steps back
/// (the "residual" that distinguishes RSNs from plain RNN language models).
/// Alignment signal flows through shared slots of seed pairs, exactly like
/// the TransE-sharing baselines.
class Rsn4Ea : public EntityAligner {
 public:
  struct Config {
    int64_t dim = 48;          ///< Embedding & GRU width.
    int64_t walk_length = 7;   ///< Elements per path (e r e r e ...).
    int64_t walks_per_entity = 4;
    int64_t epochs = 12;
    int64_t batch_paths = 64;  ///< Paths per optimizer step.
    int64_t num_negatives = 4; ///< Sampled-softmax negatives per position.
    float lr = 3e-3f;
    uint64_t seed = 31;
  };

  explicit Rsn4Ea(Config config) : config_(std::move(config)) {}

  std::string name() const override { return "RSN4EA"; }
  Status Fit(const AlignInput& input) override;
  const Tensor& embeddings1() const override { return emb1_; }
  const Tensor& embeddings2() const override { return emb2_; }

 private:
  Config config_;
  Tensor emb1_;
  Tensor emb2_;
};

}  // namespace sdea::baselines

#endif  // SDEA_BASELINES_RSN4EA_H_
