#include "baselines/hman.h"

#include <cmath>

#include "base/check.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"

namespace sdea::baselines {
namespace {

// Hashed relation-name count features over the union entity space.
Tensor RelationFeatures(const kg::KnowledgeGraph& kg1,
                        const kg::KnowledgeGraph& kg2, int64_t dim) {
  const int64_t n1 = kg1.num_entities();
  const int64_t total = n1 + kg2.num_entities();
  Tensor out({total, dim});
  auto fill = [&](const kg::KnowledgeGraph& g, int64_t offset) {
    for (const kg::RelationalTriple& t : g.relational_triples()) {
      const size_t h = std::hash<std::string>{}(
                           g.relation_name(t.relation)) %
                       static_cast<size_t>(dim);
      out[(offset + t.head) * dim + static_cast<int64_t>(h)] += 1.0f;
      out[(offset + t.tail) * dim + static_cast<int64_t>(h)] += 1.0f;
    }
  };
  fill(kg1, 0);
  fill(kg2, n1);
  tmath::L2NormalizeRowsInPlace(&out);
  return out;
}

Tensor AttributeCountFeatures(const kg::KnowledgeGraph& kg1,
                              const kg::KnowledgeGraph& kg2, int64_t dim) {
  const int64_t n1 = kg1.num_entities();
  const int64_t total = n1 + kg2.num_entities();
  Tensor out({total, dim});
  auto fill = [&](const kg::KnowledgeGraph& g, int64_t offset) {
    for (const kg::AttributeTriple& t : g.attribute_triples()) {
      const size_t h = std::hash<std::string>{}(
                           g.attribute_name(t.attribute)) %
                       static_cast<size_t>(dim);
      out[(offset + t.entity) * dim + static_cast<int64_t>(h)] += 1.0f;
    }
  };
  fill(kg1, 0);
  fill(kg2, n1);
  tmath::L2NormalizeRowsInPlace(&out);
  return out;
}

// A one-hidden-layer FNN channel trained full-batch with the margin loss.
class FnnChannel : public sdea::nn::Module {
 public:
  FnnChannel(const std::string& name, int64_t in, int64_t out, Rng* rng) {
    const float l0 = std::sqrt(6.0f / static_cast<float>(in + out));
    w0_ = AddParameter(name + ".w0",
                       Tensor::RandomUniform({in, out}, l0, rng));
    b0_ = AddParameter(name + ".b0", Tensor({out}));
  }

  NodeId Forward(Graph* g, NodeId x) const {
    return g->L2NormalizeRows(g->Tanh(
        g->AddRowBroadcast(g->Matmul(x, g->Param(w0_)), g->Param(b0_))));
  }

 private:
  Parameter* w0_;
  Parameter* b0_;
};

// Trains one FNN channel and returns the union embedding matrix.
Tensor TrainChannel(const Tensor& features, const AlignInput& input,
                    const Hman::Config& cfg, const std::string& name,
                    Rng* rng) {
  const int64_t n1 = input.kg1->num_entities();
  const int64_t n2 = input.kg2->num_entities();
  FnnChannel channel(name, features.dim(1), cfg.channel_dim, rng);
  sdea::nn::Adam optimizer(channel.Parameters(), cfg.lr);
  for (int64_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    Graph g;
    NodeId all = channel.Forward(&g, g.Input(features));
    std::vector<int64_t> anchor_ids, pos_ids, neg_ids;
    for (const auto& [a, b] : input.seeds->train) {
      for (int64_t k = 0; k < cfg.negatives; ++k) {
        anchor_ids.push_back(a);
        pos_ids.push_back(n1 + b);
        neg_ids.push_back(n1 + static_cast<int64_t>(rng->UniformInt(
                                   static_cast<uint64_t>(n2))));
      }
    }
    NodeId loss = sdea::nn::MarginRankingLoss(
        &g, g.Gather(all, anchor_ids), g.Gather(all, pos_ids),
        g.Gather(all, neg_ids), cfg.margin);
    optimizer.ZeroGrad();
    g.Backward(loss);
    optimizer.Step();
  }
  Graph g;
  return g.Value(channel.Forward(&g, g.Input(features)));
}

}  // namespace

Status Hman::Fit(const AlignInput& input) {
  if (input.kg1 == nullptr || input.kg2 == nullptr ||
      input.seeds == nullptr) {
    return Status::InvalidArgument("Hman: null input");
  }
  const int64_t n1 = input.kg1->num_entities();
  const int64_t n2 = input.kg2->num_entities();
  const int64_t total = n1 + n2;

  // Channel 1: topology via the structure-only GCN.
  GcnAlign gcn(config_.gcn);
  SDEA_RETURN_IF_ERROR(gcn.Fit(input));

  // Channels 2 & 3: relation / attribute count FNNs.
  Rng rng(config_.seed);
  const Tensor rel_emb = TrainChannel(
      RelationFeatures(*input.kg1, *input.kg2, config_.feature_dim), input,
      config_, "hman.rel", &rng);
  const Tensor attr_emb = TrainChannel(
      AttributeCountFeatures(*input.kg1, *input.kg2, config_.feature_dim),
      input, config_, "hman.attr", &rng);

  // Concatenate channels (GCN output is per-side, FNNs are union-indexed).
  const int64_t d_gcn = gcn.embeddings1().dim(1);
  const int64_t d = d_gcn + 2 * config_.channel_dim;
  emb1_ = Tensor({n1, d});
  emb2_ = Tensor({n2, d});
  for (int64_t e = 0; e < total; ++e) {
    const bool first = e < n1;
    float* row = first ? emb1_.data() + e * d
                       : emb2_.data() + (e - n1) * d;
    const Tensor& gemb = first ? gcn.embeddings1() : gcn.embeddings2();
    const int64_t local = first ? e : e - n1;
    std::copy(gemb.data() + local * d_gcn,
              gemb.data() + (local + 1) * d_gcn, row);
    std::copy(rel_emb.data() + e * config_.channel_dim,
              rel_emb.data() + (e + 1) * config_.channel_dim, row + d_gcn);
    std::copy(attr_emb.data() + e * config_.channel_dim,
              attr_emb.data() + (e + 1) * config_.channel_dim,
              row + d_gcn + config_.channel_dim);
  }
  return Status::Ok();
}

}  // namespace sdea::baselines
