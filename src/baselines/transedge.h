#ifndef SDEA_BASELINES_TRANSEDGE_H_
#define SDEA_BASELINES_TRANSEDGE_H_

#include <string>

#include "baselines/aligner_interface.h"

namespace sdea::baselines {

/// TransEdge-lite (Sun et al., ISWC'19): edge-centric translation — the
/// strongest TransE-family baseline in the paper's Table III. The
/// translation vector is contextualized on the specific (head, tail) pair
/// ("context compression"):
///   psi(h, r, t) = tanh(W [h ; t] + b) + r
///   score = || h + psi - t ||^2
/// trained with margin ranking over corrupted triples in a seed-sharing
/// joint space (autograd mini-batches; Adam).
class TransEdge : public EntityAligner {
 public:
  struct Config {
    int64_t dim = 48;
    float margin = 1.0f;
    float lr = 3e-3f;
    int64_t epochs = 30;
    int64_t batch_size = 256;
    uint64_t seed = 43;
  };

  explicit TransEdge(Config config) : config_(std::move(config)) {}

  std::string name() const override { return "TransEdge"; }
  Status Fit(const AlignInput& input) override;
  const Tensor& embeddings1() const override { return emb1_; }
  const Tensor& embeddings2() const override { return emb2_; }

 private:
  Config config_;
  Tensor emb1_;
  Tensor emb2_;
};

}  // namespace sdea::baselines

#endif  // SDEA_BASELINES_TRANSEDGE_H_
