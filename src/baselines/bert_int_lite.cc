#include "baselines/bert_int_lite.h"

namespace sdea::baselines {

Status BertIntLite::Fit(const AlignInput& input) {
  if (input.kg1 == nullptr || input.kg2 == nullptr ||
      input.seeds == nullptr) {
    return Status::InvalidArgument("BertIntLite: null input");
  }
  std::vector<std::string> names1, names2;
  names1.reserve(static_cast<size_t>(input.kg1->num_entities()));
  for (kg::EntityId e = 0; e < input.kg1->num_entities(); ++e) {
    names1.push_back(input.kg1->entity_name(e));
  }
  names2.reserve(static_cast<size_t>(input.kg2->num_entities()));
  for (kg::EntityId e = 0; e < input.kg2->num_entities(); ++e) {
    names2.push_back(input.kg2->entity_name(e));
  }
  SDEA_RETURN_IF_ERROR(encoder_.Init(names1, names2, config_.text));
  SDEA_ASSIGN_OR_RETURN(auto report, encoder_.Pretrain(*input.seeds));
  (void)report;
  emb1_ = encoder_.ComputeAllEmbeddings(1);
  emb2_ = encoder_.ComputeAllEmbeddings(2);
  return Status::Ok();
}

}  // namespace sdea::baselines
