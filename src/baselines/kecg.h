#ifndef SDEA_BASELINES_KECG_H_
#define SDEA_BASELINES_KECG_H_

#include <string>

#include "baselines/aligner_interface.h"
#include "baselines/transe.h"

namespace sdea::baselines {

/// KECG-lite (Li et al., EMNLP'19): semi-supervised joint training of a
/// knowledge-embedding model (TransE over the union graph) and a
/// cross-graph attention model (the stop-gradient-attention GCN) on a
/// SHARED entity table. Each round alternates hand-rolled TransE SGD
/// epochs with full-batch attention-GNN margin steps, so the structural
/// signal and the seed-anchored cross-graph signal regularize each other.
class Kecg : public EntityAligner {
 public:
  struct Config {
    int64_t dim = 48;
    TransEConfig transe;        ///< Epochs here = per-round TransE epochs.
    int64_t rounds = 4;         ///< Alternation rounds.
    int64_t gnn_steps_per_round = 20;
    float gnn_lr = 0.01f;
    float margin = 1.0f;
    int64_t negatives = 5;
    uint64_t seed = 59;
  };

  explicit Kecg(Config config) : config_(std::move(config)) {}

  std::string name() const override { return "KECG"; }
  Status Fit(const AlignInput& input) override;
  const Tensor& embeddings1() const override { return emb1_; }
  const Tensor& embeddings2() const override { return emb2_; }

 private:
  Config config_;
  Tensor emb1_;
  Tensor emb2_;
};

}  // namespace sdea::baselines

#endif  // SDEA_BASELINES_KECG_H_
