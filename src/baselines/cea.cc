#include "baselines/cea.h"

#include <cmath>

#include "base/strings.h"
#include "core/stable_matching.h"
#include "text/pretrain.h"
#include "text/tokenizer.h"

namespace sdea::baselines {
namespace {

std::vector<std::string> EntityNames(const kg::KnowledgeGraph& g) {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(g.num_entities()));
  for (kg::EntityId e = 0; e < g.num_entities(); ++e) {
    out.push_back(g.entity_name(e));
  }
  return out;
}

// Mean of pre-trained token vectors per name ("semantic" channel).
Tensor NameSemanticEmbeddings(const std::vector<std::string>& names,
                              const text::SubwordTokenizer& tokenizer,
                              const Tensor& table) {
  const int64_t d = table.dim(1);
  Tensor out({static_cast<int64_t>(names.size()), d});
  for (size_t i = 0; i < names.size(); ++i) {
    const std::vector<int64_t> ids = tokenizer.Encode(names[i]);
    if (ids.empty()) continue;
    float* row = out.data() + static_cast<int64_t>(i) * d;
    for (int64_t id : ids) {
      const float* trow = table.data() + id * d;
      for (int64_t j = 0; j < d; ++j) row[j] += trow[j];
    }
    const float inv = 1.0f / static_cast<float>(ids.size());
    for (int64_t j = 0; j < d; ++j) row[j] *= inv;
  }
  return out;
}

}  // namespace

Status Cea::Fit(const AlignInput& input) {
  if (input.kg1 == nullptr || input.kg2 == nullptr ||
      input.seeds == nullptr) {
    return Status::InvalidArgument("Cea: null input");
  }
  // Channel 1: structural GCN embeddings.
  GcnAlign gcn(config_.gcn);
  SDEA_RETURN_IF_ERROR(gcn.Fit(input));
  struct1_ = gcn.embeddings1();
  struct2_ = gcn.embeddings2();

  const std::vector<std::string> names1 = EntityNames(*input.kg1);
  const std::vector<std::string> names2 = EntityNames(*input.kg2);

  // Channel 3 prerequisites: tokenizer + co-occurrence vectors over names.
  text::SubwordTokenizer tokenizer;
  text::TokenizerConfig tok_cfg;
  tok_cfg.num_merges = 512;
  std::vector<std::string> corpus = names1;
  for (const auto& n : names2) corpus.push_back(n);
  SDEA_RETURN_IF_ERROR(tokenizer.Train(corpus, tok_cfg));
  text::PretrainConfig pre_cfg;
  pre_cfg.dim = config_.semantic_dim;
  pre_cfg.epochs = 5;
  pre_cfg.seed = config_.seed;
  text::CooccurrencePretrainer pretrainer;
  SDEA_ASSIGN_OR_RETURN(Tensor table,
                        pretrainer.Train(corpus, tokenizer, pre_cfg));
  Tensor sem1 = NameSemanticEmbeddings(names1, tokenizer, table);
  Tensor sem2 = NameSemanticEmbeddings(names2, tokenizer, table);
  tmath::L2NormalizeRowsInPlace(&sem1);
  tmath::L2NormalizeRowsInPlace(&sem2);

  Tensor s1 = struct1_;
  Tensor s2 = struct2_;
  tmath::L2NormalizeRowsInPlace(&s1);
  tmath::L2NormalizeRowsInPlace(&s2);

  const int64_t n1 = static_cast<int64_t>(names1.size());
  const int64_t n2 = static_cast<int64_t>(names2.size());
  const Tensor struct_scores = tmath::MatmulTransposeB(s1, s2);
  const Tensor sem_scores = tmath::MatmulTransposeB(sem1, sem2);

  // Fused score matrix: structure + string + semantics.
  scores_ = Tensor({n1, n2});
  for (int64_t i = 0; i < n1; ++i) {
    for (int64_t j = 0; j < n2; ++j) {
      const double string_sim = EditSimilarity(names1[static_cast<size_t>(i)],
                                               names2[static_cast<size_t>(j)]);
      scores_[i * n2 + j] = static_cast<float>(
          config_.weight_struct * struct_scores[i * n2 + j] +
          config_.weight_string * string_sim +
          config_.weight_semantic * sem_scores[i * n2 + j]);
    }
  }
  return Status::Ok();
}

eval::RankingMetrics Cea::Evaluate(
    const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs) const {
  SDEA_CHECK_GT(scores_.size(), 0);
  const int64_t n2 = scores_.dim(1);
  Tensor sub({static_cast<int64_t>(pairs.size()), n2});
  std::vector<int64_t> gold;
  gold.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    std::copy(scores_.data() + pairs[i].first * n2,
              scores_.data() + (pairs[i].first + 1) * n2,
              sub.data() + static_cast<int64_t>(i) * n2);
    gold.push_back(pairs[i].second);
  }
  return eval::EvaluateFromScores(sub, gold);
}

double Cea::StableHits1(
    const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs) const {
  SDEA_CHECK_GT(scores_.size(), 0);
  const std::vector<int64_t> match = core::StableMatch(scores_);
  std::vector<int64_t> sub_match, gold;
  for (const auto& [a, b] : pairs) {
    sub_match.push_back(match[static_cast<size_t>(a)]);
    gold.push_back(b);
  }
  return core::MatchingAccuracy(sub_match, gold);
}

}  // namespace sdea::baselines
