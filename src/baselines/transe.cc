#include "baselines/transe.h"

#include <cmath>

#include "base/check.h"

namespace sdea::baselines {
namespace {

int64_t Resolve(const std::vector<int32_t>& merge, int64_t id) {
  return merge.empty() ? id : merge[static_cast<size_t>(id)];
}

}  // namespace

TransE::TransE(int64_t num_entities, int64_t num_relations,
               const TransEConfig& config)
    : config_(config), num_entities_(num_entities), rng_(config.seed) {
  SDEA_CHECK_GT(num_entities, 0);
  SDEA_CHECK_GT(num_relations, 0);
  const float limit = 6.0f / std::sqrt(static_cast<float>(config.dim));
  entities_ = Tensor::RandomUniform({num_entities, config.dim}, limit, &rng_);
  relations_ =
      Tensor::RandomUniform({num_relations, config.dim}, limit, &rng_);
  tmath::L2NormalizeRowsInPlace(&entities_);
  tmath::L2NormalizeRowsInPlace(&relations_);
}

void TransE::Step(int64_t h, int64_t r, int64_t t, int64_t h_neg,
                  int64_t t_neg) {
  const int64_t d = config_.dim;
  float* he = entities_.data() + h * d;
  float* te = entities_.data() + t * d;
  float* re = relations_.data() + r * d;

  float d_pos = 0.0f;
  for (int64_t k = 0; k < d; ++k) {
    const float diff = he[k] + re[k] - te[k];
    d_pos += diff * diff;
  }

  if (!config_.negative_sampling) {
    // MTransE-style: pull h + r toward t with no contrastive term.
    for (int64_t k = 0; k < d; ++k) {
      const float g = 2.0f * (he[k] + re[k] - te[k]);
      he[k] -= config_.lr * g;
      re[k] -= config_.lr * g;
      te[k] += config_.lr * g;
    }
    return;
  }

  float* hn = entities_.data() + h_neg * d;
  float* tn = entities_.data() + t_neg * d;
  float d_neg = 0.0f;
  for (int64_t k = 0; k < d; ++k) {
    const float diff = hn[k] + re[k] - tn[k];
    d_neg += diff * diff;
  }
  if (config_.margin + d_pos - d_neg <= 0.0f) return;  // Hinge inactive.
  for (int64_t k = 0; k < d; ++k) {
    const float gp = 2.0f * (he[k] + re[k] - te[k]);
    const float gn = 2.0f * (hn[k] + re[k] - tn[k]);
    he[k] -= config_.lr * gp;
    te[k] += config_.lr * gp;
    hn[k] += config_.lr * gn;
    tn[k] -= config_.lr * gn;
    re[k] -= config_.lr * (gp - gn);
  }
}

void TransE::TrainEpoch(const std::vector<kg::RelationalTriple>& triples,
                        const std::vector<int32_t>& merge) {
  // Visit triples in a fresh random order each epoch.
  std::vector<size_t> order(triples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng_.Shuffle(&order);
  for (size_t idx : order) {
    const kg::RelationalTriple& tr = triples[idx];
    const int64_t h = Resolve(merge, tr.head);
    const int64_t t = Resolve(merge, tr.tail);
    int64_t h_neg = h, t_neg = t;
    if (config_.negative_sampling) {
      // Corrupt head or tail uniformly.
      if (rng_.Bernoulli(0.5)) {
        h_neg = Resolve(merge, static_cast<int64_t>(rng_.UniformInt(
                                   static_cast<uint64_t>(num_entities_))));
      } else {
        t_neg = Resolve(merge, static_cast<int64_t>(rng_.UniformInt(
                                   static_cast<uint64_t>(num_entities_))));
      }
      if (h_neg == h && t_neg == t) continue;
    }
    Step(h, tr.relation, t, h_neg, t_neg);
  }
  if (config_.normalize_entities) {
    tmath::L2NormalizeRowsInPlace(&entities_);
  }
}

void TransE::Train(const std::vector<kg::RelationalTriple>& triples,
                   const std::vector<int32_t>& merge) {
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    TrainEpoch(triples, merge);
  }
}

void TransE::PathStep(int64_t h, int64_t r1, int64_t r2, int64_t t,
                      float lr) {
  const int64_t d = config_.dim;
  float* he = entities_.data() + h * d;
  float* te = entities_.data() + t * d;
  float* r1e = relations_.data() + r1 * d;
  float* r2e = relations_.data() + r2 * d;
  for (int64_t k = 0; k < d; ++k) {
    const float g = 2.0f * (he[k] + r1e[k] + r2e[k] - te[k]);
    he[k] -= lr * g;
    r1e[k] -= lr * g;
    r2e[k] -= lr * g;
    te[k] += lr * g;
  }
}

void TransE::PullEntities(int64_t a, int64_t b, float lr) {
  const int64_t d = config_.dim;
  float* ae = entities_.data() + a * d;
  float* be = entities_.data() + b * d;
  for (int64_t k = 0; k < d; ++k) {
    const float g = 2.0f * (ae[k] - be[k]);
    ae[k] -= lr * g;
    be[k] += lr * g;
  }
}

Tensor TransE::EntityEmbeddings(const std::vector<int32_t>& merge) const {
  Tensor out({num_entities_, config_.dim});
  for (int64_t i = 0; i < num_entities_; ++i) {
    const int64_t slot = Resolve(merge, i);
    std::copy(entities_.data() + slot * config_.dim,
              entities_.data() + (slot + 1) * config_.dim,
              out.data() + i * config_.dim);
  }
  return out;
}

}  // namespace sdea::baselines
