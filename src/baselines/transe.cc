#include "baselines/transe.h"

#include <cmath>

#include "base/check.h"
#include "train/sampler.h"
#include "train/trainer.h"

namespace sdea::baselines {

TransE::Net::Net(int64_t num_entities, int64_t num_relations, int64_t dim,
                 Rng* rng) {
  SDEA_CHECK_GT(num_entities, 0);
  SDEA_CHECK_GT(num_relations, 0);
  const float limit = 6.0f / std::sqrt(static_cast<float>(dim));
  Tensor e = Tensor::RandomUniform({num_entities, dim}, limit, rng);
  Tensor r = Tensor::RandomUniform({num_relations, dim}, limit, rng);
  tmath::L2NormalizeRowsInPlace(&e);
  tmath::L2NormalizeRowsInPlace(&r);
  entities = AddParameter("transe.entity", std::move(e));
  relations = AddParameter("transe.relation", std::move(r));
}

TransE::TransE(int64_t num_entities, int64_t num_relations,
               const TransEConfig& config)
    : config_(config),
      num_entities_(num_entities),
      rng_(config.seed),
      net_(num_entities, num_relations, config.dim, &rng_) {}

void TransE::Step(int64_t h, int64_t r, int64_t t, int64_t h_neg,
                  int64_t t_neg) {
  const int64_t d = config_.dim;
  float* entities = net_.entities->value.data();
  float* he = entities + h * d;
  float* te = entities + t * d;
  float* re = net_.relations->value.data() + r * d;

  float d_pos = 0.0f;
  for (int64_t k = 0; k < d; ++k) {
    const float diff = he[k] + re[k] - te[k];
    d_pos += diff * diff;
  }

  if (!config_.negative_sampling) {
    // MTransE-style: pull h + r toward t with no contrastive term.
    for (int64_t k = 0; k < d; ++k) {
      const float g = 2.0f * (he[k] + re[k] - te[k]);
      he[k] -= config_.lr * g;
      re[k] -= config_.lr * g;
      te[k] += config_.lr * g;
    }
    return;
  }

  float* hn = entities + h_neg * d;
  float* tn = entities + t_neg * d;
  float d_neg = 0.0f;
  for (int64_t k = 0; k < d; ++k) {
    const float diff = hn[k] + re[k] - tn[k];
    d_neg += diff * diff;
  }
  if (config_.margin + d_pos - d_neg <= 0.0f) return;  // Hinge inactive.
  for (int64_t k = 0; k < d; ++k) {
    const float gp = 2.0f * (he[k] + re[k] - te[k]);
    const float gn = 2.0f * (hn[k] + re[k] - tn[k]);
    he[k] -= config_.lr * gp;
    te[k] += config_.lr * gp;
    hn[k] += config_.lr * gn;
    tn[k] -= config_.lr * gn;
    re[k] -= config_.lr * (gp - gn);
  }
}

/// Adapts one (triples, merge) training call to the Trainer: corruption
/// draws come from the model's own Rng, so the stream (per-epoch shuffle,
/// then per-triple Bernoulli + UniformInt) is exactly the historical loop's.
class TransE::Task : public train::TrainTask {
 public:
  Task(TransE* model, const std::vector<kg::RelationalTriple>& triples,
       const std::vector<int32_t>& merge)
      : model_(model),
        triples_(triples),
        sampler_(model->num_entities_, merge) {}

  size_t num_examples() const override { return triples_.size(); }
  Rng* rng() override { return &model_->rng_; }
  nn::Module* module() override { return &model_->net_; }

  float TrainBatch(const uint64_t* ids, size_t n) override {
    for (size_t i = 0; i < n; ++i) {
      const kg::RelationalTriple& tr = triples_[ids[i]];
      const int64_t h = sampler_.Resolve(tr.head);
      const int64_t t = sampler_.Resolve(tr.tail);
      int64_t h_neg = h, t_neg = t;
      if (model_->config_.negative_sampling) {
        const auto corrupted = sampler_.CorruptHeadOrTail(h, t, rng());
        h_neg = corrupted.head;
        t_neg = corrupted.tail;
        if (h_neg == h && t_neg == t) continue;
      }
      model_->Step(h, tr.relation, t, h_neg, t_neg);
    }
    return 0.0f;
  }

  void OnEpochEnd(int64_t /*epoch*/) override {
    if (model_->config_.normalize_entities) {
      tmath::L2NormalizeRowsInPlace(&model_->net_.entities->value);
    }
  }

 private:
  TransE* model_;
  const std::vector<kg::RelationalTriple>& triples_;
  train::NegativeSampler sampler_;
};

void TransE::RunTrainer(const std::vector<kg::RelationalTriple>& triples,
                        const std::vector<int32_t>& merge, int64_t epochs) {
  if (triples.empty()) {
    // The historical epoch loop still renormalized on empty input.
    if (config_.normalize_entities) {
      for (int64_t e = 0; e < epochs; ++e) {
        tmath::L2NormalizeRowsInPlace(&net_.entities->value);
      }
    }
    return;
  }
  Task task(this, triples, merge);
  train::TrainerOptions options;
  options.max_epochs = epochs;
  options.batch_size = static_cast<int64_t>(triples.size());
  options.shuffle = train::TrainerOptions::Shuffle::kFreshPerEpoch;
  train::Trainer trainer(&task, options);
  SDEA_CHECK(trainer.Run().ok());
}

void TransE::TrainEpoch(const std::vector<kg::RelationalTriple>& triples,
                        const std::vector<int32_t>& merge) {
  RunTrainer(triples, merge, /*epochs=*/1);
}

void TransE::Train(const std::vector<kg::RelationalTriple>& triples,
                   const std::vector<int32_t>& merge) {
  RunTrainer(triples, merge, config_.epochs);
}

void TransE::PathStep(int64_t h, int64_t r1, int64_t r2, int64_t t,
                      float lr) {
  const int64_t d = config_.dim;
  float* entities = net_.entities->value.data();
  float* relations = net_.relations->value.data();
  float* he = entities + h * d;
  float* te = entities + t * d;
  float* r1e = relations + r1 * d;
  float* r2e = relations + r2 * d;
  for (int64_t k = 0; k < d; ++k) {
    const float g = 2.0f * (he[k] + r1e[k] + r2e[k] - te[k]);
    he[k] -= lr * g;
    r1e[k] -= lr * g;
    r2e[k] -= lr * g;
    te[k] += lr * g;
  }
}

void TransE::PullEntities(int64_t a, int64_t b, float lr) {
  const int64_t d = config_.dim;
  float* entities = net_.entities->value.data();
  float* ae = entities + a * d;
  float* be = entities + b * d;
  for (int64_t k = 0; k < d; ++k) {
    const float g = 2.0f * (ae[k] - be[k]);
    ae[k] -= lr * g;
    be[k] += lr * g;
  }
}

Tensor TransE::EntityEmbeddings(const std::vector<int32_t>& merge) const {
  const Tensor& entities = net_.entities->value;
  Tensor out({num_entities_, config_.dim});
  for (int64_t i = 0; i < num_entities_; ++i) {
    const int64_t slot =
        merge.empty() ? i : merge[static_cast<size_t>(i)];
    std::copy(entities.data() + slot * config_.dim,
              entities.data() + (slot + 1) * config_.dim,
              out.data() + i * config_.dim);
  }
  return out;
}

}  // namespace sdea::baselines
