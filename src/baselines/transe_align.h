#ifndef SDEA_BASELINES_TRANSE_ALIGN_H_
#define SDEA_BASELINES_TRANSE_ALIGN_H_

#include <string>
#include <vector>

#include "baselines/aligner_interface.h"
#include "baselines/transe.h"

namespace sdea::baselines {

/// JAPE-Stru-style structural alignment: one TransE space over the union of
/// both KGs, with seed-aligned entities sharing parameters and negative
/// sampling enabled. With `bootstrap_rounds > 0` this becomes a BootEA-lite
/// semi-supervised variant: after each round, mutually-nearest confident
/// pairs are added to the shared-parameter merge and training continues.
class TransEAlign : public EntityAligner {
 public:
  struct Config {
    TransEConfig transe;
    int64_t bootstrap_rounds = 0;      ///< 0 = plain JAPE-Stru behaviour.
    int64_t epochs_per_round = 25;     ///< Extra epochs per bootstrap round.
    float bootstrap_threshold = 0.7f;  ///< Min cosine for a new pseudo-seed.
    std::string display_name = "JAPE-Stru";
  };

  explicit TransEAlign(Config config) : config_(std::move(config)) {}

  std::string name() const override { return config_.display_name; }
  Status Fit(const AlignInput& input) override;
  const Tensor& embeddings1() const override { return emb1_; }
  const Tensor& embeddings2() const override { return emb2_; }

  /// Number of pseudo-seeds added by bootstrapping (for reporting).
  int64_t bootstrapped_pairs() const { return bootstrapped_pairs_; }

 private:
  Config config_;
  Tensor emb1_;
  Tensor emb2_;
  int64_t bootstrapped_pairs_ = 0;
};

/// Convenience factory for the BootEA-lite configuration.
TransEAlign::Config BootEaConfig(TransEConfig transe);

}  // namespace sdea::baselines

#endif  // SDEA_BASELINES_TRANSE_ALIGN_H_
