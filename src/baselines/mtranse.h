#ifndef SDEA_BASELINES_MTRANSE_H_
#define SDEA_BASELINES_MTRANSE_H_

#include <string>

#include "baselines/aligner_interface.h"
#include "baselines/transe.h"

namespace sdea::baselines {

/// MTransE (Chen et al., IJCAI'17): trains TransE independently per KG
/// (without negative sampling, as the original and as the paper's analysis
/// of its weakness notes), then learns a linear transform between the two
/// embedding spaces from the seed alignment.
class MTransE : public EntityAligner {
 public:
  struct Config {
    TransEConfig transe;  ///< negative_sampling is forced off.
    float mapping_lr = 0.05f;
    int64_t mapping_epochs = 200;
    uint64_t seed = 13;
  };

  explicit MTransE(Config config) : config_(std::move(config)) {}

  std::string name() const override { return "MTransE"; }
  Status Fit(const AlignInput& input) override;
  const Tensor& embeddings1() const override { return emb1_; }
  const Tensor& embeddings2() const override { return emb2_; }

 private:
  Config config_;
  Tensor emb1_;
  Tensor emb2_;
};

}  // namespace sdea::baselines

#endif  // SDEA_BASELINES_MTRANSE_H_
