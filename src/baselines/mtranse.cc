#include "baselines/mtranse.h"

namespace sdea::baselines {

Status MTransE::Fit(const AlignInput& input) {
  if (input.kg1 == nullptr || input.kg2 == nullptr ||
      input.seeds == nullptr) {
    return Status::InvalidArgument("MTransE: null input");
  }
  TransEConfig tc = config_.transe;
  tc.negative_sampling = false;  // Original MTransE has no negatives.
  TransE model1(input.kg1->num_entities(),
                std::max<int64_t>(1, input.kg1->num_relations()), tc);
  tc.seed ^= 0x9999;
  TransE model2(input.kg2->num_entities(),
                std::max<int64_t>(1, input.kg2->num_relations()), tc);
  const std::vector<int32_t> identity;
  model1.Train(input.kg1->relational_triples(), identity);
  model2.Train(input.kg2->relational_triples(), identity);

  const Tensor e1 = model1.EntityEmbeddings(identity);
  const Tensor e2 = model2.EntityEmbeddings(identity);
  const int64_t d = config_.transe.dim;

  // Learn W minimizing ||W h1 - h2||^2 over the seed pairs by SGD,
  // initialized at identity.
  Tensor w({d, d});
  for (int64_t i = 0; i < d; ++i) w[i * d + i] = 1.0f;
  Rng rng(config_.seed);
  std::vector<std::pair<kg::EntityId, kg::EntityId>> train =
      input.seeds->train;
  for (int64_t epoch = 0; epoch < config_.mapping_epochs; ++epoch) {
    rng.Shuffle(&train);
    for (const auto& [a, b] : train) {
      const float* h1 = e1.data() + a * d;
      const float* h2 = e2.data() + b * d;
      // residual = W h1 - h2; dW = 2 residual h1^T.
      std::vector<float> residual(static_cast<size_t>(d), 0.0f);
      for (int64_t i = 0; i < d; ++i) {
        float s = 0.0f;
        for (int64_t j = 0; j < d; ++j) s += w[i * d + j] * h1[j];
        residual[static_cast<size_t>(i)] = s - h2[i];
      }
      for (int64_t i = 0; i < d; ++i) {
        const float coeff =
            2.0f * config_.mapping_lr * residual[static_cast<size_t>(i)];
        for (int64_t j = 0; j < d; ++j) w[i * d + j] -= coeff * h1[j];
      }
    }
  }

  // emb1 = e1 @ W^T maps KG1 into KG2's space.
  emb1_ = tmath::MatmulTransposeB(e1, w);
  emb2_ = e2;
  return Status::Ok();
}

}  // namespace sdea::baselines
