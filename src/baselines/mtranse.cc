#include "baselines/mtranse.h"

#include "train/trainer.h"

namespace sdea::baselines {
namespace {

// SGD on the linear mapping W minimizing ||W h1 - h2||^2 over seed pairs.
// W is a raw tensor (no module/optimizer); the Trainer only drives the
// epoch order.
class MappingTask : public train::TrainTask {
 public:
  MappingTask(Tensor* w, const Tensor* e1, const Tensor* e2,
              const std::vector<std::pair<kg::EntityId, kg::EntityId>>* pairs,
              Rng* rng, float lr, int64_t d)
      : w_(w), e1_(e1), e2_(e2), pairs_(pairs), rng_(rng), lr_(lr), d_(d) {}

  size_t num_examples() const override { return pairs_->size(); }
  Rng* rng() override { return rng_; }

  float TrainBatch(const uint64_t* ids, size_t n) override {
    Tensor& w = *w_;
    const int64_t d = d_;
    for (size_t k = 0; k < n; ++k) {
      const auto& [a, b] = (*pairs_)[ids[k]];
      const float* h1 = e1_->data() + a * d;
      const float* h2 = e2_->data() + b * d;
      // residual = W h1 - h2; dW = 2 residual h1^T.
      std::vector<float> residual(static_cast<size_t>(d), 0.0f);
      for (int64_t i = 0; i < d; ++i) {
        float s = 0.0f;
        for (int64_t j = 0; j < d; ++j) s += w[i * d + j] * h1[j];
        residual[static_cast<size_t>(i)] = s - h2[i];
      }
      for (int64_t i = 0; i < d; ++i) {
        const float coeff = 2.0f * lr_ * residual[static_cast<size_t>(i)];
        for (int64_t j = 0; j < d; ++j) w[i * d + j] -= coeff * h1[j];
      }
    }
    return 0.0f;
  }

 private:
  Tensor* w_;
  const Tensor* e1_;
  const Tensor* e2_;
  const std::vector<std::pair<kg::EntityId, kg::EntityId>>* pairs_;
  Rng* rng_;
  float lr_;
  int64_t d_;
};

}  // namespace

Status MTransE::Fit(const AlignInput& input) {
  if (input.kg1 == nullptr || input.kg2 == nullptr ||
      input.seeds == nullptr) {
    return Status::InvalidArgument("MTransE: null input");
  }
  TransEConfig tc = config_.transe;
  tc.negative_sampling = false;  // Original MTransE has no negatives.
  TransE model1(input.kg1->num_entities(),
                std::max<int64_t>(1, input.kg1->num_relations()), tc);
  tc.seed ^= 0x9999;
  TransE model2(input.kg2->num_entities(),
                std::max<int64_t>(1, input.kg2->num_relations()), tc);
  const std::vector<int32_t> identity;
  model1.Train(input.kg1->relational_triples(), identity);
  model2.Train(input.kg2->relational_triples(), identity);

  const Tensor e1 = model1.EntityEmbeddings(identity);
  const Tensor e2 = model2.EntityEmbeddings(identity);
  const int64_t d = config_.transe.dim;

  // Learn W minimizing ||W h1 - h2||^2 over the seed pairs by SGD,
  // initialized at identity.
  Tensor w({d, d});
  for (int64_t i = 0; i < d; ++i) w[i * d + i] = 1.0f;
  Rng rng(config_.seed);
  if (!input.seeds->train.empty() && config_.mapping_epochs > 0) {
    MappingTask task(&w, &e1, &e2, &input.seeds->train, &rng,
                     config_.mapping_lr, d);
    train::TrainerOptions options;
    options.max_epochs = config_.mapping_epochs;
    options.batch_size = static_cast<int64_t>(input.seeds->train.size());
    options.shuffle = train::TrainerOptions::Shuffle::kCumulative;
    train::Trainer trainer(&task, options);
    auto stats = trainer.Run();
    if (!stats.ok()) return stats.status();
  }

  // emb1 = e1 @ W^T maps KG1 into KG2's space.
  emb1_ = tmath::MatmulTransposeB(e1, w);
  emb2_ = e2;
  return Status::Ok();
}

}  // namespace sdea::baselines
