#ifndef SDEA_BASELINES_CEA_H_
#define SDEA_BASELINES_CEA_H_

#include <string>
#include <vector>

#include "baselines/aligner_interface.h"
#include "baselines/gcn_align.h"

namespace sdea::baselines {

/// CEA (Zeng et al., ICDE'20): fuses three adaptive feature channels —
/// structural embeddings (GCN), string similarity of entity names
/// (Levenshtein), and semantic name embeddings (averaged pre-trained word
/// vectors; fastText in the original, our co-occurrence vectors here) —
/// into one score matrix. "CEA (Emb)" ranks by the fused scores;
/// `StableHits1` applies the Gale–Shapley post-pass of the full CEA (1-1
/// matching, Hits@1 only, as in the paper's tables).
class Cea : public EntityAligner {
 public:
  struct Config {
    GcnAlign::Config gcn = GcnConfig();
    double weight_struct = 0.3;
    double weight_string = 0.4;
    double weight_semantic = 0.3;
    int64_t semantic_dim = 32;
    uint64_t seed = 29;
  };

  explicit Cea(Config config) : config_(std::move(config)) {}

  std::string name() const override { return "CEA (Emb)"; }
  Status Fit(const AlignInput& input) override;
  const Tensor& embeddings1() const override { return struct1_; }
  const Tensor& embeddings2() const override { return struct2_; }

  /// Ranks by the fused score matrix.
  eval::RankingMetrics Evaluate(
      const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs)
      const override;

  /// Full CEA: stable matching over the fused scores; returns Hits@1 (%).
  double StableHits1(
      const std::vector<std::pair<kg::EntityId, kg::EntityId>>& pairs) const;

  /// The fused [N1, N2] score matrix (valid after Fit).
  const Tensor& fused_scores() const { return scores_; }

 private:
  Config config_;
  Tensor struct1_;
  Tensor struct2_;
  Tensor scores_;
};

}  // namespace sdea::baselines

#endif  // SDEA_BASELINES_CEA_H_
