#include "baselines/rsn4ea.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "nn/optimizer.h"

namespace sdea::baselines {
namespace {

// One sampled walk: alternating entity / relation ids in the joint
// vocabulary (entities first, relations after).
using Walk = std::vector<int64_t>;

struct JointGraph {
  int64_t num_entities = 0;   // Union, after seed merging.
  int64_t num_relations = 0;  // KG1 relations then KG2 relations.
  // adjacency[e] = (relation vocab id, merged neighbor entity id).
  std::vector<std::vector<std::pair<int64_t, int64_t>>> adjacency;
};

JointGraph BuildJointGraph(const AlignInput& input,
                           std::vector<int32_t>* merge) {
  const int64_t n1 = input.kg1->num_entities();
  const int64_t n2 = input.kg2->num_entities();
  const int64_t total = n1 + n2;
  merge->resize(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) {
    (*merge)[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  }
  for (const auto& [a, b] : input.seeds->train) {
    (*merge)[static_cast<size_t>(n1 + b)] = a;
  }
  JointGraph g;
  g.num_entities = total;
  g.num_relations =
      input.kg1->num_relations() + input.kg2->num_relations();
  g.adjacency.resize(static_cast<size_t>(total));
  auto resolve = [&](int64_t raw) {
    return static_cast<int64_t>((*merge)[static_cast<size_t>(raw)]);
  };
  auto add = [&](int64_t h, int64_t r, int64_t t) {
    g.adjacency[static_cast<size_t>(h)].emplace_back(r, t);
    g.adjacency[static_cast<size_t>(t)].emplace_back(r, h);
  };
  for (const kg::RelationalTriple& t : input.kg1->relational_triples()) {
    add(resolve(t.head), t.relation, resolve(t.tail));
  }
  const int64_t r1 = input.kg1->num_relations();
  for (const kg::RelationalTriple& t : input.kg2->relational_triples()) {
    add(resolve(n1 + t.head), r1 + t.relation, resolve(n1 + t.tail));
  }
  return g;
}

}  // namespace

Status Rsn4Ea::Fit(const AlignInput& input) {
  if (input.kg1 == nullptr || input.kg2 == nullptr ||
      input.seeds == nullptr) {
    return Status::InvalidArgument("Rsn4Ea: null input");
  }
  std::vector<int32_t> merge;
  const JointGraph graph = BuildJointGraph(input, &merge);
  const int64_t vocab = graph.num_entities + graph.num_relations;
  const int64_t d = config_.dim;

  Rng rng(config_.seed);
  // Joint embedding table: entity ids 0..E-1, relation ids E..E+R-1.
  Parameter table("rsn.table",
                  Tensor::RandomNormal({vocab, d},
                                       1.0f / std::sqrt(
                                                  static_cast<float>(d)),
                                       &rng));
  nn::GruCell cell("rsn.gru", d, d, &rng);
  // Skip-connection projections: h' = W1 h + W2 emb(subject entity).
  const float lim = std::sqrt(3.0f / static_cast<float>(d));
  Parameter w1("rsn.w1", Tensor::RandomUniform({d, d}, lim, &rng));
  Parameter w2("rsn.w2", Tensor::RandomUniform({d, d}, lim, &rng));

  std::vector<Parameter*> params = {&table, &w1, &w2};
  for (Parameter* p : cell.Parameters()) params.push_back(p);
  nn::Adam optimizer(params, config_.lr);

  // Walk sampler: start at an entity with edges, alternate relation/entity.
  auto sample_walk = [&](int64_t start) -> Walk {
    Walk walk{start};
    int64_t cur = start;
    while (static_cast<int64_t>(walk.size()) < config_.walk_length) {
      const auto& edges = graph.adjacency[static_cast<size_t>(cur)];
      if (edges.empty()) break;
      const auto& [rel, nxt] = edges[rng.UniformInt(edges.size())];
      walk.push_back(graph.num_entities + rel);
      walk.push_back(nxt);
      cur = nxt;
    }
    return walk;
  };

  std::vector<int64_t> starts;
  for (int64_t e = 0; e < graph.num_entities; ++e) {
    if (merge[static_cast<size_t>(e)] != e) continue;  // Merged-away slot.
    if (graph.adjacency[static_cast<size_t>(e)].empty()) continue;
    for (int64_t k = 0; k < config_.walks_per_entity; ++k) {
      starts.push_back(e);
    }
  }
  if (starts.empty()) return Status::InvalidArgument("no relational edges");

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&starts);
    for (size_t batch_start = 0; batch_start < starts.size();
         batch_start += static_cast<size_t>(config_.batch_paths)) {
      const size_t batch_end =
          std::min(starts.size(),
                   batch_start + static_cast<size_t>(config_.batch_paths));
      Graph g;
      NodeId tbl = g.Param(&table);
      NodeId loss = -1;
      int64_t terms = 0;
      for (size_t p = batch_start; p < batch_end; ++p) {
        const Walk walk = sample_walk(starts[p]);
        if (walk.size() < 3) continue;
        NodeId inputs = g.Gather(tbl, walk);  // [L, d]
        NodeId h = g.Input(Tensor({1, d}));
        for (size_t t = 0; t + 1 < walk.size(); ++t) {
          NodeId xt = g.SliceRows(inputs, static_cast<int64_t>(t),
                                  static_cast<int64_t>(t) + 1);
          h = cell.Step(&g, xt, h);
          NodeId context = h;
          const bool target_is_entity = ((t + 1) % 2 == 0);
          if (target_is_entity && t >= 1) {
            // Skip connection from the subject entity two steps back.
            NodeId subject = g.SliceRows(inputs, static_cast<int64_t>(t) - 1,
                                         static_cast<int64_t>(t));
            context = g.Add(g.Matmul(h, g.Param(&w1)),
                            g.Matmul(subject, g.Param(&w2)));
          }
          // Margin ranking of the true next element vs sampled negatives
          // under the dot-product score.
          NodeId pos = g.SliceRows(inputs, static_cast<int64_t>(t) + 1,
                                   static_cast<int64_t>(t) + 2);
          NodeId pos_score =
              g.Matmul(context, g.Transpose(pos));  // [1,1]
          for (int64_t k = 0; k < config_.num_negatives; ++k) {
            const int64_t neg_id =
                target_is_entity
                    ? static_cast<int64_t>(
                          rng.UniformInt(static_cast<uint64_t>(
                              graph.num_entities)))
                    : graph.num_entities +
                          static_cast<int64_t>(rng.UniformInt(
                              static_cast<uint64_t>(graph.num_relations)));
            NodeId neg = g.Gather(tbl, {neg_id});
            NodeId neg_score = g.Matmul(context, g.Transpose(neg));
            NodeId hinge = g.Relu(
                g.AddConst(g.Sub(neg_score, pos_score), 1.0f));
            loss = (loss < 0) ? hinge : g.Add(loss, hinge);
            ++terms;
          }
        }
      }
      if (loss < 0 || terms == 0) continue;
      NodeId mean_loss = g.Scale(loss, 1.0f / static_cast<float>(terms));
      optimizer.ZeroGrad();
      g.Backward(g.SumAll(mean_loss));
      optimizer.ClipGradNorm(5.0f);
      optimizer.Step();
    }
  }

  // Extract per-side entity embeddings, resolving merged slots.
  const int64_t n1 = input.kg1->num_entities();
  const int64_t n2 = input.kg2->num_entities();
  emb1_ = Tensor({n1, d});
  emb2_ = Tensor({n2, d});
  for (int64_t e = 0; e < n1; ++e) {
    const int64_t slot = merge[static_cast<size_t>(e)];
    std::copy(table.value.data() + slot * d,
              table.value.data() + (slot + 1) * d, emb1_.data() + e * d);
  }
  for (int64_t e = 0; e < n2; ++e) {
    const int64_t slot = merge[static_cast<size_t>(n1 + e)];
    std::copy(table.value.data() + slot * d,
              table.value.data() + (slot + 1) * d, emb2_.data() + e * d);
  }
  return Status::Ok();
}

}  // namespace sdea::baselines
