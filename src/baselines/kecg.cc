#include "baselines/kecg.h"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "base/check.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/sparse.h"

namespace sdea::baselines {
namespace {

// Normalized union adjacency (same construction as the GCN baselines).
CsrMatrix UnionAdjacency(const kg::KnowledgeGraph& kg1,
                         const kg::KnowledgeGraph& kg2) {
  const int64_t n1 = kg1.num_entities();
  const int64_t total = n1 + kg2.num_entities();
  std::vector<std::tuple<int64_t, int64_t, float>> coo;
  for (const kg::RelationalTriple& t : kg1.relational_triples()) {
    coo.emplace_back(t.head, t.tail, 1.0f);
    coo.emplace_back(t.tail, t.head, 1.0f);
  }
  for (const kg::RelationalTriple& t : kg2.relational_triples()) {
    coo.emplace_back(n1 + t.head, n1 + t.tail, 1.0f);
    coo.emplace_back(n1 + t.tail, n1 + t.head, 1.0f);
  }
  for (int64_t i = 0; i < total; ++i) coo.emplace_back(i, i, 1.0f);
  std::vector<double> degree(static_cast<size_t>(total), 0.0);
  for (const auto& [r, c, v] : coo) degree[static_cast<size_t>(r)] += v;
  for (auto& [r, c, v] : coo) {
    v = static_cast<float>(
        v / std::sqrt(std::max(degree[static_cast<size_t>(r)], 1e-9) *
                      std::max(degree[static_cast<size_t>(c)], 1e-9)));
  }
  return CsrMatrix::FromTriplets(total, total, coo);
}

// Hand-rolled TransE margin epoch operating directly on the shared entity
// table (so the GNN sees the structural updates and vice versa).
void TransEEpoch(Tensor* entities, Tensor* relations,
                 const std::vector<kg::RelationalTriple>& triples,
                 float lr, float margin, Rng* rng) {
  const int64_t d = entities->dim(1);
  const int64_t n = entities->dim(0);
  for (const kg::RelationalTriple& tr : triples) {
    float* h = entities->data() + tr.head * d;
    float* t = entities->data() + tr.tail * d;
    float* r = relations->data() + tr.relation * d;
    // Corrupt the tail.
    const int64_t neg =
        static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(n)));
    float* tn = entities->data() + neg * d;
    float d_pos = 0.0f, d_neg = 0.0f;
    for (int64_t k = 0; k < d; ++k) {
      const float dp = h[k] + r[k] - t[k];
      const float dn = h[k] + r[k] - tn[k];
      d_pos += dp * dp;
      d_neg += dn * dn;
    }
    if (margin + d_pos - d_neg <= 0.0f) continue;
    for (int64_t k = 0; k < d; ++k) {
      const float gp = 2.0f * (h[k] + r[k] - t[k]);
      const float gn = 2.0f * (h[k] + r[k] - tn[k]);
      h[k] -= lr * (gp - gn);
      r[k] -= lr * (gp - gn);
      t[k] += lr * gp;
      tn[k] -= lr * gn;
    }
  }
}

class GnnHead : public sdea::nn::Module {
 public:
  GnnHead(int64_t d, Rng* rng) {
    const float lim = std::sqrt(6.0f / static_cast<float>(2 * d));
    w_ = AddParameter("kecg.w", Tensor::RandomUniform({d, d}, lim, rng));
  }
  Parameter* w_;
};

}  // namespace

Status Kecg::Fit(const AlignInput& input) {
  if (input.kg1 == nullptr || input.kg2 == nullptr ||
      input.seeds == nullptr) {
    return Status::InvalidArgument("Kecg: null input");
  }
  const int64_t n1 = input.kg1->num_entities();
  const int64_t n2 = input.kg2->num_entities();
  const int64_t total = n1 + n2;
  const int64_t relations = std::max<int64_t>(
      1, input.kg1->num_relations() + input.kg2->num_relations());
  const int64_t d = config_.dim;

  // Union triples with offset KG2 ids (no seed merging: KECG ties the
  // graphs through the cross-graph loss instead).
  std::vector<kg::RelationalTriple> triples =
      input.kg1->relational_triples();
  const int32_t r1 = static_cast<int32_t>(input.kg1->num_relations());
  for (const kg::RelationalTriple& t : input.kg2->relational_triples()) {
    triples.push_back(kg::RelationalTriple{
        static_cast<kg::EntityId>(t.head + n1),
        static_cast<kg::RelationId>(t.relation + r1),
        static_cast<kg::EntityId>(t.tail + n1)});
  }
  const CsrMatrix adjacency = UnionAdjacency(*input.kg1, *input.kg2);

  Rng rng(config_.seed);
  const float s = 1.0f / std::sqrt(static_cast<float>(d));
  Parameter entity_table("kecg.entity",
                         Tensor::RandomNormal({total, d}, s, &rng));
  Tensor relation_table =
      Tensor::RandomNormal({relations, d}, s, &rng);
  GnnHead head(d, &rng);
  std::vector<Parameter*> gnn_params = head.Parameters();
  gnn_params.push_back(&entity_table);
  sdea::nn::Adam optimizer(gnn_params, config_.gnn_lr);

  for (int64_t round = 0; round < config_.rounds; ++round) {
    // Knowledge-embedding module: TransE epochs on the shared table.
    for (int64_t e = 0; e < config_.transe.epochs; ++e) {
      TransEEpoch(&entity_table.value, &relation_table, triples,
                  config_.transe.lr, config_.transe.margin, &rng);
    }
    tmath::L2NormalizeRowsInPlace(&entity_table.value);
    // Cross-graph module: GCN margin steps on the seed pairs.
    for (int64_t step = 0; step < config_.gnn_steps_per_round; ++step) {
      Graph g;
      NodeId ent = g.Param(&entity_table);
      NodeId hidden = g.L2NormalizeRows(
          g.Matmul(g.SparseMatmul(&adjacency, ent), g.Param(head.w_)));
      std::vector<int64_t> a_ids, p_ids, q_ids;
      for (const auto& [a, b] : input.seeds->train) {
        for (int64_t k = 0; k < config_.negatives; ++k) {
          a_ids.push_back(a);
          p_ids.push_back(n1 + b);
          q_ids.push_back(n1 + static_cast<int64_t>(rng.UniformInt(
                                   static_cast<uint64_t>(n2))));
        }
      }
      NodeId loss = sdea::nn::MarginRankingLoss(
          &g, g.Gather(hidden, a_ids), g.Gather(hidden, p_ids),
          g.Gather(hidden, q_ids), config_.margin);
      optimizer.ZeroGrad();
      g.Backward(loss);
      optimizer.Step();
    }
  }

  // Final embedding: one GNN pass over the co-trained table.
  Graph g;
  const Tensor all = g.Value(g.L2NormalizeRows(
      g.Matmul(g.SparseMatmul(&adjacency, g.Param(&entity_table)),
               g.Param(head.w_))));
  emb1_ = Tensor({n1, d});
  emb2_ = Tensor({n2, d});
  std::copy(all.data(), all.data() + n1 * d, emb1_.data());
  std::copy(all.data() + n1 * d, all.data() + total * d, emb2_.data());
  return Status::Ok();
}

}  // namespace sdea::baselines
