#ifndef SDEA_TRAIN_LOSS_H_
#define SDEA_TRAIN_LOSS_H_

#include <functional>

#include "tensor/graph.h"

namespace sdea::train {

/// Maps per-row positive/negative distance columns ([B,1] each, smaller =
/// more similar) to a scalar loss node. This is the pluggable core shared
/// by every contrastive trainer in the repo: the TransE family scores
/// ||h+psi-t||^2 pairs, the SDEA modules score embedding-row L2 pairs, and
/// both feed the same distance-pair reduction.
using PairwiseLossFn =
    std::function<NodeId(Graph* g, NodeId d_pos, NodeId d_neg)>;

/// The paper's margin hinge (Eq. 18 core): mean(max(0, d_pos - d_neg + m)).
/// Matches nn::MarginRankingLoss when fed row L2 distances.
PairwiseLossFn MarginHingeLoss(float margin);

/// Squared margin hinge: mean(max(0, d_pos - d_neg + m)^2). Smoother near
/// the boundary; an ablation alternative, not used by the paper's models.
PairwiseLossFn SquaredMarginHingeLoss(float margin);

/// Sigmoid surrogate of the 0/1 ranking loss:
/// mean(sigmoid(d_pos - d_neg + m)). Bounded, so single hard negatives
/// cannot dominate a batch.
PairwiseLossFn SigmoidRankingLoss(float margin);

/// Maps row-batched anchor/positive/negative embedding matrices ([B,d]
/// each) to a scalar loss.
using TripletLossFn = std::function<NodeId(Graph* g, NodeId anchors,
                                           NodeId positives,
                                           NodeId negatives)>;

/// Row squared-L2 distances fed into `pairwise` — with MarginHingeLoss
/// this is exactly nn::MarginRankingLoss, the loss of Algorithms 2 and 3.
TripletLossFn TripletDistanceLoss(PairwiseLossFn pairwise);

}  // namespace sdea::train

#endif  // SDEA_TRAIN_LOSS_H_
