#include "train/trainer.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "base/check.h"
#include "base/logging.h"
#include "nn/serialization.h"
#include "obs/obs.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace sdea::train {
namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Registry twins of the per-run TrainStats, so dashboards and the
// Prometheus exporter see training progress across every Trainer in the
// process. Handles resolve once; recording is gated on obs::Enabled() so
// the disabled hot path costs one relaxed load per batch.
struct TrainerMetrics {
  obs::Counter* epochs;
  obs::Counter* batches;
  obs::Counter* examples;
  obs::HistogramCell* batch_loss;
  obs::HistogramCell* batch_ms;

  static const TrainerMetrics& Get() {
    static const TrainerMetrics m = [] {
      obs::MetricsRegistry* reg = obs::MetricsRegistry::Default();
      TrainerMetrics out;
      out.epochs = reg->GetCounter("train.epochs");
      out.batches = reg->GetCounter("train.batches");
      out.examples = reg->GetCounter("train.examples");
      out.batch_loss = reg->GetHistogram(
          "train.batch_loss", MakeLossHistogram().upper_bounds());
      out.batch_ms = reg->GetHistogram(
          "train.batch_ms", MakeBatchLatencyHistogram().upper_bounds());
      return out;
    }();
    return m;
  }
};

}  // namespace

Trainer::Trainer(TrainTask* task, TrainerOptions options)
    : task_(task), options_(std::move(options)) {}

Status Trainer::Validate() const {
  if (task_ == nullptr) return Status::InvalidArgument("task must not be null");
  if (task_->num_examples() == 0) {
    return Status::InvalidArgument("task has no training examples");
  }
  if (options_.batch_size <= 0) {
    return Status::InvalidArgument("batch_size must be > 0");
  }
  if (options_.max_epochs < 0) {
    return Status::InvalidArgument("max_epochs must be >= 0");
  }
  if (options_.patience > 0 && !options_.evaluate) {
    return Status::InvalidArgument("patience requires evaluate");
  }
  if (options_.restore_best && !options_.evaluate) {
    return Status::InvalidArgument("restore_best requires evaluate");
  }
  if (options_.restore_best && task_->module() == nullptr) {
    return Status::FailedPrecondition(
        "restore_best requires a task with a module()");
  }
  if (options_.checkpoint != nullptr) {
    if (task_->module() == nullptr) {
      return Status::FailedPrecondition(
          "checkpointing requires a task with a module()");
    }
    if (options_.checkpoint_every <= 0) {
      return Status::InvalidArgument("checkpoint_every must be > 0");
    }
  }
  if (options_.lr_schedule != nullptr && task_->optimizer() == nullptr) {
    return Status::FailedPrecondition(
        "lr_schedule requires a task with an optimizer()");
  }
  if (!options_.warm_start_params.empty() && task_->module() == nullptr) {
    return Status::FailedPrecondition(
        "warm_start_params requires a task with a module()");
  }
  return Status::Ok();
}

TrainerCheckpoint Trainer::MakeCheckpoint(int64_t next_epoch,
                                          bool finished) const {
  TrainerCheckpoint ckpt;
  ckpt.next_epoch = next_epoch;
  ckpt.epochs_run = epochs_run_;
  ckpt.best_metric = best_metric_;
  ckpt.since_best = since_best_;
  ckpt.metric_history = metric_history_;
  ckpt.order = order_;
  ckpt.rng = task_->rng()->SaveState();
  ckpt.params = nn::SerializeParameters(task_->module());
  ckpt.best_params = best_params_;
  if (task_->optimizer() != nullptr) {
    task_->optimizer()->SerializeState(&ckpt.optimizer);
  }
  ckpt.finished = finished;
  return ckpt;
}

Status Trainer::ApplyCheckpoint(const TrainerCheckpoint& ckpt) {
  if (ckpt.order.size() != task_->num_examples()) {
    return Status::InvalidArgument(
        "checkpoint order size does not match the task's example count");
  }
  // Validate-before-mutate: the parameter blobs are checked against the
  // module before anything is touched, so a stale checkpoint from a
  // different model shape leaves the task unmodified.
  SDEA_RETURN_IF_ERROR(
      nn::DeserializeParameters(task_->module(), ckpt.params));
  if (task_->optimizer() != nullptr && !ckpt.optimizer.empty()) {
    size_t pos = 0;
    SDEA_RETURN_IF_ERROR(
        task_->optimizer()->DeserializeState(ckpt.optimizer, &pos));
  }
  task_->rng()->LoadState(ckpt.rng);
  order_ = ckpt.order;
  epochs_run_ = ckpt.epochs_run;
  best_metric_ = ckpt.best_metric;
  since_best_ = ckpt.since_best;
  metric_history_ = ckpt.metric_history;
  best_params_ = ckpt.best_params;
  return Status::Ok();
}

Result<TrainStats> Trainer::Run() {
  SDEA_RETURN_IF_ERROR(Validate());
  const auto run_t0 = std::chrono::steady_clock::now();

  const size_t n = task_->num_examples();
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), uint64_t{0});
  epochs_run_ = 0;
  best_metric_ = 0.0;
  since_best_ = 0;
  metric_history_.clear();
  best_params_.clear();

  TrainStats stats;
  int64_t start_epoch = 0;

  if (options_.checkpoint != nullptr && options_.resume &&
      options_.checkpoint->Exists()) {
    SDEA_ASSIGN_OR_RETURN(TrainerCheckpoint ckpt,
                          options_.checkpoint->Load());
    SDEA_RETURN_IF_ERROR(ApplyCheckpoint(ckpt));
    if (ckpt.finished) {
      // The saved params already reflect any best-restore; nothing to run.
      stats.total_wall_ms = MsSince(run_t0);
      return stats;
    }
    start_epoch = ckpt.next_epoch;
  } else {
    if (!options_.warm_start_params.empty()) {
      // Warm start replaces the task's fresh init. DeserializeParameters
      // validates names/shapes before writing, so a mismatched blob leaves
      // the task untouched.
      SDEA_RETURN_IF_ERROR(nn::DeserializeParameters(
          task_->module(), options_.warm_start_params));
    }
    if (options_.restore_best) {
      // Legacy loops snapshot the initial parameters before the first epoch,
      // so a zero-epoch run restores exactly what it started with.
      best_params_ = nn::SerializeParameters(task_->module());
    }
  }

  const auto batch = static_cast<size_t>(options_.batch_size);
  bool stop = false;
  int64_t epoch = start_epoch;
  for (; epoch < options_.max_epochs && !stop; ++epoch) {
    obs::TraceSpan epoch_span("train/epoch");
    const auto epoch_t0 = std::chrono::steady_clock::now();
    EpochStats es;
    es.epoch = epoch;

    task_->OnEpochBegin(epoch);
    if (options_.lr_schedule != nullptr) {
      task_->optimizer()->set_lr(options_.lr_schedule->LearningRate(epoch));
    }
    if (options_.shuffle == TrainerOptions::Shuffle::kFreshPerEpoch) {
      std::iota(order_.begin(), order_.end(), uint64_t{0});
    }
    if (options_.shuffle != TrainerOptions::Shuffle::kNone) {
      task_->rng()->Shuffle(&order_);
    }

    for (size_t start = 0; start < n; start += batch) {
      const size_t len = std::min(batch, n - start);
      const auto batch_t0 = std::chrono::steady_clock::now();
      const float loss = task_->TrainBatch(order_.data() + start, len);
      const double ms = MsSince(batch_t0);
      stats.batch_ms.Record(ms);
      stats.batch_loss.Record(loss);
      if (obs::Enabled()) {
        const TrainerMetrics& m = TrainerMetrics::Get();
        m.batch_ms->Record(ms);
        m.batch_loss->Record(loss);
        m.batches->Increment();
        m.examples->Increment(len);
      }
      es.loss_sum += loss;
      ++es.num_batches;
      es.num_examples += static_cast<int64_t>(len);
    }
    task_->OnEpochEnd(epoch);
    if (obs::Enabled()) TrainerMetrics::Get().epochs->Increment();

    if (options_.evaluate) {
      obs::TraceSpan eval_span("train/eval");
      const double metric = task_->EvalMetric();
      metric_history_.push_back(metric);
      ++epochs_run_;
      es.has_eval = true;
      es.eval_metric = metric;
      // Legacy early-stopping bookkeeping, bit for bit: the first evaluated
      // epoch always becomes the best; `patience` consecutive
      // non-improving epochs end the run.
      if (metric > best_metric_ || epochs_run_ == 1) {
        best_metric_ = metric;
        if (options_.restore_best) {
          best_params_ = nn::SerializeParameters(task_->module());
        }
        since_best_ = 0;
      } else if (options_.patience > 0 && ++since_best_ >= options_.patience) {
        stop = true;
      }
    }

    es.wall_ms = MsSince(epoch_t0);
    stats.epochs.push_back(es);
    if (options_.on_epoch && !options_.on_epoch(es)) stop = true;

    if (options_.checkpoint != nullptr && !stop &&
        epoch + 1 < options_.max_epochs &&
        (epoch + 1) % options_.checkpoint_every == 0) {
      obs::TraceSpan ckpt_span("train/checkpoint");
      // A failed save (full disk, dead mount) costs a resume point, not
      // the run: log it and keep training. The atomic writer guarantees
      // the previous checkpoint on disk is still complete.
      const Status saved =
          options_.checkpoint->Save(MakeCheckpoint(epoch + 1, false));
      if (!saved.ok()) {
        ++stats.checkpoint_failures;
        SDEA_LOG_WARNING("checkpoint save failed, training continues: " +
                         saved.ToString());
      }
    }
  }

  if (options_.restore_best && !best_params_.empty()) {
    SDEA_RETURN_IF_ERROR(
        nn::DeserializeParameters(task_->module(), best_params_));
  }
  if (options_.checkpoint != nullptr) {
    // Final save is marked finished and records the post-restore params, so
    // resuming a completed run is a pure state reload. Like the periodic
    // saves, a failure here must not discard the completed training run —
    // the trained parameters live in the task, not the checkpoint.
    const Status saved = options_.checkpoint->Save(MakeCheckpoint(
        /*next_epoch=*/epoch, /*finished=*/true));
    if (!saved.ok()) {
      ++stats.checkpoint_failures;
      SDEA_LOG_WARNING("final checkpoint save failed: " + saved.ToString());
    }
  }

  stats.total_wall_ms = MsSince(run_t0);
  return stats;
}

}  // namespace sdea::train
