#include "train/serve_bridge.h"

#include <utility>

#include "core/embedding_store.h"

namespace sdea::train {

Result<uint64_t> PublishEmbeddings(std::vector<std::string> names,
                                   Tensor embeddings,
                                   serve::SnapshotManager* manager,
                                   const PublishOptions& options) {
  if (manager == nullptr) {
    return Status::InvalidArgument("snapshot manager must not be null");
  }
  SDEA_ASSIGN_OR_RETURN(
      core::EmbeddingStore store,
      core::EmbeddingStore::Create(std::move(names), std::move(embeddings)));
  if (!options.artifact_path.empty()) {
    SDEA_RETURN_IF_ERROR(store.Save(options.artifact_path));
  }
  if (options.build_index) {
    store.BuildIndex(options.index_options);
  }
  return manager->Swap(std::move(store));
}

}  // namespace sdea::train
