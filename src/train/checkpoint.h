#ifndef SDEA_TRAIN_CHECKPOINT_H_
#define SDEA_TRAIN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"

namespace sdea::train {

/// Everything a Trainer needs to resume a run bitwise-identically:
/// progress counters, early-stopping bookkeeping, the (possibly cumulative)
/// example order, the task RNG state, and the serialized parameter /
/// best-parameter / optimizer blobs. Plain value type; the wire format is
/// an implementation detail of CheckpointManager.
struct TrainerCheckpoint {
  int64_t next_epoch = 0;   ///< First epoch the resumed run should execute.
  int64_t epochs_run = 0;   ///< Epochs completed so far (for best-init).
  double best_metric = 0.0;
  int64_t since_best = 0;
  std::vector<double> metric_history;  ///< One dev metric per eval'd epoch.
  std::vector<uint64_t> order;         ///< Example permutation at save time.
  RngState rng;
  std::string params;       ///< nn::SerializeParameters blob.
  std::string best_params;  ///< Snapshot at the best dev metric (may be "").
  std::string optimizer;    ///< Optimizer::SerializeState blob.
  bool finished = false;    ///< Run completed (early stop or max_epochs).
};

/// Saves/loads TrainerCheckpoints as one self-contained file. Save writes
/// through base::WriteStringToFileAtomic (temp + rename), so the file on
/// disk is always a complete checkpoint — either the previous one or the
/// new one, never a torn mix — and a kill at any point is recoverable.
class CheckpointManager {
 public:
  explicit CheckpointManager(std::string path);

  const std::string& path() const { return path_; }

  /// True when a checkpoint file exists at path().
  bool Exists() const;

  Status Save(const TrainerCheckpoint& ckpt) const;

  Result<TrainerCheckpoint> Load() const;

  /// Serialize/parse without touching the filesystem (used by Save/Load and
  /// by tests that corrupt blobs deliberately).
  static std::string Encode(const TrainerCheckpoint& ckpt);
  static Result<TrainerCheckpoint> Decode(const std::string& blob);

 private:
  std::string path_;
};

}  // namespace sdea::train

#endif  // SDEA_TRAIN_CHECKPOINT_H_
