#include "train/schedule.h"

#include "base/check.h"

namespace sdea::train {

StepDecayLr::StepDecayLr(float base, float factor, int64_t every)
    : base_(base), factor_(factor), every_(every) {
  SDEA_CHECK_GT(every, 0);
}

float StepDecayLr::LearningRate(int64_t epoch) const {
  float lr = base_;
  for (int64_t steps = epoch / every_; steps > 0; --steps) lr *= factor_;
  return lr;
}

WarmupLr::WarmupLr(float base, int64_t warmup) : base_(base), warmup_(warmup) {
  SDEA_CHECK_GT(warmup, 0);
}

float WarmupLr::LearningRate(int64_t epoch) const {
  if (epoch >= warmup_) return base_;
  return base_ * static_cast<float>(epoch + 1) /
         static_cast<float>(warmup_);
}

}  // namespace sdea::train
