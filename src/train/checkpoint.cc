#include "train/checkpoint.h"

#include "base/fileio.h"
#include "base/strings.h"
#include "nn/serialization.h"

namespace sdea::train {
namespace {

constexpr char kMagic[] = "SDEATRN1";
constexpr size_t kMagicLen = 8;

Status Truncated() {
  return Status::InvalidArgument("trainer checkpoint truncated");
}

}  // namespace

CheckpointManager::CheckpointManager(std::string path)
    : path_(std::move(path)) {}

bool CheckpointManager::Exists() const { return FileExists(path_); }

std::string CheckpointManager::Encode(const TrainerCheckpoint& ckpt) {
  std::string out;
  out.append(kMagic, kMagicLen);
  nn::AppendU64(&out, static_cast<uint64_t>(ckpt.next_epoch));
  nn::AppendU64(&out, static_cast<uint64_t>(ckpt.epochs_run));
  nn::AppendF64(&out, ckpt.best_metric);
  nn::AppendU64(&out, static_cast<uint64_t>(ckpt.since_best));
  nn::AppendU64(&out, ckpt.metric_history.size());
  for (double m : ckpt.metric_history) nn::AppendF64(&out, m);
  nn::AppendU64(&out, ckpt.order.size());
  for (uint64_t o : ckpt.order) nn::AppendU64(&out, o);
  for (uint64_t s : ckpt.rng.s) nn::AppendU64(&out, s);
  nn::AppendU64(&out, ckpt.rng.has_cached_normal ? 1 : 0);
  nn::AppendF64(&out, ckpt.rng.cached_normal);
  nn::AppendBytes(&out, ckpt.params);
  nn::AppendBytes(&out, ckpt.best_params);
  nn::AppendBytes(&out, ckpt.optimizer);
  nn::AppendU64(&out, ckpt.finished ? 1 : 0);
  return out;
}

Result<TrainerCheckpoint> CheckpointManager::Decode(const std::string& blob) {
  if (blob.size() < kMagicLen || blob.compare(0, kMagicLen, kMagic) != 0) {
    return Status::InvalidArgument(
        "not a trainer checkpoint (bad magic header)");
  }
  size_t pos = kMagicLen;
  TrainerCheckpoint ckpt;
  uint64_t u = 0;
  if (!nn::ReadU64(blob, &pos, &u)) return Truncated();
  ckpt.next_epoch = static_cast<int64_t>(u);
  if (!nn::ReadU64(blob, &pos, &u)) return Truncated();
  ckpt.epochs_run = static_cast<int64_t>(u);
  if (!nn::ReadF64(blob, &pos, &ckpt.best_metric)) return Truncated();
  if (!nn::ReadU64(blob, &pos, &u)) return Truncated();
  ckpt.since_best = static_cast<int64_t>(u);

  uint64_t n = 0;
  if (!nn::ReadU64(blob, &pos, &n)) return Truncated();
  // Each element costs 8 bytes, so bound the counts against the bytes
  // actually left before resizing — a corrupt all-ones count must fail in
  // O(1), not allocate, and not spin billions of failed reads.
  if (n > (blob.size() - pos) / 8) return Truncated();
  ckpt.metric_history.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!nn::ReadF64(blob, &pos, &ckpt.metric_history[i])) return Truncated();
  }
  if (!nn::ReadU64(blob, &pos, &n)) return Truncated();
  if (n > (blob.size() - pos) / 8) return Truncated();
  ckpt.order.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!nn::ReadU64(blob, &pos, &ckpt.order[i])) return Truncated();
  }
  for (uint64_t& s : ckpt.rng.s) {
    if (!nn::ReadU64(blob, &pos, &s)) return Truncated();
  }
  if (!nn::ReadU64(blob, &pos, &u)) return Truncated();
  ckpt.rng.has_cached_normal = (u != 0);
  if (!nn::ReadF64(blob, &pos, &ckpt.rng.cached_normal)) return Truncated();
  if (!nn::ReadBytes(blob, &pos, &ckpt.params)) return Truncated();
  if (!nn::ReadBytes(blob, &pos, &ckpt.best_params)) return Truncated();
  if (!nn::ReadBytes(blob, &pos, &ckpt.optimizer)) return Truncated();
  if (!nn::ReadU64(blob, &pos, &u)) return Truncated();
  ckpt.finished = (u != 0);
  if (pos != blob.size()) {
    return Status::InvalidArgument(StrFormat(
        "trainer checkpoint has %zu trailing bytes", blob.size() - pos));
  }
  return ckpt;
}

Status CheckpointManager::Save(const TrainerCheckpoint& ckpt) const {
  return WriteStringToFileAtomic(path_, Encode(ckpt));
}

Result<TrainerCheckpoint> CheckpointManager::Load() const {
  SDEA_ASSIGN_OR_RETURN(std::string blob, ReadFileToString(path_));
  auto decoded = Decode(blob);
  if (!decoded.ok()) {
    return Status::InvalidArgument(decoded.status().message() +
                                   " (checkpoint: " + path_ + ")");
  }
  return decoded;
}

}  // namespace sdea::train
