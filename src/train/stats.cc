#include "train/stats.h"

namespace sdea::train {

Histogram MakeBatchLatencyHistogram() {
  return Histogram::Exponential(0.01, 4.0, 13);  // 0.01ms .. ~167s
}

Histogram MakeLossHistogram() {
  return Histogram::Exponential(1e-4, 4.0, 14);  // 1e-4 .. ~6.7e3
}

}  // namespace sdea::train
