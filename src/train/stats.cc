#include "train/stats.h"

#include <algorithm>

#include "base/check.h"
#include "base/strings.h"

namespace sdea::train {
namespace {

std::vector<double> ExponentialBounds(double first, double factor,
                                      int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double b = first;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  SDEA_CHECK(!upper_bounds_.empty());
  for (size_t i = 1; i < upper_bounds_.size(); ++i) {
    SDEA_CHECK_LT(upper_bounds_[i - 1], upper_bounds_[i]);
  }
}

Histogram Histogram::ForLatencyMs() {
  return Histogram(ExponentialBounds(0.01, 4.0, 13));  // 0.01ms .. ~167s
}

Histogram Histogram::ForLoss() {
  return Histogram(ExponentialBounds(1e-4, 4.0, 14));  // 1e-4 .. ~6.7e3
}

void Histogram::Record(double v) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  ++counts_[static_cast<size_t>(it - upper_bounds_.begin())];
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  int64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (static_cast<double>(seen) >= target && counts_[i] > 0) {
      return i < upper_bounds_.size() ? upper_bounds_[i] : max_;
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  return StrFormat(
      "count=%lld mean=%.4g min=%.4g max=%.4g p50<=%.4g p99<=%.4g",
      static_cast<long long>(count_), mean(), min(), max(), Quantile(0.5),
      Quantile(0.99));
}

}  // namespace sdea::train
