#ifndef SDEA_TRAIN_SERVE_BRIDGE_H_
#define SDEA_TRAIN_SERVE_BRIDGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/ann_index.h"
#include "serve/snapshot.h"
#include "tensor/tensor.h"

namespace sdea::train {

struct PublishOptions {
  /// When non-empty, the store is also saved to this path (atomically) so a
  /// separately running server can LoadAndSwap the same artifact.
  std::string artifact_path;

  /// Build the IVF index before publishing, off the serving path.
  bool build_index = true;
  core::IvfOptions index_options;
};

/// The train→serve hand-off: wraps freshly trained embeddings into an
/// EmbeddingStore, optionally persists it and builds its ANN index, then
/// hot-swaps it into `manager` with zero downtime for in-flight queries.
/// Returns the published snapshot version. Typically called from a
/// Trainer's on_epoch callback or once after Run().
Result<uint64_t> PublishEmbeddings(std::vector<std::string> names,
                                   Tensor embeddings,
                                   serve::SnapshotManager* manager,
                                   const PublishOptions& options = {});

}  // namespace sdea::train

#endif  // SDEA_TRAIN_SERVE_BRIDGE_H_
