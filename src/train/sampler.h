#ifndef SDEA_TRAIN_SAMPLER_H_
#define SDEA_TRAIN_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"

namespace sdea::train {

/// Uniform-corruption negative sampling for translational-embedding
/// training, extracted from the formerly copy-pasted loops in the TransE
/// and TransEdge baselines. The sampler owns the merged-slot resolution of
/// seed-sharing joint spaces (raw entity id -> shared parameter row; an
/// empty map is the identity) and draws from the caller's Rng so the
/// sampling stream composes deterministically with shuffling and model
/// updates. Call sequences are kept identical to the historical loops —
/// one Bernoulli then one UniformInt for a head-or-tail corruption, one
/// UniformInt for a plain entity draw — so the migrated trainers are
/// bitwise-reproducible against their pre-refactor selves.
class NegativeSampler {
 public:
  /// Identity resolution over `num_entities` raw ids.
  explicit NegativeSampler(int64_t num_entities);

  /// `merge[raw]` = shared slot of raw id (seed-sharing). `merge` must be
  /// empty (identity) or have exactly `num_entities` entries.
  NegativeSampler(int64_t num_entities, std::vector<int64_t> merge);

  /// As above for the int32 merge vectors used by the TransE baseline.
  NegativeSampler(int64_t num_entities, const std::vector<int32_t>& merge);

  /// Resolves a raw id through the merge map.
  int64_t Resolve(int64_t raw) const {
    return merge_.empty() ? raw : merge_[static_cast<size_t>(raw)];
  }

  /// A (head, tail) pair after corruption; both ids are resolved slots.
  struct CorruptedPair {
    int64_t head;
    int64_t tail;
  };

  /// Bordes-style uniform corruption: picks head or tail with probability
  /// 1/2, replaces it with a uniformly drawn resolved entity, and keeps
  /// the other side. `head`/`tail` are resolved slots. Note the draw may
  /// resolve onto the original slot (the historical loops treat that as a
  /// no-op step); callers decide whether to skip such samples.
  CorruptedPair CorruptHeadOrTail(int64_t head, int64_t tail, Rng* rng) const;

  /// One uniformly drawn resolved entity (TransEdge's tail corruption).
  int64_t SampleEntity(Rng* rng) const;

  int64_t num_entities() const { return num_entities_; }

 private:
  int64_t num_entities_;
  std::vector<int64_t> merge_;
};

}  // namespace sdea::train

#endif  // SDEA_TRAIN_SAMPLER_H_
