#ifndef SDEA_TRAIN_SCHEDULE_H_
#define SDEA_TRAIN_SCHEDULE_H_

#include <cstdint>

namespace sdea::train {

/// Learning-rate schedule strategy. The Trainer queries the schedule at
/// the start of every epoch and pushes the result into the task's
/// optimizer, so the rate is a pure function of the epoch index — which is
/// what makes checkpoint/resume trivially reproduce it (no extra state to
/// persist). A null schedule leaves the optimizer's rate untouched, which
/// is how the migrated legacy loops keep their exact historical numerics.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;

  /// The learning rate to apply for 0-based `epoch`.
  virtual float LearningRate(int64_t epoch) const = 0;
};

/// The same rate every epoch.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float LearningRate(int64_t) const override { return lr_; }

 private:
  float lr_;
};

/// Multiplies the base rate by `factor` every `every` epochs:
/// lr(e) = base * factor^(e / every).
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(float base, float factor, int64_t every);
  float LearningRate(int64_t epoch) const override;

 private:
  float base_;
  float factor_;
  int64_t every_;
};

/// Linear warmup over `warmup` epochs from base/warmup up to base, then
/// constant — the transformer-style ramp without the decay tail.
class WarmupLr : public LrSchedule {
 public:
  WarmupLr(float base, int64_t warmup);
  float LearningRate(int64_t epoch) const override;

 private:
  float base_;
  int64_t warmup_;
};

}  // namespace sdea::train

#endif  // SDEA_TRAIN_SCHEDULE_H_
