#include "train/sampler.h"

#include "base/check.h"

namespace sdea::train {

NegativeSampler::NegativeSampler(int64_t num_entities)
    : num_entities_(num_entities) {
  SDEA_CHECK_GT(num_entities, 0);
}

NegativeSampler::NegativeSampler(int64_t num_entities,
                                 std::vector<int64_t> merge)
    : num_entities_(num_entities), merge_(std::move(merge)) {
  SDEA_CHECK_GT(num_entities, 0);
  SDEA_CHECK(merge_.empty() ||
             merge_.size() == static_cast<size_t>(num_entities));
}

NegativeSampler::NegativeSampler(int64_t num_entities,
                                 const std::vector<int32_t>& merge)
    : num_entities_(num_entities) {
  SDEA_CHECK_GT(num_entities, 0);
  SDEA_CHECK(merge.empty() ||
             merge.size() == static_cast<size_t>(num_entities));
  merge_.reserve(merge.size());
  for (int32_t slot : merge) merge_.push_back(slot);
}

NegativeSampler::CorruptedPair NegativeSampler::CorruptHeadOrTail(
    int64_t head, int64_t tail, Rng* rng) const {
  CorruptedPair out{head, tail};
  if (rng->Bernoulli(0.5)) {
    out.head = SampleEntity(rng);
  } else {
    out.tail = SampleEntity(rng);
  }
  return out;
}

int64_t NegativeSampler::SampleEntity(Rng* rng) const {
  return Resolve(static_cast<int64_t>(
      rng->UniformInt(static_cast<uint64_t>(num_entities_))));
}

}  // namespace sdea::train
