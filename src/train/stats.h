#ifndef SDEA_TRAIN_STATS_H_
#define SDEA_TRAIN_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sdea::train {

/// A fixed-bucket histogram over doubles. Bucket `i` counts values v with
/// upper_bounds[i-1] < v <= upper_bounds[i]; one final unbounded bucket
/// catches the rest. Single-writer (the Trainer records from the driving
/// thread); snapshots are plain copies.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Exponential bounds suited to per-batch wall times in milliseconds
  /// (0.01 ms .. ~164 s, x4 steps).
  static Histogram ForLatencyMs();

  /// Exponential bounds suited to per-batch loss values (1e-4 .. ~6.5e3,
  /// x4 steps).
  static Histogram ForLoss();

  void Record(double v);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  /// Smallest bound b with P(v <= b) >= q, by linear scan of the buckets;
  /// the unbounded tail reports the observed max. `q` in [0, 1].
  double Quantile(double q) const;

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  const std::vector<int64_t>& bucket_counts() const { return counts_; }

  /// One-line summary: count/mean/min/max/p50/p99.
  std::string Summary() const;

 private:
  std::vector<double> upper_bounds_;
  std::vector<int64_t> counts_;  // upper_bounds_.size() + 1 buckets.
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Per-epoch progress record.
struct EpochStats {
  int64_t epoch = 0;        ///< 0-based epoch index.
  int64_t num_batches = 0;
  int64_t num_examples = 0;
  double loss_sum = 0.0;    ///< Sum of per-batch losses.
  double wall_ms = 0.0;     ///< Whole-epoch wall time (train + eval).
  bool has_eval = false;
  double eval_metric = 0.0;  ///< Dev metric (e.g. Hits@1) when has_eval.

  double mean_loss() const {
    return num_batches == 0 ? 0.0 : loss_sum / num_batches;
  }
};

/// Whole-run training statistics: the per-epoch trail plus run-wide loss
/// and batch-latency histograms.
struct TrainStats {
  std::vector<EpochStats> epochs;
  Histogram batch_loss = Histogram::ForLoss();
  Histogram batch_ms = Histogram::ForLatencyMs();
  double total_wall_ms = 0.0;
};

}  // namespace sdea::train

#endif  // SDEA_TRAIN_STATS_H_
