#ifndef SDEA_TRAIN_STATS_H_
#define SDEA_TRAIN_STATS_H_

#include <cstdint>
#include <vector>

#include "obs/histogram.h"

namespace sdea::train {

/// The training stats use the shared observability histogram; the old
/// train::Histogram bucket code was folded into obs::Histogram.
using Histogram = ::sdea::obs::Histogram;

/// Exponential bounds suited to per-batch wall times in milliseconds
/// (0.01 ms .. ~167 s, x4 steps).
Histogram MakeBatchLatencyHistogram();

/// Exponential bounds suited to per-batch loss values (1e-4 .. ~6.7e3,
/// x4 steps).
Histogram MakeLossHistogram();

/// Per-epoch progress record.
struct EpochStats {
  int64_t epoch = 0;        ///< 0-based epoch index.
  int64_t num_batches = 0;
  int64_t num_examples = 0;
  double loss_sum = 0.0;    ///< Sum of per-batch losses.
  double wall_ms = 0.0;     ///< Whole-epoch wall time (train + eval).
  bool has_eval = false;
  double eval_metric = 0.0;  ///< Dev metric (e.g. Hits@1) when has_eval.

  double mean_loss() const {
    return num_batches == 0 ? 0.0 : loss_sum / num_batches;
  }
};

/// Whole-run training statistics: the per-epoch trail plus run-wide loss
/// and batch-latency histograms.
struct TrainStats {
  std::vector<EpochStats> epochs;
  Histogram batch_loss = MakeLossHistogram();
  Histogram batch_ms = MakeBatchLatencyHistogram();
  double total_wall_ms = 0.0;
  /// Checkpoint saves that failed (and were logged + skipped). Training
  /// continues through save failures — losing a checkpoint is recoverable,
  /// aborting a long run is not.
  int64_t checkpoint_failures = 0;
};

}  // namespace sdea::train

#endif  // SDEA_TRAIN_STATS_H_
