#include "train/loss.h"

#include "nn/loss.h"

namespace sdea::train {

PairwiseLossFn MarginHingeLoss(float margin) {
  return [margin](Graph* g, NodeId d_pos, NodeId d_neg) {
    NodeId hinge = g->Relu(g->AddConst(g->Sub(d_pos, d_neg), margin));
    return g->MeanAll(hinge);
  };
}

PairwiseLossFn SquaredMarginHingeLoss(float margin) {
  return [margin](Graph* g, NodeId d_pos, NodeId d_neg) {
    NodeId hinge = g->Relu(g->AddConst(g->Sub(d_pos, d_neg), margin));
    return g->MeanAll(g->Mul(hinge, hinge));
  };
}

PairwiseLossFn SigmoidRankingLoss(float margin) {
  return [margin](Graph* g, NodeId d_pos, NodeId d_neg) {
    return g->MeanAll(
        g->Sigmoid(g->AddConst(g->Sub(d_pos, d_neg), margin)));
  };
}

TripletLossFn TripletDistanceLoss(PairwiseLossFn pairwise) {
  return [pairwise = std::move(pairwise)](Graph* g, NodeId anchors,
                                          NodeId positives,
                                          NodeId negatives) {
    NodeId d_pos = nn::RowSquaredL2Distance(g, anchors, positives);
    NodeId d_neg = nn::RowSquaredL2Distance(g, anchors, negatives);
    return pairwise(g, d_pos, d_neg);
  };
}

}  // namespace sdea::train
