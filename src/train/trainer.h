#ifndef SDEA_TRAIN_TRAINER_H_
#define SDEA_TRAIN_TRAINER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "train/checkpoint.h"
#include "train/schedule.h"
#include "train/stats.h"

namespace sdea::train {

/// A model-specific training task the Trainer can drive. The task owns its
/// model, optimizer, data, and RNG; the Trainer owns the loop: epoch order,
/// shuffling, batching, evaluation cadence, early stopping, stats, and
/// checkpointing.
///
/// Determinism contract: TrainBatch must draw any randomness (e.g. negative
/// sampling) from rng(), the same generator the Trainer uses for shuffling.
/// That makes the whole RNG stream a pure function of (seed, epoch order),
/// which is what lets a checkpoint resume bitwise-identically and what the
/// golden tests against the legacy loops rely on.
class TrainTask {
 public:
  virtual ~TrainTask() = default;

  /// Number of training examples; indices in [0, num_examples()) are what
  /// TrainBatch receives.
  virtual size_t num_examples() const = 0;

  /// The task's RNG. The Trainer shuffles with it; TrainBatch samples
  /// negatives from it. Never null.
  virtual Rng* rng() = 0;

  /// Runs forward/backward/update on the examples named by `ids` (indices
  /// into the task's example array, already shuffled by the Trainer).
  /// Returns the batch loss (0 if the task has no meaningful scalar loss).
  virtual float TrainBatch(const uint64_t* ids, size_t n) = 0;

  /// Hooks around each epoch (e.g. renormalize embeddings after updates).
  virtual void OnEpochBegin(int64_t epoch) { (void)epoch; }
  virtual void OnEpochEnd(int64_t epoch) { (void)epoch; }

  /// Dev metric, higher is better (e.g. validation Hits@1). Called once per
  /// epoch when TrainerOptions::evaluate is set.
  virtual double EvalMetric() { return 0.0; }

  /// The trainable module, for checkpointing and best-params restore.
  /// May be null for tasks with hand-rolled parameters (then checkpointing
  /// and restore_best are unavailable).
  virtual nn::Module* module() { return nullptr; }

  /// The optimizer, for LrSchedule and optimizer-state checkpointing. May
  /// be null.
  virtual nn::Optimizer* optimizer() { return nullptr; }
};

struct TrainerOptions {
  int64_t max_epochs = 1;
  int64_t batch_size = 1;

  /// How the example order evolves across epochs. kFreshPerEpoch resets to
  /// identity before each shuffle (TransE's loop); kCumulative keeps
  /// shuffling the previous order (TransEdge and the SDEA modules — their
  /// legacy loops shuffled the data vector in place, which composes
  /// permutations the same way).
  enum class Shuffle { kNone, kFreshPerEpoch, kCumulative };
  Shuffle shuffle = Shuffle::kFreshPerEpoch;

  /// Evaluate task->EvalMetric() after every epoch and track the best.
  bool evaluate = false;

  /// With evaluate: epochs without improvement before stopping, exactly the
  /// legacy bookkeeping (first evaluated epoch always becomes the best;
  /// the run stops once `patience` consecutive epochs fail to improve).
  /// <= 0 disables early stopping while still tracking the best metric.
  int64_t patience = 0;

  /// With evaluate: restore the module parameters from the best evaluated
  /// epoch after the loop. Requires task->module().
  bool restore_best = false;

  /// Per-epoch learning rate (applied to task->optimizer() before each
  /// epoch). Borrowed; may be null for a fixed lr.
  const LrSchedule* lr_schedule = nullptr;

  /// Periodic atomic checkpointing. Borrowed; null disables. Requires
  /// task->module().
  CheckpointManager* checkpoint = nullptr;
  int64_t checkpoint_every = 1;  ///< Save every N epochs (and at the end).

  /// Resume from checkpoint->path() when it exists. A checkpoint marked
  /// finished restores the final state and returns without training.
  bool resume = true;

  /// Warm start: a serialized parameter blob (nn::SerializeParameters)
  /// loaded into task->module() before the first epoch, replacing the
  /// task's fresh initialization. This is the incremental-alignment entry
  /// point — re-embedding resumes from the current embeddings instead of
  /// retraining from scratch. Ignored when a checkpoint resume applies
  /// (the checkpoint's params already embed any warm start). Requires
  /// task->module(); shape/name mismatches fail with InvalidArgument
  /// before anything is mutated.
  std::string warm_start_params;

  /// Called after each epoch (post-eval). Return false to stop training —
  /// the hook for progress logging, external snapshot publishing, or
  /// custom stopping rules.
  std::function<bool(const EpochStats&)> on_epoch;
};

/// The unified minibatch training driver. One Run() call replaces the
/// hand-rolled epoch loops that used to live in each baseline and SDEA
/// module: deterministic shuffled batching, per-epoch eval with legacy
/// early-stopping semantics, best-params restore, atomic checkpoint/resume
/// (bitwise-identical continuation), and loss/latency stats.
class Trainer {
 public:
  Trainer(TrainTask* task, TrainerOptions options);

  /// Runs the loop to completion (max_epochs, early stop, or callback
  /// stop). Returns accumulated stats, or InvalidArgument for inconsistent
  /// options / FailedPrecondition for option-task mismatches.
  Result<TrainStats> Run();

  /// Evaluation bookkeeping after Run(). Unlike the returned TrainStats,
  /// these span the *whole* run including epochs executed before a
  /// checkpoint resume.
  int64_t epochs_run() const { return epochs_run_; }
  double best_metric() const { return best_metric_; }
  const std::vector<double>& metric_history() const {
    return metric_history_;
  }

 private:
  Status Validate() const;
  TrainerCheckpoint MakeCheckpoint(int64_t next_epoch, bool finished) const;
  Status ApplyCheckpoint(const TrainerCheckpoint& ckpt);

  TrainTask* task_;
  TrainerOptions options_;

  // Loop state (also what gets checkpointed).
  std::vector<uint64_t> order_;
  int64_t epochs_run_ = 0;
  double best_metric_ = 0.0;
  int64_t since_best_ = 0;
  std::vector<double> metric_history_;
  std::string best_params_;
};

}  // namespace sdea::train

#endif  // SDEA_TRAIN_TRAINER_H_
