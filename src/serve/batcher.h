#ifndef SDEA_SERVE_BATCHER_H_
#define SDEA_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/status.h"
#include "core/embedding_store.h"
#include "tensor/tensor.h"

namespace sdea::serve {

/// One scored candidate, as returned by EmbeddingStore.
using Neighbor = core::EmbeddingStore::Neighbor;

/// What a client gets back for one alignment query.
using AlignResult = Result<std::vector<Neighbor>>;

/// One in-flight alignment query. Either a text query (`is_text`, `text` =
/// the cache key, `embedding` filled in by the encode stage) or a direct
/// embedding query (`embedding` already populated).
struct ServeRequest {
  bool is_text = false;
  std::string text;
  Tensor embedding;
  int64_t k = 10;
  std::chrono::steady_clock::time_point enqueue_time{};
  std::promise<AlignResult> promise;
};

struct BatcherOptions {
  /// Largest batch handed to the batch function; values < 1 are treated
  /// as 1.
  int64_t max_batch_size = 32;
  /// How long the dispatcher holds an under-full batch open waiting for
  /// more requests, measured from the oldest queued request's arrival.
  /// Under saturation batches fill to max_batch_size immediately and this
  /// bound never applies; it caps added latency at low load.
  std::chrono::microseconds max_wait{200};
};

/// Coalesces concurrent single queries into batches. Any number of client
/// threads Submit() requests and block on (or poll) the returned future; a
/// single dispatcher thread pops requests in FIFO order, groups up to
/// `max_batch_size` of them, and hands the group to the batch function,
/// which must fulfill every request's promise exactly once.
///
/// Routing is deterministic by construction: a request's result travels
/// through its own promise, so batch composition (which is timing-
/// dependent) can never route an answer to the wrong caller. Whether the
/// *content* of an answer is independent of batch composition is the batch
/// function's contract (AlignmentServer's is: it answers each batch row
/// with the identical per-row computation a serial call would run).
class RequestBatcher {
 public:
  /// Receives the batch in FIFO submission order and must set every
  /// request's promise (value or error) before returning.
  using BatchFn = std::function<void(std::vector<ServeRequest>*)>;

  RequestBatcher(const BatcherOptions& options, BatchFn fn);

  /// Calls Shutdown(). As with any object, no other thread may still be
  /// calling into the batcher once destruction begins.
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Stops accepting work, drains every already-queued request through the
  /// batch function, and joins the dispatcher. Idempotent and safe to call
  /// from any thread; concurrent Submit calls are rejected gracefully.
  void Shutdown();

  /// Enqueues `request` and returns the future its answer will arrive on.
  /// A request racing Shutdown (or destruction-initiated shutdown) is not
  /// an error worth dying for: it resolves the returned future with
  /// FailedPrecondition instead of crashing the process.
  std::future<AlignResult> Submit(ServeRequest request);

  const BatcherOptions& options() const { return options_; }

 private:
  void DispatcherLoop();

  BatcherOptions options_;
  BatchFn fn_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<ServeRequest> queue_;  // Guarded by mu_.
  bool stop_ = false;               // Guarded by mu_.

  std::thread dispatcher_;  // Started last in the constructor.
};

}  // namespace sdea::serve

#endif  // SDEA_SERVE_BATCHER_H_
