#include "serve/batcher.h"

#include <algorithm>
#include <utility>

#include "base/check.h"

namespace sdea::serve {

RequestBatcher::RequestBatcher(const BatcherOptions& options, BatchFn fn)
    : options_(options), fn_(std::move(fn)) {
  SDEA_CHECK(fn_ != nullptr);
  options_.max_batch_size = std::max<int64_t>(options_.max_batch_size, 1);
  if (options_.max_wait.count() < 0) {
    options_.max_wait = std::chrono::microseconds(0);
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

RequestBatcher::~RequestBatcher() { Shutdown(); }

void RequestBatcher::Shutdown() {
  bool won_shutdown = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stop_) {
      stop_ = true;
      won_shutdown = true;
    }
  }
  if (won_shutdown) {
    cv_.notify_all();
    dispatcher_.join();
  }
}

std::future<AlignResult> RequestBatcher::Submit(ServeRequest request) {
  request.enqueue_time = std::chrono::steady_clock::now();
  std::future<AlignResult> future = request.promise.get_future();
  bool accepted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stop_) {
      queue_.push_back(std::move(request));
      accepted = true;
    }
  }
  if (accepted) {
    cv_.notify_one();
  } else {
    // A request racing shutdown gets a clean error on its own future —
    // never an abort, and never a promise left unfulfilled. Requests that
    // made it into the queue before the stop flag are still drained.
    request.promise.set_value(AlignResult(Status::FailedPrecondition(
        "request batcher is shut down; submission rejected")));
  }
  return future;
}

void RequestBatcher::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to drain.

    // Hold the batch open until it fills or the oldest request has waited
    // max_wait. New arrivals notify cv_, so a filling batch is noticed
    // immediately rather than at the deadline.
    const auto deadline = queue_.front().enqueue_time + options_.max_wait;
    while (!stop_ &&
           static_cast<int64_t>(queue_.size()) < options_.max_batch_size &&
           std::chrono::steady_clock::now() < deadline) {
      cv_.wait_until(lock, deadline);
    }

    const size_t take = std::min(
        queue_.size(), static_cast<size_t>(options_.max_batch_size));
    std::vector<ServeRequest> batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }

    lock.unlock();
    fn_(&batch);
    lock.lock();
  }
}

}  // namespace sdea::serve
