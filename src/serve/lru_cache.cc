#include "serve/lru_cache.h"

#include <algorithm>
#include <functional>

namespace sdea::serve {

ShardedLruCache::ShardedLruCache(const LruCacheOptions& options)
    : shards_(std::max<size_t>(options.num_shards, 1)) {
  if (options.capacity > 0) {
    // Round up so the summed shard capacities cover the request.
    shard_capacity_ =
        (options.capacity + shards_.size() - 1) / shards_.size();
  }
}

ShardedLruCache::Shard& ShardedLruCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool ShardedLruCache::Get(const std::string& key, Tensor* value) {
  if (shard_capacity_ == 0) return false;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
  *value = it->second->second;
  return true;
}

void ShardedLruCache::Put(const std::string& key, Tensor value) {
  if (shard_capacity_ == 0) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
    return;
  }
  shard.entries.emplace_front(key, std::move(value));
  shard.index[key] = shard.entries.begin();
  if (shard.entries.size() > shard_capacity_) {
    shard.index.erase(shard.entries.back().first);
    shard.entries.pop_back();
  }
}

size_t ShardedLruCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

void ShardedLruCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
    shard.index.clear();
  }
}

}  // namespace sdea::serve
