#include "serve/snapshot.h"

#include <utility>

namespace sdea::serve {

std::shared_ptr<const ServingSnapshot> SnapshotManager::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t SnapshotManager::Swap(core::EmbeddingStore store) {
  auto snap = std::make_shared<ServingSnapshot>();
  snap->store = std::move(store);
  std::lock_guard<std::mutex> lock(mu_);
  snap->version = ++last_version_;
  current_ = std::move(snap);
  return last_version_;
}

uint64_t SnapshotManager::SwapWithKg(core::EmbeddingStore store,
                                     kg::KgSnapshot kg) {
  auto snap = std::make_shared<ServingSnapshot>();
  snap->store = std::move(store);
  snap->kg = std::move(kg);
  std::lock_guard<std::mutex> lock(mu_);
  snap->version = ++last_version_;
  current_ = std::move(snap);
  return last_version_;
}

Result<uint64_t> SnapshotManager::LoadAndSwap(
    const std::string& path, bool build_index,
    const core::IvfOptions& index_options) {
  SDEA_ASSIGN_OR_RETURN(core::EmbeddingStore store,
                        core::EmbeddingStore::Load(path));
  if (build_index && !store.has_index()) store.BuildIndex(index_options);
  return Swap(std::move(store));
}

uint64_t SnapshotManager::SwapQuantized(store::QuantizedStore qstore) {
  auto snap = std::make_shared<ServingSnapshot>();
  snap->quantized =
      std::make_unique<const store::QuantizedStore>(std::move(qstore));
  std::lock_guard<std::mutex> lock(mu_);
  snap->version = ++last_version_;
  current_ = std::move(snap);
  return last_version_;
}

Result<uint64_t> SnapshotManager::OpenQuantizedAndSwap(
    const std::string& dir) {
  SDEA_ASSIGN_OR_RETURN(store::QuantizedStore qstore,
                        store::QuantizedStore::Open(dir));
  return SwapQuantized(std::move(qstore));
}

uint64_t SnapshotManager::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_version_;
}

}  // namespace sdea::serve
