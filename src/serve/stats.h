#ifndef SDEA_SERVE_STATS_H_
#define SDEA_SERVE_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace sdea::serve {

/// A point-in-time copy of the serving counters: plain values, safe to
/// store, diff between two instants, or print.
struct StatsSnapshot {
  /// Batch-size histogram bucket upper bounds: 1, 2, 4, 8, 16, 32, 64, inf.
  static constexpr int kBatchBuckets = 8;
  /// Latency bucket upper bounds in microseconds:
  /// 1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, inf.
  static constexpr int kLatencyBuckets = 10;
  /// Instrumented pipeline stages (indices into latency_hist).
  static constexpr int kNumStages = 3;

  uint64_t queries = 0;            ///< Successfully answered requests.
  uint64_t text_queries = 0;       ///< Of `queries`, text-keyed ones.
  uint64_t embedding_queries = 0;  ///< Of `queries`, embedding-keyed ones.
  uint64_t failed_queries = 0;     ///< Requests answered with an error.
  uint64_t batches = 0;            ///< Dispatched batches (incl. failed).
  uint64_t batched_queries = 0;    ///< Sum of batch sizes.
  uint64_t cache_hits = 0;         ///< Text lookups served from the cache.
  uint64_t cache_misses = 0;       ///< Text lookups that needed encoding.
  uint64_t encoded_texts = 0;      ///< Unique texts sent to the encoder.
  uint64_t snapshot_swaps = 0;     ///< Hot swaps since construction/reset.
  std::array<uint64_t, kBatchBuckets> batch_size_hist{};
  std::array<std::array<uint64_t, kLatencyBuckets>, kNumStages>
      latency_hist{};

  /// cache_hits / (cache_hits + cache_misses); 0 when no text lookups.
  double cache_hit_rate() const;

  /// batched_queries / batches; 0 when no batch has been dispatched.
  double mean_batch_size() const;

  /// Multi-line human-readable summary.
  std::string ToString() const;
};

/// Counters shared by all serving threads. Every mutation is a relaxed
/// atomic increment and Snapshot() is a sequence of relaxed loads, so the
/// stats path never takes a lock and never serializes request threads.
/// Snapshot() is therefore not a single consistent cut across counters —
/// concurrent increments may be half-visible — which is the usual (and
/// documented) monitoring-counter trade-off.
class ServeStats {
 public:
  enum class Stage { kEncode = 0, kSearch = 1, kTotal = 2 };

  ServeStats() = default;
  ServeStats(const ServeStats&) = delete;
  ServeStats& operator=(const ServeStats&) = delete;

  void RecordQuery(bool is_text);
  void RecordFailedQuery();
  void RecordBatch(uint64_t batch_size);
  void RecordCacheHit();
  void RecordCacheMiss();
  void RecordEncodedTexts(uint64_t count);
  void RecordSwap();
  void RecordLatency(Stage stage, int64_t micros);

  StatsSnapshot Snapshot() const;

  /// Zeroes every counter. Intended for benchmarks sweeping configurations
  /// on one server; not synchronized against concurrent recording.
  void Reset();

 private:
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> text_queries_{0};
  std::atomic<uint64_t> embedding_queries_{0};
  std::atomic<uint64_t> failed_queries_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_queries_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> encoded_texts_{0};
  std::atomic<uint64_t> snapshot_swaps_{0};
  std::array<std::atomic<uint64_t>, StatsSnapshot::kBatchBuckets>
      batch_size_hist_{};
  std::array<std::array<std::atomic<uint64_t>, StatsSnapshot::kLatencyBuckets>,
             StatsSnapshot::kNumStages>
      latency_hist_{};
};

}  // namespace sdea::serve

#endif  // SDEA_SERVE_STATS_H_
