#ifndef SDEA_SERVE_STATS_H_
#define SDEA_SERVE_STATS_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/registry.h"

namespace sdea::serve {

/// A point-in-time copy of the serving counters: plain values, safe to
/// store, diff between two instants, or print.
struct StatsSnapshot {
  /// Batch-size histogram bucket upper bounds: 1, 2, 4, 8, 16, 32, 64, inf.
  static constexpr int kBatchBuckets = 8;
  /// Latency bucket upper bounds in microseconds:
  /// 1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, inf.
  static constexpr int kLatencyBuckets = 10;
  /// Instrumented pipeline stages (indices into latency_hist).
  static constexpr int kNumStages = 3;

  uint64_t queries = 0;            ///< Successfully answered requests.
  uint64_t text_queries = 0;       ///< Of `queries`, text-keyed ones.
  uint64_t embedding_queries = 0;  ///< Of `queries`, embedding-keyed ones.
  uint64_t failed_queries = 0;     ///< Requests answered with an error.
  /// Of `queries`, answers the abstain rule turned into an explicit
  /// no-match (OK status, empty neighbor list). A spike here after a
  /// snapshot swap is the signal that the new embeddings moved under the
  /// calibrated threshold.
  uint64_t no_match_answers = 0;
  uint64_t batches = 0;            ///< Dispatched batches (incl. failed).
  uint64_t batched_queries = 0;    ///< Sum of batch sizes.
  uint64_t cache_hits = 0;         ///< Text lookups served from the cache.
  uint64_t cache_misses = 0;       ///< Text lookups that needed encoding.
  uint64_t encoded_texts = 0;      ///< Unique texts sent to the encoder.
  uint64_t snapshot_swaps = 0;     ///< Hot swaps since construction/reset.
  std::array<uint64_t, kBatchBuckets> batch_size_hist{};
  std::array<std::array<uint64_t, kLatencyBuckets>, kNumStages>
      latency_hist{};

  /// cache_hits / (cache_hits + cache_misses); 0 when no text lookups.
  double cache_hit_rate() const;

  /// batched_queries / batches; 0 when no batch has been dispatched.
  double mean_batch_size() const;

  /// Multi-line human-readable summary.
  std::string ToString() const;
};

/// Counters shared by all serving threads — now a thin view over
/// obs::MetricsRegistry handles ("serve.*" names), so the serving metrics
/// flow through the same registry, exporters, and Prometheus format as
/// everything else. The recording discipline is unchanged: every mutation
/// is a relaxed atomic increment and Snapshot() a sequence of relaxed
/// loads, so the stats path never takes a lock and never serializes
/// request threads. Snapshot() is therefore not a single consistent cut
/// across counters — concurrent increments may be half-visible — the
/// usual (and documented) monitoring-counter trade-off.
class ServeStats {
 public:
  enum class Stage { kEncode = 0, kSearch = 1, kTotal = 2 };

  /// With no argument each ServeStats owns a private registry, so two
  /// servers in one process never share counters. Pass a registry
  /// (borrowed, must outlive this object) to expose the "serve.*" metrics
  /// on a shared one, e.g. MetricsRegistry::Default() for a process with
  /// a single server and one Prometheus endpoint.
  explicit ServeStats(obs::MetricsRegistry* registry = nullptr);
  ServeStats(const ServeStats&) = delete;
  ServeStats& operator=(const ServeStats&) = delete;

  void RecordQuery(bool is_text);
  void RecordFailedQuery();
  void RecordNoMatch();
  void RecordBatch(uint64_t batch_size);
  void RecordCacheHit();
  void RecordCacheMiss();
  void RecordEncodedTexts(uint64_t count);
  void RecordSwap();
  void RecordLatency(Stage stage, int64_t micros);

  StatsSnapshot Snapshot() const;

  /// Zeroes every counter. Intended for benchmarks sweeping configurations
  /// on one server; not synchronized against concurrent recording.
  void Reset();

  /// The registry the handles live on (owned or borrowed), for exporters.
  obs::MetricsRegistry* registry() const { return registry_; }

 private:
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;
  obs::Counter* queries_;
  obs::Counter* text_queries_;
  obs::Counter* embedding_queries_;
  obs::Counter* failed_queries_;
  obs::Counter* no_match_answers_;
  obs::Counter* batches_;
  obs::Counter* batched_queries_;
  obs::Counter* cache_hits_;
  obs::Counter* cache_misses_;
  obs::Counter* encoded_texts_;
  obs::Counter* snapshot_swaps_;
  obs::HistogramCell* batch_size_hist_;
  std::array<obs::HistogramCell*, StatsSnapshot::kNumStages> latency_hist_;
};

}  // namespace sdea::serve

#endif  // SDEA_SERVE_STATS_H_
