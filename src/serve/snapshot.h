#ifndef SDEA_SERVE_SNAPSHOT_H_
#define SDEA_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "base/status.h"
#include "core/ann_index.h"
#include "core/embedding_store.h"
#include "kg/columnar.h"
#include "store/quantized_store.h"

namespace sdea::serve {

/// One immutable serving state: a versioned store. Either an in-RAM
/// EmbeddingStore (with its IVF index built inside, if any) or a
/// memory-mapped store::QuantizedStore — the variant for stores too large
/// to slurp into RAM, whose pages stay on disk until queries touch them.
/// Once published through SnapshotManager a snapshot is never mutated
/// again, so any number of request threads may read it concurrently; both
/// stores' query methods are const and touch no mutable state.
///
/// The snapshot owns the quantized store's mmaps, and the server pins one
/// snapshot per batch, so results never point into an unmapped region
/// even while a swap retires the snapshot mid-flight.
struct ServingSnapshot {
  uint64_t version = 0;
  core::EmbeddingStore store;
  std::unique_ptr<const store::QuantizedStore> quantized;
  /// Pinned KG snapshot the embeddings were computed from (empty when the
  /// serving state was published without one). Pinning keeps the columnar
  /// chunks alive — lookups against entity names/triples stay consistent
  /// with the embeddings even while the writer keeps mutating the graph.
  kg::KgSnapshot kg;

  bool has_kg() const { return kg.epoch() != 0; }

  int64_t dim() const {
    return quantized != nullptr ? quantized->dim() : store.dim();
  }
  int64_t size() const {
    return quantized != nullptr ? quantized->size() : store.size();
  }
  std::vector<core::EmbeddingStore::Neighbor> NearestNeighbors(
      const Tensor& query, int64_t k) const {
    return quantized != nullptr ? quantized->NearestNeighbors(query, k)
                                : store.NearestNeighbors(query, k);
  }
};

/// Holds the current snapshot behind a shared_ptr and swaps it atomically.
/// Readers pin the snapshot they are answering against with Current(); a
/// concurrent Swap publishes the replacement for *subsequent* readers while
/// in-flight queries finish on the pinned old snapshot, which stays alive
/// until its last shared_ptr drops. This is the zero-downtime reload path:
/// a freshly trained store is built and indexed off to the side, then
/// swapped in with one pointer store.
class SnapshotManager {
 public:
  SnapshotManager() = default;
  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// The currently published snapshot, or nullptr before the first Swap.
  std::shared_ptr<const ServingSnapshot> Current() const;

  /// Publishes `store` as the new current snapshot and returns its version
  /// (monotonically increasing from 1). Build the store's index *before*
  /// calling — Swap itself is just an allocation and a pointer store.
  uint64_t Swap(core::EmbeddingStore store);

  /// Publishes `store` together with the KG snapshot it was computed from,
  /// so request threads can resolve names/triples against exactly the
  /// graph state behind the embeddings. Pass `graph.Snapshot()` — pinning
  /// is sub-millisecond and the chunks stay alive with the serving
  /// snapshot.
  uint64_t SwapWithKg(core::EmbeddingStore store, kg::KgSnapshot kg);

  /// Loads a store artifact from disk, optionally builds its IVF index,
  /// and publishes it. The load + index build happen entirely outside the
  /// swap lock; queries keep flowing against the old snapshot meanwhile.
  Result<uint64_t> LoadAndSwap(const std::string& path,
                               bool build_index = true,
                               const core::IvfOptions& index_options = {});

  /// Publishes a memory-mapped quantized store. Same pointer-store swap;
  /// the mmaps move into the snapshot and stay alive until the last
  /// in-flight batch drops its pin.
  uint64_t SwapQuantized(store::QuantizedStore qstore);

  /// Opens an SDEASTOR1 snapshot directory (O(ms) — only the manifest
  /// and shard headers are read) and publishes it.
  Result<uint64_t> OpenQuantizedAndSwap(const std::string& dir);

  bool has_snapshot() const { return Current() != nullptr; }

  /// Version of the current snapshot; 0 when none has been published.
  uint64_t version() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ServingSnapshot> current_;
  uint64_t last_version_ = 0;  // Guarded by mu_.
};

}  // namespace sdea::serve

#endif  // SDEA_SERVE_SNAPSHOT_H_
