#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "base/threadpool.h"
#include "obs/trace.h"
#include "text/normalizer.h"

namespace sdea::serve {
namespace {

using Clock = std::chrono::steady_clock;

int64_t MicrosSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start)
      .count();
}

}  // namespace

AlignmentServer::AlignmentServer(const ServerOptions& options,
                                 BatchEncoderFn encoder)
    : options_(options),
      encoder_(std::move(encoder)),
      cache_(options.cache),
      stats_(options.metrics) {
  batcher_ = std::make_unique<RequestBatcher>(
      options_.batcher,
      [this](std::vector<ServeRequest>* batch) { RunBatch(batch); });
}

uint64_t AlignmentServer::SwapSnapshot(core::EmbeddingStore store) {
  if (options_.build_index && !store.has_index()) {
    store.BuildIndex(options_.index);
  }
  const uint64_t version = snapshots_.Swap(std::move(store));
  stats_.RecordSwap();
  return version;
}

Result<uint64_t> AlignmentServer::LoadSnapshot(const std::string& path) {
  SDEA_ASSIGN_OR_RETURN(
      uint64_t version,
      snapshots_.LoadAndSwap(path, options_.build_index, options_.index));
  stats_.RecordSwap();
  return version;
}

Result<uint64_t> AlignmentServer::LoadQuantizedSnapshot(
    const std::string& dir) {
  SDEA_ASSIGN_OR_RETURN(uint64_t version,
                        snapshots_.OpenQuantizedAndSwap(dir));
  stats_.RecordSwap();
  return version;
}

AlignResult AlignmentServer::AlignEmbedding(const Tensor& query, int64_t k) {
  return AlignEmbeddingAsync(query, k).get();
}

AlignResult AlignmentServer::AlignText(const std::string& text, int64_t k) {
  return AlignTextAsync(text, k).get();
}

std::future<AlignResult> AlignmentServer::AlignEmbeddingAsync(Tensor query,
                                                              int64_t k) {
  ServeRequest request;
  request.is_text = false;
  request.embedding = std::move(query);
  request.k = k;
  return batcher_->Submit(std::move(request));
}

std::future<AlignResult> AlignmentServer::AlignTextAsync(std::string text,
                                                         int64_t k) {
  ServeRequest request;
  request.is_text = true;
  // Normalizing on the client thread keeps the dispatcher lean.
  request.text = options_.normalize_text ? text::NormalizeText(text)
                                         : std::move(text);
  request.k = k;
  return batcher_->Submit(std::move(request));
}

void AlignmentServer::ReconfigureBatcher(const BatcherOptions& options) {
  batcher_.reset();  // Drains the old dispatcher before the new one starts.
  options_.batcher = options;
  batcher_ = std::make_unique<RequestBatcher>(
      options_.batcher,
      [this](std::vector<ServeRequest>* batch) { RunBatch(batch); });
}

void AlignmentServer::RunBatch(std::vector<ServeRequest>* batch) {
  obs::TraceSpan batch_span("serve/batch");
  const size_t n = batch->size();
  stats_.RecordBatch(n);

  // Pin ONE snapshot for the whole batch: every answer below reads this
  // object, so a concurrent swap cannot make a batch straddle two stores.
  const std::shared_ptr<const ServingSnapshot> snap = snapshots_.Current();
  if (snap == nullptr) {
    for (ServeRequest& request : *batch) {
      stats_.RecordFailedQuery();
      request.promise.set_value(AlignResult(
          Status::FailedPrecondition("no snapshot loaded; call "
                                     "SwapSnapshot/LoadSnapshot first")));
    }
    return;
  }

  std::vector<Status> failed(n);  // Defaults to OK.

  // Resolve text queries through the cache; deduplicate the misses so one
  // text appearing several times in a batch is encoded once.
  std::vector<size_t> miss_requests;
  std::vector<std::string> texts_to_encode;
  std::unordered_map<std::string, size_t> text_row;
  for (size_t i = 0; i < n; ++i) {
    ServeRequest& request = (*batch)[i];
    if (!request.is_text) continue;
    if (cache_.Get(request.text, &request.embedding)) {
      stats_.RecordCacheHit();
      continue;
    }
    stats_.RecordCacheMiss();
    miss_requests.push_back(i);
    if (text_row.emplace(request.text, texts_to_encode.size()).second) {
      texts_to_encode.push_back(request.text);
    }
  }

  if (!texts_to_encode.empty()) {
    if (encoder_ == nullptr) {
      for (size_t i : miss_requests) {
        failed[i] = Status::InvalidArgument(
            "text query but no encoder configured");
      }
    } else {
      obs::TraceSpan encode_span("serve/encode");
      const auto encode_start = Clock::now();
      const Tensor encoded = encoder_(texts_to_encode);
      stats_.RecordLatency(ServeStats::Stage::kEncode,
                           MicrosSince(encode_start));
      if (encoded.rank() != 2 ||
          encoded.dim(0) != static_cast<int64_t>(texts_to_encode.size())) {
        for (size_t i : miss_requests) {
          failed[i] = Status::Internal(
              "encoder returned wrong shape: " + encoded.DebugString());
        }
      } else {
        stats_.RecordEncodedTexts(texts_to_encode.size());
        for (size_t i : miss_requests) {
          (*batch)[i].embedding = encoded.Row(static_cast<int64_t>(
              text_row.at((*batch)[i].text)));
        }
        for (size_t row = 0; row < texts_to_encode.size(); ++row) {
          cache_.Put(texts_to_encode[row],
                     encoded.Row(static_cast<int64_t>(row)));
        }
      }
    }
  }

  const int64_t dim = snap->dim();
  for (size_t i = 0; i < n; ++i) {
    if (!failed[i].ok()) continue;
    // Mirror the store's own dim contract: enforced whenever the snapshot
    // has a known dim — including an empty [0, d] store, whose
    // NearestNeighbors now CHECKs the dim before returning its empty
    // answer. Only a dim-less (default-constructed) store skips it.
    if (dim > 0 && (*batch)[i].embedding.size() != dim) {
      failed[i] = Status::InvalidArgument(
          "query dim " + std::to_string((*batch)[i].embedding.size()) +
          " != store dim " + std::to_string(dim));
    }
  }

  // Answer each row with the identical computation a serial
  // store.NearestNeighbors call runs; rows are sharded across the pool and
  // each writes only its own slot, so results are bitwise-equal to serial
  // one-at-a-time answers for every thread count and batch composition.
  std::vector<std::vector<Neighbor>> results(n);
  {
    obs::TraceSpan search_span("serve/search");
    const auto search_start = Clock::now();
    const int64_t per_query =
        5 *
        (1 + static_cast<int64_t>(
                 std::sqrt(static_cast<double>(snap->size())))) *
        std::max<int64_t>(dim, 1);
    base::ParallelFor(static_cast<int64_t>(n),
                      base::GrainForWork(static_cast<int64_t>(n), per_query),
                      [&](int64_t begin, int64_t end) {
                        for (int64_t i = begin; i < end; ++i) {
                          const auto idx = static_cast<size_t>(i);
                          if (!failed[idx].ok()) continue;
                          results[idx] = snap->NearestNeighbors(
                              (*batch)[idx].embedding, (*batch)[idx].k);
                        }
                      });
    stats_.RecordLatency(ServeStats::Stage::kSearch,
                         MicrosSince(search_start));
  }

  for (size_t i = 0; i < n; ++i) {
    ServeRequest& request = (*batch)[i];
    stats_.RecordLatency(ServeStats::Stage::kTotal,
                         MicrosSince(request.enqueue_time));
    if (failed[i].ok()) {
      std::vector<Neighbor>& answer = results[i];
      // A nonsense score is never served: NaN rows (zero-norm or diverged
      // embeddings) and -inf pad entries would otherwise win or lose the
      // argmax arbitrarily. Before this filter, an all-NaN store row could
      // be returned as the "best" neighbor with similarity NaN.
      answer.erase(std::remove_if(answer.begin(), answer.end(),
                                  [](const Neighbor& nb) {
                                    return !std::isfinite(nb.similarity);
                                  }),
                   answer.end());
      if (options_.abstain.enabled && !answer.empty()) {
        // Neighbors arrive sorted by decreasing similarity, so the no-match
        // rule reads top1 and the top1-top2 margin directly. One candidate
        // means no runner-up to confuse with: margin is +inf.
        const float top1 = answer.front().similarity;
        const float margin =
            answer.size() > 1
                ? top1 - answer[1].similarity
                : std::numeric_limits<float>::infinity();
        if (!options_.abstain.Accepts(top1, margin)) {
          answer.clear();
          stats_.RecordNoMatch();
        }
      }
      stats_.RecordQuery(request.is_text);
      request.promise.set_value(AlignResult(std::move(answer)));
    } else {
      stats_.RecordFailedQuery();
      request.promise.set_value(AlignResult(std::move(failed[i])));
    }
  }
}

}  // namespace sdea::serve
