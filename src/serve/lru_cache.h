#ifndef SDEA_SERVE_LRU_CACHE_H_
#define SDEA_SERVE_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace sdea::serve {

struct LruCacheOptions {
  /// Total entries across all shards; 0 disables the cache entirely
  /// (every Get misses, every Put is a no-op).
  size_t capacity = 4096;
  /// Independent shards, each with its own lock and LRU list. More shards
  /// reduce lock contention between concurrent request threads at the cost
  /// of slightly coarser global LRU behaviour (eviction is per-shard).
  size_t num_shards = 8;
};

/// A sharded, thread-safe LRU map from a text key to its encoded embedding
/// row. Keys hash to a fixed shard; each shard orders its entries by
/// recency and evicts its own least-recently-used entry when full. Used by
/// AlignmentServer to skip the encoder forward pass for repeated or
/// overlapping attribute-text queries.
class ShardedLruCache {
 public:
  explicit ShardedLruCache(const LruCacheOptions& options = {});

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Copies the cached value for `key` into `*value` and promotes the entry
  /// to most-recently-used. Returns false (leaving `*value` untouched) on
  /// miss.
  bool Get(const std::string& key, Tensor* value);

  /// Inserts or overwrites `key`; either way the entry becomes the shard's
  /// most-recently-used. Evicts the shard's LRU entry when the shard is
  /// over capacity.
  void Put(const std::string& key, Tensor value);

  /// Current number of cached entries (sums shard sizes; a concurrent
  /// mutation may be counted in neither or one shard, never twice).
  size_t size() const;

  /// Effective capacity: per-shard capacity times shard count. At least the
  /// requested capacity (rounded up to a multiple of the shard count), or 0
  /// when the cache is disabled.
  size_t capacity() const { return shard_capacity_ * shards_.size(); }

  /// Drops every entry.
  void Clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    // front = most-recently-used.
    std::list<std::pair<std::string, Tensor>> entries;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, Tensor>>::iterator>
        index;
  };

  Shard& ShardFor(const std::string& key);

  size_t shard_capacity_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace sdea::serve

#endif  // SDEA_SERVE_LRU_CACHE_H_
