#include "serve/stats.h"

#include <cstdio>

namespace sdea::serve {
namespace {

// Bucket upper bounds (inclusive); the last bucket is unbounded.
constexpr uint64_t kBatchBounds[StatsSnapshot::kBatchBuckets - 1] = {
    1, 2, 4, 8, 16, 32, 64};
constexpr int64_t kLatencyBoundsUs[StatsSnapshot::kLatencyBuckets - 1] = {
    1, 4, 16, 64, 256, 1024, 4096, 16384, 65536};

int BatchBucket(uint64_t batch_size) {
  for (int b = 0; b < StatsSnapshot::kBatchBuckets - 1; ++b) {
    if (batch_size <= kBatchBounds[b]) return b;
  }
  return StatsSnapshot::kBatchBuckets - 1;
}

int LatencyBucket(int64_t micros) {
  for (int b = 0; b < StatsSnapshot::kLatencyBuckets - 1; ++b) {
    if (micros <= kLatencyBoundsUs[b]) return b;
  }
  return StatsSnapshot::kLatencyBuckets - 1;
}

void AppendHistogram(std::string* out, const char* label,
                     const uint64_t* counts, const int64_t* bounds,
                     int num_buckets) {
  out->append(label);
  char buf[64];
  for (int b = 0; b < num_buckets; ++b) {
    if (b < num_buckets - 1) {
      std::snprintf(buf, sizeof(buf), " [<=%lld]=%llu",
                    static_cast<long long>(bounds[b]),
                    static_cast<unsigned long long>(counts[b]));
    } else {
      std::snprintf(buf, sizeof(buf), " [inf]=%llu",
                    static_cast<unsigned long long>(counts[b]));
    }
    out->append(buf);
  }
  out->append("\n");
}

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

double StatsSnapshot::cache_hit_rate() const {
  const uint64_t lookups = cache_hits + cache_misses;
  if (lookups == 0) return 0.0;
  return static_cast<double>(cache_hits) / static_cast<double>(lookups);
}

double StatsSnapshot::mean_batch_size() const {
  if (batches == 0) return 0.0;
  return static_cast<double>(batched_queries) / static_cast<double>(batches);
}

std::string StatsSnapshot::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "serve stats: %llu queries (%llu text, %llu embedding, "
                "%llu failed) in %llu batches (mean %.2f/batch)\n",
                static_cast<unsigned long long>(queries),
                static_cast<unsigned long long>(text_queries),
                static_cast<unsigned long long>(embedding_queries),
                static_cast<unsigned long long>(failed_queries),
                static_cast<unsigned long long>(batches), mean_batch_size());
  out.append(buf);
  std::snprintf(buf, sizeof(buf),
                "cache: %llu hits / %llu misses (%.1f%% hit rate), "
                "%llu texts encoded; %llu snapshot swaps\n",
                static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(cache_misses),
                100.0 * cache_hit_rate(),
                static_cast<unsigned long long>(encoded_texts),
                static_cast<unsigned long long>(snapshot_swaps));
  out.append(buf);
  {
    int64_t batch_bounds[kBatchBuckets - 1];
    for (int b = 0; b < kBatchBuckets - 1; ++b) {
      batch_bounds[b] = static_cast<int64_t>(kBatchBounds[b]);
    }
    AppendHistogram(&out, "batch sizes:", batch_size_hist.data(),
                    batch_bounds, kBatchBuckets);
  }
  const char* stage_names[kNumStages] = {"encode us:", "search us:",
                                         "total us: "};
  for (int s = 0; s < kNumStages; ++s) {
    AppendHistogram(&out, stage_names[s], latency_hist[s].data(),
                    kLatencyBoundsUs, kLatencyBuckets);
  }
  return out;
}

void ServeStats::RecordQuery(bool is_text) {
  queries_.fetch_add(1, kRelaxed);
  if (is_text) {
    text_queries_.fetch_add(1, kRelaxed);
  } else {
    embedding_queries_.fetch_add(1, kRelaxed);
  }
}

void ServeStats::RecordFailedQuery() { failed_queries_.fetch_add(1, kRelaxed); }

void ServeStats::RecordBatch(uint64_t batch_size) {
  batches_.fetch_add(1, kRelaxed);
  batched_queries_.fetch_add(batch_size, kRelaxed);
  batch_size_hist_[BatchBucket(batch_size)].fetch_add(1, kRelaxed);
}

void ServeStats::RecordCacheHit() { cache_hits_.fetch_add(1, kRelaxed); }

void ServeStats::RecordCacheMiss() { cache_misses_.fetch_add(1, kRelaxed); }

void ServeStats::RecordEncodedTexts(uint64_t count) {
  encoded_texts_.fetch_add(count, kRelaxed);
}

void ServeStats::RecordSwap() { snapshot_swaps_.fetch_add(1, kRelaxed); }

void ServeStats::RecordLatency(Stage stage, int64_t micros) {
  latency_hist_[static_cast<int>(stage)][LatencyBucket(micros)].fetch_add(
      1, kRelaxed);
}

StatsSnapshot ServeStats::Snapshot() const {
  StatsSnapshot snap;
  snap.queries = queries_.load(kRelaxed);
  snap.text_queries = text_queries_.load(kRelaxed);
  snap.embedding_queries = embedding_queries_.load(kRelaxed);
  snap.failed_queries = failed_queries_.load(kRelaxed);
  snap.batches = batches_.load(kRelaxed);
  snap.batched_queries = batched_queries_.load(kRelaxed);
  snap.cache_hits = cache_hits_.load(kRelaxed);
  snap.cache_misses = cache_misses_.load(kRelaxed);
  snap.encoded_texts = encoded_texts_.load(kRelaxed);
  snap.snapshot_swaps = snapshot_swaps_.load(kRelaxed);
  for (int b = 0; b < StatsSnapshot::kBatchBuckets; ++b) {
    snap.batch_size_hist[b] = batch_size_hist_[b].load(kRelaxed);
  }
  for (int s = 0; s < StatsSnapshot::kNumStages; ++s) {
    for (int b = 0; b < StatsSnapshot::kLatencyBuckets; ++b) {
      snap.latency_hist[s][b] = latency_hist_[s][b].load(kRelaxed);
    }
  }
  return snap;
}

void ServeStats::Reset() {
  queries_.store(0, kRelaxed);
  text_queries_.store(0, kRelaxed);
  embedding_queries_.store(0, kRelaxed);
  failed_queries_.store(0, kRelaxed);
  batches_.store(0, kRelaxed);
  batched_queries_.store(0, kRelaxed);
  cache_hits_.store(0, kRelaxed);
  cache_misses_.store(0, kRelaxed);
  encoded_texts_.store(0, kRelaxed);
  snapshot_swaps_.store(0, kRelaxed);
  for (auto& c : batch_size_hist_) c.store(0, kRelaxed);
  for (auto& stage : latency_hist_) {
    for (auto& c : stage) c.store(0, kRelaxed);
  }
}

}  // namespace sdea::serve
