#include "serve/stats.h"

#include <cstdio>
#include <vector>

#include "base/check.h"

namespace sdea::serve {
namespace {

// Bucket upper bounds (inclusive); the registry histograms add the final
// unbounded bucket, matching the StatsSnapshot array layout exactly.
const std::vector<double>& BatchBounds() {
  static const std::vector<double> kBounds = {1, 2, 4, 8, 16, 32, 64};
  return kBounds;
}

const std::vector<double>& LatencyBoundsUs() {
  static const std::vector<double> kBounds = {1,    4,    16,    64,   256,
                                              1024, 4096, 16384, 65536};
  return kBounds;
}

void AppendHistogramLine(std::string* out, const char* label,
                         const uint64_t* counts,
                         const std::vector<double>& bounds) {
  out->append(label);
  char buf[64];
  const int num_buckets = static_cast<int>(bounds.size()) + 1;
  for (int b = 0; b < num_buckets; ++b) {
    if (b < num_buckets - 1) {
      std::snprintf(buf, sizeof(buf), " [<=%lld]=%llu",
                    static_cast<long long>(bounds[static_cast<size_t>(b)]),
                    static_cast<unsigned long long>(counts[b]));
    } else {
      std::snprintf(buf, sizeof(buf), " [inf]=%llu",
                    static_cast<unsigned long long>(counts[b]));
    }
    out->append(buf);
  }
  out->append("\n");
}

template <size_t N>
void CopyBuckets(const obs::Histogram& hist, std::array<uint64_t, N>* out) {
  const std::vector<int64_t>& counts = hist.bucket_counts();
  SDEA_CHECK_EQ(counts.size(), N);
  for (size_t b = 0; b < N; ++b) {
    (*out)[b] = static_cast<uint64_t>(counts[b]);
  }
}

}  // namespace

double StatsSnapshot::cache_hit_rate() const {
  const uint64_t lookups = cache_hits + cache_misses;
  if (lookups == 0) return 0.0;
  return static_cast<double>(cache_hits) / static_cast<double>(lookups);
}

double StatsSnapshot::mean_batch_size() const {
  if (batches == 0) return 0.0;
  return static_cast<double>(batched_queries) / static_cast<double>(batches);
}

std::string StatsSnapshot::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "serve stats: %llu queries (%llu text, %llu embedding, "
                "%llu failed, %llu no-match) in %llu batches "
                "(mean %.2f/batch)\n",
                static_cast<unsigned long long>(queries),
                static_cast<unsigned long long>(text_queries),
                static_cast<unsigned long long>(embedding_queries),
                static_cast<unsigned long long>(failed_queries),
                static_cast<unsigned long long>(no_match_answers),
                static_cast<unsigned long long>(batches), mean_batch_size());
  out.append(buf);
  std::snprintf(buf, sizeof(buf),
                "cache: %llu hits / %llu misses (%.1f%% hit rate), "
                "%llu texts encoded; %llu snapshot swaps\n",
                static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(cache_misses),
                100.0 * cache_hit_rate(),
                static_cast<unsigned long long>(encoded_texts),
                static_cast<unsigned long long>(snapshot_swaps));
  out.append(buf);
  AppendHistogramLine(&out, "batch sizes:", batch_size_hist.data(),
                      BatchBounds());
  const char* stage_names[kNumStages] = {"encode us:", "search us:",
                                         "total us: "};
  for (int s = 0; s < kNumStages; ++s) {
    AppendHistogramLine(&out, stage_names[s], latency_hist[s].data(),
                        LatencyBoundsUs());
  }
  return out;
}

ServeStats::ServeStats(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  registry_ = registry;
  queries_ = registry_->GetCounter("serve.queries");
  text_queries_ = registry_->GetCounter("serve.text_queries");
  embedding_queries_ = registry_->GetCounter("serve.embedding_queries");
  failed_queries_ = registry_->GetCounter("serve.failed_queries");
  no_match_answers_ = registry_->GetCounter("serve.no_match_answers");
  batches_ = registry_->GetCounter("serve.batches");
  batched_queries_ = registry_->GetCounter("serve.batched_queries");
  cache_hits_ = registry_->GetCounter("serve.cache_hits");
  cache_misses_ = registry_->GetCounter("serve.cache_misses");
  encoded_texts_ = registry_->GetCounter("serve.encoded_texts");
  snapshot_swaps_ = registry_->GetCounter("serve.snapshot_swaps");
  batch_size_hist_ =
      registry_->GetHistogram("serve.batch_size", BatchBounds());
  const char* stage_names[StatsSnapshot::kNumStages] = {
      "serve.latency_us.encode", "serve.latency_us.search",
      "serve.latency_us.total"};
  for (int s = 0; s < StatsSnapshot::kNumStages; ++s) {
    latency_hist_[static_cast<size_t>(s)] =
        registry_->GetHistogram(stage_names[s], LatencyBoundsUs());
  }
}

void ServeStats::RecordQuery(bool is_text) {
  queries_->Increment();
  if (is_text) {
    text_queries_->Increment();
  } else {
    embedding_queries_->Increment();
  }
}

void ServeStats::RecordFailedQuery() { failed_queries_->Increment(); }

void ServeStats::RecordNoMatch() { no_match_answers_->Increment(); }

void ServeStats::RecordBatch(uint64_t batch_size) {
  batches_->Increment();
  batched_queries_->Increment(batch_size);
  batch_size_hist_->Record(static_cast<double>(batch_size));
}

void ServeStats::RecordCacheHit() { cache_hits_->Increment(); }

void ServeStats::RecordCacheMiss() { cache_misses_->Increment(); }

void ServeStats::RecordEncodedTexts(uint64_t count) {
  encoded_texts_->Increment(count);
}

void ServeStats::RecordSwap() { snapshot_swaps_->Increment(); }

void ServeStats::RecordLatency(Stage stage, int64_t micros) {
  latency_hist_[static_cast<size_t>(stage)]->Record(
      static_cast<double>(micros));
}

StatsSnapshot ServeStats::Snapshot() const {
  StatsSnapshot snap;
  snap.queries = queries_->Value();
  snap.text_queries = text_queries_->Value();
  snap.embedding_queries = embedding_queries_->Value();
  snap.failed_queries = failed_queries_->Value();
  snap.no_match_answers = no_match_answers_->Value();
  snap.batches = batches_->Value();
  snap.batched_queries = batched_queries_->Value();
  snap.cache_hits = cache_hits_->Value();
  snap.cache_misses = cache_misses_->Value();
  snap.encoded_texts = encoded_texts_->Value();
  snap.snapshot_swaps = snapshot_swaps_->Value();
  CopyBuckets(batch_size_hist_->Snapshot(), &snap.batch_size_hist);
  for (int s = 0; s < StatsSnapshot::kNumStages; ++s) {
    CopyBuckets(latency_hist_[static_cast<size_t>(s)]->Snapshot(),
                &snap.latency_hist[static_cast<size_t>(s)]);
  }
  return snap;
}

void ServeStats::Reset() {
  queries_->Reset();
  text_queries_->Reset();
  embedding_queries_->Reset();
  failed_queries_->Reset();
  no_match_answers_->Reset();
  batches_->Reset();
  batched_queries_->Reset();
  cache_hits_->Reset();
  cache_misses_->Reset();
  encoded_texts_->Reset();
  snapshot_swaps_->Reset();
  batch_size_hist_->Reset();
  for (obs::HistogramCell* cell : latency_hist_) cell->Reset();
}

}  // namespace sdea::serve
