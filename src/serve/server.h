#ifndef SDEA_SERVE_SERVER_H_
#define SDEA_SERVE_SERVER_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/ann_index.h"
#include "eval/abstention.h"
#include "obs/registry.h"
#include "core/embedding_store.h"
#include "serve/batcher.h"
#include "serve/lru_cache.h"
#include "serve/snapshot.h"
#include "serve/stats.h"
#include "tensor/tensor.h"

namespace sdea::serve {

/// Encodes a batch of attribute texts into a [texts.size(), dim] embedding
/// matrix. In production this wraps the trained attribute-text encoder
/// (e.g. TextAlignmentEncoder); tests and benches plug in cheap
/// deterministic substitutes.
///
/// Contract for batched == serial answer equality: row i of the result
/// must depend only on texts[i] (no cross-row normalization or pooling),
/// so encoding a text in a batch of 40 yields the same bits as encoding it
/// alone. All tmath matmul-based encoders satisfy this (each output row is
/// a pure function of the corresponding input row).
using BatchEncoderFn =
    std::function<Tensor(const std::vector<std::string>&)>;

struct ServerOptions {
  BatcherOptions batcher;
  LruCacheOptions cache;
  /// Build the snapshot's IVF index on swap/load when the store has none.
  /// Disable for small stores where the exact scan is already fast.
  bool build_index = true;
  core::IvfOptions index;
  /// Key the embedding cache (and feed the encoder) with
  /// text::NormalizeText(query) instead of the raw query string, so
  /// trivially different spellings of one attribute value share an entry.
  bool normalize_text = true;
  /// Registry the server's "serve.*" metrics register on (borrowed; must
  /// outlive the server). Null gives the server a private registry, so
  /// several servers in one process never share counters; point it at
  /// obs::MetricsRegistry::Default() to fold the metrics into the
  /// process-wide exporter view.
  obs::MetricsRegistry* metrics = nullptr;
  /// Calibrated no-match rule (fit offline on dev seeds with
  /// eval::CalibrateAbstainThreshold). When enabled, an answer whose best
  /// candidate fails the score/margin test is the explicit no-match
  /// answer: an OK AlignResult with an empty neighbor list. Disabled by
  /// default (every query returns its top-k). Independent of this rule,
  /// candidates with a non-finite similarity (NaN from zero-norm or
  /// diverged rows, -inf) are always dropped from answers — a nonsense
  /// score is never served as a neighbor.
  eval::AbstainThreshold abstain;
};

/// The online alignment-serving front end: answers "align this entity
/// embedding / this attribute text -> top-k candidates" queries from many
/// concurrent clients against a hot-swappable embedding-store snapshot.
///
/// Request path: client threads submit through a RequestBatcher; the
/// dispatcher thread pins ONE snapshot per batch (so every answer in a
/// batch is coherent even mid-swap), resolves text queries through the
/// sharded LRU cache, batch-encodes the misses with one BatchEncoderFn
/// call, then answers every row with the store's NearestNeighbors —
/// sharded across base::ThreadPool but per-row identical to a serial call,
/// so concurrent batched answers are bitwise-equal to one-at-a-time
/// answers (a tested property, see tests/serve_server_test.cc).
///
/// Snapshot path: SwapSnapshot/LoadSnapshot build + index the new store
/// off to the side and publish it atomically; in-flight batches finish on
/// the snapshot they pinned. The text cache survives swaps intentionally:
/// cached entries are encoder outputs, which do not depend on the store.
class AlignmentServer {
 public:
  /// `encoder` may be null when only embedding queries will be served;
  /// text queries then fail with InvalidArgument.
  explicit AlignmentServer(const ServerOptions& options = {},
                           BatchEncoderFn encoder = nullptr);
  ~AlignmentServer() = default;

  AlignmentServer(const AlignmentServer&) = delete;
  AlignmentServer& operator=(const AlignmentServer&) = delete;

  /// Publishes `store` (indexing it first if options say so and it has no
  /// index) as the serving snapshot. Returns the new version. Callable at
  /// any time, including while queries are in flight.
  uint64_t SwapSnapshot(core::EmbeddingStore store);

  /// Loads a store artifact from disk and publishes it (same as
  /// SwapSnapshot otherwise).
  Result<uint64_t> LoadSnapshot(const std::string& path);

  /// Opens a memory-mapped SDEASTOR1 quantized snapshot directory and
  /// publishes it. No index is built: the quantized store answers with its
  /// own ADC-scan + exact-rerank path, and the snapshot keeps the mmaps
  /// alive for every batch pinned on it.
  Result<uint64_t> LoadQuantizedSnapshot(const std::string& dir);

  /// The snapshot queries are currently answered against; nullptr before
  /// the first swap/load.
  std::shared_ptr<const ServingSnapshot> snapshot() const {
    return snapshots_.Current();
  }
  uint64_t snapshot_version() const { return snapshots_.version(); }

  /// Blocking: top-k store entries most similar to `query` (length =
  /// store dim). k <= 0 yields an empty answer; k > store size clamps.
  AlignResult AlignEmbedding(const Tensor& query, int64_t k);

  /// Blocking: encodes `text` (through the cache) and aligns the result.
  AlignResult AlignText(const std::string& text, int64_t k);

  /// Fire-and-wait-later variants; the future is fulfilled by the
  /// dispatcher thread once the request's batch completes.
  std::future<AlignResult> AlignEmbeddingAsync(Tensor query, int64_t k);
  std::future<AlignResult> AlignTextAsync(std::string text, int64_t k);

  StatsSnapshot stats() const { return stats_.Snapshot(); }

  /// The registry holding the server's "serve.*" metrics (private unless
  /// ServerOptions::metrics injected one); feed it to the obs exporters
  /// for text/Prometheus output.
  obs::MetricsRegistry* metrics() const { return stats_.registry(); }

  /// Benchmark/test helpers. Not synchronized against in-flight queries.
  void ResetStats() { stats_.Reset(); }
  void ClearCache() { cache_.Clear(); }

  /// Replaces the batcher (draining it first) with one using `options`,
  /// keeping the loaded snapshot and cache. Must not race with in-flight
  /// queries; intended for benchmarks sweeping batching configurations on
  /// one indexed server.
  void ReconfigureBatcher(const BatcherOptions& options);

  const ServerOptions& options() const { return options_; }

 private:
  void RunBatch(std::vector<ServeRequest>* batch);

  ServerOptions options_;
  BatchEncoderFn encoder_;
  SnapshotManager snapshots_;
  ShardedLruCache cache_;
  ServeStats stats_;
  // Declared last: destroyed (and therefore drained) first, while the
  // members RunBatch touches are still alive.
  std::unique_ptr<RequestBatcher> batcher_;
};

}  // namespace sdea::serve

#endif  // SDEA_SERVE_SERVER_H_
