#include "obs/obs.h"

#include <cstdlib>
#include <cstring>

namespace sdea::obs {
namespace {

bool EnabledFromEnv() {
  const char* value = std::getenv("SDEA_OBS_ENABLED");
  if (value == nullptr) return true;
  return !(std::strcmp(value, "0") == 0 || std::strcmp(value, "false") == 0 ||
           std::strcmp(value, "off") == 0 || std::strcmp(value, "no") == 0);
}

}  // namespace

namespace internal {
std::atomic<bool> g_enabled{EnabledFromEnv()};
}  // namespace internal

void SetEnabled(bool on) {
  if constexpr (kCompiledIn) {
    internal::g_enabled.store(on, std::memory_order_relaxed);
  } else {
    (void)on;
  }
}

}  // namespace sdea::obs
