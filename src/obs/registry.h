#ifndef SDEA_OBS_REGISTRY_H_
#define SDEA_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace sdea::obs {

/// A monotonically increasing named counter. Every mutation is a relaxed
/// atomic increment; reads are relaxed loads, so the hot path never takes
/// a lock (the ServeStats discipline, now shared by everything).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  /// Not synchronized against concurrent increments (benchmark/test use).
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A named last-value gauge (e.g. "current snapshot version", "epochs
/// run"). Set/Add are lock-free; Add uses a CAS loop because
/// std::atomic<double>::fetch_add is not universally available.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// The concurrent counterpart of obs::Histogram: relaxed-atomic buckets
/// and aggregates, safe to Record from any number of threads with no
/// locking. Snapshot() is a sequence of relaxed loads producing a plain
/// Histogram — not a single consistent cut across the aggregates
/// (concurrent records may be half-visible), the usual monitoring-counter
/// trade-off, identical to what ServeStats::Snapshot always documented.
class HistogramCell {
 public:
  explicit HistogramCell(std::vector<double> upper_bounds);
  HistogramCell(const HistogramCell&) = delete;
  HistogramCell& operator=(const HistogramCell&) = delete;

  void Record(double v);

  Histogram Snapshot() const;
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }

  /// Not synchronized against concurrent Record (benchmark/test use).
  void Reset();

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::atomic<int64_t>> counts_;  // upper_bounds_.size() + 1.
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// A point-in-time copy of every metric in a registry, sorted by name
/// within each kind. Plain values: safe to store, diff, or export
/// (obs/export.h renders it as text or Prometheus exposition format).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram>> histograms;
};

/// The named-metrics directory. Get* registers on first use and returns a
/// stable handle; subsequent calls with the same name return the same
/// handle, so instrumentation sites resolve their handles once and then
/// record lock-free forever. Registration takes a mutex (cold path only);
/// recording through a handle never does.
///
/// Ownership model: Default() is the process-wide registry that
/// library-level instrumentation (train::Trainer, the pipeline spans'
/// metric twins) records into. Components that need isolated counters —
/// e.g. each serve::ServeStats, or a unit test — construct their own
/// instance instead; handles are owned by (and die with) their registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide instance (never destroyed).
  static MetricsRegistry* Default();

  /// A name registers as exactly one kind; asking for an existing name as
  /// a different kind is a programming error (aborts). GetHistogram with
  /// an existing name requires identical bounds.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  HistogramCell* GetHistogram(const std::string& name,
                              const std::vector<double>& upper_bounds);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (handles stay valid). Not
  /// synchronized against concurrent recording.
  void Reset();

 private:
  bool NameTaken(const std::string& name) const;  // Caller holds mu_.

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramCell>> histograms_;
};

}  // namespace sdea::obs

#endif  // SDEA_OBS_REGISTRY_H_
