#ifndef SDEA_OBS_HISTOGRAM_H_
#define SDEA_OBS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sdea::obs {

/// A fixed-bucket histogram over doubles, the one bucket implementation
/// shared by the whole codebase (it replaced the copy-pasted
/// train::Histogram and serve latency/batch-size bucket code). Bucket `i`
/// counts values v with upper_bounds[i-1] < v <= upper_bounds[i]; one
/// final unbounded bucket catches the rest.
///
/// This is a plain single-writer value type: Record from one thread, copy
/// freely, Merge per-thread instances afterwards. For a concurrent
/// relaxed-atomic variant use obs::HistogramCell (registry.h), whose
/// Snapshot() returns one of these.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  /// `count` bounds first, first*factor, ... (factor > 1, count >= 1).
  static Histogram Exponential(double first, double factor, int count);

  /// `count` bounds first, first+width, ... (width > 0, count >= 1).
  static Histogram Linear(double first, double width, int count);

  /// Rebuilds a histogram from previously captured parts (the
  /// HistogramCell snapshot path). `counts` must have bounds.size() + 1
  /// entries and sum to `count`; min/max are ignored when count == 0.
  static Histogram FromParts(std::vector<double> upper_bounds,
                             std::vector<int64_t> counts, int64_t count,
                             double sum, double min, double max);

  void Record(double v);

  /// Folds `other` into this histogram. Requires identical bounds.
  /// Merging per-thread histograms is associative and commutative: any
  /// merge order yields identical buckets and aggregates.
  void Merge(const Histogram& other);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Upper-bound estimate of the q-quantile with fully defined edge
  /// cases: an empty histogram returns 0 for every q; q <= 0 returns
  /// min(); q >= 1 returns max(); otherwise the smallest bucket bound b
  /// with P(v <= b) >= q, clamped to the observed max (so a histogram of
  /// one value reports that value at every quantile, and values beyond
  /// the last bound report max() rather than an undefined bound).
  double Quantile(double q) const;

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  const std::vector<int64_t>& bucket_counts() const { return counts_; }

  /// One-line summary: count/mean/min/max/p50/p99.
  std::string Summary() const;

 private:
  std::vector<double> upper_bounds_;
  std::vector<int64_t> counts_;  // upper_bounds_.size() + 1 buckets.
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sdea::obs

#endif  // SDEA_OBS_HISTOGRAM_H_
