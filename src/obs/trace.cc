#include "obs/trace.h"

#include <chrono>

#include "base/logging.h"

namespace sdea::obs {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point TraceEpoch() {
  static const Clock::time_point kEpoch = Clock::now();
  return kEpoch;
}

thread_local int32_t tls_depth = 0;

}  // namespace

int64_t TraceNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               TraceEpoch())
      .count();
}

TraceBuffer::TraceBuffer(size_t capacity) : capacity_(capacity) {}

TraceBuffer* TraceBuffer::Default() {
  static TraceBuffer* const kDefault = new TraceBuffer();
  return kDefault;
}

void TraceBuffer::Add(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

TraceSpan::TraceSpan(const char* name, TraceBuffer* buffer) {
  if (!Enabled()) return;  // buffer_ stays null: the dtor is a no-op too.
  name_ = name;
  buffer_ = buffer != nullptr ? buffer : TraceBuffer::Default();
  depth_ = tls_depth++;
  start_us_ = TraceNowMicros();
}

TraceSpan::~TraceSpan() {
  if (buffer_ == nullptr) return;
  --tls_depth;
  TraceEvent event;
  event.name = name_;
  event.start_us = start_us_;
  event.dur_us = TraceNowMicros() - start_us_;
  event.tid = ThreadId();
  event.depth = depth_;
  buffer_->Add(std::move(event));
}

}  // namespace sdea::obs
