#include "obs/histogram.h"

#include <algorithm>

#include "base/check.h"
#include "base/strings.h"

namespace sdea::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  SDEA_CHECK(!upper_bounds_.empty());
  for (size_t i = 1; i < upper_bounds_.size(); ++i) {
    SDEA_CHECK_LT(upper_bounds_[i - 1], upper_bounds_[i]);
  }
}

Histogram Histogram::Exponential(double first, double factor, int count) {
  SDEA_CHECK_GT(factor, 1.0);
  SDEA_CHECK_GE(count, 1);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double b = first;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return Histogram(std::move(bounds));
}

Histogram Histogram::Linear(double first, double width, int count) {
  SDEA_CHECK_GT(width, 0.0);
  SDEA_CHECK_GE(count, 1);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    bounds.push_back(first + width * i);
  }
  return Histogram(std::move(bounds));
}

Histogram Histogram::FromParts(std::vector<double> upper_bounds,
                               std::vector<int64_t> counts, int64_t count,
                               double sum, double min, double max) {
  Histogram h(std::move(upper_bounds));
  SDEA_CHECK_EQ(counts.size(), h.upper_bounds_.size() + 1);
  h.counts_ = std::move(counts);
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = min;
  h.max_ = max;
  return h;
}

void Histogram::Record(double v) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  ++counts_[static_cast<size_t>(it - upper_bounds_.begin())];
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

void Histogram::Merge(const Histogram& other) {
  SDEA_CHECK(upper_bounds_ == other.upper_bounds_);
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double target = q * static_cast<double>(count_);
  int64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (static_cast<double>(seen) >= target && counts_[i] > 0) {
      // Clamping to the observed max keeps the estimate inside the data
      // range: it covers both the unbounded tail bucket and bounded
      // buckets whose upper bound exceeds everything recorded.
      return i < upper_bounds_.size() ? std::min(upper_bounds_[i], max_)
                                      : max_;
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  return StrFormat(
      "count=%lld mean=%.4g min=%.4g max=%.4g p50<=%.4g p99<=%.4g",
      static_cast<long long>(count_), mean(), min(), max(), Quantile(0.5),
      Quantile(0.99));
}

}  // namespace sdea::obs
