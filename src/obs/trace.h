#ifndef SDEA_OBS_TRACE_H_
#define SDEA_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace sdea::obs {

/// One completed span: a named [start, start+dur) interval on one thread.
/// Timestamps are microseconds on the steady clock, relative to a
/// process-wide epoch captured at first use, so events from every thread
/// share one timeline.
struct TraceEvent {
  std::string name;
  int64_t start_us = 0;
  int64_t dur_us = 0;
  uint32_t tid = 0;    ///< sdea::ThreadId() of the recording thread.
  int32_t depth = 0;   ///< Nesting depth on that thread (0 = outermost).
};

/// A bounded in-memory sink for completed spans. Append takes a mutex
/// (spans complete at epoch/batch granularity, so this is never a hot
/// path); once `capacity` events are held, further events are counted in
/// dropped() and discarded, so a long benchmark keeps the run's head —
/// the phase structure — instead of growing without bound.
class TraceBuffer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit TraceBuffer(size_t capacity = kDefaultCapacity);
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// The process-wide buffer that TraceSpan records into by default.
  static TraceBuffer* Default();

  void Add(TraceEvent event);

  /// Copy of the buffered events, in completion order.
  std::vector<TraceEvent> Events() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const;

  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  uint64_t dropped_ = 0;
};

/// RAII scoped timer: construction opens a span, destruction records it
/// into the buffer (Default() unless one is given). Each thread keeps a
/// thread-local depth counter, so nested spans reconstruct the call tree
/// in the exporters. When obs::Enabled() is false at construction the
/// span is a no-op: one relaxed load, nothing recorded.
///
/// `name` must outlive the span (string literals in practice).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, TraceBuffer* buffer = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  TraceBuffer* buffer_ = nullptr;  // Null when disabled at entry.
  int64_t start_us_ = 0;
  int32_t depth_ = 0;
};

/// Microseconds since the process trace epoch (first use of the clock).
int64_t TraceNowMicros();

}  // namespace sdea::obs

#endif  // SDEA_OBS_TRACE_H_
