#ifndef SDEA_OBS_OBS_H_
#define SDEA_OBS_OBS_H_

#include <atomic>

/// sdea::obs — the process-wide observability layer: named metrics
/// (obs/registry.h), mergeable histograms (obs/histogram.h), scoped trace
/// spans (obs/trace.h), and exporters (obs/export.h).
///
/// Two kill switches:
///   * Compile time: configure with -DSDEA_OBS=OFF (defines
///     SDEA_OBS_DISABLED) and Enabled() becomes a constant false the
///     compiler folds away, so spans cost nothing at all.
///   * Run time: the SDEA_OBS_ENABLED environment variable ("0", "false",
///     "off", "no" disable; anything else — including unset — enables),
///     overridable with SetEnabled(). The disabled fast path is one
///     inlined relaxed atomic load per instrumentation site.
///
/// Metric *recording* through registry handles is not gated: those are the
/// same relaxed-atomic increments the serving stats always paid, and
/// monitoring counters must stay correct while tracing is off.
namespace sdea::obs {

#ifdef SDEA_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// True when trace instrumentation should record. Inlined so disabled
/// call sites pay a single relaxed load.
inline bool Enabled() {
  if constexpr (!kCompiledIn) return false;
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the runtime switch (no-op when compiled out). Spans already open
/// when the flag flips complete with the setting they observed at entry.
void SetEnabled(bool on);

}  // namespace sdea::obs

#endif  // SDEA_OBS_OBS_H_
