#ifndef SDEA_OBS_EXPORT_H_
#define SDEA_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace sdea::obs {

/// Multi-line human-readable rendering of a metrics snapshot: one
/// "name = value" line per counter/gauge, one summary line per histogram.
std::string TextSummary(const MetricsSnapshot& snapshot);

/// Prometheus text exposition format. Counter/gauge families with TYPE
/// comments; histograms as cumulative `_bucket{le="..."}` series plus
/// `_sum`/`_count`. Metric names are sanitized to [a-zA-Z0-9_:] with
/// other characters mapped to '_'.
std::string PrometheusText(const MetricsSnapshot& snapshot);

/// chrome://tracing "trace event format" JSON: one complete ("ph":"X")
/// event per span, with ts/dur in microseconds and the recording thread
/// as tid. Load the output via chrome://tracing or https://ui.perfetto.dev.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

/// Renders `buffer` as chrome-trace JSON and writes it atomically to
/// `path` (temp file + rename, so a crash never leaves a torn file).
Status WriteTraceJson(const TraceBuffer& buffer, const std::string& path);

/// When the SDEA_OBS_TRACE environment variable names a path, writes the
/// default trace buffer there (WriteTraceJson) and logs the destination;
/// otherwise does nothing. Returns the write status (Ok when unset).
/// Benchmarks call this at exit so `SDEA_OBS_TRACE=run.json bench_...`
/// produces an openable trace with zero code changes.
Status MaybeWriteTraceFromEnv();

}  // namespace sdea::obs

#endif  // SDEA_OBS_EXPORT_H_
