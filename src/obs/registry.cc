#include "obs/registry.h"

#include <algorithm>
#include <limits>

#include "base/check.h"

namespace sdea::obs {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

void Gauge::Add(double delta) {
  double cur = value_.load(kRelaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta, kRelaxed, kRelaxed)) {
  }
}

HistogramCell::HistogramCell(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  SDEA_CHECK(!upper_bounds_.empty());
  for (size_t i = 1; i < upper_bounds_.size(); ++i) {
    SDEA_CHECK_LT(upper_bounds_[i - 1], upper_bounds_[i]);
  }
}

void HistogramCell::Record(double v) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  counts_[static_cast<size_t>(it - upper_bounds_.begin())].fetch_add(1,
                                                                     kRelaxed);
  count_.fetch_add(1, kRelaxed);
  double cur = sum_.load(kRelaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, kRelaxed, kRelaxed)) {
  }
  cur = min_.load(kRelaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, kRelaxed, kRelaxed)) {
  }
  cur = max_.load(kRelaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, kRelaxed, kRelaxed)) {
  }
}

Histogram HistogramCell::Snapshot() const {
  std::vector<int64_t> counts(counts_.size());
  int64_t total = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts[i] = counts_[i].load(kRelaxed);
    total += counts[i];
  }
  // Aggregates are loaded after the buckets; under concurrent recording
  // they may run slightly ahead, so the bucket total is the count (keeps
  // the snapshot internally consistent: buckets always sum to count()).
  const double sum = sum_.load(kRelaxed);
  const double min = min_.load(kRelaxed);
  const double max = max_.load(kRelaxed);
  return Histogram::FromParts(upper_bounds_, std::move(counts), total,
                              total == 0 ? 0.0 : sum,
                              total == 0 ? 0.0 : min,
                              total == 0 ? 0.0 : max);
}

void HistogramCell::Reset() {
  for (auto& c : counts_) c.store(0, kRelaxed);
  count_.store(0, kRelaxed);
  sum_.store(0.0, kRelaxed);
  min_.store(std::numeric_limits<double>::infinity(), kRelaxed);
  max_.store(-std::numeric_limits<double>::infinity(), kRelaxed);
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* const kDefault = new MetricsRegistry();
  return kDefault;
}

bool MetricsRegistry::NameTaken(const std::string& name) const {
  return counters_.count(name) + gauges_.count(name) +
             histograms_.count(name) >
         0;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second.get();
  SDEA_CHECK_MSG(!NameTaken(name), "metric %s already registered as another kind",
                 name.c_str());
  return counters_.emplace(name, std::make_unique<Counter>())
      .first->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second.get();
  SDEA_CHECK_MSG(!NameTaken(name), "metric %s already registered as another kind",
                 name.c_str());
  return gauges_.emplace(name, std::make_unique<Gauge>())
      .first->second.get();
}

HistogramCell* MetricsRegistry::GetHistogram(
    const std::string& name, const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    SDEA_CHECK_MSG(it->second->upper_bounds() == upper_bounds,
                   "histogram %s re-registered with different bounds",
                   name.c_str());
    return it->second.get();
  }
  SDEA_CHECK_MSG(!NameTaken(name), "metric %s already registered as another kind",
                 name.c_str());
  return histograms_
      .emplace(name, std::make_unique<HistogramCell>(upper_bounds))
      .first->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, cell] : histograms_) {
    snap.histograms.emplace_back(name, cell->Snapshot());
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, cell] : histograms_) cell->Reset();
}

}  // namespace sdea::obs
