#include "obs/export.h"

#include <cctype>
#include <cstdlib>

#include "base/fileio.h"
#include "base/logging.h"
#include "base/strings.h"

namespace sdea::obs {
namespace {

// Prometheus metric-name alphabet; everything else becomes '_'.
std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                    c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StrFormat("\\u%04x", c));
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

std::string TextSummary(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    out += StrFormat("%s = %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += StrFormat("%s = %g\n", name.c_str(), value);
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    out += StrFormat("%s: %s\n", name.c_str(), hist.Summary().c_str());
  }
  return out;
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string n = SanitizeMetricName(name);
    out += StrFormat("# TYPE %s counter\n", n.c_str());
    out += StrFormat("%s %llu\n", n.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string n = SanitizeMetricName(name);
    out += StrFormat("# TYPE %s gauge\n", n.c_str());
    out += StrFormat("%s %g\n", n.c_str(), value);
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string n = SanitizeMetricName(name);
    out += StrFormat("# TYPE %s histogram\n", n.c_str());
    int64_t cumulative = 0;
    const auto& bounds = hist.upper_bounds();
    const auto& counts = hist.bucket_counts();
    for (size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out += StrFormat("%s_bucket{le=\"%g\"} %lld\n", n.c_str(), bounds[i],
                       static_cast<long long>(cumulative));
    }
    cumulative += counts.back();
    out += StrFormat("%s_bucket{le=\"+Inf\"} %lld\n", n.c_str(),
                     static_cast<long long>(cumulative));
    out += StrFormat("%s_sum %g\n", n.c_str(), hist.sum());
    out += StrFormat("%s_count %lld\n", n.c_str(),
                     static_cast<long long>(hist.count()));
  }
  return out;
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, event.name);
    out += StrFormat(
        "\",\"cat\":\"sdea\",\"ph\":\"X\",\"ts\":%lld,\"dur\":%lld,"
        "\"pid\":1,\"tid\":%u,\"args\":{\"depth\":%d}}",
        static_cast<long long>(event.start_us),
        static_cast<long long>(event.dur_us), event.tid, event.depth);
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status WriteTraceJson(const TraceBuffer& buffer, const std::string& path) {
  return WriteStringToFileAtomic(path, ChromeTraceJson(buffer.Events()));
}

Status MaybeWriteTraceFromEnv() {
  const char* path = std::getenv("SDEA_OBS_TRACE");
  if (path == nullptr || path[0] == '\0') return Status::Ok();
  const TraceBuffer* buffer = TraceBuffer::Default();
  const Status status = WriteTraceJson(*buffer, path);
  if (status.ok()) {
    SDEA_LOG_INFO(StrFormat(
        "obs: wrote %lld trace events (%llu dropped) to %s — open in "
        "chrome://tracing",
        static_cast<long long>(buffer->size()),
        static_cast<unsigned long long>(buffer->dropped()), path));
  } else {
    SDEA_LOG_WARNING("obs: failed to write trace: " + status.ToString());
  }
  return status;
}

}  // namespace sdea::obs
