#include "testing/fuzz.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "base/strings.h"

namespace sdea::testing {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Adversarial integers for length/count fields: the boundary values that
/// turn into 4-billion-iteration loops, overflowing `pos + len` checks, and
/// negative dimensions after an int64 cast.
constexpr uint64_t kEvilU64[] = {
    0,
    1,
    0x7FFFFFFFull,
    0x80000000ull,
    0xFFFFFFFFull,
    0x7FFFFFFFFFFFFFFFull,
    0x8000000000000000ull,
    0xFFFFFFFFFFFFFFFFull,
};
constexpr size_t kNumEvil = sizeof(kEvilU64) / sizeof(kEvilU64[0]);

void SplatLittleEndian(std::string* blob, Rng* rng, size_t width) {
  if (blob->size() < width) return;
  const size_t pos = rng->UniformInt(blob->size() - width + 1);
  uint64_t value = rng->Bernoulli(0.75)
                       ? kEvilU64[rng->UniformInt(kNumEvil)]
                       : rng->Next();
  for (size_t i = 0; i < width; ++i) {
    (*blob)[pos + i] = static_cast<char>(value & 0xFF);
    value >>= 8;
  }
}

void ApplyOneEdit(std::string* blob, Rng* rng) {
  switch (rng->UniformInt(6)) {
    case 0: {  // Flip one byte.
      if (blob->empty()) return;
      (*blob)[rng->UniformInt(blob->size())] =
          static_cast<char>(rng->UniformInt(256));
      return;
    }
    case 1:  // Corrupt a u32-sized field.
      SplatLittleEndian(blob, rng, 4);
      return;
    case 2:  // Corrupt a u64-sized field.
      SplatLittleEndian(blob, rng, 8);
      return;
    case 3: {  // Truncate.
      if (blob->empty()) return;
      blob->resize(rng->UniformInt(blob->size()));
      return;
    }
    case 4: {  // Delete a small range.
      if (blob->empty()) return;
      const size_t pos = rng->UniformInt(blob->size());
      const size_t len =
          1 + rng->UniformInt(std::min<size_t>(16, blob->size() - pos));
      blob->erase(pos, len);
      return;
    }
    default: {  // Append junk (trailing-bytes handling).
      const size_t len = 1 + rng->UniformInt(16);
      for (size_t i = 0; i < len; ++i) {
        blob->push_back(static_cast<char>(rng->UniformInt(256)));
      }
      return;
    }
  }
}

/// Runs one decode and checks the contract. `what` names the case for the
/// violation message.
Status RunCase(const std::string& bytes, const DecodeFn& decode,
               double budget_seconds, const std::string& what,
               FuzzStats* stats) {
  const auto t0 = Clock::now();
  const Status outcome = decode(bytes);
  const double elapsed = SecondsSince(t0);
  if (stats != nullptr) {
    ++stats->cases;
    if (outcome.ok()) {
      ++stats->accepted;
    } else if (outcome.code() == StatusCode::kInvalidArgument) {
      ++stats->rejected;
    }
    stats->max_case_seconds = std::max(stats->max_case_seconds, elapsed);
  }
  if (!outcome.ok() && outcome.code() != StatusCode::kInvalidArgument) {
    return Status::Internal("decoder contract violation on " + what +
                            ": expected ok() or InvalidArgument, got " +
                            outcome.ToString());
  }
  if (elapsed > budget_seconds) {
    return Status::Internal(StrFormat(
        "decoder suspected hang on %s: one case took %.1f s",
        what.c_str(), elapsed));
  }
  return Status::Ok();
}

}  // namespace

std::string MutateBlob(const std::string& blob, Rng* rng, int max_edits) {
  std::string mutated = blob;
  const int edits = 1 + static_cast<int>(rng->UniformInt(
                            static_cast<uint64_t>(std::max(max_edits, 1))));
  for (int i = 0; i < edits; ++i) ApplyOneEdit(&mutated, rng);
  return mutated;
}

Status CheckTruncationRobustness(const std::string& blob,
                                 const DecodeFn& decode, FuzzStats* stats) {
  const FuzzOptions defaults;
  for (size_t len = 0; len < blob.size(); ++len) {
    SDEA_RETURN_IF_ERROR(RunCase(
        blob.substr(0, len), decode, defaults.per_case_budget_seconds,
        StrFormat("truncation to %zu of %zu bytes", len, blob.size()),
        stats));
  }
  return Status::Ok();
}

Status CheckMutationRobustness(const std::string& blob,
                               const DecodeFn& decode,
                               const FuzzOptions& options, FuzzStats* stats) {
  Rng rng(options.seed);
  for (int64_t i = 0; i < options.iterations; ++i) {
    const std::string mutated =
        MutateBlob(blob, &rng, options.max_edits_per_case);
    SDEA_RETURN_IF_ERROR(
        RunCase(mutated, decode, options.per_case_budget_seconds,
                StrFormat("mutation case %lld (seed %llu)",
                          static_cast<long long>(i),
                          static_cast<unsigned long long>(options.seed)),
                stats));
  }
  return Status::Ok();
}

}  // namespace sdea::testing
