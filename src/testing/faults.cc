#include "testing/faults.h"

namespace sdea::testing {

FaultInjector::FaultAction CountdownFaultInjector::OnFileOp(
    FileOp op, const std::string& path) {
  FaultAction action;
  if (op != plan_.op) return action;
  if (!plan_.path_substring.empty() &&
      path.find(plan_.path_substring) == std::string::npos) {
    return action;
  }
  const int64_t index = matching_ops_++;
  const bool fire = plan_.repeat ? index >= plan_.trigger_after
                                 : index == plan_.trigger_after;
  if (!fire) return action;
  ++faults_injected_;
  action.fail = true;
  action.short_write_bytes = plan_.short_write_bytes;
  return action;
}

}  // namespace sdea::testing
