#ifndef SDEA_TESTING_FAULTS_H_
#define SDEA_TESTING_FAULTS_H_

#include <cstdint>
#include <string>

#include "base/fault_injection.h"

namespace sdea::testing {

/// Recipe for a deterministic fault: which operation to hit, on which
/// matching occurrence, and what kind of failure to simulate.
struct FaultPlan {
  /// Operation class the plan applies to; other operations pass through.
  FaultInjector::FileOp op = FaultInjector::FileOp::kWrite;

  /// Number of matching operations allowed to succeed before the fault
  /// fires (0 = the very first matching op fails).
  int64_t trigger_after = 0;

  /// When >= 0 (writes only), the failing write persists this many leading
  /// bytes first — a torn file, as a crash or ENOSPC would leave.
  int64_t short_write_bytes = -1;

  /// When true, every matching op from the trigger onward fails (a dead
  /// disk); when false, only the one op fails and the rest succeed.
  bool repeat = false;

  /// When non-empty, only operations whose path contains this substring
  /// count as matching — lets a test break checkpoint writes while the
  /// rest of the filesystem stays healthy.
  std::string path_substring;
};

/// Fault injector driven by one FaultPlan. Deterministic by construction:
/// the i-th matching operation fails, independent of timing. Counts what it
/// saw so tests can assert the fault actually fired.
class CountdownFaultInjector : public FaultInjector {
 public:
  explicit CountdownFaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  FaultAction OnFileOp(FileOp op, const std::string& path) override;

  /// Operations that matched the plan's op/path filter so far.
  int64_t matching_ops() const { return matching_ops_; }

  /// Faults actually injected so far.
  int64_t faults_injected() const { return faults_injected_; }

 private:
  FaultPlan plan_;
  int64_t matching_ops_ = 0;
  int64_t faults_injected_ = 0;
};

}  // namespace sdea::testing

#endif  // SDEA_TESTING_FAULTS_H_
