#ifndef SDEA_TESTING_FUZZ_H_
#define SDEA_TESTING_FUZZ_H_

#include <cstdint>
#include <functional>
#include <string>

#include "base/rng.h"
#include "base/status.h"

namespace sdea::testing {

/// A binary decoder under test: parses `blob` and reports how it went.
/// Decoders that produce a value wrap it, e.g.
///   [](const std::string& b) { return kg::DecodeBinary(b).status(); }
using DecodeFn = std::function<Status(const std::string&)>;

/// The decoder robustness contract (DESIGN.md §8): on *arbitrary* bytes a
/// decoder must return ok() or InvalidArgument — any other code, any crash,
/// any hang, or any unbounded allocation is a bug. IoError is reserved for
/// the filesystem layer and must never leak out of a pure blob decoder.
struct FuzzOptions {
  int64_t iterations = 5000;    ///< Mutated cases to replay.
  uint64_t seed = 0x5dea;       ///< base::Rng seed; same seed, same cases.
  int max_edits_per_case = 8;   ///< Mutations applied per case (1..max).
  /// A single decode taking longer than this is reported as a suspected
  /// hang (e.g. a corrupt 4-billion count spinning failed reads). Generous
  /// on purpose: sanitizer builds are slow.
  double per_case_budget_seconds = 5.0;
};

/// Aggregate outcome counts, for logging and for asserting the corpus
/// actually exercised both accept and reject paths.
struct FuzzStats {
  int64_t cases = 0;
  int64_t accepted = 0;         ///< Decoder returned ok().
  int64_t rejected = 0;         ///< Decoder returned InvalidArgument.
  double max_case_seconds = 0.0;
};

/// Applies 1..max_edits seeded mutations to a copy of `blob`: byte flips,
/// 4/8-byte little-endian splats of adversarial values (0, 1, all-ones,
/// sign-boundary — the ones that become huge counts and overflowing length
/// fields), truncations, deletions, and appends.
std::string MutateBlob(const std::string& blob, Rng* rng, int max_edits);

/// Replays `decode` on every strict prefix of `blob` (truncation at every
/// offset, including empty). Returns Ok when every outcome honours the
/// contract; otherwise an Internal status describing the first violating
/// prefix. The full blob itself is not replayed (callers assert it decodes
/// ok separately).
Status CheckTruncationRobustness(const std::string& blob,
                                 const DecodeFn& decode,
                                 FuzzStats* stats = nullptr);

/// Replays `decode` on options.iterations seeded mutations of `blob`.
/// Returns Ok when every outcome honours the contract; otherwise an
/// Internal status carrying the case's seed index so it can be replayed.
Status CheckMutationRobustness(const std::string& blob,
                               const DecodeFn& decode,
                               const FuzzOptions& options = {},
                               FuzzStats* stats = nullptr);

}  // namespace sdea::testing

#endif  // SDEA_TESTING_FUZZ_H_
