#ifndef SDEA_NN_MODULE_H_
#define SDEA_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/graph.h"

namespace sdea::nn {

/// Base class for neural-network building blocks. A Module owns its
/// Parameters; composite modules register sub-modules so that
/// `Parameters()` yields the full trainable set in a stable order.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and (recursively) its sub-modules, in
  /// registration order.
  std::vector<Parameter*> Parameters();

  /// Zeroes gradients of all parameters.
  void ZeroGrad();

  /// Total number of scalar weights.
  int64_t NumWeights();

 protected:
  /// Creates and owns a parameter initialized to `value`.
  Parameter* AddParameter(const std::string& name, Tensor value);

  /// Registers a sub-module (not owned) whose parameters are exposed through
  /// this module. The sub-module must outlive this module.
  void AddSubmodule(Module* submodule);

 private:
  std::vector<std::unique_ptr<Parameter>> params_;
  std::vector<Module*> submodules_;
};

}  // namespace sdea::nn

#endif  // SDEA_NN_MODULE_H_
