#include "nn/module.h"

namespace sdea::nn {

std::vector<Parameter*> Module::Parameters() {
  std::vector<Parameter*> out;
  for (auto& p : params_) out.push_back(p.get());
  for (Module* m : submodules_) {
    for (Parameter* p : m->Parameters()) out.push_back(p);
  }
  return out;
}

void Module::ZeroGrad() {
  for (Parameter* p : Parameters()) p->ZeroGrad();
}

int64_t Module::NumWeights() {
  int64_t n = 0;
  for (Parameter* p : Parameters()) n += p->value.size();
  return n;
}

Parameter* Module::AddParameter(const std::string& name, Tensor value) {
  params_.push_back(std::make_unique<Parameter>(name, std::move(value)));
  return params_.back().get();
}

void Module::AddSubmodule(Module* submodule) {
  SDEA_CHECK(submodule != nullptr);
  submodules_.push_back(submodule);
}

}  // namespace sdea::nn
