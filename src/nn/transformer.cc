#include "nn/transformer.h"

namespace sdea::nn {

TransformerEncoderLayer::TransformerEncoderLayer(
    const std::string& name, const TransformerConfig& config, Rng* rng)
    : dropout_(config.dropout) {
  attention_ = std::make_unique<MultiHeadAttention>(
      name + ".attn", config.dim, config.num_heads, rng);
  norm1_ = std::make_unique<LayerNorm>(name + ".norm1", config.dim);
  ff1_ = std::make_unique<Linear>(name + ".ff1", config.dim, config.ff_dim,
                                  rng);
  ff2_ = std::make_unique<Linear>(name + ".ff2", config.ff_dim, config.dim,
                                  rng);
  norm2_ = std::make_unique<LayerNorm>(name + ".norm2", config.dim);
  AddSubmodule(attention_.get());
  AddSubmodule(norm1_.get());
  AddSubmodule(ff1_.get());
  AddSubmodule(ff2_.get());
  AddSubmodule(norm2_.get());
}

NodeId TransformerEncoderLayer::Forward(Graph* g, NodeId x, bool training,
                                        Rng* rng) const {
  NodeId attn = attention_->Forward(g, x);
  attn = g->Dropout(attn, dropout_, training, rng);
  NodeId h = norm1_->Forward(g, g->Add(x, attn));
  NodeId ff = ff2_->Forward(g, g->Relu(ff1_->Forward(g, h)));
  ff = g->Dropout(ff, dropout_, training, rng);
  return norm2_->Forward(g, g->Add(h, ff));
}

TransformerEncoder::TransformerEncoder(const std::string& name,
                                       const TransformerConfig& config,
                                       Rng* rng)
    : config_(config) {
  SDEA_CHECK_GT(config.vocab_size, 0);
  token_embedding_ = std::make_unique<Embedding>(
      name + ".tok", config.vocab_size, config.dim, rng);
  position_embedding_ = std::make_unique<Embedding>(
      name + ".pos", config.max_len, config.dim, rng);
  input_norm_ = std::make_unique<LayerNorm>(name + ".in_norm", config.dim);
  AddSubmodule(token_embedding_.get());
  AddSubmodule(position_embedding_.get());
  AddSubmodule(input_norm_.get());
  for (int64_t i = 0; i < config.num_layers; ++i) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(
        name + ".layer" + std::to_string(i), config, rng));
    AddSubmodule(layers_.back().get());
  }
}

NodeId TransformerEncoder::EncodeSequence(
    Graph* g, const std::vector<int64_t>& token_ids, bool training,
    Rng* rng) const {
  SDEA_CHECK(!token_ids.empty());
  SDEA_CHECK_LE(static_cast<int64_t>(token_ids.size()), config_.max_len);
  std::vector<int64_t> positions(token_ids.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    positions[i] = static_cast<int64_t>(i);
  }
  NodeId tok = token_embedding_->Forward(g, token_ids);
  NodeId pos = position_embedding_->Forward(g, positions);
  NodeId h = input_norm_->Forward(g, g->Add(tok, pos));
  for (const auto& layer : layers_) {
    h = layer->Forward(g, h, training, rng);
  }
  return h;
}

NodeId TransformerEncoder::EncodeCls(Graph* g,
                                     const std::vector<int64_t>& token_ids,
                                     bool training, Rng* rng) const {
  NodeId h = EncodeSequence(g, token_ids, training, rng);
  return g->SliceRows(h, 0, 1);
}

NodeId TransformerEncoder::EncodeMean(Graph* g,
                                      const std::vector<int64_t>& token_ids,
                                      bool training, Rng* rng) const {
  NodeId h = EncodeSequence(g, token_ids, training, rng);
  return g->MeanRows(h);
}

}  // namespace sdea::nn
