#ifndef SDEA_NN_SERIALIZATION_H_
#define SDEA_NN_SERIALIZATION_H_

#include <string>

#include "base/status.h"
#include "nn/module.h"

namespace sdea::nn {

// ---- Wire helpers ---------------------------------------------------------
// Little building blocks of the checkpoint format, shared by parameter
// blobs, optimizer state, and the train::CheckpointManager envelope.

/// Appends a little-endian u64.
void AppendU64(std::string* out, uint64_t v);

/// Reads a u64 written by AppendU64; false on truncation.
bool ReadU64(const std::string& in, size_t* pos, uint64_t* v);

/// Appends an IEEE-754 double, byte-identical round trip.
void AppendF64(std::string* out, double v);

/// Reads a double written by AppendF64; false on truncation.
bool ReadF64(const std::string& in, size_t* pos, double* v);

/// Appends a length-prefixed byte string.
void AppendBytes(std::string* out, const std::string& bytes);

/// Reads a byte string written by AppendBytes; false on truncation.
bool ReadBytes(const std::string& in, size_t* pos, std::string* bytes);

/// Appends shape + float32 data; round-trips tensors bitwise.
void AppendTensor(std::string* out, const Tensor& t);

/// Reads a tensor written by AppendTensor; false on truncation/bad rank.
bool ReadTensor(const std::string& in, size_t* pos, Tensor* t);

// ---- Parameter blobs ------------------------------------------------------

/// Serializes all parameters of `module` into the binary checkpoint blob:
/// magic, count, then per parameter: name, shape, float32 data.
std::string SerializeParameters(Module* module);

/// Restores parameters by name from a blob written by SerializeParameters.
/// The whole blob is validated against the module *before* any parameter is
/// touched, so a failed load never leaves the module partially overwritten:
/// a parameter name absent from the blob or present with a mismatched shape
/// yields InvalidArgument and the module keeps its previous values. Extra
/// entries in the blob are ignored (forward compatibility).
Status DeserializeParameters(Module* module, const std::string& blob);

/// Writes SerializeParameters(module) to a file at `path` atomically
/// (temp file + rename): a crash mid-save leaves any previous checkpoint
/// intact, never a torn one.
Status SaveCheckpoint(Module* module, const std::string& path);

/// Reads `path` and applies DeserializeParameters (same strictness).
Status LoadCheckpoint(Module* module, const std::string& path);

}  // namespace sdea::nn

#endif  // SDEA_NN_SERIALIZATION_H_
