#ifndef SDEA_NN_SERIALIZATION_H_
#define SDEA_NN_SERIALIZATION_H_

#include <string>

#include "base/status.h"
#include "nn/module.h"

namespace sdea::nn {

/// Writes all parameters of `module` to a binary checkpoint at `path`.
/// Format: magic, count, then per parameter: name, shape, float32 data.
Status SaveCheckpoint(Module* module, const std::string& path);

/// Restores parameters by name from a checkpoint written by SaveCheckpoint.
/// Fails if any parameter of `module` is missing from the file or has a
/// mismatched shape. Extra entries in the file are ignored.
Status LoadCheckpoint(Module* module, const std::string& path);

}  // namespace sdea::nn

#endif  // SDEA_NN_SERIALIZATION_H_
