#ifndef SDEA_NN_LAYERS_H_
#define SDEA_NN_LAYERS_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace sdea::nn {

/// Fully-connected layer: y = x @ W + b, x: [m, in] -> y: [m, out].
class Linear : public Module {
 public:
  Linear(const std::string& name, int64_t in_dim, int64_t out_dim, Rng* rng);

  NodeId Forward(Graph* g, NodeId x) const;

  int64_t in_dim() const { return in_dim_; }
  int64_t out_dim() const { return out_dim_; }

 private:
  int64_t in_dim_;
  int64_t out_dim_;
  Parameter* weight_;  // [in, out]
  Parameter* bias_;    // [out]
};

/// Lookup table mapping integer ids to dense rows.
class Embedding : public Module {
 public:
  Embedding(const std::string& name, int64_t vocab_size, int64_t dim,
            Rng* rng);

  /// ids -> [ids.size(), dim].
  NodeId Forward(Graph* g, const std::vector<int64_t>& ids) const;

  /// Direct (no-autograd) read of one row, for inference fast paths.
  Tensor Lookup(int64_t id) const;

  /// Overwrites row `id` (used to inject pre-trained vectors).
  void SetRow(int64_t id, const Tensor& row);

  int64_t vocab_size() const { return vocab_size_; }
  int64_t dim() const { return dim_; }
  Parameter* table() { return table_; }

 private:
  int64_t vocab_size_;
  int64_t dim_;
  Parameter* table_;  // [vocab, dim]
};

/// Per-row layer normalization with learned affine transform.
class LayerNorm : public Module {
 public:
  LayerNorm(const std::string& name, int64_t dim);

  NodeId Forward(Graph* g, NodeId x) const;

 private:
  Parameter* gain_;  // [dim], init 1
  Parameter* bias_;  // [dim], init 0
};

/// Supported MLP activations.
enum class Activation { kRelu, kTanh, kSigmoid, kNone };

/// Multi-layer perceptron: a stack of Linear layers with an activation
/// between layers (none after the last).
class Mlp : public Module {
 public:
  /// `dims` is [in, hidden..., out]; requires dims.size() >= 2.
  Mlp(const std::string& name, const std::vector<int64_t>& dims,
      Activation activation, Rng* rng);

  NodeId Forward(Graph* g, NodeId x) const;

  int64_t in_dim() const { return layers_.front()->in_dim(); }
  int64_t out_dim() const { return layers_.back()->out_dim(); }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation activation_;
};

}  // namespace sdea::nn

#endif  // SDEA_NN_LAYERS_H_
