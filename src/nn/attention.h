#ifndef SDEA_NN_ATTENTION_H_
#define SDEA_NN_ATTENTION_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"

namespace sdea::nn {

/// Multi-head scaled dot-product self-attention over a [T, dim] sequence.
/// Sequences are built exact-length by the callers, so no padding mask is
/// needed.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(const std::string& name, int64_t dim, int64_t num_heads,
                     Rng* rng);

  /// x: [T, dim] -> [T, dim].
  NodeId Forward(Graph* g, NodeId x) const;

  int64_t dim() const { return dim_; }
  int64_t num_heads() const { return num_heads_; }

 private:
  int64_t dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  std::unique_ptr<Linear> wq_;
  std::unique_ptr<Linear> wk_;
  std::unique_ptr<Linear> wv_;
  std::unique_ptr<Linear> wo_;
};

}  // namespace sdea::nn

#endif  // SDEA_NN_ATTENTION_H_
