#include "nn/layers.h"

#include <cmath>

namespace sdea::nn {

Linear::Linear(const std::string& name, int64_t in_dim, int64_t out_dim,
               Rng* rng)
    : in_dim_(in_dim), out_dim_(out_dim) {
  SDEA_CHECK_GT(in_dim, 0);
  SDEA_CHECK_GT(out_dim, 0);
  // Glorot-uniform initialization.
  const float limit = std::sqrt(6.0f / static_cast<float>(in_dim + out_dim));
  weight_ = AddParameter(name + ".weight",
                         Tensor::RandomUniform({in_dim, out_dim}, limit, rng));
  bias_ = AddParameter(name + ".bias", Tensor({out_dim}));
}

NodeId Linear::Forward(Graph* g, NodeId x) const {
  NodeId w = g->Param(weight_);
  NodeId b = g->Param(bias_);
  return g->AddRowBroadcast(g->Matmul(x, w), b);
}

Embedding::Embedding(const std::string& name, int64_t vocab_size, int64_t dim,
                     Rng* rng)
    : vocab_size_(vocab_size), dim_(dim) {
  SDEA_CHECK_GT(vocab_size, 0);
  SDEA_CHECK_GT(dim, 0);
  table_ = AddParameter(
      name + ".table",
      Tensor::RandomNormal({vocab_size, dim},
                           1.0f / std::sqrt(static_cast<float>(dim)), rng));
}

NodeId Embedding::Forward(Graph* g, const std::vector<int64_t>& ids) const {
  return g->Gather(g->Param(table_), ids);
}

Tensor Embedding::Lookup(int64_t id) const { return table_->value.Row(id); }

void Embedding::SetRow(int64_t id, const Tensor& row) {
  table_->value.SetRow(id, row);
}

LayerNorm::LayerNorm(const std::string& name, int64_t dim) {
  SDEA_CHECK_GT(dim, 0);
  gain_ = AddParameter(name + ".gain", Tensor({dim}, 1.0f));
  bias_ = AddParameter(name + ".bias", Tensor({dim}));
}

NodeId LayerNorm::Forward(Graph* g, NodeId x) const {
  return g->LayerNormRows(x, g->Param(gain_), g->Param(bias_));
}

namespace {

NodeId ApplyActivation(Graph* g, NodeId x, Activation act) {
  switch (act) {
    case Activation::kRelu:
      return g->Relu(x);
    case Activation::kTanh:
      return g->Tanh(x);
    case Activation::kSigmoid:
      return g->Sigmoid(x);
    case Activation::kNone:
      return x;
  }
  return x;
}

}  // namespace

Mlp::Mlp(const std::string& name, const std::vector<int64_t>& dims,
         Activation activation, Rng* rng)
    : activation_(activation) {
  SDEA_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(
        name + ".layer" + std::to_string(i), dims[i], dims[i + 1], rng));
    AddSubmodule(layers_.back().get());
  }
}

NodeId Mlp::Forward(Graph* g, NodeId x) const {
  NodeId h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(g, h);
    if (i + 1 < layers_.size()) h = ApplyActivation(g, h, activation_);
  }
  return h;
}

}  // namespace sdea::nn
