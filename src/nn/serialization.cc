#include "nn/serialization.h"

#include <cstring>
#include <map>

#include "base/fileio.h"

namespace sdea::nn {
namespace {

constexpr char kMagic[8] = {'S', 'D', 'E', 'A', 'C', 'K', 'P', '1'};

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool ReadU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

}  // namespace

Status SaveCheckpoint(Module* module, const std::string& path) {
  std::vector<Parameter*> params = module->Parameters();
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendU64(&out, params.size());
  for (Parameter* p : params) {
    AppendU64(&out, p->name.size());
    out.append(p->name);
    AppendU64(&out, p->value.shape().size());
    for (int64_t d : p->value.shape()) {
      AppendU64(&out, static_cast<uint64_t>(d));
    }
    const size_t bytes = static_cast<size_t>(p->value.size()) * sizeof(float);
    out.append(reinterpret_cast<const char*>(p->value.data()), bytes);
  }
  return WriteStringToFile(path, out);
}

Status LoadCheckpoint(Module* module, const std::string& path) {
  SDEA_ASSIGN_OR_RETURN(std::string in, ReadFileToString(path));
  if (in.size() < sizeof(kMagic) ||
      std::memcmp(in.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an SDEA checkpoint: " + path);
  }
  size_t pos = sizeof(kMagic);
  uint64_t count = 0;
  if (!ReadU64(in, &pos, &count)) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  // Parse every entry into (shape, data-offset) keyed by name.
  struct Entry {
    std::vector<int64_t> shape;
    size_t data_offset;
    int64_t num_elements;
  };
  std::map<std::string, Entry> entries;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!ReadU64(in, &pos, &name_len) || pos + name_len > in.size()) {
      return Status::InvalidArgument("truncated checkpoint entry name");
    }
    std::string name = in.substr(pos, name_len);
    pos += name_len;
    uint64_t rank = 0;
    if (!ReadU64(in, &pos, &rank) || rank > 8) {
      return Status::InvalidArgument("bad checkpoint entry rank");
    }
    Entry e;
    e.num_elements = 1;
    for (uint64_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!ReadU64(in, &pos, &dim)) {
        return Status::InvalidArgument("truncated checkpoint shape");
      }
      e.shape.push_back(static_cast<int64_t>(dim));
      e.num_elements *= static_cast<int64_t>(dim);
    }
    e.data_offset = pos;
    const size_t bytes =
        static_cast<size_t>(e.num_elements) * sizeof(float);
    if (pos + bytes > in.size()) {
      return Status::InvalidArgument("truncated checkpoint data");
    }
    pos += bytes;
    entries[std::move(name)] = std::move(e);
  }
  for (Parameter* p : module->Parameters()) {
    auto it = entries.find(p->name);
    if (it == entries.end()) {
      return Status::NotFound("checkpoint missing parameter: " + p->name);
    }
    const Entry& e = it->second;
    if (e.shape != p->value.shape()) {
      return Status::InvalidArgument("shape mismatch for parameter: " +
                                     p->name);
    }
    std::memcpy(p->value.data(), in.data() + e.data_offset,
                static_cast<size_t>(e.num_elements) * sizeof(float));
  }
  return Status::Ok();
}

}  // namespace sdea::nn
