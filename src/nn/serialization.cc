#include "nn/serialization.h"

#include <cstring>
#include <map>

#include "base/fileio.h"

namespace sdea::nn {
namespace {

constexpr char kMagic[8] = {'S', 'D', 'E', 'A', 'C', 'K', 'P', '1'};

}  // namespace

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool ReadU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

void AppendF64(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool ReadF64(const std::string& in, size_t* pos, double* v) {
  if (*pos + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

void AppendBytes(std::string* out, const std::string& bytes) {
  AppendU64(out, bytes.size());
  out->append(bytes);
}

bool ReadBytes(const std::string& in, size_t* pos, std::string* bytes) {
  uint64_t len = 0;
  if (!ReadU64(in, pos, &len) || *pos + len > in.size()) return false;
  bytes->assign(in.data() + *pos, len);
  *pos += len;
  return true;
}

void AppendTensor(std::string* out, const Tensor& t) {
  AppendU64(out, t.shape().size());
  for (int64_t d : t.shape()) AppendU64(out, static_cast<uint64_t>(d));
  out->append(reinterpret_cast<const char*>(t.data()),
              static_cast<size_t>(t.size()) * sizeof(float));
}

bool ReadTensor(const std::string& in, size_t* pos, Tensor* t) {
  uint64_t rank = 0;
  if (!ReadU64(in, pos, &rank) || rank > 8) return false;
  std::vector<int64_t> shape;
  int64_t elements = 1;
  for (uint64_t d = 0; d < rank; ++d) {
    uint64_t dim = 0;
    if (!ReadU64(in, pos, &dim)) return false;
    shape.push_back(static_cast<int64_t>(dim));
    elements *= static_cast<int64_t>(dim);
  }
  const size_t bytes = static_cast<size_t>(elements) * sizeof(float);
  if (*pos + bytes > in.size()) return false;
  Tensor out(shape);
  std::memcpy(out.data(), in.data() + *pos, bytes);
  *pos += bytes;
  *t = std::move(out);
  return true;
}

std::string SerializeParameters(Module* module) {
  std::vector<Parameter*> params = module->Parameters();
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendU64(&out, params.size());
  for (Parameter* p : params) {
    AppendU64(&out, p->name.size());
    out.append(p->name);
    AppendTensor(&out, p->value);
  }
  return out;
}

Status DeserializeParameters(Module* module, const std::string& in) {
  if (in.size() < sizeof(kMagic) ||
      std::memcmp(in.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an SDEA parameter checkpoint");
  }
  size_t pos = sizeof(kMagic);
  uint64_t count = 0;
  if (!ReadU64(in, &pos, &count)) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  // Pass 1: parse every entry into (shape, data-offset) keyed by name.
  struct Entry {
    std::vector<int64_t> shape;
    size_t data_offset;
    int64_t num_elements;
  };
  std::map<std::string, Entry> entries;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!ReadU64(in, &pos, &name_len) || pos + name_len > in.size()) {
      return Status::InvalidArgument("truncated checkpoint entry name");
    }
    std::string name = in.substr(pos, name_len);
    pos += name_len;
    uint64_t rank = 0;
    if (!ReadU64(in, &pos, &rank) || rank > 8) {
      return Status::InvalidArgument("bad checkpoint entry rank");
    }
    Entry e;
    e.num_elements = 1;
    for (uint64_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!ReadU64(in, &pos, &dim)) {
        return Status::InvalidArgument("truncated checkpoint shape");
      }
      e.shape.push_back(static_cast<int64_t>(dim));
      e.num_elements *= static_cast<int64_t>(dim);
    }
    e.data_offset = pos;
    const size_t bytes =
        static_cast<size_t>(e.num_elements) * sizeof(float);
    if (pos + bytes > in.size()) {
      return Status::InvalidArgument("truncated checkpoint data");
    }
    pos += bytes;
    entries[std::move(name)] = std::move(e);
  }
  // Pass 2: validate every module parameter against the blob before any
  // copy, so a bad checkpoint cannot leave the module half-loaded.
  std::vector<Parameter*> params = module->Parameters();
  for (Parameter* p : params) {
    auto it = entries.find(p->name);
    if (it == entries.end()) {
      return Status::InvalidArgument(
          "checkpoint has no entry for parameter '" + p->name +
          "' (unknown or missing name); no parameters were modified");
    }
    if (it->second.shape != p->value.shape()) {
      return Status::InvalidArgument(
          "checkpoint shape mismatch for parameter '" + p->name +
          "'; no parameters were modified");
    }
  }
  // Pass 3: all-or-nothing copy.
  for (Parameter* p : params) {
    const Entry& e = entries.find(p->name)->second;
    std::memcpy(p->value.data(), in.data() + e.data_offset,
                static_cast<size_t>(e.num_elements) * sizeof(float));
  }
  return Status::Ok();
}

Status SaveCheckpoint(Module* module, const std::string& path) {
  return WriteStringToFileAtomic(path, SerializeParameters(module));
}

Status LoadCheckpoint(Module* module, const std::string& path) {
  SDEA_ASSIGN_OR_RETURN(std::string in, ReadFileToString(path));
  Status s = DeserializeParameters(module, in);
  if (!s.ok()) {
    return Status(s.code(), s.message() + " (checkpoint: " + path + ")");
  }
  return Status::Ok();
}

}  // namespace sdea::nn
