#include "nn/serialization.h"

#include <cstring>
#include <limits>
#include <map>

#include "base/fileio.h"

namespace sdea::nn {
namespace {

constexpr char kMagic[8] = {'S', 'D', 'E', 'A', 'C', 'K', 'P', '1'};

/// Validates one shape dimension and folds it into the running element
/// count, rejecting anything that could not fit in `max_elements` (derived
/// from the bytes actually left in the blob). Written so neither the
/// product nor the later int64 cast can overflow: a corrupt dim can be
/// all-ones or sign-boundary and still fail cleanly.
bool AccumulateDim(uint64_t dim, uint64_t max_elements, uint64_t* elements) {
  if (dim > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return false;  // Would become a negative tensor dimension.
  }
  if (dim != 0 && *elements > max_elements / dim) {
    return false;  // Product exceeds what the blob could possibly hold.
  }
  *elements *= dim;
  return true;
}

}  // namespace

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool ReadU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos > in.size() || in.size() - *pos < 8) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

void AppendF64(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool ReadF64(const std::string& in, size_t* pos, double* v) {
  if (*pos > in.size() || in.size() - *pos < 8) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

void AppendBytes(std::string* out, const std::string& bytes) {
  AppendU64(out, bytes.size());
  out->append(bytes);
}

bool ReadBytes(const std::string& in, size_t* pos, std::string* bytes) {
  uint64_t len = 0;
  // Budget comparison, not `*pos + len`: an all-ones len would wrap the
  // sum, pass the old check, and throw length_error out of assign().
  if (!ReadU64(in, pos, &len) || len > in.size() - *pos) return false;
  bytes->assign(in.data() + *pos, len);
  *pos += len;
  return true;
}

void AppendTensor(std::string* out, const Tensor& t) {
  AppendU64(out, t.shape().size());
  for (int64_t d : t.shape()) AppendU64(out, static_cast<uint64_t>(d));
  out->append(reinterpret_cast<const char*>(t.data()),
              static_cast<size_t>(t.size()) * sizeof(float));
}

bool ReadTensor(const std::string& in, size_t* pos, Tensor* t) {
  uint64_t rank = 0;
  if (!ReadU64(in, pos, &rank) || rank > 8) return false;
  const uint64_t max_elements = (in.size() - *pos) / sizeof(float);
  std::vector<int64_t> shape;
  uint64_t elements = 1;
  for (uint64_t d = 0; d < rank; ++d) {
    uint64_t dim = 0;
    if (!ReadU64(in, pos, &dim)) return false;
    if (!AccumulateDim(dim, max_elements, &elements)) return false;
    shape.push_back(static_cast<int64_t>(dim));
  }
  const size_t bytes = static_cast<size_t>(elements) * sizeof(float);
  if (bytes > in.size() - *pos) return false;
  Tensor out(std::move(shape));
  // A zero-element tensor (any dim 0) has a null data(); memcpy forbids
  // null arguments even for 0 bytes.
  if (bytes > 0) std::memcpy(out.data(), in.data() + *pos, bytes);
  *pos += bytes;
  *t = std::move(out);
  return true;
}

std::string SerializeParameters(Module* module) {
  std::vector<Parameter*> params = module->Parameters();
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendU64(&out, params.size());
  for (Parameter* p : params) {
    AppendU64(&out, p->name.size());
    out.append(p->name);
    AppendTensor(&out, p->value);
  }
  return out;
}

Status DeserializeParameters(Module* module, const std::string& in) {
  if (in.size() < sizeof(kMagic) ||
      std::memcmp(in.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an SDEA parameter checkpoint");
  }
  size_t pos = sizeof(kMagic);
  uint64_t count = 0;
  if (!ReadU64(in, &pos, &count)) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  // Each entry costs at least 16 bytes (name length + rank), so a count
  // beyond this bound is corrupt; reject it before looping rather than
  // grinding through billions of failed parses.
  if (count > (in.size() - pos) / 16) {
    return Status::InvalidArgument("checkpoint entry count exceeds blob size");
  }
  // Pass 1: parse every entry into (shape, data-offset) keyed by name.
  struct Entry {
    std::vector<int64_t> shape;
    size_t data_offset;
    int64_t num_elements;
  };
  std::map<std::string, Entry> entries;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!ReadU64(in, &pos, &name_len) || name_len > in.size() - pos) {
      return Status::InvalidArgument("truncated checkpoint entry name");
    }
    std::string name = in.substr(pos, name_len);
    pos += name_len;
    uint64_t rank = 0;
    if (!ReadU64(in, &pos, &rank) || rank > 8) {
      return Status::InvalidArgument("bad checkpoint entry rank");
    }
    const uint64_t max_elements = (in.size() - pos) / sizeof(float);
    Entry e;
    uint64_t elements = 1;
    for (uint64_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      if (!ReadU64(in, &pos, &dim)) {
        return Status::InvalidArgument("truncated checkpoint shape");
      }
      if (!AccumulateDim(dim, max_elements, &elements)) {
        return Status::InvalidArgument("bad checkpoint entry shape");
      }
      e.shape.push_back(static_cast<int64_t>(dim));
    }
    e.num_elements = static_cast<int64_t>(elements);
    e.data_offset = pos;
    const size_t bytes = static_cast<size_t>(elements) * sizeof(float);
    if (bytes > in.size() - pos) {
      return Status::InvalidArgument("truncated checkpoint data");
    }
    pos += bytes;
    entries[std::move(name)] = std::move(e);
  }
  // Pass 2: validate every module parameter against the blob before any
  // copy, so a bad checkpoint cannot leave the module half-loaded.
  std::vector<Parameter*> params = module->Parameters();
  for (Parameter* p : params) {
    auto it = entries.find(p->name);
    if (it == entries.end()) {
      return Status::InvalidArgument(
          "checkpoint has no entry for parameter '" + p->name +
          "' (unknown or missing name); no parameters were modified");
    }
    if (it->second.shape != p->value.shape()) {
      return Status::InvalidArgument(
          "checkpoint shape mismatch for parameter '" + p->name +
          "'; no parameters were modified");
    }
  }
  // Pass 3: all-or-nothing copy.
  for (Parameter* p : params) {
    const Entry& e = entries.find(p->name)->second;
    std::memcpy(p->value.data(), in.data() + e.data_offset,
                static_cast<size_t>(e.num_elements) * sizeof(float));
  }
  return Status::Ok();
}

Status SaveCheckpoint(Module* module, const std::string& path) {
  return WriteStringToFileAtomic(path, SerializeParameters(module));
}

Status LoadCheckpoint(Module* module, const std::string& path) {
  SDEA_ASSIGN_OR_RETURN(std::string in, ReadFileToString(path));
  Status s = DeserializeParameters(module, in);
  if (!s.ok()) {
    return Status(s.code(), s.message() + " (checkpoint: " + path + ")");
  }
  return Status::Ok();
}

}  // namespace sdea::nn
