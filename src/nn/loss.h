#ifndef SDEA_NN_LOSS_H_
#define SDEA_NN_LOSS_H_

#include "tensor/graph.h"

namespace sdea::nn {

/// Per-row squared L2 distance between [B,d] `a` and [B,d] `b` -> [B,1].
NodeId RowSquaredL2Distance(Graph* g, NodeId a, NodeId b);

/// The paper's margin-based ranking loss (Eq. 18) over a batch of triplets:
///   mean_i max(0, rho(anchor_i, pos_i) - rho(anchor_i, neg_i) + margin)
/// where rho is the L2 distance. `anchor`, `positive`, `negative` are
/// [B, d] embedding matrices; returns a scalar node.
NodeId MarginRankingLoss(Graph* g, NodeId anchor, NodeId positive,
                         NodeId negative, float margin);

}  // namespace sdea::nn

#endif  // SDEA_NN_LOSS_H_
