#ifndef SDEA_NN_GRU_H_
#define SDEA_NN_GRU_H_

#include <memory>
#include <string>

#include "nn/module.h"

namespace sdea::nn {

/// A gated recurrent unit cell implementing the paper's Eqs. (8)-(11):
///   r_t = sigmoid(Wr x_t + Ur h_{t-1} + br)          (reset gate)
///   h~_t = tanh(Wh x_t + Uh (r_t . h_{t-1}) + bh)    (candidate state)
///   z_t = sigmoid(Wz x_t + Uz h_{t-1} + bz)          (update gate)
///   h_t = (1 - z_t) . h_{t-1} + z_t . h~_t
class GruCell : public Module {
 public:
  GruCell(const std::string& name, int64_t input_dim, int64_t hidden_dim,
          Rng* rng);

  /// One step: x [1, input_dim], h_prev [1, hidden_dim] -> [1, hidden_dim].
  NodeId Step(Graph* g, NodeId x, NodeId h_prev) const;

  int64_t input_dim() const { return input_dim_; }
  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t input_dim_;
  int64_t hidden_dim_;
  Parameter* wr_;
  Parameter* ur_;
  Parameter* br_;
  Parameter* wz_;
  Parameter* uz_;
  Parameter* bz_;
  Parameter* wh_;
  Parameter* uh_;
  Parameter* bh_;
};

/// Unidirectional GRU over a [T, input_dim] sequence, producing all hidden
/// states [T, hidden_dim]. The initial state is zero.
class Gru : public Module {
 public:
  Gru(const std::string& name, int64_t input_dim, int64_t hidden_dim,
      Rng* rng);

  /// If `reverse` is true the sequence is processed back-to-front and the
  /// output rows are returned in the original order.
  NodeId Forward(Graph* g, NodeId x, bool reverse = false) const;

  int64_t hidden_dim() const { return cell_->hidden_dim(); }

 private:
  std::unique_ptr<GruCell> cell_;
};

/// Bidirectional GRU whose per-step output is the SUM of the forward and
/// backward hidden states (as specified in the paper, Section III-B1).
class BiGru : public Module {
 public:
  BiGru(const std::string& name, int64_t input_dim, int64_t hidden_dim,
        Rng* rng);

  /// x: [T, input_dim] -> [T, hidden_dim].
  NodeId Forward(Graph* g, NodeId x) const;

  int64_t hidden_dim() const { return forward_->hidden_dim(); }

 private:
  std::unique_ptr<Gru> forward_;
  std::unique_ptr<Gru> backward_;
};

}  // namespace sdea::nn

#endif  // SDEA_NN_GRU_H_
