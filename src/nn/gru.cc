#include "nn/gru.h"

#include <cmath>

namespace sdea::nn {

GruCell::GruCell(const std::string& name, int64_t input_dim,
                 int64_t hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  SDEA_CHECK_GT(input_dim, 0);
  SDEA_CHECK_GT(hidden_dim, 0);
  const float wl = std::sqrt(6.0f / static_cast<float>(input_dim + hidden_dim));
  const float ul = std::sqrt(6.0f / static_cast<float>(2 * hidden_dim));
  auto w = [&](const char* suffix) {
    return AddParameter(
        name + suffix,
        Tensor::RandomUniform({input_dim, hidden_dim}, wl, rng));
  };
  auto u = [&](const char* suffix) {
    return AddParameter(
        name + suffix,
        Tensor::RandomUniform({hidden_dim, hidden_dim}, ul, rng));
  };
  auto b = [&](const char* suffix) {
    return AddParameter(name + suffix, Tensor({hidden_dim}));
  };
  wr_ = w(".wr");
  ur_ = u(".ur");
  br_ = b(".br");
  wz_ = w(".wz");
  uz_ = u(".uz");
  bz_ = b(".bz");
  wh_ = w(".wh");
  uh_ = u(".uh");
  bh_ = b(".bh");
}

NodeId GruCell::Step(Graph* g, NodeId x, NodeId h_prev) const {
  // r_t = sigmoid(x Wr + h_prev Ur + br)
  NodeId r = g->Sigmoid(g->AddRowBroadcast(
      g->Add(g->Matmul(x, g->Param(wr_)), g->Matmul(h_prev, g->Param(ur_))),
      g->Param(br_)));
  // z_t = sigmoid(x Wz + h_prev Uz + bz)
  NodeId z = g->Sigmoid(g->AddRowBroadcast(
      g->Add(g->Matmul(x, g->Param(wz_)), g->Matmul(h_prev, g->Param(uz_))),
      g->Param(bz_)));
  // h~_t = tanh(x Wh + (r . h_prev) Uh + bh)
  NodeId candidate = g->Tanh(g->AddRowBroadcast(
      g->Add(g->Matmul(x, g->Param(wh_)),
             g->Matmul(g->Mul(r, h_prev), g->Param(uh_))),
      g->Param(bh_)));
  // h_t = (1 - z) . h_prev + z . h~_t
  NodeId one_minus_z = g->AddConst(g->Scale(z, -1.0f), 1.0f);
  return g->Add(g->Mul(one_minus_z, h_prev), g->Mul(z, candidate));
}

Gru::Gru(const std::string& name, int64_t input_dim, int64_t hidden_dim,
         Rng* rng) {
  cell_ = std::make_unique<GruCell>(name + ".cell", input_dim, hidden_dim,
                                    rng);
  AddSubmodule(cell_.get());
}

NodeId Gru::Forward(Graph* g, NodeId x, bool reverse) const {
  const int64_t t_len = g->Value(x).dim(0);
  SDEA_CHECK_GT(t_len, 0);
  NodeId h = g->Input(Tensor({1, cell_->hidden_dim()}));
  std::vector<NodeId> outputs(static_cast<size_t>(t_len));
  for (int64_t step = 0; step < t_len; ++step) {
    const int64_t t = reverse ? (t_len - 1 - step) : step;
    NodeId xt = g->SliceRows(x, t, t + 1);
    h = cell_->Step(g, xt, h);
    outputs[static_cast<size_t>(t)] = h;
  }
  NodeId out = outputs[0];
  for (int64_t t = 1; t < t_len; ++t) {
    out = g->ConcatRows(out, outputs[static_cast<size_t>(t)]);
  }
  return out;
}

BiGru::BiGru(const std::string& name, int64_t input_dim, int64_t hidden_dim,
             Rng* rng) {
  forward_ = std::make_unique<Gru>(name + ".fwd", input_dim, hidden_dim, rng);
  backward_ = std::make_unique<Gru>(name + ".bwd", input_dim, hidden_dim,
                                    rng);
  AddSubmodule(forward_.get());
  AddSubmodule(backward_.get());
}

NodeId BiGru::Forward(Graph* g, NodeId x) const {
  NodeId fwd = forward_->Forward(g, x, /*reverse=*/false);
  NodeId bwd = backward_->Forward(g, x, /*reverse=*/true);
  return g->Add(fwd, bwd);
}

}  // namespace sdea::nn
