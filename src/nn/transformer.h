#ifndef SDEA_NN_TRANSFORMER_H_
#define SDEA_NN_TRANSFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/attention.h"
#include "nn/layers.h"

namespace sdea::nn {

/// Hyper-parameters of the transformer encoder. Defaults are sized for
/// single-core CPU training; the architecture is the same in kind as the
/// pre-trained BERT the paper fine-tunes (token + position embeddings, a
/// stack of post-norm self-attention blocks, [CLS] pooling).
struct TransformerConfig {
  int64_t vocab_size = 0;   ///< Required; includes the [CLS]/special tokens.
  int64_t max_len = 128;    ///< Maximum sequence length (paper fixes 128).
  int64_t dim = 64;         ///< Model width.
  int64_t num_heads = 4;    ///< Attention heads.
  int64_t num_layers = 2;   ///< Encoder blocks.
  int64_t ff_dim = 128;     ///< Feed-forward inner width.
  float dropout = 0.1f;     ///< Applied to attention/FF outputs in training.
};

/// One post-norm transformer encoder block:
///   x = LayerNorm(x + Dropout(SelfAttention(x)))
///   x = LayerNorm(x + Dropout(FFN(x)))
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(const std::string& name,
                          const TransformerConfig& config, Rng* rng);

  NodeId Forward(Graph* g, NodeId x, bool training, Rng* rng) const;

 private:
  float dropout_;
  std::unique_ptr<MultiHeadAttention> attention_;
  std::unique_ptr<LayerNorm> norm1_;
  std::unique_ptr<Linear> ff1_;
  std::unique_ptr<Linear> ff2_;
  std::unique_ptr<LayerNorm> norm2_;
};

/// A BERT-style sequence encoder built from scratch: token embeddings plus
/// learned positional embeddings, a stack of encoder blocks, and [CLS]
/// pooling. Stands in for the pre-trained language model in the paper's
/// attribute embedding module (see DESIGN.md §1 for the substitution
/// rationale).
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(const std::string& name, const TransformerConfig& config,
                     Rng* rng);

  /// Encodes a token sequence (which must already start with [CLS] and be
  /// truncated to max_len by the caller) into hidden states [T, dim].
  NodeId EncodeSequence(Graph* g, const std::vector<int64_t>& token_ids,
                        bool training, Rng* rng) const;

  /// Encodes and returns the [CLS] hidden state as [1, dim].
  NodeId EncodeCls(Graph* g, const std::vector<int64_t>& token_ids,
                   bool training, Rng* rng) const;

  /// Encodes and returns the mean of all hidden states as [1, dim]. With a
  /// from-scratch encoder this pooling carries content far better than the
  /// un-pretrained [CLS] slot (see DESIGN.md on the BERT substitution).
  NodeId EncodeMean(Graph* g, const std::vector<int64_t>& token_ids,
                    bool training, Rng* rng) const;

  /// Inference-only encode without graph construction overhead is not
  /// provided separately; callers build a throwaway Graph.
  const TransformerConfig& config() const { return config_; }
  Embedding* token_embedding() { return token_embedding_.get(); }

 private:
  TransformerConfig config_;
  std::unique_ptr<Embedding> token_embedding_;
  std::unique_ptr<Embedding> position_embedding_;
  std::unique_ptr<LayerNorm> input_norm_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
};

}  // namespace sdea::nn

#endif  // SDEA_NN_TRANSFORMER_H_
