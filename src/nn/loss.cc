#include "nn/loss.h"

namespace sdea::nn {

NodeId RowSquaredL2Distance(Graph* g, NodeId a, NodeId b) {
  NodeId diff = g->Sub(a, b);
  NodeId sq = g->Mul(diff, diff);
  // Row-sum via matmul with a column of ones.
  const int64_t d = g->Value(a).dim(1);
  NodeId ones = g->Input(Tensor({d, 1}, 1.0f));
  return g->Matmul(sq, ones);  // [B, 1]
}

NodeId MarginRankingLoss(Graph* g, NodeId anchor, NodeId positive,
                         NodeId negative, float margin) {
  NodeId d_pos = RowSquaredL2Distance(g, anchor, positive);
  NodeId d_neg = RowSquaredL2Distance(g, anchor, negative);
  NodeId hinge = g->Relu(g->AddConst(g->Sub(d_pos, d_neg), margin));
  return g->MeanAll(hinge);
}

}  // namespace sdea::nn
