#include "nn/optimizer.h"

#include <cmath>

#include "nn/serialization.h"

namespace sdea::nn {
namespace {

// Shared (de)serialization of one slot-tensor list (velocity, m, v): a
// count followed by the tensors. Shapes must match the parameter list.
void AppendSlots(std::string* out, const std::vector<Tensor>& slots) {
  AppendU64(out, slots.size());
  for (const Tensor& t : slots) AppendTensor(out, t);
}

Status ReadSlots(const std::string& in, size_t* pos, size_t expected,
                 std::vector<Tensor>* slots) {
  uint64_t count = 0;
  if (!ReadU64(in, pos, &count) || count != expected) {
    return Status::InvalidArgument("optimizer state: slot count mismatch");
  }
  std::vector<Tensor> loaded;
  loaded.reserve(expected);
  for (size_t k = 0; k < expected; ++k) {
    Tensor t;
    if (!ReadTensor(in, pos, &t)) {
      return Status::InvalidArgument("optimizer state: truncated slot");
    }
    if (t.shape() != (*slots)[k].shape()) {
      return Status::InvalidArgument("optimizer state: slot shape mismatch");
    }
    loaded.push_back(std::move(t));
  }
  *slots = std::move(loaded);
  return Status::Ok();
}

}  // namespace

void Optimizer::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  double total = 0.0;
  for (Parameter* p : params_) {
    for (int64_t i = 0; i < p->grad.size(); ++i) {
      total += static_cast<double>(p->grad[i]) * p->grad[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Parameter* p : params_) {
      for (int64_t i = 0; i < p->grad.size(); ++i) p->grad[i] *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (Parameter* p : params_) velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::Step() {
  for (size_t k = 0; k < params_.size(); ++k) {
    Parameter* p = params_[k];
    if (momentum_ > 0.0f) {
      Tensor& vel = velocity_[k];
      for (int64_t i = 0; i < p->value.size(); ++i) {
        vel[i] = momentum_ * vel[i] + p->grad[i];
        p->value[i] -= lr_ * vel[i];
      }
    } else {
      for (int64_t i = 0; i < p->value.size(); ++i) {
        p->value[i] -= lr_ * p->grad[i];
      }
    }
  }
}

void Sgd::SerializeState(std::string* out) const {
  AppendSlots(out, velocity_);
}

Status Sgd::DeserializeState(const std::string& in, size_t* pos) {
  return ReadSlots(in, pos, velocity_.size(), &velocity_);
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    Parameter* p = params_[k];
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    for (int64_t i = 0; i < p->value.size(); ++i) {
      const float g = p->grad[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      float update = mhat / (std::sqrt(vhat) + eps_);
      if (weight_decay_ > 0.0f) update += weight_decay_ * p->value[i];
      p->value[i] -= lr_ * update;
    }
  }
}

void Adam::SerializeState(std::string* out) const {
  AppendU64(out, static_cast<uint64_t>(t_));
  AppendSlots(out, m_);
  AppendSlots(out, v_);
}

Status Adam::DeserializeState(const std::string& in, size_t* pos) {
  uint64_t t = 0;
  if (!ReadU64(in, pos, &t)) {
    return Status::InvalidArgument("optimizer state: truncated step counter");
  }
  // Stage into copies so a truncated blob leaves this optimizer untouched.
  std::vector<Tensor> m = m_;
  std::vector<Tensor> v = v_;
  SDEA_RETURN_IF_ERROR(ReadSlots(in, pos, m.size(), &m));
  SDEA_RETURN_IF_ERROR(ReadSlots(in, pos, v.size(), &v));
  m_ = std::move(m);
  v_ = std::move(v);
  t_ = static_cast<int64_t>(t);
  return Status::Ok();
}

}  // namespace sdea::nn
