#ifndef SDEA_NN_OPTIMIZER_H_
#define SDEA_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/graph.h"

namespace sdea::nn {

/// Base interface for gradient-descent optimizers over a fixed parameter
/// list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Rescales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with optional decoupled weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace sdea::nn

#endif  // SDEA_NN_OPTIMIZER_H_
