#ifndef SDEA_NN_OPTIMIZER_H_
#define SDEA_NN_OPTIMIZER_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "tensor/graph.h"

namespace sdea::nn {

/// Base interface for gradient-descent optimizers over a fixed parameter
/// list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Rescales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  /// Current learning rate (the target of train::LrSchedule).
  virtual float lr() const = 0;
  virtual void set_lr(float lr) = 0;

  /// Appends this optimizer's slot state (momentum/moment tensors, step
  /// counters — everything beyond the parameters themselves) to `out`, so a
  /// checkpointed run resumes with bitwise-identical updates.
  virtual void SerializeState(std::string* out) const = 0;

  /// Restores state written by SerializeState, advancing `*pos`. Returns
  /// InvalidArgument when the blob does not match this optimizer's
  /// parameter count/shapes.
  virtual Status DeserializeState(const std::string& in, size_t* pos) = 0;

  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.0f);

  void Step() override;

  void set_lr(float lr) override { lr_ = lr; }
  float lr() const override { return lr_; }
  void SerializeState(std::string* out) const override;
  Status DeserializeState(const std::string& in, size_t* pos) override;

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with optional decoupled weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  void set_lr(float lr) override { lr_ = lr; }
  float lr() const override { return lr_; }
  void SerializeState(std::string* out) const override;
  Status DeserializeState(const std::string& in, size_t* pos) override;

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace sdea::nn

#endif  // SDEA_NN_OPTIMIZER_H_
