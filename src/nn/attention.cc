#include "nn/attention.h"

#include <cmath>

namespace sdea::nn {

MultiHeadAttention::MultiHeadAttention(const std::string& name, int64_t dim,
                                       int64_t num_heads, Rng* rng)
    : dim_(dim), num_heads_(num_heads), head_dim_(dim / num_heads) {
  SDEA_CHECK_GT(num_heads, 0);
  SDEA_CHECK_EQ(head_dim_ * num_heads, dim);
  wq_ = std::make_unique<Linear>(name + ".wq", dim, dim, rng);
  wk_ = std::make_unique<Linear>(name + ".wk", dim, dim, rng);
  wv_ = std::make_unique<Linear>(name + ".wv", dim, dim, rng);
  wo_ = std::make_unique<Linear>(name + ".wo", dim, dim, rng);
  AddSubmodule(wq_.get());
  AddSubmodule(wk_.get());
  AddSubmodule(wv_.get());
  AddSubmodule(wo_.get());
}

NodeId MultiHeadAttention::Forward(Graph* g, NodeId x) const {
  const NodeId q = wq_->Forward(g, x);
  const NodeId k = wk_->Forward(g, x);
  const NodeId v = wv_->Forward(g, x);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  NodeId heads = -1;
  for (int64_t h = 0; h < num_heads_; ++h) {
    const int64_t begin = h * head_dim_;
    const int64_t end = begin + head_dim_;
    const NodeId qh = g->SliceCols(q, begin, end);  // [T, hd]
    const NodeId kh = g->SliceCols(k, begin, end);
    const NodeId vh = g->SliceCols(v, begin, end);
    // scores: [T, T]
    const NodeId scores =
        g->Scale(g->Matmul(qh, g->Transpose(kh)), scale);
    const NodeId attn = g->SoftmaxRows(scores);
    const NodeId out_h = g->Matmul(attn, vh);  // [T, hd]
    heads = (heads < 0) ? out_h : g->ConcatCols(heads, out_h);
  }
  return wo_->Forward(g, heads);
}

}  // namespace sdea::nn
