#ifndef SDEA_TEXT_TOKENIZER_H_
#define SDEA_TEXT_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "text/vocab.h"

namespace sdea::text {

/// Training options for the subword tokenizer.
struct TokenizerConfig {
  /// Number of BPE merge operations to learn on top of the base character
  /// alphabet.
  int64_t num_merges = 1024;
  /// A pair must occur at least this often (corpus-weighted) to be merged.
  int64_t min_pair_frequency = 2;
  /// Words longer than this many bytes are mapped to [UNK] at encode time
  /// (guards against pathological inputs).
  int64_t max_word_bytes = 64;
};

/// A WordPiece-style subword tokenizer trained with BPE merges, as used by
/// BERT-family models. Words are decomposed into an initial symbol plus
/// "##"-prefixed continuation symbols; training greedily merges the most
/// frequent adjacent symbol pair; encoding applies greedy longest-match
/// against the learned vocabulary.
class SubwordTokenizer {
 public:
  SubwordTokenizer() = default;

  /// Learns the subword vocabulary from `corpus` (each element one text).
  /// Replaces any previous training.
  Status Train(const std::vector<std::string>& corpus,
               const TokenizerConfig& config);

  /// Encodes normalized text into token ids (no [CLS] added). Unknown
  /// characters map to [UNK].
  std::vector<int64_t> Encode(std::string_view raw) const;

  /// Encodes and prepends [CLS], truncating to `max_len` total ids.
  std::vector<int64_t> EncodeForModel(std::string_view raw,
                                      int64_t max_len) const;

  /// Subword tokens for a single normalized word.
  std::vector<std::string> TokenizeWord(const std::string& word) const;

  const Vocab& vocab() const { return vocab_; }
  bool trained() const { return trained_; }

  /// Serializes the learned vocabulary to `path` (one token per line).
  Status Save(const std::string& path) const;

  /// Restores a vocabulary written by Save.
  Status Load(const std::string& path);

 private:
  Vocab vocab_;
  bool trained_ = false;
  int64_t max_word_bytes_ = 64;
};

}  // namespace sdea::text

#endif  // SDEA_TEXT_TOKENIZER_H_
