#ifndef SDEA_TEXT_NORMALIZER_H_
#define SDEA_TEXT_NORMALIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace sdea::text {

/// Canonicalizes raw attribute-value text before tokenization:
/// lower-cases ASCII, maps punctuation to spaces (keeping word-internal
/// digits/letters), collapses whitespace. Non-ASCII bytes are kept verbatim
/// so cipher-generated "foreign" tokens survive.
std::string NormalizeText(std::string_view raw);

/// Normalizes then splits into words.
std::vector<std::string> NormalizeAndSplit(std::string_view raw);

}  // namespace sdea::text

#endif  // SDEA_TEXT_NORMALIZER_H_
