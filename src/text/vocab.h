#ifndef SDEA_TEXT_VOCAB_H_
#define SDEA_TEXT_VOCAB_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace sdea::text {

/// Reserved token ids shared by the whole library.
inline constexpr int64_t kPadId = 0;
inline constexpr int64_t kClsId = 1;
inline constexpr int64_t kUnkId = 2;
inline constexpr int64_t kSepId = 3;
inline constexpr int64_t kNumSpecialTokens = 4;

/// A bidirectional token <-> id mapping. Ids 0..3 are reserved for the
/// special tokens [PAD], [CLS], [UNK], [SEP].
class Vocab {
 public:
  /// Constructs a vocab containing only the special tokens.
  Vocab();

  /// Adds `token` if absent; returns its id either way.
  int64_t AddToken(const std::string& token);

  /// Id of `token`, or kUnkId if unknown.
  int64_t GetId(const std::string& token) const;

  /// True if `token` is present.
  bool Contains(const std::string& token) const;

  /// Token string for `id`. Requires 0 <= id < size().
  const std::string& GetToken(int64_t id) const;

  int64_t size() const { return static_cast<int64_t>(tokens_.size()); }

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int64_t> ids_;
};

}  // namespace sdea::text

#endif  // SDEA_TEXT_VOCAB_H_
