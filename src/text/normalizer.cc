#include "text/normalizer.h"

#include <cctype>

#include "base/strings.h"

namespace sdea::text {

std::string NormalizeText(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  bool last_space = true;
  for (char ch : raw) {
    const unsigned char c = static_cast<unsigned char>(ch);
    char mapped;
    if (std::isalnum(c)) {
      mapped = static_cast<char>(std::tolower(c));
    } else if (c >= 0x80) {
      mapped = ch;  // Keep non-ASCII bytes.
    } else if (ch == '.' || ch == ',') {
      // Keep separators inside numbers ("3.14"); map to space otherwise.
      mapped = ch;
    } else {
      mapped = ' ';
    }
    if (mapped == ' ') {
      if (!last_space) {
        out.push_back(' ');
        last_space = true;
      }
    } else {
      out.push_back(mapped);
      last_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<std::string> NormalizeAndSplit(std::string_view raw) {
  std::vector<std::string> words = SplitWhitespace(NormalizeText(raw));
  // Strip leading/trailing '.'/',' kept by the normalizer for numbers.
  for (std::string& w : words) {
    size_t b = 0, e = w.size();
    while (b < e && (w[b] == '.' || w[b] == ',')) ++b;
    while (e > b && (w[e - 1] == '.' || w[e - 1] == ',')) --e;
    if (b != 0 || e != w.size()) w = w.substr(b, e - b);
  }
  std::vector<std::string> out;
  out.reserve(words.size());
  for (std::string& w : words) {
    if (!w.empty()) out.push_back(std::move(w));
  }
  return out;
}

}  // namespace sdea::text
