#ifndef SDEA_TEXT_PRETRAIN_H_
#define SDEA_TEXT_PRETRAIN_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "tensor/tensor.h"
#include "text/tokenizer.h"

namespace sdea::text {

/// Options for co-occurrence embedding pre-training.
struct PretrainConfig {
  int64_t dim = 64;        ///< Embedding width (must match the encoder dim).
  int64_t window = 4;      ///< Symmetric co-occurrence window.
  int64_t epochs = 16;     ///< Passes over the non-zero co-occurrence cells.
  float lr = 0.05f;        ///< AdaGrad learning rate.
  float x_max = 20.0f;     ///< GloVe weighting cutoff.
  float alpha = 0.75f;     ///< GloVe weighting exponent.
  uint64_t seed = 17;      ///< Shuffling / init seed.
};

/// Pre-trains token embeddings on a text corpus with the GloVe objective
/// (weighted log-co-occurrence factorization). This plays the role of the
/// language-model pre-training that the paper's BERT brings in: after this
/// step, semantically related subword tokens are close in embedding space,
/// and the transformer fine-tunes from that initialization (see DESIGN.md).
class CooccurrencePretrainer {
 public:
  /// Returns a [vocab_size, dim] embedding table aligned with
  /// `tokenizer.vocab()` ids. Special tokens get small random vectors.
  Result<Tensor> Train(const std::vector<std::string>& corpus,
                       const SubwordTokenizer& tokenizer,
                       const PretrainConfig& config) const;
};

}  // namespace sdea::text

#endif  // SDEA_TEXT_PRETRAIN_H_
