#include "text/vocab.h"

#include "base/check.h"

namespace sdea::text {

Vocab::Vocab() {
  AddToken("[PAD]");
  AddToken("[CLS]");
  AddToken("[UNK]");
  AddToken("[SEP]");
  SDEA_CHECK_EQ(size(), kNumSpecialTokens);
}

int64_t Vocab::AddToken(const std::string& token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  const int64_t id = size();
  tokens_.push_back(token);
  ids_.emplace(token, id);
  return id;
}

int64_t Vocab::GetId(const std::string& token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? kUnkId : it->second;
}

bool Vocab::Contains(const std::string& token) const {
  return ids_.count(token) > 0;
}

const std::string& Vocab::GetToken(int64_t id) const {
  SDEA_CHECK(id >= 0 && id < size());
  return tokens_[static_cast<size_t>(id)];
}

}  // namespace sdea::text
