#include "text/tokenizer.h"

#include <algorithm>
#include <unordered_map>

#include "base/check.h"
#include "base/fileio.h"
#include "base/strings.h"
#include "text/normalizer.h"

namespace sdea::text {
namespace {

/// A word under BPE training: its symbol sequence and corpus frequency.
struct TrainWord {
  std::vector<std::string> symbols;
  int64_t freq = 0;
};

/// Splits a word into initial WordPiece symbols: first byte-run plain,
/// continuations prefixed with "##". Multi-byte UTF-8 sequences are kept as
/// single symbols.
std::vector<std::string> InitialSymbols(const std::string& word) {
  std::vector<std::string> symbols;
  size_t i = 0;
  while (i < word.size()) {
    size_t len = 1;
    const unsigned char c = static_cast<unsigned char>(word[i]);
    if ((c & 0xE0) == 0xC0) len = 2;
    else if ((c & 0xF0) == 0xE0) len = 3;
    else if ((c & 0xF8) == 0xF0) len = 4;
    len = std::min(len, word.size() - i);
    std::string sym = word.substr(i, len);
    if (i > 0) sym = "##" + sym;
    symbols.push_back(std::move(sym));
    i += len;
  }
  return symbols;
}

/// Concatenates two adjacent symbols, dropping the continuation prefix of
/// the right-hand side.
std::string MergeSymbols(const std::string& a, const std::string& b) {
  std::string rhs = b;
  if (StartsWith(rhs, "##")) rhs = rhs.substr(2);
  return a + rhs;
}

}  // namespace

Status SubwordTokenizer::Train(const std::vector<std::string>& corpus,
                               const TokenizerConfig& config) {
  if (corpus.empty()) {
    return Status::InvalidArgument("tokenizer corpus is empty");
  }
  vocab_ = Vocab();
  max_word_bytes_ = config.max_word_bytes;

  // Collect distinct words with frequencies.
  std::unordered_map<std::string, int64_t> word_freq;
  for (const std::string& text : corpus) {
    for (const std::string& w : NormalizeAndSplit(text)) {
      if (static_cast<int64_t>(w.size()) > config.max_word_bytes) continue;
      ++word_freq[w];
    }
  }
  if (word_freq.empty()) {
    return Status::InvalidArgument("tokenizer corpus has no words");
  }

  std::vector<TrainWord> words;
  words.reserve(word_freq.size());
  for (const auto& [w, f] : word_freq) {
    words.push_back(TrainWord{InitialSymbols(w), f});
  }
  // Deterministic order regardless of hash iteration.
  std::sort(words.begin(), words.end(),
            [](const TrainWord& a, const TrainWord& b) {
              if (a.freq != b.freq) return a.freq > b.freq;
              return a.symbols < b.symbols;
            });

  // Base alphabet.
  for (const TrainWord& w : words) {
    for (const std::string& s : w.symbols) vocab_.AddToken(s);
  }

  // Iteratively merge the most frequent adjacent pair.
  for (int64_t merge = 0; merge < config.num_merges; ++merge) {
    std::unordered_map<std::string, int64_t> pair_freq;
    std::unordered_map<std::string, std::pair<std::string, std::string>>
        pair_parts;
    for (const TrainWord& w : words) {
      for (size_t i = 0; i + 1 < w.symbols.size(); ++i) {
        std::string key = w.symbols[i] + "\x01" + w.symbols[i + 1];
        pair_freq[key] += w.freq;
        if (pair_parts.find(key) == pair_parts.end()) {
          pair_parts.emplace(key,
                             std::make_pair(w.symbols[i], w.symbols[i + 1]));
        }
      }
    }
    if (pair_freq.empty()) break;
    // Deterministic arg-max: highest frequency, ties by key.
    std::string best_key;
    int64_t best_freq = 0;
    for (const auto& [key, freq] : pair_freq) {
      if (freq > best_freq || (freq == best_freq && key < best_key)) {
        best_key = key;
        best_freq = freq;
      }
    }
    if (best_freq < config.min_pair_frequency) break;
    const auto& [left, right] = pair_parts[best_key];
    const std::string merged = MergeSymbols(left, right);
    vocab_.AddToken(merged);
    // Apply the merge to every word containing the pair.
    for (TrainWord& w : words) {
      std::vector<std::string>& sym = w.symbols;
      for (size_t i = 0; i + 1 < sym.size();) {
        if (sym[i] == left && sym[i + 1] == right) {
          sym[i] = merged;
          sym.erase(sym.begin() + static_cast<int64_t>(i) + 1);
        } else {
          ++i;
        }
      }
    }
  }

  trained_ = true;
  return Status::Ok();
}

std::vector<std::string> SubwordTokenizer::TokenizeWord(
    const std::string& word) const {
  std::vector<std::string> out;
  if (static_cast<int64_t>(word.size()) > max_word_bytes_) {
    out.push_back("[UNK]");
    return out;
  }
  // Greedy longest-match (WordPiece): at each position take the longest
  // vocab entry; fall back to [UNK] for the whole word if any position has
  // no match.
  size_t start = 0;
  while (start < word.size()) {
    size_t end = word.size();
    std::string piece;
    bool found = false;
    while (end > start) {
      std::string candidate = word.substr(start, end - start);
      if (start > 0) candidate = "##" + candidate;
      if (vocab_.Contains(candidate)) {
        piece = std::move(candidate);
        found = true;
        break;
      }
      --end;
    }
    if (!found) {
      return {"[UNK]"};
    }
    out.push_back(std::move(piece));
    start = end;
  }
  return out;
}

std::vector<int64_t> SubwordTokenizer::Encode(std::string_view raw) const {
  SDEA_CHECK_MSG(trained_, "tokenizer used before Train()/Load()");
  std::vector<int64_t> ids;
  for (const std::string& word : NormalizeAndSplit(raw)) {
    for (const std::string& piece : TokenizeWord(word)) {
      ids.push_back(vocab_.GetId(piece));
    }
  }
  return ids;
}

std::vector<int64_t> SubwordTokenizer::EncodeForModel(std::string_view raw,
                                                      int64_t max_len) const {
  SDEA_CHECK_GE(max_len, 1);
  std::vector<int64_t> ids;
  ids.push_back(kClsId);
  for (int64_t id : Encode(raw)) {
    if (static_cast<int64_t>(ids.size()) >= max_len) break;
    ids.push_back(id);
  }
  return ids;
}

Status SubwordTokenizer::Save(const std::string& path) const {
  if (!trained_) return Status::FailedPrecondition("tokenizer not trained");
  std::string out;
  for (int64_t i = 0; i < vocab_.size(); ++i) {
    out += vocab_.GetToken(i);
    out += '\n';
  }
  return WriteStringToFileAtomic(path, out);
}

Status SubwordTokenizer::Load(const std::string& path) {
  SDEA_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(path));
  if (lines.size() < static_cast<size_t>(kNumSpecialTokens)) {
    return Status::InvalidArgument("vocab file too small: " + path);
  }
  vocab_ = Vocab();
  for (size_t i = static_cast<size_t>(kNumSpecialTokens); i < lines.size();
       ++i) {
    vocab_.AddToken(lines[i]);
  }
  trained_ = true;
  return Status::Ok();
}

}  // namespace sdea::text
