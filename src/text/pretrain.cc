#include "text/pretrain.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "base/rng.h"

namespace sdea::text {

Result<Tensor> CooccurrencePretrainer::Train(
    const std::vector<std::string>& corpus, const SubwordTokenizer& tokenizer,
    const PretrainConfig& config) const {
  if (!tokenizer.trained()) {
    return Status::FailedPrecondition("tokenizer must be trained first");
  }
  if (corpus.empty()) {
    return Status::InvalidArgument("pretraining corpus is empty");
  }
  const int64_t v = tokenizer.vocab().size();
  const int64_t d = config.dim;

  // Accumulate windowed co-occurrence counts with 1/distance weighting.
  // Key packs (i, j) into one 64-bit integer.
  std::unordered_map<uint64_t, float> cooc;
  for (const std::string& text : corpus) {
    const std::vector<int64_t> ids = tokenizer.Encode(text);
    const int64_t n = static_cast<int64_t>(ids.size());
    for (int64_t i = 0; i < n; ++i) {
      if (ids[i] == kUnkId) continue;
      const int64_t lo = std::max<int64_t>(0, i - config.window);
      for (int64_t j = lo; j < i; ++j) {
        if (ids[j] == kUnkId) continue;
        const float w = 1.0f / static_cast<float>(i - j);
        const uint64_t key = (static_cast<uint64_t>(ids[i]) << 32) |
                             static_cast<uint64_t>(ids[j]);
        cooc[key] += w;
        const uint64_t rkey = (static_cast<uint64_t>(ids[j]) << 32) |
                              static_cast<uint64_t>(ids[i]);
        cooc[rkey] += w;
      }
    }
  }
  if (cooc.empty()) {
    return Status::InvalidArgument("corpus produced no co-occurrences");
  }

  std::vector<uint64_t> keys;
  keys.reserve(cooc.size());
  for (const auto& [k, _] : cooc) keys.push_back(k);
  std::sort(keys.begin(), keys.end());  // Deterministic base order.

  Rng rng(config.seed);
  const float init = 0.5f / static_cast<float>(d);
  Tensor w = Tensor::RandomUniform({v, d}, init, &rng);
  Tensor c = Tensor::RandomUniform({v, d}, init, &rng);
  std::vector<float> bw(static_cast<size_t>(v), 0.0f);
  std::vector<float> bc(static_cast<size_t>(v), 0.0f);
  // AdaGrad accumulators.
  Tensor gw({v, d}, 1.0f);
  Tensor gc({v, d}, 1.0f);
  std::vector<float> gbw(static_cast<size_t>(v), 1.0f);
  std::vector<float> gbc(static_cast<size_t>(v), 1.0f);

  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&keys);
    for (uint64_t key : keys) {
      const int64_t i = static_cast<int64_t>(key >> 32);
      const int64_t j = static_cast<int64_t>(key & 0xffffffffULL);
      const float x = cooc[key];
      const float weight =
          x >= config.x_max
              ? 1.0f
              : std::pow(x / config.x_max, config.alpha);
      float dot = 0.0f;
      const float* wi = w.data() + i * d;
      const float* cj = c.data() + j * d;
      for (int64_t k = 0; k < d; ++k) dot += wi[k] * cj[k];
      const float err =
          dot + bw[static_cast<size_t>(i)] + bc[static_cast<size_t>(j)] -
          std::log(x);
      const float coeff = weight * err;
      float* wi_m = w.data() + i * d;
      float* cj_m = c.data() + j * d;
      float* gwi = gw.data() + i * d;
      float* gcj = gc.data() + j * d;
      for (int64_t k = 0; k < d; ++k) {
        const float grad_w = coeff * cj_m[k];
        const float grad_c = coeff * wi_m[k];
        gwi[k] += grad_w * grad_w;
        gcj[k] += grad_c * grad_c;
        wi_m[k] -= config.lr * grad_w / std::sqrt(gwi[k]);
        cj_m[k] -= config.lr * grad_c / std::sqrt(gcj[k]);
      }
      gbw[static_cast<size_t>(i)] += coeff * coeff;
      gbc[static_cast<size_t>(j)] += coeff * coeff;
      bw[static_cast<size_t>(i)] -=
          config.lr * coeff / std::sqrt(gbw[static_cast<size_t>(i)]);
      bc[static_cast<size_t>(j)] -=
          config.lr * coeff / std::sqrt(gbc[static_cast<size_t>(j)]);
    }
  }

  // Final embedding: w + c (standard GloVe practice).
  Tensor out({v, d});
  for (int64_t i = 0; i < v * d; ++i) out[i] = w[i] + c[i];
  return out;
}

}  // namespace sdea::text
