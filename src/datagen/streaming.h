#ifndef SDEA_DATAGEN_STREAMING_H_
#define SDEA_DATAGEN_STREAMING_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "datagen/generator.h"
#include "incr/update_log.h"
#include "kg/knowledge_graph.h"

namespace sdea::datagen {

/// Parameters of the streaming benchmark: a generated pair is split into a
/// base state plus a replayable sequence of update batches, so incremental
/// alignment can be compared against full retraining on the *same* final
/// graphs.
struct StreamingConfig {
  /// The final state of the world (what the graphs converge to after all
  /// increments are applied).
  GeneratorConfig base;

  int64_t num_increments = 4;

  /// Fraction of matched entity pairs held out of the base state and
  /// streamed in across the increments (spread evenly).
  double stream_frac = 0.25;

  /// Per increment, this fraction of base entities (per KG) receives an
  /// edited attribute value — updates that touch *existing* entities, not
  /// just arrivals.
  double attr_edit_frac = 0.05;

  /// Seed for the split/edit decisions (independent of base.seed so the
  /// same world can be streamed differently).
  uint64_t stream_seed = 7;
};

/// A streamed benchmark instance. `kg1`/`kg2` hold the base state; applying
/// `increments[0..i]` (incr::ApplyUpdate per side) advances both graphs
/// through the stream. Entity ids differ between the base graphs and the
/// full-state generator output, so per-increment ground truth is recorded
/// by *name* and resolved against the live graphs with ResolveNamePairs.
struct StreamingBenchmark {
  std::string name;
  kg::KnowledgeGraph kg1;
  kg::KnowledgeGraph kg2;

  /// Replayable update batches, in stream order.
  std::vector<incr::UpdateBatch> increments;

  /// Ground truth resolvable at the base state (ids are base-graph ids).
  std::vector<std::pair<kg::EntityId, kg::EntityId>> base_truth;

  /// truth_names[i]: matched pairs that *arrive* with increments[i]
  /// (both sides present once that batch is applied), as name pairs.
  std::vector<std::vector<std::pair<std::string, std::string>>> truth_names;

  std::vector<std::string> pretrain_corpus;
};

/// Generates the final-state pair with BenchmarkGenerator, then carves out
/// a seeded subset of matched pairs (and their incident triples) into
/// update batches. The base graphs replay the generator's insertion order,
/// so the stream is bit-reproducible for a given config.
StreamingBenchmark GenerateStreaming(const StreamingConfig& config);

/// Resolves name pairs against the *current* state of both graphs. Pairs
/// whose entities have not arrived yet are skipped.
std::vector<std::pair<kg::EntityId, kg::EntityId>> ResolveNamePairs(
    const kg::KnowledgeGraph& kg1, const kg::KnowledgeGraph& kg2,
    const std::vector<std::pair<std::string, std::string>>& names);

/// A named streaming configuration, like DatasetSpec for the static
/// presets.
struct StreamingSpec {
  std::string id;
  StreamingConfig config;
};

/// The `d_stream` preset: a DBP15K-flavoured pair sized for a single-core
/// budget, streamed over 4 increments. Used by bench_incr and the
/// EXPERIMENTS.md staleness-vs-cost table.
StreamingSpec StreamingPreset();

}  // namespace sdea::datagen

#endif  // SDEA_DATAGEN_STREAMING_H_
