#include "datagen/streaming.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "kg/types.h"

namespace sdea::datagen {
namespace {

/// Increment index per entity: 0 = present in the base state, i >= 1 =
/// arrives with increments[i-1]. A triple's increment is the latest of its
/// endpoints' — a fact cannot be stated before both entities exist.
std::vector<int64_t> AssignIncrements(
    int64_t num_entities,
    const std::vector<std::pair<kg::EntityId, int64_t>>& streamed) {
  std::vector<int64_t> inc(static_cast<size_t>(num_entities), 0);
  for (const auto& [id, i] : streamed) {
    inc[static_cast<size_t>(id)] = i;
  }
  return inc;
}

/// Rebuilds the base state of `full` (entities with increment 0 and the
/// triples among them), replaying the generator's id order so the result is
/// deterministic. The relation/attribute vocabularies are added upfront in
/// full: schema arrives with the base state, only facts stream in.
kg::KnowledgeGraph BuildBase(const kg::KnowledgeGraph& full,
                             const std::vector<int64_t>& inc) {
  kg::KnowledgeGraph base;
  base.BeginBulkLoad();
  for (kg::RelationId r = 0; r < full.num_relations(); ++r) {
    base.AddRelation(full.relation_name(r));
  }
  for (kg::AttributeId a = 0; a < full.num_attributes(); ++a) {
    base.AddAttribute(full.attribute_name(a));
  }
  for (kg::EntityId e = 0; e < full.num_entities(); ++e) {
    if (inc[static_cast<size_t>(e)] == 0) base.AddEntity(full.entity_name(e));
  }
  for (const kg::RelationalTriple& t : full.relational_triples()) {
    if (inc[static_cast<size_t>(t.head)] != 0 ||
        inc[static_cast<size_t>(t.tail)] != 0) {
      continue;
    }
    const kg::EntityId h = base.AddEntity(full.entity_name(t.head));
    const kg::RelationId r = base.AddRelation(full.relation_name(t.relation));
    const kg::EntityId tl = base.AddEntity(full.entity_name(t.tail));
    base.AddRelationalTriple(h, r, tl);
  }
  for (const kg::AttributeTriple& t : full.attribute_triples()) {
    if (inc[static_cast<size_t>(t.entity)] != 0) continue;
    const kg::EntityId e = base.AddEntity(full.entity_name(t.entity));
    const kg::AttributeId a = base.AddAttribute(full.attribute_name(t.attribute));
    base.AddAttributeTriple(e, a, t.value);
  }
  base.EndBulkLoad();
  return base;
}

/// Fills the per-increment updates for one side: arrivals (entities with
/// increment i and the triples that become stateable at i) plus seeded
/// attribute edits on base entities.
void BuildSideUpdates(const kg::KnowledgeGraph& full,
                      const std::vector<int64_t>& inc, int64_t num_increments,
                      double attr_edit_frac, Rng* rng,
                      std::vector<incr::UpdateBatch>* batches,
                      incr::KgUpdate incr::UpdateBatch::* side) {
  for (kg::EntityId e = 0; e < full.num_entities(); ++e) {
    const int64_t i = inc[static_cast<size_t>(e)];
    if (i > 0) {
      ((*batches)[static_cast<size_t>(i - 1)].*side)
          .new_entities.push_back(full.entity_name(e));
    }
  }
  for (const kg::RelationalTriple& t : full.relational_triples()) {
    const int64_t i = std::max(inc[static_cast<size_t>(t.head)],
                               inc[static_cast<size_t>(t.tail)]);
    if (i == 0) continue;
    ((*batches)[static_cast<size_t>(i - 1)].*side)
        .relational.push_back({full.entity_name(t.head),
                               full.relation_name(t.relation),
                               full.entity_name(t.tail)});
  }
  const std::vector<kg::AttributeTriple>& attrs = full.attribute_triples();
  for (const kg::AttributeTriple& t : attrs) {
    const int64_t i = inc[static_cast<size_t>(t.entity)];
    if (i == 0) continue;
    ((*batches)[static_cast<size_t>(i - 1)].*side)
        .attributes.push_back({full.entity_name(t.entity),
                               full.attribute_name(t.attribute), t.value});
  }
  // Edits: per increment, revise the value of a seeded sample of *base*
  // attribute triples. The source row stays in the base graph; the edit
  // arrives as a fresher fact about an entity serving already knows.
  std::vector<size_t> base_rows;
  for (size_t row = 0; row < attrs.size(); ++row) {
    if (inc[static_cast<size_t>(attrs[row].entity)] == 0) {
      base_rows.push_back(row);
    }
  }
  const size_t edits_per_inc = static_cast<size_t>(
      attr_edit_frac * static_cast<double>(base_rows.size()));
  for (int64_t i = 1; i <= num_increments; ++i) {
    if (edits_per_inc == 0 || base_rows.empty()) break;
    for (size_t k = 0; k < edits_per_inc; ++k) {
      const kg::AttributeTriple& t =
          attrs[base_rows[rng->UniformInt(base_rows.size())]];
      ((*batches)[static_cast<size_t>(i - 1)].*side)
          .attributes.push_back({full.entity_name(t.entity),
                                 full.attribute_name(t.attribute),
                                 t.value + " (rev " + std::to_string(i) + ")"});
    }
  }
}

}  // namespace

StreamingBenchmark GenerateStreaming(const StreamingConfig& config) {
  GeneratedBenchmark full = BenchmarkGenerator().Generate(config.base);

  const int64_t num_matched =
      std::min<int64_t>(config.base.num_matched,
                        static_cast<int64_t>(full.ground_truth.size()));
  const int64_t num_increments = std::max<int64_t>(1, config.num_increments);

  // Ground-truth rows [0, num_matched) are the matched entity pairs (the
  // tail rows are general-concept hubs, which stay in the base). A seeded
  // shuffle picks the streamed pairs; contiguous slices of the shuffled
  // order spread them evenly over the increments.
  Rng rng(config.stream_seed);
  std::vector<int64_t> order(static_cast<size_t>(num_matched));
  for (int64_t i = 0; i < num_matched; ++i) order[static_cast<size_t>(i)] = i;
  rng.Shuffle(&order);
  const int64_t num_streamed = std::min<int64_t>(
      num_matched,
      static_cast<int64_t>(config.stream_frac *
                           static_cast<double>(num_matched)));

  std::vector<std::pair<kg::EntityId, int64_t>> streamed1, streamed2;
  std::vector<std::vector<std::pair<std::string, std::string>>> truth_names(
      static_cast<size_t>(num_increments));
  for (int64_t k = 0; k < num_streamed; ++k) {
    const int64_t pair_idx = order[static_cast<size_t>(k)];
    const int64_t inc = 1 + k * num_increments / std::max<int64_t>(
                                                     1, num_streamed);
    const auto& [e1, e2] = full.ground_truth[static_cast<size_t>(pair_idx)];
    streamed1.emplace_back(e1, inc);
    streamed2.emplace_back(e2, inc);
    truth_names[static_cast<size_t>(inc - 1)].emplace_back(
        full.kg1.entity_name(e1), full.kg2.entity_name(e2));
  }

  const std::vector<int64_t> inc1 =
      AssignIncrements(full.kg1.num_entities(), streamed1);
  const std::vector<int64_t> inc2 =
      AssignIncrements(full.kg2.num_entities(), streamed2);

  StreamingBenchmark out;
  out.name = full.name + "_stream";
  out.kg1 = BuildBase(full.kg1, inc1);
  out.kg2 = BuildBase(full.kg2, inc2);
  out.pretrain_corpus = std::move(full.pretrain_corpus);
  out.truth_names = std::move(truth_names);

  out.increments.resize(static_cast<size_t>(num_increments));
  Rng edit_rng1 = rng.Fork();
  Rng edit_rng2 = rng.Fork();
  BuildSideUpdates(full.kg1, inc1, num_increments, config.attr_edit_frac,
                   &edit_rng1, &out.increments, &incr::UpdateBatch::kg1);
  BuildSideUpdates(full.kg2, inc2, num_increments, config.attr_edit_frac,
                   &edit_rng2, &out.increments, &incr::UpdateBatch::kg2);

  // Base truth: every ground-truth pair whose two sides are both in the
  // base state, resolved to base-graph ids.
  for (const auto& [e1, e2] : full.ground_truth) {
    if (inc1[static_cast<size_t>(e1)] != 0 ||
        inc2[static_cast<size_t>(e2)] != 0) {
      continue;
    }
    Result<kg::EntityId> b1 = out.kg1.FindEntity(full.kg1.entity_name(e1));
    Result<kg::EntityId> b2 = out.kg2.FindEntity(full.kg2.entity_name(e2));
    if (b1.ok() && b2.ok()) {
      out.base_truth.emplace_back(b1.value(), b2.value());
    }
  }
  return out;
}

std::vector<std::pair<kg::EntityId, kg::EntityId>> ResolveNamePairs(
    const kg::KnowledgeGraph& kg1, const kg::KnowledgeGraph& kg2,
    const std::vector<std::pair<std::string, std::string>>& names) {
  std::vector<std::pair<kg::EntityId, kg::EntityId>> out;
  out.reserve(names.size());
  for (const auto& [n1, n2] : names) {
    Result<kg::EntityId> e1 = kg1.FindEntity(n1);
    Result<kg::EntityId> e2 = kg2.FindEntity(n2);
    if (e1.ok() && e2.ok()) out.emplace_back(e1.value(), e2.value());
  }
  return out;
}

StreamingSpec StreamingPreset() {
  StreamingSpec spec;
  spec.id = "d_stream";
  spec.config.base.name = "d_stream";
  spec.config.base.seed = 4242;
  spec.config.base.num_matched = 900;
  spec.config.base.extra_entity_frac = 0.2;
  spec.config.base.kg2_name_mode = NameMode::kTranslated;
  spec.config.base.pretrain_sentences = 0;  // structural pipeline only
  spec.config.num_increments = 10;
  spec.config.stream_frac = 0.1;
  spec.config.attr_edit_frac = 0.005;
  spec.config.stream_seed = 7;
  return spec;
}

}  // namespace sdea::datagen
