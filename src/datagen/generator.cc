#include "datagen/generator.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <unordered_set>

#include "base/check.h"
#include "base/rng.h"
#include "base/strings.h"

namespace sdea::datagen {
namespace {

// ---- Word-index address space ----------------------------------------------
// The lexicon maps any non-negative index to a word; ranges below partition
// the index space by role so facts stay coherent.
constexpr int64_t kTypeWordBase = 0;          // 16 type words
constexpr int64_t kNumTypes = 8;
constexpr int64_t kNamePoolBase = 1'000;      // shared "family name" pool
constexpr int64_t kContentPoolBase = 10'000;  // content words for values
constexpr int64_t kFillerBase = 500'000;      // stop-word-ish fillers
constexpr int64_t kNumFillers = 24;
constexpr int64_t kUniqueNameBase = 2'000'000;   // one per world entity
constexpr int64_t kExtraNameBase = 4'000'000;    // per-view extras
constexpr int64_t kSchemaWordBase = 9'000'000;   // relation/attr names

struct WorldFact {
  int64_t entity;
  int64_t attribute;
  bool numeric;
  int64_t number = 0;
  std::vector<int64_t> words;
};

struct WorldEdge {
  int64_t head;
  int64_t tail;
  int64_t relation;
};

struct WorldEntity {
  int64_t type = 0;
  bool is_general_concept = false;
  std::vector<int64_t> name_words;
  std::vector<int64_t> theme_words;
  bool has_comment = false;
  std::vector<int64_t> fact_indices;   // into facts
  std::vector<int64_t> neighbor_ids;   // realized world neighbors
};

struct World {
  std::vector<WorldEntity> entities;   // matched entities + general concepts
  std::vector<WorldEdge> edges;
  std::vector<WorldFact> facts;
  int64_t name_pool_size = 0;
  int64_t content_pool_size = 0;
};

// Builds the shared world: entities, relational structure with a long-tail
// degree law plus super-hub general concepts, and attribute facts.
World BuildWorld(const GeneratorConfig& cfg, Rng* rng) {
  World w;
  const int64_t n = cfg.num_matched;
  SDEA_CHECK_GT(n, 1);
  w.name_pool_size = std::max<int64_t>(64, n / 8);
  w.content_pool_size = std::max<int64_t>(256, n / 3);

  // Matched entities.
  w.entities.resize(static_cast<size_t>(n + cfg.num_general_concepts));
  for (int64_t i = 0; i < n; ++i) {
    WorldEntity& e = w.entities[static_cast<size_t>(i)];
    e.type = static_cast<int64_t>(rng->Zipf(kNumTypes, 1.1));
    e.name_words = {
        kNamePoolBase + static_cast<int64_t>(
                            rng->UniformInt(static_cast<uint64_t>(
                                w.name_pool_size))),
        kUniqueNameBase + i};
    const int64_t theme_count = 3 + static_cast<int64_t>(rng->UniformInt(3));
    for (int64_t t = 0; t < theme_count; ++t) {
      e.theme_words.push_back(
          kContentPoolBase +
          static_cast<int64_t>(
              rng->UniformInt(static_cast<uint64_t>(w.content_pool_size))));
    }
    e.has_comment = rng->Bernoulli(cfg.comment_prob);
  }
  // General-concept entities (super hubs like <person>): typed names, no
  // themes, no comments.
  for (int64_t g = 0; g < cfg.num_general_concepts; ++g) {
    WorldEntity& e = w.entities[static_cast<size_t>(n + g)];
    e.type = g % kNumTypes;
    e.is_general_concept = true;
    e.name_words = {kTypeWordBase + e.type, kUniqueNameBase + n + g};
  }

  // ---- Relational edges (configuration model over target degrees) ----------
  std::vector<int64_t> stubs;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t extra_range =
        std::max<int64_t>(1, cfg.max_degree - cfg.min_degree + 1);
    const int64_t d =
        cfg.min_degree +
        static_cast<int64_t>(
            rng->Zipf(static_cast<uint64_t>(extra_range), cfg.degree_zipf_s));
    for (int64_t k = 0; k < d; ++k) stubs.push_back(i);
  }
  rng->Shuffle(&stubs);
  std::set<std::pair<int64_t, int64_t>> seen;
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const int64_t a = stubs[i], b = stubs[i + 1];
    if (a == b) continue;
    const auto key = std::minmax(a, b);
    if (!seen.insert(key).second) continue;
    const int64_t rel = static_cast<int64_t>(
        rng->Zipf(static_cast<uint64_t>(cfg.num_relations), 1.05));
    w.edges.push_back(WorldEdge{a, b, rel});
  }
  // Type edges to the general concepts.
  if (cfg.num_general_concepts > 0) {
    const int64_t type_rel = cfg.num_relations;  // dedicated "type" relation
    for (int64_t i = 0; i < n; ++i) {
      if (!rng->Bernoulli(cfg.general_link_prob)) continue;
      const int64_t concept_id =
          n + (w.entities[static_cast<size_t>(i)].type %
               cfg.num_general_concepts);
      w.edges.push_back(WorldEdge{i, concept_id, type_rel});
    }
  }
  for (size_t idx = 0; idx < w.edges.size(); ++idx) {
    const WorldEdge& e = w.edges[idx];
    w.entities[static_cast<size_t>(e.head)].neighbor_ids.push_back(e.tail);
    w.entities[static_cast<size_t>(e.tail)].neighbor_ids.push_back(e.head);
  }

  // ---- Attribute facts -------------------------------------------------------
  for (int64_t i = 0; i < n; ++i) {
    WorldEntity& e = w.entities[static_cast<size_t>(i)];
    // Mean attrs_per_entity with +-50% jitter, at least one.
    const int64_t lo = std::max<int64_t>(1, static_cast<int64_t>(
                                                cfg.attrs_per_entity * 0.5));
    const int64_t hi = std::max(
        lo, static_cast<int64_t>(cfg.attrs_per_entity * 1.5 + 0.5));
    const int64_t count = rng->UniformRange(lo, hi);
    for (int64_t k = 0; k < count; ++k) {
      WorldFact f;
      f.entity = i;
      f.attribute = static_cast<int64_t>(
          rng->Zipf(static_cast<uint64_t>(cfg.num_attributes), 1.05));
      f.numeric = rng->Bernoulli(cfg.numeric_share);
      if (f.numeric) {
        // Years, counts, or identifiers.
        switch (rng->UniformInt(3)) {
          case 0:
            f.number = rng->UniformRange(1500, 2022);
            break;
          case 1:
            f.number = rng->UniformRange(1, 1'000'000);
            break;
          default:
            f.number = rng->UniformRange(10'000'000, 99'999'999);
            break;
        }
      } else {
        // 1-3 theme words plus 0-2 global content words.
        const int64_t theme_n = 1 + static_cast<int64_t>(rng->UniformInt(3));
        for (int64_t t = 0; t < theme_n; ++t) {
          f.words.push_back(e.theme_words[static_cast<size_t>(
              rng->UniformInt(e.theme_words.size()))]);
        }
        const int64_t global_n = static_cast<int64_t>(rng->UniformInt(3));
        for (int64_t t = 0; t < global_n; ++t) {
          f.words.push_back(
              kContentPoolBase +
              static_cast<int64_t>(rng->UniformInt(
                  static_cast<uint64_t>(w.content_pool_size))));
        }
      }
      e.fact_indices.push_back(static_cast<int64_t>(w.facts.size()));
      w.facts.push_back(std::move(f));
    }
  }
  return w;
}

// Per-view rendering state.
struct ViewSchema {
  std::vector<int64_t> relation_map;   // world rel id -> view rel id
  std::vector<int64_t> attribute_map;  // world attr id -> view attr id
  int64_t num_relations;
  int64_t num_attributes;
};

ViewSchema MakeSchema(const GeneratorConfig& cfg, int view, Rng* rng) {
  ViewSchema s;
  const double scale = (view == 1) ? 1.0 : cfg.kg2_schema_scale;
  // +1 for the dedicated type relation.
  const int64_t world_rels = cfg.num_relations + 1;
  s.num_relations =
      std::max<int64_t>(2, static_cast<int64_t>(world_rels * scale));
  s.num_attributes = std::max<int64_t>(
      2, static_cast<int64_t>(cfg.num_attributes * scale));
  s.relation_map.resize(static_cast<size_t>(world_rels));
  for (int64_t r = 0; r < world_rels; ++r) {
    if (view >= 2 && rng->Bernoulli(cfg.schema_shift)) {
      s.relation_map[static_cast<size_t>(r)] = static_cast<int64_t>(
          rng->UniformInt(static_cast<uint64_t>(s.num_relations)));
    } else {
      s.relation_map[static_cast<size_t>(r)] = r % s.num_relations;
    }
  }
  s.attribute_map.resize(static_cast<size_t>(cfg.num_attributes));
  for (int64_t a = 0; a < cfg.num_attributes; ++a) {
    if (view >= 2 && rng->Bernoulli(cfg.schema_shift)) {
      s.attribute_map[static_cast<size_t>(a)] = static_cast<int64_t>(
          rng->UniformInt(static_cast<uint64_t>(s.num_attributes)));
    } else {
      s.attribute_map[static_cast<size_t>(a)] = a % s.num_attributes;
    }
  }
  return s;
}

std::string RenderNumber(int64_t number) { return std::to_string(number); }

// Renders word indices into a view's language, with per-occurrence
// borrowing: a KG2 word keeps the KG1 surface form with cfg.borrow_prob
// (untranslated proper nouns / labels, see GeneratorConfig::borrow_prob).
struct WordRenderer {
  LanguageSpec lang;
  LanguageSpec source_lang;
  double borrow_prob;
  Rng* rng;

  std::string operator()(int64_t idx) const {
    if (borrow_prob > 0.0 && rng->Bernoulli(borrow_prob)) {
      return Lexicon::Word(source_lang, idx);
    }
    return Lexicon::Word(lang, idx);
  }

  std::string Phrase(const std::vector<int64_t>& indices) const {
    std::string out;
    for (int64_t idx : indices) {
      if (!out.empty()) out += ' ';
      out += (*this)(idx);
    }
    return out;
  }
};

// Renders an entity's display name; guarantees uniqueness within the view.
std::string RenderEntityName(const WorldEntity& e, int64_t world_id,
                             const LanguageSpec& lang, NameMode mode,
                             std::unordered_set<std::string>* used) {
  std::string name;
  if (mode == NameMode::kOpaqueIds) {
    name = "Q" + std::to_string(43 + world_id * 7);
  } else {
    name = Lexicon::Phrase(lang, e.name_words);
  }
  int64_t attempt = 0;
  std::string candidate = name;
  while (!used->insert(candidate).second) {
    ++attempt;
    candidate = name + " " +
                Lexicon::Word(lang, kExtraNameBase + world_id * 13 + attempt);
  }
  return candidate;
}

// Builds the long-text comment for an entity: name, type, neighbor names,
// fact words and numbers, padded with fillers — the textual channel that
// carries the structured information of long-tail entities.
std::string RenderComment(const World& w, const WorldEntity& e,
                          const GeneratorConfig& cfg,
                          const WordRenderer& render, Rng* rng) {
  std::vector<std::string> parts;
  auto push_word = [&](int64_t idx) { parts.push_back(render(idx)); };
  for (int64_t idx : e.name_words) push_word(idx);
  push_word(kTypeWordBase + e.type);
  // Up to 8 neighbors, their names inlined (the indirect-association
  // channel: neighbors reachable through text, not structure).
  const size_t max_neighbors = 8;
  for (size_t k = 0; k < std::min(max_neighbors, e.neighbor_ids.size());
       ++k) {
    const WorldEntity& nb =
        w.entities[static_cast<size_t>(e.neighbor_ids[k])];
    for (int64_t idx : nb.name_words) push_word(idx);
    push_word(kFillerBase + static_cast<int64_t>(rng->UniformInt(
                                static_cast<uint64_t>(kNumFillers))));
  }
  for (int64_t fi : e.fact_indices) {
    const WorldFact& f = w.facts[static_cast<size_t>(fi)];
    if (f.numeric) {
      parts.push_back(RenderNumber(f.number));
    } else {
      for (int64_t idx : f.words) push_word(idx);
    }
  }
  // Pad with theme + filler words to reach the minimum length.
  while (static_cast<int64_t>(parts.size()) < cfg.comment_min_words) {
    if (!e.theme_words.empty() && rng->Bernoulli(0.5)) {
      push_word(e.theme_words[static_cast<size_t>(
          rng->UniformInt(e.theme_words.size()))]);
    } else {
      push_word(kFillerBase + static_cast<int64_t>(rng->UniformInt(
                                  static_cast<uint64_t>(kNumFillers))));
    }
  }
  if (static_cast<int64_t>(parts.size()) > cfg.comment_max_words) {
    parts.resize(static_cast<size_t>(cfg.comment_max_words));
  }
  return Join(parts, " ");
}

// Renders one view of the world into a KnowledgeGraph. `entity_map` receives
// world id -> view EntityId for matched entities. `present` (null = all)
// masks world entities out of this view entirely — no node, no edges, no
// attributes; their entity_map slot stays kInvalidEntity. Comments of
// surviving neighbors still mention a withheld entity's name: text may talk
// about things the KG does not contain, exactly like real dangling cases.
kg::KnowledgeGraph RenderView(const World& w, const GeneratorConfig& cfg,
                              int view, Rng* rng,
                              std::vector<kg::EntityId>* entity_map,
                              const std::vector<char>* present = nullptr) {
  const LanguageSpec lang{view == 1 ? cfg.kg1_lang_seed : cfg.kg2_lang_seed};
  const NameMode mode =
      (view == 1) ? NameMode::kShared /* KG1 always uses real names */
                  : cfg.kg2_name_mode;
  const ViewSchema schema = MakeSchema(cfg, view, rng);
  const WordRenderer render{
      lang, LanguageSpec{cfg.kg1_lang_seed},
      (view >= 2 && cfg.kg2_lang_seed != cfg.kg1_lang_seed)
          ? cfg.borrow_prob
          : 0.0,
      rng};

  kg::KnowledgeGraph g;
  // One commit at the end instead of one per Add: the render is a pure
  // bulk build, nobody snapshots mid-way.
  g.BeginBulkLoad();
  std::unordered_set<std::string> used_names;

  // Insert matched entities in a per-view shuffled order so ids carry no
  // alignment signal.
  const int64_t total = static_cast<int64_t>(w.entities.size());
  const auto is_present = [&](int64_t wid) {
    return present == nullptr || (*present)[static_cast<size_t>(wid)] != 0;
  };
  std::vector<int64_t> order(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) order[static_cast<size_t>(i)] = i;
  rng->Shuffle(&order);
  entity_map->assign(static_cast<size_t>(total), kg::kInvalidEntity);
  for (int64_t wid : order) {
    if (!is_present(wid)) continue;
    const WorldEntity& e = w.entities[static_cast<size_t>(wid)];
    const std::string name =
        RenderEntityName(e, wid, lang, mode, &used_names);
    (*entity_map)[static_cast<size_t>(wid)] = g.AddEntity(name);
  }
  // World ids the extras below may link to (withheld entities cannot be
  // edge endpoints; the general concepts are always present).
  std::vector<int64_t> present_wids;
  present_wids.reserve(static_cast<size_t>(total));
  for (int64_t wid = 0; wid < total; ++wid) {
    if (is_present(wid)) present_wids.push_back(wid);
  }

  // Relation / attribute display names (per-view schema vocabulary).
  std::vector<kg::RelationId> rel_ids;
  for (int64_t r = 0; r < schema.num_relations; ++r) {
    rel_ids.push_back(g.AddRelation(
        Lexicon::Word(lang, kSchemaWordBase + view * 100'000 + r)));
  }
  std::vector<kg::AttributeId> attr_ids;
  // Attribute 0 is "name", attribute 1 is "comment" in every view.
  attr_ids.push_back(g.AddAttribute("name"));
  attr_ids.push_back(g.AddAttribute("comment"));
  for (int64_t a = 0; a < schema.num_attributes; ++a) {
    attr_ids.push_back(g.AddAttribute(
        Lexicon::Word(lang, kSchemaWordBase + view * 100'000 + 50'000 + a)));
  }

  // Edges with per-view dropout. An edge touching a withheld entity is
  // gone with it (kInvalidEntity endpoints are never rendered).
  for (const WorldEdge& e : w.edges) {
    if (!rng->Bernoulli(cfg.edge_keep_prob)) continue;
    const kg::EntityId h = (*entity_map)[static_cast<size_t>(e.head)];
    const kg::EntityId t = (*entity_map)[static_cast<size_t>(e.tail)];
    if (h == kg::kInvalidEntity || t == kg::kInvalidEntity) continue;
    const int64_t rel = schema.relation_map[static_cast<size_t>(e.relation)];
    g.AddRelationalTriple(h, rel_ids[static_cast<size_t>(rel)], t);
  }

  // Attributes.
  for (int64_t wid = 0; wid < total; ++wid) {
    const WorldEntity& e = w.entities[static_cast<size_t>(wid)];
    const kg::EntityId vid = (*entity_map)[static_cast<size_t>(wid)];
    if (vid == kg::kInvalidEntity) continue;
    const bool strip_structured =
        view == 2 && !e.is_general_concept && e.has_comment &&
        static_cast<int64_t>(e.neighbor_ids.size()) <= 3 &&
        rng->Bernoulli(cfg.longtail_strip_prob);
    // Name attribute (dropped for opaque-id KGs: a Wikidata Q-id carries no
    // usable name, and for stripped long-tail entities).
    if (mode != NameMode::kOpaqueIds && !strip_structured) {
      g.AddAttributeTriple(vid, attr_ids[0], render.Phrase(e.name_words));
    }
    if (!strip_structured) {
      for (int64_t fi : e.fact_indices) {
        if (!rng->Bernoulli(cfg.attr_keep_prob)) continue;
        const WorldFact& f = w.facts[static_cast<size_t>(fi)];
        const int64_t a =
            schema.attribute_map[static_cast<size_t>(f.attribute)];
        std::string value =
            f.numeric ? RenderNumber(f.number) : render.Phrase(f.words);
        g.AddAttributeTriple(vid, attr_ids[static_cast<size_t>(a + 2)],
                             std::move(value));
      }
    }
    if (e.has_comment) {
      g.AddAttributeTriple(vid, attr_ids[1],
                           RenderComment(w, e, cfg, render, rng));
    }
  }

  // Per-view unmatched extras: fresh entities with a couple of edges and
  // attributes, no ground-truth counterpart.
  const int64_t extras =
      static_cast<int64_t>(cfg.num_matched * cfg.extra_entity_frac);
  for (int64_t x = 0; x < extras; ++x) {
    const int64_t uniq = kExtraNameBase + view * 1'000'000 + x;
    std::string name;
    if (mode == NameMode::kOpaqueIds) {
      name = "Q" + std::to_string(9'000'000 + view * 1'000'000 + x);
    } else {
      name = Lexicon::Word(lang, kNamePoolBase +
                                     static_cast<int64_t>(rng->UniformInt(
                                         static_cast<uint64_t>(
                                             w.name_pool_size)))) +
             " " + Lexicon::Word(lang, uniq);
    }
    int64_t attempt = 0;
    std::string candidate = name;
    while (!used_names.insert(candidate).second) {
      ++attempt;
      candidate = name + " " + Lexicon::Word(lang, uniq + 7919 * attempt);
    }
    const kg::EntityId vid = g.AddEntity(candidate);
    const int64_t edges = 1 + static_cast<int64_t>(rng->UniformInt(3));
    for (int64_t k = 0; k < edges; ++k) {
      const int64_t partner_wid = present_wids[static_cast<size_t>(
          rng->UniformInt(present_wids.size()))];
      const kg::EntityId partner =
          (*entity_map)[static_cast<size_t>(partner_wid)];
      const int64_t rel = static_cast<int64_t>(rng->UniformInt(
          static_cast<uint64_t>(schema.num_relations)));
      g.AddRelationalTriple(vid, rel_ids[static_cast<size_t>(rel)], partner);
    }
    if (mode != NameMode::kOpaqueIds) {
      g.AddAttributeTriple(vid, attr_ids[0],
                           candidate);
    }
    const int64_t attrs = 1 + static_cast<int64_t>(rng->UniformInt(3));
    for (int64_t k = 0; k < attrs; ++k) {
      const int64_t a = static_cast<int64_t>(
          rng->UniformInt(static_cast<uint64_t>(schema.num_attributes)));
      std::string value;
      if (rng->Bernoulli(cfg.numeric_share)) {
        value = RenderNumber(rng->UniformRange(1500, 2022));
      } else {
        value = Lexicon::Word(
            lang, kContentPoolBase +
                      static_cast<int64_t>(rng->UniformInt(
                          static_cast<uint64_t>(w.content_pool_size))));
      }
      g.AddAttributeTriple(vid, attr_ids[static_cast<size_t>(a + 2)],
                           std::move(value));
    }
  }
  g.EndBulkLoad();
  return g;
}

}  // namespace

namespace {

// Emits the comparable pre-training corpus: sentences of vocabulary words
// (content / name-pool / type / filler) with each word immediately followed
// by its other-language rendering, so a windowed co-occurrence model learns
// the cross-lingual word bridge — the role the multilingual pre-training
// corpora play for BERT. Entity-unique words never appear here.
std::vector<std::string> BuildPretrainCorpus(const GeneratorConfig& cfg,
                                             const World& w, Rng* rng) {
  std::vector<std::string> corpus;
  if (cfg.pretrain_sentences <= 0) return corpus;
  const LanguageSpec lang1{cfg.kg1_lang_seed};
  const LanguageSpec lang2{cfg.kg2_lang_seed};
  corpus.reserve(static_cast<size_t>(cfg.pretrain_sentences));
  for (int64_t s = 0; s < cfg.pretrain_sentences; ++s) {
    std::string sentence;
    for (int64_t k = 0; k < cfg.pretrain_words_per_sentence; ++k) {
      int64_t idx;
      const uint64_t kind = rng->UniformInt(100);
      if (kind < 70) {
        idx = kContentPoolBase + static_cast<int64_t>(rng->UniformInt(
                                     static_cast<uint64_t>(
                                         w.content_pool_size)));
      } else if (kind < 85) {
        idx = kNamePoolBase + static_cast<int64_t>(rng->UniformInt(
                                  static_cast<uint64_t>(w.name_pool_size)));
      } else if (kind < 90) {
        idx = kTypeWordBase + static_cast<int64_t>(rng->UniformInt(
                                  static_cast<uint64_t>(kNumTypes)));
      } else {
        idx = kFillerBase + static_cast<int64_t>(rng->UniformInt(
                                static_cast<uint64_t>(kNumFillers)));
      }
      if (!sentence.empty()) sentence += ' ';
      sentence += Lexicon::Word(lang1, idx);
      if (!(lang1 == lang2)) {
        sentence += ' ';
        sentence += Lexicon::Word(lang2, idx);
      }
    }
    corpus.push_back(std::move(sentence));
  }
  return corpus;
}

}  // namespace

namespace {

// Marks `count` entities drawn from `candidates` (consumed from the front)
// as absent in `present`.
void WithholdPrefix(const std::vector<int64_t>& candidates, size_t begin,
                    size_t count, std::vector<char>* present) {
  for (size_t i = begin; i < begin + count; ++i) {
    (*present)[static_cast<size_t>(candidates[i])] = 0;
  }
}

}  // namespace

GeneratedBenchmark BenchmarkGenerator::Generate(
    const GeneratorConfig& cfg) const {
  Rng rng(cfg.seed);
  Rng world_rng = rng.Fork();
  Rng view1_rng = rng.Fork();
  Rng view2_rng = rng.Fork();
  Rng corpus_rng = rng.Fork();
  // Forked last so the world/view/corpus streams — and with zero
  // adversarial knobs the whole benchmark — match the pre-adversarial
  // generator draw-for-draw.
  Rng adv_rng = rng.Fork();

  const World world = BuildWorld(cfg, &world_rng);
  const int64_t n = cfg.num_matched;
  const int64_t total = static_cast<int64_t>(world.entities.size());

  // Disjoint dangling draws over the matched entities: a shuffled prefix
  // is withheld from KG2 (making its KG1 copy dangling), the next slice
  // from KG1. General concepts (world ids >= n) stay in every view.
  SDEA_CHECK_LT(cfg.dangling_frac_kg1 + cfg.dangling_frac_kg2, 1.0);
  std::vector<char> present1(static_cast<size_t>(total), 1);
  std::vector<char> present2(static_cast<size_t>(total), 1);
  if (cfg.dangling_frac_kg1 > 0.0 || cfg.dangling_frac_kg2 > 0.0) {
    std::vector<int64_t> ids(static_cast<size_t>(n));
    std::iota(ids.begin(), ids.end(), 0);
    adv_rng.Shuffle(&ids);
    const auto d1 = static_cast<size_t>(
        static_cast<double>(n) * cfg.dangling_frac_kg1);
    const auto d2 = static_cast<size_t>(
        static_cast<double>(n) * cfg.dangling_frac_kg2);
    WithholdPrefix(ids, 0, d1, &present2);
    WithholdPrefix(ids, d1, d2, &present1);
  }

  GeneratedBenchmark out;
  out.name = cfg.name;
  std::vector<kg::EntityId> map1, map2;
  out.kg1 = RenderView(world, cfg, 1, &view1_rng, &map1, &present1);
  out.kg2 = RenderView(world, cfg, 2, &view2_rng, &map2, &present2);
  for (size_t wid = 0; wid < world.entities.size(); ++wid) {
    const kg::EntityId a = map1[wid];
    const kg::EntityId b = map2[wid];
    if (a != kg::kInvalidEntity && b != kg::kInvalidEntity) {
      out.ground_truth.emplace_back(a, b);
    } else if (a != kg::kInvalidEntity) {
      out.dangling_kg1.push_back(a);
    } else if (b != kg::kInvalidEntity) {
      out.dangling_kg2.push_back(b);
    }
  }
  // Partial seed overlap: hide a slice of the true pairs from every split.
  if (cfg.partial_overlap > 0.0) {
    std::vector<std::pair<kg::EntityId, kg::EntityId>> kept;
    kept.reserve(out.ground_truth.size());
    for (const auto& p : out.ground_truth) {
      if (adv_rng.Bernoulli(cfg.partial_overlap)) {
        out.hidden_truth.push_back(p);
      } else {
        kept.push_back(p);
      }
    }
    out.ground_truth = std::move(kept);
  }
  out.pretrain_corpus = BuildPretrainCorpus(cfg, world, &corpus_rng);
  return out;
}

GeneratedChain BenchmarkGenerator::GenerateChain(const GeneratorConfig& cfg,
                                                 int num_kgs) const {
  SDEA_CHECK_GE(num_kgs, 2);
  // The word-index address space reserves one kExtraNameBase slot per
  // view; view 5 would collide with kSchemaWordBase.
  SDEA_CHECK_LE(num_kgs, 4);
  Rng rng(cfg.seed);
  Rng world_rng = rng.Fork();
  const World world = BuildWorld(cfg, &world_rng);
  const int64_t n = cfg.num_matched;
  const int64_t total = static_cast<int64_t>(world.entities.size());

  GeneratedChain out;
  out.name = cfg.name + "-chain" + std::to_string(num_kgs);
  std::vector<std::vector<kg::EntityId>> maps(
      static_cast<size_t>(num_kgs));
  for (int v = 0; v < num_kgs; ++v) {
    const int view = v + 1;
    Rng mask_rng = rng.Fork();
    Rng view_rng = rng.Fork();
    GeneratorConfig vcfg = cfg;
    if (view >= 3) {
      // Each later hop gets its own language; hop 2 keeps the configured
      // KG2 seed so a 2-chain is the familiar pair.
      vcfg.kg2_lang_seed = cfg.kg2_lang_seed + 977 * (view - 2);
    }
    // Every view independently loses a slice of the matched entities, so
    // consecutive links partially overlap and transitive coverage decays
    // with chain length.
    const double frac =
        (view == 1) ? cfg.dangling_frac_kg1 : cfg.dangling_frac_kg2;
    SDEA_CHECK_LT(frac, 1.0);
    std::vector<char> present(static_cast<size_t>(total), 1);
    if (frac > 0.0) {
      std::vector<int64_t> ids(static_cast<size_t>(n));
      std::iota(ids.begin(), ids.end(), 0);
      mask_rng.Shuffle(&ids);
      WithholdPrefix(
          ids, 0, static_cast<size_t>(static_cast<double>(n) * frac),
          &present);
    }
    out.kgs.push_back(RenderView(world, vcfg, view, &view_rng,
                                 &maps[static_cast<size_t>(v)], &present));
  }

  out.links.resize(static_cast<size_t>(num_kgs - 1));
  for (int v = 0; v + 1 < num_kgs; ++v) {
    auto& link = out.links[static_cast<size_t>(v)];
    for (int64_t wid = 0; wid < total; ++wid) {
      const kg::EntityId a = maps[static_cast<size_t>(v)][static_cast<size_t>(wid)];
      const kg::EntityId b =
          maps[static_cast<size_t>(v + 1)][static_cast<size_t>(wid)];
      if (a != kg::kInvalidEntity && b != kg::kInvalidEntity) {
        link.emplace_back(a, b);
      }
    }
  }
  for (int64_t wid = 0; wid < total; ++wid) {
    const kg::EntityId a = maps.front()[static_cast<size_t>(wid)];
    const kg::EntityId b = maps.back()[static_cast<size_t>(wid)];
    if (a != kg::kInvalidEntity && b != kg::kInvalidEntity) {
      out.transitive.emplace_back(a, b);
    }
  }
  return out;
}

}  // namespace sdea::datagen
