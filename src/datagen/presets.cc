#include "datagen/presets.h"

#include <algorithm>

namespace sdea::datagen {
namespace {

// Common knobs for the dense DBP15K-style pairs: heavier degrees (Table VI:
// only ~25-30% of entities have degree <= 3) and many attribute triples.
GeneratorConfig Dbp15kBase() {
  GeneratorConfig c;
  c.num_matched = 15'000;
  c.extra_entity_frac = 0.3;
  c.degree_zipf_s = 0.9;
  c.min_degree = 2;
  c.max_degree = 80;
  c.num_general_concepts = 8;
  c.general_link_prob = 0.9;
  c.num_relations = 300;
  c.edge_keep_prob = 0.85;
  c.num_attributes = 120;
  c.attrs_per_entity = 8.0;
  c.numeric_share = 0.15;
  c.attr_keep_prob = 0.9;
  c.comment_prob = 0.4;
  c.longtail_strip_prob = 0.35;
  return c;
}

// Sparse SRPRS-style pairs: ~70% of entities have degree <= 3.
GeneratorConfig SrprsBase() {
  GeneratorConfig c;
  c.num_matched = 15'000;
  c.extra_entity_frac = 0.0;  // SRPRS aligns all 15K entities.
  c.degree_zipf_s = 1.9;
  c.min_degree = 1;
  c.max_degree = 40;
  c.num_general_concepts = 5;
  c.general_link_prob = 0.35;
  c.num_relations = 120;
  c.edge_keep_prob = 0.9;
  c.num_attributes = 60;
  c.attrs_per_entity = 4.0;
  c.numeric_share = 0.2;
  c.attr_keep_prob = 0.9;
  c.comment_prob = 0.45;
  c.longtail_strip_prob = 0.5;
  return c;
}

}  // namespace

std::vector<DatasetSpec> Dbp15kPresets() {
  std::vector<DatasetSpec> out;
  {
    GeneratorConfig c = Dbp15kBase();
    c.name = "DBP15K ZH-EN";
    c.seed = 1001;
    c.kg1_lang_seed = 11;
    c.kg2_lang_seed = 12;  // Disjoint surface forms.
    c.kg2_name_mode = NameMode::kTranslated;
    out.push_back({"zh_en", c});
  }
  {
    GeneratorConfig c = Dbp15kBase();
    c.name = "DBP15K JA-EN";
    c.seed = 1002;
    c.kg1_lang_seed = 21;
    c.kg2_lang_seed = 22;
    c.kg2_name_mode = NameMode::kTranslated;
    // JA-EN has slightly sparser attributes than ZH-EN (Table I).
    c.attrs_per_entity = 7.0;
    out.push_back({"ja_en", c});
  }
  {
    GeneratorConfig c = Dbp15kBase();
    c.name = "DBP15K FR-EN";
    c.seed = 1003;
    c.kg1_lang_seed = 31;
    c.kg2_lang_seed = 31;  // Shared surface forms (literally similar names).
    c.kg2_name_mode = NameMode::kShared;
    c.degree_zipf_s = 0.7;  // FR-EN is the densest pair (Table VI: 23% <= 3).
    out.push_back({"fr_en", c});
  }
  return out;
}

std::vector<DatasetSpec> SrprsPresets() {
  std::vector<DatasetSpec> out;
  {
    GeneratorConfig c = SrprsBase();
    c.name = "SRPRS EN-FR";
    c.seed = 2001;
    c.kg1_lang_seed = 41;
    c.kg2_lang_seed = 41;  // Names literally similar across the pair.
    c.kg2_name_mode = NameMode::kShared;
    out.push_back({"en_fr", c});
  }
  {
    GeneratorConfig c = SrprsBase();
    c.name = "SRPRS EN-DE";
    c.seed = 2002;
    c.kg1_lang_seed = 51;
    c.kg2_lang_seed = 51;
    c.kg2_name_mode = NameMode::kShared;
    c.attrs_per_entity = 5.0;  // EN-DE's DE side is attribute-heavy.
    out.push_back({"en_de", c});
  }
  {
    GeneratorConfig c = SrprsBase();
    c.name = "SRPRS DBP-WD";
    c.seed = 2003;
    c.kg1_lang_seed = 61;
    c.kg2_lang_seed = 61;
    c.kg2_name_mode = NameMode::kShared;
    out.push_back({"dbp_wd", c});
  }
  {
    GeneratorConfig c = SrprsBase();
    c.name = "SRPRS DBP-YG";
    c.seed = 2004;
    c.kg1_lang_seed = 71;
    c.kg2_lang_seed = 71;
    c.kg2_name_mode = NameMode::kShared;
    // YAGO side has a tiny schema (30 relations / 21 attributes).
    c.kg2_schema_scale = 0.25;
    out.push_back({"dbp_yg", c});
  }
  return out;
}

std::vector<DatasetSpec> OpenEaPresets() {
  std::vector<DatasetSpec> out;
  {
    GeneratorConfig c;
    c.name = "OpenEA D_W_15K_V1";
    c.seed = 3001;
    c.num_matched = 15'000;
    c.extra_entity_frac = 0.0;
    c.degree_zipf_s = 1.5;  // Table VI: 52.8% of entities degree <= 3.
    c.min_degree = 1;
    c.max_degree = 50;
    c.num_general_concepts = 5;
    c.general_link_prob = 0.5;
    c.num_relations = 200;
    c.edge_keep_prob = 0.9;
    c.num_attributes = 80;
    c.attrs_per_entity = 5.0;
    c.numeric_share = 0.4;  // Paper's error analysis: ~40% numeric values.
    c.attr_keep_prob = 0.9;
    c.comment_prob = 0.35;
    c.longtail_strip_prob = 0.5;
    c.kg1_lang_seed = 81;
    c.kg2_lang_seed = 81;  // Monolingual pair...
    c.kg2_name_mode = NameMode::kOpaqueIds;  // ...but KG2 names are Q-ids.
    c.kg2_schema_scale = 1.5;  // Wikidata side has more attributes.
    out.push_back({"d_w_15k_v1", c});
  }
  {
    GeneratorConfig c = out.back().config;
    c.name = "OpenEA D_W_100K_V1";
    c.seed = 3002;
    c.num_matched = 100'000;
    c.degree_zipf_s = 1.45;  // 54.7% degree <= 3.
    out.push_back({"d_w_100k_v1", c});
  }
  return out;
}

std::vector<DatasetSpec> AllPresets() {
  std::vector<DatasetSpec> out;
  for (auto& s : Dbp15kPresets()) out.push_back(std::move(s));
  for (auto& s : SrprsPresets()) out.push_back(std::move(s));
  for (auto& s : OpenEaPresets()) out.push_back(std::move(s));
  return out;
}

DatasetSpec MillionScalePreset() {
  GeneratorConfig c;
  c.name = "MILLION D-W 1M";
  c.seed = 4001;
  c.num_matched = 1'000'000;
  c.extra_entity_frac = 0.0;
  // Long-tail heavy, like the 100K OpenEA slice it extends.
  c.degree_zipf_s = 1.45;
  c.min_degree = 1;
  c.max_degree = 50;
  c.num_general_concepts = 12;
  c.general_link_prob = 0.5;
  c.num_relations = 500;
  c.edge_keep_prob = 0.9;
  // Light attributes: 1M entities x 2 attrs is already 2M triples.
  c.num_attributes = 80;
  c.attrs_per_entity = 2.0;
  c.numeric_share = 0.4;
  c.attr_keep_prob = 0.9;
  c.comment_prob = 0.1;
  c.longtail_strip_prob = 0.5;
  c.kg1_lang_seed = 91;
  c.kg2_lang_seed = 91;  // Monolingual; KG2 names are opaque Q-ids.
  c.kg2_name_mode = NameMode::kOpaqueIds;
  c.kg2_schema_scale = 1.5;
  c.pretrain_sentences = 0;  // No LM corpus at this scale.
  return {"d_w_1m", c};
}

DatasetSpec AdversarialPreset(double dangling_rate) {
  // Built on the monolingual SRPRS-style base (names literally similar)
  // rather than a cross-lingual pair: the suite isolates the *dangling*
  // variable, so the matcher should be strong on the matchable population
  // and any accuracy cliff attributable to the withheld counterparts, not
  // to translation difficulty.
  GeneratorConfig c = SrprsBase();
  c.name = "ADVERSARIAL EN-EN " +
           std::to_string(static_cast<int>(dangling_rate * 100 + 0.5)) +
           "% dangling";
  c.seed = 5001;  // One seed across the sweep: only the rate varies.
  c.kg1_lang_seed = 117;
  c.kg2_lang_seed = 117;
  c.kg2_name_mode = NameMode::kShared;
  c.dangling_frac_kg1 = dangling_rate;
  c.dangling_frac_kg2 = dangling_rate / 2.0;
  return {"adversarial_" +
              std::to_string(static_cast<int>(dangling_rate * 100 + 0.5)),
          c};
}

std::vector<DatasetSpec> AdversarialSweep() {
  std::vector<DatasetSpec> out;
  for (double rate : {0.0, 0.1, 0.3, 0.5}) {
    out.push_back(AdversarialPreset(rate));
  }
  return out;
}

GeneratorConfig ScaledConfig(GeneratorConfig config, double scale) {
  config.num_matched = std::max<int64_t>(
      200, static_cast<int64_t>(config.num_matched * scale));
  return config;
}

}  // namespace sdea::datagen
