#ifndef SDEA_DATAGEN_PRESETS_H_
#define SDEA_DATAGEN_PRESETS_H_

#include <string>
#include <vector>

#include "datagen/generator.h"

namespace sdea::datagen {

/// A named dataset configuration matching one benchmark column of the
/// paper's tables.
struct DatasetSpec {
  std::string id;
  GeneratorConfig config;
};

/// DBP15K (Table III): dense cross-lingual pairs. ZH-EN and JA-EN are
/// rendered with disjoint language ciphers; FR-EN shares surface forms
/// (entity names in the real FR-EN pair are literally similar, which is why
/// name-based baselines approach 99% there).
std::vector<DatasetSpec> Dbp15kPresets();

/// SRPRS (Table IV): sparse, long-tail-heavy pairs with well-aligned entity
/// names (the real benchmark extracts names from interlanguage links).
std::vector<DatasetSpec> SrprsPresets();

/// OpenEA D-W V1 (Table V): sparse pairs where KG2 entities are opaque
/// Wikidata Q-ids and ~40% of attribute values are numeric.
std::vector<DatasetSpec> OpenEaPresets();

/// All nine datasets in paper order (Table VI rows).
std::vector<DatasetSpec> AllPresets();

/// Million-entity monolingual pair at the scale the OpenEA benchmarking
/// study treats as the realistic EA regime — the headline dataset for the
/// sdea::store quantized-snapshot path (README "Million-entity serving").
/// Attribute density is deliberately light: at this scale the store layer
/// needs names + embeddings, not rich attribute text, and generation stays
/// within a single-core budget. Scale it down with ScaledConfig for tests
/// (the distributional knobs are scale-invariant).
DatasetSpec MillionScalePreset();

/// Scales the entity count of `config` by `scale` (min 200 matched
/// entities), leaving distributional parameters untouched. Used to fit the
/// paper-scale presets onto a single-core time budget; EXPERIMENTS.md
/// records the scale used per run.
GeneratorConfig ScaledConfig(GeneratorConfig config, double scale);

}  // namespace sdea::datagen

#endif  // SDEA_DATAGEN_PRESETS_H_
