#ifndef SDEA_DATAGEN_PRESETS_H_
#define SDEA_DATAGEN_PRESETS_H_

#include <string>
#include <vector>

#include "datagen/generator.h"

namespace sdea::datagen {

/// A named dataset configuration matching one benchmark column of the
/// paper's tables.
struct DatasetSpec {
  std::string id;
  GeneratorConfig config;
};

/// DBP15K (Table III): dense cross-lingual pairs. ZH-EN and JA-EN are
/// rendered with disjoint language ciphers; FR-EN shares surface forms
/// (entity names in the real FR-EN pair are literally similar, which is why
/// name-based baselines approach 99% there).
std::vector<DatasetSpec> Dbp15kPresets();

/// SRPRS (Table IV): sparse, long-tail-heavy pairs with well-aligned entity
/// names (the real benchmark extracts names from interlanguage links).
std::vector<DatasetSpec> SrprsPresets();

/// OpenEA D-W V1 (Table V): sparse pairs where KG2 entities are opaque
/// Wikidata Q-ids and ~40% of attribute values are numeric.
std::vector<DatasetSpec> OpenEaPresets();

/// All nine datasets in paper order (Table VI rows).
std::vector<DatasetSpec> AllPresets();

/// Million-entity monolingual pair at the scale the OpenEA benchmarking
/// study treats as the realistic EA regime — the headline dataset for the
/// sdea::store quantized-snapshot path (README "Million-entity serving").
/// Attribute density is deliberately light: at this scale the store layer
/// needs names + embeddings, not rich attribute text, and generation stays
/// within a single-core budget. Scale it down with ScaledConfig for tests
/// (the distributional knobs are scale-invariant).
DatasetSpec MillionScalePreset();

/// The dangling-entity robustness scenario (ROADMAP item 5): a monolingual
/// SRPRS-flavoured pair (names literally similar, so the matcher is strong
/// on the matchable population) where `dangling_rate` of the matched
/// entities is withheld from KG2 (their KG1 copies become dangling
/// sources whose correct decision is abstain) and half that rate is
/// withheld from KG1 (KG2-side danglings shrink the target pool). At 0.0
/// this is an ordinary pair; sweeping the rate traces the forced-matching
/// accuracy cliff that the calibrated abstain threshold flattens
/// (bench/bench_adversarial.cc, EXPERIMENTS.md). Scale with ScaledConfig.
DatasetSpec AdversarialPreset(double dangling_rate);

/// The bench/test sweep points: dangling rates 0, 0.1, 0.3, 0.5.
std::vector<DatasetSpec> AdversarialSweep();

/// Scales the entity count of `config` by `scale` (min 200 matched
/// entities), leaving distributional parameters untouched. Used to fit the
/// paper-scale presets onto a single-core time budget; EXPERIMENTS.md
/// records the scale used per run.
GeneratorConfig ScaledConfig(GeneratorConfig config, double scale);

}  // namespace sdea::datagen

#endif  // SDEA_DATAGEN_PRESETS_H_
