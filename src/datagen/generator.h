#ifndef SDEA_DATAGEN_GENERATOR_H_
#define SDEA_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/lexicon.h"
#include "kg/knowledge_graph.h"

namespace sdea::datagen {

/// How the second KG names its entities, mirroring the three benchmark
/// regimes the paper evaluates:
///  - kShared: near-identical names (SRPRS monolingual DBP-WD/DBP-YG,
///    where BERT-INT/CEA shine);
///  - kTranslated: same meaning, disjoint surface forms (DBP15K
///    cross-lingual);
///  - kOpaqueIds: Wikidata-style "Q1234" identifiers carrying no
///    information (OpenEA D-W, where name-dependent methods collapse).
enum class NameMode { kShared, kTranslated, kOpaqueIds };

/// Parameters of the paired-KG generator. Defaults produce a small
/// DBP15K-flavoured pair; the presets in presets.h configure each published
/// benchmark's statistics.
struct GeneratorConfig {
  std::string name = "synthetic";
  uint64_t seed = 42;

  // ---- Population ----------------------------------------------------------
  int64_t num_matched = 2000;       ///< Entities present in both KGs.
  double extra_entity_frac = 0.25;  ///< Per-KG unmatched extra entities.

  // ---- Relational structure -------------------------------------------------
  double degree_zipf_s = 1.2;       ///< Skew of the target-degree law.
  int64_t max_degree = 60;          ///< Cap on sampled target degree.
  int64_t min_degree = 1;           ///< Floor on sampled target degree.
  int64_t num_general_concepts = 6; ///< Super-hub "type" entities.
  double general_link_prob = 0.85;  ///< P(entity -> its type concept edge).
  int64_t num_relations = 40;       ///< World relation vocabulary size.
  double edge_keep_prob = 0.85;     ///< Per-view edge retention.

  // ---- Attributes -----------------------------------------------------------
  int64_t num_attributes = 24;      ///< World attribute vocabulary size.
  double attrs_per_entity = 4.0;    ///< Mean structured attributes/entity.
  double numeric_share = 0.15;      ///< Fraction of numeric values.
  double attr_keep_prob = 0.9;      ///< Per-view attribute retention.
  double comment_prob = 0.35;       ///< P(entity has a long-text comment).
  int64_t comment_min_words = 20;
  int64_t comment_max_words = 60;
  /// P(a low-degree KG2 entity loses its structured attributes, keeping only
  /// the comment) — the paper's Fabian_Bruskewitz long-tail situation.
  double longtail_strip_prob = 0.5;

  // ---- Naming / language -----------------------------------------------------
  NameMode kg2_name_mode = NameMode::kTranslated;
  uint64_t kg1_lang_seed = 101;
  uint64_t kg2_lang_seed = 202;     ///< Set equal to kg1 for monolingual.
  /// Probability that a KG2 value word keeps its KG1 surface form
  /// (untranslated borrowing). Real cross-lingual infoboxes are full of
  /// Latin-script proper nouns, shared dates and labels; these literal
  /// anchors are what make DBP15K tractable for LM-based methods.
  double borrow_prob = 0.12;

  /// Size of the emitted comparable pre-training corpus: word-level
  /// parallel sentences over the *vocabulary* pools (never entity-specific
  /// words), standing in for the comparable corpora a multilingual LM is
  /// pre-trained on. Carries no entity-alignment labels. Zero disables.
  int64_t pretrain_sentences = 3000;
  int64_t pretrain_words_per_sentence = 8;
  /// Fraction of KG2 relation/attribute ids remapped to fresh names (schema
  /// heterogeneity across the pair).
  double schema_shift = 0.5;
  /// KG2 relation/attribute vocabularies are this fraction of KG1's
  /// (Table I shows asymmetric schema sizes).
  double kg2_schema_scale = 0.75;

  // ---- Adversarial scenarios -----------------------------------------------
  /// Fraction of matched world entities rendered ONLY into KG1: their KG2
  /// copy (and every edge/attribute of it) is withheld, so the KG1 entity
  /// is dangling — it has no counterpart, and the correct alignment
  /// decision for it is abstain. Disjoint from dangling_frac_kg2; the two
  /// must sum to < 1.
  double dangling_frac_kg1 = 0.0;
  /// Fraction rendered ONLY into KG2 (the KG2 entity is dangling).
  double dangling_frac_kg2 = 0.0;
  /// Fraction of the both-present matched pairs withheld from ground_truth
  /// into hidden_truth: the partial-seed-overlap regime, where real
  /// counterparts exist but no label says so. Unlike dangling entities
  /// these sources SHOULD be matched — an abstain rule tuned too hot shows
  /// up as recall loss on exactly this population.
  double partial_overlap = 0.0;
};

/// A generated benchmark instance: the KG pair plus the ground-truth
/// matching used for the 2:1:7 split.
struct GeneratedBenchmark {
  std::string name;
  kg::KnowledgeGraph kg1;
  kg::KnowledgeGraph kg2;
  std::vector<std::pair<kg::EntityId, kg::EntityId>> ground_truth;
  /// KG1 entities whose world counterpart was withheld from KG2
  /// (dangling_frac_kg1): present in kg1, absent from both ground_truth
  /// and kg2. Feed these as eval::kGoldDangling queries.
  std::vector<kg::EntityId> dangling_kg1;
  /// KG2-side danglings (dangling_frac_kg2), as KG2 entity ids.
  std::vector<kg::EntityId> dangling_kg2;
  /// True pairs withheld from ground_truth by partial_overlap: both
  /// entities exist and correspond, but no seed/test label reveals it.
  std::vector<std::pair<kg::EntityId, kg::EntityId>> hidden_truth;
  /// Comparable (word-parallel) corpus for language-model pre-training —
  /// the substitute for the multilingual corpora behind pre-trained BERT.
  /// Contains vocabulary words only, no entity-alignment information.
  std::vector<std::string> pretrain_corpus;
};

/// A chained multi-KG scenario (>2 KGs over one world): alignment systems
/// that compose pairwise links accumulate both dropout noise and dangling
/// gaps at every hop.
struct GeneratedChain {
  std::string name;
  /// kgs[0] renders with the KG1 settings; kgs[1..] with the KG2 settings
  /// under per-view language seeds and independent dropout/dangling draws.
  std::vector<kg::KnowledgeGraph> kgs;
  /// links[k] is the gold alignment between kgs[k] and kgs[k+1]
  /// (both-present world entities only).
  std::vector<std::vector<std::pair<kg::EntityId, kg::EntityId>>> links;
  /// Gold first<->last pairs: every world entity present in both end KGs.
  /// Recovering one by composing links additionally requires the entity to
  /// survive every intermediate view — the gap between |transitive| and
  /// what link-composition can reach is the chained-dangling loss.
  std::vector<std::pair<kg::EntityId, kg::EntityId>> transitive;
};

/// Generates paired knowledge graphs from a common synthetic world. Two
/// views of the same facts are rendered with independent dropout, schema
/// remapping, and language ciphers; the world-to-view entity maps provide
/// the ground truth alignment.
class BenchmarkGenerator {
 public:
  GeneratedBenchmark Generate(const GeneratorConfig& config) const;

  /// Renders `num_kgs` (in [2, 4]) views of one world as a chain. Each
  /// view beyond the first uses the KG2 rendering settings with a distinct
  /// derived language seed, and independently withholds dangling_frac_kg2
  /// of the matched entities, so consecutive links have partial overlap
  /// and the first<->last transitive gold shrinks with chain length.
  GeneratedChain GenerateChain(const GeneratorConfig& config,
                               int num_kgs) const;
};

}  // namespace sdea::datagen

#endif  // SDEA_DATAGEN_GENERATOR_H_
