#include "datagen/lexicon.h"

#include <array>

#include "base/check.h"

namespace sdea::datagen {
namespace {

// A pool of consonant-vowel syllables; each language draws a permuted
// sub-inventory so surface forms differ across languages.
constexpr std::array<const char*, 48> kSyllables = {
    "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du", "ga", "ge",
    "gi", "go", "gu", "ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo",
    "lu", "ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu", "ra",
    "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su", "ta", "te", "ti",
};

uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::string Lexicon::Word(const LanguageSpec& lang, int64_t index) {
  SDEA_CHECK_GE(index, 0);
  const uint64_t h = Mix(lang.seed, static_cast<uint64_t>(index));
  // 2-4 syllables, deterministic in (lang, index).
  const int num_syllables = 2 + static_cast<int>(h % 3);
  std::string out;
  uint64_t state = h;
  for (int s = 0; s < num_syllables; ++s) {
    state = Mix(state, static_cast<uint64_t>(s) + 11);
    out += kSyllables[state % kSyllables.size()];
  }
  return out;
}

}  // namespace sdea::datagen
