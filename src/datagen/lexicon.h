#ifndef SDEA_DATAGEN_LEXICON_H_
#define SDEA_DATAGEN_LEXICON_H_

#include <cstdint>
#include <string>

namespace sdea::datagen {

/// Identifies a synthetic language. Words are addressed by (language,
/// word index): the same index denotes the same *meaning* in every
/// language, while the surface form differs per language. This reproduces
/// the cross-lingual setting of DBP15K: zero string overlap between
/// translations, but a consistent underlying semantic correspondence that a
/// semantics-driven model can learn from parallel data.
struct LanguageSpec {
  /// Seed controlling the syllable inventory of this language.
  uint64_t seed = 1;
  /// Languages with the same seed render identical surface forms
  /// (the monolingual / shared-name setting).
  bool operator==(const LanguageSpec&) const = default;
};

/// Deterministic word synthesizer. Stateless: every (language, index) pair
/// always maps to the same pronounceable word built from the language's
/// syllable inventory, so two generator runs and the two KG views agree.
class Lexicon {
 public:
  /// Surface form of word `index` in `lang`. `index` may be any
  /// non-negative value.
  static std::string Word(const LanguageSpec& lang, int64_t index);

  /// A multi-word phrase for `indices` joined by spaces.
  template <typename Container>
  static std::string Phrase(const LanguageSpec& lang,
                            const Container& indices) {
    std::string out;
    for (int64_t idx : indices) {
      if (!out.empty()) out += ' ';
      out += Word(lang, idx);
    }
    return out;
  }
};

}  // namespace sdea::datagen

#endif  // SDEA_DATAGEN_LEXICON_H_
