#ifndef SDEA_TENSOR_GRADCHECK_H_
#define SDEA_TENSOR_GRADCHECK_H_

#include <functional>

#include "tensor/graph.h"

namespace sdea {

/// Compares analytic gradients against central finite differences.
///
/// `loss_fn` must build a fresh graph from the current parameter values and
/// return the scalar loss value; it is invoked repeatedly with perturbed
/// parameters. `params` are the parameters to check. Returns the maximum
/// absolute difference between the analytic and numeric gradient over all
/// checked coordinates (at most `max_coords_per_param` randomly chosen
/// coordinates per parameter, for speed).
float MaxGradCheckError(const std::function<float()>& loss_fn,
                        const std::function<void()>& backward_fn,
                        std::vector<Parameter*> params,
                        float epsilon = 1e-3f,
                        int max_coords_per_param = 16,
                        uint64_t seed = 7);

}  // namespace sdea

#endif  // SDEA_TENSOR_GRADCHECK_H_
