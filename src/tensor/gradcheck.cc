#include "tensor/gradcheck.h"

#include <cmath>

#include "base/rng.h"

namespace sdea {

float MaxGradCheckError(const std::function<float()>& loss_fn,
                        const std::function<void()>& backward_fn,
                        std::vector<Parameter*> params, float epsilon,
                        int max_coords_per_param, uint64_t seed) {
  // Compute analytic gradients once.
  for (Parameter* p : params) p->ZeroGrad();
  backward_fn();

  Rng rng(seed);
  float max_err = 0.0f;
  for (Parameter* p : params) {
    const int64_t n = p->value.size();
    const int64_t coords =
        std::min<int64_t>(n, static_cast<int64_t>(max_coords_per_param));
    std::vector<size_t> picked = rng.SampleWithoutReplacement(
        static_cast<size_t>(n), static_cast<size_t>(coords));
    for (size_t idx : picked) {
      const int64_t i = static_cast<int64_t>(idx);
      const float orig = p->value[i];
      p->value[i] = orig + epsilon;
      const float plus = loss_fn();
      p->value[i] = orig - epsilon;
      const float minus = loss_fn();
      p->value[i] = orig;
      const float numeric = (plus - minus) / (2.0f * epsilon);
      const float analytic = p->grad[i];
      max_err = std::max(max_err, std::fabs(numeric - analytic));
    }
  }
  return max_err;
}

}  // namespace sdea
