#ifndef SDEA_TENSOR_GRAPH_H_
#define SDEA_TENSOR_GRAPH_H_

#include <functional>
#include <string>
#include <vector>

#include "base/rng.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace sdea {

/// A trainable tensor with an accumulated gradient. Parameters are owned by
/// nn::Module objects and outlive any Graph that references them.
struct Parameter {
  Parameter() = default;
  Parameter(std::string name_in, Tensor value_in)
      : name(std::move(name_in)),
        value(std::move(value_in)),
        grad(value.shape()) {}

  /// Zeroes the accumulated gradient.
  void ZeroGrad() { grad.Zero(); }

  std::string name;
  Tensor value;
  Tensor grad;
};

/// Identifies a node within a Graph.
using NodeId = int32_t;

/// A reverse-mode autodiff tape. A Graph is built per training step: leaf
/// nodes wrap constants (`Input`) or parameters (`Param`); op methods record
/// a node holding the forward value and a closure that propagates gradients
/// to the op's inputs. `Backward(loss)` runs the tape in reverse. The graph
/// is then discarded; parameter gradients persist in the Parameter objects.
///
/// All ops operate on rank-2 tensors unless stated otherwise; rank-1 tensors
/// are accepted where noted and treated as a single row.
class Graph {
 public:
  Graph() = default;

  // Graphs hold closures over internal state; they are neither copyable nor
  // movable.
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // ---- Leaves -------------------------------------------------------------

  /// Constant leaf (no gradient).
  NodeId Input(Tensor value);

  /// Parameter leaf: gradients reaching this node accumulate into `p->grad`.
  /// `p` must outlive the graph.
  NodeId Param(Parameter* p);

  // ---- Linear algebra -----------------------------------------------------

  /// [m,k] @ [k,n] -> [m,n].
  NodeId Matmul(NodeId a, NodeId b);

  /// 2-D transpose.
  NodeId Transpose(NodeId a);

  /// adj @ x for a constant CSR `adj` [m,n] and dense x [n,d] -> [m,d].
  /// `adj` must outlive the graph; gradients flow into `x` only.
  NodeId SparseMatmul(const CsrMatrix* adj, NodeId x);

  // ---- Element-wise -------------------------------------------------------

  NodeId Add(NodeId a, NodeId b);        ///< Same-shape a + b.
  NodeId Sub(NodeId a, NodeId b);        ///< Same-shape a - b.
  NodeId Mul(NodeId a, NodeId b);        ///< Same-shape Hadamard product.
  NodeId Scale(NodeId a, float s);       ///< a * s.
  NodeId AddConst(NodeId a, float c);    ///< a + c element-wise.
  NodeId Sigmoid(NodeId a);
  NodeId Tanh(NodeId a);
  NodeId Relu(NodeId a);

  /// Adds rank-1 `bias` (length n) to every row of [m,n] `a`.
  NodeId AddRowBroadcast(NodeId a, NodeId bias);

  /// Multiplies row i of [m,n] `a` by element i of rank-1 `w` (length m).
  NodeId MulColBroadcast(NodeId a, NodeId w);

  // ---- Shape --------------------------------------------------------------

  /// Concatenates along columns: [m,n1] ++ [m,n2] -> [m,n1+n2].
  /// Rank-1 inputs of equal "rows" semantics (treated as [1,n]) are allowed.
  NodeId ConcatCols(NodeId a, NodeId b);

  /// Concatenates along rows: [m1,n] ++ [m2,n] -> [m1+m2,n].
  NodeId ConcatRows(NodeId a, NodeId b);

  /// Column slice [m, end-begin] of [m,n]; 0 <= begin < end <= n.
  NodeId SliceCols(NodeId a, int64_t begin, int64_t end);

  /// Row slice [end-begin, n] of [m,n].
  NodeId SliceRows(NodeId a, int64_t begin, int64_t end);

  /// Reshape preserving element count.
  NodeId Reshape(NodeId a, std::vector<int64_t> shape);

  // ---- Reductions & normalization ------------------------------------------

  /// Scalar (shape [1]) sum of all elements.
  NodeId SumAll(NodeId a);

  /// Scalar mean of all elements.
  NodeId MeanAll(NodeId a);

  /// Mean over rows: [m,n] -> [1,n].
  NodeId MeanRows(NodeId a);

  /// Row-wise softmax of [m,n].
  NodeId SoftmaxRows(NodeId a);

  /// Layer normalization over each row of [m,n], then affine transform with
  /// rank-1 `gain` and `bias` (length n).
  NodeId LayerNormRows(NodeId a, NodeId gain, NodeId bias, float eps = 1e-5f);

  /// Normalizes each row of [m,n] to unit L2 norm (rows with norm < eps pass
  /// through unscaled).
  NodeId L2NormalizeRows(NodeId a, float eps = 1e-8f);

  // ---- Embedding / dropout --------------------------------------------------

  /// Gathers rows of [V,D] `table` at `indices` -> [N,D]. Backward
  /// scatter-adds into the table gradient.
  NodeId Gather(NodeId table, std::vector<int64_t> indices);

  /// Inverted dropout with keep-prob (1-p). Identity when `training` is
  /// false or p == 0.
  NodeId Dropout(NodeId a, float p, bool training, Rng* rng);

  // ---- Access ---------------------------------------------------------------

  const Tensor& Value(NodeId id) const;
  const Tensor& Grad(NodeId id) const;
  int64_t NumNodes() const { return static_cast<int64_t>(nodes_.size()); }

  /// Runs reverse-mode accumulation from `loss`, which must hold exactly one
  /// element. Parameter gradients are *added* to each Parameter::grad.
  void Backward(NodeId loss);

 private:
  struct Node {
    Tensor value;
    Tensor grad;  // allocated lazily in Backward
    bool requires_grad = false;
    std::function<void(Graph*)> backward;  // null for constants
  };

  NodeId AddNode(Tensor value, bool requires_grad,
                 std::function<void(Graph*)> backward);
  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  /// Grad tensor of `id`, allocated (zeroed) on first access.
  Tensor& MutableGrad(NodeId id);
  bool RequiresGrad(NodeId id) const { return node(id).requires_grad; }

  std::vector<Node> nodes_;
};

}  // namespace sdea

#endif  // SDEA_TENSOR_GRAPH_H_
