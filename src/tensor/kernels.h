#ifndef SDEA_TENSOR_KERNELS_H_
#define SDEA_TENSOR_KERNELS_H_

#include <cstdint>

namespace sdea::tmath {

/// Instruction set the fast-mode kernels run with. Resolved once at startup
/// from the SDEA_SIMD environment variable ("off"/"scalar" force the
/// portable path, "avx2" forces AVX2, anything else / unset auto-detects
/// via CPUID) and overridable per-process with SetSimdLevel (tests,
/// benches). Exact-mode kernels are scalar by construction, so the level
/// only affects fast mode.
enum class SimdLevel {
  kScalar = 0,  ///< Portable C++; compiled into every build.
  kAvx2 = 1,    ///< AVX2+FMA intrinsics; used only when CPUID reports both.
};

/// Accumulation contract the matmul family runs under.
///
/// kExact (default) is the PR-1 contract: every output element accumulates
/// its k partial products in double precision, ascending-k, rounded to
/// float once — bitwise identical for every thread count AND every machine.
///
/// kFast accumulates in float32 with cache-blocked, SIMD-vectorized inner
/// loops. Results are still deterministic for a fixed SimdLevel (the
/// per-element reduction tree is a pure function of the shapes, and rows
/// are sharded so thread count never changes it), but they differ from
/// exact mode — and between SIMD levels, because FMA does not round the
/// intermediate product — by O(k * eps) relative error. The tolerance
/// tests in tensor_kernels_test pin that bound.
enum class KernelMode {
  kExact = 0,
  kFast = 1,
};

/// True when the AVX2 translation unit was compiled in (x86-64 toolchain
/// with -mavx2 -mfma support).
bool Avx2CompiledIn();

/// True when AVX2 kernels can actually run: compiled in and the CPU
/// reports AVX2+FMA.
bool Avx2Supported();

/// The SIMD level fast-mode kernels dispatch to right now.
SimdLevel ActiveSimdLevel();

/// Overrides the active level. Asking for kAvx2 when !Avx2Supported() is a
/// programming error (SDEA_CHECK).
void SetSimdLevel(SimdLevel level);

/// The accumulation mode the matmul family dispatches on right now.
/// Initialized from SDEA_KERNEL_MODE ("fast" opts in; anything else /
/// unset stays exact).
KernelMode ActiveKernelMode();

/// Switches the accumulation mode process-wide. Must not race with
/// in-flight kernels (same caveat as ThreadPool::SetGlobalNumThreads).
void SetKernelMode(KernelMode mode);

const char* SimdLevelName(SimdLevel level);
const char* KernelModeName(KernelMode mode);

/// Raw row-range kernels underneath tmath::Matmul* and the ranking paths.
/// Pointers follow the tensor.cc conventions: row-major, no aliasing
/// between inputs and outputs.
namespace kernels {

/// One dot product under the exact contract: double accumulator,
/// ascending-d, no term skipped (NaN/Inf propagate), rounded once by the
/// caller if a float is wanted.
double DotExact(const float* a, const float* b, int64_t d);

/// One dot product under the fast contract, dispatched on
/// ActiveSimdLevel(). The reduction tree is identical to the one
/// MatmulTransposeBRowsFast uses per output element, so ranking paths that
/// score through DotFast agree bitwise with the score-matrix path at the
/// same level.
float DotFast(const float* a, const float* b, int64_t d);

/// The similarity used by every ranking site (candidate generation, IVF
/// probing and scanning, embedding-store scans): mode-dispatched so all
/// sites agree with each other and with the MatmulTransposeB score-matrix
/// path in BOTH modes. Exact mode rounds DotExact to float once.
float ScoreDot(const float* a, const float* b, int64_t d);

/// Fast-mode row-range matmuls, mirroring the exact kernels in tensor.cc.
/// Each writes output rows [i_begin, i_end) only, so callers shard rows
/// across threads with bitwise-stable results for a fixed SimdLevel.

/// c[i,:] = a[i,:] @ b for a [m,k], b [k,n]; i-k-j order, j vectorized.
void MatmulRowsFast(const float* a, const float* b, float* c, int64_t k,
                    int64_t n, int64_t i_begin, int64_t i_end);

/// c[i,j] = a[i,:] . b[j,:] for a [m,k], b [n,k]; per-pair DotFast.
void MatmulTransposeBRowsFast(const float* a, const float* b, float* c,
                              int64_t k, int64_t n, int64_t i_begin,
                              int64_t i_end);

/// c[i,:] = a[:,i]^T @ b for a [k,m], b [k,n]; i-k-j order, j vectorized.
void MatmulTransposeARowsFast(const float* a, const float* b, float* c,
                              int64_t k, int64_t m, int64_t n,
                              int64_t i_begin, int64_t i_end);

/// y[i] = rows[i,:] . x for a row-major rows [m, d] against one query x
/// (the scan shape behind NearestNeighbors / IVF probing). Gemv dispatches
/// on ActiveKernelMode(); the Exact/Fast variants pin one mode.
void GemvExact(const float* rows, int64_t m, int64_t d, const float* x,
               float* y);
void GemvFast(const float* rows, int64_t m, int64_t d, const float* x,
              float* y);
void Gemv(const float* rows, int64_t m, int64_t d, const float* x, float* y);

/// Writes the positions i in [0, m) with scores[i] >= threshold into
/// out[0..cap), ascending. Returns how many matched — or cap + 1 the
/// moment more than cap match (out contents are then unspecified).
/// threshold must not be NaN; NaN scores never match. This is the scan
/// under tmath::TopK's sampled prefilter; it dispatches on
/// ActiveSimdLevel() (mode-independent — the match set is a pure
/// predicate, so AVX2 changes only the scan speed, never the result).
int64_t FilterGe(const float* scores, int64_t m, float threshold,
                 int64_t cap, int64_t* out);

}  // namespace kernels

}  // namespace sdea::tmath

#endif  // SDEA_TENSOR_KERNELS_H_
