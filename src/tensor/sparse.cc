#include "tensor/sparse.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "base/check.h"

namespace sdea {

CsrMatrix CsrMatrix::FromTriplets(
    int64_t rows, int64_t cols,
    const std::vector<std::tuple<int64_t, int64_t, float>>& triplets) {
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  // Sum duplicates via an ordered map keyed by (row, col).
  std::map<std::pair<int64_t, int64_t>, float> acc;
  for (const auto& [r, c, v] : triplets) {
    SDEA_CHECK(r >= 0 && r < rows);
    SDEA_CHECK(c >= 0 && c < cols);
    acc[{r, c}] += v;
  }
  m.row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  m.col_idx_.reserve(acc.size());
  m.values_.reserve(acc.size());
  for (const auto& [rc, v] : acc) {
    ++m.row_ptr_[static_cast<size_t>(rc.first) + 1];
    m.col_idx_.push_back(rc.second);
    m.values_.push_back(v);
  }
  for (size_t i = 1; i < m.row_ptr_.size(); ++i) {
    m.row_ptr_[i] += m.row_ptr_[i - 1];
  }
  return m;
}

Tensor CsrMatrix::Apply(const Tensor& dense) const {
  SDEA_CHECK_EQ(dense.rank(), 2);
  SDEA_CHECK_EQ(dense.dim(0), cols_);
  const int64_t d = dense.dim(1);
  Tensor out({rows_, d});
  for (int64_t r = 0; r < rows_; ++r) {
    float* orow = out.data() + r * d;
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      const float v = values_[static_cast<size_t>(k)];
      const float* drow =
          dense.data() + col_idx_[static_cast<size_t>(k)] * d;
      for (int64_t j = 0; j < d; ++j) orow[j] += v * drow[j];
    }
  }
  return out;
}

Tensor CsrMatrix::ApplyTranspose(const Tensor& dense) const {
  SDEA_CHECK_EQ(dense.rank(), 2);
  SDEA_CHECK_EQ(dense.dim(0), rows_);
  const int64_t d = dense.dim(1);
  Tensor out({cols_, d});
  for (int64_t r = 0; r < rows_; ++r) {
    const float* drow = dense.data() + r * d;
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      const float v = values_[static_cast<size_t>(k)];
      float* orow = out.data() + col_idx_[static_cast<size_t>(k)] * d;
      for (int64_t j = 0; j < d; ++j) orow[j] += v * drow[j];
    }
  }
  return out;
}

}  // namespace sdea
