// The only translation unit compiled with -mavx2 -mfma (see
// src/tensor/CMakeLists.txt). Nothing here runs unless runtime dispatch in
// kernels.cc confirmed CPUID reports AVX2+FMA, so these functions may use
// the intrinsics unconditionally.
//
// Determinism note: every kernel's reduction tree is a pure function of
// the operand shapes — fixed unroll widths, fixed combine order — so for a
// given SimdLevel the fast mode stays bitwise-reproducible across runs and
// thread counts (callers shard disjoint output rows). FMA keeps the full
// product precision before adding, which is why fast-AVX2 and fast-scalar
// differ in the last ulps; the tolerance tests bound that gap against
// exact mode.
#include <immintrin.h>

#include <cstdint>

namespace sdea::tmath::kernels {
namespace {

// Sums the 8 lanes: (lo+hi) pairwise, matching _mm_hadd order. The combine
// order is fixed, part of the fast-AVX2 reduction tree.
inline float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_hadd_ps(s, s);
  s = _mm_hadd_ps(s, s);
  return _mm_cvtss_f32(s);
}

}  // namespace

float DotFastAvx2(const float* a, const float* b, int64_t d) {
  // Four 8-lane FMA accumulators (32 floats per step) hide FMA latency;
  // the tail first drains 8-wide into acc0, then scalar into the total.
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 32 <= d; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= d; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float total =
      HorizontalSum(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                  _mm256_add_ps(acc2, acc3)));
  for (; i < d; ++i) total += a[i] * b[i];
  return total;
}

void MatmulRowsFastAvx2(const float* a, const float* b, float* c, int64_t k,
                        int64_t n, int64_t i_begin, int64_t i_end) {
  // i-k-j with the j loop 8-wide: per output element the accumulation is
  // still one FMA per k, ascending, into a float row accumulator. B rows
  // are streamed once per output row; for the [m<=1k, k<=1k] shapes here
  // the B panel lives in L2, so the k-ascending order doubles as the
  // cache-blocked order.
  for (int64_t i = i_begin; i < i_end; ++i) {
    float* crow = c + i * n;
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) _mm256_storeu_ps(crow + j, _mm256_setzero_ps());
    for (; j < n; ++j) crow[j] = 0.0f;
    const float* arow = a + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const __m256 aik = _mm256_set1_ps(arow[kk]);
      const float* brow = b + kk * n;
      j = 0;
      for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(
            crow + j, _mm256_fmadd_ps(aik, _mm256_loadu_ps(brow + j),
                                      _mm256_loadu_ps(crow + j)));
      }
      const float aik_s = arow[kk];
      for (; j < n; ++j) crow[j] += aik_s * brow[j];
    }
  }
}

void MatmulTransposeBRowsFastAvx2(const float* a, const float* b, float* c,
                                  int64_t k, int64_t n, int64_t i_begin,
                                  int64_t i_end) {
  // Per-pair DotFastAvx2 keeps the reduction tree identical to the
  // ScoreDot fast path, so ranking sites agree bitwise with this score
  // matrix (the cross-site contract tensor_kernels_test pins).
  for (int64_t i = i_begin; i < i_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      crow[j] = DotFastAvx2(arow, b + j * k, k);
    }
  }
}

void MatmulTransposeARowsFastAvx2(const float* a, const float* b, float* c,
                                  int64_t k, int64_t m, int64_t n,
                                  int64_t i_begin, int64_t i_end) {
  for (int64_t i = i_begin; i < i_end; ++i) {
    float* crow = c + i * n;
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) _mm256_storeu_ps(crow + j, _mm256_setzero_ps());
    for (; j < n; ++j) crow[j] = 0.0f;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik_s = a[kk * m + i];
      const __m256 aik = _mm256_set1_ps(aik_s);
      const float* brow = b + kk * n;
      j = 0;
      for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(
            crow + j, _mm256_fmadd_ps(aik, _mm256_loadu_ps(brow + j),
                                      _mm256_loadu_ps(crow + j)));
      }
      for (; j < n; ++j) crow[j] += aik_s * brow[j];
    }
  }
}

int64_t FilterGeAvx2(const float* scores, int64_t m, float threshold,
                     int64_t cap, int64_t* out) {
  // 8-wide compare + movemask; lanes are drained in order so the output
  // positions stay ascending and identical to the scalar scan. _CMP_GE_OQ
  // is quiet-ordered: NaN lanes never match, exactly like scalar `>=`.
  // The per-lane loop only runs on a hit, which is rare by construction
  // (the caller's threshold comes from a 4096-point sample max).
  int64_t w = 0;
  const __m256 t = _mm256_set1_ps(threshold);
  int64_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m256 f = _mm256_loadu_ps(scores + i);
    const int hits = _mm256_movemask_ps(_mm256_cmp_ps(f, t, _CMP_GE_OQ));
    if (hits) {
      for (int lane = 0; lane < 8; ++lane) {
        if (!(hits & (1 << lane))) continue;
        if (w == cap) return cap + 1;
        out[w++] = i + lane;
      }
    }
  }
  for (; i < m; ++i) {
    if (scores[i] >= threshold) {
      if (w == cap) return cap + 1;
      out[w++] = i;
    }
  }
  return w;
}

}  // namespace sdea::tmath::kernels
