#include "tensor/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "base/check.h"

namespace sdea::tmath {
namespace {

// Scalar fast-mode dot: four independent float accumulators (ILP without
// changing the tree per element count), combined low-to-high at the end.
// This is the honest portable baseline the AVX2 path is benchmarked
// against, not a deliberately slow strawman.
float DotFastScalar(const float* a, const float* b, int64_t d) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  int64_t i = 0;
  for (; i + 4 <= d; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  float total = (acc0 + acc1) + (acc2 + acc3);
  for (; i < d; ++i) total += a[i] * b[i];
  return total;
}

// Scalar fast-mode i-k-j matmul: float row accumulator, k ascending. The
// compiler is free to vectorize the j loop; the per-element tree stays
// "one add per k" either way.
void MatmulRowsFastScalar(const float* a, const float* b, float* c, int64_t k,
                          int64_t n, int64_t i_begin, int64_t i_end) {
  for (int64_t i = i_begin; i < i_end; ++i) {
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
    const float* arow = a + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void MatmulTransposeBRowsFastScalar(const float* a, const float* b, float* c,
                                    int64_t k, int64_t n, int64_t i_begin,
                                    int64_t i_end) {
  for (int64_t i = i_begin; i < i_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      crow[j] = DotFastScalar(arow, b + j * k, k);
    }
  }
}

void MatmulTransposeARowsFastScalar(const float* a, const float* b, float* c,
                                    int64_t k, int64_t m, int64_t n,
                                    int64_t i_begin, int64_t i_end) {
  for (int64_t i = i_begin; i < i_end; ++i) {
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = a[kk * m + i];
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

int64_t FilterGeScalar(const float* scores, int64_t m, float threshold,
                       int64_t cap, int64_t* out) {
  int64_t w = 0;
  for (int64_t i = 0; i < m; ++i) {
    if (scores[i] >= threshold) {
      if (w == cap) return cap + 1;
      out[w++] = i;
    }
  }
  return w;
}

bool CpuHasAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

SimdLevel ResolveInitialSimdLevel() {
  const char* env = std::getenv("SDEA_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0) {
      return SimdLevel::kScalar;
    }
    if (std::strcmp(env, "avx2") == 0) {
      // Forcing a level the machine can't run is a setup error worth
      // failing loudly on (a silent scalar fallback would quietly void a
      // "measured with AVX2" claim).
      SDEA_CHECK_MSG(Avx2Supported(),
                     "SDEA_SIMD=avx2 but AVX2+FMA is unavailable "
                     "(compiled_in=%d)",
                     Avx2CompiledIn() ? 1 : 0);
      return SimdLevel::kAvx2;
    }
  }
  return Avx2Supported() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
}

KernelMode ResolveInitialKernelMode() {
  const char* env = std::getenv("SDEA_KERNEL_MODE");
  if (env != nullptr && std::strcmp(env, "fast") == 0) {
    return KernelMode::kFast;
  }
  return KernelMode::kExact;
}

std::atomic<SimdLevel>& SimdLevelFlag() {
  static std::atomic<SimdLevel> level{ResolveInitialSimdLevel()};
  return level;
}

std::atomic<KernelMode>& KernelModeFlag() {
  static std::atomic<KernelMode> mode{ResolveInitialKernelMode()};
  return mode;
}

}  // namespace

#ifdef SDEA_HAVE_AVX2_TU
// Implemented in kernels_avx2.cc, the only TU compiled with -mavx2 -mfma.
// Never called unless CPUID reported AVX2+FMA (see dispatch below).
namespace kernels {
float DotFastAvx2(const float* a, const float* b, int64_t d);
void MatmulRowsFastAvx2(const float* a, const float* b, float* c, int64_t k,
                        int64_t n, int64_t i_begin, int64_t i_end);
void MatmulTransposeBRowsFastAvx2(const float* a, const float* b, float* c,
                                  int64_t k, int64_t n, int64_t i_begin,
                                  int64_t i_end);
void MatmulTransposeARowsFastAvx2(const float* a, const float* b, float* c,
                                  int64_t k, int64_t m, int64_t n,
                                  int64_t i_begin, int64_t i_end);
int64_t FilterGeAvx2(const float* scores, int64_t m, float threshold,
                     int64_t cap, int64_t* out);
}  // namespace kernels
#endif

bool Avx2CompiledIn() {
#ifdef SDEA_HAVE_AVX2_TU
  return true;
#else
  return false;
#endif
}

bool Avx2Supported() { return Avx2CompiledIn() && CpuHasAvx2Fma(); }

SimdLevel ActiveSimdLevel() {
  return SimdLevelFlag().load(std::memory_order_relaxed);
}

void SetSimdLevel(SimdLevel level) {
  if (level == SimdLevel::kAvx2) SDEA_CHECK(Avx2Supported());
  SimdLevelFlag().store(level, std::memory_order_relaxed);
}

KernelMode ActiveKernelMode() {
  return KernelModeFlag().load(std::memory_order_relaxed);
}

void SetKernelMode(KernelMode mode) {
  KernelModeFlag().store(mode, std::memory_order_relaxed);
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const char* KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kExact:
      return "exact";
    case KernelMode::kFast:
      return "fast";
  }
  return "unknown";
}

namespace kernels {

double DotExact(const float* a, const float* b, int64_t d) {
  double s = 0.0;
  for (int64_t i = 0; i < d; ++i) {
    s += static_cast<double>(a[i]) * b[i];
  }
  return s;
}

float DotFast(const float* a, const float* b, int64_t d) {
#ifdef SDEA_HAVE_AVX2_TU
  if (ActiveSimdLevel() == SimdLevel::kAvx2) return DotFastAvx2(a, b, d);
#endif
  return DotFastScalar(a, b, d);
}

float ScoreDot(const float* a, const float* b, int64_t d) {
  if (ActiveKernelMode() == KernelMode::kFast) return DotFast(a, b, d);
  return static_cast<float>(DotExact(a, b, d));
}

void MatmulRowsFast(const float* a, const float* b, float* c, int64_t k,
                    int64_t n, int64_t i_begin, int64_t i_end) {
#ifdef SDEA_HAVE_AVX2_TU
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    MatmulRowsFastAvx2(a, b, c, k, n, i_begin, i_end);
    return;
  }
#endif
  MatmulRowsFastScalar(a, b, c, k, n, i_begin, i_end);
}

void MatmulTransposeBRowsFast(const float* a, const float* b, float* c,
                              int64_t k, int64_t n, int64_t i_begin,
                              int64_t i_end) {
#ifdef SDEA_HAVE_AVX2_TU
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    MatmulTransposeBRowsFastAvx2(a, b, c, k, n, i_begin, i_end);
    return;
  }
#endif
  MatmulTransposeBRowsFastScalar(a, b, c, k, n, i_begin, i_end);
}

void MatmulTransposeARowsFast(const float* a, const float* b, float* c,
                              int64_t k, int64_t m, int64_t n, int64_t i_begin,
                              int64_t i_end) {
#ifdef SDEA_HAVE_AVX2_TU
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    MatmulTransposeARowsFastAvx2(a, b, c, k, m, n, i_begin, i_end);
    return;
  }
#endif
  MatmulTransposeARowsFastScalar(a, b, c, k, m, n, i_begin, i_end);
}

void GemvExact(const float* rows, int64_t m, int64_t d, const float* x,
               float* y) {
  for (int64_t i = 0; i < m; ++i) {
    y[i] = static_cast<float>(DotExact(rows + i * d, x, d));
  }
}

void GemvFast(const float* rows, int64_t m, int64_t d, const float* x,
              float* y) {
  for (int64_t i = 0; i < m; ++i) {
    y[i] = DotFast(rows + i * d, x, d);
  }
}

void Gemv(const float* rows, int64_t m, int64_t d, const float* x, float* y) {
  if (ActiveKernelMode() == KernelMode::kFast) {
    GemvFast(rows, m, d, x, y);
  } else {
    GemvExact(rows, m, d, x, y);
  }
}

int64_t FilterGe(const float* scores, int64_t m, float threshold, int64_t cap,
                 int64_t* out) {
#ifdef SDEA_HAVE_AVX2_TU
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    return FilterGeAvx2(scores, m, threshold, cap, out);
  }
#endif
  return FilterGeScalar(scores, m, threshold, cap, out);
}

}  // namespace kernels
}  // namespace sdea::tmath
