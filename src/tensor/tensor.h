#ifndef SDEA_TENSOR_TENSOR_H_
#define SDEA_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/check.h"
#include "base/rng.h"

namespace sdea {

/// A dense row-major float32 tensor with value semantics. The library's
/// workloads are dominated by rank-1 and rank-2 tensors (vectors and
/// matrices); higher ranks are supported for storage but most math entry
/// points require rank <= 2.
class Tensor {
 public:
  /// Empty (rank-0, no elements).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);

  /// Tensor of the given shape filled with `fill`.
  Tensor(std::vector<int64_t> shape, float fill);

  /// Tensor with explicit contents; `data.size()` must equal the shape's
  /// element count.
  Tensor(std::vector<int64_t> shape, std::vector<float> data);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  /// 1-D tensor from values.
  static Tensor FromVector(const std::vector<float>& values);

  /// [rows, cols] tensor with i.i.d. N(0, stddev^2) entries.
  static Tensor RandomNormal(std::vector<int64_t> shape, float stddev,
                             Rng* rng);

  /// [rows, cols] tensor with i.i.d. U(-limit, limit) entries (Glorot-style
  /// init when limit = sqrt(6/(fan_in+fan_out))).
  static Tensor RandomUniform(std::vector<int64_t> shape, float limit,
                              Rng* rng);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t rank() const { return static_cast<int64_t>(shape_.size()); }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  /// Dimension `i` of the shape; negative indices count from the back.
  int64_t dim(int64_t i) const;

  /// Rows/cols of a rank-2 tensor (rank-1 is treated as [1, n]).
  int64_t rows() const;
  int64_t cols() const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](int64_t i) {
    SDEA_CHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    SDEA_CHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }

  /// Element of a rank-2 tensor.
  float& at(int64_t r, int64_t c) {
    SDEA_CHECK_EQ(rank(), 2);
    SDEA_CHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }
  float at(int64_t r, int64_t c) const {
    SDEA_CHECK_EQ(rank(), 2);
    SDEA_CHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }

  /// Sets every element to `v`.
  void Fill(float v);

  /// Sets every element to zero.
  void Zero() { Fill(0.0f); }

  /// Reinterprets the data with a new shape of equal element count.
  Tensor Reshaped(std::vector<int64_t> new_shape) const;

  /// Returns row `r` of a rank-2 tensor as a rank-1 tensor (copy).
  Tensor Row(int64_t r) const;

  /// Copies `src` (rank-1, length cols()) into row `r`.
  void SetRow(int64_t r, const Tensor& src);

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Sum of all elements (accumulated in double, rounded once at the end).
  float Sum() const;

  /// Euclidean norm of all elements.
  float Norm() const;

  /// Largest absolute element (0 for empty).
  float AbsMax() const;

  /// Human-readable summary (shape + first few values), for debugging.
  std::string DebugString() const;

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

/// Free-function math on plain tensors (no autograd). These back both the
/// autograd ops and inference-only fast paths.
///
/// Accumulation policy (all three matmul variants) in the default EXACT
/// mode: every output element accumulates its k partial products in double
/// precision, in ascending-k order, with no term skipped (so NaN/Inf in
/// either operand propagates per IEEE semantics), and is rounded to float
/// exactly once at the end. The variants therefore agree bitwise on
/// transposed views of the same operands, e.g. Matmul(a, b) ==
/// MatmulTransposeB(a, Transpose(b)).
///
/// FAST mode (opt-in via tmath::SetKernelMode or SDEA_KERNEL_MODE=fast)
/// dispatches to the cache-blocked, SIMD-vectorized float32 kernels in
/// tensor/kernels.h instead: still deterministic per (shape, SimdLevel) and
/// across thread counts, but within tolerance of — not bitwise equal to —
/// exact mode. See kernels.h for the mode/level contracts.
///
/// Threading: Matmul / MatmulTransposeB / MatmulTransposeA / SoftmaxRows
/// shard output rows across base::ThreadPool::Global(). Each shard owns a
/// disjoint row range and runs the identical per-row kernel as the serial
/// path, so results are bitwise-identical for every thread count (see the
/// determinism contract in base/threadpool.h). This holds in both modes.
namespace tmath {

/// c = a @ b for rank-2 a [m,k], b [k,n].
Tensor Matmul(const Tensor& a, const Tensor& b);

/// c = a @ b^T for rank-2 a [m,k], b [n,k]. Used for similarity matrices.
Tensor MatmulTransposeB(const Tensor& a, const Tensor& b);

/// c = a^T @ b for rank-2 a [k,m], b [k,n].
Tensor MatmulTransposeA(const Tensor& a, const Tensor& b);

/// Element-wise a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);

/// Element-wise a - b (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);

/// Element-wise a * b (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);

/// a * s.
Tensor Scale(const Tensor& a, float s);

/// out += a * s (axpy); shapes must match.
void AxpyInto(const Tensor& a, float s, Tensor* out);

/// Adds rank-1 `bias` (length cols) to each row of rank-2 `a`.
Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias);

/// Row-wise softmax of a rank-2 tensor (numerically stable).
Tensor SoftmaxRows(const Tensor& a);

/// 2-D transpose.
Tensor Transpose(const Tensor& a);

/// Cosine similarity of two equal-length rank-1 tensors (0 if either is 0).
float CosineSimilarity(const Tensor& a, const Tensor& b);

/// Squared L2 distance between two equal-length rank-1 tensors.
float SquaredL2Distance(const Tensor& a, const Tensor& b);

/// Dot product of two equal-length rank-1 tensors.
float Dot(const Tensor& a, const Tensor& b);

/// Normalizes each row of a rank-2 tensor to unit L2 norm in place
/// (rows with norm < eps are left unchanged).
void L2NormalizeRowsInPlace(Tensor* a, float eps = 1e-12f);

}  // namespace tmath

}  // namespace sdea

#endif  // SDEA_TENSOR_TENSOR_H_
