#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/strings.h"
#include "base/threadpool.h"
#include "tensor/kernels.h"

namespace sdea {
namespace {

int64_t ElementCount(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    SDEA_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(ElementCount(shape_)), 0.0f) {}

Tensor::Tensor(std::vector<int64_t> shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(ElementCount(shape_)), fill) {}

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  SDEA_CHECK_EQ(static_cast<int64_t>(data_.size()), ElementCount(shape_));
}

Tensor Tensor::FromVector(const std::vector<float>& values) {
  return Tensor({static_cast<int64_t>(values.size())}, values);
}

Tensor Tensor::RandomNormal(std::vector<int64_t> shape, float stddev,
                            Rng* rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::RandomUniform(std::vector<int64_t> shape, float limit,
                             Rng* rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = rng->UniformFloat(-limit, limit);
  }
  return t;
}

int64_t Tensor::dim(int64_t i) const {
  if (i < 0) i += rank();
  SDEA_CHECK(i >= 0 && i < rank());
  return shape_[static_cast<size_t>(i)];
}

int64_t Tensor::rows() const {
  if (rank() == 1) return 1;
  SDEA_CHECK_EQ(rank(), 2);
  return shape_[0];
}

int64_t Tensor::cols() const {
  if (rank() == 1) return shape_[0];
  SDEA_CHECK_EQ(rank(), 2);
  return shape_[1];
}

void Tensor::Fill(float v) {
  for (float& x : data_) x = v;
}

Tensor Tensor::Reshaped(std::vector<int64_t> new_shape) const {
  SDEA_CHECK_EQ(ElementCount(new_shape), size());
  return Tensor(std::move(new_shape), data_);
}

Tensor Tensor::Row(int64_t r) const {
  SDEA_CHECK_EQ(rank(), 2);
  SDEA_CHECK(r >= 0 && r < shape_[0]);
  const int64_t c = shape_[1];
  std::vector<float> row(data_.begin() + static_cast<size_t>(r * c),
                         data_.begin() + static_cast<size_t>((r + 1) * c));
  return Tensor({c}, std::move(row));
}

void Tensor::SetRow(int64_t r, const Tensor& src) {
  SDEA_CHECK_EQ(rank(), 2);
  SDEA_CHECK(r >= 0 && r < shape_[0]);
  SDEA_CHECK_EQ(src.size(), shape_[1]);
  std::copy(src.data(), src.data() + src.size(),
            data_.begin() + static_cast<size_t>(r * shape_[1]));
}

float Tensor::Sum() const {
  // Accumulate in double (like Norm); a float accumulator loses ~4 decimal
  // digits once the running sum dwarfs the next addend (e.g. 1M elements).
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x);
  return static_cast<float>(s);
}

float Tensor::Norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

float Tensor::AbsMax() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

std::string Tensor::DebugString() const {
  std::string out = "Tensor[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out += "x";
    out += std::to_string(shape_[i]);
  }
  out += "](";
  const int64_t show = std::min<int64_t>(size(), 8);
  for (int64_t i = 0; i < show; ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.4g", data_[static_cast<size_t>(i)]);
  }
  if (size() > show) out += ", ...";
  out += ")";
  return out;
}

namespace tmath {
namespace {

// Row-range kernels behind the three matmul variants. Each computes output
// rows [i_begin, i_end) under the shared accumulation policy (tensor.h):
// every output element accumulates its k products in double, in ascending-k
// order, with no term skipped, and rounds to float once. The parallel path
// shards rows across threads and the serial path is the single shard
// [0, m), so both execute this exact code and agree bitwise.

// c[i,:] = a[i,:] @ b for a [m,k], b [k,n]; k-j inner order streams b rows.
void MatmulRowRange(const float* pa, const float* pb, float* pc, int64_t k,
                    int64_t n, int64_t i_begin, int64_t i_end) {
  std::vector<double> acc(static_cast<size_t>(n));
  for (int64_t i = i_begin; i < i_end; ++i) {
    std::fill(acc.begin(), acc.end(), 0.0);
    const float* arow = pa + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const double aik = arow[kk];
      const float* brow = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) acc[static_cast<size_t>(j)] += aik * brow[j];
    }
    float* crow = pc + i * n;
    for (int64_t j = 0; j < n; ++j) {
      crow[j] = static_cast<float>(acc[static_cast<size_t>(j)]);
    }
  }
}

// c[i,j] = a[i,:] . b[j,:] for a [m,k], b [n,k].
void MatmulTransposeBRowRange(const float* pa, const float* pb, float* pc,
                              int64_t k, int64_t n, int64_t i_begin,
                              int64_t i_end) {
  for (int64_t i = i_begin; i < i_end; ++i) {
    const float* arow = pa + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double s = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        s += static_cast<double>(arow[kk]) * brow[kk];
      }
      pc[i * n + j] = static_cast<float>(s);
    }
  }
}

// c[i,:] = a[:,i]^T @ b for a [k,m], b [k,n]; a is read column-wise.
void MatmulTransposeARowRange(const float* pa, const float* pb, float* pc,
                              int64_t k, int64_t m, int64_t n, int64_t i_begin,
                              int64_t i_end) {
  std::vector<double> acc(static_cast<size_t>(n));
  for (int64_t i = i_begin; i < i_end; ++i) {
    std::fill(acc.begin(), acc.end(), 0.0);
    for (int64_t kk = 0; kk < k; ++kk) {
      const double aik = pa[kk * m + i];
      const float* brow = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) acc[static_cast<size_t>(j)] += aik * brow[j];
    }
    float* crow = pc + i * n;
    for (int64_t j = 0; j < n; ++j) {
      crow[j] = static_cast<float>(acc[static_cast<size_t>(j)]);
    }
  }
}

}  // namespace

Tensor Matmul(const Tensor& a, const Tensor& b) {
  SDEA_CHECK_EQ(a.rank(), 2);
  SDEA_CHECK_EQ(b.rank(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  SDEA_CHECK_EQ(k, b.dim(0));
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const bool fast = ActiveKernelMode() == KernelMode::kFast;
  base::ParallelFor(m, base::GrainForWork(m, k * n),
                    [&](int64_t begin, int64_t end) {
                      if (fast) {
                        kernels::MatmulRowsFast(pa, pb, pc, k, n, begin, end);
                      } else {
                        MatmulRowRange(pa, pb, pc, k, n, begin, end);
                      }
                    });
  return c;
}

Tensor MatmulTransposeB(const Tensor& a, const Tensor& b) {
  SDEA_CHECK_EQ(a.rank(), 2);
  SDEA_CHECK_EQ(b.rank(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  SDEA_CHECK_EQ(k, b.dim(1));
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const bool fast = ActiveKernelMode() == KernelMode::kFast;
  base::ParallelFor(m, base::GrainForWork(m, k * n),
                    [&](int64_t begin, int64_t end) {
                      if (fast) {
                        kernels::MatmulTransposeBRowsFast(pa, pb, pc, k, n,
                                                          begin, end);
                      } else {
                        MatmulTransposeBRowRange(pa, pb, pc, k, n, begin, end);
                      }
                    });
  return c;
}

Tensor MatmulTransposeA(const Tensor& a, const Tensor& b) {
  SDEA_CHECK_EQ(a.rank(), 2);
  SDEA_CHECK_EQ(b.rank(), 2);
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  SDEA_CHECK_EQ(k, b.dim(0));
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const bool fast = ActiveKernelMode() == KernelMode::kFast;
  base::ParallelFor(m, base::GrainForWork(m, k * n),
                    [&](int64_t begin, int64_t end) {
                      if (fast) {
                        kernels::MatmulTransposeARowsFast(pa, pb, pc, k, m, n,
                                                          begin, end);
                      } else {
                        MatmulTransposeARowRange(pa, pb, pc, k, m, n, begin,
                                                 end);
                      }
                    });
  return c;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  SDEA_CHECK(a.SameShape(b));
  Tensor c = a;
  for (int64_t i = 0; i < c.size(); ++i) c[i] += b[i];
  return c;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  SDEA_CHECK(a.SameShape(b));
  Tensor c = a;
  for (int64_t i = 0; i < c.size(); ++i) c[i] -= b[i];
  return c;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  SDEA_CHECK(a.SameShape(b));
  Tensor c = a;
  for (int64_t i = 0; i < c.size(); ++i) c[i] *= b[i];
  return c;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor c = a;
  for (int64_t i = 0; i < c.size(); ++i) c[i] *= s;
  return c;
}

void AxpyInto(const Tensor& a, float s, Tensor* out) {
  SDEA_CHECK(a.SameShape(*out));
  for (int64_t i = 0; i < a.size(); ++i) (*out)[i] += s * a[i];
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  SDEA_CHECK_EQ(a.rank(), 2);
  SDEA_CHECK_EQ(bias.rank(), 1);
  SDEA_CHECK_EQ(a.dim(1), bias.dim(0));
  Tensor c = a;
  const int64_t rows = a.dim(0), cols = a.dim(1);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) c[i * cols + j] += bias[j];
  }
  return c;
}

Tensor SoftmaxRows(const Tensor& a) {
  SDEA_CHECK_EQ(a.rank(), 2);
  Tensor c = a;
  const int64_t rows = a.dim(0), cols = a.dim(1);
  // Rows are independent, so sharding them preserves bitwise results.
  base::ParallelFor(
      rows, base::GrainForWork(rows, 8 * cols),
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          float* row = c.data() + i * cols;
          float mx = row[0];
          for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, row[j]);
          double sum = 0.0;
          for (int64_t j = 0; j < cols; ++j) {
            row[j] = std::exp(row[j] - mx);
            sum += row[j];
          }
          const float inv = static_cast<float>(1.0 / sum);
          for (int64_t j = 0; j < cols; ++j) row[j] *= inv;
        }
      });
  return c;
}

Tensor Transpose(const Tensor& a) {
  SDEA_CHECK_EQ(a.rank(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor c({n, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) c[j * m + i] = a[i * n + j];
  }
  return c;
}

float CosineSimilarity(const Tensor& a, const Tensor& b) {
  SDEA_CHECK_EQ(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0f;
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

float SquaredL2Distance(const Tensor& a, const Tensor& b) {
  SDEA_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return static_cast<float>(s);
}

float Dot(const Tensor& a, const Tensor& b) {
  SDEA_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    s += static_cast<double>(a[i]) * b[i];
  }
  return static_cast<float>(s);
}

void L2NormalizeRowsInPlace(Tensor* a, float eps) {
  SDEA_CHECK_EQ(a->rank(), 2);
  const int64_t rows = a->dim(0), cols = a->dim(1);
  for (int64_t i = 0; i < rows; ++i) {
    float* row = a->data() + i * cols;
    double s = 0.0;
    for (int64_t j = 0; j < cols; ++j) s += static_cast<double>(row[j]) * row[j];
    const double norm = std::sqrt(s);
    if (norm < eps) continue;
    const float inv = static_cast<float>(1.0 / norm);
    for (int64_t j = 0; j < cols; ++j) row[j] *= inv;
  }
}

}  // namespace tmath
}  // namespace sdea
