#ifndef SDEA_TENSOR_TOPK_H_
#define SDEA_TENSOR_TOPK_H_

#include <cstdint>
#include <vector>

namespace sdea::tmath {

/// The single top-k used by every ranking site (candidate generation, IVF
/// probe ordering and cell scans, embedding-store scans, pipeline
/// TopTargets). Returns the positions of the `k` largest scores, ranked
/// best-first, under one TOTAL order shared by all call sites:
///
///   - scores descending;
///   - -0.0 and +0.0 are equal;
///   - every NaN ranks below -infinity, and all NaNs are equal;
///   - ties (including the NaN/±0.0 classes above) break by ascending
///     position (or ascending `tie_ids[position]` for the WithTieIds
///     overload).
///
/// For real-valued scores this is exactly the `score desc, index asc`
/// comparator the call sites used to hand-roll — but it is also a total
/// order on arbitrary floats, where the float comparator fed NaN into
/// std::partial_sort's strict-weak-ordering requirement (undefined
/// behavior) and each site could diverge on near-ties.
///
/// k <= 0 or m <= 0 returns empty; k > m clamps to m.
///
/// Implementation: byte-wise MSD radix select over order-preserving
/// monotone uint32 keys (histogram -> threshold scan -> binning per byte),
/// O(m + k log k) versus partial_sort's O(m log k); the crossover where it
/// wins is recorded in EXPERIMENTS.md. Serial and allocation-light, so
/// callers may invoke it concurrently from sharded query loops.
std::vector<int64_t> TopK(const float* scores, int64_t m, int64_t k);

std::vector<int64_t> TopK(const std::vector<float>& scores, int64_t k);

/// As TopK, but ties break by ascending tie_ids[position] instead of
/// position (used by the IVF cell scan, whose score array is ordered by
/// cell visit while the contract tie-breaks by row id). tie_ids must have
/// m entries; returned values are positions into `scores`.
std::vector<int64_t> TopKWithTieIds(const float* scores, int64_t m, int64_t k,
                                    const int64_t* tie_ids);

}  // namespace sdea::tmath

#endif  // SDEA_TENSOR_TOPK_H_
