#include "tensor/topk.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <utility>

#include "tensor/kernels.h"

namespace sdea::tmath {
namespace {

// Maps a float to a uint32 key whose unsigned order equals the TopK total
// order (ascending key == ascending rank). The standard monotone
// transform: flip all bits of negatives, set the sign bit of
// non-negatives. Two adjustments make it a total order matching the
// documented contract: -0.0 is canonicalized to +0.0 before transforming
// (float == treats them equal, so the hand-rolled comparators did too),
// and every NaN maps to key 0, strictly below key(-inf) = 0x007FFFFF
// (the raw transform would rank positive NaNs above +inf and negative
// NaNs below -inf — a platform-dependent mess).
// Branchless on purpose: the sign test is a coin flip on real score data,
// and a mispredicted branch per element would cost more than the rest of
// the select combined (selection ops compile to cmov).
inline uint32_t OrderedKey(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  u = (u == 0x80000000u) ? 0u : u;  // -0.0 -> +0.0.
  const uint32_t mask =
      static_cast<uint32_t>(-static_cast<int32_t>(u >> 31)) | 0x80000000u;
  const uint32_t key = u ^ mask;
  return (f == f) ? key : 0u;  // NaN (f != f) ranks below everything.
}

// Full MSD radix select over [0, m). Correct for every input — including
// all-NaN, massive tie plateaus, and k == m — and O(m) with small
// constants, but it still touches every element at least twice (histogram
// + bin). The sampled prefilter below skips it whenever the data lets us
// scan once instead. Preconditions: 0 < k <= m.
std::vector<int64_t> RadixSelect(const float* scores, int64_t m, int64_t k,
                                 const int64_t* tie_ids) {
  const auto tie = [tie_ids](int64_t pos) {
    return tie_ids != nullptr ? tie_ids[pos] : pos;
  };

  std::vector<uint32_t> keys(static_cast<size_t>(m));

  // MSD radix select, one byte per level. Invariants entering a level:
  // `selected` holds positions already known to be in the top k,
  // `remaining` = k - selected.size() > 0, and the candidate set (all of
  // [0, m) at level 0, `cand` afterwards) holds exactly the positions
  // whose key matches the threshold prefix so far — the only positions
  // that can still fill the remaining slots.
  std::vector<int64_t> selected;
  selected.reserve(static_cast<size_t>(k));
  std::vector<int64_t> cand;
  int64_t remaining = k;
  for (int level = 0; level < 4 && remaining > 0; ++level) {
    const int shift = 24 - 8 * level;
    int64_t count[256] = {0};
    const auto bucket_of = [&](int64_t i) {
      return static_cast<int>((keys[static_cast<size_t>(i)] >> shift) & 0xFF);
    };
    if (level == 0) {
      // Fused with the key transform: one pass computes, stores, and
      // histograms each key.
      for (int64_t i = 0; i < m; ++i) {
        const uint32_t key = OrderedKey(scores[i]);
        keys[static_cast<size_t>(i)] = key;
        ++count[key >> 24];
      }
    } else {
      for (int64_t i : cand) ++count[bucket_of(i)];
    }

    // Threshold bucket: the highest tb with (count above tb) < remaining,
    // i.e. the bucket holding the k-th largest key. Guaranteed to exist
    // because remaining never exceeds the candidate count.
    int64_t above = 0;
    int tb = 255;
    while (above + count[tb] < remaining) {
      above += count[tb];
      --tb;
    }

    // Bin: buckets above tb are fully selected; bucket tb carries on.
    std::vector<int64_t> next;
    next.reserve(static_cast<size_t>(count[tb]));
    const auto bin = [&](int64_t i) {
      const int b = bucket_of(i);
      if (b > tb) {
        selected.push_back(i);
      } else if (b == tb) {
        next.push_back(i);
      }
    };
    if (level == 0) {
      for (int64_t i = 0; i < m; ++i) bin(i);
    } else {
      for (int64_t i : cand) bin(i);
    }
    remaining -= above;
    if (count[tb] == remaining) {
      // The threshold bucket fits exactly — every member is selected no
      // matter how its lower bytes or tie ids compare.
      selected.insert(selected.end(), next.begin(), next.end());
      remaining = 0;
      break;
    }
    cand.swap(next);
  }

  if (remaining > 0) {
    // cand holds positions whose key equals the k-th key exactly; the
    // contract takes the `remaining` smallest tie ids among them.
    std::nth_element(cand.begin(), cand.begin() + remaining, cand.end(),
                     [&](int64_t a, int64_t b) { return tie(a) < tie(b); });
    selected.insert(selected.end(), cand.begin(), cand.begin() + remaining);
  }

  // Rank the k survivors best-first. O(k log k): the whole point of the
  // select is that only these k ever see a comparison sort.
  std::sort(selected.begin(), selected.end(), [&](int64_t a, int64_t b) {
    const uint32_t ka = keys[static_cast<size_t>(a)];
    const uint32_t kb = keys[static_cast<size_t>(b)];
    if (ka != kb) return ka > kb;
    return tie(a) < tie(b);
  });
  return selected;
}

// Below this size the full select is already cheap and the 4096-point
// sample would cover a quarter of the input anyway.
constexpr int64_t kPrefilterMinM = 16384;
constexpr int64_t kSampleSize = 4096;

// Sampled prefilter: take T = a high-rank score from a deterministic
// strided sample, collect every position with scores[i] >= T in one
// branch-light (and AVX2-dispatchable) scan, and select among those
// candidates only.
//
// Why the result is EXACTLY TopK's answer whenever this returns a value:
// FilterGe's float `>= T` admits the same set as OrderedKey(x) >=
// OrderedKey(T) — T is never NaN here (its key is > 0), ±0.0 compare
// equal in both domains, and NaN scores match neither. If count >= k,
// the k-th largest score overall is >= T (at least count >= k elements
// are), so the top k AND every element tied with the k-th all sit inside
// the candidate set; selecting among candidates with the original tie
// ids therefore reproduces the full select verbatim. On any other
// outcome we return nullopt and the caller runs the full RadixSelect, so
// adversarial inputs (tie plateaus, all-NaN, tiny dynamic range) cost
// one wasted O(m) scan but never a wrong answer. Everything here is a
// pure function of the input, so the result is identical at every
// SimdLevel and thread count.
std::optional<std::vector<int64_t>> TryPrefiltered(const float* scores,
                                                   int64_t m, int64_t k,
                                                   const int64_t* tie_ids) {
  if (m < kPrefilterMinM) return std::nullopt;
  // Candidate budget: stays o(m) while leaving slack over the expected
  // candidate count (~3k, by the threshold-rank choice below) before the
  // count > cap bail-out fires.
  const int64_t cap = std::max<int64_t>(8 * k, m / 512 + 64);
  if (cap >= m / 4) return std::nullopt;  // Filter wouldn't be selective.

  std::vector<std::pair<uint32_t, int64_t>> sample(
      static_cast<size_t>(kSampleSize));
  const int64_t stride = m / kSampleSize;
  for (int64_t j = 0; j < kSampleSize; ++j) {
    const int64_t pos = j * stride;
    sample[static_cast<size_t>(j)] = {OrderedKey(scores[pos]), pos};
  }
  // Threshold = the r-th largest sampled key, with r sized so the
  // expected number of elements above it is ~3k. Using the sample MAX
  // (r = 1) looks tempting but is fragile: whenever the sampled max
  // happens to rank inside the global top k-1 — probability
  // ~k * kSampleSize / m, far from negligible at m = 100k — fewer than k
  // elements pass the filter and the whole scan is wasted. Aiming at
  // rank ~3k makes count < k a tail event while keeping count well
  // under cap.
  const int64_t r =
      std::min<int64_t>(kSampleSize, (3 * k * kSampleSize) / m + 1);
  std::nth_element(sample.begin(), sample.begin() + (r - 1), sample.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  const auto [threshold_key, threshold_pos] =
      sample[static_cast<size_t>(r - 1)];
  if (threshold_key == 0) return std::nullopt;  // Rank-r sample is NaN.
  const float threshold = scores[threshold_pos];
  std::vector<int64_t> pos(static_cast<size_t>(cap));
  const int64_t count =
      kernels::FilterGe(scores, m, threshold, cap, pos.data());
  if (count < k || count > cap) return std::nullopt;
  pos.resize(static_cast<size_t>(count));

  // Select among the candidates. Gathered tie ids carry the ORIGINAL
  // positions (or caller ids) so tie-breaks match the full select.
  std::vector<float> sub_scores(static_cast<size_t>(count));
  std::vector<int64_t> sub_tie(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    const int64_t p = pos[static_cast<size_t>(i)];
    sub_scores[static_cast<size_t>(i)] = scores[p];
    sub_tie[static_cast<size_t>(i)] = tie_ids != nullptr ? tie_ids[p] : p;
  }
  std::vector<int64_t> sel =
      RadixSelect(sub_scores.data(), count, k, sub_tie.data());
  for (int64_t& s : sel) s = pos[static_cast<size_t>(s)];
  return sel;
}

std::vector<int64_t> TopKImpl(const float* scores, int64_t m, int64_t k,
                              const int64_t* tie_ids) {
  if (k <= 0 || m <= 0) return {};
  if (k > m) k = m;
  if (auto pre = TryPrefiltered(scores, m, k, tie_ids)) {
    return std::move(*pre);
  }
  return RadixSelect(scores, m, k, tie_ids);
}

}  // namespace

std::vector<int64_t> TopK(const float* scores, int64_t m, int64_t k) {
  return TopKImpl(scores, m, k, nullptr);
}

std::vector<int64_t> TopK(const std::vector<float>& scores, int64_t k) {
  return TopKImpl(scores.data(), static_cast<int64_t>(scores.size()), k,
                  nullptr);
}

std::vector<int64_t> TopKWithTieIds(const float* scores, int64_t m, int64_t k,
                                    const int64_t* tie_ids) {
  return TopKImpl(scores, m, k, tie_ids);
}

}  // namespace sdea::tmath
