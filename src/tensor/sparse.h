#ifndef SDEA_TENSOR_SPARSE_H_
#define SDEA_TENSOR_SPARSE_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sdea {

/// A compressed-sparse-row float matrix, used for graph adjacency
/// operators (GCN/GAT baselines). Immutable after Build.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from COO triplets (duplicates are summed).
  static CsrMatrix FromTriplets(
      int64_t rows, int64_t cols,
      const std::vector<std::tuple<int64_t, int64_t, float>>& triplets);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  /// out = this @ dense, dense: [cols, d].
  Tensor Apply(const Tensor& dense) const;

  /// out = this^T @ dense, dense: [rows, d].
  Tensor ApplyTranspose(const Tensor& dense) const;

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int64_t> col_idx_;
  std::vector<float> values_;
};

}  // namespace sdea

#endif  // SDEA_TENSOR_SPARSE_H_
