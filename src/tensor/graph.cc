#include "tensor/graph.h"

#include <cmath>

namespace sdea {

NodeId Graph::AddNode(Tensor value, bool requires_grad,
                      std::function<void(Graph*)> backward) {
  nodes_.push_back(Node{std::move(value), Tensor(), requires_grad,
                        requires_grad ? std::move(backward) : nullptr});
  return static_cast<NodeId>(nodes_.size() - 1);
}

Graph::Node& Graph::node(NodeId id) {
  SDEA_CHECK(id >= 0 && id < NumNodes());
  return nodes_[static_cast<size_t>(id)];
}

const Graph::Node& Graph::node(NodeId id) const {
  SDEA_CHECK(id >= 0 && id < NumNodes());
  return nodes_[static_cast<size_t>(id)];
}

Tensor& Graph::MutableGrad(NodeId id) {
  Node& n = node(id);
  if (n.grad.empty() && n.value.size() > 0) {
    n.grad = Tensor(n.value.shape());
  }
  return n.grad;
}

const Tensor& Graph::Value(NodeId id) const { return node(id).value; }

const Tensor& Graph::Grad(NodeId id) const { return node(id).grad; }

void Graph::Backward(NodeId loss) {
  SDEA_CHECK_EQ(node(loss).value.size(), 1);
  MutableGrad(loss).Fill(1.0f);
  for (NodeId id = loss; id >= 0; --id) {
    Node& n = node(id);
    if (!n.requires_grad || n.backward == nullptr) continue;
    if (n.grad.empty()) continue;  // No gradient reached this node.
    n.backward(this);
  }
}

NodeId Graph::Input(Tensor value) {
  return AddNode(std::move(value), /*requires_grad=*/false, nullptr);
}

NodeId Graph::Param(Parameter* p) {
  SDEA_CHECK(p != nullptr);
  Tensor value = p->value;  // Snapshot for this step.
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(value), /*requires_grad=*/true, [id, p](Graph* g) {
    tmath::AxpyInto(g->node(id).grad, 1.0f, &p->grad);
  });
}

NodeId Graph::Matmul(NodeId a, NodeId b) {
  Tensor out = tmath::Matmul(Value(a), Value(b));
  const bool rg = RequiresGrad(a) || RequiresGrad(b);
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), rg, [id, a, b](Graph* g) {
    const Tensor& dc = g->node(id).grad;
    if (g->RequiresGrad(a)) {
      // dA = dC @ B^T
      Tensor da = tmath::MatmulTransposeB(dc, g->Value(b));
      tmath::AxpyInto(da, 1.0f, &g->MutableGrad(a));
    }
    if (g->RequiresGrad(b)) {
      // dB = A^T @ dC
      Tensor db = tmath::MatmulTransposeA(g->Value(a), dc);
      tmath::AxpyInto(db, 1.0f, &g->MutableGrad(b));
    }
  });
}

NodeId Graph::Transpose(NodeId a) {
  Tensor out = tmath::Transpose(Value(a));
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), RequiresGrad(a), [id, a](Graph* g) {
    Tensor da = tmath::Transpose(g->node(id).grad);
    tmath::AxpyInto(da, 1.0f, &g->MutableGrad(a));
  });
}

NodeId Graph::SparseMatmul(const CsrMatrix* adj, NodeId x) {
  SDEA_CHECK(adj != nullptr);
  Tensor out = adj->Apply(Value(x));
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), RequiresGrad(x), [id, adj, x](Graph* g) {
    Tensor dx = adj->ApplyTranspose(g->node(id).grad);
    tmath::AxpyInto(dx, 1.0f, &g->MutableGrad(x));
  });
}

NodeId Graph::Add(NodeId a, NodeId b) {
  Tensor out = tmath::Add(Value(a), Value(b));
  const bool rg = RequiresGrad(a) || RequiresGrad(b);
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), rg, [id, a, b](Graph* g) {
    const Tensor& dc = g->node(id).grad;
    if (g->RequiresGrad(a)) tmath::AxpyInto(dc, 1.0f, &g->MutableGrad(a));
    if (g->RequiresGrad(b)) tmath::AxpyInto(dc, 1.0f, &g->MutableGrad(b));
  });
}

NodeId Graph::Sub(NodeId a, NodeId b) {
  Tensor out = tmath::Sub(Value(a), Value(b));
  const bool rg = RequiresGrad(a) || RequiresGrad(b);
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), rg, [id, a, b](Graph* g) {
    const Tensor& dc = g->node(id).grad;
    if (g->RequiresGrad(a)) tmath::AxpyInto(dc, 1.0f, &g->MutableGrad(a));
    if (g->RequiresGrad(b)) tmath::AxpyInto(dc, -1.0f, &g->MutableGrad(b));
  });
}

NodeId Graph::Mul(NodeId a, NodeId b) {
  Tensor out = tmath::Mul(Value(a), Value(b));
  const bool rg = RequiresGrad(a) || RequiresGrad(b);
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), rg, [id, a, b](Graph* g) {
    const Tensor& dc = g->node(id).grad;
    if (g->RequiresGrad(a)) {
      Tensor da = tmath::Mul(dc, g->Value(b));
      tmath::AxpyInto(da, 1.0f, &g->MutableGrad(a));
    }
    if (g->RequiresGrad(b)) {
      Tensor db = tmath::Mul(dc, g->Value(a));
      tmath::AxpyInto(db, 1.0f, &g->MutableGrad(b));
    }
  });
}

NodeId Graph::Scale(NodeId a, float s) {
  Tensor out = tmath::Scale(Value(a), s);
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), RequiresGrad(a), [id, a, s](Graph* g) {
    tmath::AxpyInto(g->node(id).grad, s, &g->MutableGrad(a));
  });
}

NodeId Graph::AddConst(NodeId a, float c) {
  Tensor out = Value(a);
  for (int64_t i = 0; i < out.size(); ++i) out[i] += c;
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), RequiresGrad(a), [id, a](Graph* g) {
    tmath::AxpyInto(g->node(id).grad, 1.0f, &g->MutableGrad(a));
  });
}

NodeId Graph::Sigmoid(NodeId a) {
  Tensor out = Value(a);
  for (int64_t i = 0; i < out.size(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-out[i]));
  }
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), RequiresGrad(a), [id, a](Graph* g) {
    const Tensor& y = g->Value(id);
    const Tensor& dy = g->node(id).grad;
    Tensor& da = g->MutableGrad(a);
    for (int64_t i = 0; i < y.size(); ++i) {
      da[i] += dy[i] * y[i] * (1.0f - y[i]);
    }
  });
}

NodeId Graph::Tanh(NodeId a) {
  Tensor out = Value(a);
  for (int64_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), RequiresGrad(a), [id, a](Graph* g) {
    const Tensor& y = g->Value(id);
    const Tensor& dy = g->node(id).grad;
    Tensor& da = g->MutableGrad(a);
    for (int64_t i = 0; i < y.size(); ++i) {
      da[i] += dy[i] * (1.0f - y[i] * y[i]);
    }
  });
}

NodeId Graph::Relu(NodeId a) {
  Tensor out = Value(a);
  for (int64_t i = 0; i < out.size(); ++i) out[i] = std::max(0.0f, out[i]);
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), RequiresGrad(a), [id, a](Graph* g) {
    const Tensor& x = g->Value(a);
    const Tensor& dy = g->node(id).grad;
    Tensor& da = g->MutableGrad(a);
    for (int64_t i = 0; i < x.size(); ++i) {
      if (x[i] > 0.0f) da[i] += dy[i];
    }
  });
}

NodeId Graph::AddRowBroadcast(NodeId a, NodeId bias) {
  Tensor out = tmath::AddRowBroadcast(Value(a), Value(bias));
  const bool rg = RequiresGrad(a) || RequiresGrad(bias);
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), rg, [id, a, bias](Graph* g) {
    const Tensor& dc = g->node(id).grad;
    const int64_t rows = dc.dim(0), cols = dc.dim(1);
    if (g->RequiresGrad(a)) tmath::AxpyInto(dc, 1.0f, &g->MutableGrad(a));
    if (g->RequiresGrad(bias)) {
      Tensor& db = g->MutableGrad(bias);
      for (int64_t i = 0; i < rows; ++i) {
        for (int64_t j = 0; j < cols; ++j) db[j] += dc[i * cols + j];
      }
    }
  });
}

NodeId Graph::MulColBroadcast(NodeId a, NodeId w) {
  const Tensor& av = Value(a);
  const Tensor& wv = Value(w);
  SDEA_CHECK_EQ(av.rank(), 2);
  SDEA_CHECK_EQ(wv.size(), av.dim(0));
  Tensor out = av;
  const int64_t rows = av.dim(0), cols = av.dim(1);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) out[i * cols + j] *= wv[i];
  }
  const bool rg = RequiresGrad(a) || RequiresGrad(w);
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), rg, [id, a, w](Graph* g) {
    const Tensor& dc = g->node(id).grad;
    const Tensor& av2 = g->Value(a);
    const Tensor& wv2 = g->Value(w);
    const int64_t r = av2.dim(0), c = av2.dim(1);
    if (g->RequiresGrad(a)) {
      Tensor& da = g->MutableGrad(a);
      for (int64_t i = 0; i < r; ++i) {
        for (int64_t j = 0; j < c; ++j) da[i * c + j] += dc[i * c + j] * wv2[i];
      }
    }
    if (g->RequiresGrad(w)) {
      Tensor& dw = g->MutableGrad(w);
      for (int64_t i = 0; i < r; ++i) {
        double s = 0.0;
        for (int64_t j = 0; j < c; ++j) {
          s += static_cast<double>(dc[i * c + j]) * av2[i * c + j];
        }
        dw[i] += static_cast<float>(s);
      }
    }
  });
}

namespace {

// Views a rank-1 tensor as [1, n] for concat/slice purposes.
void ShapeAs2d(const Tensor& t, int64_t* rows, int64_t* cols) {
  if (t.rank() == 1) {
    *rows = 1;
    *cols = t.dim(0);
  } else {
    SDEA_CHECK_EQ(t.rank(), 2);
    *rows = t.dim(0);
    *cols = t.dim(1);
  }
}

}  // namespace

NodeId Graph::ConcatCols(NodeId a, NodeId b) {
  int64_t ra, ca, rb, cb;
  ShapeAs2d(Value(a), &ra, &ca);
  ShapeAs2d(Value(b), &rb, &cb);
  SDEA_CHECK_EQ(ra, rb);
  Tensor out({ra, ca + cb});
  const Tensor& av = Value(a);
  const Tensor& bv = Value(b);
  for (int64_t i = 0; i < ra; ++i) {
    for (int64_t j = 0; j < ca; ++j) out[i * (ca + cb) + j] = av[i * ca + j];
    for (int64_t j = 0; j < cb; ++j) {
      out[i * (ca + cb) + ca + j] = bv[i * cb + j];
    }
  }
  const bool rg = RequiresGrad(a) || RequiresGrad(b);
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), rg, [id, a, b, ra, ca, cb](Graph* g) {
    const Tensor& dc = g->node(id).grad;
    if (g->RequiresGrad(a)) {
      Tensor& da = g->MutableGrad(a);
      for (int64_t i = 0; i < ra; ++i) {
        for (int64_t j = 0; j < ca; ++j) {
          da[i * ca + j] += dc[i * (ca + cb) + j];
        }
      }
    }
    if (g->RequiresGrad(b)) {
      Tensor& db = g->MutableGrad(b);
      for (int64_t i = 0; i < ra; ++i) {
        for (int64_t j = 0; j < cb; ++j) {
          db[i * cb + j] += dc[i * (ca + cb) + ca + j];
        }
      }
    }
  });
}

NodeId Graph::ConcatRows(NodeId a, NodeId b) {
  int64_t ra, ca, rb, cb;
  ShapeAs2d(Value(a), &ra, &ca);
  ShapeAs2d(Value(b), &rb, &cb);
  SDEA_CHECK_EQ(ca, cb);
  Tensor out({ra + rb, ca});
  std::copy(Value(a).data(), Value(a).data() + ra * ca, out.data());
  std::copy(Value(b).data(), Value(b).data() + rb * cb,
            out.data() + ra * ca);
  const bool rg = RequiresGrad(a) || RequiresGrad(b);
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), rg, [id, a, b, ra, ca, rb](Graph* g) {
    const Tensor& dc = g->node(id).grad;
    if (g->RequiresGrad(a)) {
      Tensor& da = g->MutableGrad(a);
      for (int64_t i = 0; i < ra * ca; ++i) da[i] += dc[i];
    }
    if (g->RequiresGrad(b)) {
      Tensor& db = g->MutableGrad(b);
      for (int64_t i = 0; i < rb * ca; ++i) db[i] += dc[ra * ca + i];
    }
  });
}

NodeId Graph::SliceCols(NodeId a, int64_t begin, int64_t end) {
  const Tensor& av = Value(a);
  SDEA_CHECK_EQ(av.rank(), 2);
  const int64_t rows = av.dim(0), cols = av.dim(1);
  SDEA_CHECK(begin >= 0 && begin < end && end <= cols);
  const int64_t w = end - begin;
  Tensor out({rows, w});
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < w; ++j) out[i * w + j] = av[i * cols + begin + j];
  }
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), RequiresGrad(a),
                 [id, a, begin, w, rows, cols](Graph* g) {
                   const Tensor& dc = g->node(id).grad;
                   Tensor& da = g->MutableGrad(a);
                   for (int64_t i = 0; i < rows; ++i) {
                     for (int64_t j = 0; j < w; ++j) {
                       da[i * cols + begin + j] += dc[i * w + j];
                     }
                   }
                 });
}

NodeId Graph::SliceRows(NodeId a, int64_t begin, int64_t end) {
  const Tensor& av = Value(a);
  SDEA_CHECK_EQ(av.rank(), 2);
  const int64_t rows = av.dim(0), cols = av.dim(1);
  SDEA_CHECK(begin >= 0 && begin < end && end <= rows);
  const int64_t h = end - begin;
  Tensor out({h, cols});
  std::copy(av.data() + begin * cols, av.data() + end * cols, out.data());
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), RequiresGrad(a),
                 [id, a, begin, h, cols](Graph* g) {
                   const Tensor& dc = g->node(id).grad;
                   Tensor& da = g->MutableGrad(a);
                   for (int64_t i = 0; i < h * cols; ++i) {
                     da[begin * cols + i] += dc[i];
                   }
                 });
}

NodeId Graph::Reshape(NodeId a, std::vector<int64_t> shape) {
  Tensor out = Value(a).Reshaped(std::move(shape));
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), RequiresGrad(a), [id, a](Graph* g) {
    const Tensor& dc = g->node(id).grad;
    Tensor& da = g->MutableGrad(a);
    for (int64_t i = 0; i < dc.size(); ++i) da[i] += dc[i];
  });
}

NodeId Graph::SumAll(NodeId a) {
  Tensor out({1});
  out[0] = Value(a).Sum();
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), RequiresGrad(a), [id, a](Graph* g) {
    const float d = g->node(id).grad[0];
    Tensor& da = g->MutableGrad(a);
    for (int64_t i = 0; i < da.size(); ++i) da[i] += d;
  });
}

NodeId Graph::MeanAll(NodeId a) {
  const int64_t n = Value(a).size();
  SDEA_CHECK_GT(n, 0);
  Tensor out({1});
  out[0] = Value(a).Sum() / static_cast<float>(n);
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), RequiresGrad(a), [id, a, n](Graph* g) {
    const float d = g->node(id).grad[0] / static_cast<float>(n);
    Tensor& da = g->MutableGrad(a);
    for (int64_t i = 0; i < da.size(); ++i) da[i] += d;
  });
}

NodeId Graph::MeanRows(NodeId a) {
  const Tensor& av = Value(a);
  SDEA_CHECK_EQ(av.rank(), 2);
  const int64_t rows = av.dim(0), cols = av.dim(1);
  SDEA_CHECK_GT(rows, 0);
  Tensor out({1, cols});
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) out[j] += av[i * cols + j];
  }
  for (int64_t j = 0; j < cols; ++j) out[j] /= static_cast<float>(rows);
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), RequiresGrad(a),
                 [id, a, rows, cols](Graph* g) {
                   const Tensor& dc = g->node(id).grad;
                   Tensor& da = g->MutableGrad(a);
                   const float inv = 1.0f / static_cast<float>(rows);
                   for (int64_t i = 0; i < rows; ++i) {
                     for (int64_t j = 0; j < cols; ++j) {
                       da[i * cols + j] += dc[j] * inv;
                     }
                   }
                 });
}

NodeId Graph::SoftmaxRows(NodeId a) {
  Tensor out = tmath::SoftmaxRows(Value(a));
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), RequiresGrad(a), [id, a](Graph* g) {
    const Tensor& y = g->Value(id);
    const Tensor& dy = g->node(id).grad;
    Tensor& da = g->MutableGrad(a);
    const int64_t rows = y.dim(0), cols = y.dim(1);
    for (int64_t i = 0; i < rows; ++i) {
      double dot = 0.0;
      for (int64_t j = 0; j < cols; ++j) {
        dot += static_cast<double>(dy[i * cols + j]) * y[i * cols + j];
      }
      for (int64_t j = 0; j < cols; ++j) {
        da[i * cols + j] += y[i * cols + j] *
                            (dy[i * cols + j] - static_cast<float>(dot));
      }
    }
  });
}

NodeId Graph::LayerNormRows(NodeId a, NodeId gain, NodeId bias, float eps) {
  const Tensor& x = Value(a);
  const Tensor& gv = Value(gain);
  const Tensor& bv = Value(bias);
  SDEA_CHECK_EQ(x.rank(), 2);
  const int64_t rows = x.dim(0), cols = x.dim(1);
  SDEA_CHECK_EQ(gv.size(), cols);
  SDEA_CHECK_EQ(bv.size(), cols);
  Tensor out({rows, cols});
  // Saved per-row statistics for the backward pass.
  std::vector<float> mean(static_cast<size_t>(rows));
  std::vector<float> inv_std(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    double m = 0.0;
    for (int64_t j = 0; j < cols; ++j) m += x[i * cols + j];
    m /= static_cast<double>(cols);
    double var = 0.0;
    for (int64_t j = 0; j < cols; ++j) {
      const double d = x[i * cols + j] - m;
      var += d * d;
    }
    var /= static_cast<double>(cols);
    const double is = 1.0 / std::sqrt(var + eps);
    mean[static_cast<size_t>(i)] = static_cast<float>(m);
    inv_std[static_cast<size_t>(i)] = static_cast<float>(is);
    for (int64_t j = 0; j < cols; ++j) {
      const float xn = static_cast<float>((x[i * cols + j] - m) * is);
      out[i * cols + j] = xn * gv[j] + bv[j];
    }
  }
  const bool rg = RequiresGrad(a) || RequiresGrad(gain) || RequiresGrad(bias);
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(
      std::move(out), rg,
      [id, a, gain, bias, rows, cols, mean = std::move(mean),
       inv_std = std::move(inv_std)](Graph* g) {
        const Tensor& x2 = g->Value(a);
        const Tensor& gv2 = g->Value(gain);
        const Tensor& dy = g->node(id).grad;
        for (int64_t i = 0; i < rows; ++i) {
          const float m = mean[static_cast<size_t>(i)];
          const float is = inv_std[static_cast<size_t>(i)];
          if (g->RequiresGrad(gain) || g->RequiresGrad(bias)) {
            for (int64_t j = 0; j < cols; ++j) {
              const float xn = (x2[i * cols + j] - m) * is;
              if (g->RequiresGrad(gain)) {
                g->MutableGrad(gain)[j] += dy[i * cols + j] * xn;
              }
              if (g->RequiresGrad(bias)) {
                g->MutableGrad(bias)[j] += dy[i * cols + j];
              }
            }
          }
          if (g->RequiresGrad(a)) {
            // d xn_j = dy_j * gain_j; standard layernorm input gradient.
            double sum_dxn = 0.0, sum_dxn_xn = 0.0;
            for (int64_t j = 0; j < cols; ++j) {
              const float xn = (x2[i * cols + j] - m) * is;
              const float dxn = dy[i * cols + j] * gv2[j];
              sum_dxn += dxn;
              sum_dxn_xn += static_cast<double>(dxn) * xn;
            }
            Tensor& da = g->MutableGrad(a);
            const double inv_n = 1.0 / static_cast<double>(cols);
            for (int64_t j = 0; j < cols; ++j) {
              const float xn = (x2[i * cols + j] - m) * is;
              const float dxn = dy[i * cols + j] * gv2[j];
              da[i * cols + j] += static_cast<float>(
                  is * (dxn - inv_n * sum_dxn - inv_n * sum_dxn_xn * xn));
            }
          }
        }
      });
}

NodeId Graph::L2NormalizeRows(NodeId a, float eps) {
  const Tensor& x = Value(a);
  SDEA_CHECK_EQ(x.rank(), 2);
  const int64_t rows = x.dim(0), cols = x.dim(1);
  Tensor out({rows, cols});
  std::vector<float> inv_norm(static_cast<size_t>(rows), 1.0f);
  for (int64_t i = 0; i < rows; ++i) {
    double s = 0.0;
    for (int64_t j = 0; j < cols; ++j) {
      s += static_cast<double>(x[i * cols + j]) * x[i * cols + j];
    }
    const double norm = std::sqrt(s);
    const double inv = norm < eps ? 1.0 : 1.0 / norm;
    inv_norm[static_cast<size_t>(i)] = static_cast<float>(inv);
    for (int64_t j = 0; j < cols; ++j) {
      out[i * cols + j] = static_cast<float>(x[i * cols + j] * inv);
    }
  }
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(
      std::move(out), RequiresGrad(a),
      [id, a, rows, cols, inv_norm = std::move(inv_norm)](Graph* g) {
        const Tensor& y = g->Value(id);
        const Tensor& dy = g->node(id).grad;
        Tensor& da = g->MutableGrad(a);
        for (int64_t i = 0; i < rows; ++i) {
          const float inv = inv_norm[static_cast<size_t>(i)];
          double dot = 0.0;
          for (int64_t j = 0; j < cols; ++j) {
            dot += static_cast<double>(dy[i * cols + j]) * y[i * cols + j];
          }
          for (int64_t j = 0; j < cols; ++j) {
            da[i * cols + j] +=
                inv * (dy[i * cols + j] -
                       static_cast<float>(dot) * y[i * cols + j]);
          }
        }
      });
}

NodeId Graph::Gather(NodeId table, std::vector<int64_t> indices) {
  const Tensor& tv = Value(table);
  SDEA_CHECK_EQ(tv.rank(), 2);
  const int64_t v = tv.dim(0), d = tv.dim(1);
  const int64_t n = static_cast<int64_t>(indices.size());
  Tensor out({n, d});
  for (int64_t i = 0; i < n; ++i) {
    const int64_t row = indices[static_cast<size_t>(i)];
    SDEA_CHECK(row >= 0 && row < v);
    std::copy(tv.data() + row * d, tv.data() + (row + 1) * d,
              out.data() + i * d);
  }
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), RequiresGrad(table),
                 [id, table, d, indices = std::move(indices)](Graph* g) {
                   const Tensor& dc = g->node(id).grad;
                   Tensor& dt = g->MutableGrad(table);
                   for (size_t i = 0; i < indices.size(); ++i) {
                     const int64_t row = indices[i];
                     for (int64_t j = 0; j < d; ++j) {
                       dt[row * d + j] +=
                           dc[static_cast<int64_t>(i) * d + j];
                     }
                   }
                 });
}

NodeId Graph::Dropout(NodeId a, float p, bool training, Rng* rng) {
  if (!training || p <= 0.0f) {
    // Identity pass-through node keeps graph structure uniform.
    return Scale(a, 1.0f);
  }
  SDEA_CHECK(rng != nullptr);
  SDEA_CHECK_LT(p, 1.0f);
  const Tensor& x = Value(a);
  const float keep = 1.0f - p;
  const float scale = 1.0f / keep;
  Tensor mask(x.shape());
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng->Bernoulli(keep) ? scale : 0.0f;
  }
  Tensor out = tmath::Mul(x, mask);
  NodeId id = static_cast<NodeId>(nodes_.size());
  return AddNode(std::move(out), RequiresGrad(a),
                 [id, a, mask = std::move(mask)](Graph* g) {
                   Tensor da = tmath::Mul(g->node(id).grad, mask);
                   tmath::AxpyInto(da, 1.0f, &g->MutableGrad(a));
                 });
}

}  // namespace sdea
