#include "store/format.h"

#include <cstdio>
#include <cstring>
#include <limits>

#include "base/check.h"
#include "store/wire.h"

namespace sdea::store {
namespace {

// 9 bytes on purpose (the format name, verbatim); the shard magic keeps
// the house 8-byte width.
constexpr char kManifestMagic[] = "SDEASTOR1";
constexpr size_t kManifestMagicBytes = sizeof(kManifestMagic) - 1;
constexpr char kShardMagic[8] = {'S', 'D', 'E', 'A', 'S', 'H', 'D', '1'};

constexpr uint64_t kInt64Max =
    static_cast<uint64_t>(std::numeric_limits<int64_t>::max());

uint64_t AlignUp(uint64_t x, uint64_t a) { return (x + a - 1) / a * a; }

void PadTo(std::string* out, size_t target) {
  SDEA_CHECK(out->size() <= target);
  out->append(target - out->size(), '\0');
}

}  // namespace

std::string ManifestPath(const std::string& dir) {
  return dir + "/manifest.sdea";
}

std::string ShardPath(const std::string& dir, int64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%05lld.sdea",
                static_cast<long long>(index));
  return dir + "/" + buf;
}

std::string EncodeManifest(const Manifest& manifest) {
  std::string out;
  out.append(kManifestMagic, kManifestMagicBytes);
  wire::AppendU64(&out, 1);  // Format version.
  wire::AppendU64(&out, static_cast<uint64_t>(manifest.dim));
  wire::AppendU64(&out, static_cast<uint64_t>(manifest.total_rows));
  wire::AppendU64(&out, static_cast<uint64_t>(manifest.quantization));
  wire::AppendU64(&out, manifest.store_full_precision ? 1 : 0);
  const std::string codebook = manifest.codebook.Encode();
  wire::AppendU64(&out, codebook.size());
  out.append(codebook);
  wire::AppendU64(&out, manifest.shards.size());
  for (const ShardInfo& shard : manifest.shards) {
    wire::AppendU64(&out, static_cast<uint64_t>(shard.rows));
    wire::AppendU64(&out, static_cast<uint64_t>(shard.file_bytes));
  }
  return out;
}

Result<Manifest> DecodeManifest(const std::string& in) {
  if (in.size() < kManifestMagicBytes ||
      std::memcmp(in.data(), kManifestMagic, kManifestMagicBytes) != 0) {
    return Status::InvalidArgument("not an SDEA store manifest");
  }
  size_t pos = kManifestMagicBytes;
  uint64_t version = 0, dim = 0, total_rows = 0, kind = 0, sfp = 0;
  if (!wire::ReadU64(in, &pos, &version) || !wire::ReadU64(in, &pos, &dim) ||
      !wire::ReadU64(in, &pos, &total_rows) ||
      !wire::ReadU64(in, &pos, &kind) || !wire::ReadU64(in, &pos, &sfp)) {
    return Status::InvalidArgument("truncated store manifest header");
  }
  if (version != 1) {
    return Status::InvalidArgument("unsupported store manifest version");
  }
  if (kind != static_cast<uint64_t>(Quantization::kInt8) &&
      kind != static_cast<uint64_t>(Quantization::kPq)) {
    return Status::InvalidArgument("unknown store quantization kind");
  }
  if (sfp > 1) {
    return Status::InvalidArgument("store manifest boolean out of range");
  }
  if (total_rows > kInt64Max || dim > kInt64Max) {
    return Status::InvalidArgument("store manifest counts overflow");
  }
  uint64_t codebook_len = 0;
  if (!wire::ReadU64(in, &pos, &codebook_len) ||
      codebook_len > in.size() - pos) {
    return Status::InvalidArgument("truncated store manifest codebook");
  }
  Manifest manifest;
  SDEA_ASSIGN_OR_RETURN(
      manifest.codebook,
      Codebook::Decode(in.substr(pos, codebook_len)));
  pos += codebook_len;
  manifest.dim = static_cast<int64_t>(dim);
  manifest.total_rows = static_cast<int64_t>(total_rows);
  manifest.quantization = static_cast<Quantization>(kind);
  manifest.store_full_precision = sfp == 1;
  if (manifest.codebook.kind() != manifest.quantization ||
      manifest.codebook.dim() != manifest.dim) {
    return Status::InvalidArgument(
        "store manifest codebook disagrees with manifest header");
  }
  uint64_t shard_count = 0;
  if (!wire::ReadU64(in, &pos, &shard_count) ||
      shard_count > (in.size() - pos) / 16) {
    return Status::InvalidArgument("store manifest shard count exceeds blob");
  }
  manifest.shards.reserve(shard_count);
  uint64_t rows_sum = 0;
  for (uint64_t i = 0; i < shard_count; ++i) {
    uint64_t rows = 0, file_bytes = 0;
    if (!wire::ReadU64(in, &pos, &rows) ||
        !wire::ReadU64(in, &pos, &file_bytes)) {
      return Status::InvalidArgument("truncated store manifest shard table");
    }
    if (rows > kInt64Max - rows_sum ||
        file_bytes < static_cast<uint64_t>(kShardHeaderBytes) ||
        file_bytes > kInt64Max) {
      return Status::InvalidArgument("store manifest shard sizes overflow");
    }
    rows_sum += rows;
    manifest.shards.push_back(ShardInfo{static_cast<int64_t>(rows),
                                        static_cast<int64_t>(file_bytes)});
  }
  if (rows_sum != total_rows) {
    return Status::InvalidArgument(
        "store manifest shard rows do not sum to total_rows");
  }
  return manifest;
}

std::string EncodeShard(const Codebook& codebook, const uint8_t* codes,
                        const float* fp32, int64_t rows,
                        const std::vector<std::string>& names,
                        int64_t names_begin) {
  SDEA_CHECK_GE(rows, 0);
  SDEA_CHECK_GE(names_begin, 0);
  SDEA_CHECK(names_begin + rows <= static_cast<int64_t>(names.size()));
  const uint64_t dim = static_cast<uint64_t>(codebook.dim());
  const uint64_t cbpr = static_cast<uint64_t>(codebook.code_bytes());
  const uint64_t urows = static_cast<uint64_t>(rows);

  ShardHeader h;
  h.rows = rows;
  h.dim = static_cast<int64_t>(dim);
  h.quantization = static_cast<uint64_t>(codebook.kind());
  h.code_bytes_per_row = static_cast<int64_t>(cbpr);
  h.codes_offset = static_cast<uint64_t>(kShardHeaderBytes);
  const uint64_t codes_end = h.codes_offset + urows * cbpr;
  uint64_t end = codes_end;
  if (fp32 != nullptr) {
    h.fp32_offset = AlignUp(codes_end, kShardPageBytes);
    end = h.fp32_offset + urows * dim * sizeof(float);
  }
  h.names_index_offset = AlignUp(end, 8);
  h.names_blob_offset = h.names_index_offset + (urows + 1) * 8;
  h.names_blob_bytes = 0;
  for (int64_t i = 0; i < rows; ++i) {
    h.names_blob_bytes += names[static_cast<size_t>(names_begin + i)].size();
  }
  h.file_bytes = h.names_blob_offset + h.names_blob_bytes;

  std::string out;
  out.reserve(static_cast<size_t>(h.file_bytes));
  out.append(kShardMagic, sizeof(kShardMagic));
  wire::AppendU64(&out, static_cast<uint64_t>(h.rows));
  wire::AppendU64(&out, static_cast<uint64_t>(h.dim));
  wire::AppendU64(&out, h.quantization);
  wire::AppendU64(&out, static_cast<uint64_t>(h.code_bytes_per_row));
  wire::AppendU64(&out, h.codes_offset);
  wire::AppendU64(&out, h.fp32_offset);
  wire::AppendU64(&out, h.names_index_offset);
  wire::AppendU64(&out, h.names_blob_offset);
  wire::AppendU64(&out, h.names_blob_bytes);
  wire::AppendU64(&out, h.file_bytes);
  PadTo(&out, static_cast<size_t>(h.codes_offset));
  out.append(reinterpret_cast<const char*>(codes),
             static_cast<size_t>(urows * cbpr));
  if (fp32 != nullptr) {
    PadTo(&out, static_cast<size_t>(h.fp32_offset));
    out.append(reinterpret_cast<const char*>(fp32),
               static_cast<size_t>(urows * dim * sizeof(float)));
  }
  PadTo(&out, static_cast<size_t>(h.names_index_offset));
  uint64_t offset = 0;
  wire::AppendU64(&out, offset);
  for (int64_t i = 0; i < rows; ++i) {
    offset += names[static_cast<size_t>(names_begin + i)].size();
    wire::AppendU64(&out, offset);
  }
  for (int64_t i = 0; i < rows; ++i) {
    out.append(names[static_cast<size_t>(names_begin + i)]);
  }
  SDEA_CHECK_EQ(static_cast<uint64_t>(out.size()), h.file_bytes);
  return out;
}

Result<ShardHeader> DecodeShardHeader(const uint8_t* data, size_t size) {
  if (size < static_cast<size_t>(kShardHeaderBytes) ||
      std::memcmp(data, kShardMagic, sizeof(kShardMagic)) != 0) {
    return Status::InvalidArgument("not an SDEA store shard");
  }
  const uint8_t* p = data + sizeof(kShardMagic);
  uint64_t f[10];
  for (int i = 0; i < 10; ++i) f[i] = wire::LoadU64(p + 8 * i);
  const uint64_t rows = f[0], dim = f[1], kind = f[2], cbpr = f[3];
  const uint64_t codes_off = f[4], fp32_off = f[5], index_off = f[6];
  const uint64_t blob_off = f[7], blob_bytes = f[8], file_bytes = f[9];
  const uint64_t usize = static_cast<uint64_t>(size);

  // The image must be exactly the advertised length: an mmap'd shard that
  // was truncated (or grew) after the manifest was written is corrupt,
  // and every bound below leans on size == file_bytes.
  if (file_bytes != usize) {
    return Status::InvalidArgument("store shard size mismatch");
  }
  if (kind != static_cast<uint64_t>(Quantization::kInt8) &&
      kind != static_cast<uint64_t>(Quantization::kPq)) {
    return Status::InvalidArgument("unknown store shard quantization kind");
  }
  const uint64_t header = static_cast<uint64_t>(kShardHeaderBytes);
  // Coarse bounds first so every count fits int64 and rows + 1 cannot
  // wrap: the name index alone needs 8 bytes per row, so rows > size/8
  // is unconditionally corrupt, and dim/cbpr size at least one byte per
  // unit somewhere in the file when rows > 0 (rows == 0 would otherwise
  // leave them unbounded).
  if (rows > usize / 8 || dim > usize || cbpr > usize) {
    return Status::InvalidArgument("store shard counts overflow");
  }
  // Each region check guards its multiplication by bounding the
  // per-row size against the bytes remaining past the region's start.
  if (codes_off < header || codes_off > usize ||
      (rows > 0 && cbpr > (usize - codes_off) / rows)) {
    return Status::InvalidArgument("store shard code region out of bounds");
  }
  if (fp32_off != 0 &&
      (fp32_off < header || fp32_off > usize ||
       (rows > 0 && dim > (usize - fp32_off) / sizeof(float) / rows))) {
    return Status::InvalidArgument("store shard fp32 region out of bounds");
  }
  if (index_off < header || index_off > usize ||
      rows + 1 > (usize - index_off) / 8) {
    return Status::InvalidArgument("store shard name index out of bounds");
  }
  if (blob_off > usize || blob_bytes > usize - blob_off) {
    return Status::InvalidArgument("store shard name blob out of bounds");
  }
  // The name index must start at 0, be monotone, and end exactly at the
  // blob size — after this, name lookups are branch-free substrings.
  const uint8_t* index = data + index_off;
  uint64_t prev = wire::LoadU64(index);
  if (prev != 0) {
    return Status::InvalidArgument("store shard name index must start at 0");
  }
  for (uint64_t i = 1; i <= rows; ++i) {
    const uint64_t entry = wire::LoadU64(index + 8 * i);
    if (entry < prev || entry > blob_bytes) {
      return Status::InvalidArgument("store shard name index not monotone");
    }
    prev = entry;
  }
  if (prev != blob_bytes) {
    return Status::InvalidArgument(
        "store shard name index does not cover the blob");
  }

  ShardHeader h;
  h.rows = static_cast<int64_t>(rows);
  h.dim = static_cast<int64_t>(dim);
  h.quantization = kind;
  h.code_bytes_per_row = static_cast<int64_t>(cbpr);
  h.codes_offset = codes_off;
  h.fp32_offset = fp32_off;
  h.names_index_offset = index_off;
  h.names_blob_offset = blob_off;
  h.names_blob_bytes = blob_bytes;
  h.file_bytes = file_bytes;
  return h;
}

}  // namespace sdea::store
