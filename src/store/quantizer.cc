#include "store/quantizer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <mutex>
#include <utility>

#include "base/check.h"
#include "base/rng.h"
#include "base/threadpool.h"
#include "core/ann_index.h"
#include "store/wire.h"
#include "tensor/kernels.h"

namespace sdea::store {
namespace {

constexpr char kMagic[8] = {'S', 'D', 'E', 'A', 'C', 'B', 'K', '1'};

}  // namespace

const char* QuantizationName(Quantization q) {
  switch (q) {
    case Quantization::kInt8:
      return "int8";
    case Quantization::kPq:
      return "pq";
  }
  return "unknown";
}

int64_t Codebook::code_bytes() const {
  return kind_ == Quantization::kInt8 ? dim_ : pq_m_;
}

Codebook Codebook::TrainInt8(const Tensor& rows) {
  SDEA_CHECK_EQ(rows.rank(), 2);
  const int64_t n = rows.dim(0), d = rows.dim(1);
  Codebook cb;
  cb.kind_ = Quantization::kInt8;
  cb.dim_ = d;
  std::vector<float> max_abs(static_cast<size_t>(d), 0.0f);
  // Row-sharded max-abs reduction. Each shard folds into the shared
  // accumulator under a mutex; max is commutative and associative, so the
  // merge order (hence thread count) cannot change the result.
  std::mutex mu;
  base::ParallelFor(n, base::GrainForWork(n, d),
                    [&](int64_t begin, int64_t end) {
                      std::vector<float> local(static_cast<size_t>(d), 0.0f);
                      for (int64_t i = begin; i < end; ++i) {
                        const float* row = rows.data() + i * d;
                        for (int64_t j = 0; j < d; ++j) {
                          local[static_cast<size_t>(j)] = std::max(
                              local[static_cast<size_t>(j)],
                              std::fabs(row[j]));
                        }
                      }
                      std::lock_guard<std::mutex> lock(mu);
                      for (int64_t j = 0; j < d; ++j) {
                        max_abs[static_cast<size_t>(j)] = std::max(
                            max_abs[static_cast<size_t>(j)],
                            local[static_cast<size_t>(j)]);
                      }
                    });
  cb.scales_.resize(static_cast<size_t>(d));
  for (int64_t j = 0; j < d; ++j) {
    const float m = max_abs[static_cast<size_t>(j)];
    // All-zero (or non-finite-free zero-range) dimensions quantize to 0
    // whatever the scale; 1.0 keeps encode division well-defined.
    cb.scales_[static_cast<size_t>(j)] = m > 0.0f ? m / 127.0f : 1.0f;
  }
  return cb;
}

Result<Codebook> Codebook::TrainPq(const Tensor& rows,
                                   const PqOptions& options) {
  if (rows.rank() != 2) {
    return Status::InvalidArgument("PQ training needs a [n, d] matrix");
  }
  const int64_t n = rows.dim(0), d = rows.dim(1);
  const int64_t m = options.num_subspaces;
  if (n == 0) {
    return Status::InvalidArgument("PQ training needs at least one row");
  }
  if (m <= 0 || d % m != 0) {
    return Status::InvalidArgument(
        "PQ subspaces must divide the dimension evenly");
  }
  if (options.num_centroids < 1 || options.num_centroids > 256) {
    return Status::InvalidArgument("PQ centroids must be in [1, 256]");
  }
  const int64_t subdim = d / m;

  // Deterministic training sample: distinct random rows, sorted ascending
  // so the gather below is cache-friendly and independent of the sample
  // order the RNG happened to produce.
  std::vector<int64_t> sample;
  if (n > options.train_sample && options.train_sample > 0) {
    Rng rng(options.seed);
    std::vector<size_t> picks = rng.SampleWithoutReplacement(
        static_cast<size_t>(n), static_cast<size_t>(options.train_sample));
    sample.assign(picks.begin(), picks.end());
    std::sort(sample.begin(), sample.end());
  } else {
    sample.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) sample[static_cast<size_t>(i)] = i;
  }
  const int64_t sn = static_cast<int64_t>(sample.size());
  const int64_t k = std::min<int64_t>(options.num_centroids, sn);

  Codebook cb;
  cb.kind_ = Quantization::kPq;
  cb.dim_ = d;
  cb.pq_m_ = m;
  cb.pq_k_ = k;
  cb.centroids_ = Tensor({m * k, subdim});
  // One Euclidean k-means per subspace over the gathered subvectors.
  // Subvectors carry magnitude the quantizer must preserve, hence
  // Euclidean rather than the spherical mode IVF uses. Distinct seeds per
  // subspace so identical subspace distributions don't share init rows.
  Tensor sub({sn, subdim});
  for (int64_t s = 0; s < m; ++s) {
    for (int64_t i = 0; i < sn; ++i) {
      std::memcpy(sub.data() + i * subdim,
                  rows.data() + sample[static_cast<size_t>(i)] * d +
                      s * subdim,
                  static_cast<size_t>(subdim) * sizeof(float));
    }
    core::KMeansOptions km;
    km.iters = options.kmeans_iters;
    km.seed = options.seed + static_cast<uint64_t>(s);
    km.spherical = false;
    core::KMeansResult result = core::KMeansRows(sub, k, km);
    SDEA_CHECK_EQ(result.centroids.dim(0), k);
    std::memcpy(cb.centroids_.data() + s * k * subdim,
                result.centroids.data(),
                static_cast<size_t>(k * subdim) * sizeof(float));
  }
  return cb;
}

std::vector<uint8_t> Codebook::EncodeRows(const float* rows,
                                          int64_t n) const {
  const int64_t d = dim_;
  const int64_t cb_bytes = code_bytes();
  std::vector<uint8_t> codes(static_cast<size_t>(n * cb_bytes));
  if (n == 0) return codes;

  if (kind_ == Quantization::kInt8) {
    base::ParallelFor(
        n, base::GrainForWork(n, d), [&](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            const float* row = rows + i * d;
            uint8_t* code = codes.data() + i * d;
            for (int64_t j = 0; j < d; ++j) {
              // Half-away-from-zero rounding (lround), clamped to the
              // symmetric [-127, 127] range: one deterministic code per
              // value on every platform, no -128 asymmetry to special-case
              // in the ADC kernels.
              const long q = std::lround(
                  row[j] / scales_[static_cast<size_t>(j)]);
              const long c = std::max<long>(-127, std::min<long>(127, q));
              code[j] = static_cast<uint8_t>(static_cast<int8_t>(c));
            }
          }
        });
    return codes;
  }

  // PQ: nearest centroid per subspace by squared L2, via the same
  // argmax(x.c - 0.5*||c||^2) trick the k-means assignment pass uses, so
  // encode agrees with training about every tie (lowest index wins).
  const int64_t sub = pq_subdim();
  std::vector<float> half_norms(static_cast<size_t>(pq_m_ * pq_k_));
  for (int64_t j = 0; j < pq_m_ * pq_k_; ++j) {
    const float* crow = centroids_.data() + j * sub;
    half_norms[static_cast<size_t>(j)] =
        0.5f * tmath::kernels::ScoreDot(crow, crow, sub);
  }
  base::ParallelFor(
      n, base::GrainForWork(n, pq_m_ * pq_k_ * sub),
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const float* row = rows + i * d;
          uint8_t* code = codes.data() + i * pq_m_;
          for (int64_t s = 0; s < pq_m_; ++s) {
            const float* x = row + s * sub;
            int64_t best = 0;
            float best_score = -std::numeric_limits<float>::infinity();
            for (int64_t c = 0; c < pq_k_; ++c) {
              const int64_t idx = s * pq_k_ + c;
              const float score =
                  tmath::kernels::ScoreDot(
                      x, centroids_.data() + idx * sub, sub) -
                  half_norms[static_cast<size_t>(idx)];
              if (score > best_score) {
                best_score = score;
                best = c;
              }
            }
            code[s] = static_cast<uint8_t>(best);
          }
        }
      });
  return codes;
}

void Codebook::DecodeRow(const uint8_t* code, float* out) const {
  if (kind_ == Quantization::kInt8) {
    for (int64_t j = 0; j < dim_; ++j) {
      out[j] = scales_[static_cast<size_t>(j)] *
               static_cast<float>(static_cast<int8_t>(code[j]));
    }
    return;
  }
  const int64_t sub = pq_subdim();
  for (int64_t s = 0; s < pq_m_; ++s) {
    const int64_t c = static_cast<int64_t>(code[s]);
    std::memcpy(out + s * sub,
                centroids_.data() + (s * pq_k_ + c) * sub,
                static_cast<size_t>(sub) * sizeof(float));
  }
}

std::string Codebook::Encode() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  wire::AppendU64(&out, static_cast<uint64_t>(kind_));
  wire::AppendU64(&out, static_cast<uint64_t>(dim_));
  if (kind_ == Quantization::kInt8) {
    out.append(reinterpret_cast<const char*>(scales_.data()),
               scales_.size() * sizeof(float));
  } else {
    wire::AppendU64(&out, static_cast<uint64_t>(pq_m_));
    wire::AppendU64(&out, static_cast<uint64_t>(pq_k_));
    out.append(reinterpret_cast<const char*>(centroids_.data()),
               static_cast<size_t>(centroids_.size()) * sizeof(float));
  }
  return out;
}

Result<Codebook> Codebook::Decode(const std::string& in) {
  if (in.size() < sizeof(kMagic) ||
      std::memcmp(in.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an SDEA codebook");
  }
  size_t pos = sizeof(kMagic);
  uint64_t kind = 0, dim = 0;
  if (!wire::ReadU64(in, &pos, &kind) || !wire::ReadU64(in, &pos, &dim)) {
    return Status::InvalidArgument("truncated codebook header");
  }
  if (kind != static_cast<uint64_t>(Quantization::kInt8) &&
      kind != static_cast<uint64_t>(Quantization::kPq)) {
    return Status::InvalidArgument("unknown codebook quantization kind");
  }
  Codebook cb;
  cb.kind_ = static_cast<Quantization>(kind);

  if (cb.kind_ == Quantization::kInt8) {
    // Payload is dim floats; bound dim against the remaining bytes before
    // allocating (a corrupt all-ones dim must not reach resize()).
    if (dim > (in.size() - pos) / sizeof(float)) {
      return Status::InvalidArgument("codebook scales exceed blob size");
    }
    cb.dim_ = static_cast<int64_t>(dim);
    cb.scales_.resize(static_cast<size_t>(dim));
    if (dim > 0) {
      std::memcpy(cb.scales_.data(), in.data() + pos,
                  static_cast<size_t>(dim) * sizeof(float));
    }
    for (float s : cb.scales_) {
      if (!(s > 0.0f) || !std::isfinite(s)) {
        return Status::InvalidArgument("codebook scales must be positive");
      }
    }
    return cb;
  }

  uint64_t m = 0, k = 0;
  if (!wire::ReadU64(in, &pos, &m) || !wire::ReadU64(in, &pos, &k)) {
    return Status::InvalidArgument("truncated PQ codebook header");
  }
  // dim bounded first so every later product stays far from overflow:
  // the centroid payload is exactly k * dim floats (m * k centroids of
  // dim/m components each), k <= 256.
  const uint64_t max_floats = (in.size() - pos) / sizeof(float);
  if (dim == 0 || dim > max_floats) {
    return Status::InvalidArgument("PQ codebook dim exceeds blob size");
  }
  if (m == 0 || m > dim || dim % m != 0) {
    return Status::InvalidArgument("PQ subspaces must divide dim");
  }
  if (k == 0 || k > 256) {
    return Status::InvalidArgument("PQ centroid count must be in [1, 256]");
  }
  if (k * dim > max_floats) {
    return Status::InvalidArgument("PQ centroids exceed blob size");
  }
  cb.dim_ = static_cast<int64_t>(dim);
  cb.pq_m_ = static_cast<int64_t>(m);
  cb.pq_k_ = static_cast<int64_t>(k);
  cb.centroids_ = Tensor({cb.pq_m_ * cb.pq_k_, cb.dim_ / cb.pq_m_});
  std::memcpy(cb.centroids_.data(), in.data() + pos,
              static_cast<size_t>(k * dim) * sizeof(float));
  for (int64_t i = 0; i < cb.centroids_.size(); ++i) {
    if (!std::isfinite(cb.centroids_.data()[i])) {
      return Status::InvalidArgument("PQ centroids must be finite");
    }
  }
  return cb;
}

}  // namespace sdea::store
