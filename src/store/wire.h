#ifndef SDEA_STORE_WIRE_H_
#define SDEA_STORE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace sdea::store::wire {

/// Little-endian fixed-width primitives shared by the store wire formats
/// (codebook blobs, the snapshot manifest, shard headers). Same encoding
/// as core::EmbeddingStore's SDEAEMB1 format; kept header-only so both
/// the builders and the mmap-side readers use one definition.

inline void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

inline bool ReadU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

/// Unaligned u64 load from a raw region (mmap'd shard bytes). memcpy
/// compiles to a plain load on x86 but stays defined on any alignment —
/// shard region offsets are not required to be 8-aligned by the decoder.
inline uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace sdea::store::wire

#endif  // SDEA_STORE_WIRE_H_
