#include "store/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

#include "base/fault_injection.h"

namespace sdea::store {

MmapFile::~MmapFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  if (FaultInjector* injector = CurrentFaultInjector()) {
    if (injector->OnFileOp(FaultInjector::FileOp::kMap, path).fail) {
      return Status::IoError("injected mmap fault: " + path);
    }
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open for mmap: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError("cannot stat for mmap: " + path);
  }
  MmapFile out;
  out.size_ = static_cast<size_t>(st.st_size);
  if (out.size_ > 0) {
    void* addr = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      return Status::IoError("mmap failed: " + path);
    }
    out.addr_ = addr;
  }
  // The mapping outlives the descriptor.
  ::close(fd);
  return out;
}

}  // namespace sdea::store
