#ifndef SDEA_STORE_MMAP_FILE_H_
#define SDEA_STORE_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "base/status.h"

namespace sdea::store {

/// A read-only memory-mapped file. Opening touches no data pages — the
/// kernel pages them in on first access and may evict them under
/// pressure, which is what bounds a 10M-row store's resident set to the
/// pages a query actually reads. Move-only RAII: the mapping lives until
/// destruction, so anything holding pointers into data() must hold the
/// MmapFile (the serve snapshot-pinning rule).
///
/// Open consults the installed base::FaultInjector under
/// FileOp::kMap, so crash-recovery tests can fail the map without
/// touching the filesystem.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  static Result<MmapFile> Open(const std::string& path);

  /// nullptr for an unopened or zero-length file.
  const uint8_t* data() const {
    return static_cast<const uint8_t*>(addr_);
  }
  size_t size() const { return size_; }

 private:
  void* addr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace sdea::store

#endif  // SDEA_STORE_MMAP_FILE_H_
