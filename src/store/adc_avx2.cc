// The store's only translation unit compiled with -mavx2 -mfma (see
// src/store/CMakeLists.txt), mirroring src/tensor/kernels_avx2.cc: nothing
// here runs unless runtime dispatch in adc.cc confirmed AVX2+FMA via
// tmath::ActiveSimdLevel(), so the intrinsics are used unconditionally.
//
// Determinism: both scans have a fixed reduction tree per shape. The int8
// scan reduces each row 32 codes/step across four FMA accumulators (the
// DotFastAvx2 tree), so fast-AVX2 differs from fast-scalar in the last
// ulps. The PQ scan instead vectorizes ACROSS rows — one lane per row,
// subspaces added in ascending order per lane — so its sums are bitwise
// identical to the scalar fast path, lane width notwithstanding.
#include <immintrin.h>

#include <cstdint>

namespace sdea::store::internal {
namespace {

// Sums the 8 lanes pairwise; same fixed combine order as the tensor TU.
inline float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_hadd_ps(s, s);
  s = _mm_hadd_ps(s, s);
  return _mm_cvtss_f32(s);
}

// 8 sign-extended int8 codes -> 8 floats.
inline __m256 LoadCodes8(const uint8_t* p) {
  const __m128i bytes =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
}

}  // namespace

void AdcScanInt8Avx2(const uint8_t* codes, int64_t n, int64_t d,
                     const float* q_scaled, float* out) {
  for (int64_t i = 0; i < n; ++i) {
    const uint8_t* code = codes + i * d;
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    int64_t j = 0;
    for (; j + 32 <= d; j += 32) {
      acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q_scaled + j),
                             LoadCodes8(code + j), acc0);
      acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(q_scaled + j + 8),
                             LoadCodes8(code + j + 8), acc1);
      acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(q_scaled + j + 16),
                             LoadCodes8(code + j + 16), acc2);
      acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(q_scaled + j + 24),
                             LoadCodes8(code + j + 24), acc3);
    }
    for (; j + 8 <= d; j += 8) {
      acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q_scaled + j),
                             LoadCodes8(code + j), acc0);
    }
    float total = HorizontalSum(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                              _mm256_add_ps(acc2, acc3)));
    for (; j < d; ++j) {
      total += q_scaled[j] *
               static_cast<float>(static_cast<int8_t>(code[j]));
    }
    out[i] = total;
  }
}

void AdcScanPqAvx2(const uint8_t* codes, int64_t n, int64_t m, int64_t k,
                   const float* lut, float* out) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 acc = _mm256_setzero_ps();
    for (int64_t s = 0; s < m; ++s) {
      // Codes of 8 consecutive rows at subspace s sit m bytes apart; a
      // vector load can't reach them, so the indices are composed
      // scalar-side and only the LUT reads are gathered.
      const uint8_t* c = codes + i * m + s;
      const __m256i idx = _mm256_set_epi32(
          static_cast<int>(c[7 * m]), static_cast<int>(c[6 * m]),
          static_cast<int>(c[5 * m]), static_cast<int>(c[4 * m]),
          static_cast<int>(c[3 * m]), static_cast<int>(c[2 * m]),
          static_cast<int>(c[1 * m]), static_cast<int>(c[0 * m]));
      acc = _mm256_add_ps(acc, _mm256_i32gather_ps(lut + s * k, idx, 4));
    }
    _mm256_storeu_ps(out + i, acc);
  }
  for (; i < n; ++i) {
    const uint8_t* code = codes + i * m;
    float acc = 0.0f;
    for (int64_t s = 0; s < m; ++s) {
      acc += lut[s * k + static_cast<int64_t>(code[s])];
    }
    out[i] = acc;
  }
}

}  // namespace sdea::store::internal
