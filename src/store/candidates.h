#ifndef SDEA_STORE_CANDIDATES_H_
#define SDEA_STORE_CANDIDATES_H_

#include <cstdint>
#include <vector>

#include "store/quantizer.h"
#include "tensor/tensor.h"

namespace sdea::store {

/// Knobs for compressed candidate generation.
struct CompressedCandidateOptions {
  Quantization quantization = Quantization::kInt8;
  PqOptions pq;  ///< Used when quantization == kPq.
  /// ADC survivor pool per query row before the exact rerank;
  /// 0 picks max(4k, k + 16).
  int64_t rerank_pool = 0;
};

/// Drop-in variant of core::GenerateCandidates (same contract: both
/// sides L2-normalized internally, out[i] = top-k target row ids for
/// source row i, ranked best-first) that scans quantized target codes
/// instead of fp32 rows: the target side is quantized once, every query
/// ADC-scans the codes (1 or dim bytes/row instead of 4*dim), and the
/// survivor pool is reranked exactly with kernels::ScoreDot against the
/// normalized fp32 targets. Queries are sharded across threads with each
/// row writing only its own slot — deterministic for every thread count.
std::vector<std::vector<int64_t>> GenerateCandidatesCompressed(
    const Tensor& src, const Tensor& tgt, int64_t k,
    const CompressedCandidateOptions& options = {});

}  // namespace sdea::store

#endif  // SDEA_STORE_CANDIDATES_H_
