#include "store/candidates.h"

#include <algorithm>

#include "base/check.h"
#include "base/threadpool.h"
#include "store/adc.h"
#include "tensor/kernels.h"
#include "tensor/topk.h"

namespace sdea::store {

std::vector<std::vector<int64_t>> GenerateCandidatesCompressed(
    const Tensor& src, const Tensor& tgt, int64_t k,
    const CompressedCandidateOptions& options) {
  SDEA_CHECK_EQ(src.rank(), 2);
  SDEA_CHECK_EQ(tgt.rank(), 2);
  SDEA_CHECK_EQ(src.dim(1), tgt.dim(1));
  SDEA_CHECK_GT(k, 0);
  Tensor s = src;
  Tensor t = tgt;
  tmath::L2NormalizeRowsInPlace(&s);
  tmath::L2NormalizeRowsInPlace(&t);
  const int64_t n = s.dim(0), m = t.dim(0), d = s.dim(1);
  std::vector<std::vector<int64_t>> out(static_cast<size_t>(n));
  if (n == 0 || m == 0) return out;

  // Quantize the target side once; every query scans codes.
  Codebook codebook;
  if (options.quantization == Quantization::kInt8) {
    codebook = Codebook::TrainInt8(t);
  } else {
    auto trained = Codebook::TrainPq(t, options.pq);
    SDEA_CHECK(trained.ok());
    codebook = std::move(*trained);
  }
  const std::vector<uint8_t> codes = codebook.EncodeRows(t.data(), m);

  const int64_t pool = std::min<int64_t>(
      m, options.rerank_pool > 0 ? options.rerank_pool
                                 : std::max<int64_t>(4 * k, k + 16));
  const int64_t lut_size = codebook.kind() == Quantization::kPq
                               ? codebook.pq_subspaces() *
                                     codebook.pq_centroids()
                               : d;
  base::ParallelFor(
      n, base::GrainForWork(n, m * codebook.code_bytes()),
      [&](int64_t begin, int64_t end) {
        // Per-shard scratch: ADC scores over all targets plus the
        // query-side table (scaled query or PQ LUT).
        std::vector<float> scores(static_cast<size_t>(m));
        std::vector<float> table(static_cast<size_t>(lut_size));
        std::vector<float> exact;
        for (int64_t i = begin; i < end; ++i) {
          const float* q = s.data() + i * d;
          if (codebook.kind() == Quantization::kInt8) {
            Int8PrepareQuery(q, codebook.scales().data(), d, table.data());
            AdcScanInt8(codes.data(), m, d, table.data(), scores.data());
          } else {
            PqBuildLut(q, codebook, table.data());
            AdcScanPq(codes.data(), m, codebook.pq_subspaces(),
                      codebook.pq_centroids(), table.data(), scores.data());
          }
          const std::vector<int64_t> survivors =
              tmath::TopK(scores.data(), m, pool);
          const int64_t pn = static_cast<int64_t>(survivors.size());
          exact.resize(static_cast<size_t>(pn));
          for (int64_t j = 0; j < pn; ++j) {
            exact[static_cast<size_t>(j)] = tmath::kernels::ScoreDot(
                q, t.data() + survivors[static_cast<size_t>(j)] * d, d);
          }
          // Ties by ascending target row id, the GenerateCandidates
          // contract, via the tie-id overload.
          const std::vector<int64_t> top = tmath::TopKWithTieIds(
              exact.data(), pn, std::min<int64_t>(k, pn), survivors.data());
          std::vector<int64_t>& row_out = out[static_cast<size_t>(i)];
          row_out.reserve(top.size());
          for (int64_t pos : top) {
            row_out.push_back(survivors[static_cast<size_t>(pos)]);
          }
        }
      });
  return out;
}

}  // namespace sdea::store
